// Reproduces the §VII-A validation claim: the simulated throughput T~^σ of
// the fully-distributed protocol (adaptive multipliers, starting ignorant at
// η = 0) matches the analytical achievable point T^σ from (P4) for
// σ ∈ {0.25, 0.5}, in both modes, and nodes consume at their budgets.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "econcast/simulation.h"
#include "gibbs/p4_solver.h"
#include "oracle/clique_oracle.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace econcast;
  const long scale = bench::knob(argc, argv, 6);
  const sim::HotpathEngine hotpath = bench::hotpath_flag(argc, argv);
  bench::kernels_flag(argc, argv);
  bench::banner("Sim-vs-analytic", "T~^sigma vs T^sigma (N=5, rho=10uW, L=X=500uW)");

  const auto nodes = model::homogeneous(5, 10.0, 500.0, 500.0);
  util::Table t({"mode", "sigma", "T^s (P4)", "T~^s (sim)", "sim/analytic",
                 "power uW", "final eta / eta*"});
  for (const model::Mode mode : {model::Mode::kGroupput, model::Mode::kAnyput}) {
    for (const double sigma : {0.25, 0.5}) {
      const auto p4 = gibbs::solve_p4(nodes, mode, sigma);
      proto::SimConfig cfg;
      cfg.mode = mode;
      cfg.sigma = sigma;
      cfg.duration = 1e6 * static_cast<double>(scale);
      cfg.warmup = cfg.duration / 3.0;
      cfg.seed = 2016;
      cfg.energy_guard = true;   // physical storage with a small pre-charge:
      cfg.initial_energy = 5e5;  // steady state matches the unbounded model
      cfg.hotpath_engine = hotpath;
      proto::Simulation sim(nodes, model::Topology::clique(5), cfg);
      const auto r = sim.run();
      const double measured =
          mode == model::Mode::kGroupput ? r.groupput : r.anyput;
      double power = 0.0;
      for (const double p : r.avg_power) power += p;
      power /= static_cast<double>(r.avg_power.size());
      t.add_row();
      t.add_cell(model::to_string(mode));
      t.add_cell(sigma, 2);
      t.add_cell(p4.throughput, 5);
      t.add_cell(measured, 5);
      t.add_cell(measured / p4.throughput, 3);
      t.add_cell(power, 2);
      t.add_cell(r.final_eta[0] / p4.eta[0], 3);
    }
  }
  t.print(std::cout, "adaptive protocol vs (P4) prediction");
  std::printf(
      "\npaper: \"simulation results show that T~^sigma perfectly matches\n"
      "       T^sigma for sigma in {0.25, 0.5}\" and \"nodes running EconCast\n"
      "       consume power on average at the rate of their power budgets\".\n");
  return 0;
}
