// Reproduces Table IV: distribution of the number of pings (active
// listeners) the transmitter receives after each packet transmission, on the
// emulated testbed with N = 5, σ = 0.25, ρ ∈ {1, 5} mW.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "testbed/firmware.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace econcast;
  const long hours = bench::knob(argc, argv, 12);
  bench::banner("Table IV", "pings received per packet (N=5, sigma=0.25)");

  util::Table t({"rho mW", "0", "1", "2", "3", "4"});
  for (const double rho : {1.0, 5.0}) {
    testbed::TestbedConfig cfg;
    cfg.n = 5;
    cfg.budget_mw = rho;
    cfg.sigma = 0.25;
    cfg.duration_ms = static_cast<double>(hours) * 3600e3;
    cfg.warmup_ms = cfg.duration_ms / 3.0;
    cfg.seed = 77 + static_cast<std::uint64_t>(rho);
    const auto r = testbed::run_testbed(cfg);
    t.add_row();
    t.add_cell(rho, 0);
    for (std::size_t c = 0; c <= 4; ++c)
      t.add_cell(100.0 * r.ping_distribution.fraction(c), 2);
  }
  t.print(std::cout, "Table IV — % of packets by ping count");
  std::printf(
      "\npaper: rho=1mW -> (89.03, 9.69, 1.28, 0.00, 0.00)%%;\n"
      "       rho=5mW -> (59.21, 31.22, 8.22, 1.24, 0.11)%%.\n"
      "       Higher budgets shift mass toward more listeners.\n");
  return 0;
}
