// Reproduces Table III: experimental (testbed-emulated) EconCast-C
// throughput vs the analytically computed Panda throughput, both normalized
// to the achievable T^σ_g, with σ = 0.25 and (N, ρ) ∈ {5,10} x {1,5} mW.
//
// One SweepSpec crosses (N, ρ) with the three protocols — the firmware
// emulation ("econcast-testbed"), the achievable bound ("econcast-p4") and
// the analytical Panda optimum ("panda"). The sweep is emitted as a JSON
// manifest and executed through runner::SweepSession, so the multi-hour
// testbed cells run in parallel, checkpoint per cell, and can be resumed
// standalone via `econcast_sweep table3.manifest.json`.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "protocol/protocol.h"
#include "runner/scenario_runner.h"
#include "runner/sweep_spec.h"
#include "testbed/ez430.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace econcast;
  const long hours = bench::knob(argc, argv, 12);
  bench::banner("Table III", "testbed EconCast-C vs analytical Panda (sigma=0.25)");

  const testbed::Ez430Constants hw;  // mW units throughout this table
  protocol::TestbedParams testbed;
  testbed.queue_engine = bench::engine_flag(argc, argv);
  bench::kernels_flag(argc, argv);
  testbed.sigma = 0.25;
  testbed.duration_ms = static_cast<double>(hours) * 3600e3;
  testbed.warmup_ms = testbed.duration_ms / 3.0;

  const std::size_t kTestbed = 0, kP4 = 1, kPanda = 2;
  const std::vector<std::size_t> node_counts{5, 10};
  const std::vector<double> budgets_mw{1.0, 5.0};
  std::vector<runner::PowerPoint> powers;
  for (const double rho : budgets_mw)
    powers.push_back({rho, hw.listen_power_mw, hw.transmit_power_mw});
  const runner::SweepSpec sweep =
      runner::SweepSpec("table3")
          .protocols({protocol::testbed_spec(testbed),
                      protocol::p4_spec(model::Mode::kGroupput, 0.25),
                      protocol::panda_spec()})
          .node_counts(node_counts)
          .powers(powers)
          .sigmas({0.25});
  const std::string dir = bench::manifest_dir(argc, argv, "econcast-table3");
  const runner::BatchResult run =
      bench::run_manifest_sweep(dir, "table3", sweep, /*base_seed=*/300);

  util::Table t({"(N, rho mW)", "T~/T^s %", "Panda/T^s %", "T~/Panda"});
  for (std::size_t n_i = 0; n_i < node_counts.size(); ++n_i) {
    for (std::size_t p_i = 0; p_i < budgets_mw.size(); ++p_i) {
      const double measured =
          run.results[sweep.cell_index(kTestbed, 0, n_i, p_i)].groupput;
      const double t_sigma =
          run.results[sweep.cell_index(kP4, 0, n_i, p_i)].groupput;
      const double panda =
          run.results[sweep.cell_index(kPanda, 0, n_i, p_i)].groupput;
      t.add_row();
      // Built up with += (not nested operator+) to sidestep a GCC 12
      // -Wrestrict false positive on the char* + std::string&& insert path.
      std::string cell = "(";
      cell += std::to_string(node_counts[n_i]);
      cell += ", ";
      cell += util::format_double(budgets_mw[p_i], 0);
      cell += ")";
      t.add_cell(cell);
      t.add_cell(100.0 * measured / t_sigma, 2);
      t.add_cell(100.0 * panda / t_sigma, 2);
      t.add_cell(measured / panda, 2);
    }
  }
  t.print(std::cout, "Table III");
  std::printf(
      "\npaper: T~/T^s = (66.78, 77.96, 74.84, 80.53)%%;\n"
      "       Panda/T^s = (6.24, 9.64, 19.35, 35.63)%%;\n"
      "       T~/Panda = (10.76, 8.09, 3.87, 2.26) for (N,rho) =\n"
      "       (5,1), (10,1), (5,5), (10,5).\n");
  return 0;
}
