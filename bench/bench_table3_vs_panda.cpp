// Reproduces Table III: experimental (testbed-emulated) EconCast-C
// throughput vs the analytically computed Panda throughput, both normalized
// to the achievable T^σ_g, with σ = 0.25 and (N, ρ) ∈ {5,10} x {1,5} mW.
#include <cstdio>
#include <iostream>

#include "baselines/panda.h"
#include "bench_common.h"
#include "gibbs/p4_solver.h"
#include "testbed/firmware.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace econcast;
  const long hours = bench::knob(argc, argv, 12);
  bench::banner("Table III", "testbed EconCast-C vs analytical Panda (sigma=0.25)");

  util::Table t({"(N, rho mW)", "T~/T^s %", "Panda/T^s %", "T~/Panda"});
  for (const std::size_t n : {5u, 10u}) {
    for (const double rho : {1.0, 5.0}) {
      testbed::TestbedConfig cfg;
      cfg.n = n;
      cfg.budget_mw = rho;
      cfg.sigma = 0.25;
      cfg.duration_ms = static_cast<double>(hours) * 3600e3;
      cfg.warmup_ms = cfg.duration_ms / 3.0;
      cfg.seed = 300 + n + static_cast<std::uint64_t>(rho);
      const auto r = testbed::run_testbed(cfg);

      const auto nodes = model::homogeneous(n, rho, cfg.hw.listen_power_mw,
                                            cfg.hw.transmit_power_mw);
      const double t_sigma =
          gibbs::solve_p4(nodes, model::Mode::kGroupput, cfg.sigma).throughput;
      const double panda =
          baselines::optimize_panda(n, rho, cfg.hw.listen_power_mw,
                                    cfg.hw.transmit_power_mw)
              .throughput;
      t.add_row();
      t.add_cell("(" + std::to_string(n) + ", " +
                 util::format_double(rho, 0) + ")");
      t.add_cell(100.0 * r.groupput / t_sigma, 2);
      t.add_cell(100.0 * panda / t_sigma, 2);
      t.add_cell(r.groupput / panda, 2);
    }
  }
  t.print(std::cout, "Table III");
  std::printf(
      "\npaper: T~/T^s = (66.78, 77.96, 74.84, 80.53)%%;\n"
      "       Panda/T^s = (6.24, 9.64, 19.35, 35.63)%%;\n"
      "       T~/Panda = (10.76, 8.09, 3.87, 2.26) for (N,rho) =\n"
      "       (5,1), (10,1), (5,5), (10,5).\n");
  return 0;
}
