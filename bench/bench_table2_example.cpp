// Reproduces Table II: the 4-node heterogeneous example that motivates the
// protocol design (§V-A) — optimal awake fractions and transmit-when-awake
// splits under (P1)/(P2), plus the homogeneous ρ = 0.1 mW variant discussed
// in the text (25% transmit-when-awake).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "oracle/clique_oracle.h"
#include "util/table.h"

int main() {
  using namespace econcast;
  bench::banner("Table II", "optimal time partitioning, 4 heterogeneous nodes");

  model::NodeSet nodes{{0.005, 1.0, 1.0},
                       {0.010, 1.0, 1.0},
                       {0.050, 1.0, 1.0},
                       {0.100, 1.0, 1.0}};
  const auto sol = oracle::groupput(nodes);

  util::Table t({"node", "budget mW", "awake %", "tx-when-awake %"});
  for (std::size_t i = 0; i < 4; ++i) {
    const double awake = sol.alpha[i] + sol.beta[i];
    t.add_row();
    t.add_cell(static_cast<std::int64_t>(i + 1));
    t.add_cell(nodes[i].budget, 3);
    t.add_cell(100.0 * awake, 2);
    t.add_cell(awake > 0 ? 100.0 * sol.beta[i] / awake : 0.0, 1);
  }
  t.print(std::cout, "measured (one optimal vertex of (P2))");
  std::printf("measured oracle groupput: %.4f\n\n", sol.throughput);

  std::printf("paper: awake %% = (0.5, 1.0, 5.0, 10.0); "
              "tx-when-awake %% = (20.0, 22, 53.6, 65.7)\n");
  std::printf("note:  (P2) has multiple optimal vertices; the paper's row is\n"
              "       another optimum of the same LP — its useful-listen total\n"
              "       equals the certified objective %.4f (node 4's split\n"
              "       includes dead listening beyond the others' transmit\n"
              "       time, which costs budget but no throughput).\n\n",
              sol.throughput);

  // Homogeneous variant from §V-A: all budgets 0.1 mW.
  const auto homog = oracle::homogeneous_groupput_closed_form(4, 0.1, 1.0, 1.0);
  std::printf("homogeneous variant (all ρ = 0.1 mW): alpha* = %.4f, "
              "beta* = %.4f, tx-when-awake = %.1f%%\n",
              homog.alpha[0], homog.beta[0],
              100.0 * homog.beta[0] / (homog.alpha[0] + homog.beta[0]));
  std::printf("paper: alpha* = 0.075, beta* = 0.025, 25%% transmit when awake\n");
  return 0;
}
