// Ablations for the design choices DESIGN.md calls out (§V-F of the paper):
//   A. σ — throughput vs burstiness tension (the core design dial).
//   B. multiplier step gain and interval τ — "adapting quickly but poorly"
//      vs "optimally but slowly".
//   C. listener-estimate quality — perfect vs thinned pings vs existence.
//   D. capture (EconCast-C) vs non-capture (EconCast-NC).
//   E. energy guard on/off (physical storage vs the idealized model).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "econcast/simulation.h"
#include "gibbs/burstiness.h"
#include "gibbs/p4_solver.h"
#include "oracle/clique_oracle.h"
#include "util/table.h"

namespace {

using namespace econcast;

const model::NodeSet& paper_nodes() {
  static const model::NodeSet nodes =
      model::homogeneous(5, 10.0, 500.0, 500.0);
  return nodes;
}

proto::SimResult run(const proto::SimConfig& cfg) {
  proto::Simulation sim(paper_nodes(), model::Topology::clique(5), cfg);
  return sim.run();
}

proto::SimConfig base_cfg(double duration) {
  proto::SimConfig cfg;
  cfg.sigma = 0.5;
  cfg.duration = duration;
  cfg.warmup = duration / 3.0;
  cfg.seed = 8080;
  cfg.energy_guard = true;
  cfg.initial_energy = 5e5;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const long scale = bench::knob(argc, argv, 3);
  const double dur = 1e6 * static_cast<double>(scale);
  bench::banner("Ablations", "design-choice sweeps (N=5, rho=10uW, L=X=500uW)");
  const double t_star = oracle::groupput(paper_nodes()).throughput;

  {  // A: sigma dial.
    util::Table t({"sigma", "T^s/T*", "analytic burst", "p99 latency s"});
    for (const double sigma : {1.0, 0.75, 0.5, 0.35, 0.25}) {
      const auto p4 =
          gibbs::solve_p4(paper_nodes(), model::Mode::kGroupput, sigma);
      proto::SimConfig cfg = base_cfg(dur);
      cfg.sigma = sigma;
      auto r = run(cfg);
      t.add_row();
      t.add_cell(sigma, 2);
      t.add_cell(p4.throughput / t_star, 4);
      t.add_cell(util::format_sci(gibbs::average_burst_length(
          paper_nodes(), model::Mode::kGroupput, sigma)));
      t.add_cell(r.latencies.count() > 10
                     ? util::format_double(
                           r.latencies.percentile(0.99) * 1e-3, 1)
                     : std::string("-"));
    }
    t.print(std::cout, "A. sigma: throughput vs burstiness vs latency");
    std::printf("\n");
  }

  {  // B: multiplier step gain x interval.
    util::Table t({"step gain", "tau", "T~/T^s", "power err %"});
    const auto p4 =
        gibbs::solve_p4(paper_nodes(), model::Mode::kGroupput, 0.5);
    for (const double gain : {0.002, 0.02, 0.2}) {
      for (const double tau : {10.0, 50.0, 500.0}) {
        proto::SimConfig cfg = base_cfg(dur);
        cfg.auto_step_gain = gain;
        cfg.multiplier.tau = tau;
        const auto r = run(cfg);
        double power = 0.0;
        for (const double p : r.avg_power) power += p;
        power /= 5.0;
        t.add_row();
        t.add_cell(gain, 3);
        t.add_cell(tau, 0);
        t.add_cell(r.groupput / p4.throughput, 3);
        t.add_cell(100.0 * (power - 10.0) / 10.0, 2);
      }
    }
    t.print(std::cout,
            "B. adaptation: step gain / interval (quick-but-poor vs "
            "slow-but-optimal, SV-F)");
    std::printf("\n");
  }

  {  // C: estimator quality.
    util::Table t({"estimator", "T~ groupput", "vs perfect"});
    double perfect_throughput = 0.0;
    struct Case {
      const char* name;
      proto::EstimatorConfig est;
    };
    proto::EstimatorConfig thin90, thin50, exist;
    thin90.kind = proto::EstimatorKind::kBinomialThinning;
    thin90.detect_prob = 0.9;
    thin50.kind = proto::EstimatorKind::kBinomialThinning;
    thin50.detect_prob = 0.5;
    exist.kind = proto::EstimatorKind::kExistenceOnly;
    const Case cases[] = {{"perfect", {}},
                          {"ping thinning p=0.9", thin90},
                          {"ping thinning p=0.5", thin50},
                          {"existence only", exist}};
    for (const auto& c : cases) {
      proto::SimConfig cfg = base_cfg(dur);
      cfg.estimator = c.est;
      const auto r = run(cfg);
      if (perfect_throughput == 0.0) perfect_throughput = r.groupput;
      t.add_row();
      t.add_cell(c.name);
      t.add_cell(r.groupput, 5);
      t.add_cell(r.groupput / perfect_throughput, 3);
    }
    t.print(std::cout, "C. listener-estimate quality (SV-C claim)");
    std::printf("\n");
  }

  {  // D: capture vs non-capture.
    util::Table t({"variant", "T~ groupput", "mean burst", "events"});
    for (const proto::Variant v :
         {proto::Variant::kCapture, proto::Variant::kNonCapture}) {
      proto::SimConfig cfg = base_cfg(dur);
      cfg.variant = v;
      const auto r = run(cfg);
      t.add_row();
      t.add_cell(proto::to_string(v));
      t.add_cell(r.groupput, 5);
      t.add_cell(r.burst_lengths.mean(), 2);
      t.add_cell(static_cast<std::int64_t>(r.events_processed));
    }
    t.print(std::cout, "D. EconCast-C vs EconCast-NC (same stationary law)");
    std::printf("\n");
  }

  {  // E: energy guard.
    util::Table t({"guard", "T~ groupput", "max burst", "power uW"});
    for (const bool guard : {false, true}) {
      proto::SimConfig cfg = base_cfg(dur);
      cfg.sigma = 0.25;  // where unbounded storage hurts
      cfg.energy_guard = guard;
      const auto r = run(cfg);
      double power = 0.0;
      for (const double p : r.avg_power) power += p;
      t.add_row();
      t.add_cell(guard ? "on" : "off");
      t.add_cell(r.groupput, 5);
      t.add_cell(util::format_sci(r.burst_lengths.max()));
      t.add_cell(power / 5.0, 2);
    }
    t.print(std::cout,
            "E. energy guard at sigma=0.25 (physical storage truncates "
            "giant captures)");
  }
  return 0;
}
