// Ablations for the design choices DESIGN.md calls out (§V-F of the paper):
//   A. σ — throughput vs burstiness tension (the core design dial).
//   B. multiplier step gain and interval τ — "adapting quickly but poorly"
//      vs "optimally but slowly".
//   C. listener-estimate quality — perfect vs thinned pings vs existence.
//   D. capture (EconCast-C) vs non-capture (EconCast-NC).
//   E. energy guard on/off (physical storage vs the idealized model).
//
// All five sections are collected into one ScenarioRunner batch (reseeding
// disabled, so every cell keeps the seed version's fixed seed 8080 and the
// printed numbers match the old sequential implementation) and run in
// parallel before the tables are assembled.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "econcast/simulation.h"
#include "gibbs/burstiness.h"
#include "gibbs/p4_solver.h"
#include "oracle/clique_oracle.h"
#include "runner/scenario_runner.h"
#include "util/table.h"

namespace {

using namespace econcast;

const model::NodeSet& paper_nodes() {
  static const model::NodeSet nodes =
      model::homogeneous(5, 10.0, 500.0, 500.0);
  return nodes;
}

// Hot-path engine for every simulated cell (set once from --hotpath=NAME;
// cannot change the printed tables).
sim::HotpathEngine g_hotpath = sim::HotpathEngine::kOptimized;

proto::SimConfig base_cfg(double duration) {
  proto::SimConfig cfg;
  cfg.hotpath_engine = g_hotpath;
  cfg.sigma = 0.5;
  cfg.duration = duration;
  cfg.warmup = duration / 3.0;
  cfg.seed = 8080;
  cfg.energy_guard = true;
  cfg.initial_energy = 5e5;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const long scale = bench::knob(argc, argv, 3);
  g_hotpath = bench::hotpath_flag(argc, argv);
  bench::kernels_flag(argc, argv);
  const double dur = 1e6 * static_cast<double>(scale);
  bench::banner("Ablations", "design-choice sweeps (N=5, rho=10uW, L=X=500uW)");
  const double t_star = oracle::groupput(paper_nodes()).throughput;

  // ---- Collect every section's cells into one batch. --------------------
  std::vector<runner::Scenario> batch;
  const auto add = [&batch](std::string name, const proto::SimConfig& cfg) {
    batch.push_back(runner::econcast_scenario(
        std::move(name), paper_nodes(), model::Topology::clique(5), cfg));
    return batch.size() - 1;
  };

  const double sigmas_a[] = {1.0, 0.75, 0.5, 0.35, 0.25};
  const std::size_t a0 = batch.size();
  for (const double sigma : sigmas_a) {
    proto::SimConfig cfg = base_cfg(dur);
    cfg.sigma = sigma;
    add("A/sigma" + util::format_double(sigma, 2), cfg);
  }

  const double gains_b[] = {0.002, 0.02, 0.2};
  const double taus_b[] = {10.0, 50.0, 500.0};
  const std::size_t b0 = batch.size();
  for (const double gain : gains_b) {
    for (const double tau : taus_b) {
      proto::SimConfig cfg = base_cfg(dur);
      cfg.auto_step_gain = gain;
      cfg.multiplier.tau = tau;
      add("B/gain" + util::format_double(gain, 3) + "_tau" +
              util::format_double(tau, 0),
          cfg);
    }
  }

  struct EstimatorCase {
    const char* name;
    proto::EstimatorConfig est;
  };
  proto::EstimatorConfig thin90, thin50, exist;
  thin90.kind = proto::EstimatorKind::kBinomialThinning;
  thin90.detect_prob = 0.9;
  thin50.kind = proto::EstimatorKind::kBinomialThinning;
  thin50.detect_prob = 0.5;
  exist.kind = proto::EstimatorKind::kExistenceOnly;
  const EstimatorCase cases_c[] = {{"perfect", {}},
                                   {"ping thinning p=0.9", thin90},
                                   {"ping thinning p=0.5", thin50},
                                   {"existence only", exist}};
  const std::size_t c0 = batch.size();
  for (const auto& c : cases_c) {
    proto::SimConfig cfg = base_cfg(dur);
    cfg.estimator = c.est;
    add(std::string("C/") + c.name, cfg);
  }

  const proto::Variant variants_d[] = {proto::Variant::kCapture,
                                       proto::Variant::kNonCapture};
  const std::size_t d0 = batch.size();
  for (const proto::Variant v : variants_d) {
    proto::SimConfig cfg = base_cfg(dur);
    cfg.variant = v;
    add(std::string("D/") + proto::to_string(v), cfg);
  }

  const std::size_t e0 = batch.size();
  for (const bool guard : {false, true}) {
    proto::SimConfig cfg = base_cfg(dur);
    cfg.sigma = 0.25;  // where unbounded storage hurts
    cfg.energy_guard = guard;
    add(std::string("E/guard_") + (guard ? "on" : "off"), cfg);
  }

  const runner::ScenarioRunner pool(
      {/*num_threads=*/0, /*base_seed=*/8080, /*reseed=*/false});
  const runner::BatchResult run = pool.run(batch);
  const auto mean_power = [&run](std::size_t i) {
    double power = 0.0;
    for (const double p : run.results[i].avg_power) power += p;
    return power / static_cast<double>(run.results[i].avg_power.size());
  };

  {  // A: sigma dial.
    util::Table t({"sigma", "T^s/T*", "analytic burst", "p99 latency s"});
    for (std::size_t k = 0; k < std::size(sigmas_a); ++k) {
      const double sigma = sigmas_a[k];
      const auto p4 =
          gibbs::solve_p4(paper_nodes(), model::Mode::kGroupput, sigma);
      const protocol::SimResult& r = run.results[a0 + k];
      t.add_row();
      t.add_cell(sigma, 2);
      t.add_cell(p4.throughput / t_star, 4);
      t.add_cell(util::format_sci(gibbs::average_burst_length(
          paper_nodes(), model::Mode::kGroupput, sigma)));
      t.add_cell(r.latencies.count() > 10
                     ? util::format_double(
                           r.latencies.percentile(0.99) * 1e-3, 1)
                     : std::string("-"));
    }
    t.print(std::cout, "A. sigma: throughput vs burstiness vs latency");
    std::printf("\n");
  }

  {  // B: multiplier step gain x interval.
    util::Table t({"step gain", "tau", "T~/T^s", "power err %"});
    const auto p4 =
        gibbs::solve_p4(paper_nodes(), model::Mode::kGroupput, 0.5);
    for (std::size_t k = 0; k < std::size(gains_b) * std::size(taus_b); ++k) {
      const protocol::SimResult& r = run.results[b0 + k];
      t.add_row();
      t.add_cell(gains_b[k / std::size(taus_b)], 3);
      t.add_cell(taus_b[k % std::size(taus_b)], 0);
      t.add_cell(r.groupput / p4.throughput, 3);
      t.add_cell(100.0 * (mean_power(b0 + k) - 10.0) / 10.0, 2);
    }
    t.print(std::cout,
            "B. adaptation: step gain / interval (quick-but-poor vs "
            "slow-but-optimal, SV-F)");
    std::printf("\n");
  }

  {  // C: estimator quality.
    util::Table t({"estimator", "T~ groupput", "vs perfect"});
    const double perfect_throughput = run.results[c0].groupput;
    for (std::size_t k = 0; k < std::size(cases_c); ++k) {
      const protocol::SimResult& r = run.results[c0 + k];
      t.add_row();
      t.add_cell(cases_c[k].name);
      t.add_cell(r.groupput, 5);
      t.add_cell(r.groupput / perfect_throughput, 3);
    }
    t.print(std::cout, "C. listener-estimate quality (SV-C claim)");
    std::printf("\n");
  }

  {  // D: capture vs non-capture.
    util::Table t({"variant", "T~ groupput", "mean burst", "events"});
    for (std::size_t k = 0; k < std::size(variants_d); ++k) {
      const protocol::SimResult& r = run.results[d0 + k];
      t.add_row();
      t.add_cell(proto::to_string(variants_d[k]));
      t.add_cell(r.groupput, 5);
      t.add_cell(r.burst_lengths.mean(), 2);
      t.add_cell(static_cast<std::int64_t>(r.extra("events_processed")));
    }
    t.print(std::cout, "D. EconCast-C vs EconCast-NC (same stationary law)");
    std::printf("\n");
  }

  {  // E: energy guard.
    util::Table t({"guard", "T~ groupput", "max burst", "power uW"});
    for (std::size_t k = 0; k < 2; ++k) {
      const protocol::SimResult& r = run.results[e0 + k];
      t.add_row();
      t.add_cell(k == 0 ? "off" : "on");
      t.add_cell(r.groupput, 5);
      t.add_cell(util::format_sci(r.burst_lengths.max()));
      t.add_cell(mean_power(e0 + k), 2);
    }
    t.print(std::cout,
            "E. energy guard at sigma=0.25 (physical storage truncates "
            "giant captures)");
  }
  return 0;
}
