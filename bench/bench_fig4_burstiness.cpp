// Reproduces Fig. 4: average burst length of EconCast-C vs σ — analytical
// curves from eqs. (34)-(35) for N ∈ {5, 10}, plus simulated markers at
// σ ∈ {0.25, 0.5} (the paper notes σ = 0.1 cannot be simulated to
// convergence: the analytic burst length there is ~4e5 packets).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "econcast/simulation.h"
#include "gibbs/burstiness.h"
#include "gibbs/p4_solver.h"
#include "util/table.h"

namespace {

double simulated_burst(std::size_t n, econcast::model::Mode mode, double sigma,
                       double duration) {
  using namespace econcast;
  const auto nodes = model::homogeneous(n, 10.0, 500.0, 500.0);
  const auto p4 = gibbs::solve_p4(nodes, mode, sigma);
  proto::SimConfig cfg;
  cfg.mode = mode;
  cfg.sigma = sigma;
  cfg.duration = duration;
  cfg.warmup = duration * 0.1;
  cfg.seed = 4242;
  cfg.adapt_multiplier = false;  // markers at the converged operating point
  cfg.eta_init = p4.eta;
  proto::Simulation sim(nodes, model::Topology::clique(n), cfg);
  return sim.run().burst_lengths.mean();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace econcast;
  const long scale = bench::knob(argc, argv, 4);  // sim duration = scale * 1e6
  bench::banner("Figure 4", "average burst length vs sigma (rho=10uW, L=X=500uW)");

  for (const model::Mode mode : {model::Mode::kGroupput, model::Mode::kAnyput}) {
    util::Table t({"sigma", "analytic N=5", "analytic N=10", "sim N=5",
                   "sim N=10"});
    for (double sigma = 0.10; sigma <= 1.0 + 1e-9; sigma += 0.05) {
      const auto n5 = model::homogeneous(5, 10.0, 500.0, 500.0);
      const auto n10 = model::homogeneous(10, 10.0, 500.0, 500.0);
      t.add_row();
      t.add_cell(sigma, 2);
      t.add_cell(util::format_sci(gibbs::average_burst_length(n5, mode, sigma)));
      t.add_cell(util::format_sci(gibbs::average_burst_length(n10, mode, sigma)));
      const bool marker = std::abs(sigma - 0.25) < 1e-9 ||
                          std::abs(sigma - 0.5) < 1e-9;
      if (marker) {
        t.add_cell(util::format_sci(
            simulated_burst(5, mode, sigma, 1e6 * static_cast<double>(scale))));
        t.add_cell(util::format_sci(simulated_burst(
            10, mode, sigma, 1e6 * static_cast<double>(scale))));
      } else {
        t.add_cell("-");
        t.add_cell("-");
      }
    }
    t.print(std::cout, std::string("Fig. 4 — ") + model::to_string(mode));
    std::printf("\n");
  }
  std::printf(
      "paper: groupput burst length grows steeply as sigma decreases (85 at\n"
      "       sigma=0.25, N=10 -> 4e5 at sigma=0.1) and grows with N; anyput\n"
      "       burst length = e^{1/sigma}, independent of N (eq. (35)).\n");
  return 0;
}
