// Reproduces Fig. 4: average burst length of EconCast-C vs σ — analytical
// curves from eqs. (34)-(35) for N ∈ {5, 10}, plus simulated markers at
// σ ∈ {0.25, 0.5} (the paper notes σ = 0.1 cannot be simulated to
// convergence: the analytic burst length there is ~4e5 packets).
//
// The simulated markers (8 independent simulations) run in parallel through
// runner::ScenarioRunner; per-scenario seeds derive from one base seed, so
// the printed numbers are independent of the host's core count.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "econcast/simulation.h"
#include "gibbs/burstiness.h"
#include "gibbs/p4_solver.h"
#include "runner/scenario_runner.h"
#include "util/table.h"

namespace {

using namespace econcast;

runner::Scenario marker_scenario(std::size_t n, model::Mode mode, double sigma,
                                 double duration, sim::QueueEngine engine,
                                 sim::HotpathEngine hotpath) {
  const auto nodes = model::homogeneous(n, 10.0, 500.0, 500.0);
  const auto p4 = gibbs::solve_p4(nodes, mode, sigma);
  proto::SimConfig cfg;
  cfg.mode = mode;
  cfg.sigma = sigma;
  cfg.duration = duration;
  cfg.warmup = duration * 0.1;
  cfg.adapt_multiplier = false;  // markers at the converged operating point
  cfg.eta_init = p4.eta;
  cfg.queue_engine = engine;
  cfg.hotpath_engine = hotpath;
  return runner::econcast_scenario("fig4", nodes, model::Topology::clique(n),
                                   cfg);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace econcast;
  const long scale = bench::knob(argc, argv, 4);  // sim duration = scale * 1e6
  const sim::QueueEngine engine = bench::engine_flag(argc, argv);
  const sim::HotpathEngine hotpath = bench::hotpath_flag(argc, argv);
  bench::kernels_flag(argc, argv);
  bench::banner("Figure 4", "average burst length vs sigma (rho=10uW, L=X=500uW)");

  const double marker_sigmas[] = {0.25, 0.5};
  const std::size_t marker_sizes[] = {5, 10};
  const double duration = 1e6 * static_cast<double>(scale);

  // Batch all simulated markers and fan them out across the thread pool.
  std::vector<runner::Scenario> batch;
  for (const model::Mode mode : {model::Mode::kGroupput, model::Mode::kAnyput}) {
    for (const double sigma : marker_sigmas) {
      for (const std::size_t n : marker_sizes) {
        batch.push_back(
            marker_scenario(n, mode, sigma, duration, engine, hotpath));
      }
    }
  }
  const runner::ScenarioRunner pool({/*num_threads=*/0, /*base_seed=*/4242});
  const runner::BatchResult run = pool.run(batch);

  // Batch index of a marker, mirroring the construction order above.
  const std::size_t n_sigmas = std::size(marker_sigmas);
  const std::size_t n_sizes = std::size(marker_sizes);
  const auto simulated = [&](std::size_t mode_idx, std::size_t sigma_idx,
                             std::size_t size_idx) {
    const std::size_t i =
        (mode_idx * n_sigmas + sigma_idx) * n_sizes + size_idx;
    return run.results[i].burst_lengths.mean();
  };

  std::size_t mode_idx = 0;
  for (const model::Mode mode : {model::Mode::kGroupput, model::Mode::kAnyput}) {
    util::Table t({"sigma", "analytic N=5", "analytic N=10", "sim N=5",
                   "sim N=10"});
    for (double sigma = 0.10; sigma <= 1.0 + 1e-9; sigma += 0.05) {
      const auto n5 = model::homogeneous(5, 10.0, 500.0, 500.0);
      const auto n10 = model::homogeneous(10, 10.0, 500.0, 500.0);
      t.add_row();
      t.add_cell(sigma, 2);
      t.add_cell(util::format_sci(gibbs::average_burst_length(n5, mode, sigma)));
      t.add_cell(util::format_sci(gibbs::average_burst_length(n10, mode, sigma)));
      // The accumulating loop drifts sigma by ~1e-16, hence the tolerance.
      std::size_t sigma_idx = n_sigmas;
      for (std::size_t k = 0; k < n_sigmas; ++k) {
        if (std::abs(sigma - marker_sigmas[k]) < 1e-9) sigma_idx = k;
      }
      if (sigma_idx < n_sigmas) {
        for (std::size_t size_idx = 0; size_idx < n_sizes; ++size_idx) {
          t.add_cell(util::format_sci(simulated(mode_idx, sigma_idx, size_idx)));
        }
      } else {
        t.add_cell("-");
        t.add_cell("-");
      }
    }
    t.print(std::cout, std::string("Fig. 4 — ") + model::to_string(mode));
    std::printf("\n");
    ++mode_idx;
  }
  std::printf(
      "paper: groupput burst length grows steeply as sigma decreases (85 at\n"
      "       sigma=0.25, N=10 -> 4e5 at sigma=0.1) and grows with N; anyput\n"
      "       burst length = e^{1/sigma}, independent of N (eq. (35)).\n");
  return 0;
}
