// Reproduces Fig. 6: grid topologies — the non-clique oracle groupput T*_nc
// (upper/lower LP bounds of §IV-C, which coincide for these grids) and the
// simulated EconCast groupput for σ ∈ {0.25, 0.5, 0.75}, N ∈ {4,...,100}.
// Collided (hidden-terminal) receptions are voided, as in the paper.
//
// The 27 simulation cells run as one ScenarioRunner batch across all cores
// (this was the last bench hand-rolling its own loop). Each cell keeps the
// exact per-N config and seed (66 + N) of the old serial loop — reseeding is
// disabled so the embedded seeds are authoritative — which keeps the table
// bit-identical to the pre-runner output.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "econcast/simulation.h"
#include "oracle/nonclique_oracle.h"
#include "runner/scenario_runner.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace econcast;
  const long scale = bench::knob(argc, argv, 2);  // duration = scale * 1e6
  bench::banner("Figure 6", "grid topologies: oracle T*_nc and simulated T~ (rho=10uW)");

  const std::vector<std::size_t> ks{2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::vector<double> sigmas{0.25, 0.5, 0.75};

  std::vector<runner::Scenario> batch;
  batch.reserve(ks.size() * sigmas.size());
  for (const std::size_t k : ks) {
    const std::size_t n = k * k;
    for (const double sigma : sigmas) {
      proto::SimConfig cfg;
      cfg.sigma = sigma;
      cfg.duration = 1e6 * static_cast<double>(scale);
      cfg.warmup = cfg.duration * 0.4;
      cfg.seed = 66 + n;
      cfg.energy_guard = true;  // adaptive start from eta = 0
      cfg.initial_energy = 5e5;
      batch.push_back(runner::econcast_scenario(
          "fig6/N" + std::to_string(n) + "/s" + std::to_string(sigma),
          model::homogeneous(n, 10.0, 500.0, 500.0),
          model::Topology::grid(k, k), cfg));
    }
  }

  runner::RunnerOptions options(/*threads=*/0, /*base_seed=*/1,
                                /*reseed=*/false);
  options.on_scenario_done = bench::progress_printer("fig6", 1);
  const runner::BatchResult run = runner::ScenarioRunner(options).run(batch);

  util::Table t({"N", "T*_nc", "bounds tight", "sim s=0.25", "sim s=0.5",
                 "sim s=0.75", "ratio s=0.25"});
  for (std::size_t k_i = 0; k_i < ks.size(); ++k_i) {
    const std::size_t k = ks[k_i];
    const std::size_t n = k * k;
    const auto nodes = model::homogeneous(n, 10.0, 500.0, 500.0);
    const auto topo = model::Topology::grid(k, k);
    const auto bounds = oracle::nonclique_groupput(nodes, topo);
    t.add_row();
    t.add_cell(static_cast<std::int64_t>(n));
    t.add_cell(bounds.lower.throughput, 4);
    t.add_cell(bounds.tight(1e-6) ? "yes" : "no");
    for (std::size_t s_i = 0; s_i < sigmas.size(); ++s_i)
      t.add_cell(run.results[k_i * sigmas.size() + s_i].groupput, 4);
    t.add_cell(run.results[k_i * sigmas.size()].groupput /
                   bounds.lower.throughput,
               3);
  }
  t.print(std::cout, "Fig. 6 — grids");
  std::printf(
      "\npaper: upper and lower bounds coincide for all grids (exact T*_nc);\n"
      "       EconCast reaches 14-22%% of T*_nc at sigma=0.25 and ~10%% at\n"
      "       sigma=0.5 as N grows.\n");
  return 0;
}
