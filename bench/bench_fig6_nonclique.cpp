// Reproduces Fig. 6: grid topologies — the non-clique oracle groupput T*_nc
// (upper/lower LP bounds of §IV-C, which coincide for these grids) and the
// simulated EconCast groupput for σ ∈ {0.25, 0.5, 0.75}, N ∈ {4,...,100}.
// Collided (hidden-terminal) receptions are voided, as in the paper.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "econcast/simulation.h"
#include "oracle/nonclique_oracle.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace econcast;
  const long scale = bench::knob(argc, argv, 2);  // duration = scale * 1e6
  bench::banner("Figure 6", "grid topologies: oracle T*_nc and simulated T~ (rho=10uW)");

  util::Table t({"N", "T*_nc", "bounds tight", "sim s=0.25", "sim s=0.5",
                 "sim s=0.75", "ratio s=0.25"});
  for (const std::size_t k : {2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u}) {
    const std::size_t n = k * k;
    const auto nodes = model::homogeneous(n, 10.0, 500.0, 500.0);
    const auto topo = model::Topology::grid(k, k);
    const auto bounds = oracle::nonclique_groupput(nodes, topo);
    t.add_row();
    t.add_cell(static_cast<std::int64_t>(n));
    t.add_cell(bounds.lower.throughput, 4);
    t.add_cell(bounds.tight(1e-6) ? "yes" : "no");
    double sim_025 = 0.0;
    for (const double sigma : {0.25, 0.5, 0.75}) {
      proto::SimConfig cfg;
      cfg.sigma = sigma;
      cfg.duration = 1e6 * static_cast<double>(scale);
      cfg.warmup = cfg.duration * 0.4;
      cfg.seed = 66 + n;
      cfg.energy_guard = true;  // adaptive start from eta = 0
      cfg.initial_energy = 5e5;
      proto::Simulation sim(nodes, topo, cfg);
      const auto r = sim.run();
      t.add_cell(r.groupput, 4);
      if (sigma == 0.25) sim_025 = r.groupput;
    }
    t.add_cell(sim_025 / bounds.lower.throughput, 3);
  }
  t.print(std::cout, "Fig. 6 — grids");
  std::printf(
      "\npaper: upper and lower bounds coincide for all grids (exact T*_nc);\n"
      "       EconCast reaches 14-22%% of T*_nc at sigma=0.25 and ~10%% at\n"
      "       sigma=0.5 as N grows.\n");
  return 0;
}
