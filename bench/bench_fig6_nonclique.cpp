// Reproduces Fig. 6: grid topologies — the non-clique oracle groupput T*_nc
// (upper/lower LP bounds of §IV-C, which coincide for these grids) and the
// simulated EconCast groupput for σ ∈ {0.25, 0.5, 0.75}, N ∈ {4,...,100}.
// Collided (hidden-terminal) receptions are voided, as in the paper.
//
// Each grid size is one JSON sweep manifest whose topology is an explicit
// edge_list (the k×k grid spelled out as data — the schema form for the
// arbitrary graphs this figure family is about), executed through
// runner::SweepSession, so every point of the figure is re-runnable (and
// resumable) standalone via `econcast_sweep <manifest>`. The manifests keep
// the exact per-N config and seed (66 + N) of the old serial loop —
// reseeding is disabled so the embedded seeds are authoritative — which
// keeps the table bit-identical to the pre-manifest output.
#include <cmath>
#include <cstdio>
#include <exception>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "econcast/simulation.h"
#include "exec/executor.h"
#include "oracle/nonclique_oracle.h"
#include "runner/sweep_spec.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace econcast;
  const long scale = bench::knob(argc, argv, 2);  // duration = scale * 1e6
  const sim::QueueEngine engine = bench::engine_flag(argc, argv);
  const sim::HotpathEngine hotpath = bench::hotpath_flag(argc, argv);
  bench::kernels_flag(argc, argv);
  // --n256 appends a 16x16 grid row (N=256) — off by default so the standard
  // table stays byte-identical to earlier builds.
  const bool n256 = bench::bool_flag(argc, argv, "--n256");
  bench::banner("Figure 6", "grid topologies: oracle T*_nc and simulated T~ (rho=10uW)");

  std::vector<std::size_t> ks{2, 3, 4, 5, 6, 7, 8, 9, 10};
  if (n256) ks.push_back(16);
  const std::vector<double> sigmas{0.25, 0.5, 0.75};
  const std::string dir = bench::manifest_dir(argc, argv, "econcast-fig6");

  // One session per manifest, all sessions concurrent: each gets a private
  // executor sized to its σ cells, so the 27 simulations overlap across
  // cores like the old single 27-cell batch did (the process-wide shared
  // executor serializes batches, which would leave only one N in flight).
  // Per-session results stay deterministic regardless of this interleaving.
  std::vector<runner::BatchResult> runs(ks.size());
  std::vector<std::exception_ptr> errors(ks.size());
  // NOLINT-DETERMINISM(raw-thread): one thread per independent session;
  // each writes only its own runs[k_i] slot, printed in fixed k order.
  std::vector<std::thread> sessions;
  sessions.reserve(ks.size());
  for (std::size_t k_i = 0; k_i < ks.size(); ++k_i) {
    sessions.emplace_back([&, k_i] {
      try {
        const std::size_t k = ks[k_i];
        const std::size_t n = k * k;
        proto::SimConfig cfg;
        cfg.duration = 1e6 * static_cast<double>(scale);
        cfg.warmup = cfg.duration * 0.4;
        cfg.seed = 66 + n;
        cfg.energy_guard = true;  // adaptive start from eta = 0
        cfg.initial_energy = 5e5;
        cfg.queue_engine = engine;  // cannot change the table, only the clock
        cfg.hotpath_engine = hotpath;  // likewise
        const std::string name = "fig6-N" + std::to_string(n);
        const runner::SweepSpec sweep =
            runner::SweepSpec(name)
                .protocols({protocol::econcast_spec(cfg)})
                .node_counts({n})
                .sigmas(sigmas)
                .topology(n, model::Topology::grid(k, k).edges());
        runs[k_i] = bench::run_manifest_sweep(
            dir, name, sweep, /*base_seed=*/1, /*reseed=*/false,
            std::make_shared<exec::Executor>(sigmas.size()));
      } catch (...) {
        errors[k_i] = std::current_exception();
      }
    });
  }
  // NOLINT-DETERMINISM(raw-thread): joining the session threads above.
  for (std::thread& t : sessions) t.join();
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);

  std::vector<protocol::SimResult> results;
  results.reserve(ks.size() * sigmas.size());
  for (const runner::BatchResult& run : runs)
    results.insert(results.end(), run.results.begin(), run.results.end());

  util::Table t({"N", "T*_nc", "bounds tight", "sim s=0.25", "sim s=0.5",
                 "sim s=0.75", "ratio s=0.25"});
  for (std::size_t k_i = 0; k_i < ks.size(); ++k_i) {
    const std::size_t k = ks[k_i];
    const std::size_t n = k * k;
    const auto nodes = model::homogeneous(n, 10.0, 500.0, 500.0);
    const auto topo = model::Topology::grid(k, k);
    const auto bounds = oracle::nonclique_groupput(nodes, topo);
    t.add_row();
    t.add_cell(static_cast<std::int64_t>(n));
    t.add_cell(bounds.lower.throughput, 4);
    t.add_cell(bounds.tight(1e-6) ? "yes" : "no");
    for (std::size_t s_i = 0; s_i < sigmas.size(); ++s_i)
      t.add_cell(results[k_i * sigmas.size() + s_i].groupput, 4);
    t.add_cell(results[k_i * sigmas.size()].groupput /
                   bounds.lower.throughput,
               3);
  }
  t.print(std::cout, "Fig. 6 — grids");
  std::printf(
      "\npaper: upper and lower bounds coincide for all grids (exact T*_nc);\n"
      "       EconCast reaches 14-22%% of T*_nc at sigma=0.25 and ~10%% at\n"
      "       sigma=0.5 as N grows.\n");
  return 0;
}
