// Reproduces Fig. 5: CDF, mean and 99th-percentile of the inter-burst
// latency (gap between received bursts containing at least one sleep
// period), for N ∈ {5, 10} and σ ∈ {0.25, 0.5}, in groupput and anyput
// modes; the Searchlight pairwise worst case (125 s) is the reference line.
// Packet time = 1 ms, so simulated times convert to seconds at 1e-3.
//
// The eight (mode, N, σ) cells run in parallel through ScenarioRunner with
// reseeding disabled, so every cell keeps the seed version's fixed seed and
// the printed numbers match the old sequential implementation exactly.
#include <cstdio>
#include <iostream>
#include <vector>

#include "baselines/searchlight.h"
#include "bench_common.h"
#include "econcast/simulation.h"
#include "gibbs/p4_solver.h"
#include "runner/scenario_runner.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace econcast;
  const long scale = bench::knob(argc, argv, 8);  // duration = scale * 1e6
  const sim::QueueEngine engine = bench::engine_flag(argc, argv);
  const sim::HotpathEngine hotpath = bench::hotpath_flag(argc, argv);
  bench::kernels_flag(argc, argv);
  bench::banner("Figure 5", "latency CDF / mean / p99 (rho=10uW, L=X=500uW)");

  baselines::SearchlightConfig sc;
  sc.budget = 10.0;
  sc.listen_power = 500.0;
  const double searchlight_worst =
      baselines::analyze_searchlight(sc).worst_latency_seconds;

  const std::vector<double> grid_s{5,  10, 20,  30,  40,  50,
                                   75, 100, 125, 150};
  const model::Mode modes[] = {model::Mode::kGroupput, model::Mode::kAnyput};
  const std::size_t sizes[] = {5, 10};
  const double sigmas[] = {0.25, 0.5};

  // All cells of both panels in one batch; each keeps the fixed seed 55.
  std::vector<runner::Scenario> batch;
  for (const model::Mode mode : modes) {
    for (const std::size_t n : sizes) {
      for (const double sigma : sigmas) {
        const auto nodes = model::homogeneous(n, 10.0, 500.0, 500.0);
        const auto p4 = gibbs::solve_p4(nodes, mode, sigma);
        proto::SimConfig cfg;
        cfg.mode = mode;
        cfg.sigma = sigma;
        cfg.duration = 1e6 * static_cast<double>(scale);
        cfg.warmup = cfg.duration * 0.1;
        cfg.seed = 55;
        cfg.adapt_multiplier = false;
        cfg.eta_init = p4.eta;
        cfg.queue_engine = engine;
        cfg.hotpath_engine = hotpath;
        batch.push_back(runner::econcast_scenario(
            "fig5", nodes, model::Topology::clique(n), cfg));
      }
    }
  }
  const runner::ScenarioRunner pool(
      {/*num_threads=*/0, /*base_seed=*/55, /*reseed=*/false});
  const runner::BatchResult run = pool.run(batch);

  std::size_t cell = 0;
  for (const model::Mode mode : modes) {
    std::vector<std::string> headers{"config", "mean s", "p99 s"};
    for (const double g : grid_s)
      headers.push_back("F(" + util::format_double(g, 0) + "s)");
    util::Table t(std::move(headers));
    for (const std::size_t n : sizes) {
      for (const double sigma : sigmas) {
        const protocol::SimResult& r = run.results[cell++];
        t.add_row();
        t.add_cell("N=" + std::to_string(n) +
                   " s=" + util::format_double(sigma, 2));
        if (r.latencies.count() > 10) {
          t.add_cell(r.latencies.mean() * 1e-3, 1);
          t.add_cell(r.latencies.percentile(0.99) * 1e-3, 1);
          for (const double g : grid_s) t.add_cell(r.latencies.cdf(g * 1e3), 3);
        } else {
          for (std::size_t c = 0; c < grid_s.size() + 2; ++c) t.add_cell("-");
        }
      }
    }
    t.print(std::cout, std::string("Fig. 5 — ") + model::to_string(mode));
    std::printf("\n");
  }
  std::printf("Searchlight pairwise worst case (reference line): %.1f s\n",
              searchlight_worst);
  std::printf(
      "paper: latency grows as sigma decreases; larger N lowers latency;\n"
      "       anyput p99 below groupput p99 at sigma=0.25; all 99th\n"
      "       percentiles within ~120 s, under Searchlight's 125 s bound.\n");
  return 0;
}
