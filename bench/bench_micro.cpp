// Micro-benchmarks (google-benchmark) for the library's hot paths: Gibbs
// evaluation over W, the symmetric collapse, the dual solvers, the LP
// oracle, the event-queue substrate, and the event-driven simulator.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "econcast/rates.h"
#include "econcast/simulation.h"
#include "gibbs/exact.h"
#include "gibbs/p4_solver.h"
#include "gibbs/symmetric.h"
#include "model/state_space.h"
#include "oracle/clique_oracle.h"
#include "sim/event_kernels.h"
#include "sim/event_queue.h"
#include "util/kernels.h"
#include "util/random.h"

namespace {

using namespace econcast;

void BM_StateSpaceEnumeration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::uint64_t acc = 0;
    model::for_each_state(n, [&](const model::NetState& s) {
      acc += static_cast<std::uint64_t>(s.listener_count());
    });
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(model::state_space_size(n)));
}
BENCHMARK(BM_StateSpaceEnumeration)->Arg(5)->Arg(10)->Arg(14);

void BM_ExactGibbsMarginals(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto nodes = model::homogeneous(n, 10.0, 500.0, 500.0);
  const gibbs::ExactGibbs g(nodes, model::Mode::kGroupput, 0.25);
  const std::vector<double> eta(n, 0.003);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.marginals(eta));
  }
}
BENCHMARK(BM_ExactGibbsMarginals)->Arg(5)->Arg(10)->Arg(14);

void BM_SymmetricGibbsMarginals(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const gibbs::SymmetricGibbs g(n, {10.0, 500.0, 500.0},
                                model::Mode::kGroupput, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.marginals(0.003));
  }
}
BENCHMARK(BM_SymmetricGibbsMarginals)->Arg(5)->Arg(50)->Arg(500);

void BM_P4SolveSymmetric(benchmark::State& state) {
  const auto nodes = model::homogeneous(
      static_cast<std::size_t>(state.range(0)), 10.0, 500.0, 500.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gibbs::solve_p4(nodes, model::Mode::kGroupput, 0.25));
  }
}
BENCHMARK(BM_P4SolveSymmetric)->Arg(5)->Arg(10)->Arg(100);

void BM_P4SolveAccelerated(benchmark::State& state) {
  const auto nodes = model::homogeneous(
      static_cast<std::size_t>(state.range(0)), 10.0, 500.0, 500.0);
  gibbs::P4Options opt;
  opt.method = gibbs::P4Method::kAccelerated;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gibbs::solve_p4(nodes, model::Mode::kGroupput, 0.25, opt));
  }
}
BENCHMARK(BM_P4SolveAccelerated)->Arg(5)->Arg(8);

void BM_OracleGroupputLP(benchmark::State& state) {
  const auto nodes = model::homogeneous(
      static_cast<std::size_t>(state.range(0)), 10.0, 500.0, 500.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle::groupput(nodes));
  }
}
BENCHMARK(BM_OracleGroupputLP)->Arg(5)->Arg(25)->Arg(100);

// The event-queue push/pop cycle that dominates the simulator's inner loop,
// as a comparative backend benchmark. Arg 0 is the node count N (live
// events ≈ 4N per EventQueue::capacity_for_nodes, so N = 64 is the fig. 6
// regime the calendar backend targets); arg 1 selects the backend. The
// queue is constructed and pre-reserved once, outside the timing loop, and
// pre-filled to its steady-state population — so the measured region is
// pure queue ops (the simulator's inner loop) rather than allocator churn.
// Event times advance by exponential gaps, the simulator's arrival pattern.
void BM_EventQueuePushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto engine = static_cast<sim::QueueEngine>(state.range(1));
  const std::size_t live = 4 * n;
  util::Rng rng(2024);
  constexpr std::size_t kGapMask = (1u << 12) - 1;
  std::vector<double> gaps(kGapMask + 1);
  for (double& g : gaps) g = rng.exponential(1.0);

  sim::EventQueue q(engine);
  q.reserve_for_nodes(n);
  std::size_t g = 0;
  for (std::size_t i = 0; i < live; ++i)
    q.push(gaps[g++ & kGapMask], sim::EventKind::kTransition,
           static_cast<std::uint32_t>(i % n));

  double acc = 0.0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < live; ++i) {
      const sim::Event e = q.pop();
      acc += e.time;
      q.push(e.time + gaps[g++ & kGapMask], e.kind, e.node);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * live));
  state.SetLabel(std::string(sim::to_token(engine)) + " N=" +
                 std::to_string(n));
}
BENCHMARK(BM_EventQueuePushPop)
    ->ArgsProduct({{16, 64, 256, 1024},
                   {static_cast<long>(sim::QueueEngine::kBinaryHeap),
                    static_cast<long>(sim::QueueEngine::kCalendar)}});

// The cancellation path: every op re-schedules a node's pending transition
// (implicitly invalidating the previous one) and pops surface through the
// stale-pruning filter — the pattern proto::Simulation's schedule_transition
// produces under carrier-sense resampling.
void BM_EventQueueScheduleCancel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto engine = static_cast<sim::QueueEngine>(state.range(1));
  util::Rng rng(4048);
  constexpr std::size_t kGapMask = (1u << 12) - 1;
  std::vector<double> gaps(kGapMask + 1);
  for (double& g : gaps) g = rng.exponential(1.0);
  std::vector<std::uint32_t> order(kGapMask + 1);
  for (auto& o : order)
    o = static_cast<std::uint32_t>(rng.uniform() * static_cast<double>(n));

  sim::EventQueue q(engine);
  q.reserve_for_nodes(n);
  double now = 0.0;
  std::size_t g = 0;
  for (std::size_t i = 0; i < n; ++i)
    q.schedule(gaps[g++ & kGapMask], sim::EventKind::kTransition,
               static_cast<std::uint32_t>(i));

  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      // A transition fires...
      const sim::Event e = q.pop();
      now = e.time;
      q.schedule(now + gaps[g++ & kGapMask], sim::EventKind::kTransition,
                 e.node);
      // ...and a carrier toggle makes two neighbors re-sample.
      for (int k = 0; k < 2; ++k) {
        const std::uint32_t j = order[g & kGapMask];
        q.schedule(now + gaps[g++ & kGapMask], sim::EventKind::kTransition,
                   j);
      }
    }
    benchmark::DoNotOptimize(now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(4 * n));
  state.SetLabel(std::string(sim::to_token(engine)) + " N=" +
                 std::to_string(n));
}
BENCHMARK(BM_EventQueueScheduleCancel)
    ->ArgsProduct({{64, 256},
                   {static_cast<long>(sim::QueueEngine::kBinaryHeap),
                    static_cast<long>(sim::QueueEngine::kCalendar)}});

// ---- Micro-kernel tier comparatives (util/kernels.h, sim/event_kernels.h).
// Arg conventions: the last arg selects the kernel tier (0 = scalar forced,
// 1 = avx2 forced); runs on hosts without the tier are skipped, not
// silently downgraded. The tiers are bit-identical by construction (see
// test_kernels), so items/sec is the only thing that may differ.

bool force_tier(benchmark::State& state, long tier_arg) {
  const auto tier = static_cast<util::KernelTier>(tier_arg);
  if (!util::kernel_tier_supported(tier)) {
    state.SkipWithError("kernel tier unavailable on this host/build");
    return false;
  }
  util::set_kernel_tier(tier);
  return true;
}

// The batched RNG refill behind Rng's block mode: raw xoshiro outputs
// through the dispatched u64 -> [0,1) conversion. This is the kernel the
// simulator pays on every block_ draws; the unbuffered path converts one
// draw at a time inside Rng::uniform.
void BM_RngBatch(benchmark::State& state) {
  if (!force_tier(state, state.range(1))) return;
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 gen(2016);
  std::vector<std::uint64_t> bits(n);
  for (auto& b : bits) b = gen();
  std::vector<double> out(n);
  for (auto _ : state) {
    util::u01_from_bits(bits.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(std::string(util::to_token(
                     static_cast<util::KernelTier>(state.range(1)))) +
                 " block=" + std::to_string(n));
}
BENCHMARK(BM_RngBatch)->ArgsProduct({{256, 4096}, {0, 1}});

// The calendar backend's bucket scan: one (time, seq)-min + time-bounds
// pass over a bucket of the size find_min sees at the fig. 6 scale.
void BM_CalendarMinScan(benchmark::State& state) {
  if (!force_tier(state, state.range(1))) return;
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(99);
  std::vector<sim::Event> bucket(n);
  for (std::size_t i = 0; i < n; ++i) {
    bucket[i].time = rng.uniform() * 100.0;
    bucket[i].seq = i;
  }
  for (auto _ : state) {
    const auto scan = sim::event_kernels::min_scan(bucket.data(), n);
    benchmark::DoNotOptimize(scan.best);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(std::string(util::to_token(
                     static_cast<util::KernelTier>(state.range(1)))) +
                 " bucket=" + std::to_string(n));
}
BENCHMARK(BM_CalendarMinScan)->ArgsProduct({{16, 64, 256}, {0, 1}});

// The eager rate-memo row refill against the per-call path it replaced:
// one η update's worth of listen_to_transmit exponentials for a fig. 6
// N = 64 neighborhood (width = N + 1 counts). Arg 1 = 0 benches width
// separate listen_to_transmit calls (the reference expression), 1 benches
// fill_listen_to_transmit_row (hoisted invariants, 1-2 exp calls for the
// count-independent variants). Both produce bit-identical rows.
void BM_MemoRefill(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  const bool batched = state.range(1) != 0;
  const proto::RateController rates(500.0, 500.0, 0.25,
                                    proto::Variant::kNonCapture,
                                    model::Mode::kGroupput);
  const double eta = 0.003;
  std::vector<double> row(width);
  for (auto _ : state) {
    if (batched) {
      rates.fill_listen_to_transmit_row(eta, row.data(), width);
    } else {
      for (std::size_t c = 0; c < width; ++c)
        row[c] = rates.listen_to_transmit(eta, static_cast<double>(c), true);
    }
    benchmark::DoNotOptimize(row.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(width));
  state.SetLabel(std::string(batched ? "row-refill" : "per-call") +
                 " width=" + std::to_string(width));
}
BENCHMARK(BM_MemoRefill)->ArgsProduct({{65, 101}, {0, 1}});

void BM_SimulatorEvents(benchmark::State& state) {
  const auto nodes = model::homogeneous(5, 10.0, 500.0, 500.0);
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  for (auto _ : state) {
    proto::SimConfig cfg;
    cfg.sigma = 0.5;
    cfg.duration = 1e5;
    cfg.seed = seed++;
    proto::Simulation sim(nodes, model::Topology::clique(5), cfg);
    const auto r = sim.run();
    events += r.events_processed;
    benchmark::DoNotOptimize(r.groupput);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_SimulatorEvents);

// The simulator's hot path on fig. 6-style grids, comparatively across the
// reference and optimized engines. Arg 0 is the grid side k (N = k²); arg 1
// selects the hot-path engine. The config mirrors the fig. 6 cells (energy
// guard, adaptive multiplier from eta = 0) at a shortened duration, so the
// measured region exercises exactly the listener-count / rate-exponential /
// allocation costs the optimized engine targets. Both engines process the
// identical event stream — items/sec is the comparable figure of merit.
void BM_SimulatorGridHotpath(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto engine = static_cast<sim::HotpathEngine>(state.range(1));
  const std::size_t n = k * k;
  const auto nodes = model::homogeneous(n, 10.0, 500.0, 500.0);
  const auto topo = model::Topology::grid(k, k);
  std::uint64_t seed = 66 + n;
  std::uint64_t events = 0;
  for (auto _ : state) {
    proto::SimConfig cfg;
    cfg.sigma = 0.25;
    cfg.duration = 2e5;
    cfg.warmup = cfg.duration * 0.4;
    cfg.seed = seed++;
    cfg.energy_guard = true;
    cfg.initial_energy = 5e5;
    cfg.hotpath_engine = engine;
    proto::Simulation sim(nodes, topo, cfg);
    const auto r = sim.run();
    events += r.events_processed;
    benchmark::DoNotOptimize(r.groupput);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel(sim::to_token(engine) + " N=" + std::to_string(n));
}
BENCHMARK(BM_SimulatorGridHotpath)
    ->ArgsProduct({{4, 8, 16},
                   {static_cast<long>(sim::HotpathEngine::kReference),
                    static_cast<long>(sim::HotpathEngine::kOptimized)}});

}  // namespace

BENCHMARK_MAIN();
