// Micro-benchmarks (google-benchmark) for the library's hot paths: Gibbs
// evaluation over W, the symmetric collapse, the dual solvers, the LP
// oracle, the event-queue substrate, and the event-driven simulator.
#include <benchmark/benchmark.h>

#include <vector>

#include "econcast/simulation.h"
#include "gibbs/exact.h"
#include "gibbs/p4_solver.h"
#include "gibbs/symmetric.h"
#include "model/state_space.h"
#include "oracle/clique_oracle.h"
#include "sim/event_queue.h"
#include "util/random.h"

namespace {

using namespace econcast;

void BM_StateSpaceEnumeration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::uint64_t acc = 0;
    model::for_each_state(n, [&](const model::NetState& s) {
      acc += static_cast<std::uint64_t>(s.listener_count());
    });
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(model::state_space_size(n)));
}
BENCHMARK(BM_StateSpaceEnumeration)->Arg(5)->Arg(10)->Arg(14);

void BM_ExactGibbsMarginals(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto nodes = model::homogeneous(n, 10.0, 500.0, 500.0);
  const gibbs::ExactGibbs g(nodes, model::Mode::kGroupput, 0.25);
  const std::vector<double> eta(n, 0.003);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.marginals(eta));
  }
}
BENCHMARK(BM_ExactGibbsMarginals)->Arg(5)->Arg(10)->Arg(14);

void BM_SymmetricGibbsMarginals(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const gibbs::SymmetricGibbs g(n, {10.0, 500.0, 500.0},
                                model::Mode::kGroupput, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.marginals(0.003));
  }
}
BENCHMARK(BM_SymmetricGibbsMarginals)->Arg(5)->Arg(50)->Arg(500);

void BM_P4SolveSymmetric(benchmark::State& state) {
  const auto nodes = model::homogeneous(
      static_cast<std::size_t>(state.range(0)), 10.0, 500.0, 500.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gibbs::solve_p4(nodes, model::Mode::kGroupput, 0.25));
  }
}
BENCHMARK(BM_P4SolveSymmetric)->Arg(5)->Arg(10)->Arg(100);

void BM_P4SolveAccelerated(benchmark::State& state) {
  const auto nodes = model::homogeneous(
      static_cast<std::size_t>(state.range(0)), 10.0, 500.0, 500.0);
  gibbs::P4Options opt;
  opt.method = gibbs::P4Method::kAccelerated;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gibbs::solve_p4(nodes, model::Mode::kGroupput, 0.25, opt));
  }
}
BENCHMARK(BM_P4SolveAccelerated)->Arg(5)->Arg(8);

void BM_OracleGroupputLP(benchmark::State& state) {
  const auto nodes = model::homogeneous(
      static_cast<std::size_t>(state.range(0)), 10.0, 500.0, 500.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle::groupput(nodes));
  }
}
BENCHMARK(BM_OracleGroupputLP)->Arg(5)->Arg(25)->Arg(100);

// The event-queue push/pop cycle that dominates the simulator's inner loop.
// Arg 0 is the number of live events (≈ 3-4 per node, so 256 ≈ the N = 64
// regime); arg 1 toggles the up-front reserve so the reallocation churn the
// reserve eliminates is measurable: each iteration fills the queue from
// empty — the simulator's ramp-up — then runs a steady-state pop+push window
// before draining.
void BM_EventQueuePushPop(benchmark::State& state) {
  const auto live = static_cast<std::size_t>(state.range(0));
  const bool reserve = state.range(1) != 0;
  util::Rng rng(2024);
  std::vector<double> times(4 * live);
  for (double& t : times) t = rng.uniform();
  std::uint64_t ops = 0;
  for (auto _ : state) {
    sim::EventQueue q;
    if (reserve) q.reserve(live);
    std::size_t t = 0;
    double acc = 0.0;
    for (std::size_t i = 0; i < live; ++i)
      q.push(times[t++ % times.size()], sim::EventKind::kTransition,
             static_cast<std::uint32_t>(i));
    for (std::size_t i = 0; i < 2 * live; ++i) {
      const sim::Event e = q.pop();
      acc += e.time;
      q.push(e.time + times[t++ % times.size()], sim::EventKind::kTransition,
             e.node);
    }
    while (!q.empty()) acc += q.pop().time;
    ops += 2 * (live + 2 * live);  // pushes + pops
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.SetLabel(reserve ? "reserved" : "unreserved");
}
BENCHMARK(BM_EventQueuePushPop)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({1024, 0})
    ->Args({1024, 1});

void BM_SimulatorEvents(benchmark::State& state) {
  const auto nodes = model::homogeneous(5, 10.0, 500.0, 500.0);
  std::uint64_t seed = 1;
  std::uint64_t events = 0;
  for (auto _ : state) {
    proto::SimConfig cfg;
    cfg.sigma = 0.5;
    cfg.duration = 1e5;
    cfg.seed = seed++;
    proto::Simulation sim(nodes, model::Topology::clique(5), cfg);
    const auto r = sim.run();
    events += r.events_processed;
    benchmark::DoNotOptimize(r.groupput);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("items = simulator events");
}
BENCHMARK(BM_SimulatorEvents);

}  // namespace

BENCHMARK_MAIN();
