// Reproduces Fig. 2: sensitivity of the achievable-to-oracle throughput
// ratio T^σ/T* to network heterogeneity h, for groupput (a) and anyput (b).
// N = 5, σ ∈ {0.1, 0.25, 0.5}, h ∈ {10, 50, 100, 150, 200, 250}; each point
// averages random networks sampled by the §VII-B process (the paper uses
// 1000 samples; pass a positional argument to change the default).
//
// The whole figure is one declarative sweep with a "sampled" node-set axis:
// protocol 0 is the achievable T^σ ((P4) solver), protocol 1 the oracle T*,
// crossed over (mode, h, σ, replicate). The sweep is emitted as a JSON
// manifest and executed through runner::SweepSession, so the figure is
// re-runnable (and resumable) as data via `econcast_sweep <manifest>`.
//
// The sampled node-set generator seeds one network stream per h value
// (derive_seed(0xF162000, h)) and gives replicate r the r-th draw, so all
// (protocol, mode, σ) cells at a given (h, replicate) evaluate the identical
// sampled network — the seed version's paired-sampling design, which keeps
// the σ comparison free of independent-sampling noise — and the printed
// numbers are independent of both the thread count and the host's core
// count (and bit-identical to the pre-manifest for_each implementation).
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "runner/sweep_spec.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace econcast;
  const long samples = bench::knob(argc, argv, 300);
  bench::banner("Figure 2", "T^sigma/T* vs heterogeneity h (N=5)");
  std::printf("samples per point: %ld (paper: 1000)\n\n", samples);

  const std::vector<double> h_values{10.0, 50.0, 100.0, 150.0, 200.0, 250.0};
  const std::vector<double> sigmas{0.1, 0.25, 0.5};
  const std::vector<model::Mode> modes{model::Mode::kGroupput,
                                       model::Mode::kAnyput};
  const std::string dir = bench::manifest_dir(argc, argv, "econcast-fig2");

  const runner::SweepSpec sweep =
      runner::SweepSpec("fig2")
          .protocols({protocol::p4_spec(model::Mode::kGroupput, 0.5),
                      protocol::oracle_spec(model::Mode::kGroupput)})
          .modes(modes)
          .sigmas(sigmas)
          .replicates(static_cast<std::size_t>(samples))
          .sampled_node_set(h_values, /*sample_seed=*/0xF162000);
  const runner::BatchResult run =
      bench::run_manifest_sweep(dir, "fig2", sweep, /*base_seed=*/1);

  const auto throughput = [](const protocol::SimResult& r, model::Mode mode) {
    return mode == model::Mode::kGroupput ? r.groupput : r.anyput;
  };

  for (std::size_t m = 0; m < modes.size(); ++m) {
    util::Table t({"h", "sigma", "mean T^s/T*", "95% CI"});
    for (std::size_t h_i = 0; h_i < h_values.size(); ++h_i) {
      for (std::size_t s_i = 0; s_i < sigmas.size(); ++s_i) {
        util::RunningStats ratio;
        for (std::size_t rep = 0; rep < static_cast<std::size_t>(samples);
             ++rep) {
          const double t_star = throughput(
              run.results[sweep.cell_index(1, m, 0, 0, h_i, s_i, rep)],
              modes[m]);
          if (t_star <= 0.0) continue;
          const double achievable = throughput(
              run.results[sweep.cell_index(0, m, 0, 0, h_i, s_i, rep)],
              modes[m]);
          ratio.add(achievable / t_star);
        }
        t.add_row();
        t.add_cell(h_values[h_i], 0);
        t.add_cell(sigmas[s_i], 2);
        t.add_cell(ratio.mean(), 4);
        t.add_cell(ratio.ci95_halfwidth(), 4);
      }
    }
    t.print(std::cout, std::string("Fig. 2 — ") + model::to_string(modes[m]));
    std::printf("\n");
  }
  std::printf(
      "paper: ratios increase as sigma decreases and approach 1 as sigma->0;\n"
      "       weak dependence on h; for homogeneous networks (h=10) the\n"
      "       anyput ratio is slightly above the groupput ratio.\n");
  return 0;
}
