// Reproduces Fig. 2: sensitivity of the achievable-to-oracle throughput
// ratio T^σ/T* to network heterogeneity h, for groupput (a) and anyput (b).
// N = 5, σ ∈ {0.1, 0.25, 0.5}, h ∈ {10, 50, 100, 150, 200, 250}; each point
// averages random networks sampled by the §VII-B process (the paper uses
// 1000 samples; pass a positional argument to change the default).
//
// The 36 (mode, h, σ) cells are independent, so they run in parallel through
// runner::ScenarioRunner::for_each. Each cell owns an Rng seeded from its
// h-value alone, so all (mode, σ) cells at a given h evaluate the identical
// sampled networks — the seed version's paired-sampling design, which keeps
// the σ comparison free of independent-sampling noise — and the printed
// numbers are independent of both the thread count and the host's core count.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "gibbs/p4_solver.h"
#include "model/node_params.h"
#include "oracle/clique_oracle.h"
#include "runner/scenario_runner.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace econcast;

struct Cell {
  model::Mode mode;
  double h;
  double sigma;
  util::RunningStats ratio;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace econcast;
  const long samples = bench::knob(argc, argv, 300);
  bench::banner("Figure 2", "T^sigma/T* vs heterogeneity h (N=5)");
  std::printf("samples per point: %ld (paper: 1000)\n\n", samples);

  const double h_values[] = {10.0, 50.0, 100.0, 150.0, 200.0, 250.0};
  const double sigmas[] = {0.1, 0.25, 0.5};

  std::vector<Cell> cells;
  for (const model::Mode mode : {model::Mode::kGroupput, model::Mode::kAnyput}) {
    for (const double h : h_values) {
      for (const double sigma : sigmas) {
        cells.push_back({mode, h, sigma, {}});
      }
    }
  }

  constexpr std::uint64_t kBaseSeed = 0xF162000;
  const runner::ScenarioRunner pool;
  pool.for_each(cells.size(), [&](std::size_t c) {
    Cell& cell = cells[c];
    util::Rng rng(runner::derive_seed(
        kBaseSeed, static_cast<std::uint64_t>(cell.h)));
    for (long s = 0; s < samples; ++s) {
      const auto nodes = model::sample_heterogeneous(5, cell.h, rng);
      const double t_star = oracle::solve(nodes, cell.mode).throughput;
      if (t_star <= 0.0) continue;
      const auto p4 = gibbs::solve_p4(nodes, cell.mode, cell.sigma);
      cell.ratio.add(p4.throughput / t_star);
    }
  });

  for (const model::Mode mode : {model::Mode::kGroupput, model::Mode::kAnyput}) {
    util::Table t({"h", "sigma", "mean T^s/T*", "95% CI"});
    for (const Cell& cell : cells) {
      if (cell.mode != mode) continue;
      t.add_row();
      t.add_cell(cell.h, 0);
      t.add_cell(cell.sigma, 2);
      t.add_cell(cell.ratio.mean(), 4);
      t.add_cell(cell.ratio.ci95_halfwidth(), 4);
    }
    t.print(std::cout, std::string("Fig. 2 — ") + model::to_string(mode));
    std::printf("\n");
  }
  std::printf(
      "paper: ratios increase as sigma decreases and approach 1 as sigma->0;\n"
      "       weak dependence on h; for homogeneous networks (h=10) the\n"
      "       anyput ratio is slightly above the groupput ratio.\n");
  return 0;
}
