// Reproduces Fig. 2: sensitivity of the achievable-to-oracle throughput
// ratio T^σ/T* to network heterogeneity h, for groupput (a) and anyput (b).
// N = 5, σ ∈ {0.1, 0.25, 0.5}, h ∈ {10, 50, 100, 150, 200, 250}; each point
// averages random networks sampled by the §VII-B process (the paper uses
// 1000 samples; pass a positional argument to change the default).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "gibbs/p4_solver.h"
#include "model/node_params.h"
#include "oracle/clique_oracle.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace econcast;
  const long samples = bench::knob(argc, argv, 300);
  bench::banner("Figure 2", "T^sigma/T* vs heterogeneity h (N=5)");
  std::printf("samples per point: %ld (paper: 1000)\n\n", samples);

  const double h_values[] = {10.0, 50.0, 100.0, 150.0, 200.0, 250.0};
  const double sigmas[] = {0.1, 0.25, 0.5};

  for (const model::Mode mode : {model::Mode::kGroupput, model::Mode::kAnyput}) {
    util::Table t({"h", "sigma", "mean T^s/T*", "95% CI"});
    for (const double h : h_values) {
      for (const double sigma : sigmas) {
        util::Rng rng(0xF16'2000 + static_cast<std::uint64_t>(h));
        util::RunningStats ratio;
        for (long s = 0; s < samples; ++s) {
          const auto nodes = model::sample_heterogeneous(5, h, rng);
          const double t_star = oracle::solve(nodes, mode).throughput;
          if (t_star <= 0.0) continue;
          const auto p4 = gibbs::solve_p4(nodes, mode, sigma);
          ratio.add(p4.throughput / t_star);
        }
        t.add_row();
        t.add_cell(h, 0);
        t.add_cell(sigma, 2);
        t.add_cell(ratio.mean(), 4);
        t.add_cell(ratio.ci95_halfwidth(), 4);
      }
    }
    t.print(std::cout, std::string("Fig. 2 — ") + model::to_string(mode));
    std::printf("\n");
  }
  std::printf(
      "paper: ratios increase as sigma decreases and approach 1 as sigma->0;\n"
      "       weak dependence on h; for homogeneous networks (h=10) the\n"
      "       anyput ratio is slightly above the groupput ratio.\n");
  return 0;
}
