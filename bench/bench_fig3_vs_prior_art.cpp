// Reproduces Fig. 3: throughput of EconCast normalized to the oracle as a
// function of the power-consumption ratio X/L (with L + X = 1 mW,
// ρ = 10 µW, N = 5), overlaid with the prior-art baselines on the groupput
// panel: Panda, Birthday, and the Searchlight upper bound.
#include <cstdio>
#include <iostream>

#include "baselines/birthday.h"
#include "baselines/panda.h"
#include "baselines/searchlight.h"
#include "bench_common.h"
#include "gibbs/p4_solver.h"
#include "oracle/clique_oracle.h"
#include "util/table.h"

int main() {
  using namespace econcast;
  bench::banner("Figure 3", "T^sigma/T* vs X/L, with prior art (N=5, rho=10uW)");

  constexpr std::size_t kN = 5;
  constexpr double kBudget = 10.0;    // µW
  constexpr double kTotal = 1000.0;   // L + X in µW
  const double ratios[] = {1.0 / 9, 1.0 / 4, 3.0 / 7, 2.0 / 3, 1.0,
                           3.0 / 2, 7.0 / 3, 4.0,     9.0};
  const double sigmas[] = {0.1, 0.25, 0.5};

  // Panel (a): groupput, including baselines.
  {
    util::Table t({"X/L", "s=0.1", "s=0.25", "s=0.5", "Panda", "Birthday",
                   "Searchlight"});
    for (const double r : ratios) {
      const double x = kTotal * r / (1.0 + r);
      const double l = kTotal - x;
      const auto nodes = model::homogeneous(kN, kBudget, l, x);
      const double t_star = oracle::groupput(nodes).throughput;
      t.add_row();
      t.add_cell(r, 3);
      for (const double sigma : sigmas)
        t.add_cell(gibbs::solve_p4(nodes, model::Mode::kGroupput, sigma)
                           .throughput / t_star,
                   4);
      t.add_cell(baselines::optimize_panda(kN, kBudget, l, x).throughput /
                     t_star,
                 4);
      t.add_cell(baselines::optimize_birthday(kN, kBudget, l, x,
                                              model::Mode::kGroupput)
                         .throughput / t_star,
                 4);
      baselines::SearchlightConfig sc;
      sc.budget = kBudget;
      sc.listen_power = l;
      t.add_cell(baselines::analyze_searchlight(sc).groupput_upper_bound(kN) /
                     t_star,
                 4);
    }
    t.print(std::cout, "Fig. 3(a) — groupput ratio T^s_g / T*_g");
  }
  std::printf("\n");

  // Panel (b): anyput.
  {
    util::Table t({"X/L", "s=0.1", "s=0.25", "s=0.5"});
    for (const double r : ratios) {
      const double x = kTotal * r / (1.0 + r);
      const double l = kTotal - x;
      const auto nodes = model::homogeneous(kN, kBudget, l, x);
      const double t_star = oracle::anyput(nodes).throughput;
      t.add_row();
      t.add_cell(r, 3);
      for (const double sigma : sigmas)
        t.add_cell(gibbs::solve_p4(nodes, model::Mode::kAnyput, sigma)
                           .throughput / t_star,
                   4);
    }
    t.print(std::cout, "Fig. 3(b) — anyput ratio T^s_a / T*_a");
  }

  // The headline claim.
  {
    const auto nodes = model::homogeneous(kN, kBudget, 500.0, 500.0);
    const double t_star = oracle::groupput(nodes).throughput;
    const double panda =
        baselines::optimize_panda(kN, kBudget, 500.0, 500.0).throughput;
    const double g05 =
        gibbs::solve_p4(nodes, model::Mode::kGroupput, 0.5).throughput;
    const double g025 =
        gibbs::solve_p4(nodes, model::Mode::kGroupput, 0.25).throughput;
    std::printf("\nheadline at X = L = 500uW: EconCast/Panda = %.1fx (s=0.5), "
                "%.1fx (s=0.25)   [oracle ratio %.3f/%.3f]\n",
                g05 / panda, g025 / panda, g05 / t_star, g025 / t_star);
    std::printf("paper: \"outperforms ... Panda by 6x and 17x with sigma=0.5 "
                "and sigma=0.25\"; ratio improves as X/L -> 1; anyput\n"
                "       degrades for large X/L.\n");
  }
  return 0;
}
