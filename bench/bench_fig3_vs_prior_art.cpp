// Reproduces Fig. 3: throughput of EconCast normalized to the oracle as a
// function of the power-consumption ratio X/L (with L + X = 1 mW,
// ρ = 10 µW, N = 5), overlaid with the prior-art baselines on the groupput
// panel: Panda, Birthday, and the Searchlight upper bound.
//
// The whole figure is two declarative sweeps over the protocol registry —
// each cell (power point × protocol × σ) is one scenario. The sweeps are
// emitted as JSON manifests (fig3a/fig3b) and executed through
// runner::SweepSession, so the figure is re-runnable (and resumable) as data
// via `econcast_sweep <manifest>`. The analytic protocols are
// deterministic, so the table matches the old direct-call implementation
// value for value.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "protocol/protocol.h"
#include "runner/scenario_runner.h"
#include "runner/sweep_spec.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace econcast;
  bench::banner("Figure 3", "T^sigma/T* vs X/L, with prior art (N=5, rho=10uW)");

  constexpr double kBudget = 10.0;    // µW
  constexpr double kTotal = 1000.0;   // L + X in µW
  const std::vector<double> ratios{1.0 / 9, 1.0 / 4, 3.0 / 7, 2.0 / 3, 1.0,
                                   3.0 / 2, 7.0 / 3, 4.0,     9.0};
  const std::vector<double> sigmas{0.1, 0.25, 0.5};
  const auto powers = runner::power_ratio_axis(ratios, kBudget, kTotal);
  const std::string dir = bench::manifest_dir(argc, argv, "econcast-fig3");

  // Panel (a): groupput, including baselines. Protocol axis order:
  // 0 = EconCast achievable (σ from the sigma axis), 1..3 = baselines
  // (σ-independent; their values are read at sigma index 0), 4 = oracle.
  const runner::SweepSpec sweep_a =
      runner::SweepSpec("fig3a")
          .protocols({protocol::p4_spec(model::Mode::kGroupput, 0.5),
                      protocol::panda_spec(), protocol::birthday_spec(),
                      protocol::searchlight_spec(),
                      protocol::oracle_spec(model::Mode::kGroupput)})
          .modes({model::Mode::kGroupput})
          .powers(powers)
          .sigmas(sigmas);
  const runner::BatchResult panel_a =
      bench::run_manifest_sweep(dir, "fig3a", sweep_a, /*base_seed=*/1);

  {
    util::Table t({"X/L", "s=0.1", "s=0.25", "s=0.5", "Panda", "Birthday",
                   "Searchlight"});
    for (std::size_t p = 0; p < powers.size(); ++p) {
      const double t_star =
          panel_a.results[sweep_a.cell_index(4, 0, 0, p, 0)].groupput;
      t.add_row();
      t.add_cell(ratios[p], 3);
      for (std::size_t s = 0; s < sigmas.size(); ++s)
        t.add_cell(
            panel_a.results[sweep_a.cell_index(0, 0, 0, p, 0, s)].groupput /
                t_star,
            4);
      for (std::size_t proto = 1; proto <= 3; ++proto)
        t.add_cell(
            panel_a.results[sweep_a.cell_index(proto, 0, 0, p, 0)].groupput /
                t_star,
            4);
    }
    t.print(std::cout, "Fig. 3(a) — groupput ratio T^s_g / T*_g");
  }
  std::printf("\n");

  // Panel (b): anyput — the achievable curve against the anyput oracle.
  const runner::SweepSpec sweep_b =
      runner::SweepSpec("fig3b")
          .protocols({protocol::p4_spec(model::Mode::kAnyput, 0.5),
                      protocol::oracle_spec(model::Mode::kAnyput)})
          .modes({model::Mode::kAnyput})
          .powers(powers)
          .sigmas(sigmas);
  const runner::BatchResult panel_b =
      bench::run_manifest_sweep(dir, "fig3b", sweep_b, /*base_seed=*/1);

  {
    util::Table t({"X/L", "s=0.1", "s=0.25", "s=0.5"});
    for (std::size_t p = 0; p < powers.size(); ++p) {
      const double t_star =
          panel_b.results[sweep_b.cell_index(1, 0, 0, p, 0)].anyput;
      t.add_row();
      t.add_cell(ratios[p], 3);
      for (std::size_t s = 0; s < sigmas.size(); ++s)
        t.add_cell(
            panel_b.results[sweep_b.cell_index(0, 0, 0, p, 0, s)].anyput /
                t_star,
            4);
    }
    t.print(std::cout, "Fig. 3(b) — anyput ratio T^s_a / T*_a");
  }

  // The headline claim, read straight from the panel (a) batch at the
  // X = L = 500 µW power point (ratio index 4).
  {
    constexpr std::size_t kSymmetric = 4;  // ratios[4] == 1.0
    const double t_star =
        panel_a.results[sweep_a.cell_index(4, 0, 0, kSymmetric, 0)].groupput;
    const double panda =
        panel_a.results[sweep_a.cell_index(1, 0, 0, kSymmetric, 0)].groupput;
    const double g05 =
        panel_a.results[sweep_a.cell_index(0, 0, 0, kSymmetric, 0, 2)]
            .groupput;
    const double g025 =
        panel_a.results[sweep_a.cell_index(0, 0, 0, kSymmetric, 0, 1)]
            .groupput;
    std::printf("\nheadline at X = L = 500uW: EconCast/Panda = %.1fx (s=0.5), "
                "%.1fx (s=0.25)   [oracle ratio %.3f/%.3f]\n",
                g05 / panda, g025 / panda, g05 / t_star, g025 / t_star);
    std::printf("paper: \"outperforms ... Panda by 6x and 17x with sigma=0.5 "
                "and sigma=0.25\"; ratio improves as X/L -> 1; anyput\n"
                "       degrades for large X/L.\n");
  }
  return 0;
}
