// Reproduces Fig. 7 (testbed emulation): experimental EconCast-C groupput
// normalized to the achievable throughput computed from the target budget
// ("Ideal", T~/T^σ) and from the actual measured consumption ("Relaxed",
// T~/T̄^σ), plus the virtual-battery variance markers, for
// N ∈ {5, 10} x ρ ∈ {1, 5} mW x σ ∈ {0.25, 0.5} on the emulated
// TI eZ430-RF2500-SEH nodes (see DESIGN.md §5 for the substitution).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "gibbs/p4_solver.h"
#include "testbed/firmware.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace econcast;
  const long hours = bench::knob(argc, argv, 12);
  const sim::QueueEngine engine = bench::engine_flag(argc, argv);
  bench::kernels_flag(argc, argv);
  bench::banner("Figure 7", "testbed emulation: ideal/relaxed ratios + battery variance");
  std::printf("emulated duration per point: %ld h (paper: up to 24 h)\n\n",
              hours);

  util::Table t({"N", "rho mW", "sigma", "T~ (x1e-3)", "Ideal T~/T^s",
                 "Relaxed", "P mW", "battery min/mean/max"});
  for (const std::size_t n : {5u, 10u}) {
    for (const double rho : {1.0, 5.0}) {
      for (const double sigma : {0.25, 0.5}) {
        testbed::TestbedConfig cfg;
        cfg.n = n;
        cfg.budget_mw = rho;
        cfg.sigma = sigma;
        cfg.duration_ms = static_cast<double>(hours) * 3600e3;
        cfg.warmup_ms = cfg.duration_ms / 3.0;
        cfg.seed = 1000 + n * 10 + static_cast<std::uint64_t>(rho);
        cfg.queue_engine = engine;
        const auto r = testbed::run_testbed(cfg);

        const auto nodes = model::homogeneous(
            n, rho, cfg.hw.listen_power_mw, cfg.hw.transmit_power_mw);
        const double t_ideal =
            gibbs::solve_p4(nodes, model::Mode::kGroupput, sigma).throughput;
        double p_actual = 0.0;
        for (const double p : r.actual_power_mw) p_actual += p;
        p_actual /= static_cast<double>(n);
        const auto relaxed_nodes = model::homogeneous(
            n, p_actual, cfg.hw.listen_power_mw, cfg.hw.transmit_power_mw);
        const double t_relaxed =
            gibbs::solve_p4(relaxed_nodes, model::Mode::kGroupput, sigma)
                .throughput;

        t.add_row();
        t.add_cell(static_cast<std::int64_t>(n));
        t.add_cell(rho, 0);
        t.add_cell(sigma, 2);
        t.add_cell(r.groupput * 1e3, 2);
        t.add_cell(r.groupput / t_ideal, 3);
        t.add_cell(r.groupput / t_relaxed, 3);
        t.add_cell(p_actual, 3);
        t.add_cell(util::format_double(r.battery_ratio_min, 3) + "/" +
                   util::format_double(r.battery_ratio_mean, 3) + "/" +
                   util::format_double(r.battery_ratio_max, 3));
      }
    }
  }
  t.print(std::cout, "Fig. 7 — testbed emulation");
  std::printf(
      "\npaper: Ideal (rho-normalized) ratios 67-81%%, Relaxed (P-normalized)\n"
      "       57-77%% across all settings (Relaxed < Ideal since P > rho);\n"
      "       actual power P exceeds rho by ~11%% (1 mW) and ~4%% (5 mW);\n"
      "       battery ratios within 7%% (sigma=0.25) / 3%% (sigma=0.5).\n");
  return 0;
}
