// Shared helpers for the benchmark harnesses. Every bench binary regenerates
// one table or figure of the paper and prints (a) the measured rows and (b)
// a `paper:` reference line with the values/claims the paper states, so the
// reproduction can be eyeballed in one pass.
#ifndef ECONCAST_BENCH_BENCH_COMMON_H
#define ECONCAST_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace econcast::bench {

/// Standard banner: what is being reproduced and from where.
inline void banner(const char* experiment, const char* description) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", experiment, description);
  std::printf("(Chen, Ghaderi, Rubenstein, Zussman, CoNEXT'16 / arXiv:1610.04203)\n");
  std::printf("================================================================\n");
}

/// Reads an integer knob from argv ("--samples=N" style positional override)
/// falling back to `def`. Benches accept a single optional positional arg to
/// scale their workload.
inline long knob(int argc, char** argv, long def) {
  if (argc > 1) {
    const long v = std::atol(argv[1]);
    if (v > 0) return v;
  }
  return def;
}

}  // namespace econcast::bench

#endif  // ECONCAST_BENCH_BENCH_COMMON_H
