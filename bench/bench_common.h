// Shared helpers for the benchmark harnesses. Every bench binary regenerates
// one table or figure of the paper and prints (a) the measured rows and (b)
// a `paper:` reference line with the values/claims the paper states, so the
// reproduction can be eyeballed in one pass. The sweep-shaped benches
// additionally emit their sweeps as JSON manifests and execute them through
// runner::SweepSession (progress on stderr, tables on stdout), so every
// figure doubles as an `econcast_sweep`-runnable data file.
#ifndef ECONCAST_BENCH_BENCH_COMMON_H
#define ECONCAST_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "runner/scenario_runner.h"
#include "runner/sweep_session.h"
#include "sim/event_queue.h"
#include "sim/hotpath.h"
#include "util/kernels.h"

namespace econcast::bench {

/// Standard banner: what is being reproduced and from where.
inline void banner(const char* experiment, const char* description) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", experiment, description);
  std::printf("(Chen, Ghaderi, Rubenstein, Zussman, CoNEXT'16 / arXiv:1610.04203)\n");
  std::printf("================================================================\n");
}

/// Reads an integer knob from argv ("--samples=N" style positional override)
/// falling back to `def`. Benches accept a single optional positional arg to
/// scale their workload; "--flag" arguments are skipped.
inline long knob(int argc, char** argv, long def) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;
    const long v = std::atol(argv[i]);
    return v > 0 ? v : def;
  }
  return def;
}

/// Reads a "--name=value" string flag from argv. Only the '=' form is
/// supported so flag values can never be mistaken for the positional
/// workload knob (and vice versa).
inline std::string flag(int argc, char** argv, const char* name,
                        const std::string& def = "") {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=')
      return std::string(argv[i] + len + 1);
  }
  return def;
}

/// Reads the event-queue backend from "--engine=binary-heap|calendar"
/// (default: the reference heap). Backends cannot change the printed
/// tables — pop order is a strict total order on (time, seq) — so this
/// flag only trades wall-clock time, and CI diffs the tables across
/// engines to prove it.
inline sim::QueueEngine engine_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    // Benches only take '='-form flags; catch the space form instead of
    // silently benchmarking the default backend.
    if (std::strcmp(argv[i], "--engine") == 0) {
      std::fprintf(stderr, "use --engine=NAME (flags take the '=' form)\n");
      std::exit(2);
    }
  }
  const std::string token = flag(argc, argv, "--engine", "binary-heap");
  try {
    return sim::queue_engine_from_token(token);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

/// True when the bare flag `name` appears anywhere in argv.
inline bool bool_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

/// Reads the simulator hot-path engine from "--hotpath=reference|optimized"
/// (default: optimized). Same contract as --engine: the engines produce
/// byte-identical tables — the optimized path only adds O(1) listener
/// counting and rate-exponential memoization on top of the same RNG stream —
/// so this flag trades wall-clock time only, and CI diffs the tables across
/// engines to prove it.
inline sim::HotpathEngine hotpath_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hotpath") == 0) {
      std::fprintf(stderr, "use --hotpath=NAME (flags take the '=' form)\n");
      std::exit(2);
    }
  }
  const std::string token = flag(argc, argv, "--hotpath", "optimized");
  try {
    return sim::hotpath_engine_from_token(token);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

/// Applies the micro-kernel tier from "--kernels=scalar|avx2" (default: the
/// cpuid-selected tier, same as the ECONCAST_KERNELS env override). Tiers
/// are proven bit-identical by the differential tests, so — like --engine
/// and --hotpath — this flag trades wall-clock time only and CI diffs the
/// tables across tiers to prove it.
inline void kernels_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--kernels") == 0) {
      std::fprintf(stderr, "use --kernels=NAME (flags take the '=' form)\n");
      std::exit(2);
    }
  }
  const std::string token = flag(argc, argv, "--kernels");
  try {
    if (token.empty()) {
      // No flag: force the first-use ECONCAST_KERNELS/cpuid resolution now,
      // so a bad env value is a clean startup error instead of an uncaught
      // throw mid-sweep.
      util::active_kernel_tier();
      return;
    }
    util::set_kernel_tier(util::kernel_tier_from_token(token));
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "--kernels: %s\n", e.what());
    std::exit(2);
  }
}

/// Directory the sweep-shaped benches write manifests/results into:
/// --manifest-dir=DIR if given, else <temp>/<default_name>. Created on
/// demand.
inline std::string manifest_dir(int argc, char** argv,
                                const char* default_name) {
  std::string dir = flag(argc, argv, "--manifest-dir");
  if (dir.empty())
    dir = (std::filesystem::temp_directory_path() / default_name).string();
  std::filesystem::create_directories(dir);
  return dir;
}

/// Progress hook for the long sweeps: "[label] done/total name" on stderr
/// (stdout stays reserved for the tables) every `every` completions and at
/// the end. every == 0 picks roughly one line per eighth of the batch.
inline std::function<void(const runner::ScenarioProgress&)> progress_printer(
    std::string label, std::size_t every = 0) {
  return [label = std::move(label),
          every](const runner::ScenarioProgress& p) mutable {
    std::size_t stride = every;
    if (stride == 0) stride = p.total > 8 ? p.total / 8 : 1;
    if (p.done % stride == 0 || p.done == p.total)
      std::fprintf(stderr, "[%s] %zu/%zu %s\n", label.c_str(), p.done,
                   p.total, p.scenario->name.c_str());
  };
}

/// Emits `spec` as "<dir>/<name>.manifest.json", executes it through a fresh
/// SweepSession (stale results are discarded — benches always recompute),
/// and returns the aggregated batch. The manifest file stays behind so the
/// same sweep can be re-run or resumed standalone:
///   econcast_sweep <dir>/<name>.manifest.json
inline runner::BatchResult run_manifest_sweep(
    const std::string& dir, const std::string& name,
    const runner::SweepSpec& spec, std::uint64_t base_seed,
    bool reseed = true,
    std::shared_ptr<exec::Executor> executor = nullptr) {
  const std::string manifest_path = dir + "/" + name + ".manifest.json";
  const std::string results_path = dir + "/" + name + ".results.jsonl";
  const runner::SweepManifest manifest(spec, base_seed, reseed);
  runner::write_manifest(manifest, manifest_path);
  std::remove(results_path.c_str());

  runner::SweepSession::Options options;
  options.executor = std::move(executor);
  options.on_cell_done = progress_printer(name);
  runner::SweepSession session(manifest, results_path, options);
  std::fprintf(stderr, "[%s] manifest: %s (%zu cells)\n", name.c_str(),
               manifest_path.c_str(), session.cell_count());
  session.run();
  return session.results();
}

}  // namespace econcast::bench

#endif  // ECONCAST_BENCH_BENCH_COMMON_H
