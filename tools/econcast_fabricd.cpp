// econcast_fabricd — the sweep-fabric coordinator daemon.
//
//   econcast_fabricd <spool-dir> [--shards K] [--lease SEC]
//                    [--interval SEC] [--once] [--quiet]
//
// Watches a spool directory for `*.manifest.json` files and, each pass,
// for every manifest: pins the K-way shard plan (plan.json), releases
// shard claims whose worker heartbeat is older than the lease (the shard
// becomes claimable again and the next `econcast_sweep --shard` resumes it
// from its checkpoint), and — once every shard's results file is complete —
// merges the shard files into the canonical `<manifest>.results.jsonl`,
// byte-identical to a single-process run. The daemon holds no state between
// passes (everything lives in the fabric directories), so it can be killed
// and restarted freely. `--once` runs a single pass and exits: the
// deterministic mode CI drives step by step.
//
// Exit codes match econcast_sweep: 0 ok, 1 runtime failure (a pass threw;
// rerunning may succeed), 2 usage.
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "fabric/coordinator.h"

namespace {

enum ExitCode : int {
  kExitOk = 0,
  kExitRuntime = 1,
  kExitUsage = 2,
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <spool-dir> [--shards K] [--lease SEC] [--interval SEC]\n"
      "       [--cache DIR] [--once] [--quiet]\n"
      "\n"
      "  --shards K      shards per manifest for newly pinned plans\n"
      "                  (default 3; already-pinned plans keep their count)\n"
      "  --cache DIR     result-cache directory: newly pinned plans are\n"
      "                  cost-balanced (shards carry equal estimated\n"
      "                  remaining cost, cached cells count as zero)\n"
      "                  instead of equal-split; already-pinned plans keep\n"
      "                  their bounds\n"
      "  --lease SEC     heartbeat lease: a claim this stale is released\n"
      "                  and its shard reassigned (default 300; 0 treats\n"
      "                  every claim as stale — deterministic for CI)\n"
      "  --interval SEC  seconds between passes in daemon mode (default 5)\n"
      "  --once          run exactly one pass, then exit\n"
      "  --quiet         suppress per-manifest status lines\n",
      argv0);
  std::exit(kExitUsage);
}

bool parse_u64(const char* text, unsigned long long& out) {
  if (text[0] < '0' || text[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(text, &end, 10);
  return *end == '\0' && errno != ERANGE;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace econcast;

  std::string spool_dir;
  fabric::Coordinator::Options options;
  unsigned long long interval_seconds = 5;
  bool once = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    unsigned long long parsed = 0;
    if (std::strcmp(arg, "--shards") == 0) {
      if (!parse_u64(value(), parsed) || parsed == 0) usage(argv[0]);
      options.shard_count = static_cast<std::size_t>(parsed);
    } else if (std::strcmp(arg, "--lease") == 0) {
      if (!parse_u64(value(), parsed)) usage(argv[0]);
      options.lease_seconds = static_cast<std::int64_t>(parsed);
    } else if (std::strcmp(arg, "--interval") == 0) {
      if (!parse_u64(value(), parsed)) usage(argv[0]);
      interval_seconds = parsed;
    } else if (std::strcmp(arg, "--cache") == 0) {
      options.cache_dir = value();
      if (options.cache_dir.empty()) usage(argv[0]);
    } else if (std::strcmp(arg, "--once") == 0) {
      once = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (arg[0] == '-') {
      usage(argv[0]);
    } else if (spool_dir.empty()) {
      spool_dir = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (spool_dir.empty()) usage(argv[0]);

  fabric::Coordinator coordinator(spool_dir, options);
  do {
    try {
      const std::vector<fabric::Coordinator::SweepStatus> statuses =
          coordinator.pass();
      if (!quiet) {
        for (const auto& s : statuses) {
          std::printf(
              "%s: %zu/%zu cells, %zu/%zu shards complete, %zu claimed, "
              "%zu reassigned%s%s\n",
              s.manifest_path.c_str(), s.cells_done, s.total_cells,
              s.shards_complete, s.shard_count, s.shards_claimed,
              s.shards_reassigned, s.plan_pinned ? ", plan pinned" : "",
              s.merged ? ", merged" : "");
        }
        std::fflush(stdout);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "econcast_fabricd: spool '%s': %s\n",
                   spool_dir.c_str(), e.what());
      if (once) return kExitRuntime;
      // Daemon mode rides out transient failures (a manifest still being
      // copied in, NFS hiccups) and retries next pass.
    }
    if (!once)
      std::this_thread::sleep_for(std::chrono::seconds(interval_seconds));
  } while (!once);
  return kExitOk;
}
