// econcast_sweep — run any JSON sweep manifest end-to-end with
// checkpoint/resume.
//
//   econcast_sweep <manifest.json> [--results PATH] [--threads N]
//                  [--limit N] [--engine NAME] [--hotpath NAME] [--fresh]
//                  [--progress] [--quiet]
//
// Completed cells stream to the results JSONL next to the manifest (or
// --results). Re-running the same command resumes: the completed prefix is
// loaded, a partially written trailing line (from a kill) is truncated, and
// only the remaining cells execute — the final file is byte-identical to an
// uninterrupted run. --limit N checkpoints after N new cells and exits,
// which is how CI exercises the kill/resume path deterministically.
// --engine overrides the event-queue backend for every discrete-event cell
// (binary-heap or calendar); --hotpath overrides the simulator hot-path
// engine for every EconCast cell (reference or optimized). Neither knob can
// change results, so mixing them across a resumed checkpoint is safe.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

#include "runner/sweep_session.h"
#include "sim/event_queue.h"
#include "sim/hotpath.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <manifest.json> [--results PATH] [--threads N]\n"
               "       [--limit N] [--engine NAME] [--hotpath NAME]\n"
               "       [--fresh] [--progress] [--quiet]\n"
               "\n"
               "  --results PATH  results JSONL (default: manifest path with\n"
               "                  .json replaced by .results.jsonl)\n"
               "  --threads N     cap worker threads (default: all cores)\n"
               "  --limit N       stop after N newly completed cells; rerun\n"
               "                  to resume from the checkpoint\n"
               "  --engine NAME   event-queue backend for the simulated\n"
               "                  cells: binary-heap or calendar (results\n"
               "                  are identical; only wall clock changes)\n"
               "  --hotpath NAME  simulator hot-path engine for the EconCast\n"
               "                  cells: reference or optimized (results are\n"
               "                  identical; only wall clock changes)\n"
               "  --fresh         discard an existing results file first\n"
               "  --progress      print a line per completed cell to stderr\n"
               "  --quiet         suppress the completion summary\n",
               argv0);
  std::exit(2);
}

bool parse_size(const char* text, std::size_t& out) {
  // strtoull alone is not enough here: it skips leading whitespace, accepts
  // a sign ("-1" silently wraps to 2^64-1 — a huge --threads cap), and
  // saturates on overflow with only errno raised. Require plain decimal
  // digits and reject out-of-range values.
  if (text[0] < '0' || text[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (*end != '\0' || errno == ERANGE) return false;
  out = static_cast<std::size_t>(v);
  return static_cast<unsigned long long>(out) == v;  // 32-bit size_t
}

}  // namespace

int main(int argc, char** argv) {
  using namespace econcast;

  std::string manifest_path;
  std::string results_path;
  std::string engine;
  std::string hotpath;
  std::size_t threads = 0;
  std::size_t limit = 0;
  bool fresh = false;
  bool progress = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (std::strcmp(arg, "--results") == 0) {
      results_path = value();
    } else if (std::strcmp(arg, "--threads") == 0) {
      if (!parse_size(value(), threads)) usage(argv[0]);
    } else if (std::strcmp(arg, "--limit") == 0) {
      if (!parse_size(value(), limit)) usage(argv[0]);
    } else if (std::strcmp(arg, "--engine") == 0) {
      engine = value();
      try {
        (void)econcast::sim::queue_engine_from_token(engine);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--hotpath") == 0) {
      hotpath = value();
      try {
        (void)econcast::sim::hotpath_engine_from_token(hotpath);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--fresh") == 0) {
      fresh = true;
    } else if (std::strcmp(arg, "--progress") == 0) {
      progress = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (arg[0] == '-') {
      usage(argv[0]);
    } else if (manifest_path.empty()) {
      manifest_path = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (manifest_path.empty()) usage(argv[0]);
  if (results_path.empty())
    results_path = runner::SweepSession::default_results_path(manifest_path);

  try {
    if (fresh) std::remove(results_path.c_str());

    runner::SweepSession::Options options;
    options.num_threads = threads;
    if (progress) {
      options.on_cell_done = [](const runner::ScenarioProgress& p) {
        std::fprintf(stderr, "[%zu/%zu] %s\n", p.done, p.total,
                     p.scenario->name.c_str());
      };
    }

    runner::SweepManifest manifest = runner::load_manifest(manifest_path);
    if (!engine.empty()) manifest.queue_engine = engine;
    if (!hotpath.empty()) manifest.hotpath_engine = hotpath;

    runner::SweepSession session(std::move(manifest), results_path, options);
    const std::size_t resumed = session.completed_cells();
    const std::size_t ran = session.run(limit);

    if (!quiet) {
      std::printf("sweep '%s': %zu/%zu cells complete (%zu resumed, %zu run)\n",
                  session.manifest().spec.name().c_str(),
                  session.completed_cells(), session.cell_count(), resumed,
                  ran);
      std::printf("results: %s\n", session.results_path().c_str());
      if (session.complete()) {
        const runner::BatchResult all = session.results();
        std::printf(
            "summary: groupput mean %.6g (stddev %.3g), anyput mean %.6g, "
            "mean node power %.6g\n",
            all.summary.groupput.mean(), all.summary.groupput.stddev(),
            all.summary.anyput.mean(), all.summary.node_power.mean());
      } else {
        std::printf("checkpointed early (--limit %zu); rerun to resume\n",
                    limit);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "econcast_sweep: %s\n", e.what());
    return 1;
  }
  return 0;
}
