// econcast_sweep — run any JSON sweep manifest end-to-end with
// checkpoint/resume, as one shard of a distributed (fabric) sweep, or as
// the merge step that combines shard files into the canonical results.
//
//   econcast_sweep <manifest.json> [--results PATH] [--threads N]
//                  [--limit N] [--engine NAME] [--hotpath NAME] [--fresh]
//                  [--progress] [--quiet]
//   econcast_sweep <manifest.json> --dry-run
//   econcast_sweep <manifest.json> --shard I/K [--worker-id ID] [--threads N]
//                  [--limit N] [--engine NAME] [--hotpath NAME] [--progress]
//   econcast_sweep <manifest.json> --merge [--shards K] [--results PATH]
//
// Completed cells stream to the results JSONL next to the manifest (or
// --results). Re-running the same command resumes: the completed prefix is
// loaded, a partially written trailing line (from a kill) is truncated, and
// only the remaining cells execute — the final file is byte-identical to an
// uninterrupted run. --limit N checkpoints after N new cells and exits,
// which is how CI exercises the kill/resume path deterministically.
//
// --shard I/K claims shard I of a K-way split (src/fabric): the shard's
// cells stream to <manifest>.fabric/shard-I-of-K.jsonl under a heartbeating
// claim file, and kill/resume works per shard exactly as it does for whole
// sweeps. --merge validates and concatenates the shard files into the
// canonical results file, byte-identical to a single-process run. See the
// README's "Distributed sweeps" section and tools/econcast_fabricd.cpp for
// the coordinator that automates planning, reassignment and merging.
//
// Exit codes (workers and spool scripts key retry decisions off these):
//   0  success (including a --shard no-op on an already-complete shard)
//   1  runtime failure — a cell failed, results/claim I/O failed, the shard
//      was busy or reassigned mid-run; the checkpoint is intact, retryable
//   2  usage error — bad flags; nothing was read or written
//   3  manifest failure — the file named in the message is unreadable,
//      unparsable or invalid; retrying cannot succeed
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "fabric/merger.h"
#include "fabric/shard_plan.h"
#include "fabric/worker.h"
#include "protocol/protocol_json.h"
#include "runner/cell_cache.h"
#include "runner/cost_model.h"
#include "runner/sweep_session.h"
#include "sim/event_queue.h"
#include "sim/hotpath.h"
#include "util/json.h"
#include "util/kernels.h"

namespace {

enum ExitCode : int {
  kExitOk = 0,
  kExitRuntime = 1,
  kExitUsage = 2,
  kExitManifest = 3,
};

/// Wall clock for progress rates, ETAs and summary lines. Telemetry only:
/// no result byte ever depends on it.
double telemetry_now_s() {
  using clock = std::chrono::steady_clock;  // NOLINT-DETERMINISM(wall-clock): telemetry display only, never results
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <manifest.json> [--results PATH] [--threads N]\n"
      "       [--limit N] [--engine NAME] [--hotpath NAME]\n"
      "       [--kernels NAME] [--cache DIR|off] [--order NAME]\n"
      "       [--fresh] [--progress] [--quiet]\n"
      "   or: %s <manifest.json> --dry-run\n"
      "   or: %s <manifest.json> --shard I/K [--worker-id ID] [options]\n"
      "   or: %s <manifest.json> --merge [--shards K] [--results PATH]\n"
      "   or: %s cache-stats <dir>\n"
      "   or: %s cache-gc <dir> --max-bytes N\n"
      "\n"
      "  --results PATH  results JSONL (default: manifest path with\n"
      "                  .json replaced by .results.jsonl); with --merge,\n"
      "                  where the merged file is written\n"
      "  --threads N     cap worker threads (default: all cores)\n"
      "  --limit N       stop after N newly completed cells; rerun\n"
      "                  to resume from the checkpoint\n"
      "  --engine NAME   event-queue backend for the simulated\n"
      "                  cells: binary-heap or calendar (results\n"
      "                  are identical; only wall clock changes)\n"
      "  --hotpath NAME  simulator hot-path engine for the EconCast\n"
      "                  cells: reference or optimized (results are\n"
      "                  identical; only wall clock changes)\n"
      "  --kernels NAME  micro-kernel tier for the whole process:\n"
      "                  scalar or avx2 (default: best the CPU supports;\n"
      "                  results are identical, only wall clock changes)\n"
      "  --cache DIR     content-addressed result cache: cells already in\n"
      "                  DIR skip execution, new cells are published; the\n"
      "                  results file is byte-identical either way\n"
      "                  ('off', the default, disables caching)\n"
      "  --order NAME    submission order for pending cells: expansion\n"
      "                  (default) or cost (longest-expected-first per the\n"
      "                  calibrated cost model; same results, smaller\n"
      "                  makespan on skewed sweeps)\n"
      "  --fresh         discard an existing results file first\n"
      "  --progress      print a line per completed cell to stderr\n"
      "  --quiet         suppress the completion summary\n"
      "  --dry-run       parse + validate the manifest, print the cell\n"
      "                  count and axes, execute nothing\n"
      "  --shard I/K     run only shard I (0-based) of a K-way split,\n"
      "                  claiming <manifest>.fabric/shard-I-of-K under a\n"
      "                  heartbeat lease\n"
      "  --worker-id ID  id recorded in the shard claim (default pid-<pid>)\n"
      "  --merge         validate + concatenate all shard files into the\n"
      "                  canonical results file\n"
      "  --shards K      shard count for --merge when no plan.json exists\n"
      "  cache-stats     print entry count, bytes and per-protocol\n"
      "                  breakdown of a cache directory\n"
      "  cache-gc        delete oldest entries until the cache directory\n"
      "                  is within --max-bytes\n"
      "\n"
      "exit codes: 0 ok, 1 runtime failure (retryable), 2 usage,\n"
      "            3 manifest parse/validate failure (fatal)\n",
      argv0, argv0, argv0, argv0, argv0, argv0);
  std::exit(kExitUsage);
}

bool parse_size(const char* text, std::size_t& out) {
  // strtoull alone is not enough here: it skips leading whitespace, accepts
  // a sign ("-1" silently wraps to 2^64-1 — a huge --threads cap), and
  // saturates on overflow with only errno raised. Require plain decimal
  // digits and reject out-of-range values.
  if (text[0] < '0' || text[0] > '9') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (*end != '\0' || errno == ERANGE) return false;
  out = static_cast<std::size_t>(v);
  return static_cast<unsigned long long>(out) == v;  // 32-bit size_t
}

/// "I/K" with 0 <= I < K.
bool parse_shard(const char* text, std::size_t& shard, std::size_t& count) {
  const char* slash = std::strchr(text, '/');
  if (slash == nullptr) return false;
  const std::string left(text, slash);
  if (!parse_size(left.c_str(), shard) || !parse_size(slash + 1, count))
    return false;
  return count > 0 && shard < count;
}

std::string join_doubles(const std::vector<double>& values) {
  std::string out;
  for (double v : values) {
    if (!out.empty()) out += ", ";
    out += econcast::util::json::format_double(v);
  }
  return out;
}

void print_dry_run(const std::string& manifest_path,
                   const econcast::runner::SweepManifest& manifest) {
  using econcast::protocol::mode_to_token;
  const econcast::runner::SweepSpec& spec = manifest.spec;
  std::printf("manifest: %s\n", manifest_path.c_str());
  std::printf("sweep '%s': %zu cells\n", spec.name().c_str(),
              spec.cell_count());

  std::string protocols;
  for (const auto& p : spec.protocol_axis()) {
    if (!protocols.empty()) protocols += ", ";
    protocols += p.name;
  }
  std::printf("  protocols:   %s (%zu)\n", protocols.c_str(),
              spec.protocol_axis().size());

  std::string modes;
  for (const auto m : spec.mode_axis()) {
    if (!modes.empty()) modes += ", ";
    modes += mode_to_token(m);
  }
  std::printf("  modes:       %s (%zu)\n", modes.c_str(),
              spec.mode_axis().size());

  std::string counts;
  for (const std::size_t n : spec.node_count_axis()) {
    if (!counts.empty()) counts += ", ";
    counts += std::to_string(n);
  }
  std::printf("  node_counts: %s (%zu)\n", counts.c_str(),
              spec.node_count_axis().size());

  std::string powers;
  for (const auto& p : spec.power_axis()) {
    if (!powers.empty()) powers += ", ";
    powers += "(rho " + econcast::util::json::format_double(p.budget) +
              ", L " + econcast::util::json::format_double(p.listen_power) +
              ", X " + econcast::util::json::format_double(p.transmit_power) +
              ")";
  }
  std::printf("  powers:      %s (%zu)\n", powers.c_str(),
              spec.power_axis().size());

  if (spec.node_set_kind() == "sampled")
    std::printf("  h:           %s (%zu)\n",
                join_doubles(spec.heterogeneity_axis()).c_str(),
                spec.heterogeneity_axis().size());

  std::printf("  sigmas:      %s (%zu)\n",
              join_doubles(spec.sigma_axis()).c_str(),
              spec.sigma_axis().size());
  std::printf("  replicates:  %zu\n", spec.replicate_count());
  std::printf("  topology:    %s\n", spec.topology_kind().c_str());
  std::printf("  node_set:    %s\n", spec.node_set_kind().c_str());
  std::printf("  seeding:     base_seed %s, reseed %s\n",
              econcast::util::json::u64_to_string(manifest.base_seed).c_str(),
              manifest.reseed ? "true" : "false");
  if (!manifest.queue_engine.empty())
    std::printf("  queue_engine: %s\n", manifest.queue_engine.c_str());
  if (!manifest.hotpath_engine.empty())
    std::printf("  hotpath_engine: %s\n", manifest.hotpath_engine.c_str());
}

int cache_stats_main(int argc, char** argv) {
  if (argc != 3 || argv[2][0] == '-') usage(argv[0]);
  const std::string dir = argv[2];
  const econcast::runner::CellCache::DirStats stats =
      econcast::runner::CellCache::scan(dir);
  std::printf("cache %s: %zu entries, %llu bytes\n", dir.c_str(),
              stats.entries, static_cast<unsigned long long>(stats.bytes));
  for (const auto& [name, count] : stats.entries_by_protocol)
    std::printf("  %-14s %zu entries\n", name.c_str(), count);
  std::printf("recorded compute: %.3f s of cell wall clock\n",
              stats.total_wall_ms / 1000.0);
  return kExitOk;
}

int cache_gc_main(int argc, char** argv) {
  std::string dir;
  std::size_t max_bytes = 0;
  bool have_max = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-bytes") == 0) {
      if (i + 1 >= argc || !parse_size(argv[++i], max_bytes)) usage(argv[0]);
      have_max = true;
    } else if (argv[i][0] == '-' || !dir.empty()) {
      usage(argv[0]);
    } else {
      dir = argv[i];
    }
  }
  if (dir.empty() || !have_max) usage(argv[0]);
  const econcast::runner::CellCache::GcReport report =
      econcast::runner::CellCache::gc(dir, max_bytes);
  std::printf("cache %s: removed %zu of %zu entries (%llu -> %llu bytes)\n",
              dir.c_str(), report.entries_removed, report.entries_before,
              static_cast<unsigned long long>(report.bytes_before),
              static_cast<unsigned long long>(report.bytes_after));
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace econcast;

  if (argc >= 2) {
    // Cache maintenance subcommands take no manifest; dispatch before flag
    // parsing.
    if (std::strcmp(argv[1], "cache-stats") == 0)
      return cache_stats_main(argc, argv);
    if (std::strcmp(argv[1], "cache-gc") == 0)
      return cache_gc_main(argc, argv);
  }

  std::string manifest_path;
  std::string results_path;
  std::string engine;
  std::string hotpath;
  std::string kernels;
  std::string worker_id;
  std::string cache_dir;  // empty = caching off
  bool cost_order = false;
  bool order_set = false;
  std::size_t threads = 0;
  std::size_t limit = 0;
  std::size_t shard = 0;
  std::size_t shard_count = 0;  // 0: not sharded
  std::size_t merge_shards = 0;
  bool fresh = false;
  bool progress = false;
  bool quiet = false;
  bool dry_run = false;
  bool merge = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (std::strcmp(arg, "--results") == 0) {
      results_path = value();
    } else if (std::strcmp(arg, "--threads") == 0) {
      if (!parse_size(value(), threads)) usage(argv[0]);
    } else if (std::strcmp(arg, "--limit") == 0) {
      if (!parse_size(value(), limit)) usage(argv[0]);
    } else if (std::strcmp(arg, "--shard") == 0) {
      if (!parse_shard(value(), shard, shard_count)) usage(argv[0]);
    } else if (std::strcmp(arg, "--shards") == 0) {
      if (!parse_size(value(), merge_shards) || merge_shards == 0)
        usage(argv[0]);
    } else if (std::strcmp(arg, "--worker-id") == 0) {
      worker_id = value();
    } else if (std::strcmp(arg, "--engine") == 0) {
      engine = value();
      try {
        (void)econcast::sim::queue_engine_from_token(engine);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--hotpath") == 0) {
      hotpath = value();
      try {
        (void)econcast::sim::hotpath_engine_from_token(hotpath);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--kernels") == 0) {
      kernels = value();
      try {
        (void)econcast::util::kernel_tier_from_token(kernels);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--cache") == 0) {
      cache_dir = value();
      if (cache_dir.empty()) usage(argv[0]);
      if (cache_dir == "off") cache_dir.clear();
    } else if (std::strcmp(arg, "--order") == 0) {
      const char* order = value();
      if (std::strcmp(order, "cost") == 0)
        cost_order = true;
      else if (std::strcmp(order, "expansion") == 0)
        cost_order = false;
      else
        usage(argv[0]);
      order_set = true;
    } else if (std::strcmp(arg, "--fresh") == 0) {
      fresh = true;
    } else if (std::strcmp(arg, "--progress") == 0) {
      progress = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--dry-run") == 0) {
      dry_run = true;
    } else if (std::strcmp(arg, "--merge") == 0) {
      merge = true;
    } else if (arg[0] == '-') {
      usage(argv[0]);
    } else if (manifest_path.empty()) {
      manifest_path = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (manifest_path.empty()) usage(argv[0]);
  const bool sharded = shard_count > 0;
  // The four modes are mutually exclusive, and per-mode flags do not mix:
  // --fresh/--results target the whole-sweep results file, which a shard
  // does not own, and --merge executes nothing.
  if ((dry_run ? 1 : 0) + (sharded ? 1 : 0) + (merge ? 1 : 0) > 1)
    usage(argv[0]);
  if (sharded && (fresh || !results_path.empty())) usage(argv[0]);
  if (merge && (fresh || limit > 0 || !engine.empty() || !hotpath.empty() ||
                !kernels.empty() || !cache_dir.empty() || order_set))
    usage(argv[0]);
  if (dry_run &&
      (fresh || limit > 0 || !engine.empty() || !hotpath.empty() ||
       !kernels.empty() || !results_path.empty() || !cache_dir.empty() ||
       order_set))
    usage(argv[0]);
  if (results_path.empty() && !sharded)
    results_path = runner::SweepSession::default_results_path(manifest_path);

  // Stage 1 — everything that can only fail because of the manifest file
  // itself. A failure here is fatal for this manifest: exit 3, offender
  // named.
  runner::SweepManifest manifest{runner::SweepSpec("unloaded")};
  try {
    manifest = runner::load_manifest(manifest_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "econcast_sweep: manifest '%s': %s\n",
                 manifest_path.c_str(), e.what());
    return kExitManifest;
  }

  if (dry_run) {
    print_dry_run(manifest_path, manifest);
    return kExitOk;
  }

  // The kernel tier is process-global (it selects which SIMD tier the
  // dispatched micro-kernels run; results are tier-independent). The token
  // was validated at parse time; what can still fail here is hardware or
  // build support, which is a runtime failure, not a usage error.
  if (!kernels.empty()) {
    try {
      util::set_kernel_tier(util::kernel_tier_from_token(kernels));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "econcast_sweep: --kernels %s: %s\n",
                   kernels.c_str(), e.what());
      return kExitRuntime;
    }
  } else {
    // No flag: force the first-use ECONCAST_KERNELS/cpuid resolution now,
    // so a bad env value fails before the sweep starts instead of throwing
    // out of a worker mid-run.
    try {
      (void)util::active_kernel_tier();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "econcast_sweep: ECONCAST_KERNELS: %s\n",
                   e.what());
      return kExitRuntime;
    }
  }

  // Stage 2 — execution. Failures here leave a valid checkpoint behind and
  // are retryable: exit 1, offender named.
  try {
    if (merge) {
      const fabric::Merger::Report report =
          merge_shards > 0
              ? fabric::Merger::merge(manifest_path, merge_shards,
                                      results_path)
              : fabric::Merger::merge(manifest_path, results_path);
      if (!quiet)
        std::printf("merged %zu shards, %zu cells -> %s\n",
                    report.shard_count, report.cells,
                    report.merged_path.c_str());
      return kExitOk;
    }

    if (sharded) {
      fabric::Worker::Options options;
      options.worker_id = worker_id;
      options.num_threads = threads;
      options.limit = limit;
      options.queue_engine = engine;
      options.hotpath_engine = hotpath;
      options.cache_dir = cache_dir;
      if (progress) {
        options.on_cell_done = [](const runner::ScenarioProgress& p) {
          std::fprintf(stderr, "[%zu/%zu] cell %zu %s\n", p.done, p.total,
                       p.index, p.scenario->name.c_str());
        };
      }
      fabric::Worker worker(manifest_path, shard, shard_count, options);
      const fabric::Worker::Outcome outcome = worker.run();
      if (!quiet) {
        const char* status =
            outcome.status == fabric::Worker::Outcome::Status::kShardBusy
                ? "busy (another worker holds the claim)"
            : outcome.status ==
                    fabric::Worker::Outcome::Status::kAlreadyComplete
                ? "already complete"
                : (outcome.shard_complete ? "complete" : "checkpointed");
        std::printf(
            "shard %zu/%zu of '%s': %s — %zu/%zu cells (%zu resumed, "
            "%zu run)\n",
            shard, shard_count, manifest.spec.name().c_str(), status,
            outcome.resumed + outcome.ran, outcome.shard_cells,
            outcome.resumed, outcome.ran);
        std::printf("results: %s\n", outcome.results_path.c_str());
      }
      // A busy shard ran nothing: report it as retryable so spool scripts
      // distinguish "try again later" from a completed shard.
      return outcome.status == fabric::Worker::Outcome::Status::kShardBusy
                 ? kExitRuntime
                 : kExitOk;
    }

    if (fresh) std::remove(results_path.c_str());

    if (!engine.empty()) manifest.queue_engine = engine;
    if (!hotpath.empty()) manifest.hotpath_engine = hotpath;

    runner::SweepSession::Options options;
    options.num_threads = threads;
    if (!cache_dir.empty())
      options.cache = std::make_shared<runner::CellCache>(cache_dir);
    options.order = cost_order ? runner::SweepSession::SubmitOrder::kCost
                               : runner::SweepSession::SubmitOrder::kExpansion;
    if (progress) {
      // Cost-model ETA: cells flush in index order, so after cell p.index
      // the completed work is exactly the expansion prefix [0, p.index] and
      // prefix sums of the per-cell cost estimates give done/remaining
      // units directly. The model self-calibrates against this run — ETA =
      // elapsed × remaining/done units — so no absolute ms-per-unit scale
      // is needed.
      struct EtaState {
        std::vector<double> prefix;  // estimate-unit prefix sums
        double start_s = 0.0;
        double first_units = -1.0;  // prefix already done when run started
        std::size_t cells_this_run = 0;
      };
      auto eta = std::make_shared<EtaState>();
      const std::vector<runner::Scenario> cells =
          runner::expand_with_overrides(manifest);
      eta->prefix.resize(cells.size() + 1, 0.0);
      for (std::size_t i = 0; i < cells.size(); ++i)
        eta->prefix[i + 1] =
            eta->prefix[i] + runner::CostModel::estimate_units(cells[i]);
      eta->start_s = telemetry_now_s();
      options.on_cell_done = [eta](const runner::ScenarioProgress& p) {
        if (eta->first_units < 0.0) eta->first_units = eta->prefix[p.index];
        ++eta->cells_this_run;
        const double elapsed = telemetry_now_s() - eta->start_s;
        const double done_units =
            eta->prefix[p.index + 1] - eta->first_units;
        const double remaining_units =
            eta->prefix.back() - eta->prefix[p.index + 1];
        const double eta_s = done_units > 0.0 && elapsed > 0.0
                                 ? elapsed * remaining_units / done_units
                                 : 0.0;
        const double rate =
            elapsed > 0.0
                ? static_cast<double>(eta->cells_this_run) / elapsed
                : 0.0;
        std::fprintf(stderr, "[%zu/%zu] %s (%.1f cells/s, ETA %.0fs)\n",
                     p.done, p.total, p.scenario->name.c_str(), rate, eta_s);
      };
    }

    const double started_s = telemetry_now_s();
    runner::SweepSession session(std::move(manifest), results_path, options);
    const std::size_t resumed = session.completed_cells();
    const std::size_t ran = session.run(limit);
    const double elapsed_s = telemetry_now_s() - started_s;

    if (!quiet) {
      std::printf("sweep '%s': %zu/%zu cells complete (%zu resumed, %zu run)\n",
                  session.manifest().spec.name().c_str(),
                  session.completed_cells(), session.cell_count(), resumed,
                  ran);
      if (ran > 0 && elapsed_s > 0.0)
        std::printf("throughput: %zu cells in %.2fs (%.1f cells/s)\n", ran,
                    elapsed_s, static_cast<double>(ran) / elapsed_s);
      if (session.cache() != nullptr) {
        const runner::CellCache::Stats& cs = session.cache()->stats();
        std::printf("cache: %zu hits, %zu misses, %zu rejected, "
                    "%zu published (%s)\n",
                    cs.hits, cs.misses, cs.rejected, cs.publishes,
                    session.cache()->dir().c_str());
      }
      std::printf("results: %s\n", session.results_path().c_str());
      if (session.complete()) {
        const runner::BatchResult all = session.results();
        std::printf(
            "summary: groupput mean %.6g (stddev %.3g), anyput mean %.6g, "
            "mean node power %.6g\n",
            all.summary.groupput.mean(), all.summary.groupput.stddev(),
            all.summary.anyput.mean(), all.summary.node_power.mean());
      } else {
        std::printf("checkpointed early (--limit %zu); rerun to resume\n",
                    limit);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "econcast_sweep: manifest '%s': %s\n",
                 manifest_path.c_str(), e.what());
    return kExitRuntime;
  }
  return kExitOk;
}
