#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "util/json.h"

namespace econcast::lint {
namespace {

namespace json = econcast::util::json;

// ----------------------------------------------------------- the ruleset --

// How a banned name is recognized in stripped source text.
enum class MatchKind {
  kExact,   // identifier token, both boundaries non-identifier
  kCall,    // identifier token immediately followed by '(' (spaces allowed),
            // and not a member access (.foo( / ->foo( are fields/methods of
            // our own types, not the libc symbol)
  kPrefix,  // identifier that *starts* with the token (pthread_create, ...)
};

struct TokenSpec {
  const char* token;
  MatchKind kind;
};

struct RuleSpec {
  const char* id;
  const char* summary;
  const char* rationale;  // appended to every finding message
  std::vector<TokenSpec> tokens;
};

// The determinism ruleset. Order is reporting order within a line.
const std::vector<RuleSpec>& rule_specs() {
  static const std::vector<RuleSpec> specs = {
      {"raw-rand",
       "std::rand/srand/random_device outside the seeded RNG entry points",
       "ambient RNG state bypasses the seedable util::Rng streams that make "
       "every run replayable from its seed",
       {{"std::rand", MatchKind::kExact},
        {"srand", MatchKind::kCall},
        {"rand", MatchKind::kCall},
        {"random_device", MatchKind::kExact}}},
      {"wall-clock",
       "wall-clock reads (time(), std::chrono clocks, gettimeofday, ...)",
       "wall-clock time differs between runs; simulation logic must advance "
       "only on the event-queue clock",
       {{"system_clock", MatchKind::kExact},
        {"steady_clock", MatchKind::kExact},
        {"high_resolution_clock", MatchKind::kExact},
        {"gettimeofday", MatchKind::kExact},
        {"clock_gettime", MatchKind::kExact},
        {"localtime", MatchKind::kExact},
        {"gmtime", MatchKind::kExact},
        {"time", MatchKind::kCall},
        {"clock", MatchKind::kCall}}},
      {"unordered-container",
       "std::unordered_map/std::unordered_set in result-producing code",
       "hash-table iteration order varies with libstdc++ version, seed and "
       "insertion history; use std::map/std::vector or sort before iterating",
       {{"unordered_map", MatchKind::kExact},
        {"unordered_set", MatchKind::kExact},
        {"unordered_multimap", MatchKind::kExact},
        {"unordered_multiset", MatchKind::kExact}}},
      {"pointer-key",
       "std::map/std::set keyed by pointer (ordering by address)",
       "pointer values depend on the allocator and ASLR, so iteration order "
       "changes run to run; key by a stable id (NodeId, index) instead",
       {}},  // matched structurally, not by token
      {"thread-local",
       "thread_local state",
       "per-thread state makes results depend on which worker ran a task; "
       "the executor deliberately keeps tasks thread-agnostic",
       {{"thread_local", MatchKind::kExact}}},
      {"raw-thread",
       "raw std::thread/std::async/pthread_* outside src/exec and src/fabric",
       "ad-hoc threads bypass the executor's determinism contract "
       "(serialized progress, index-confined writes); submit batches to "
       "exec::Executor instead",
       {{"std::thread", MatchKind::kExact},
        {"std::jthread", MatchKind::kExact},
        {"std::async", MatchKind::kExact},
        {"pthread_", MatchKind::kPrefix}}},
      {"raw-hash",
       "std::hash (or pointer hashing) where a stable fingerprint is needed",
       "std::hash is salted/implementation-defined — not stable across "
       "libstdc++ versions, processes or ASLR — so keys built from it "
       "cannot be persisted or shared (the result cache would silently "
       "never hit); content-address with util::sha256 instead",
       {{"std::hash", MatchKind::kExact},
        {"hash_value", MatchKind::kCall},
        {"hash_combine", MatchKind::kCall}}},
      {"nolint",
       "malformed or unknown NOLINT-DETERMINISM annotation",
       "a typo in a suppression must not silently disable a rule",
       {}},
  };
  return specs;
}

const RuleSpec* find_rule_spec(const std::string& id) {
  for (const RuleSpec& spec : rule_specs())
    if (id == spec.id) return &spec;
  return nullptr;
}

// ------------------------------------------------------------- stripping --

bool is_ident(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

// One NOLINT-DETERMINISM annotation extracted from a comment.
struct Annotation {
  std::size_t line = 0;
  std::vector<std::string> annotation_rules;
  std::string reason;
  bool malformed = false;
  std::string problem;  // set when malformed
  bool used = false;
};

// A source file with comments, string literals and char literals blanked to
// spaces (newlines preserved, so line/column structure is intact) and every
// NOLINT-DETERMINISM annotation pulled out of the comment text.
struct StrippedSource {
  std::string code;
  std::vector<Annotation> annotations;
};

constexpr std::string_view kMarker = "NOLINT-DETERMINISM";

// Parses one annotation starting at the marker inside raw comment text.
// Grammar: NOLINT-DETERMINISM(rule[,rule...]): reason
Annotation parse_annotation(std::string_view comment, std::size_t marker_pos,
                            std::size_t line) {
  Annotation a;
  a.line = line;
  std::size_t i = marker_pos + kMarker.size();
  if (i >= comment.size() || comment[i] != '(') {
    a.malformed = true;
    a.problem = "expected '(' after NOLINT-DETERMINISM";
    return a;
  }
  const std::size_t close = comment.find(')', ++i);
  if (close == std::string_view::npos) {
    a.malformed = true;
    a.problem = "unterminated rule list (missing ')')";
    return a;
  }
  // Split the rule list on commas, trimming spaces.
  std::size_t start = i;
  for (std::size_t p = i; p <= close; ++p) {
    if (p == close || comment[p] == ',') {
      std::size_t b = start, e = p;
      while (b < e && comment[b] == ' ') ++b;
      while (e > b && comment[e - 1] == ' ') --e;
      const std::string rule(comment.substr(b, e - b));
      if (rule.empty()) {
        a.malformed = true;
        a.problem = "empty rule name in rule list";
        return a;
      }
      if (!is_known_rule(rule) || rule == "nolint") {
        a.malformed = true;
        a.problem = "unknown rule \"" + rule + "\"";
        return a;
      }
      a.annotation_rules.push_back(rule);
      start = p + 1;
    }
  }
  std::size_t r = close + 1;
  while (r < comment.size() && comment[r] == ' ') ++r;
  if (r >= comment.size() || comment[r] != ':') {
    a.malformed = true;
    a.problem = "expected \": reason\" after the rule list";
    return a;
  }
  ++r;
  const std::size_t eol = comment.find('\n', r);
  std::string reason(comment.substr(
      r, eol == std::string_view::npos ? comment.size() - r : eol - r));
  // Trim.
  std::size_t b = 0, e = reason.size();
  while (b < e && (reason[b] == ' ' || reason[b] == '\t')) ++b;
  while (e > b && (reason[e - 1] == ' ' || reason[e - 1] == '\t' ||
                   reason[e - 1] == '\r'))
    --e;
  a.reason = reason.substr(b, e - b);
  if (a.reason.empty()) {
    a.malformed = true;
    a.problem = "empty reason — say why the exception is sound";
  }
  return a;
}

// Scans raw comment text (which may span lines) for annotations.
void collect_annotations(std::string_view comment, std::size_t first_line,
                         std::vector<Annotation>& out) {
  std::size_t line = first_line;
  std::size_t search_from = 0;
  std::size_t line_start = 0;
  for (;;) {
    const std::size_t pos = comment.find(kMarker, search_from);
    if (pos == std::string_view::npos) return;
    // Count newlines between line_start and pos to get the marker's line.
    for (std::size_t i = line_start; i < pos; ++i)
      if (comment[i] == '\n') ++line;
    line_start = pos;
    out.push_back(parse_annotation(comment, pos, line));
    search_from = pos + kMarker.size();
  }
}

// The single-pass comment/string/char stripper. Handles // and /* */
// comments, escape sequences in quoted literals, and raw strings
// R"delim(...)delim" (the test tree uses them for JSON fixtures).
StrippedSource strip(std::string_view text) {
  StrippedSource out;
  out.code.assign(text.size(), ' ');
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  auto copy_newlines = [&](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to; ++k)
      if (text[k] == '\n') {
        out.code[k] = '\n';
        ++line;
      }
  };
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      out.code[i] = '\n';
      ++line;
      ++i;
    } else if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t end = text.find('\n', i);
      if (end == std::string_view::npos) end = n;
      collect_annotations(text.substr(i, end - i), line, out.annotations);
      i = end;  // the '\n' is handled by the top of the loop
    } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::size_t end = text.find("*/", i + 2);
      if (end == std::string_view::npos) end = n;
      else end += 2;
      collect_annotations(text.substr(i, end - i), line, out.annotations);
      copy_newlines(i, end);
      i = end;
    } else if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
               (i == 0 || !is_ident(text[i - 1]))) {
      // Raw string: R"delim( ... )delim"
      const std::size_t paren = text.find('(', i + 2);
      if (paren == std::string_view::npos) {
        out.code[i] = c;
        ++i;
        continue;
      }
      const std::string delim(text.substr(i + 2, paren - (i + 2)));
      const std::string closer = ")" + delim + "\"";
      std::size_t end = text.find(closer, paren + 1);
      end = end == std::string_view::npos ? n : end + closer.size();
      copy_newlines(i, end);
      i = end;
    } else if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) ++j;  // skip escaped char
        if (text[j] == '\n') break;             // unterminated: bail at EOL
        ++j;
      }
      if (j < n && text[j] == quote) ++j;
      copy_newlines(i, j);
      i = j;
    } else {
      out.code[i] = c;
      ++i;
    }
  }
  return out;
}

// ------------------------------------------------------------- matching --

// Finds `token` in `line` at or after `from` with identifier boundaries
// (kPrefix relaxes the trailing boundary). Returns npos when absent.
std::size_t find_token(std::string_view line, std::string_view token,
                       std::size_t from, MatchKind kind) {
  for (std::size_t pos = line.find(token, from);
       pos != std::string_view::npos; pos = line.find(token, pos + 1)) {
    if (pos > 0 && is_ident(line[pos - 1])) continue;
    const std::size_t after = pos + token.size();
    if (kind != MatchKind::kPrefix && after < line.size() &&
        is_ident(line[after]))
      continue;
    if (kind == MatchKind::kCall) {
      // Reject member access: .time( / ->time( are our own fields/methods.
      if (pos > 0 && (line[pos - 1] == '.' ||
                      (pos > 1 && line[pos - 1] == '>' &&
                       line[pos - 2] == '-')))
        continue;
      std::size_t p = after;
      while (p < line.size() && line[p] == ' ') ++p;
      if (p >= line.size() || line[p] != '(') continue;
    }
    return pos;
  }
  return std::string_view::npos;
}

// Structural matcher for pointer-keyed ordered containers: std::map< or
// std::set< whose first template argument names a pointer type. Line-local
// (a declaration split across lines is not seen — the rule is a tripwire,
// not a type checker).
bool match_pointer_key(std::string_view line, std::string* matched) {
  for (const char* head : {"std::map", "std::set"}) {
    for (std::size_t pos = find_token(line, head, 0, MatchKind::kExact);
         pos != std::string_view::npos;
         pos = find_token(line, head, pos + 1, MatchKind::kExact)) {
      std::size_t p = pos + std::string_view(head).size();
      while (p < line.size() && line[p] == ' ') ++p;
      if (p >= line.size() || line[p] != '<') continue;
      // Walk the first template argument at depth 1.
      int depth = 1;
      bool star = false;
      std::size_t q = p + 1;
      for (; q < line.size() && depth > 0; ++q) {
        const char c = line[q];
        if (c == '<') ++depth;
        else if (c == '>') --depth;
        else if (c == ',' && depth == 1) break;
        else if (c == '*' && depth == 1) star = true;
      }
      if (star) {
        if (matched)
          *matched = std::string(line.substr(pos, std::min(q, line.size()) -
                                                      pos + 1));
        return true;
      }
    }
  }
  return false;
}

// ------------------------------------------------------- path utilities --

bool path_matches(const std::string& path, const std::string& entry) {
  if (entry.empty()) return false;
  if (entry.back() == '/') return path.rfind(entry, 0) == 0;
  if (path == entry) return true;
  return path.size() > entry.size() && path.rfind(entry, 0) == 0 &&
         path[entry.size()] == '/';
}

bool path_matches_any(const std::string& path,
                      const std::vector<std::string>& entries) {
  for (const std::string& e : entries)
    if (path_matches(path, e)) return true;
  return false;
}

// ---------------------------------------------------------- config file --

void reject_unknown_keys(const json::Object& obj,
                         const std::vector<std::string>& known,
                         const std::string& where) {
  for (const auto& [key, value] : obj.members()) {
    (void)value;
    if (std::find(known.begin(), known.end(), key) == known.end())
      throw ConfigError(where + ": unknown key \"" + key + "\"");
  }
}

std::vector<std::string> string_array(const json::Value& v,
                                      const std::string& where) {
  if (!v.is_array())
    throw ConfigError(where + ": expected an array of strings");
  std::vector<std::string> out;
  for (const json::Value& item : v.as_array()) {
    if (!item.is_string())
      throw ConfigError(where + ": expected an array of strings");
    out.push_back(normalize_path(item.as_string()));
  }
  return out;
}

RuleConfig parse_rule_config(const json::Value& v, const std::string& where) {
  if (!v.is_object()) throw ConfigError(where + ": expected an object");
  const json::Object& obj = v.as_object();
  reject_unknown_keys(obj, {"enabled", "severity", "allow"}, where);
  RuleConfig rc;
  if (const json::Value* enabled = obj.find("enabled")) {
    if (!enabled->is_bool())
      throw ConfigError(where + ".enabled: expected true or false");
    rc.enabled = enabled->as_bool();
  }
  if (const json::Value* severity = obj.find("severity")) {
    if (!severity->is_string())
      throw ConfigError(where + ".severity: expected a string");
    rc.severity =
        severity_from_token(severity->as_string(), where + ".severity");
  }
  if (const json::Value* allow = obj.find("allow"))
    rc.allow = string_array(*allow, where + ".allow");
  return rc;
}

// ----------------------------------------------------------------- scan --

void scan_stripped(const std::string& path, const StrippedSource& src,
                   const Config& config, ScanResult& out) {
  std::vector<Annotation> annotations = src.annotations;
  const RuleConfig& nolint_cfg = config.rules.at("nolint");
  for (const Annotation& a : annotations) {
    if (a.malformed && nolint_cfg.enabled &&
        !path_matches_any(path, nolint_cfg.allow))
      out.findings.push_back(Finding{path, a.line, "nolint",
                                     nolint_cfg.severity,
                                     a.problem + " — syntax is "
                                     "// NOLINT-DETERMINISM(rule): reason"});
  }

  // Which lines carry any code after stripping. An annotation on a line
  // with code (trailing comment) suppresses that line; an annotation on a
  // comment-only line suppresses the next line that has code, so a comment
  // block above the construct works the way it reads.
  std::vector<bool> line_has_code;
  line_has_code.push_back(false);  // lines are 1-based
  {
    std::size_t start = 0;
    while (start <= src.code.size()) {
      std::size_t end = src.code.find('\n', start);
      if (end == std::string::npos) end = src.code.size();
      bool has_code = false;
      for (std::size_t k = start; k < end; ++k)
        if (src.code[k] != ' ' && src.code[k] != '\t' &&
            src.code[k] != '\r') {
          has_code = true;
          break;
        }
      line_has_code.push_back(has_code);
      if (end == src.code.size()) break;
      start = end + 1;
    }
  }
  auto effective_line = [&](std::size_t line) {
    while (line < line_has_code.size() && !line_has_code[line]) ++line;
    return line;
  };
  for (Annotation& a : annotations)
    if (!a.malformed) a.line = effective_line(a.line);

  auto suppressed = [&](std::size_t line, const std::string& rule,
                        const Finding& f) {
    for (Annotation& a : annotations) {
      if (a.malformed || a.line != line) continue;
      for (const std::string& r : a.annotation_rules) {
        if (r == rule) {
          if (!a.used) {
            a.used = true;
            out.suppressions.push_back(
                Suppression{f.file, f.line, rule, a.reason});
          }
          return true;
        }
      }
    }
    return false;
  };

  std::size_t line_no = 0;
  std::size_t start = 0;
  const std::string& code = src.code;
  while (start <= code.size()) {
    ++line_no;
    std::size_t end = code.find('\n', start);
    if (end == std::string::npos) end = code.size();
    const std::string_view line(code.data() + start, end - start);

    for (const RuleSpec& spec : rule_specs()) {
      const RuleConfig& rc = config.rules.at(spec.id);
      if (!rc.enabled || path_matches_any(path, rc.allow)) continue;
      std::string matched;
      bool hit = false;
      if (std::string_view(spec.id) == "pointer-key") {
        hit = match_pointer_key(line, &matched);
      } else {
        for (const TokenSpec& token : spec.tokens) {
          if (find_token(line, token.token, 0, token.kind) !=
              std::string_view::npos) {
            matched = token.token;
            hit = true;
            break;
          }
        }
      }
      if (!hit) continue;
      Finding f{path, line_no, spec.id, rc.severity,
                matched + " — " + spec.rationale};
      if (!suppressed(line_no, spec.id, f)) out.findings.push_back(std::move(f));
    }

    if (end == code.size()) break;
    start = end + 1;
  }

  for (const Annotation& a : annotations)
    if (!a.malformed && !a.used) ++out.unused_suppressions;
}

bool has_cpp_extension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  for (const char* known : {".h", ".hh", ".hpp", ".cpp", ".cc", ".cxx",
                            ".inl"})
    if (ext == known) return true;
  return false;
}

}  // namespace

// ------------------------------------------------------------ public API --

Severity severity_from_token(const std::string& token,
                             const std::string& what) {
  if (token == "error") return Severity::kError;
  if (token == "warning") return Severity::kWarning;
  throw ConfigError(what + ": unknown severity \"" + token +
                    "\" (expected \"error\" or \"warning\")");
}

std::string severity_token(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> infos = [] {
    std::vector<RuleInfo> out;
    for (const RuleSpec& spec : rule_specs())
      out.push_back(RuleInfo{spec.id, spec.summary});
    return out;
  }();
  return infos;
}

bool is_known_rule(const std::string& id) {
  return find_rule_spec(id) != nullptr;
}

Config Config::defaults() {
  Config c;
  for (const RuleSpec& spec : rule_specs()) c.rules[spec.id] = RuleConfig{};
  return c;
}

std::size_t ScanResult::error_count() const {
  std::size_t n = 0;
  for (const Finding& f : findings)
    if (f.severity == Severity::kError) ++n;
  return n;
}

std::size_t ScanResult::warning_count() const {
  return findings.size() - error_count();
}

std::string normalize_path(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  while (path.rfind("./", 0) == 0) path.erase(0, 2);
  return path;
}

Config parse_config(std::string_view json_text,
                    const std::string& source_name) {
  json::Value root;
  try {
    root = json::parse(json_text);
  } catch (const json::Error& e) {
    throw ConfigError(source_name + ": " + e.what());
  }
  if (!root.is_object())
    throw ConfigError(source_name + ": top level must be an object");
  const json::Object& obj = root.as_object();
  reject_unknown_keys(obj, {"version", "exclude", "rules"}, source_name);
  const json::Value* version = obj.find("version");
  if (version == nullptr)
    throw ConfigError(source_name + ": missing required key \"version\"");
  if (!version->is_number() || version->as_number() != 1.0)
    throw ConfigError(source_name + ": unsupported \"version\" (expected 1)");

  Config config = Config::defaults();
  if (const json::Value* exclude = obj.find("exclude"))
    config.exclude = string_array(*exclude, source_name + ".exclude");
  if (const json::Value* rules_v = obj.find("rules")) {
    if (!rules_v->is_object())
      throw ConfigError(source_name + ".rules: expected an object");
    for (const auto& [rule_id, rule_cfg] : rules_v->as_object().members()) {
      if (!is_known_rule(rule_id))
        throw ConfigError(source_name + ".rules: unknown rule \"" + rule_id +
                          "\"");
      config.rules[rule_id] =
          parse_rule_config(rule_cfg, source_name + ".rules.\"" + rule_id +
                                          "\"");
    }
  }
  return config;
}

Config load_config(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError(path + ": cannot open config file");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_config(buf.str(), path);
}

void scan_source(const std::string& path, std::string_view text,
                 const Config& config, ScanResult& out) {
  ++out.files_scanned;
  scan_stripped(path, strip(text), config, out);
}

ScanResult scan_paths(const std::vector<std::string>& paths,
                      const Config& config) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& raw : paths) {
    const std::string root = normalize_path(raw);
    const fs::path p(root);
    std::error_code ec;
    if (fs::is_regular_file(p, ec)) {
      files.push_back(root);
    } else if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        if (it->is_regular_file(ec) && has_cpp_extension(it->path()))
          files.push_back(normalize_path(it->path().generic_string()));
      }
    } else {
      throw std::invalid_argument(root + ": no such file or directory");
    }
  }
  // Deterministic report order regardless of filesystem enumeration order.
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  ScanResult result;
  for (const std::string& file : files) {
    if (path_matches_any(file, config.exclude)) continue;
    std::ifstream in(file, std::ios::binary);
    if (!in) throw std::invalid_argument(file + ": cannot read file");
    std::ostringstream buf;
    buf << in.rdbuf();
    scan_source(file, buf.str(), config, result);
  }
  return result;
}

namespace {

constexpr const char* kUsage =
    "usage: econcast_lint [--config FILE] [--verbose] [--list-rules] PATH...\n"
    "\n"
    "Scans C++ sources for determinism-ruleset violations. PATH arguments\n"
    "are files or directories (recursed; .h/.hpp/.cpp/.cc/... only).\n"
    "Allowlist prefixes in the config match the printed paths, so run from\n"
    "the repository root.\n"
    "\n"
    "  --config FILE   load ruleset configuration (lint.json)\n"
    "  --verbose       also list every suppression that fired\n"
    "  --list-rules    print the ruleset and exit\n"
    "\n"
    "exit codes: 0 clean (warnings allowed) / 1 error findings / 2 usage /\n"
    "            3 config error\n";

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  std::string config_path;
  bool verbose = false;
  bool list_rules = false;
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--config") {
      if (i + 1 >= args.size()) {
        err << "econcast_lint: --config requires a file argument\n" << kUsage;
        return 2;
      }
      config_path = args[++i];
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "econcast_lint: unknown flag \"" << arg << "\"\n" << kUsage;
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const RuleInfo& info : rules())
      out << info.id << ": " << info.summary << "\n";
    if (paths.empty()) return 0;
  }
  if (paths.empty()) {
    err << kUsage;
    return 2;
  }

  Config config;
  try {
    config = config_path.empty() ? Config::defaults()
                                 : load_config(config_path);
  } catch (const ConfigError& e) {
    err << "econcast_lint: config error: " << e.what() << "\n";
    return 3;
  }

  ScanResult result;
  try {
    result = scan_paths(paths, config);
  } catch (const std::invalid_argument& e) {
    err << "econcast_lint: " << e.what() << "\n" << kUsage;
    return 2;
  }

  for (const Finding& f : result.findings)
    out << f.file << ":" << f.line << ": " << severity_token(f.severity)
        << ": [" << f.rule << "] " << f.message << "\n";
  if (verbose) {
    for (const Suppression& s : result.suppressions)
      out << s.file << ":" << s.line << ": note: suppressed [" << s.rule
          << "]: " << s.reason << "\n";
  }
  out << "econcast_lint: " << result.files_scanned << " files, "
      << result.findings.size() << " findings (" << result.error_count()
      << " errors, " << result.warning_count() << " warnings), "
      << result.suppressions.size() << " suppressions used, "
      << result.unused_suppressions << " unused\n";
  return result.error_count() > 0 ? 1 : 0;
}

}  // namespace econcast::lint
