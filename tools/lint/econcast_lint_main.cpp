// econcast_lint — determinism-ruleset scanner over the EconCast sources.
// All logic lives in tools/lint/lint.{h,cpp} so tests can assert exact exit
// codes and output without spawning processes. See lint.h for the contract.
#include <iostream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return econcast::lint::run_cli(args, std::cout, std::cerr);
}
