// Self-hosted determinism lint for the EconCast tree.
//
// Every PR since the seed stakes correctness on one invariant: the printed
// paper tables are byte-identical across thread counts, queue/hotpath/kernel
// engines, and shard/merge topologies. That invariant dies silently the
// moment a source file reaches for an ambient-nondeterministic primitive —
// wall-clock time, an OS-seeded RNG, hash-table iteration order, pointer
// values as sort keys, hidden thread_local state, or ad-hoc threads outside
// the executor/fabric layers. econcast_lint makes the ban machine-checked at
// build time: a dependency-free token-level scanner (strings and comments
// stripped first, so mentioning a banned name in a docstring is fine) walks
// the source directories and reports every use of a banned construct that is
// not either allowlisted for its directory in lint.json or explicitly
// annotated in place with
//
//     // NOLINT-DETERMINISM(rule): reason
//
// Annotations are counted and reported; a malformed annotation (unknown rule,
// missing reason) is itself a finding, so a typo cannot silently disable a
// rule. No libclang, no regex engine — the same "parse exactly what we need"
// spirit as util/json.
//
// Exit-code contract (mirrors econcast_sweep): 0 clean, 1 findings, 2 usage,
// 3 config error.
#ifndef ECONCAST_TOOLS_LINT_LINT_H
#define ECONCAST_TOOLS_LINT_LINT_H

#include <cstddef>
#include <iosfwd>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace econcast::lint {

enum class Severity { kWarning, kError };

/// "error" / "warning"; throws ConfigError on anything else, naming `what`
/// (the config key or CLI flag being parsed) in the message.
Severity severity_from_token(const std::string& token, const std::string& what);
std::string severity_token(Severity s);

/// One rule of the determinism ruleset. The registry is fixed at compile
/// time; lint.json can disable a rule, change its severity, or allowlist
/// path prefixes, but cannot invent rules (an unknown rule key is a config
/// error — the config and the scanner must agree on the ruleset).
struct RuleInfo {
  std::string id;       // e.g. "wall-clock"; the name used in NOLINT markers
  std::string summary;  // one line: what is banned and why
};

/// The built-in ruleset, in reporting order.
const std::vector<RuleInfo>& rules();
bool is_known_rule(const std::string& id);

/// A reported violation (or a malformed NOLINT annotation, rule "nolint").
struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  Severity severity = Severity::kError;
  std::string message;  // the matched token + rationale
};

/// One NOLINT-DETERMINISM annotation that actually suppressed a finding.
struct Suppression {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string reason;
};

/// Raised by config parsing/validation; the message names the offending key
/// or value. The CLI maps it to exit code 3.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Per-rule configuration (all fields optional in lint.json).
struct RuleConfig {
  bool enabled = true;
  Severity severity = Severity::kError;
  /// Path prefixes exempt from this rule. "bench/" matches everything under
  /// bench; "src/fabric/claim.cpp" matches exactly that file. Matched
  /// against the normalized scan path, so run the tool from the repo root.
  std::vector<std::string> allow;
};

struct Config {
  /// Path prefixes skipped entirely (e.g. the seeded violation fixtures).
  std::vector<std::string> exclude;
  /// Keyed by rule id; always contains every registered rule.
  std::map<std::string, RuleConfig> rules;

  /// Every rule enabled at error severity, no allowlists, no excludes.
  static Config defaults();
};

/// Parses and validates a lint.json document. `source_name` (the file path)
/// prefixes every error message. Unknown top-level keys, unknown rule ids,
/// unknown severity tokens, and wrongly-typed values are ConfigErrors that
/// name the offending key.
Config parse_config(std::string_view json_text, const std::string& source_name);

/// parse_config over the file's contents; unreadable file is a ConfigError.
Config load_config(const std::string& path);

struct ScanResult {
  std::vector<Finding> findings;          // unsuppressed only
  std::vector<Suppression> suppressions;  // annotations that fired
  std::size_t unused_suppressions = 0;    // annotations that matched nothing
  std::size_t files_scanned = 0;

  std::size_t error_count() const;
  std::size_t warning_count() const;
};

/// Scans one in-memory source. `path` is used verbatim in findings and for
/// allowlist matching (normalize_path is applied by the directory walker,
/// not here).
void scan_source(const std::string& path, std::string_view text,
                 const Config& config, ScanResult& out);

/// Strips "./" prefixes and collapses backslashes so allowlist prefixes
/// written with forward slashes match on every platform.
std::string normalize_path(std::string path);

/// Recursively collects C++ sources (.h .hh .hpp .cpp .cc .cxx .inl) under
/// each path (files are taken as-is), drops config.exclude matches, sorts
/// lexicographically (the report order is part of the tool's own
/// determinism contract), and scans. A nonexistent path throws
/// std::invalid_argument (the CLI maps it to usage, exit 2).
ScanResult scan_paths(const std::vector<std::string>& paths,
                      const Config& config);

/// The whole CLI: parses flags (--config FILE, --verbose, --list-rules),
/// loads the config, scans, prints findings to `out` and errors to `err`,
/// and returns the process exit code (0 clean / 1 findings / 2 usage /
/// 3 config error). Split from main() so tests can assert exact exit codes
/// and output without spawning processes.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace econcast::lint

#endif  // ECONCAST_TOOLS_LINT_LINT_H
