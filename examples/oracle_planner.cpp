// Oracle planner: the §IV toolchain as a stand-alone utility. Given a node
// mix it prints the oracle groupput/anyput (P2/P3), the per-node time
// partitioning, and a concrete Lemma-1 periodic schedule with its one-time
// energy-accumulation interval — i.e., everything a centralized deployment
// would need, and the bar EconCast is measured against.
//
//   ./oracle_planner                 (the paper's Table II example)
//   ./oracle_planner N rho L X      (homogeneous network, consistent units)
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "oracle/clique_oracle.h"
#include "oracle/periodic_schedule.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace econcast;

  model::NodeSet nodes;
  if (argc == 5) {
    const auto n = static_cast<std::size_t>(std::atoi(argv[1]));
    nodes = model::homogeneous(n, std::atof(argv[2]), std::atof(argv[3]),
                               std::atof(argv[4]));
  } else {
    // Table II of the paper: L = X = 1 mW, budgets 5/10/50/100 µW.
    nodes = {{0.005, 1.0, 1.0},
             {0.010, 1.0, 1.0},
             {0.050, 1.0, 1.0},
             {0.100, 1.0, 1.0}};
  }

  const auto group = oracle::groupput(nodes);
  const auto any = oracle::anyput(nodes);
  std::printf("oracle groupput T*_g = %.6f, oracle anyput T*_a = %.6f\n\n",
              group.throughput, any.throughput);

  util::Table table({"node", "budget", "listen %", "transmit %", "awake %",
                     "tx-when-awake %"});
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const double awake = group.alpha[i] + group.beta[i];
    table.add_row();
    table.add_cell(static_cast<std::int64_t>(i));
    table.add_cell(nodes[i].budget, 4);
    table.add_cell(100.0 * group.alpha[i], 3);
    table.add_cell(100.0 * group.beta[i], 3);
    table.add_cell(100.0 * awake, 3);
    table.add_cell(awake > 0.0 ? 100.0 * group.beta[i] / awake : 0.0, 1);
  }
  table.print(std::cout, "optimal groupput time partitioning (one optimal "
                         "vertex; Table II style)");

  // A concrete slotted realization (Lemma 1): quantize onto a 1000-slot
  // period, assign transmit slots, let listeners cover them.
  const auto sched = oracle::build_periodic_schedule(nodes, group, 1000);
  const auto check = oracle::verify_schedule(nodes, sched);
  std::printf(
      "\nLemma-1 periodic schedule: period %lld slots, verified %s,\n"
      "realized groupput %.6f (quantization loss <= N/period)\n",
      static_cast<long long>(sched.period), check.ok() ? "OK" : "BROKEN",
      check.groupput);
  for (std::size_t i = 0; i < nodes.size(); ++i)
    std::printf("  node %zu: one-time energy accumulation of %.1f slots\n", i,
                sched.accumulation_slots(nodes, i));
  return 0;
}
