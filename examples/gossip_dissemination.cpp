// Delay-tolerant gossip dissemination (the paper's anyput motivation, §I):
// a sensor produces a reading and the network spreads it store-and-forward —
// a transmission is useful as soon as *any* neighbor receives it, so the
// network runs EconCast in anyput mode.
//
// We piggyback a rumor set on the simulator's reception stream: every node
// starts knowing one rumor; when a node receives a packet it learns the
// transmitter's rumors (epidemic gossip). The example reports the anyput
// achieved against the oracle and the time for full dissemination.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "econcast/simulation.h"
#include "gibbs/p4_solver.h"
#include "oracle/clique_oracle.h"

// The library is deliberately metric-agnostic; for application-level state
// we re-run the protocol decision process at a coarser level: we run the
// simulation in segments and sample who-heard-whom through reception counts.
// For a faithful packet-by-packet overlay, this example uses a small N and
// reads the aggregate statistics per segment.
int main() {
  using namespace econcast;

  constexpr std::size_t kNodes = 8;
  const model::NodeSet nodes =
      model::homogeneous(kNodes, 10.0, 500.0, 500.0);
  const model::Topology topo = model::Topology::clique(kNodes);

  const auto oracle_sol = oracle::anyput(nodes);
  const auto p4 = gibbs::solve_p4(nodes, model::Mode::kAnyput, 0.5);
  std::printf("gossip network: N=%zu, oracle anyput %.5f, achievable %.5f\n",
              kNodes, oracle_sol.throughput, p4.throughput);

  proto::SimConfig cfg;
  cfg.mode = model::Mode::kAnyput;
  cfg.sigma = 0.5;
  cfg.duration = 6e6;
  cfg.warmup = 2e6;
  cfg.seed = 99;
  cfg.energy_guard = true;
  cfg.initial_energy = 5e5;
  proto::Simulation sim(nodes, topo, cfg);
  const proto::SimResult r = sim.run();

  std::printf("simulated anyput: %.5f (%.1f%% of achievable)\n", r.anyput,
              100.0 * r.anyput / p4.throughput);
  std::printf("mean burst %.2f packets (theory e^{1/σ} = %.2f)\n",
              r.burst_lengths.mean(), std::exp(1.0 / cfg.sigma));

  // Epidemic spreading estimate from the anyput rate: each successful
  // transmission delivers the transmitter's rumor set to >= 1 peer. With
  // random pairings, the expected number of exchanges for full dissemination
  // of N rumors is ~N log N (coupon-collector), so:
  const double exchanges_per_sec = r.anyput * 1000.0;  // 1 ms packets
  const double needed =
      static_cast<double>(kNodes) * std::log(static_cast<double>(kNodes));
  std::printf(
      "anyput sustains %.1f useful exchanges/s -> full dissemination of a\n"
      "fresh reading in roughly %.0f s (N log N exchanges), on a 10 uW "
      "budget.\n",
      exchanges_per_sec, needed / exchanges_per_sec);

  // Latency view (matters for delay tolerance): inter-burst gaps per node.
  if (r.latencies.count() > 100) {
    std::printf("per-node reception gaps: mean %.1f s, p99 %.1f s\n",
                r.latencies.mean() * 1e-3,
                r.latencies.percentile(0.99) * 1e-3);
  }
  return 0;
}
