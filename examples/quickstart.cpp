// Quickstart: the smallest end-to-end use of the library.
//
// Five identical energy-harvesting nodes (ρ = 10 µW budget, 500 µW radio)
// form a clique. We (1) compute the oracle groupput T* (what a clairvoyant
// central scheduler could deliver), (2) compute the achievable point T^σ of
// the EconCast protocol at σ = 0.25, and (3) run the distributed protocol in
// simulation and watch it converge to T^σ without any node knowing N, the
// other nodes' budgets, or even its own harvesting rate.
//
//   ./quickstart
#include <cstdio>

#include "econcast/simulation.h"
#include "gibbs/p4_solver.h"
#include "oracle/clique_oracle.h"

int main() {
  using namespace econcast;

  // 1. The network: homogeneous clique (powers in µW; only ratios matter).
  constexpr std::size_t kNodes = 5;
  const model::NodeSet nodes = model::homogeneous(
      kNodes, /*budget=*/10.0, /*listen=*/500.0, /*transmit=*/500.0);
  const model::Topology topo = model::Topology::clique(kNodes);

  // 2. Oracle bound (P2) and the σ-achievable point (P4).
  const auto oracle = oracle::groupput(nodes);
  const double sigma = 0.25;
  const auto p4 = gibbs::solve_p4(nodes, model::Mode::kGroupput, sigma);
  std::printf("oracle groupput  T*      = %.5f packet-time/packet-time\n",
              oracle.throughput);
  std::printf("achievable at σ  T^σ     = %.5f  (%.1f%% of T*)\n",
              p4.throughput, 100.0 * p4.throughput / oracle.throughput);

  // 3. Run the distributed protocol: EconCast-C in groupput mode. Nodes
  //    start ignorant (η = 0) and adapt from their energy storage alone.
  proto::SimConfig cfg;
  cfg.mode = model::Mode::kGroupput;
  cfg.variant = proto::Variant::kCapture;
  cfg.sigma = sigma;
  cfg.duration = 4e6;   // packet-times (= 4000 s at 1 ms packets)
  cfg.warmup = 1e6;     // discard the adaptation transient
  cfg.seed = 2016;
  cfg.energy_guard = true;       // physical storage: no unbounded overdraft
  cfg.initial_energy = 5e5;      // ~0.5 mJ pre-charge (1000 listen-packets)
  proto::Simulation sim(nodes, topo, cfg);
  const proto::SimResult r = sim.run();

  std::printf("simulated        T~^σ    = %.5f  (%.1f%% of T^σ)\n", r.groupput,
              100.0 * r.groupput / p4.throughput);
  std::printf("per-node power   %.2f µW against a budget of 10 µW\n",
              r.avg_power[0]);
  std::printf("packets sent %llu, received %llu, bursts %llu, "
              "mean burst %.1f packets\n",
              static_cast<unsigned long long>(r.packets_sent),
              static_cast<unsigned long long>(r.packets_received),
              static_cast<unsigned long long>(r.bursts),
              r.burst_lengths.mean());
  return 0;
}
