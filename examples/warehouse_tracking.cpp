// Warehouse asset tracking (the paper's §I motivation): heterogeneous
// energy-harvesting tags attached to goods broadcast their presence so that
// neighbors discover each other (groupput mode). Tags differ wildly:
//
//   * pallet tags under skylights  — indoor-light harvesting, ~50 µW
//   * shelf tags in dim aisles     — ~5 µW
//   * tags on forklifts            — kinetic harvesting, ~100 µW
//   * battery-lifetime tags        — fixed drain allowance, ~20 µW
//
// No tag knows any other tag's budget or radio characteristics (§III-A
// "Unacquainted"). The example shows (1) the oracle rates the mix could
// achieve, (2) that EconCast lets each class meet exactly its own budget
// while sharing one channel, and (3) per-class discovery statistics.
//
// A deployment report should not rest on one random run, so the simulation
// is replicated with independent seeds through runner::ScenarioRunner (the
// replicas run in parallel) and every figure below is a cross-replica mean;
// the groupput line carries its 95% confidence half-width.
#include <cstdio>
#include <vector>

#include "econcast/simulation.h"
#include "oracle/clique_oracle.h"
#include "runner/scenario_runner.h"
#include "util/stats.h"

int main() {
  using namespace econcast;

  struct TagClass {
    const char* name;
    double budget_uw;
    std::size_t count;
  };
  const std::vector<TagClass> classes{
      {"skylight pallet", 50.0, 4},
      {"dim-aisle shelf", 5.0, 6},
      {"forklift kinetic", 100.0, 2},
      {"battery lifetime", 20.0, 3},
  };

  model::NodeSet nodes;
  std::vector<const char*> label;
  for (const auto& c : classes) {
    for (std::size_t k = 0; k < c.count; ++k) {
      // CC2500-class radio: 670 µW listen, 560 µW transmit (scaled).
      nodes.push_back({c.budget_uw, 670.0, 560.0});
      label.push_back(c.name);
    }
  }
  const std::size_t n = nodes.size();
  constexpr std::size_t kReplicas = 4;
  std::printf("warehouse: %zu tags across %zu classes (%zu replicas)\n\n", n,
              classes.size(), kReplicas);

  // Oracle planning: what a central controller could extract from this mix.
  const auto oracle_sol = oracle::groupput(nodes);
  std::printf("oracle groupput of the mix: %.5f\n", oracle_sol.throughput);

  // Distributed operation, replicated across independent seeds.
  proto::SimConfig cfg;
  cfg.mode = model::Mode::kGroupput;
  cfg.sigma = 0.5;
  cfg.duration = 4e6;
  cfg.warmup = 2e6;
  cfg.energy_guard = true;
  cfg.initial_energy = 5e5;
  const std::vector<runner::Scenario> batch(
      kReplicas, runner::econcast_scenario("warehouse", nodes,
                                           model::Topology::clique(n), cfg));

  const runner::ScenarioRunner pool({/*num_threads=*/0, /*base_seed=*/7});
  const runner::BatchResult run = pool.run(batch);

  std::printf("EconCast groupput:          %.5f +/- %.5f (%.1f%% of oracle)\n\n",
              run.summary.groupput.mean(), run.summary.groupput.ci95_halfwidth(),
              100.0 * run.summary.groupput.mean() / oracle_sol.throughput);
  std::printf("%-18s %10s %12s %12s %10s\n", "tag class", "budget",
              "power used", "listen %", "tx %");
  for (std::size_t i = 0; i < n; ++i) {
    util::RunningStats power, listen, transmit;
    for (const protocol::SimResult& r : run.results) {
      power.add(r.avg_power[i]);
      listen.add(r.listen_fraction[i]);
      transmit.add(r.transmit_fraction[i]);
    }
    std::printf("%-18s %8.1fuW %10.2fuW %11.3f%% %9.3f%%\n", label[i],
                nodes[i].budget, power.mean(), 100.0 * listen.mean(),
                100.0 * transmit.mean());
  }
  std::printf("\nEvery class holds its own budget — richer tags listen more\n"
              "and carry more of the discovery load, exactly as the oracle\n"
              "partitioning (Table II of the paper) prescribes.\n");
  return 0;
}
