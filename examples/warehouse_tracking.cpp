// Warehouse asset tracking (the paper's §I motivation): heterogeneous
// energy-harvesting tags attached to goods broadcast their presence so that
// neighbors discover each other (groupput mode). Tags differ wildly:
//
//   * pallet tags under skylights  — indoor-light harvesting, ~50 µW
//   * shelf tags in dim aisles     — ~5 µW
//   * tags on forklifts            — kinetic harvesting, ~100 µW
//   * battery-lifetime tags        — fixed drain allowance, ~20 µW
//
// No tag knows any other tag's budget or radio characteristics (§III-A
// "Unacquainted"). The example shows (1) the oracle rates the mix could
// achieve, (2) that EconCast lets each class meet exactly its own budget
// while sharing one channel, and (3) per-class discovery statistics.
#include <cstdio>
#include <vector>

#include "econcast/simulation.h"
#include "oracle/clique_oracle.h"

int main() {
  using namespace econcast;

  struct TagClass {
    const char* name;
    double budget_uw;
    std::size_t count;
  };
  const std::vector<TagClass> classes{
      {"skylight pallet", 50.0, 4},
      {"dim-aisle shelf", 5.0, 6},
      {"forklift kinetic", 100.0, 2},
      {"battery lifetime", 20.0, 3},
  };

  model::NodeSet nodes;
  std::vector<const char*> label;
  for (const auto& c : classes) {
    for (std::size_t k = 0; k < c.count; ++k) {
      // CC2500-class radio: 670 µW listen, 560 µW transmit (scaled).
      nodes.push_back({c.budget_uw, 670.0, 560.0});
      label.push_back(c.name);
    }
  }
  const std::size_t n = nodes.size();
  std::printf("warehouse: %zu tags across %zu classes\n\n", n, classes.size());

  // Oracle planning: what a central controller could extract from this mix.
  const auto oracle_sol = oracle::groupput(nodes);
  std::printf("oracle groupput of the mix: %.5f\n", oracle_sol.throughput);

  // Distributed operation.
  proto::SimConfig cfg;
  cfg.mode = model::Mode::kGroupput;
  cfg.sigma = 0.5;
  cfg.duration = 4e6;
  cfg.warmup = 2e6;
  cfg.seed = 7;
  cfg.energy_guard = true;
  cfg.initial_energy = 5e5;
  proto::Simulation sim(nodes, model::Topology::clique(n), cfg);
  const proto::SimResult r = sim.run();

  std::printf("EconCast groupput:          %.5f (%.1f%% of oracle)\n\n",
              r.groupput, 100.0 * r.groupput / oracle_sol.throughput);
  std::printf("%-18s %10s %12s %12s %10s\n", "tag class", "budget",
              "power used", "listen %", "tx %");
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("%-18s %8.1fuW %10.2fuW %11.3f%% %9.3f%%\n", label[i],
                nodes[i].budget, r.avg_power[i],
                100.0 * r.listen_fraction[i], 100.0 * r.transmit_fraction[i]);
  }
  std::printf("\nEvery class holds its own budget — richer tags listen more\n"
              "and carry more of the discovery load, exactly as the oracle\n"
              "partitioning (Table II of the paper) prescribes.\n");
  return 0;
}
