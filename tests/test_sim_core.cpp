// Tests for the simulator substrate: event queue, energy store, channel
// bookkeeping (CSMA + non-clique corruption), and the metrics collector.
#include <gtest/gtest.h>

#include "model/network.h"
#include "sim/channel.h"
#include "sim/energy.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"

namespace {

using namespace econcast;
using namespace econcast::sim;

// ------------------------------------------------------------ event queue --

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  q.push(3.0, EventKind::kTransition, 0);
  q.push(1.0, EventKind::kPacketEnd, 1);
  q.push(2.0, EventKind::kIntervalEnd, 2);
  EXPECT_EQ(q.pop().node, 1u);
  EXPECT_EQ(q.pop().node, 2u);
  EXPECT_EQ(q.pop().node, 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoTieBreakAtEqualTimes) {
  EventQueue q;
  q.push(1.0, EventKind::kTransition, 10);
  q.push(1.0, EventKind::kTransition, 11);
  q.push(1.0, EventKind::kTransition, 12);
  EXPECT_EQ(q.pop().node, 10u);
  EXPECT_EQ(q.pop().node, 11u);
  EXPECT_EQ(q.pop().node, 12u);
}

TEST(EventQueue, ScheduleReplacesPendingSlot) {
  // schedule() owns cancellation: at most one live event per (node, kind).
  EventQueue q;
  q.schedule(1.0, EventKind::kTransition, 4);
  q.schedule(2.0, EventKind::kTransition, 4);
  const Event e = q.pop();
  EXPECT_DOUBLE_EQ(e.time, 2.0);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.stats().stale_drops, 1u);
}

TEST(EventQueue, CancelInvalidatesOnlyItsSlot) {
  EventQueue q;
  q.schedule(1.0, EventKind::kTransition, 4);
  q.schedule(2.0, EventKind::kEnergyDepleted, 4);
  q.schedule(3.0, EventKind::kTransition, 5);
  q.cancel(4, EventKind::kTransition);
  EXPECT_EQ(q.pop().kind, EventKind::kEnergyDepleted);
  EXPECT_EQ(q.pop().node, 5u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DurablePushIsNotCancellable) {
  EventQueue q;
  q.push(1.0, EventKind::kPacketEnd, 4);
  q.cancel(4, EventKind::kPacketEnd);
  ASSERT_FALSE(q.empty());
  EXPECT_EQ(q.pop().kind, EventKind::kPacketEnd);
}

TEST(EventQueue, PopEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW(q.top(), std::logic_error);
}

TEST(EventQueue, ClearEmpties) {
  EventQueue q;
  q.push(1.0, EventKind::kCustom, 0);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

// ------------------------------------------------------------ energy store --

TEST(EnergyStore, HarvestOnlyAccumulates) {
  EnergyStore e(2.0, 1.0);
  EXPECT_DOUBLE_EQ(e.level(3.0), 7.0);  // 1 + 2*3
  EXPECT_DOUBLE_EQ(e.consumed(3.0), 0.0);
}

TEST(EnergyStore, DrawReducesLevel) {
  EnergyStore e(1.0);
  e.set_draw(3.0, 0.0);
  EXPECT_DOUBLE_EQ(e.level(2.0), -4.0);  // (1-3)*2
  EXPECT_DOUBLE_EQ(e.consumed(2.0), 6.0);
}

TEST(EnergyStore, PiecewiseAccounting) {
  EnergyStore e(1.0);
  e.set_draw(2.0, 0.0);   // net -1 for 5 units
  e.set_draw(0.0, 5.0);   // net +1 for 5 units
  EXPECT_DOUBLE_EQ(e.level(10.0), 0.0);
  EXPECT_DOUBLE_EQ(e.consumed(10.0), 10.0);
}

TEST(EnergyStore, ClampingBounds) {
  EnergyStore e(1.0, 0.0);
  e.set_bounds(0.0, 3.0);
  e.set_draw(0.0, 0.0);
  // Harvest beyond the cap is wasted.
  e.set_draw(5.0, 10.0);  // settle at t=10: level clamped to 3
  EXPECT_DOUBLE_EQ(e.level(10.0), 3.0);
  // Deficit beyond the floor is lost.
  e.set_draw(0.0, 20.0);  // (1-5)*10 would be -37; clamped to 0 at settle
  EXPECT_DOUBLE_EQ(e.level(20.0), 0.0);
}

TEST(EnergyStore, QueryDoesNotMutate) {
  EnergyStore e(1.0);
  e.set_draw(2.0, 0.0);
  EXPECT_DOUBLE_EQ(e.level(1.0), -1.0);
  EXPECT_DOUBLE_EQ(e.level(1.0), -1.0);  // idempotent
  EXPECT_DOUBLE_EQ(e.consumed(1.0), 2.0);
}

// ---------------------------------------------------------------- channel --

TEST(Channel, CliqueCarrierSense) {
  const auto topo = model::Topology::clique(4);
  Channel ch(topo);
  ch.set_listening(1, true);
  ch.set_listening(2, true);
  ch.begin_burst(0);
  EXPECT_TRUE(ch.busy_at(1));
  EXPECT_TRUE(ch.busy_at(2));
  EXPECT_TRUE(ch.busy_at(3));
  EXPECT_FALSE(ch.busy_at(0));  // the transmitter's own neighbors transmit: none
  EXPECT_TRUE(ch.is_transmitting(0));
  EXPECT_EQ(ch.transmitting_count(), 1);
}

TEST(Channel, PacketDeliveredToLockedListeners) {
  const auto topo = model::Topology::clique(4);
  Channel ch(topo);
  ch.set_listening(1, true);
  ch.set_listening(3, true);
  ch.begin_burst(0);
  ch.begin_packet(0);
  const auto outcome = ch.end_packet(0);
  EXPECT_EQ(outcome.clean_receivers.size(), 2u);
  EXPECT_EQ(outcome.corrupted, 0u);
  ch.end_burst(0);
  EXPECT_FALSE(ch.busy_at(1));
}

TEST(Channel, ListenersJoiningMidBurstLockNextPacket) {
  // In a non-clique, a node outside the transmitter's range can enter listen
  // mid-burst and decode the *next* full packet.
  const auto topo = model::Topology::line(3);  // 0-1-2
  Channel ch(topo);
  ch.begin_burst(0);
  ch.begin_packet(0);
  ch.set_listening(2, true);  // not a neighbor of 0; allowed mid-burst
  EXPECT_EQ(ch.end_packet(0).clean_receivers.size(), 0u);
  // 2 is not adjacent to 0, so even the next packet is not received by it.
  ch.begin_packet(0);
  EXPECT_EQ(ch.end_packet(0).clean_receivers.size(), 0u);
  ch.end_burst(0);
}

TEST(Channel, HiddenTerminalCorruption) {
  // 0-1-2 line: 0 and 2 are hidden from each other; both can transmit, and
  // 1's reception is voided (§VII-E).
  const auto topo = model::Topology::line(3);
  Channel ch(topo);
  ch.set_listening(1, true);
  ch.begin_burst(0);
  ch.begin_packet(0);  // 1 locks onto 0
  EXPECT_FALSE(ch.busy_at(2));  // 2 cannot hear 0
  ch.begin_burst(2);   // overlapping transmission corrupts 1's reception
  ch.begin_packet(2);
  const auto from0 = ch.end_packet(0);
  EXPECT_EQ(from0.clean_receivers.size(), 0u);
  EXPECT_EQ(from0.corrupted, 1u);
  ch.end_burst(0);
  // 1 never locked onto 2's packet (it was mid-reception when 2 started).
  const auto from2 = ch.end_packet(2);
  EXPECT_EQ(from2.clean_receivers.size(), 0u);
  ch.end_burst(2);
}

TEST(Channel, MidPacketJoinDoesNotLockButNextPacketDoes) {
  const auto topo = model::Topology::line(3);
  Channel ch(topo);
  ch.set_listening(1, true);
  ch.begin_burst(2);  // 1 is a neighbor of 2
  ch.begin_packet(2);
  const auto first = ch.end_packet(2);
  EXPECT_EQ(first.clean_receivers.size(), 1u);
  // Next packet in the same burst: 1 still listening, locks again.
  ch.begin_packet(2);
  EXPECT_EQ(ch.end_packet(2).clean_receivers.size(), 1u);
  ch.end_burst(2);
}

TEST(Channel, ToggleNotificationsOncePerNode) {
  const auto topo = model::Topology::clique(3);
  Channel ch(topo);
  ch.begin_burst(0);
  const auto toggled = ch.drain_toggled();
  EXPECT_EQ(toggled.size(), 2u);  // nodes 1, 2 became busy
  EXPECT_TRUE(ch.drain_toggled().empty());  // drained
  ch.end_burst(0);
  EXPECT_EQ(ch.drain_toggled().size(), 2u);
}

TEST(Channel, CarrierSenseViolationThrows) {
  const auto topo = model::Topology::clique(3);
  Channel ch(topo);
  ch.begin_burst(0);
  EXPECT_THROW(ch.begin_burst(1), std::logic_error);  // medium busy at 1
  EXPECT_THROW(ch.begin_burst(0), std::logic_error);  // already transmitting
}

TEST(Channel, SpatialReuseAllowedForNonNeighbors) {
  const auto topo = model::Topology::line(4);  // 0-1-2-3
  Channel ch(topo);
  ch.begin_burst(0);
  EXPECT_NO_THROW(ch.begin_burst(3));  // 3 does not hear 0
  EXPECT_EQ(ch.transmitting_count(), 2);
  ch.end_burst(0);
  ch.end_burst(3);
}

TEST(Channel, ListeningNeighborCount) {
  const auto topo = model::Topology::grid(2, 2);
  Channel ch(topo);
  ch.set_listening(1, true);
  ch.set_listening(2, true);
  EXPECT_EQ(ch.listening_neighbors(0), 2);  // 1 and 2 adjacent to 0
  EXPECT_EQ(ch.listening_neighbors(3), 2);
  ch.set_listening(1, false);
  EXPECT_EQ(ch.listening_neighbors(0), 1);
}

TEST(Channel, TransmitterCannotListen) {
  const auto topo = model::Topology::clique(3);
  Channel ch(topo);
  ch.begin_burst(0);
  EXPECT_THROW(ch.set_listening(0, true), std::logic_error);
  ch.end_burst(0);
}

// ---------------------------------------------------------------- metrics --

TEST(Metrics, ThroughputIntegration) {
  MetricsCollector m(4);
  m.start_measurement(0.0);
  m.record_packet(10.0, 1.0, 3, 0);  // 3 receivers
  m.record_packet(11.0, 1.0, 0, 0);  // nobody listening
  m.record_packet(12.0, 1.0, 1, 0);
  EXPECT_DOUBLE_EQ(m.groupput(100.0), 4.0 / 100.0);
  EXPECT_DOUBLE_EQ(m.anyput(100.0), 2.0 / 100.0);
  EXPECT_EQ(m.packets_sent(), 3u);
  EXPECT_EQ(m.packets_received(), 4u);
}

TEST(Metrics, WarmupDiscardsEarlyPackets) {
  MetricsCollector m(2);
  m.start_measurement(50.0);
  m.record_packet(10.0, 1.0, 1, 0);  // before warmup: ignored
  m.record_packet(60.0, 1.0, 1, 0);
  EXPECT_DOUBLE_EQ(m.groupput(150.0), 1.0 / 100.0);
  EXPECT_EQ(m.packets_sent(), 1u);
}

TEST(Metrics, BurstStatistics) {
  MetricsCollector m(2);
  m.record_burst(1.0, 5, true);
  m.record_burst(2.0, 15, true);
  m.record_burst(3.0, 7, false);  // nobody received: not counted
  EXPECT_EQ(m.burst_count(), 2u);
  EXPECT_DOUBLE_EQ(m.burst_lengths().mean(), 10.0);
}

TEST(Metrics, LatencyRequiresSleepBetweenBursts) {
  MetricsCollector m(2);
  // First burst for node 0: no previous burst -> no sample.
  m.receiver_burst_started(0, 10.0);
  m.receiver_burst_ended(0, 12.0);
  // Second burst without sleeping in between -> no sample.
  m.receiver_burst_started(0, 20.0);
  m.receiver_burst_ended(0, 21.0);
  EXPECT_EQ(m.latencies().count(), 0u);
  // Third burst after a sleep -> gap from end(21) to start(40) = 19.
  m.node_slept(0);
  m.receiver_burst_started(0, 40.0);
  m.receiver_burst_ended(0, 45.0);
  ASSERT_EQ(m.latencies().count(), 1u);
  EXPECT_DOUBLE_EQ(m.latencies().samples()[0], 19.0);
}

TEST(Metrics, LatencyUsesFirstPacketOfBurst) {
  MetricsCollector m(1);
  m.receiver_burst_started(0, 5.0);
  m.receiver_burst_started(0, 6.0);  // later packets don't move the start
  m.receiver_burst_ended(0, 7.0);
  m.node_slept(0);
  m.receiver_burst_started(0, 17.0);
  m.receiver_burst_ended(0, 18.0);
  ASSERT_EQ(m.latencies().count(), 1u);
  EXPECT_DOUBLE_EQ(m.latencies().samples()[0], 10.0);
}

TEST(Metrics, PerNodeLatencyIndependence) {
  MetricsCollector m(2);
  m.receiver_burst_started(0, 1.0);
  m.receiver_burst_ended(0, 2.0);
  m.node_slept(0);
  m.receiver_burst_started(1, 3.0);
  m.receiver_burst_ended(1, 4.0);
  m.node_slept(1);
  m.receiver_burst_started(0, 10.0);
  m.receiver_burst_ended(0, 11.0);
  ASSERT_EQ(m.latencies().count(), 1u);  // only node 0 completed a cycle
  EXPECT_DOUBLE_EQ(m.latencies().samples()[0], 8.0);
}

}  // namespace
