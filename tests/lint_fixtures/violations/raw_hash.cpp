// Seeded violation: std::hash and friends are salted / implementation
// defined, so a persisted or shared cache key built from them changes
// across processes, library versions, and platforms.
#include <functional>
#include <string>

unsigned long cache_slot(const std::string& key) {
  std::hash<std::string> hasher;
  unsigned long h = hasher(key);
  h ^= hash_value(key);
  h = hash_combine(h, key.size());
  return h;
}
