// Seeded violation: wall-clock reads in simulation-looking code.
#include <chrono>
#include <ctime>

double now_seconds() {
  const auto tick = std::chrono::system_clock::now();
  const auto mono = std::chrono::steady_clock::now();
  const std::time_t unix_now = time(nullptr);
  return static_cast<double>(unix_now) +
         std::chrono::duration<double>(tick.time_since_epoch()).count() +
         std::chrono::duration<double>(mono.time_since_epoch()).count();
}
