// Seeded violation: ad-hoc threading outside src/exec and src/fabric.
#include <future>
#include <pthread.h>
#include <thread>

void* no_op(void*) { return nullptr; }

void spawn_everything() {
  std::thread worker([] {});
  auto task = std::async([] { return 1; });
  pthread_t raw;
  pthread_create(&raw, nullptr, &no_op, nullptr);
  pthread_join(raw, nullptr);
  worker.join();
  task.get();
}
