// Seeded violation: malformed annotations must be findings themselves, and
// must not suppress the construct they sit next to.
#include <chrono>

// NOLINT-DETERMINISM(wall-clok): typo in the rule name
static const auto t0 = std::chrono::steady_clock::now();

// NOLINT-DETERMINISM(wall-clock):
static const auto t1 = std::chrono::steady_clock::now();

double elapsed() { return std::chrono::duration<double>(t1 - t0).count(); }
