// Seeded violation: hash-table containers whose iteration order is not
// stable across standard-library versions or runs.
#include <string>
#include <unordered_map>
#include <unordered_set>

double sum_metrics(const std::unordered_map<std::string, double>& metrics) {
  std::unordered_set<int> seen;
  double total = 0.0;
  for (const auto& [name, value] : metrics) {
    if (seen.insert(static_cast<int>(name.size())).second) total += value;
  }
  return total;
}
