// Seeded violation: every form of ambient RNG the raw-rand rule bans.
#include <cstdlib>
#include <random>

int ambient_entropy() {
  srand(7);
  std::random_device dev;
  int noise = rand();
  return noise + static_cast<int>(std::rand()) + static_cast<int>(dev());
}
