// Seeded violation: thread_local state makes a result depend on which
// worker thread happened to run the task.
thread_local unsigned long t_rng_state = 0x9E3779B9UL;

unsigned long next_value() {
  t_rng_state = t_rng_state * 6364136223846793005UL + 1442695040888963407UL;
  return t_rng_state;
}
