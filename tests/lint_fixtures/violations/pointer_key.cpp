// Seeded violation: ordered containers keyed by pointer value — iteration
// order follows allocation addresses, which change run to run under ASLR.
#include <map>
#include <set>

struct Node {
  int id;
};

int count_by_address(const std::map<Node*, int>& weights) {
  std::set<const Node *> visited;
  int total = 0;
  for (const auto& [node, weight] : weights) {
    if (visited.insert(node).second) total += weight;
  }
  return total;
}
