// Violations carrying valid annotations: zero findings, three suppressions
// used (block-above, comment-inside-expression, and same-line forms), plus
// one well-formed annotation that matches nothing and is counted as unused.
#include <chrono>
#include <thread>

// NOLINT-DETERMINISM(raw-thread): fixture — exercises the block-above form.
static std::thread* g_unused_worker = nullptr;

double stamp() {
  const auto t =
      // NOLINT-DETERMINISM(wall-clock): fixture — comment inside expression.
      std::chrono::system_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count() +
         (g_unused_worker == nullptr ? 0.0 : 1.0);
}

thread_local int t_depth = 0;  // NOLINT-DETERMINISM(thread-local): fixture

// NOLINT-DETERMINISM(unordered-container): fixture — unused (no violation
// on the next code line).
int depth() { return t_depth; }
