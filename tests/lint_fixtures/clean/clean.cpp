// Clean file: every banned name below appears only where the scanner must
// ignore it — comments (std::rand, system_clock, thread_local, std::thread,
// std::unordered_map), string literals, raw strings, or as a fragment of a
// longer identifier (run_time is not time).
#include <string>

struct Timer {
  double value = 0.0;
  double seconds() const { return value; }
};

double run_time(const Timer& timer) {
  const std::string note =
      "calls std::rand() and time(nullptr) and srand(1) in a string";
  const char* raw = R"json({"clock": "std::unordered_map<int,int>",
"note": "steady_clock::now() inside a raw string spanning lines"})json";
  return timer.seconds() + static_cast<double>(note.size()) +
         static_cast<double>(std::string(raw).size());
}
