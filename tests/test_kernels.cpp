// Differential tests for the vectorized micro-kernel tier (util/kernels.h,
// sim/event_kernels.h). The contract under test is bit-identity: every
// kernel must produce exactly the scalar reference's results under every
// available tier, on adversarial inputs — denormal and ±0 times, (time, seq)
// ties, NaN-at-front, ragged tails around the SIMD width. The paper tables
// depend on this equivalence (CI byte-compares whole figure runs across
// tiers); these tests pin it at the kernel granularity, where a divergence
// is attributable to one loop instead of a 24-second sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/event_kernels.h"
#include "sim/event_queue.h"
#include "util/kernels.h"
#include "util/random.h"

namespace {

using namespace econcast;
using namespace econcast::util;
using sim::Event;
using sim::EventKind;
using sim::kEventKindCount;

// set_kernel_tier is process-wide; restore the entry tier so test order
// cannot leak a forced tier into other suites in this binary.
class TierGuard {
 public:
  TierGuard() : saved_(active_kernel_tier()) {}
  ~TierGuard() { set_kernel_tier(saved_); }

 private:
  KernelTier saved_;
};

std::vector<KernelTier> available_tiers() {
  std::vector<KernelTier> tiers = {KernelTier::kScalar};
  if (kernel_tier_supported(KernelTier::kAvx2))
    tiers.push_back(KernelTier::kAvx2);
  return tiers;
}

TEST(KernelTier, TokenRoundTrip) {
  EXPECT_STREQ(to_token(KernelTier::kScalar), "scalar");
  EXPECT_STREQ(to_token(KernelTier::kAvx2), "avx2");
  EXPECT_EQ(kernel_tier_from_token("scalar"), KernelTier::kScalar);
  EXPECT_EQ(kernel_tier_from_token("avx2"), KernelTier::kAvx2);
}

TEST(KernelTier, UnknownTokenIsNamedError) {
  try {
    kernel_tier_from_token("sse9");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("sse9"), std::string::npos)
        << "error must name the offending token: " << e.what();
  }
  EXPECT_THROW(kernel_tier_from_token(""), std::invalid_argument);
  EXPECT_THROW(kernel_tier_from_token("AVX2"), std::invalid_argument);
}

TEST(KernelTier, ScalarAlwaysSupportedAndSettable) {
  TierGuard guard;
  EXPECT_TRUE(kernel_tier_supported(KernelTier::kScalar));
  set_kernel_tier(KernelTier::kScalar);
  EXPECT_EQ(active_kernel_tier(), KernelTier::kScalar);
}

TEST(KernelTier, BestTierIsSupportedAndSettable) {
  TierGuard guard;
  const KernelTier best = best_kernel_tier();
  EXPECT_TRUE(kernel_tier_supported(best));
  set_kernel_tier(best);
  EXPECT_EQ(active_kernel_tier(), best);
}

TEST(KernelTier, UnsupportedTierIsRejectedNotDowngraded) {
  if (kernel_tier_supported(KernelTier::kAvx2))
    GTEST_SKIP() << "avx2 supported here; rejection path not reachable";
  EXPECT_THROW(set_kernel_tier(KernelTier::kAvx2), std::invalid_argument);
}

TEST(U01FromBits, MatchesScalarReferenceOnEveryTier) {
  TierGuard guard;
  // Edge bit patterns first, then pseudo-random fill; lengths straddle the
  // 4-lane width (tails of 0..3) plus the empty and single-element cases.
  std::vector<std::uint64_t> bits = {
      0,                     // -> 0.0
      ~std::uint64_t{0},     // -> (2^53 - 1) * 2^-53, the largest output
      std::uint64_t{1} << 63, std::uint64_t{1} << 11, (std::uint64_t{1} << 11) - 1,
  };
  Xoshiro256 gen(7);
  while (bits.size() < 67) bits.push_back(gen());

  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                              std::size_t{4}, std::size_t{5}, std::size_t{8},
                              bits.size()}) {
    std::vector<double> reference(n, -1.0);
    kernel_detail::u01_from_bits_scalar(bits.data(), reference.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_GE(reference[i], 0.0);
      EXPECT_LT(reference[i], 1.0);
    }
    for (const KernelTier tier : available_tiers()) {
      set_kernel_tier(tier);
      std::vector<double> out(n, -1.0);
      u01_from_bits(bits.data(), out.data(), n);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(reference[i], out[i])
            << "tier=" << to_token(tier) << " n=" << n << " i=" << i;
    }
  }
}

TEST(FilterStateNot, MatchesScalarReferenceOnEveryTier) {
  TierGuard guard;
  Rng rng(11);
  // State-array sizes straddle the gather guard (n_state < 4 forces the
  // scalar path outright); id counts straddle the 8-lane width (tails of
  // 0..7). Half the ids are drawn within 4 of the end of the state array so
  // the per-chunk gather-bounds fallback actually executes.
  for (const std::size_t n_state :
       {std::size_t{1}, std::size_t{3}, std::size_t{4}, std::size_t{5},
        std::size_t{64}, std::size_t{1000}}) {
    std::vector<std::uint8_t> state(n_state);
    for (auto& s : state) s = static_cast<std::uint8_t>(rng.uniform_int(3));
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
          std::size_t{9}, std::size_t{64}, std::size_t{131}}) {
      std::vector<std::uint32_t> ids(n);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t tail = rng.uniform_int(std::min<std::size_t>(n_state, 4));
        ids[i] = rng.uniform() < 0.5
                     ? static_cast<std::uint32_t>(rng.uniform_int(n_state))
                     : static_cast<std::uint32_t>(n_state - 1 - tail);
      }
      for (std::uint8_t skip = 0; skip < 3; ++skip) {
        std::vector<std::uint32_t> reference(n + 1, 0xDEADBEEFu);
        const std::size_t ref_kept = kernel_detail::filter_state_not_scalar(
            ids.data(), n, state.data(), n_state, skip, reference.data());
        EXPECT_LE(ref_kept, n);
        for (const KernelTier tier : available_tiers()) {
          set_kernel_tier(tier);
          std::vector<std::uint32_t> out(n + 1, 0xDEADBEEFu);
          const std::size_t kept = filter_state_not(
              ids.data(), n, state.data(), n_state, skip, out.data());
          ASSERT_EQ(ref_kept, kept)
              << "tier=" << to_token(tier) << " n=" << n
              << " n_state=" << n_state << " skip=" << unsigned{skip};
          for (std::size_t i = 0; i < kept; ++i)
            EXPECT_EQ(reference[i], out[i])
                << "tier=" << to_token(tier) << " n=" << n
                << " n_state=" << n_state << " i=" << i;
        }
      }
    }
  }
}

// Event-array generator for the scan/partition differentials. `mode` selects
// the adversarial shape; seqs are always unique (the queue's invariant).
std::vector<Event> make_events(std::size_t n, int mode, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Event> events(n);
  for (std::size_t i = 0; i < n; ++i) {
    Event& e = events[i];
    switch (mode) {
      case 0:  // generic: distinct random times
        e.time = rng.uniform() * 1e3;
        break;
      case 1:  // heavy (time, seq) ties: 4 distinct times across the array
        e.time = static_cast<double>(rng.uniform_int(4));
        break;
      case 2:  // denormals, ±0 mix, negatives
        switch (rng.uniform_int(5)) {
          case 0: e.time = 0.0; break;
          case 1: e.time = -0.0; break;
          case 2: e.time = std::numeric_limits<double>::denorm_min() *
                           static_cast<double>(1 + rng.uniform_int(9)); break;
          case 3: e.time = -std::numeric_limits<double>::denorm_min(); break;
          default: e.time = rng.uniform() - 0.5; break;
        }
        break;
      default:  // all-equal times: pure seq ordering
        e.time = 42.0;
        break;
    }
    // Shuffled-unique seqs: ties must be broken by seq, so make sure the
    // seq-minimal element is rarely the first array element.
    e.seq = (static_cast<std::uint64_t>(i) * 2654435761ULL) % (n * 8 + 1);
    e.kind = static_cast<EventKind>(rng.uniform_int(kEventKindCount));
    e.cancellable = rng.uniform() < 0.6;
    e.node = static_cast<std::uint32_t>(rng.uniform_int(17));
    e.stamp = rng.uniform_int(3);
  }
  return events;
}

TEST(EventKernels, MinScanMatchesScalarReferenceOnEveryTier) {
  TierGuard guard;
  for (int mode = 0; mode <= 3; ++mode) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                std::size_t{7}, std::size_t{8}, std::size_t{9},
                                std::size_t{33}, std::size_t{100}}) {
      const std::vector<Event> events = make_events(n, mode, 1000 + mode);
      const auto reference =
          sim::event_kernels::detail::min_scan_scalar(events.data(), n);
      // The scalar reference must agree with a from-first-principles argmin.
      std::size_t naive = 0;
      for (std::size_t i = 1; i < n; ++i) {
        const Event& a = events[i];
        const Event& b = events[naive];
        if (a.time < b.time || (a.time == b.time && a.seq < b.seq)) naive = i;
      }
      EXPECT_EQ(reference.best, naive) << "mode=" << mode << " n=" << n;
      for (const KernelTier tier : available_tiers()) {
        set_kernel_tier(tier);
        const auto got = sim::event_kernels::min_scan(events.data(), n);
        EXPECT_EQ(reference.best, got.best)
            << "tier=" << to_token(tier) << " mode=" << mode << " n=" << n;
        // lo/hi are compared by value, not bit pattern: a ±0 mix may report
        // either zero depending on fold order (documented caveat), and both
        // are the same value.
        EXPECT_EQ(reference.lo, got.lo)
            << "tier=" << to_token(tier) << " mode=" << mode << " n=" << n;
        EXPECT_EQ(reference.hi, got.hi)
            << "tier=" << to_token(tier) << " mode=" << mode << " n=" << n;
      }
    }
  }
}

TEST(EventKernels, MinScanNanAtFrontAgreesAcrossTiers) {
  TierGuard guard;
  std::vector<Event> events = make_events(16, 0, 5);
  events[0].time = std::numeric_limits<double>::quiet_NaN();
  const auto reference =
      sim::event_kernels::detail::min_scan_scalar(events.data(), events.size());
  for (const KernelTier tier : available_tiers()) {
    set_kernel_tier(tier);
    const auto got =
        sim::event_kernels::min_scan(events.data(), events.size());
    EXPECT_EQ(reference.best, got.best) << "tier=" << to_token(tier);
  }
}

TEST(EventKernels, TimeBoundsMatchScalarReferenceOnEveryTier) {
  TierGuard guard;
  for (int mode = 0; mode <= 3; ++mode) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                                std::size_t{11}, std::size_t{64},
                                std::size_t{101}}) {
      const std::vector<Event> events = make_events(n, mode, 2000 + mode);
      double ref_lo = 0.0, ref_hi = 0.0;
      sim::event_kernels::detail::time_bounds_scalar(events.data(), n, ref_lo,
                                                     ref_hi);
      for (const KernelTier tier : available_tiers()) {
        set_kernel_tier(tier);
        double lo = 0.0, hi = 0.0;
        sim::event_kernels::time_bounds(events.data(), n, lo, hi);
        EXPECT_EQ(ref_lo, lo)
            << "tier=" << to_token(tier) << " mode=" << mode << " n=" << n;
        EXPECT_EQ(ref_hi, hi)
            << "tier=" << to_token(tier) << " mode=" << mode << " n=" << n;
      }
    }
  }
}

TEST(EventKernels, PartitionStaleMatchesScalarReferenceOnEveryTier) {
  TierGuard guard;
  const std::size_t slot_count = 17 * kEventKindCount;
  for (int mode = 0; mode <= 3; ++mode) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{4}, std::size_t{5},
                                std::size_t{16}, std::size_t{63},
                                std::size_t{200}}) {
      const std::vector<Event> original = make_events(n, mode, 3000 + mode);
      // Generations drawn from the same small range as the stamps so the
      // arrays mix live (stamp == generation), stale, and non-cancellable
      // events.
      Rng rng(4000 + mode);
      std::vector<std::uint64_t> generations(slot_count);
      for (auto& g : generations) g = rng.uniform_int(3);

      std::vector<Event> reference = original;
      const std::size_t ref_removed =
          sim::event_kernels::detail::partition_stale_scalar(
              reference.data(), n, generations.data(), slot_count);
      ASSERT_LE(ref_removed, n);
      reference.resize(n - ref_removed);

      for (const KernelTier tier : available_tiers()) {
        set_kernel_tier(tier);
        std::vector<Event> got = original;
        const std::size_t removed = sim::event_kernels::partition_stale(
            got.data(), n, generations.data(), slot_count);
        EXPECT_EQ(ref_removed, removed)
            << "tier=" << to_token(tier) << " mode=" << mode << " n=" << n;
        got.resize(n - removed);
        ASSERT_EQ(reference.size(), got.size());
        for (std::size_t i = 0; i < reference.size(); ++i) {
          EXPECT_EQ(reference[i].seq, got[i].seq)
              << "stable order broken: tier=" << to_token(tier)
              << " mode=" << mode << " n=" << n << " i=" << i;
          EXPECT_EQ(reference[i].time, got[i].time);
          EXPECT_EQ(reference[i].stamp, got[i].stamp);
        }
      }
    }
  }
}

// End-to-end cross-tier check one level up: a calendar queue fed an
// identical schedule/cancel workload must pop the identical event stream
// under every tier (find_min and compaction both route through the
// dispatched kernels).
TEST(EventKernels, CalendarPopStreamIdenticalAcrossTiers) {
  TierGuard guard;
  struct Popped {
    double time;
    std::uint64_t seq;
  };
  auto run = [](KernelTier tier) {
    set_kernel_tier(tier);
    sim::EventQueue queue(sim::QueueEngine::kCalendar);
    Rng rng(77);
    std::vector<Popped> stream;
    // Simulator-like workload: every insertion lands at or after the last
    // popped time, so the popped stream must come out time-monotone.
    double now = 0.0;
    for (int round = 0; round < 200; ++round) {
      // schedule() reschedules cancel their slot's prior event, so the
      // lazily-pruned stale population that compaction and find_min must
      // skip grows steadily.
      for (int i = 0; i < 8; ++i)
        queue.schedule(now + rng.uniform() * 50.0,
                       static_cast<EventKind>(rng.uniform_int(kEventKindCount)),
                       static_cast<std::uint32_t>(rng.uniform_int(32)));
      if (round % 3 == 0)
        queue.push(now + rng.uniform() * 50.0, EventKind::kCustom,
                   static_cast<std::uint32_t>(rng.uniform_int(32)));
      for (int i = 0; i < 6 && !queue.empty(); ++i) {
        const Event e = queue.pop();
        now = e.time;
        stream.push_back({e.time, e.seq});
      }
    }
    while (!queue.empty()) {
      const Event e = queue.pop();
      stream.push_back({e.time, e.seq});
    }
    return stream;
  };

  const std::vector<Popped> scalar_stream = run(KernelTier::kScalar);
  ASSERT_FALSE(scalar_stream.empty());
  for (std::size_t i = 1; i < scalar_stream.size(); ++i)
    ASSERT_LE(scalar_stream[i - 1].time, scalar_stream[i].time);
  if (!kernel_tier_supported(KernelTier::kAvx2))
    GTEST_SKIP() << "avx2 not supported; single-tier stream checked";
  const std::vector<Popped> avx2_stream = run(KernelTier::kAvx2);
  ASSERT_EQ(scalar_stream.size(), avx2_stream.size());
  for (std::size_t i = 0; i < scalar_stream.size(); ++i) {
    EXPECT_EQ(scalar_stream[i].time, avx2_stream[i].time) << "i=" << i;
    EXPECT_EQ(scalar_stream[i].seq, avx2_stream[i].seq) << "i=" << i;
  }
}

}  // namespace
