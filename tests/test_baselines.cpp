// Tests for the prior-art baselines: Birthday, Panda (model vs simulation),
// and Searchlight (incl. the paper's 125 s worst-case latency).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/birthday.h"
#include "baselines/panda.h"
#include "baselines/searchlight.h"
#include "oracle/clique_oracle.h"

namespace {

using namespace econcast;
using namespace econcast::baselines;
using model::Mode;

// ---------------------------------------------------------------- birthday --

TEST(Birthday, ClosedFormKnownValue) {
  // N=2: groupput = 2 p_x p_l (1-p_x)^0.
  EXPECT_NEAR(birthday_throughput(2, 0.1, 0.2, Mode::kGroupput), 0.04, 1e-12);
  // Anyput with N=2 equals groupput (one possible listener).
  EXPECT_NEAR(birthday_throughput(2, 0.1, 0.2, Mode::kAnyput),
              2.0 * 0.1 * 0.9 * (1.0 - (1.0 - 0.2 / 0.9)), 1e-12);
}

TEST(Birthday, SimulationMatchesClosedForm) {
  for (const Mode mode : {Mode::kGroupput, Mode::kAnyput}) {
    const double analytic = birthday_throughput(5, 0.01, 0.01, mode);
    const double sim = simulate_birthday(5, 0.01, 0.01, mode, 4000000, 9);
    EXPECT_NEAR(sim, analytic, 0.05 * analytic + 1e-5)
        << model::to_string(mode);
  }
}

TEST(Birthday, OptimizerRespectsBudget) {
  const BirthdayDesign d =
      optimize_birthday(5, 10.0, 500.0, 500.0, Mode::kGroupput);
  EXPECT_LE(d.p_listen * 500.0 + d.p_transmit * 500.0, 10.0 + 1e-9);
  EXPECT_GT(d.throughput, 0.0);
}

TEST(Birthday, OptimizerBeatsNaiveSplits) {
  const BirthdayDesign d =
      optimize_birthday(5, 10.0, 500.0, 500.0, Mode::kGroupput);
  for (const double split : {0.1, 0.3, 0.7, 0.9}) {
    const double px = 0.02 * split;
    const double pl = 0.02 * (1.0 - split);
    EXPECT_GE(d.throughput,
              birthday_throughput(5, px, pl, Mode::kGroupput) - 1e-9);
  }
}

TEST(Birthday, PaperSettingFarBelowOracle) {
  // At the Fig. 3 operating point, Birthday reaches only a few percent of
  // the oracle groupput (the gap EconCast closes).
  const BirthdayDesign d =
      optimize_birthday(5, 10.0, 500.0, 500.0, Mode::kGroupput);
  const double oracle_t =
      oracle::groupput(model::homogeneous(5, 10.0, 500.0, 500.0)).throughput;
  const double ratio = d.throughput / oracle_t;
  EXPECT_GT(ratio, 0.005);
  EXPECT_LT(ratio, 0.08);
}

TEST(Birthday, ZeroProbabilitiesGiveZeroThroughput) {
  EXPECT_DOUBLE_EQ(birthday_throughput(5, 0.0, 0.5, Mode::kGroupput), 0.0);
  EXPECT_DOUBLE_EQ(birthday_throughput(5, 0.5, 0.0, Mode::kGroupput), 0.0);
  EXPECT_DOUBLE_EQ(birthday_throughput(1, 0.5, 0.5, Mode::kGroupput), 0.0);
}

// ------------------------------------------------------------------- panda --

TEST(Panda, PowerModelMonotoneInWakeRate) {
  double prev = 0.0;
  for (const double lambda : {0.001, 0.005, 0.02, 0.1}) {
    const double p = panda_power(5, lambda, 1.0, 500.0, 500.0);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(Panda, OptimizerSaturatesBudget) {
  const PandaDesign d = optimize_panda(5, 10.0, 500.0, 500.0);
  EXPECT_NEAR(d.power, 10.0, 0.05);
  EXPECT_GT(d.throughput, 0.0);
  EXPECT_GT(d.wake_rate, 0.0);
  EXPECT_GT(d.listen_window, 0.0);
}

TEST(Panda, SimulationValidatesAnalyticalModel) {
  const PandaDesign d = optimize_panda(5, 10.0, 500.0, 500.0);
  const PandaSimResult sim =
      simulate_panda(5, d.wake_rate, d.listen_window, 500.0, 500.0, 3e6, 21);
  // The renewal model is approximate; require agreement within 15%.
  EXPECT_NEAR(sim.groupput, d.throughput, 0.15 * d.throughput);
  EXPECT_NEAR(sim.avg_power, d.power, 0.15 * d.power);
}

TEST(Panda, PaperHeadlineGapVersusOracle) {
  // §VII-C: Panda lands at roughly 2-3% of the oracle groupput at the
  // symmetric-power operating point (enabling the 6x/17x claims).
  const PandaDesign d = optimize_panda(5, 10.0, 500.0, 500.0);
  const double oracle_t =
      oracle::groupput(model::homogeneous(5, 10.0, 500.0, 500.0)).throughput;
  const double ratio = d.throughput / oracle_t;
  EXPECT_GT(ratio, 0.01);
  EXPECT_LT(ratio, 0.06);
}

TEST(Panda, ThroughputImprovesWithBudget) {
  const double t1 = optimize_panda(5, 1.0, 67.08, 56.29).throughput;
  const double t5 = optimize_panda(5, 5.0, 67.08, 56.29).throughput;
  EXPECT_GT(t5, t1);
}

TEST(Panda, RejectsBadInputs) {
  EXPECT_THROW(optimize_panda(1, 10.0, 500.0, 500.0), std::invalid_argument);
  EXPECT_THROW(optimize_panda(5, 0.0, 500.0, 500.0), std::invalid_argument);
  EXPECT_THROW(simulate_panda(5, 0.0, 1.0, 500.0, 500.0, 1e4, 1),
               std::invalid_argument);
}

TEST(Panda, SimDeterministicPerSeed) {
  const PandaSimResult a = simulate_panda(5, 0.01, 1.0, 500.0, 500.0, 1e5, 5);
  const PandaSimResult b = simulate_panda(5, 0.01, 1.0, 500.0, 500.0, 1e5, 5);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.receptions, b.receptions);
}

// ------------------------------------------------------------- searchlight --

TEST(Searchlight, PaperPeriodAndDutyCycle) {
  SearchlightConfig cfg;  // defaults are the paper's setting
  const SearchlightResult r = analyze_searchlight(cfg);
  EXPECT_EQ(r.period_slots, 100);       // t = 2L/ρ
  EXPECT_NEAR(r.duty_cycle, 0.02, 1e-12);
}

TEST(Searchlight, PaperWorstCaseLatencyNear125s) {
  // Fig. 5(a) reference line: 125 s with slot 50 ms, beacon 1 ms.
  SearchlightConfig cfg;
  const SearchlightResult r = analyze_searchlight(cfg);
  EXPECT_NEAR(r.worst_latency_seconds, 125.0, 6.0);
  EXPECT_LT(r.mean_latency_seconds, r.worst_latency_seconds);
  EXPECT_GT(r.mean_latency_seconds, 20.0);
}

TEST(Searchlight, HigherBudgetShortensLatency) {
  SearchlightConfig lean;
  SearchlightConfig rich;
  rich.budget = 50e-6;
  const double worst_lean = analyze_searchlight(lean).worst_latency_seconds;
  const double worst_rich = analyze_searchlight(rich).worst_latency_seconds;
  EXPECT_LT(worst_rich, worst_lean);
}

TEST(Searchlight, GroupputUpperBoundScalesWithN) {
  SearchlightConfig cfg;
  const SearchlightResult r = analyze_searchlight(cfg);
  EXPECT_DOUBLE_EQ(r.groupput_upper_bound(5), 4.0 * r.pairwise_throughput);
  EXPECT_DOUBLE_EQ(r.groupput_upper_bound(1), 0.0);
}

TEST(Searchlight, FarBelowOracleAtPaperPoint) {
  SearchlightConfig cfg;
  cfg.budget = 10.0;  // µW-scale unit system
  cfg.listen_power = 500.0;
  const SearchlightResult r = analyze_searchlight(cfg);
  const double oracle_t =
      oracle::groupput(model::homogeneous(5, 10.0, 500.0, 500.0)).throughput;
  const double ratio = r.groupput_upper_bound(5) / oracle_t;
  EXPECT_GT(ratio, 0.003);
  EXPECT_LT(ratio, 0.10);
}

TEST(Searchlight, RejectsNonDutyCycledInputs) {
  SearchlightConfig cfg;
  cfg.budget = 1.0;
  cfg.listen_power = 0.5;  // budget above listen power: no duty cycling
  EXPECT_THROW(analyze_searchlight(cfg), std::invalid_argument);
}

}  // namespace
