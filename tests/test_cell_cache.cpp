// Tests for the sweep throughput layer: the content-addressed CellCache
// (hit/miss/rejected/publish accounting, tamper and truncation rejection,
// epoch isolation, concurrent publish, gc/scan), the CostModel and its LPT
// submission order, ScenarioRunner::run_with_seeds permutation validation,
// and the end-to-end guarantee the whole layer hangs off: a sweep run with
// the cache off, cold or warm — and in either submission order — produces
// byte-identical results files, with the warm run executing zero cells.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "protocol/protocol.h"
#include "protocol/protocol_json.h"
#include "runner/cell_cache.h"
#include "runner/cost_model.h"
#include "runner/manifest.h"
#include "runner/scenario_runner.h"
#include "runner/sweep_session.h"

namespace {

using namespace econcast;
namespace fs = std::filesystem;

fs::path test_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir = fs::path(::testing::TempDir()) /
                       (std::string("econcast_") + info->test_suite_name() +
                        "_" + info->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spit(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// A small mixed stochastic + analytic sweep: 2 protocols x 2 N x 2 σ x 2
/// replicates = 16 cells, a couple of seconds end to end.
runner::SweepManifest small_manifest() {
  proto::SimConfig cfg;
  cfg.duration = 4e3;
  cfg.warmup = 5e2;
  return runner::SweepManifest(
      runner::SweepSpec("cache-mini")
          .protocols({protocol::econcast_spec(cfg),
                      protocol::p4_spec(model::Mode::kGroupput, 0.5)})
          .node_counts({3, 4})
          .sigmas({0.5, 0.75})
          .replicates(2),
      /*seed=*/7, true);
}

/// All entry files currently in a cache directory, path-sorted so tests can
/// sabotage deterministic victims.
std::vector<fs::path> entry_files(const fs::path& cache_dir) {
  std::vector<fs::path> files;
  for (const auto& e : fs::recursive_directory_iterator(cache_dir))
    if (e.is_regular_file() && e.path().extension() == ".jsonl")
      files.push_back(e.path());
  std::sort(files.begin(), files.end());
  return files;
}

// ------------------------------------------------------------ cache keys --

TEST(CellCache, KeyIgnoresNameAndSeparatesSeeds) {
  const fs::path dir = test_dir();
  runner::CellCache cache((dir / "cache").string());
  const auto cells = runner::expand_with_overrides(small_manifest());
  ASSERT_GE(cells.size(), 2u);

  runner::Scenario renamed = cells[0];
  renamed.name = "a-different-sweep/" + renamed.name;
  EXPECT_EQ(cache.entry_path(cache.cell_key(cells[0], 42)),
            cache.entry_path(cache.cell_key(renamed, 42)));
  EXPECT_NE(cache.entry_path(cache.cell_key(cells[0], 42)),
            cache.entry_path(cache.cell_key(cells[0], 43)));
  // Replicates of one spec share a key (only their names and seeds differ);
  // a different spec (other protocol/N/σ) never does.
  EXPECT_EQ(cache.entry_path(cache.cell_key(cells[0], 42)),
            cache.entry_path(cache.cell_key(cells[1], 42)));
  EXPECT_NE(cache.entry_path(cache.cell_key(cells[0], 42)),
            cache.entry_path(cache.cell_key(cells.back(), 42)));
  // <dir>/<2 hex>/<64 hex>.jsonl.
  const std::string path = cache.entry_path(cache.cell_key(cells[0], 42));
  const std::string tail = path.substr((dir / "cache").string().size());
  EXPECT_EQ(tail.size(), 1 + 2 + 1 + 64 + 6);
  EXPECT_EQ(tail.substr(1, 2), tail.substr(4, 2));
}

TEST(CellCache, ForeignEpochIsADisjointNamespace) {
  const fs::path dir = test_dir();
  const auto cells = runner::expand_with_overrides(small_manifest());
  const protocol::SimResult result;  // content is irrelevant here

  runner::CellCache old_epoch((dir / "cache").string(), "econcast-epoch-0");
  old_epoch.publish(cells[0], 42, result, 1.0);
  EXPECT_EQ(old_epoch.stats().publishes, 1u);
  EXPECT_TRUE(old_epoch.probe(cells[0], 42).hit);

  // The current epoch hashes to a different path entirely: a clean miss,
  // not a rejection — stale epochs can never collide with live entries.
  runner::CellCache current((dir / "cache").string());
  EXPECT_FALSE(current.probe(cells[0], 42).hit);
  EXPECT_EQ(current.stats().misses, 1u);
  EXPECT_EQ(current.stats().rejected, 0u);
}

TEST(CellCache, ConcurrentPublishersOfOneCellNeverTearTheEntry) {
  const fs::path dir = test_dir();
  const std::string cache_dir = (dir / "cache").string();
  const auto cells = runner::expand_with_overrides(small_manifest());
  protocol::SimResult result;
  result.groupput = 0.125;

  // All writers publish identical bytes (same cell, same wall_ms). The
  // pid-unique temp name de-conflicts *processes*; same-process rivals can
  // race each other's rename, which surfaces as a publish error — losing
  // the race is fine as long as at least one publish lands and the entry is
  // never torn.
  std::atomic<int> published{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 8; ++t)
    writers.emplace_back([&cache_dir, &cells, &result, &published] {
      runner::CellCache cache(cache_dir);
      for (int i = 0; i < 25; ++i) {
        try {
          cache.publish(cells[0], 42, result, 1.0);
          published.fetch_add(1);
        } catch (const std::runtime_error&) {
          // Lost a rename race to a rival publisher.
        }
      }
    });
  for (std::thread& w : writers) w.join();
  EXPECT_GE(published.load(), 1);

  // One entry, valid, with the agreed result bytes; no leftover temp files.
  runner::CellCache reader(cache_dir);
  const runner::CellCache::Probe probe = reader.probe(cells[0], 42);
  ASSERT_TRUE(probe.hit);
  EXPECT_EQ(probe.result.groupput, 0.125);
  std::size_t files = 0;
  for (const auto& e : fs::recursive_directory_iterator(cache_dir))
    if (e.is_regular_file()) {
      ++files;
      EXPECT_EQ(e.path().extension(), ".jsonl") << e.path();
    }
  EXPECT_EQ(files, 1u);
}

TEST(CellCache, ScanAndGcAccountForEntries) {
  const fs::path dir = test_dir();
  const std::string cache_dir = (dir / "cache").string();
  const auto cells = runner::expand_with_overrides(small_manifest());
  runner::CellCache cache(cache_dir);
  const protocol::SimResult result;
  for (std::size_t i = 0; i < 4; ++i)
    cache.publish(cells[i], 100 + i, result, 2.5);

  const auto stats = runner::CellCache::scan(cache_dir);
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_DOUBLE_EQ(stats.total_wall_ms, 10.0);
  std::size_t by_protocol = 0;
  for (const auto& [name, count] : stats.entries_by_protocol)
    by_protocol += count;
  EXPECT_EQ(by_protocol, 4u);

  // GC to zero removes everything; an empty dir scans/gcs cleanly.
  const auto report = runner::CellCache::gc(cache_dir, 0);
  EXPECT_EQ(report.entries_before, 4u);
  EXPECT_EQ(report.entries_removed, 4u);
  EXPECT_EQ(report.bytes_after, 0u);
  EXPECT_EQ(runner::CellCache::scan(cache_dir).entries, 0u);
  EXPECT_EQ(runner::CellCache::gc((dir / "nope").string(), 0).entries_before,
            0u);
}

// ------------------------------------------------- sweep-session plumbing --

TEST(CellCache, OffColdWarmRunsAreByteIdenticalAndWarmExecutesNothing) {
  const fs::path dir = test_dir();
  const runner::SweepManifest manifest = small_manifest();
  const std::string cache_dir = (dir / "cache").string();

  runner::SweepSession off(manifest, (dir / "off.jsonl").string());
  EXPECT_EQ(off.run(), 16u);

  runner::SweepSession::Options options;
  options.cache = std::make_shared<runner::CellCache>(cache_dir);
  runner::SweepSession cold(manifest, (dir / "cold.jsonl").string(), options);
  cold.run();
  EXPECT_EQ(options.cache->stats().hits, 0u);
  EXPECT_EQ(options.cache->stats().misses, 16u);
  EXPECT_EQ(options.cache->stats().publishes, 16u);

  // Warm rerun: every cell is served from the cache — nothing executes, so
  // nothing republishes — and the per-cell hook still fires for every cell
  // in index order.
  options.cache = std::make_shared<runner::CellCache>(cache_dir);
  std::vector<std::size_t> reported;
  options.on_cell_done = [&reported](const runner::ScenarioProgress& p) {
    reported.push_back(p.index);
  };
  runner::SweepSession warm(manifest, (dir / "warm.jsonl").string(), options);
  warm.run();
  EXPECT_EQ(options.cache->stats().hits, 16u);
  EXPECT_EQ(options.cache->stats().misses, 0u);
  EXPECT_EQ(options.cache->stats().publishes, 0u);
  ASSERT_EQ(reported.size(), 16u);
  EXPECT_TRUE(std::is_sorted(reported.begin(), reported.end()));

  const std::string reference = slurp(dir / "off.jsonl");
  EXPECT_EQ(reference, slurp(dir / "cold.jsonl"));
  EXPECT_EQ(reference, slurp(dir / "warm.jsonl"));

  // Cost-ordered submission is equally invisible in the bytes, warm or not.
  options.cache = std::make_shared<runner::CellCache>(cache_dir);
  options.order = runner::SweepSession::SubmitOrder::kCost;
  options.on_cell_done = nullptr;
  runner::SweepSession cost(manifest, (dir / "cost.jsonl").string(), options);
  cost.run();
  EXPECT_EQ(reference, slurp(dir / "cost.jsonl"));
}

TEST(CellCache, SabotagedEntriesAreRejectedAndRecomputed) {
  const fs::path dir = test_dir();
  const runner::SweepManifest manifest = small_manifest();
  const std::string cache_dir = (dir / "cache").string();

  runner::SweepSession::Options options;
  options.cache = std::make_shared<runner::CellCache>(cache_dir);
  runner::SweepSession cold(manifest, (dir / "cold.jsonl").string(), options);
  cold.run();
  const std::string reference = slurp(dir / "cold.jsonl");

  // Sabotage four entries four ways: garbage bytes, truncation mid-line, a
  // tampered key (seed edited in place) and a tampered epoch field.
  const std::vector<fs::path> victims = entry_files(cache_dir);
  ASSERT_EQ(victims.size(), 16u);
  spit(victims[0], "not json at all\n");
  spit(victims[1], slurp(victims[1]).substr(0, 40));
  const std::string tampered_key = victims[2].string();
  {
    std::string text = slurp(victims[2]);
    const auto pos = text.find("\"seed\":\"");
    ASSERT_NE(pos, std::string::npos);
    text[pos + 8] = text[pos + 8] == '9' ? '8' : '9';
    spit(victims[2], text);
  }
  {
    std::string text = slurp(victims[3]);
    const auto pos = text.find(runner::kCacheEpoch);
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, std::string(runner::kCacheEpoch).size(),
                 "econcast-epoch-X");
    spit(victims[3], text);
  }

  options.cache = std::make_shared<runner::CellCache>(cache_dir);
  runner::SweepSession rerun(manifest, (dir / "rerun.jsonl").string(),
                             options);
  rerun.run();
  EXPECT_EQ(options.cache->stats().hits, 12u);
  EXPECT_EQ(options.cache->stats().rejected, 4u);
  EXPECT_EQ(options.cache->stats().misses, 0u);
  EXPECT_EQ(options.cache->stats().publishes, 4u);  // sabotaged cells healed
  EXPECT_EQ(reference, slurp(dir / "rerun.jsonl"));

  // The healed entries are valid again.
  options.cache = std::make_shared<runner::CellCache>(cache_dir);
  runner::SweepSession warm(manifest, (dir / "warm.jsonl").string(), options);
  warm.run();
  EXPECT_EQ(options.cache->stats().hits, 16u);
  EXPECT_EQ(reference, slurp(dir / "warm.jsonl"));
}

TEST(CellCache, ReadOnlyCacheDirectoryDegradesToRecompute) {
  // Publishing into an uncreatable directory must not fail the sweep: the
  // publish hook swallows cache I/O errors and the results file is intact.
  const fs::path dir = test_dir();
  const runner::SweepManifest manifest = small_manifest();
  spit(dir / "blocker", "");  // a *file*, so <dir>/blocker/<..> cannot exist

  runner::SweepSession off(manifest, (dir / "off.jsonl").string());
  off.run();

  runner::SweepSession::Options options;
  options.cache =
      std::make_shared<runner::CellCache>((dir / "blocker" / "c").string());
  runner::SweepSession session(manifest, (dir / "run.jsonl").string(),
                               options);
  EXPECT_EQ(session.run(), 16u);
  EXPECT_EQ(options.cache->stats().publishes, 0u);
  EXPECT_EQ(slurp(dir / "off.jsonl"), slurp(dir / "run.jsonl"));
}

// -------------------------------------------------------------- cost model --

TEST(CostModel, UnitsArePositiveAndGrowWithWork) {
  const auto cells = runner::expand_with_overrides(small_manifest());
  for (const runner::Scenario& cell : cells)
    EXPECT_GT(runner::CostModel::estimate_units(cell), 0.0) << cell.name;

  // More nodes must cost more units for the same protocol family, and a
  // simulated protocol must dwarf an analytic bound at equal N.
  proto::SimConfig cfg;
  cfg.duration = 4e3;
  const model::NodeSet three = model::homogeneous(3, 10.0, 500.0, 500.0);
  const model::NodeSet eight = model::homogeneous(8, 10.0, 500.0, 500.0);
  const runner::Scenario sim3 = {"s3", three, model::Topology::clique(3),
                                 protocol::econcast_spec(cfg)};
  const runner::Scenario sim8 = {"s8", eight, model::Topology::clique(8),
                                 protocol::econcast_spec(cfg)};
  const runner::Scenario bound3 = {
      "b3", three, model::Topology::clique(3),
      protocol::p4_spec(model::Mode::kGroupput, 0.5)};
  EXPECT_GT(runner::CostModel::estimate_units(sim8),
            runner::CostModel::estimate_units(sim3));
  EXPECT_GT(runner::CostModel::estimate_units(sim3),
            runner::CostModel::estimate_units(bound3));

  // Uncalibrated ms estimates preserve the units ordering.
  const runner::CostModel model;
  EXPECT_GT(model.estimate_ms(sim8), model.estimate_ms(sim3));
}

TEST(CostModel, CalibrationLearnsScalesFromCacheEntries) {
  const fs::path dir = test_dir();
  const std::string cache_dir = (dir / "cache").string();
  const auto cells = runner::expand_with_overrides(small_manifest());
  runner::CellCache cache(cache_dir);
  const protocol::SimResult result;
  for (std::size_t i = 0; i < cells.size(); ++i)
    cache.publish(cells[i], 42 + i, result, 3.0);

  runner::CostModel model;
  model.calibrate_from_cache(cache_dir);
  EXPECT_FALSE(model.scales().empty());
  for (const auto& [name, scale] : model.scales())
    EXPECT_GT(scale, 0.0) << name;

  // Missing directory: calibration is a no-op, not an error.
  runner::CostModel blank;
  blank.calibrate_from_cache((dir / "nope").string());
  EXPECT_TRUE(blank.scales().empty());
}

TEST(CostModel, SubmitOrderIsADeterministicLptPermutation) {
  const auto cells = runner::expand_with_overrides(small_manifest());
  const runner::CostModel model;

  for (const std::size_t participants : {0u, 1u, 3u, 4u, 7u}) {
    const std::vector<std::size_t> order =
        runner::cost_submit_order(cells, model, participants);
    ASSERT_EQ(order.size(), cells.size());
    std::vector<std::size_t> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i)
      EXPECT_EQ(sorted[i], i) << "participants=" << participants;
    EXPECT_EQ(order,
              runner::cost_submit_order(cells, model, participants));
  }

  // With one participant the order is exactly descending cost, ties by
  // ascending index.
  const std::vector<std::size_t> lpt =
      runner::cost_submit_order(cells, model, 1);
  for (std::size_t k = 1; k < lpt.size(); ++k) {
    const double prev = model.estimate_ms(cells[lpt[k - 1]]);
    const double cur = model.estimate_ms(cells[lpt[k]]);
    EXPECT_TRUE(prev > cur || (prev == cur && lpt[k - 1] < lpt[k]))
        << "k=" << k;
  }
}

// ---------------------------------------------------------- run_with_seeds --

TEST(RunWithSeeds, ValidatesSeedsAndPermutation) {
  const auto cells = runner::expand_with_overrides(small_manifest());
  const std::vector<runner::Scenario> batch(cells.begin(), cells.begin() + 4);
  const runner::ScenarioRunner r(runner::RunnerOptions{2, 7, true});
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4};

  EXPECT_THROW(r.run_with_seeds(batch, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(r.run_with_seeds(batch, seeds, {0, 1, 2}),
               std::invalid_argument);
  EXPECT_THROW(r.run_with_seeds(batch, seeds, {0, 1, 2, 2}),
               std::invalid_argument);
  EXPECT_THROW(r.run_with_seeds(batch, seeds, {0, 1, 2, 4}),
               std::invalid_argument);
}

TEST(RunWithSeeds, SubmissionOrderCannotChangeResults) {
  const auto cells = runner::expand_with_overrides(small_manifest());
  const std::vector<runner::Scenario> batch(cells.begin(), cells.begin() + 6);
  const runner::ScenarioRunner r(runner::RunnerOptions{2, 7, true});
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < batch.size(); ++i)
    seeds.push_back(runner::derive_seed(7, i));

  const runner::BatchResult forward = r.run_with_seeds(batch, seeds);
  const runner::BatchResult reversed =
      r.run_with_seeds(batch, seeds, {5, 4, 3, 2, 1, 0});
  ASSERT_EQ(forward.results.size(), reversed.results.size());
  for (std::size_t i = 0; i < forward.results.size(); ++i) {
    EXPECT_EQ(protocol::to_json(forward.results[i]) ==
                  protocol::to_json(reversed.results[i]),
              true)
        << "cell " << i;
  }
}

}  // namespace
