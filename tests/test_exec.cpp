// Tests for the persistent work-stealing executor: full index coverage
// (exactly once) across pool shapes, persistence of one pool across many
// batches, parallelism caps, the serialized per-task progress contract,
// exception propagation with abandonment, nested-call inlining, and
// graceful shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/executor.h"

namespace {

using econcast::exec::Executor;
using econcast::exec::TaskProgress;

TEST(Executor, CoversAllIndicesExactlyOnce) {
  Executor pool(4);
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                              std::size_t{64}, std::size_t{257}}) {
    SCOPED_TRACE(n);
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(Executor, ZeroTasksIsANoOp) {
  Executor pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Executor, MoreWorkersThanTasks) {
  Executor pool(16);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Executor, PersistsAcrossManyBatches) {
  // The point of the refactor: one pool, many batches, no respawn. Run
  // enough batches that a per-batch thread spawn would be visibly slow and
  // assert every batch is complete and correct.
  Executor pool(4);
  for (int batch = 0; batch < 100; ++batch) {
    std::vector<int> out(50, 0);
    pool.parallel_for(out.size(), [&](std::size_t i) {
      out[i] = batch + static_cast<int>(i);
    });
    for (std::size_t i = 0; i < out.size(); ++i)
      ASSERT_EQ(out[i], batch + static_cast<int>(i));
  }
}

TEST(Executor, MaxParallelismOneRunsInline) {
  Executor pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(8);
  pool.parallel_for(
      ran.size(), [&](std::size_t i) { ran[i] = std::this_thread::get_id(); },
      /*max_parallelism=*/1);
  for (const auto& id : ran) EXPECT_EQ(id, caller);
}

TEST(Executor, WorkIsActuallyShared) {
  // With enough tasks and a pool, at least two distinct threads participate
  // (the caller plus >= 1 worker). Tasks block briefly so the caller cannot
  // race through the whole range alone.
  Executor pool(4);
  std::mutex mu;
  std::set<std::thread::id> threads;
  pool.parallel_for(64, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    threads.insert(std::this_thread::get_id());
  });
  EXPECT_GE(threads.size(), 2u);
}

TEST(Executor, ProgressReportsEveryTaskSerialized) {
  Executor pool(4);
  const std::size_t n = 100;
  std::vector<int> seen(n, 0);
  std::size_t calls = 0;
  std::size_t last_done = 0;
  pool.parallel_for(
      n, [](std::size_t) {}, 0, [&](const TaskProgress& p) {
        // Serialized contract: no lock needed, done advances by exactly 1.
        ++calls;
        EXPECT_EQ(p.done, last_done + 1);
        last_done = p.done;
        EXPECT_EQ(p.total, n);
        ASSERT_LT(p.index, n);
        seen[p.index] += 1;
      });
  EXPECT_EQ(calls, n);
  EXPECT_EQ(last_done, n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(seen[i], 1);
}

TEST(Executor, ProgressAlsoFiresOnSerialPath) {
  Executor pool(4);
  std::vector<std::size_t> order;
  pool.parallel_for(
      5, [](std::size_t) {}, /*max_parallelism=*/1,
      [&](const TaskProgress& p) { order.push_back(p.index); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Executor, FirstExceptionPropagatesAndRestIsAbandoned) {
  Executor pool(4);
  std::atomic<int> calls{0};
  EXPECT_THROW(
      pool.parallel_for(1000,
                        [&](std::size_t i) {
                          calls.fetch_add(1);
                          if (i == 0) throw std::runtime_error("boom");
                          std::this_thread::sleep_for(
                              std::chrono::microseconds(200));
                        }),
      std::runtime_error);
  // The failing index ran; abandonment keeps the tail from all running.
  EXPECT_GE(calls.load(), 1);
  EXPECT_LE(calls.load(), 1000);
}

TEST(Executor, UsableAfterAFailedBatch) {
  Executor pool(2);
  EXPECT_THROW(pool.parallel_for(
                   10, [](std::size_t i) {
                     if (i == 3) throw std::logic_error("bad cell");
                   }),
               std::logic_error);
  std::atomic<int> ok{0};
  pool.parallel_for(10, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST(Executor, NestedParallelForRunsInlineWithoutDeadlock) {
  Executor pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](std::size_t) {
    // A task that itself calls parallel_for must not deadlock on the
    // executor's submission lock; it runs the nested batch inline.
    pool.parallel_for(5, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 4 * 5);
}

TEST(Executor, NestedCallFromSerialPathDoesNotDeadlock) {
  // The serial fast path (single task, or max_parallelism == 1) holds the
  // submission mutex while running the task inline; a nested parallel_for
  // from inside it must still be detected and inlined.
  Executor pool(4);
  std::atomic<int> inner{0};
  pool.parallel_for(1, [&](std::size_t) {
    pool.parallel_for(6, [&](std::size_t) { inner.fetch_add(1); });
  });
  pool.parallel_for(
      3,
      [&](std::size_t) {
        pool.parallel_for(2, [&](std::size_t) { inner.fetch_add(1); });
      },
      /*max_parallelism=*/1);
  EXPECT_EQ(inner.load(), 6 + 3 * 2);
}

TEST(Executor, SharedReturnsOneProcessWideInstance) {
  Executor& a = Executor::shared();
  Executor& b = Executor::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_workers(), 1u);
  std::atomic<int> hits{0};
  a.parallel_for(32, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 32);
}

TEST(Executor, ConcurrentSubmittersSerializeSafely) {
  // Two external threads submit batches to one executor at once; the
  // submission mutex serializes them and both complete correctly.
  Executor pool(4);
  std::vector<int> a(200, 0), b(200, 0);
  std::thread other([&] {
    pool.parallel_for(b.size(), [&](std::size_t i) { b[i] = 2; });
  });
  pool.parallel_for(a.size(), [&](std::size_t i) { a[i] = 1; });
  other.join();
  EXPECT_EQ(std::accumulate(a.begin(), a.end(), 0), 200);
  EXPECT_EQ(std::accumulate(b.begin(), b.end(), 0), 400);
}

TEST(Executor, GracefulShutdownJoinsIdleWorkers) {
  // Construct, run nothing (and then something), destruct: no leaks, no
  // hangs — the destructor drains and joins.
  { Executor idle(3); }
  {
    Executor busy(3);
    std::atomic<int> hits{0};
    busy.parallel_for(17, [&](std::size_t) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 17);
  }
  SUCCEED();
}

}  // namespace
