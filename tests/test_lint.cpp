// Tests for the determinism lint (tools/lint): token matching with
// string/comment/raw-string stripping, every rule against its seeded
// fixture file (exact lines), NOLINT-DETERMINISM suppression accounting in
// all three placement forms, lint.json validation that names the offending
// key, the CLI exit-code contract (0/1/2/3), and the self-lint of the
// repository tree at HEAD.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace {

using econcast::lint::Config;
using econcast::lint::ConfigError;
using econcast::lint::Finding;
using econcast::lint::ScanResult;
using econcast::lint::Severity;

const std::string kFixtures = ECONCAST_LINT_FIXTURES_DIR;
const std::string kSourceDir = ECONCAST_SOURCE_DIR;

ScanResult scan_text(const std::string& text,
                     const Config& config = Config::defaults(),
                     const std::string& path = "src/test_input.cpp") {
  ScanResult result;
  econcast::lint::scan_source(path, text, config, result);
  return result;
}

ScanResult scan_fixture(const std::string& name,
                        const Config& config = Config::defaults()) {
  return econcast::lint::scan_paths({kFixtures + "/" + name}, config);
}

std::vector<std::size_t> lines_of(const ScanResult& r,
                                  const std::string& rule) {
  std::vector<std::size_t> lines;
  for (const Finding& f : r.findings)
    if (f.rule == rule) lines.push_back(f.line);
  return lines;
}

int run_cli(const std::vector<std::string>& args, std::string* out_text,
            std::string* err_text) {
  std::ostringstream out, err;
  const int rc = econcast::lint::run_cli(args, out, err);
  if (out_text) *out_text = out.str();
  if (err_text) *err_text = err.str();
  return rc;
}

// ------------------------------------------------------------- stripping --

TEST(LintStrip, BannedNamesInStringsAndCommentsAreIgnored) {
  const ScanResult r = scan_text(
      "// std::rand in a comment, and system_clock too\n"
      "/* thread_local std::unordered_map\n"
      "   spanning lines */\n"
      "const char* s = \"std::rand() time(nullptr) srand(1)\";\n"
      "const char* raw = R\"(std::thread steady_clock)\";\n"
      "const char c = 't';\n");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintStrip, EscapedQuotesDoNotLeakStringContents) {
  const ScanResult r = scan_text(
      "const char* s = \"quote \\\" then std::rand() still inside\";\n"
      "int after = 0;\n");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintStrip, CodeAfterStringOnSameLineIsStillScanned) {
  const ScanResult r =
      scan_text("const char* s = \"label\"; std::thread t;\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "raw-thread");
  EXPECT_EQ(r.findings[0].line, 1u);
}

// -------------------------------------------------------- token matching --

TEST(LintMatch, IdentifierBoundariesAreRespected) {
  // Fragments of longer identifiers must not match.
  const ScanResult r = scan_text(
      "double run_time(double t) { return t; }\n"
      "int time_since_epoch = 0;\n"
      "int my_srand_count = 0;\n"
      "struct randomizer {};\n");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintMatch, MemberCallNamedTimeIsNotAClockRead) {
  const ScanResult r = scan_text(
      "double a = timer.time();\n"
      "double b = timer_ptr->time();\n"
      "double c = time(nullptr);\n");
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].line, 3u);
  EXPECT_EQ(r.findings[0].rule, "wall-clock");
}

TEST(LintMatch, ThisThreadIsNotRawThread) {
  const ScanResult r =
      scan_text("std::this_thread::sleep_for(std::chrono::seconds(1));\n");
  EXPECT_TRUE(r.findings.empty());
}

TEST(LintMatch, PointerKeyedMapAndSetAreFlagged) {
  const ScanResult hit = scan_text(
      "std::map<Node*, int> by_addr;\n"
      "std::set<const Node *> visited;\n"
      "std::map< Widget * , int > spaced;\n");
  EXPECT_EQ(lines_of(hit, "pointer-key"),
            (std::vector<std::size_t>{1, 2, 3}));

  const ScanResult clean = scan_text(
      "std::map<std::string, double> extras;\n"
      "std::map<int, Node*> values_may_be_pointers;\n"
      "std::set<std::pair<int, int>> pairs;\n");
  EXPECT_TRUE(clean.findings.empty());
}

// ------------------------------------------- fixture files, exact lines --

TEST(LintFixtures, RawRand) {
  const ScanResult r = scan_fixture("violations/raw_rand.cpp");
  EXPECT_EQ(r.findings.size(), 4u);
  EXPECT_EQ(lines_of(r, "raw-rand"), (std::vector<std::size_t>{6, 7, 8, 9}));
}

TEST(LintFixtures, WallClock) {
  const ScanResult r = scan_fixture("violations/wall_clock.cpp");
  EXPECT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(lines_of(r, "wall-clock"), (std::vector<std::size_t>{6, 7, 8}));
}

TEST(LintFixtures, UnorderedContainers) {
  const ScanResult r = scan_fixture("violations/unordered.cpp");
  EXPECT_EQ(r.findings.size(), 4u);
  EXPECT_EQ(lines_of(r, "unordered-container"),
            (std::vector<std::size_t>{4, 5, 7, 8}));
}

TEST(LintFixtures, PointerKeys) {
  const ScanResult r = scan_fixture("violations/pointer_key.cpp");
  EXPECT_EQ(r.findings.size(), 2u);
  EXPECT_EQ(lines_of(r, "pointer-key"), (std::vector<std::size_t>{10, 11}));
}

TEST(LintFixtures, ThreadLocalState) {
  const ScanResult r = scan_fixture("violations/thread_local_state.cpp");
  EXPECT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(lines_of(r, "thread-local"), (std::vector<std::size_t>{3}));
}

TEST(LintFixtures, RawHash) {
  const ScanResult r = scan_fixture("violations/raw_hash.cpp");
  EXPECT_EQ(r.findings.size(), 3u);
  EXPECT_EQ(lines_of(r, "raw-hash"), (std::vector<std::size_t>{8, 10, 11}));
}

TEST(LintFixtures, RawThreads) {
  const ScanResult r = scan_fixture("violations/raw_thread.cpp");
  EXPECT_EQ(r.findings.size(), 5u);
  EXPECT_EQ(lines_of(r, "raw-thread"),
            (std::vector<std::size_t>{9, 10, 11, 12, 13}));
}

TEST(LintFixtures, MalformedAnnotationsAreFindingsAndDoNotSuppress) {
  const ScanResult r = scan_fixture("violations/bad_nolint.cpp");
  EXPECT_EQ(r.findings.size(), 4u);
  EXPECT_EQ(lines_of(r, "nolint"), (std::vector<std::size_t>{5, 8}));
  EXPECT_EQ(lines_of(r, "wall-clock"), (std::vector<std::size_t>{6, 9}));
  // The messages name the problem.
  bool unknown_rule_named = false;
  bool empty_reason_named = false;
  for (const Finding& f : r.findings) {
    if (f.message.find("wall-clok") != std::string::npos)
      unknown_rule_named = true;
    if (f.message.find("empty reason") != std::string::npos)
      empty_reason_named = true;
  }
  EXPECT_TRUE(unknown_rule_named);
  EXPECT_TRUE(empty_reason_named);
  EXPECT_TRUE(r.suppressions.empty());
}

TEST(LintFixtures, CleanFilesProduceNoFindings) {
  const ScanResult r = scan_fixture("clean/clean.cpp");
  EXPECT_TRUE(r.findings.empty());
  EXPECT_TRUE(r.suppressions.empty());
  EXPECT_EQ(r.unused_suppressions, 0u);
}

TEST(LintFixtures, SuppressionAccountingAcrossPlacementForms) {
  const ScanResult r = scan_fixture("clean/suppressed.cpp");
  EXPECT_TRUE(r.findings.empty());
  ASSERT_EQ(r.suppressions.size(), 3u);
  std::vector<std::string> suppressed_rules;
  for (const auto& s : r.suppressions) suppressed_rules.push_back(s.rule);
  std::sort(suppressed_rules.begin(), suppressed_rules.end());
  EXPECT_EQ(suppressed_rules,
            (std::vector<std::string>{"raw-thread", "thread-local",
                                      "wall-clock"}));
  EXPECT_EQ(r.unused_suppressions, 1u);
  for (const auto& s : r.suppressions) EXPECT_FALSE(s.reason.empty());
}

// ---------------------------------------------------------- allowlisting --

TEST(LintConfig, AllowlistPrefixExemptsDirectoryAndExactFile) {
  Config config = Config::defaults();
  config.rules["raw-thread"].allow = {"src/exec/", "bench/special.cpp"};
  ScanResult r;
  econcast::lint::scan_source("src/exec/executor.cpp", "std::thread t;\n",
                              config, r);
  econcast::lint::scan_source("bench/special.cpp", "std::thread t;\n",
                              config, r);
  EXPECT_TRUE(r.findings.empty());
  econcast::lint::scan_source("src/sim/channel.cpp", "std::thread t;\n",
                              config, r);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].file, "src/sim/channel.cpp");
  // "bench/special.cpp" must not match "bench/special.cpp.bak"-style paths.
  econcast::lint::scan_source("bench/special.cpp2", "std::thread t;\n",
                              config, r);
  EXPECT_EQ(r.findings.size(), 2u);
}

TEST(LintConfig, DisabledRuleAndWarningSeverity) {
  Config config = Config::defaults();
  config.rules["raw-thread"].enabled = false;
  config.rules["wall-clock"].severity = Severity::kWarning;
  const ScanResult r = scan_text(
      "std::thread t;\n"
      "auto now = std::chrono::system_clock::now();\n",
      config);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "wall-clock");
  EXPECT_EQ(r.error_count(), 0u);
  EXPECT_EQ(r.warning_count(), 1u);
}

// ------------------------------------------------------ config rejection --

TEST(LintConfig, GoodConfigParses) {
  const Config config = econcast::lint::load_config(
      kFixtures + "/configs/good.json");
  EXPECT_EQ(config.rules.at("wall-clock").severity, Severity::kWarning);
  EXPECT_EQ(config.rules.at("wall-clock").allow,
            (std::vector<std::string>{"bench/"}));
  EXPECT_FALSE(config.rules.at("raw-thread").enabled);
  EXPECT_EQ(config.exclude, (std::vector<std::string>{"generated/"}));
  // Untouched rules keep their defaults.
  EXPECT_TRUE(config.rules.at("raw-rand").enabled);
  EXPECT_EQ(config.rules.at("raw-rand").severity, Severity::kError);
}

void expect_config_error(const std::string& file,
                         const std::string& named_offender) {
  try {
    econcast::lint::load_config(kFixtures + "/configs/" + file);
    FAIL() << file << " should have been rejected";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(named_offender), std::string::npos)
        << file << ": message \"" << e.what() << "\" does not name \""
        << named_offender << "\"";
  }
}

TEST(LintConfig, RejectionNamesTheOffendingKey) {
  expect_config_error("bad_key.json", "rulez");
  expect_config_error("bad_rule.json", "wall-clok");
  expect_config_error("bad_severity.json", "fatal");
  expect_config_error("bad_version.json", "version");
  expect_config_error("bad_allow.json", "allow");
}

TEST(LintConfig, MissingConfigFileIsAConfigError) {
  EXPECT_THROW(econcast::lint::load_config(kFixtures + "/configs/nope.json"),
               ConfigError);
}

// ------------------------------------------------------------------- CLI --

TEST(LintCli, ExitCodeContract) {
  std::string out, err;
  // 0: clean tree.
  EXPECT_EQ(run_cli({kFixtures + "/clean"}, &out, &err), 0);
  EXPECT_NE(out.find("0 findings"), std::string::npos);
  EXPECT_NE(out.find("3 suppressions used"), std::string::npos);
  EXPECT_NE(out.find("1 unused"), std::string::npos);

  // 1: findings.
  EXPECT_EQ(run_cli({kFixtures + "/violations"}, &out, &err), 1);
  EXPECT_NE(out.find("[raw-rand]"), std::string::npos);
  EXPECT_NE(out.find("[wall-clock]"), std::string::npos);
  EXPECT_NE(out.find("[raw-thread]"), std::string::npos);
  EXPECT_NE(out.find("[raw-hash]"), std::string::npos);

  // 2: usage — no paths, unknown flag, missing scan path.
  EXPECT_EQ(run_cli({}, &out, &err), 2);
  EXPECT_NE(err.find("usage:"), std::string::npos);
  EXPECT_EQ(run_cli({"--frobnicate", "src"}, &out, &err), 2);
  EXPECT_NE(err.find("--frobnicate"), std::string::npos);
  EXPECT_EQ(run_cli({kFixtures + "/no_such_dir"}, &out, &err), 2);

  // 3: config errors, file named.
  EXPECT_EQ(run_cli({"--config", kFixtures + "/configs/bad_rule.json",
                     kFixtures + "/clean"},
                    &out, &err),
            3);
  EXPECT_NE(err.find("bad_rule.json"), std::string::npos);
  EXPECT_NE(err.find("wall-clok"), std::string::npos);
  EXPECT_EQ(run_cli({"--config", kFixtures + "/configs/missing.json",
                     kFixtures + "/clean"},
                    &out, &err),
            3);
}

TEST(LintCli, WarningsOnlyFindingsExitZero) {
  std::string out, err;
  // good.json downgrades wall-clock to a warning and disables raw-thread,
  // but other rules stay errors — scan only the wall-clock fixture.
  EXPECT_EQ(run_cli({"--config", kFixtures + "/configs/good.json",
                     kFixtures + "/violations/wall_clock.cpp"},
                    &out, &err),
            0);
  EXPECT_NE(out.find("warning: [wall-clock]"), std::string::npos);
  EXPECT_NE(out.find("3 findings (0 errors, 3 warnings)"),
            std::string::npos);
}

TEST(LintCli, ListRulesPrintsTheRegistry) {
  std::string out, err;
  EXPECT_EQ(run_cli({"--list-rules"}, &out, &err), 0);
  for (const auto& info : econcast::lint::rules())
    EXPECT_NE(out.find(info.id + ":"), std::string::npos) << info.id;
}

TEST(LintCli, VerboseListsSuppressions) {
  std::string out, err;
  EXPECT_EQ(run_cli({"--verbose", kFixtures + "/clean/suppressed.cpp"},
                    &out, &err),
            0);
  EXPECT_NE(out.find("note: suppressed [wall-clock]"), std::string::npos);
}

// -------------------------------------------------------------- self-lint --

TEST(LintSelfHost, RepositoryTreeAtHeadIsClean) {
  // The acceptance gate, in-process: the checked-in lint.json over every
  // source directory must come back clean. Run from the source root so the
  // allowlist prefixes match.
  const std::filesystem::path previous = std::filesystem::current_path();
  std::filesystem::current_path(kSourceDir);
  std::string out, err;
  const int rc = run_cli({"--config", "lint.json", "src", "tools", "tests",
                          "bench", "examples"},
                         &out, &err);
  std::filesystem::current_path(previous);
  EXPECT_EQ(rc, 0) << out << err;
  EXPECT_NE(out.find("0 findings"), std::string::npos) << out;
  // The tree's deliberate exceptions are all annotated: every suppression
  // fired and none dangle.
  EXPECT_NE(out.find("0 unused"), std::string::npos) << out;
}

}  // namespace
