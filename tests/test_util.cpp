// Unit tests for the util substrate: RNG, log-sum-exp, statistics, tables,
// rational approximation.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/logsumexp.h"
#include "util/random.h"
#include "util/rational.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace econcast::util;

// ---------------------------------------------------------------- random --

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b();
  EXPECT_LT(same, 4);
}

TEST(Xoshiro, JumpChangesStream) {
  Xoshiro256 a(7), b(7);
  b.jump();
  EXPECT_NE(a(), b());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanVariance) {
  Rng rng(43);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.005);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(44);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Rng, DegenerateUniformReturnsPoint) {
  Rng rng(45);
  EXPECT_DOUBLE_EQ(rng.uniform(5.0, 5.0), 5.0);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(46);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.005);
}

TEST(Rng, ExponentialIsMemorylessInDistribution) {
  // P(X > a + b | X > a) == P(X > b) — compare tail fractions.
  Rng rng(47);
  int beyond_a = 0, beyond_ab = 0, beyond_b = 0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(1.0);
    if (x > 0.7) ++beyond_a;
    if (x > 1.2) ++beyond_ab;
    if (x > 0.5) ++beyond_b;
  }
  const double conditional = static_cast<double>(beyond_ab) / beyond_a;
  const double unconditional = static_cast<double>(beyond_b) / n;
  EXPECT_NEAR(conditional, unconditional, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(48);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(49);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, UniformIntRangeAndCoverage) {
  Rng rng(50);
  std::vector<int> seen(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const auto v = rng.uniform_int(7);
    ASSERT_LT(v, 7u);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (const int c : seen) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, GeometricContinuesMean) {
  Rng rng(51);
  RunningStats s;
  for (int i = 0; i < 100000; ++i)
    s.add(static_cast<double>(rng.geometric_continues(0.8)));
  EXPECT_NEAR(s.mean(), 4.0, 0.1);  // p/(1-p) = 0.8/0.2
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(52);
  Rng b = a.fork();
  RunningStats corr;
  for (int i = 0; i < 1000; ++i)
    corr.add((a.uniform() - 0.5) * (b.uniform() - 0.5));
  EXPECT_NEAR(corr.mean(), 0.0, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  shuffle(v, rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

// ------------------------------------------------------------- logsumexp --

TEST(LogSumExpTest, MatchesDirectComputationSmall) {
  LogSumExp acc;
  acc.add(std::log(2.0));
  acc.add(std::log(3.0));
  acc.add(std::log(5.0));
  EXPECT_NEAR(acc.value(), std::log(10.0), 1e-12);
}

TEST(LogSumExpTest, EmptyIsLogZero) {
  LogSumExp acc;
  EXPECT_EQ(acc.value(), kLogZero);
  EXPECT_TRUE(acc.empty());
}

TEST(LogSumExpTest, HandlesHugeExponents) {
  LogSumExp acc;
  acc.add(1000.0);
  acc.add(1000.0);
  EXPECT_NEAR(acc.value(), 1000.0 + std::log(2.0), 1e-9);
}

TEST(LogSumExpTest, HandlesTinyExponents) {
  LogSumExp acc;
  acc.add(-1000.0);
  acc.add(-1001.0);
  EXPECT_NEAR(acc.value(), -1000.0 + std::log(1.0 + std::exp(-1.0)), 1e-9);
}

TEST(LogSumExpTest, IgnoresLogZeroTerms) {
  LogSumExp acc;
  acc.add(kLogZero);
  acc.add(0.0);
  EXPECT_NEAR(acc.value(), 0.0, 1e-15);
}

TEST(LogSumExpTest, SpanOverloadMatchesStreaming) {
  const std::vector<double> vals{-3.0, 0.5, 2.0, 2.0, -10.0};
  LogSumExp acc;
  for (const double v : vals) acc.add(v);
  EXPECT_NEAR(log_sum_exp(vals), acc.value(), 1e-12);
}

TEST(LogSumExpTest, OrderInvariance) {
  std::vector<double> vals{100.0, -50.0, 3.0, 99.0};
  const double a = log_sum_exp(vals);
  std::reverse(vals.begin(), vals.end());
  EXPECT_NEAR(log_sum_exp(vals), a, 1e-12);
}

// ----------------------------------------------------------------- stats --

TEST(RunningStatsTest, MeanVarianceKnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStatsTest, Ci95ShrinksWithSamples) {
  Rng rng(54);
  RunningStats small, large;
  for (int i = 0; i < 100; ++i) small.add(rng.uniform());
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(SampleSetTest, PercentileNearestRank) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
}

TEST(SampleSetTest, PercentileOfEmptyThrows) {
  SampleSet s;
  EXPECT_THROW(s.percentile(0.5), std::logic_error);
}

TEST(SampleSetTest, CdfMonotone) {
  SampleSet s;
  Rng rng(55);
  for (int i = 0; i < 1000; ++i) s.add(rng.uniform());
  double prev = 0.0;
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    const double c = s.cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(s.cdf(2.0), 1.0);
  EXPECT_DOUBLE_EQ(s.cdf(-1.0), 0.0);
}

TEST(SampleSetTest, AddAfterQueryKeepsConsistency) {
  SampleSet s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 1.0);
  s.add(3.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 3.0);
}

TEST(CounterTest, FractionsSumToOne) {
  Counter c;
  c.add(0, 89);
  c.add(1, 10);
  c.add(2, 1);
  EXPECT_DOUBLE_EQ(c.fraction(0) + c.fraction(1) + c.fraction(2), 1.0);
  EXPECT_EQ(c.total(), 100u);
  EXPECT_EQ(c.max_value(), 2u);
  EXPECT_DOUBLE_EQ(c.fraction(7), 0.0);
}

TEST(CounterTest, EmptyCounter) {
  Counter c;
  EXPECT_EQ(c.total(), 0u);
  EXPECT_DOUBLE_EQ(c.fraction(0), 0.0);
}

// ----------------------------------------------------------------- table --

TEST(TableTest, AlignedRendering) {
  Table t({"a", "bbbb"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print(os, "title");
  const std::string out = os.str();
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("bbbb"), std::string::npos);
}

TEST(TableTest, CsvRendering) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row();
  t.add_cell(3.14159, 2);
  t.add_cell(static_cast<std::int64_t>(7));
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n3.14,7\n");
}

TEST(TableTest, RowWidthMismatchThrows) {
  Table t({"x", "y"});
  EXPECT_THROW(t.add_row({"only one"}), std::logic_error);
  t.add_row({"1", "2"});
  t.add_row();
  t.add_cell("a");
  t.add_cell("b");
  EXPECT_THROW(t.add_cell("c"), std::logic_error);
}

TEST(FormatTest, FixedAndScientific) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_sci(12345.0, 2), "1.23e+04");
}

// -------------------------------------------------------------- rational --

TEST(RationalTest, ExactFractions) {
  const Rational r = approximate_rational(0.75, 100);
  EXPECT_EQ(r.num, 3);
  EXPECT_EQ(r.den, 4);
}

TEST(RationalTest, BoundedDenominator) {
  const Rational r = approximate_rational(M_PI, 1000);
  EXPECT_LE(r.den, 1000);
  EXPECT_NEAR(r.value(), M_PI, 1e-6);  // 355/113 territory
}

TEST(RationalTest, ZeroAndIntegers) {
  EXPECT_EQ(approximate_rational(0.0, 10).num, 0);
  const Rational r = approximate_rational(42.0, 10);
  EXPECT_EQ(r.num, 42);
  EXPECT_EQ(r.den, 1);
}

TEST(RationalTest, RejectsNegativeAndBadDen) {
  EXPECT_THROW(approximate_rational(-1.0, 10), std::invalid_argument);
  EXPECT_THROW(approximate_rational(1.0, 0), std::invalid_argument);
}

TEST(RationalTest, GcdLcm) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(7, 13), 1);
  EXPECT_EQ(lcm64_checked(4, 6, 1000), 12);
  EXPECT_THROW(lcm64_checked(1000000, 999999, 1000), std::overflow_error);
}

}  // namespace
