// Tests for the (P4) solvers: Algorithm 1, the accelerated dual method, the
// symmetric fast path, and the theoretical relationships of §VI (duality,
// σ → 0 convergence to the oracle — Theorem 1's deterministic core).
#include <gtest/gtest.h>

#include <cmath>

#include "gibbs/p4_solver.h"
#include "oracle/clique_oracle.h"
#include "util/random.h"

namespace {

using namespace econcast;
using namespace econcast::gibbs;
using model::Mode;

model::NodeSet paper_nodes(std::size_t n = 5) {
  return model::homogeneous(n, 10.0, 500.0, 500.0);
}

void expect_budget_respected(const model::NodeSet& nodes, const P4Result& r,
                             double rel_tol) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const double power = r.alpha[i] * nodes[i].listen_power +
                         r.beta[i] * nodes[i].transmit_power;
    EXPECT_LE(power, nodes[i].budget * (1.0 + rel_tol)) << "node " << i;
  }
}

TEST(P4Solver, SymmetricPathConverges) {
  const P4Result r = solve_p4(paper_nodes(), Mode::kGroupput, 0.5);
  EXPECT_TRUE(r.converged);
  expect_budget_respected(paper_nodes(), r, 1e-6);
  EXPECT_GT(r.throughput, 0.0);
  EXPECT_LT(r.throughput, 0.08);  // strictly below the oracle at σ > 0
}

TEST(P4Solver, StrongDualityAtOptimum) {
  // D(η*) equals the (P4) optimum (objective includes the entropy term).
  for (const Mode mode : {Mode::kGroupput, Mode::kAnyput}) {
    const P4Result r = solve_p4(paper_nodes(), mode, 0.5);
    EXPECT_NEAR(r.objective, r.dual, 1e-6 * std::abs(r.dual) + 1e-8);
  }
}

TEST(P4Solver, AcceleratedMatchesSymmetricOnHomogeneous) {
  const auto nodes = paper_nodes();
  P4Options accel;
  accel.method = P4Method::kAccelerated;
  accel.tolerance = 1e-9;
  const P4Result a = solve_p4(nodes, Mode::kGroupput, 0.5, accel);
  const P4Result s = solve_p4(nodes, Mode::kGroupput, 0.5);
  ASSERT_TRUE(a.converged);
  EXPECT_NEAR(a.throughput, s.throughput, 1e-5);
  EXPECT_NEAR(a.eta[0], s.eta[0], 1e-4 * s.eta[0] + 1e-8);
}

TEST(P4Solver, Algorithm1MatchesAccelerated) {
  // The paper's Algorithm 1 (δ_k = δ_0/k) on a small instance. The 1/k decay
  // converges slowly, so we compare multipliers (the throughput is steeply
  // sensitive to η near the optimum).
  const auto nodes = paper_nodes(3);
  P4Options alg1;
  alg1.method = P4Method::kAlgorithm1;
  alg1.max_iterations = 100000;
  alg1.tolerance = 1e-6;
  alg1.delta0 = 1e-5;  // scaled to the µW unit system
  const P4Result a = solve_p4(nodes, Mode::kGroupput, 0.5, alg1);
  const P4Result b = solve_p4(nodes, Mode::kGroupput, 0.5);
  EXPECT_NEAR(a.eta[0], b.eta[0], 0.05 * b.eta[0]);
  EXPECT_NEAR(a.throughput, b.throughput, 0.3 * b.throughput);
}

TEST(P4Solver, ThroughputIncreasesAsSigmaDecreases) {
  double prev = 0.0;
  for (const double sigma : {1.0, 0.5, 0.25, 0.1}) {
    const double t = solve_p4(paper_nodes(), Mode::kGroupput, sigma).throughput;
    EXPECT_GT(t, prev) << "sigma=" << sigma;
    prev = t;
  }
}

TEST(P4Solver, ConvergesToOracleAsSigmaVanishes) {
  // Theorem 1 (deterministic part): T^σ -> T* as σ -> 0.
  const auto nodes = paper_nodes();
  const double oracle_t = oracle::groupput(nodes).throughput;
  const double t_small = solve_p4(nodes, Mode::kGroupput, 0.02).throughput;
  EXPECT_GT(t_small / oracle_t, 0.9);
  const double t_tiny = solve_p4(nodes, Mode::kGroupput, 0.005).throughput;
  EXPECT_GT(t_tiny / oracle_t, 0.97);
}

TEST(P4Solver, AnyputConvergesToOracleAsSigmaVanishes) {
  const auto nodes = paper_nodes();
  const double oracle_t = oracle::anyput(nodes).throughput;
  const double t = solve_p4(nodes, Mode::kAnyput, 0.01).throughput;
  EXPECT_GT(t / oracle_t, 0.93);
}

TEST(P4Solver, NeverExceedsOracle) {
  util::Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    const auto nodes = model::sample_heterogeneous(5, 200.0, rng);
    for (const Mode mode : {Mode::kGroupput, Mode::kAnyput}) {
      const double t_sigma = solve_p4(nodes, mode, 0.3).throughput;
      const double t_star = oracle::solve(nodes, mode).throughput;
      EXPECT_LE(t_sigma, t_star + 1e-7);
    }
  }
}

TEST(P4Solver, HeterogeneousBudgetsRespected) {
  util::Rng rng(22);
  for (int trial = 0; trial < 8; ++trial) {
    const auto nodes = model::sample_heterogeneous(5, 150.0, rng);
    const P4Result r = solve_p4(nodes, Mode::kGroupput, 0.25);
    EXPECT_TRUE(r.converged);
    expect_budget_respected(nodes, r, 1e-5);
  }
}

TEST(P4Solver, PaperFigure3Ratios) {
  // §VII-C headline: at L = X = 500 µW the groupput ratio is ~6x Panda at
  // σ = 0.5 and ~17x at σ = 0.25, i.e. ratios ≈ 0.14 and ≈ 0.43.
  const auto nodes = paper_nodes();
  const double t_star = oracle::groupput(nodes).throughput;
  const double r_05 = solve_p4(nodes, Mode::kGroupput, 0.5).throughput / t_star;
  const double r_025 =
      solve_p4(nodes, Mode::kGroupput, 0.25).throughput / t_star;
  EXPECT_NEAR(r_05, 0.143, 0.03);
  EXPECT_NEAR(r_025, 0.428, 0.05);
  EXPECT_GT(r_025 / r_05, 2.0);
}

TEST(P4Solver, ThroughputRatioPeaksNearSymmetricPower) {
  // Fig. 3 shape: the ratio T^σ/T* improves as X/L -> 1.
  const double rho = 10.0;
  auto ratio_at = [&](double x_over_l) {
    const double x = 1000.0 * x_over_l / (1.0 + x_over_l);
    const double l = 1000.0 - x;
    const auto nodes = model::homogeneous(5, rho, l, x);
    return solve_p4(nodes, Mode::kGroupput, 0.5).throughput /
           oracle::groupput(nodes).throughput;
  };
  const double at_1 = ratio_at(1.0);
  EXPECT_GT(at_1, ratio_at(1.0 / 9.0));
  EXPECT_GT(at_1, ratio_at(9.0));
}

TEST(P4Solver, AnyputRatioDegradesForExpensiveTransmit) {
  // §VII-C: anyput degrades with large X/L.
  auto ratio_at = [&](double x_over_l) {
    const double x = 1000.0 * x_over_l / (1.0 + x_over_l);
    const double l = 1000.0 - x;
    const auto nodes = model::homogeneous(5, 10.0, l, x);
    return solve_p4(nodes, Mode::kAnyput, 0.25).throughput /
           oracle::anyput(nodes).throughput;
  };
  EXPECT_GT(ratio_at(1.0), ratio_at(9.0));
}

TEST(P4Solver, RejectsBadInputs) {
  EXPECT_THROW(solve_p4(model::homogeneous(1, 1, 1, 1), Mode::kGroupput, 0.5),
               std::invalid_argument);
  EXPECT_THROW(solve_p4(paper_nodes(), Mode::kGroupput, 0.0),
               std::invalid_argument);
}

// Property sweep over (N, σ): budgets respected, duality gap closed,
// throughput within (0, T*].
class P4Sweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(P4Sweep, Invariants) {
  const auto [n, sigma] = GetParam();
  const auto nodes = paper_nodes(n);
  const P4Result r = solve_p4(nodes, Mode::kGroupput, sigma);
  EXPECT_TRUE(r.converged);
  expect_budget_respected(nodes, r, 1e-6);
  EXPECT_GT(r.throughput, 0.0);
  EXPECT_LE(r.throughput, oracle::groupput(nodes).throughput + 1e-9);
  EXPECT_NEAR(r.objective, r.dual, 1e-5 * std::abs(r.dual) + 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    GridOfNAndSigma, P4Sweep,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{5},
                                         std::size_t{10}),
                       ::testing::Values(0.1, 0.25, 0.5, 1.0)));

}  // namespace
