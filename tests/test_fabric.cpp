// Tests for the distributed sweep fabric (src/fabric): shard planning,
// claim files + heartbeats, range-restricted SweepSession execution,
// worker claim/resume semantics, coordinator reassignment of dead workers,
// and the merge byte-identity guarantee — a manifest sharded k ways through
// coordinator + workers + merger must produce a results JSONL byte-identical
// to the single-process `econcast_sweep` run, including after a worker dies
// mid-shard and its shard is reassigned.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fabric/claim.h"
#include "fabric/coordinator.h"
#include "fabric/cost_plan.h"
#include "fabric/merger.h"
#include "fabric/shard_plan.h"
#include "fabric/worker.h"
#include "protocol/protocol.h"
#include "runner/manifest.h"
#include "runner/sweep_session.h"

namespace {

using namespace econcast;
namespace fs = std::filesystem;

fs::path test_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir = fs::path(::testing::TempDir()) /
                       (std::string("econcast_") + info->test_suite_name() +
                        "_" + info->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void spit(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// A small mixed stochastic + analytic sweep: 2 protocols x 2 N x 2 σ x 2
/// replicates = 16 cells, a couple of seconds end to end.
runner::SweepManifest small_manifest() {
  proto::SimConfig cfg;
  cfg.duration = 4e3;
  cfg.warmup = 5e2;
  return runner::SweepManifest(
      runner::SweepSpec("fabric-mini")
          .protocols({protocol::econcast_spec(cfg),
                      protocol::p4_spec(model::Mode::kGroupput, 0.5)})
          .node_counts({3, 4})
          .sigmas({0.5, 0.75})
          .replicates(2),
      /*seed=*/7, true);
}

/// Writes the manifest into `dir` under a spool-compatible name and returns
/// its path.
std::string write_spool_manifest(const fs::path& dir,
                                 const runner::SweepManifest& manifest,
                                 const std::string& stem = "mini") {
  const std::string path = (dir / (stem + ".manifest.json")).string();
  runner::write_manifest(manifest, path);
  return path;
}

// ------------------------------------------------------------- ShardPlan --

TEST(ShardPlan, PartitionsCellsContiguously) {
  for (const std::size_t total : {0u, 1u, 5u, 16u, 100u}) {
    for (const std::size_t k : {1u, 2u, 3u, 7u, 23u}) {
      SCOPED_TRACE(std::to_string(total) + " cells / " + std::to_string(k));
      const fabric::ShardPlan plan(total, k);
      std::size_t covered = 0;
      std::size_t max_size = 0, min_size = total;
      for (std::size_t i = 0; i < k; ++i) {
        const fabric::ShardRange range = plan.shard(i);
        EXPECT_EQ(range.index, i);
        EXPECT_EQ(range.count, k);
        EXPECT_EQ(range.begin, covered);  // contiguous, in order
        EXPECT_LE(range.begin, range.end);
        covered = range.end;
        max_size = std::max(max_size, range.size());
        min_size = std::min(min_size, range.size());
      }
      EXPECT_EQ(covered, total);  // tiles [0, total) exactly
      EXPECT_LE(max_size - min_size, 1u);  // balanced
    }
  }
  EXPECT_THROW(fabric::ShardPlan(10, 0), std::invalid_argument);
  EXPECT_THROW(fabric::ShardPlan(10, 3).shard(3), std::out_of_range);
}

TEST(ShardPlan, PathLayout) {
  EXPECT_EQ(fabric::fabric_dir("spool/fig3a.manifest.json"),
            "spool/fig3a.manifest.fabric");
  EXPECT_EQ(fabric::shard_results_path("spool/fig3a.manifest.json", 1, 3),
            "spool/fig3a.manifest.fabric/shard-1-of-3.jsonl");
  EXPECT_EQ(fabric::shard_claim_path("spool/fig3a.manifest.json", 0, 3),
            "spool/fig3a.manifest.fabric/shard-0-of-3.claim.json");
  EXPECT_EQ(fabric::plan_path("spool/fig3a.manifest.json"),
            "spool/fig3a.manifest.fabric/plan.json");
  // The merged file lands exactly where a single-process run writes.
  EXPECT_EQ(fabric::merged_results_path("spool/fig3a.manifest.json"),
            runner::SweepSession::default_results_path(
                "spool/fig3a.manifest.json"));
}

TEST(ShardPlan, PinValidatesAndConflicts) {
  const fs::path dir = test_dir();
  const std::string manifest_path = (dir / "m.manifest.json").string();
  EXPECT_FALSE(fabric::plan_exists(manifest_path));
  const fabric::ShardPlan pinned = fabric::pin_plan(manifest_path, 16, 3);
  EXPECT_EQ(pinned.total_cells(), 16u);
  EXPECT_TRUE(fabric::plan_exists(manifest_path));
  // Re-pinning the same shape is idempotent; a different shape is an error
  // naming both.
  EXPECT_NO_THROW(fabric::pin_plan(manifest_path, 16, 3));
  try {
    fabric::pin_plan(manifest_path, 16, 4);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("3 shards"), std::string::npos) << what;
    EXPECT_NE(what.find("4"), std::string::npos) << what;
  }
  EXPECT_THROW(fabric::pin_plan(manifest_path, 17, 3), std::runtime_error);
  const fabric::ShardPlan loaded = fabric::load_plan(manifest_path);
  EXPECT_EQ(loaded.shard_count(), 3u);
  // A corrupt plan is reported as corrupt, never half-parsed.
  spit(fabric::plan_path(manifest_path), "{\"format\": \"nope\"}");
  EXPECT_THROW(fabric::load_plan(manifest_path), std::runtime_error);
}

TEST(ShardPlan, ExplicitBoundsPartitionAndValidate) {
  const fabric::ShardPlan plan(16, std::vector<std::size_t>{0, 9, 12, 16});
  EXPECT_EQ(plan.shard_count(), 3u);
  EXPECT_FALSE(plan.equal_split());
  EXPECT_EQ(plan.shard(0).begin, 0u);
  EXPECT_EQ(plan.shard(0).end, 9u);
  EXPECT_EQ(plan.shard(1).begin, 9u);
  EXPECT_EQ(plan.shard(1).end, 12u);
  EXPECT_EQ(plan.shard(2).begin, 12u);
  EXPECT_EQ(plan.shard(2).end, 16u);
  // Explicit bounds that happen to be the equal split are recognized as it.
  EXPECT_TRUE(fabric::ShardPlan(16, std::vector<std::size_t>{0, 5, 10, 16})
                  .equal_split());
  // Empty shards are legal; malformed bounds are not.
  EXPECT_NO_THROW(fabric::ShardPlan(16, std::vector<std::size_t>{0, 16, 16}));
  EXPECT_THROW(fabric::ShardPlan(16, std::vector<std::size_t>{1, 9, 16}),
               std::invalid_argument);
  EXPECT_THROW(fabric::ShardPlan(16, std::vector<std::size_t>{0, 9, 15}),
               std::invalid_argument);
  EXPECT_THROW(fabric::ShardPlan(16, std::vector<std::size_t>{0, 9, 5, 16}),
               std::invalid_argument);
  EXPECT_THROW(fabric::ShardPlan(16, std::vector<std::size_t>{16}),
               std::invalid_argument);
}

TEST(ShardPlan, BoundsRoundTripAndPinnedBoundsWin) {
  const fs::path dir = test_dir();
  const std::string manifest_path = (dir / "m.manifest.json").string();
  const fabric::ShardPlan uneven(16, std::vector<std::size_t>{0, 9, 12, 16});
  fabric::pin_plan(manifest_path, uneven);
  EXPECT_EQ(fabric::load_plan(manifest_path).bounds(), uneven.bounds());
  // An equal-split worker joining later adopts the pinned bounds, and so
  // does a rival cost-balanced pin with different cuts — one manifest, one
  // partition.
  EXPECT_EQ(fabric::pin_plan(manifest_path, 16, 3).bounds(), uneven.bounds());
  EXPECT_EQ(fabric::pin_plan(manifest_path,
                             fabric::ShardPlan(
                                 16, std::vector<std::size_t>{0, 4, 8, 16}))
                .bounds(),
            uneven.bounds());
  // A different shape still conflicts.
  EXPECT_THROW(fabric::pin_plan(manifest_path, 16, 4), std::runtime_error);

  // Equal-split plans keep the legacy plan.json bytes: no bounds array.
  const std::string manifest_eq = (dir / "eq.manifest.json").string();
  fabric::pin_plan(manifest_eq, 16, 3);
  EXPECT_EQ(slurp(fabric::plan_path(manifest_eq)).find("bounds"),
            std::string::npos);
  EXPECT_TRUE(fabric::load_plan(manifest_eq).equal_split());
}

TEST(ShardPlan, CostBalancedPlanCoversCellsAndZeroesCachedWork) {
  const runner::SweepManifest manifest = small_manifest();

  // Without a cache the plan is still a valid contiguous 3-way partition.
  const fabric::ShardPlan plan = fabric::cost_balanced_plan(manifest, 3, "");
  EXPECT_EQ(plan.total_cells(), 16u);
  EXPECT_EQ(plan.shard_count(), 3u);
  EXPECT_EQ(plan.bounds().front(), 0u);
  EXPECT_EQ(plan.bounds().back(), 16u);

  // With every cell cached the remaining cost is zero and the plan falls
  // back to the equal split.
  const fs::path dir = test_dir();
  const std::string cache_dir = (dir / "cache").string();
  runner::CellCache cache(cache_dir);
  const auto cells = runner::expand_with_overrides(manifest);
  const protocol::SimResult result;
  for (std::size_t i = 0; i < cells.size(); ++i)
    cache.publish(cells[i], runner::manifest_cell_seed(manifest, cells[i], i),
                  result, 1.0);
  EXPECT_TRUE(
      fabric::cost_balanced_plan(manifest, 3, cache_dir).equal_split());

  // With everything cached but the last cell, all remaining cost sits in
  // cell 15: every cut lands at 16 and the first shard owns all the work.
  fs::remove(cache.entry_path(
      cache.cell_key(cells[15],
                     runner::manifest_cell_seed(manifest, cells[15], 15))));
  const fabric::ShardPlan tail = fabric::cost_balanced_plan(manifest, 3,
                                                            cache_dir);
  EXPECT_EQ(tail.bounds(),
            (std::vector<std::size_t>{0, 16, 16, 16}));
}

TEST(ShardPlan, CompleteLineCount) {
  const fs::path dir = test_dir();
  const std::string path = (dir / "lines.jsonl").string();
  EXPECT_EQ(fabric::complete_line_count(path), 0u);  // missing file
  spit(path, "");
  EXPECT_EQ(fabric::complete_line_count(path), 0u);
  spit(path, "{\"a\":1}\n{\"b\":2}\n");
  EXPECT_EQ(fabric::complete_line_count(path), 2u);
  // A partial trailing record (kill mid-write) does not count.
  spit(path, "{\"a\":1}\n{\"b\":2}\n{\"c\":");
  EXPECT_EQ(fabric::complete_line_count(path), 2u);
}

// ----------------------------------------------------------------- Claims --

TEST(ShardClaim, AcquireIsExclusiveAndReleaseIdempotent) {
  const fs::path dir = test_dir();
  const std::string path = (dir / "shard-0-of-2.claim.json").string();
  fabric::ShardClaim claim;
  claim.shard = 0;
  claim.shard_count = 2;
  claim.worker = "worker-a";
  claim.claimed_at = claim.heartbeat_at = fabric::wall_clock_seconds();

  EXPECT_TRUE(fabric::try_acquire_claim(path, claim));
  // Second acquirer loses, whoever it is — existence is ownership.
  fabric::ShardClaim rival = claim;
  rival.worker = "worker-b";
  EXPECT_FALSE(fabric::try_acquire_claim(path, rival));

  const fabric::ShardClaim loaded = fabric::load_claim(path);
  EXPECT_EQ(loaded.worker, "worker-a");
  EXPECT_EQ(loaded.shard, 0u);
  EXPECT_EQ(loaded.shard_count, 2u);
  EXPECT_EQ(loaded.heartbeat_at, claim.heartbeat_at);

  fabric::release_claim(path);
  EXPECT_FALSE(fabric::claim_exists(path));
  fabric::release_claim(path);  // idempotent
  EXPECT_TRUE(fabric::try_acquire_claim(path, rival));
}

TEST(ShardClaim, TouchHeartbeatsAndDetectsReassignment) {
  const fs::path dir = test_dir();
  const std::string path = (dir / "c.claim.json").string();
  fabric::ShardClaim claim;
  claim.worker = "worker-a";
  claim.claimed_at = claim.heartbeat_at = 100;  // stale on purpose
  ASSERT_TRUE(fabric::try_acquire_claim(path, claim));

  fabric::touch_claim(path, claim, /*cells_done=*/5);
  const fabric::ShardClaim after = fabric::load_claim(path);
  EXPECT_EQ(after.cells_done, 5u);
  EXPECT_GE(after.heartbeat_at, fabric::wall_clock_seconds() - 5);

  // Coordinator released and a rival re-acquired: our touch must fail, not
  // clobber the rival's claim.
  fabric::release_claim(path);
  fabric::ShardClaim rival = claim;
  rival.worker = "worker-b";
  ASSERT_TRUE(fabric::try_acquire_claim(path, rival));
  EXPECT_THROW(fabric::touch_claim(path, claim, 6), std::runtime_error);
  EXPECT_EQ(fabric::load_claim(path).worker, "worker-b");

  // A released claim makes touch fail too.
  fabric::release_claim(path);
  EXPECT_THROW(fabric::touch_claim(path, claim, 7), std::runtime_error);
}

TEST(ShardClaim, StalenessUsesLease) {
  fabric::ShardClaim claim;
  claim.heartbeat_at = 1000;
  EXPECT_FALSE(claim.stale(/*now=*/1000, /*lease=*/30));
  EXPECT_FALSE(claim.stale(1029, 30));
  EXPECT_TRUE(claim.stale(1030, 30));
  EXPECT_TRUE(claim.stale(1000, 0));  // zero lease: everything is stale
  // Corrupt claims load as errors.
  const fs::path dir = test_dir();
  spit(dir / "bad.claim.json", "{\"format\": \"econcast-shard-claim\"");
  EXPECT_THROW(fabric::load_claim((dir / "bad.claim.json").string()),
               std::runtime_error);
}

// ------------------------------------------- SweepSession cell ranges --

TEST(SweepSessionRange, ShardFilesConcatenateToSingleProcessBytes) {
  const fs::path dir = test_dir();
  const runner::SweepManifest manifest = small_manifest();

  runner::SweepSession full(manifest, (dir / "full.jsonl").string());
  ASSERT_EQ(full.cell_count(), 16u);
  full.run();

  // Three uneven contiguous ranges, run out of order.
  std::string concatenated;
  const std::size_t bounds[] = {0, 5, 11, 16};
  for (const int i : {2, 0, 1}) {
    runner::SweepSession::Options options;
    options.cell_begin = bounds[i];
    options.cell_end = bounds[i + 1];
    runner::SweepSession shard(manifest,
                               (dir / ("s" + std::to_string(i) + ".jsonl"))
                                   .string(),
                               options);
    EXPECT_EQ(shard.cell_count(), bounds[i + 1] - bounds[i]);
    EXPECT_EQ(shard.cell_begin(), bounds[i]);
    shard.run();
    EXPECT_TRUE(shard.complete());
  }
  for (const int i : {0, 1, 2})
    concatenated += slurp(dir / ("s" + std::to_string(i) + ".jsonl"));
  EXPECT_EQ(concatenated, slurp(dir / "full.jsonl"));
}

TEST(SweepSessionRange, ProgressHookReportsGlobalIndices) {
  const fs::path dir = test_dir();
  const runner::SweepManifest manifest = small_manifest();
  std::vector<std::size_t> indices;
  runner::SweepSession::Options options;
  options.cell_begin = 5;
  options.cell_end = 8;
  options.num_threads = 1;
  options.on_cell_done = [&](const runner::ScenarioProgress& p) {
    indices.push_back(p.index);
    EXPECT_EQ(p.total, 3u);
    EXPECT_NE(p.scenario, nullptr);
    EXPECT_NE(p.result, nullptr);
  };
  runner::SweepSession shard(manifest, (dir / "s.jsonl").string(), options);
  shard.run();
  EXPECT_EQ(indices, (std::vector<std::size_t>{5, 6, 7}));
}

TEST(SweepSessionRange, RejectsBadRangesAndForeignShardFiles) {
  const fs::path dir = test_dir();
  const runner::SweepManifest manifest = small_manifest();
  runner::SweepSession::Options options;
  options.cell_begin = 9;
  options.cell_end = 5;  // inverted
  EXPECT_THROW(
      runner::SweepSession(manifest, (dir / "x.jsonl").string(), options),
      std::invalid_argument);
  options.cell_begin = 5;
  options.cell_end = 17;  // past the 16-cell expansion
  EXPECT_THROW(
      runner::SweepSession(manifest, (dir / "x.jsonl").string(), options),
      std::invalid_argument);

  // A results file from one shard cannot resume under another range: the
  // recorded global indices no longer match.
  options.cell_begin = 0;
  options.cell_end = 4;
  {
    runner::SweepSession first(manifest, (dir / "r.jsonl").string(), options);
    first.run();
  }
  options.cell_begin = 4;
  options.cell_end = 8;
  EXPECT_THROW(
      runner::SweepSession(manifest, (dir / "r.jsonl").string(), options),
      std::runtime_error);
}

TEST(SweepSessionRange, ShardResumesAfterMidRecordKill) {
  const fs::path dir = test_dir();
  const runner::SweepManifest manifest = small_manifest();
  runner::SweepSession::Options options;
  options.cell_begin = 5;
  options.cell_end = 11;
  {
    runner::SweepSession reference(manifest, (dir / "ref.jsonl").string(),
                                   options);
    reference.run();
  }
  {
    runner::SweepSession killed(manifest, (dir / "k.jsonl").string(),
                                options);
    killed.run(3);
  }
  std::string bytes = slurp(dir / "k.jsonl");
  bytes.resize(bytes.size() - 9);  // mid-record kill
  spit(dir / "k.jsonl", bytes);
  runner::SweepSession resumed(manifest, (dir / "k.jsonl").string(), options);
  EXPECT_EQ(resumed.completed_cells(), 2u);
  resumed.run();
  EXPECT_EQ(slurp(dir / "k.jsonl"), slurp(dir / "ref.jsonl"));
}

// -------------------------------------------------- Worker + Merger --

TEST(Fabric, WorkersAndMergerReproduceSingleProcessBytes) {
  const fs::path dir = test_dir();
  const runner::SweepManifest manifest = small_manifest();
  const std::string manifest_path = write_spool_manifest(dir, manifest);

  runner::SweepSession single(manifest, (dir / "single.jsonl").string());
  single.run();

  for (const std::size_t i : {1u, 0u, 2u}) {  // order must not matter
    fabric::Worker worker(manifest_path, i, 3);
    const fabric::Worker::Outcome outcome = worker.run();
    EXPECT_EQ(outcome.status, fabric::Worker::Outcome::Status::kRan);
    EXPECT_TRUE(outcome.shard_complete);
    EXPECT_EQ(outcome.ran, outcome.shard_cells);
    // Clean completion releases the claim.
    EXPECT_FALSE(fabric::claim_exists(
        fabric::shard_claim_path(manifest_path, i, 3)));
  }
  const fabric::Merger::Report report = fabric::Merger::merge(manifest_path);
  EXPECT_EQ(report.shard_count, 3u);
  EXPECT_EQ(report.cells, 16u);
  EXPECT_EQ(slurp(report.merged_path), slurp(dir / "single.jsonl"));

  // Re-running a completed shard is a no-op, claim-free.
  fabric::Worker again(manifest_path, 1, 3);
  const fabric::Worker::Outcome outcome = again.run();
  EXPECT_EQ(outcome.status, fabric::Worker::Outcome::Status::kAlreadyComplete);
  EXPECT_EQ(outcome.ran, 0u);
}

TEST(Fabric, WorkerRespectsRivalClaimAndHeartbeats) {
  const fs::path dir = test_dir();
  const std::string manifest_path =
      write_spool_manifest(dir, small_manifest());

  // A rival already holds shard 0: the worker must not touch it.
  fabric::pin_plan(manifest_path, 16, 2);
  fabric::ShardClaim rival;
  rival.shard = 0;
  rival.shard_count = 2;
  rival.worker = "rival";
  rival.claimed_at = rival.heartbeat_at = fabric::wall_clock_seconds();
  ASSERT_TRUE(fabric::try_acquire_claim(
      fabric::shard_claim_path(manifest_path, 0, 2), rival));

  fabric::Worker::Options options;
  options.worker_id = "blocked";
  fabric::Worker blocked(manifest_path, 0, 2, options);
  EXPECT_EQ(blocked.run().status, fabric::Worker::Outcome::Status::kShardBusy);
  EXPECT_EQ(fabric::load_claim(fabric::shard_claim_path(manifest_path, 0, 2))
                .worker,
            "rival");

  // Shard 1 is free; the worker heartbeats its claim after every cell.
  std::vector<std::uint64_t> beats;
  fabric::Worker::Options beat_options;
  beat_options.worker_id = "beater";
  beat_options.num_threads = 1;
  beat_options.on_cell_done = [&](const runner::ScenarioProgress&) {
    beats.push_back(
        fabric::load_claim(fabric::shard_claim_path(manifest_path, 1, 2))
            .cells_done);
  };
  fabric::Worker beater(manifest_path, 1, 2, beat_options);
  const fabric::Worker::Outcome outcome = beater.run();
  EXPECT_TRUE(outcome.shard_complete);
  ASSERT_EQ(beats.size(), outcome.shard_cells);
  for (std::size_t i = 0; i < beats.size(); ++i) EXPECT_EQ(beats[i], i + 1);
}

TEST(Fabric, MergerRejectsMissingShortAndTamperedShards) {
  const fs::path dir = test_dir();
  const std::string manifest_path =
      write_spool_manifest(dir, small_manifest());

  fabric::Worker(manifest_path, 0, 2).run();
  // Shard 1 missing entirely.
  try {
    fabric::Merger::merge(manifest_path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("shard-1-of-2"), std::string::npos)
        << e.what();
  }

  fabric::Worker(manifest_path, 1, 2).run();
  EXPECT_NO_THROW(fabric::Merger::merge(manifest_path));

  // Partial trailing record: merge refuses (the shard must be resumed).
  const std::string shard1 = fabric::shard_results_path(manifest_path, 1, 2);
  const std::string intact = slurp(shard1);
  spit(shard1, intact.substr(0, intact.size() - 6));
  EXPECT_THROW(fabric::Merger::merge(manifest_path), std::runtime_error);
  spit(shard1, intact);

  // A tampered record index (simulating interleaved writers) is rejected.
  std::string tampered = intact;
  const std::size_t at = tampered.find("\"index\":");
  ASSERT_NE(at, std::string::npos);
  tampered[at + 8] = '0';  // first shard-1 cell index 8 -> 0
  spit(shard1, tampered);
  EXPECT_THROW(fabric::Merger::merge(manifest_path), std::runtime_error);
  spit(shard1, intact);

  // Plan conflict: merging as a different shard count than pinned fails.
  EXPECT_THROW(fabric::Merger::merge(manifest_path, 3, {}),
               std::runtime_error);
}

TEST(Fabric, OverShardedPlanLeavesEmptyShardsTriviallyComplete) {
  const fs::path dir = test_dir();
  proto::SimConfig cfg;
  cfg.duration = 3e3;
  const runner::SweepManifest manifest(
      runner::SweepSpec("tiny").protocols({protocol::econcast_spec(cfg)}),
      /*seed=*/3, true);  // a single cell
  const std::string manifest_path =
      write_spool_manifest(dir, manifest, "tiny");

  runner::SweepSession single(manifest, (dir / "single.jsonl").string());
  single.run();

  for (std::size_t i = 0; i < 3; ++i) {
    const fabric::Worker::Outcome outcome =
        fabric::Worker(manifest_path, i, 3).run();
    EXPECT_EQ(outcome.shard_cells, i == 2 ? 1u : 0u);
    EXPECT_TRUE(outcome.shard_complete);
  }
  const fabric::Merger::Report report = fabric::Merger::merge(manifest_path);
  EXPECT_EQ(report.cells, 1u);
  EXPECT_EQ(slurp(report.merged_path), slurp(dir / "single.jsonl"));
}

// ------------------------------------------------------- Coordinator --

TEST(Fabric, CoordinatorPlansReassignsAndMerges) {
  // The acceptance-criteria scenario, in process: shard 3 ways, let one
  // "worker" die mid-shard (checkpoint truncated mid-record + a claim left
  // behind with a stale heartbeat), have the coordinator reassign it, run a
  // replacement worker, and require the merged file byte-identical to the
  // single-process run.
  const fs::path dir = test_dir();
  const runner::SweepManifest manifest = small_manifest();
  const std::string manifest_path = write_spool_manifest(dir, manifest);

  runner::SweepSession single(manifest, (dir / "single.jsonl").string());
  single.run();

  fabric::Coordinator::Options options;
  options.shard_count = 3;
  options.lease_seconds = 3600;  // nothing is stale yet
  fabric::Coordinator coordinator(dir.string(), options);

  // Pass 1: pins the plan, nothing running.
  std::vector<fabric::Coordinator::SweepStatus> statuses = coordinator.pass();
  ASSERT_EQ(statuses.size(), 1u);
  EXPECT_TRUE(statuses[0].plan_pinned);
  EXPECT_EQ(statuses[0].total_cells, 16u);
  EXPECT_EQ(statuses[0].shard_count, 3u);
  EXPECT_EQ(statuses[0].cells_done, 0u);
  EXPECT_FALSE(statuses[0].merged);

  // Shards 0 and 2 complete cleanly; shard 1's worker "dies" mid-shard:
  // interrupted after 2 cells, results truncated mid-record, claim left
  // behind (a real kill cannot release it).
  fabric::Worker(manifest_path, 0, 3).run();
  fabric::Worker(manifest_path, 2, 3).run();
  {
    fabric::Worker::Options worker_options;
    worker_options.worker_id = "victim";
    worker_options.limit = 2;
    fabric::Worker(manifest_path, 1, 3, worker_options).run();
  }
  const std::string shard1 = fabric::shard_results_path(manifest_path, 1, 3);
  std::string bytes = slurp(shard1);
  bytes.resize(bytes.size() - 9);
  spit(shard1, bytes);
  fabric::ShardClaim dead;
  dead.shard = 1;
  dead.shard_count = 3;
  dead.worker = "victim";
  dead.claimed_at = dead.heartbeat_at = fabric::wall_clock_seconds() - 7200;
  const std::string claim1 = fabric::shard_claim_path(manifest_path, 1, 3);
  ASSERT_TRUE(fabric::try_acquire_claim(claim1, dead));

  // Pass 2, fresh-enough lease: the claim is within 7200+epsilon but stale
  // beyond 3600 — released; no merge yet (shard 1 incomplete).
  statuses = coordinator.pass();
  EXPECT_EQ(statuses[0].shards_complete, 2u);
  EXPECT_EQ(statuses[0].shards_reassigned, 1u);
  EXPECT_FALSE(fabric::claim_exists(claim1));
  EXPECT_FALSE(statuses[0].merged);
  EXPECT_FALSE(fs::exists(fabric::merged_results_path(manifest_path)));

  // A replacement worker resumes the shard: the truncated record's cell
  // reruns with its manifest-derived seed.
  fabric::Worker::Options rescue_options;
  rescue_options.worker_id = "rescuer";
  const fabric::Worker::Outcome rescue =
      fabric::Worker(manifest_path, 1, 3, rescue_options).run();
  EXPECT_EQ(rescue.resumed, 1u);  // 2 checkpointed - 1 truncated
  EXPECT_TRUE(rescue.shard_complete);

  // Pass 3: everything complete — merged, byte-identical.
  statuses = coordinator.pass();
  EXPECT_EQ(statuses[0].shards_complete, 3u);
  EXPECT_EQ(statuses[0].cells_done, 16u);
  EXPECT_TRUE(statuses[0].merged);
  EXPECT_EQ(slurp(fabric::merged_results_path(manifest_path)),
            slurp(dir / "single.jsonl"));

  // Pass 4 is a stable no-op.
  statuses = coordinator.pass();
  EXPECT_EQ(statuses[0].shards_reassigned, 0u);
  EXPECT_TRUE(statuses[0].merged);
}

TEST(Fabric, CoordinatorLeavesFreshClaimsAlone) {
  const fs::path dir = test_dir();
  const std::string manifest_path =
      write_spool_manifest(dir, small_manifest());

  fabric::Coordinator::Options options;
  options.shard_count = 2;
  options.lease_seconds = 3600;
  fabric::Coordinator coordinator(dir.string(), options);
  coordinator.pass();

  fabric::ShardClaim live;
  live.shard = 0;
  live.shard_count = 2;
  live.worker = "alive";
  live.claimed_at = live.heartbeat_at = fabric::wall_clock_seconds();
  const std::string claim0 = fabric::shard_claim_path(manifest_path, 0, 2);
  ASSERT_TRUE(fabric::try_acquire_claim(claim0, live));

  const auto statuses = coordinator.pass();
  EXPECT_EQ(statuses[0].shards_claimed, 1u);
  EXPECT_EQ(statuses[0].shards_reassigned, 0u);
  EXPECT_TRUE(fabric::claim_exists(claim0));

  EXPECT_THROW(
      fabric::Coordinator((dir / "missing").string(), options).pass(),
      std::runtime_error);
  EXPECT_THROW(fabric::Coordinator(dir.string(),
                                   fabric::Coordinator::Options{0, 60, {}}),
               std::invalid_argument);
}

}  // namespace
