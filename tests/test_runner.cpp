// Tests for the parallel scenario runner: the determinism contract (thread
// count must not affect any output bit), edge cases (empty batch, single
// scenario), seed derivation, and exception propagation out of the pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "runner/scenario_runner.h"

namespace {

using namespace econcast;
using runner::BatchResult;
using runner::RunnerOptions;
using runner::Scenario;
using runner::ScenarioRunner;

Scenario small_scenario(std::size_t n, model::Mode mode, double sigma) {
  Scenario s;
  s.name = "clique";
  s.nodes = model::homogeneous(n, 10.0, 500.0, 500.0);
  s.topology = model::Topology::clique(n);
  s.config.mode = mode;
  s.config.sigma = sigma;
  s.config.duration = 2e4;
  s.config.warmup = 1e3;
  return s;
}

std::vector<Scenario> mixed_batch() {
  std::vector<Scenario> batch;
  batch.push_back(small_scenario(4, model::Mode::kGroupput, 0.5));
  batch.push_back(small_scenario(5, model::Mode::kAnyput, 0.5));
  batch.push_back(small_scenario(3, model::Mode::kGroupput, 0.25));
  batch.push_back(small_scenario(6, model::Mode::kAnyput, 0.75));
  Scenario grid;
  grid.name = "grid";
  grid.nodes = model::homogeneous(6, 10.0, 500.0, 500.0);
  grid.topology = model::Topology::grid(2, 3);
  grid.config.sigma = 0.5;
  grid.config.duration = 2e4;
  batch.push_back(grid);
  batch.push_back(small_scenario(4, model::Mode::kAnyput, 0.4));
  return batch;
}

void expect_bit_identical(const proto::SimResult& a, const proto::SimResult& b) {
  EXPECT_EQ(a.groupput, b.groupput);
  EXPECT_EQ(a.anyput, b.anyput);
  EXPECT_EQ(a.measured_window, b.measured_window);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_received, b.packets_received);
  EXPECT_EQ(a.bursts, b.bursts);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.avg_power, b.avg_power);
  EXPECT_EQ(a.listen_fraction, b.listen_fraction);
  EXPECT_EQ(a.transmit_fraction, b.transmit_fraction);
  EXPECT_EQ(a.final_eta, b.final_eta);
  EXPECT_EQ(a.burst_lengths.count(), b.burst_lengths.count());
  EXPECT_EQ(a.burst_lengths.mean(), b.burst_lengths.mean());
  EXPECT_EQ(a.latencies.samples(), b.latencies.samples());
}

// ------------------------------------------------------------ derive_seed --

TEST(DeriveSeed, DeterministicAndDistinct) {
  EXPECT_EQ(runner::derive_seed(7, 0), runner::derive_seed(7, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(runner::derive_seed(7, i));
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_NE(runner::derive_seed(7, 0), runner::derive_seed(8, 0));
}

// ------------------------------------------------------------- edge cases --

TEST(ScenarioRunner, EmptyBatch) {
  ScenarioRunner r(RunnerOptions{4, 1, true});
  const BatchResult out = r.run({});
  EXPECT_TRUE(out.results.empty());
  EXPECT_EQ(out.summary.groupput.count(), 0u);
  EXPECT_EQ(out.summary.groupput.mean(), 0.0);
}

TEST(ScenarioRunner, SingleScenarioMatchesDirectRun) {
  const std::vector<Scenario> batch{small_scenario(4, model::Mode::kGroupput, 0.5)};
  ScenarioRunner r(RunnerOptions{4, 99, true});
  const BatchResult out = r.run(batch);
  ASSERT_EQ(out.results.size(), 1u);

  proto::SimConfig config = batch[0].config;
  config.seed = runner::derive_seed(99, 0);
  proto::Simulation direct(batch[0].nodes, batch[0].topology, config);
  expect_bit_identical(out.results[0], direct.run());
  EXPECT_EQ(out.summary.groupput.count(), 1u);
  EXPECT_EQ(out.summary.groupput.mean(), out.results[0].groupput);
}

TEST(ScenarioRunner, ReseedOffUsesScenarioSeed) {
  std::vector<Scenario> batch{small_scenario(4, model::Mode::kGroupput, 0.5)};
  batch[0].config.seed = 12345;
  ScenarioRunner r(RunnerOptions{2, 99, /*reseed=*/false});
  const BatchResult out = r.run(batch);

  proto::Simulation direct(batch[0].nodes, batch[0].topology, batch[0].config);
  expect_bit_identical(out.results[0], direct.run());
}

// ------------------------------------------------------------ determinism --

TEST(ScenarioRunner, ThreadCountDoesNotChangeResults) {
  const std::vector<Scenario> batch = mixed_batch();
  const BatchResult serial = ScenarioRunner(RunnerOptions{1, 7, true}).run(batch);
  const BatchResult parallel4 = ScenarioRunner(RunnerOptions{4, 7, true}).run(batch);

  ASSERT_EQ(serial.results.size(), batch.size());
  ASSERT_EQ(parallel4.results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(i);
    expect_bit_identical(serial.results[i], parallel4.results[i]);
  }
  // Aggregates are accumulated in index order, so they must match to the bit.
  EXPECT_EQ(serial.summary.groupput.mean(), parallel4.summary.groupput.mean());
  EXPECT_EQ(serial.summary.groupput.stddev(), parallel4.summary.groupput.stddev());
  EXPECT_EQ(serial.summary.anyput.mean(), parallel4.summary.anyput.mean());
  EXPECT_EQ(serial.summary.burst_length.mean(),
            parallel4.summary.burst_length.mean());
  EXPECT_EQ(serial.summary.node_power.mean(), parallel4.summary.node_power.mean());
  EXPECT_EQ(serial.summary.packets_received.sum(),
            parallel4.summary.packets_received.sum());
}

TEST(ScenarioRunner, MoreThreadsThanScenarios) {
  const std::vector<Scenario> batch{small_scenario(3, model::Mode::kAnyput, 0.5),
                                    small_scenario(4, model::Mode::kAnyput, 0.5)};
  const BatchResult a = ScenarioRunner(RunnerOptions{16, 3, true}).run(batch);
  const BatchResult b = ScenarioRunner(RunnerOptions{1, 3, true}).run(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(i);
    expect_bit_identical(a.results[i], b.results[i]);
  }
}

// -------------------------------------------------------------- exceptions --

TEST(ScenarioRunner, ScenarioFailurePropagates) {
  std::vector<Scenario> batch = mixed_batch();
  batch[3].config.sigma = -1.0;  // Simulation's constructor rejects this
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE(threads);
    ScenarioRunner r(RunnerOptions{threads, 7, true});
    EXPECT_THROW(r.run(batch), std::invalid_argument);
  }
}

TEST(ScenarioRunner, ForEachPropagatesFirstException) {
  ScenarioRunner r(RunnerOptions{4, 1, true});
  std::atomic<int> calls{0};
  EXPECT_THROW(
      r.for_each(100,
                 [&](std::size_t i) {
                   calls.fetch_add(1);
                   if (i == 13) throw std::runtime_error("boom");
                 }),
      std::runtime_error);
  // Workers stop early once a failure is flagged; at minimum the failing
  // index ran, and no more than the full batch.
  EXPECT_GE(calls.load(), 1);
  EXPECT_LE(calls.load(), 100);
}

TEST(ScenarioRunner, ForEachCoversAllIndicesOnce) {
  ScenarioRunner r(RunnerOptions{4, 1, true});
  std::vector<int> hits(257, 0);
  r.for_each(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
  for (const int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
