// Tests for the parallel scenario runner: the determinism contract (thread
// count must not affect any output bit, including for batches that mix
// protocols), batch validation (topology/node-count mismatch, unknown
// protocol), edge cases (empty batch, single scenario), seed derivation, and
// exception propagation out of the pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "runner/scenario_runner.h"

namespace {

using namespace econcast;
using runner::BatchResult;
using runner::RunnerOptions;
using runner::Scenario;
using runner::ScenarioRunner;

Scenario small_scenario(std::size_t n, model::Mode mode, double sigma) {
  proto::SimConfig cfg;
  cfg.mode = mode;
  cfg.sigma = sigma;
  cfg.duration = 2e4;
  cfg.warmup = 1e3;
  return runner::econcast_scenario("clique",
                                   model::homogeneous(n, 10.0, 500.0, 500.0),
                                   model::Topology::clique(n), cfg);
}

std::vector<Scenario> mixed_batch() {
  std::vector<Scenario> batch;
  batch.push_back(small_scenario(4, model::Mode::kGroupput, 0.5));
  batch.push_back(small_scenario(5, model::Mode::kAnyput, 0.5));
  batch.push_back(small_scenario(3, model::Mode::kGroupput, 0.25));
  batch.push_back(small_scenario(6, model::Mode::kAnyput, 0.75));
  proto::SimConfig grid_cfg;
  grid_cfg.sigma = 0.5;
  grid_cfg.duration = 2e4;
  batch.push_back(runner::econcast_scenario(
      "grid", model::homogeneous(6, 10.0, 500.0, 500.0),
      model::Topology::grid(2, 3), grid_cfg));
  batch.push_back(small_scenario(4, model::Mode::kAnyput, 0.4));
  return batch;
}

/// A batch mixing four registry protocols — the paper's comparison setting
/// (EconCast vs Panda vs Birthday under identical (N, ρ, L, X)).
std::vector<Scenario> mixed_protocol_batch() {
  std::vector<Scenario> batch;
  const auto nodes = model::homogeneous(5, 10.0, 500.0, 500.0);
  const auto topo = model::Topology::clique(5);

  batch.push_back(small_scenario(5, model::Mode::kGroupput, 0.5));

  protocol::PandaParams panda;
  panda.simulate = true;
  panda.duration = 5e4;
  batch.push_back(Scenario{"panda", nodes, topo, protocol::panda_spec(panda)});

  protocol::BirthdayParams birthday;
  birthday.simulate = true;
  birthday.slots = 50000;
  batch.push_back(
      Scenario{"birthday", nodes, topo, protocol::birthday_spec(birthday)});

  batch.push_back(Scenario{"p4", nodes, topo,
                           protocol::p4_spec(model::Mode::kGroupput, 0.5)});
  batch.push_back(small_scenario(4, model::Mode::kAnyput, 0.5));
  return batch;
}

void expect_bit_identical(const protocol::SimResult& a,
                          const protocol::SimResult& b) {
  EXPECT_EQ(a.groupput, b.groupput);
  EXPECT_EQ(a.anyput, b.anyput);
  EXPECT_EQ(a.measured_window, b.measured_window);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_received, b.packets_received);
  EXPECT_EQ(a.avg_power, b.avg_power);
  EXPECT_EQ(a.listen_fraction, b.listen_fraction);
  EXPECT_EQ(a.transmit_fraction, b.transmit_fraction);
  EXPECT_EQ(a.burst_lengths.count(), b.burst_lengths.count());
  EXPECT_EQ(a.burst_lengths.mean(), b.burst_lengths.mean());
  EXPECT_EQ(a.latencies.samples(), b.latencies.samples());
  EXPECT_EQ(a.extras, b.extras);
}

void expect_summary_bit_identical(const runner::BatchSummary& a,
                                  const runner::BatchSummary& b) {
  EXPECT_EQ(a.groupput.mean(), b.groupput.mean());
  EXPECT_EQ(a.groupput.stddev(), b.groupput.stddev());
  EXPECT_EQ(a.anyput.mean(), b.anyput.mean());
  EXPECT_EQ(a.burst_length.mean(), b.burst_length.mean());
  EXPECT_EQ(a.node_power.mean(), b.node_power.mean());
  EXPECT_EQ(a.packets_received.sum(), b.packets_received.sum());
}

// ------------------------------------------------------------ derive_seed --

TEST(DeriveSeed, DeterministicAndDistinct) {
  EXPECT_EQ(runner::derive_seed(7, 0), runner::derive_seed(7, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(runner::derive_seed(7, i));
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_NE(runner::derive_seed(7, 0), runner::derive_seed(8, 0));
}

// ------------------------------------------------------------- edge cases --

TEST(ScenarioRunner, EmptyBatch) {
  ScenarioRunner r(RunnerOptions{4, 1, true});
  const BatchResult out = r.run({});
  EXPECT_TRUE(out.results.empty());
  EXPECT_EQ(out.summary.groupput.count(), 0u);
  EXPECT_EQ(out.summary.groupput.mean(), 0.0);
}

TEST(ScenarioRunner, SingleScenarioMatchesDirectRun) {
  const std::vector<Scenario> batch{small_scenario(4, model::Mode::kGroupput, 0.5)};
  ScenarioRunner r(RunnerOptions{4, 99, true});
  const BatchResult out = r.run(batch);
  ASSERT_EQ(out.results.size(), 1u);

  proto::SimConfig config =
      std::get<protocol::EconCastParams>(batch[0].protocol.params).config;
  config.seed = runner::derive_seed(99, 0);
  proto::Simulation direct(batch[0].nodes, batch[0].topology, config);
  const proto::SimResult expected = direct.run();
  EXPECT_EQ(out.results[0].groupput, expected.groupput);
  EXPECT_EQ(out.results[0].anyput, expected.anyput);
  EXPECT_EQ(out.results[0].avg_power, expected.avg_power);
  EXPECT_EQ(out.results[0].packets_received, expected.packets_received);
  EXPECT_EQ(out.results[0].latencies.samples(), expected.latencies.samples());
  EXPECT_EQ(out.summary.groupput.count(), 1u);
  EXPECT_EQ(out.summary.groupput.mean(), out.results[0].groupput);
}

TEST(ScenarioRunner, ReseedOffUsesScenarioSeed) {
  std::vector<Scenario> batch{small_scenario(4, model::Mode::kGroupput, 0.5)};
  // Mutating config.seed alone must be honored (effective_seed makes the
  // embedded config authoritative, like a direct proto::Simulation run) —
  // the spec-level seed is deliberately left stale.
  auto& params = std::get<protocol::EconCastParams>(batch[0].protocol.params);
  params.config.seed = 12345;
  ASSERT_NE(batch[0].protocol.seed, 12345u);
  ScenarioRunner r(RunnerOptions{2, 99, /*reseed=*/false});
  const BatchResult out = r.run(batch);

  proto::Simulation direct(batch[0].nodes, batch[0].topology, params.config);
  EXPECT_EQ(out.results[0].groupput, direct.run().groupput);
}

// ------------------------------------------------------- batch validation --

TEST(ScenarioRunner, RejectsTopologyNodeCountMismatch) {
  std::vector<Scenario> batch = mixed_batch();
  batch[2].topology = model::Topology::clique(5);  // nodes.size() == 3
  ScenarioRunner r(RunnerOptions{2, 1, true});
  try {
    r.run(batch);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("index 2"), std::string::npos) << message;
    EXPECT_NE(message.find("3 nodes"), std::string::npos) << message;
    EXPECT_NE(message.find("size 5"), std::string::npos) << message;
  }
}

TEST(ScenarioRunner, RejectsUnknownProtocol) {
  std::vector<Scenario> batch = mixed_batch();
  batch[1].protocol.name = "carrier-pigeon";
  ScenarioRunner r(RunnerOptions{2, 1, true});
  EXPECT_THROW(r.run(batch), std::invalid_argument);
}

TEST(ScenarioRunner, AttributesWorkerSideRequirementFailures) {
  // A size-matched non-clique slips past upfront validation; Panda rejects
  // it at make_sim time inside a worker — the rethrown error must still
  // name the scenario and its batch index.
  std::vector<Scenario> batch = mixed_batch();
  batch.push_back(Scenario{"panda-on-a-line",
                           model::homogeneous(4, 10.0, 500.0, 500.0),
                           model::Topology::line(4), protocol::panda_spec()});
  ScenarioRunner r(RunnerOptions{2, 1, true});
  try {
    r.run(batch);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("panda-on-a-line"), std::string::npos) << message;
    EXPECT_NE(message.find("index 6"), std::string::npos) << message;
    EXPECT_NE(message.find("clique"), std::string::npos) << message;
  }
}

TEST(ScenarioRunner, RejectsWrongParamsTypeUpfrontWithIndex) {
  std::vector<Scenario> batch = mixed_batch();
  batch[4].protocol.name = "birthday";  // params stay EconCastParams
  ScenarioRunner r(RunnerOptions{2, 1, true});
  try {
    r.run(batch);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("index 4"), std::string::npos) << message;
    EXPECT_NE(message.find("birthday"), std::string::npos) << message;
  }
}

// ------------------------------------------------------------ determinism --

TEST(ScenarioRunner, ThreadCountDoesNotChangeResults) {
  const std::vector<Scenario> batch = mixed_batch();
  const BatchResult serial = ScenarioRunner(RunnerOptions{1, 7, true}).run(batch);
  const BatchResult parallel4 = ScenarioRunner(RunnerOptions{4, 7, true}).run(batch);

  ASSERT_EQ(serial.results.size(), batch.size());
  ASSERT_EQ(parallel4.results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(i);
    expect_bit_identical(serial.results[i], parallel4.results[i]);
  }
  // Aggregates are accumulated in index order, so they must match to the bit.
  expect_summary_bit_identical(serial.summary, parallel4.summary);
}

TEST(ScenarioRunner, MixedProtocolBatchBitIdenticalAcrossThreadCounts) {
  // The acceptance bar for the protocol-agnostic API: econcast + panda +
  // birthday (+ an analytic cell) in ONE batch must produce bit-identical
  // per-scenario results and BatchSummary for 1, 2 and 8 threads.
  const std::vector<Scenario> batch = mixed_protocol_batch();
  const BatchResult one = ScenarioRunner(RunnerOptions{1, 42, true}).run(batch);
  ASSERT_EQ(one.results.size(), batch.size());
  EXPECT_GT(one.results[0].groupput, 0.0);  // econcast delivered
  EXPECT_GT(one.results[1].packets_sent, 0u);  // panda transmitted
  EXPECT_GT(one.results[3].groupput, 0.0);  // p4 analytic solved

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE(threads);
    const BatchResult parallel =
        ScenarioRunner(RunnerOptions{threads, 42, true}).run(batch);
    ASSERT_EQ(parallel.results.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      SCOPED_TRACE(i);
      expect_bit_identical(one.results[i], parallel.results[i]);
    }
    expect_summary_bit_identical(one.summary, parallel.summary);
  }
}

TEST(ScenarioRunner, MoreThreadsThanScenarios) {
  const std::vector<Scenario> batch{small_scenario(3, model::Mode::kAnyput, 0.5),
                                    small_scenario(4, model::Mode::kAnyput, 0.5)};
  const BatchResult a = ScenarioRunner(RunnerOptions{16, 3, true}).run(batch);
  const BatchResult b = ScenarioRunner(RunnerOptions{1, 3, true}).run(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    SCOPED_TRACE(i);
    expect_bit_identical(a.results[i], b.results[i]);
  }
}

// -------------------------------------------------------------- exceptions --

TEST(ScenarioRunner, ScenarioFailurePropagates) {
  std::vector<Scenario> batch = mixed_batch();
  // Simulation's constructor rejects this — but only once the worker builds
  // the sim, so this exercises propagation out of the pool, not the upfront
  // batch validation.
  std::get<protocol::EconCastParams>(batch[3].protocol.params).config.sigma =
      -1.0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE(threads);
    ScenarioRunner r(RunnerOptions{threads, 7, true});
    EXPECT_THROW(r.run(batch), std::invalid_argument);
  }
}

TEST(ScenarioRunner, ForEachPropagatesFirstException) {
  ScenarioRunner r(RunnerOptions{4, 1, true});
  std::atomic<int> calls{0};
  EXPECT_THROW(
      r.for_each(100,
                 [&](std::size_t i) {
                   calls.fetch_add(1);
                   if (i == 13) throw std::runtime_error("boom");
                 }),
      std::runtime_error);
  // Workers stop early once a failure is flagged; at minimum the failing
  // index ran, and no more than the full batch.
  EXPECT_GE(calls.load(), 1);
  EXPECT_LE(calls.load(), 100);
}

TEST(ScenarioRunner, ForEachCoversAllIndicesOnce) {
  ScenarioRunner r(RunnerOptions{4, 1, true});
  std::vector<int> hits(257, 0);
  r.for_each(hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
  for (const int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
