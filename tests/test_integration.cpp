// Cross-module integration tests: the end-to-end relationships the paper's
// evaluation rests on — oracle >= T^σ >= baselines at the operating points,
// the Lemma 1 schedule realizes the LP value, the 6x-17x headline holds, and
// the whole pipeline is reproducible from seeds.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/birthday.h"
#include "baselines/panda.h"
#include "baselines/searchlight.h"
#include "econcast/simulation.h"
#include "gibbs/burstiness.h"
#include "gibbs/exact.h"
#include "gibbs/p4_solver.h"
#include "oracle/clique_oracle.h"
#include "oracle/nonclique_oracle.h"
#include "oracle/periodic_schedule.h"
#include "util/random.h"

namespace {

using namespace econcast;
using model::Mode;

model::NodeSet paper_nodes(std::size_t n = 5) {
  return model::homogeneous(n, 10.0, 500.0, 500.0);
}

TEST(EndToEnd, ThroughputOrderingAtPaperOperatingPoint) {
  // T* >= T^{0.25} >= T^{0.5} >= Panda ~ Birthday at N=5, ρ=10µW, L=X=500µW.
  const auto nodes = paper_nodes();
  const double t_star = oracle::groupput(nodes).throughput;
  const double t_025 = gibbs::solve_p4(nodes, Mode::kGroupput, 0.25).throughput;
  const double t_05 = gibbs::solve_p4(nodes, Mode::kGroupput, 0.5).throughput;
  const double t_panda = baselines::optimize_panda(5, 10.0, 500.0, 500.0).throughput;
  const double t_bday =
      baselines::optimize_birthday(5, 10.0, 500.0, 500.0, Mode::kGroupput)
          .throughput;
  EXPECT_GT(t_star, t_025);
  EXPECT_GT(t_025, t_05);
  EXPECT_GT(t_05, t_panda);
  EXPECT_GT(t_05, t_bday);
}

TEST(EndToEnd, PaperHeadlineSixToSeventeenX) {
  // §I / §VII-C: EconCast outperforms prior art by 6x-17x under realistic
  // assumptions (vs Panda at σ = 0.5 and σ = 0.25).
  const auto nodes = paper_nodes();
  const double t_panda =
      baselines::optimize_panda(5, 10.0, 500.0, 500.0).throughput;
  const double gain_05 =
      gibbs::solve_p4(nodes, Mode::kGroupput, 0.5).throughput / t_panda;
  const double gain_025 =
      gibbs::solve_p4(nodes, Mode::kGroupput, 0.25).throughput / t_panda;
  EXPECT_NEAR(gain_05, 6.0, 1.5);
  EXPECT_NEAR(gain_025, 17.0, 3.5);
}

TEST(EndToEnd, ScheduleRealizesOracleThroughput) {
  // Lemma 1 chain: LP -> periodic schedule -> verified groupput ~= T*.
  util::Rng rng(6);
  const auto nodes = model::sample_heterogeneous(5, 100.0, rng);
  const auto sol = oracle::groupput(nodes);
  const auto sched = oracle::build_periodic_schedule(nodes, sol, 5000);
  const auto check = oracle::verify_schedule(nodes, sched);
  ASSERT_TRUE(check.ok());
  EXPECT_NEAR(check.groupput, sol.throughput, 5.0 / 5000.0 + 1e-9);
}

TEST(EndToEnd, SimulationNeverBeatsOracle) {
  const auto nodes = paper_nodes();
  proto::SimConfig cfg;
  cfg.sigma = 0.25;
  cfg.duration = 2e6;
  cfg.warmup = 5e5;
  cfg.seed = 2;
  proto::Simulation sim(nodes, model::Topology::clique(5), cfg);
  const auto r = sim.run();
  EXPECT_LE(r.groupput, oracle::groupput(nodes).throughput * 1.05);
}

TEST(EndToEnd, SimulatedBurstsTrackAnalyticAcrossSigma) {
  // Fig. 4 cross-validation at the σ values the paper simulates.
  const auto nodes = paper_nodes();
  for (const double sigma : {0.5, 0.35}) {
    const double analytic =
        gibbs::average_burst_length(nodes, Mode::kGroupput, sigma);
    const auto p4 = gibbs::solve_p4(nodes, Mode::kGroupput, sigma);
    proto::SimConfig cfg;
    cfg.sigma = sigma;
    cfg.duration = 4e6;
    cfg.warmup = 2e5;
    cfg.seed = 8;
    cfg.adapt_multiplier = false;
    cfg.eta_init = p4.eta;
    proto::Simulation sim(nodes, model::Topology::clique(5), cfg);
    const auto r = sim.run();
    EXPECT_NEAR(r.burst_lengths.mean(), analytic, 0.25 * analytic)
        << "sigma=" << sigma;
  }
}

TEST(EndToEnd, GridSimulationStaysWithinOracleBounds) {
  const std::size_t k = 4;
  const auto nodes = paper_nodes(k * k);
  const auto topo = model::Topology::grid(k, k);
  const auto bounds = oracle::nonclique_groupput(nodes, topo);
  ASSERT_TRUE(bounds.tight(1e-6));  // paper's Fig. 6 observation
  proto::SimConfig cfg;
  cfg.sigma = 0.5;
  cfg.duration = 2e6;
  cfg.warmup = 1e6;
  cfg.seed = 9;
  proto::Simulation sim(nodes, topo, cfg);
  const auto r = sim.run();
  EXPECT_LT(r.groupput, bounds.upper.throughput);
  EXPECT_GT(r.groupput, 0.0);
}

TEST(EndToEnd, SearchlightWorstCaseDominatesEconCastP99) {
  // Fig. 5(a): the 99th-percentile EconCast latency stays below
  // Searchlight's 125 s pairwise worst case (times in packet-ms).
  const auto nodes = paper_nodes(10);
  proto::SimConfig cfg;
  cfg.sigma = 0.5;
  cfg.duration = 6e6;  // 6000 s at 1 ms packets
  cfg.warmup = 1e6;
  cfg.seed = 10;
  proto::Simulation sim(nodes, model::Topology::clique(10), cfg);
  auto r = sim.run();
  ASSERT_GT(r.latencies.count(), 100u);
  const double p99_seconds = r.latencies.percentile(0.99) * 1e-3;
  baselines::SearchlightConfig sc;
  sc.budget = 10.0;
  sc.listen_power = 500.0;
  const double worst = baselines::analyze_searchlight(sc).worst_latency_seconds;
  EXPECT_LT(p99_seconds, worst);
}

TEST(EndToEnd, HeterogeneousPipelineAgreesAcrossSolvers) {
  // Fig. 2 pipeline: sample -> oracle LP -> P4 (accelerated) -> ratio in
  // (0, 1]; Algorithm 1 agrees with the accelerated solver.
  util::Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    const auto nodes = model::sample_heterogeneous(4, 150.0, rng);
    for (const Mode mode : {Mode::kGroupput, Mode::kAnyput}) {
      const double t_star = oracle::solve(nodes, mode).throughput;
      const auto p4 = gibbs::solve_p4(nodes, mode, 0.25);
      ASSERT_TRUE(p4.converged);
      const double ratio = p4.throughput / t_star;
      EXPECT_GT(ratio, 0.0);
      EXPECT_LE(ratio, 1.0 + 1e-9);
    }
  }
}

TEST(EndToEnd, AnyputRatioExceedsGroupputRatioWhenHomogeneous) {
  // §VII-B: for homogeneous networks the anyput ratio is slightly higher
  // (existence is easier to detect than counts).
  const auto nodes = paper_nodes();
  const double rg = gibbs::solve_p4(nodes, Mode::kGroupput, 0.25).throughput /
                    oracle::groupput(nodes).throughput;
  const double ra = gibbs::solve_p4(nodes, Mode::kAnyput, 0.25).throughput /
                    oracle::anyput(nodes).throughput;
  EXPECT_GT(ra, rg);
}

TEST(DetailedBalance, RateLawsReverseAgainstGibbsWeights) {
  // Appendix C, cases 1-4: for every protocol transition w -> w' the rates
  // of eq. (18) satisfy π_w r(w,w') = π_w' r(w',w) against the Gibbs law
  // (19). This ties econcast::RateController to gibbs::ExactGibbs with no
  // simulation in between. Checked for both variants and both modes on
  // every state of a 4-node clique.
  const double sigma = 0.37;
  const double eta = 0.0042;
  const double kL = 520.0, kX = 480.0;
  const auto nodes = model::homogeneous(4, 10.0, kL, kX);
  const std::vector<double> eta_vec(4, eta);

  for (const model::Mode mode : {model::Mode::kGroupput, model::Mode::kAnyput}) {
    for (const proto::Variant variant :
         {proto::Variant::kCapture, proto::Variant::kNonCapture}) {
      const gibbs::ExactGibbs g(nodes, mode, sigma);
      const proto::RateController rc(kL, kX, sigma, variant, mode);
      model::for_each_state(4, [&](const model::NetState& w) {
        const double logw = g.log_weight(w, eta_vec);
        for (int i = 0; i < 4; ++i) {
          const std::uint64_t bit = 1ULL << i;
          // Case 1/2: sleep <-> listen, only with an idle medium.
          if (!w.has_transmitter() && !(w.listeners & bit)) {
            const model::NetState w2{-1, w.listeners | bit};
            const double fwd = rc.sleep_to_listen(eta, true);
            const double bwd = rc.listen_to_sleep(true);
            EXPECT_NEAR(logw + std::log(fwd),
                        g.log_weight(w2, eta_vec) + std::log(bwd), 1e-9);
          }
          // Case 3/4: listen <-> transmit.
          if (!w.has_transmitter() && (w.listeners & bit)) {
            const model::NetState w2{i, w.listeners & ~bit};
            // ĉ seen in the transmit state: the remaining listeners.
            const double c_after =
                static_cast<double>(w2.listener_count());
            const double fwd = rc.listen_to_transmit(eta, c_after, true);
            const double bwd = rc.transmit_to_listen(c_after);
            EXPECT_NEAR(logw + std::log(fwd),
                        g.log_weight(w2, eta_vec) + std::log(bwd), 1e-9)
                << model::to_string(mode) << " " << proto::to_string(variant);
          }
        }
      });
    }
  }
}

TEST(EndToEnd, ThroughputUnitsConsistentAcrossScales) {
  // The µW-scale and mW-scale systems produce identical dimensionless
  // results throughout the stack (oracle, P4, Panda).
  const auto micro = model::homogeneous(5, 10.0, 500.0, 500.0);
  const auto milli = model::homogeneous(5, 0.01, 0.5, 0.5);
  EXPECT_NEAR(oracle::groupput(micro).throughput,
              oracle::groupput(milli).throughput, 1e-9);
  EXPECT_NEAR(gibbs::solve_p4(micro, Mode::kGroupput, 0.5).throughput,
              gibbs::solve_p4(milli, Mode::kGroupput, 0.5).throughput, 1e-9);
  EXPECT_NEAR(baselines::optimize_panda(5, 10.0, 500.0, 500.0).throughput,
              baselines::optimize_panda(5, 0.01, 0.5, 0.5).throughput, 1e-6);
}

}  // namespace
