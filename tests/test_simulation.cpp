// Integration tests of the EconCast simulation: Lemma 2 (empirical state
// occupancy matches the Gibbs distribution under frozen η), Theorem 1 in
// practice (adaptive η converges and the measured throughput matches T^σ),
// budget adherence, both variants, both modes, and non-clique behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "econcast/simulation.h"
#include "gibbs/exact.h"
#include "gibbs/p4_solver.h"
#include "oracle/nonclique_oracle.h"

namespace {

using namespace econcast;
using namespace econcast::proto;
using model::Mode;

model::NodeSet paper_nodes(std::size_t n = 5) {
  return model::homogeneous(n, 10.0, 500.0, 500.0);
}

SimConfig base_config(double sigma, double duration, std::uint64_t seed) {
  SimConfig cfg;
  cfg.sigma = sigma;
  cfg.duration = duration;
  cfg.warmup = duration * 0.2;
  cfg.seed = seed;
  return cfg;
}

TEST(SimulationLemma2, FrozenEtaOccupancyMatchesGibbs) {
  // Freeze η at η* and compare the empirical network-state distribution with
  // the stationary law (19) — the Lemma 2 cross-check.
  const auto nodes = paper_nodes(4);
  const double sigma = 0.5;
  const auto p4 = gibbs::solve_p4(nodes, Mode::kGroupput, sigma);
  SimConfig cfg = base_config(sigma, 4e6, 1234);
  cfg.adapt_multiplier = false;
  cfg.eta_init = p4.eta;
  cfg.track_state_occupancy = true;
  Simulation sim(nodes, model::Topology::clique(4), cfg);
  const SimResult r = sim.run();

  gibbs::ExactGibbs g(nodes, Mode::kGroupput, sigma);
  const auto pi = g.distribution(p4.eta);
  double l1 = 0.0;
  for (std::size_t k = 0; k < pi.size(); ++k)
    l1 += std::abs(pi[k] - r.state_occupancy[k]);
  EXPECT_LT(l1, 0.02) << "total variation too large";
}

TEST(SimulationLemma2, FrozenEtaThroughputMatchesGibbsExpectation) {
  const auto nodes = paper_nodes(5);
  const auto p4 = gibbs::solve_p4(nodes, Mode::kGroupput, 0.5);
  SimConfig cfg = base_config(0.5, 6e6, 77);
  cfg.adapt_multiplier = false;
  cfg.eta_init = p4.eta;
  Simulation sim(nodes, model::Topology::clique(5), cfg);
  const SimResult r = sim.run();
  EXPECT_NEAR(r.groupput, p4.throughput, 0.12 * p4.throughput);
  EXPECT_NEAR(r.listen_fraction[0], p4.alpha[0], 0.08 * p4.alpha[0]);
  EXPECT_NEAR(r.transmit_fraction[0], p4.beta[0], 0.08 * p4.beta[0]);
}

TEST(SimulationAdaptive, ConvergesToAnalyticThroughput) {
  // §VII-A: the simulated T̃^σ matches T^σ for σ = 0.5.
  const auto nodes = paper_nodes(5);
  const auto p4 = gibbs::solve_p4(nodes, Mode::kGroupput, 0.5);
  SimConfig cfg = base_config(0.5, 3e6, 42);
  cfg.warmup = 1e6;
  Simulation sim(nodes, model::Topology::clique(5), cfg);
  const SimResult r = sim.run();
  EXPECT_NEAR(r.groupput, p4.throughput, 0.15 * p4.throughput);
  // The adapted multiplier lands near η*.
  EXPECT_NEAR(r.final_eta[0], p4.eta[0], 0.5 * p4.eta[0]);
}

TEST(SimulationAdaptive, PowerWithinBudget) {
  const auto nodes = paper_nodes(5);
  SimConfig cfg = base_config(0.5, 3e6, 7);
  cfg.warmup = 1e6;
  Simulation sim(nodes, model::Topology::clique(5), cfg);
  const SimResult r = sim.run();
  for (const double p : r.avg_power) EXPECT_NEAR(p, 10.0, 0.8);
}

TEST(SimulationAdaptive, AnyputModeMatchesAnalytic) {
  const auto nodes = paper_nodes(5);
  const auto p4 = gibbs::solve_p4(nodes, Mode::kAnyput, 0.5);
  SimConfig cfg = base_config(0.5, 3e6, 99);
  cfg.mode = Mode::kAnyput;
  cfg.warmup = 1e6;
  Simulation sim(nodes, model::Topology::clique(5), cfg);
  const SimResult r = sim.run();
  EXPECT_NEAR(r.anyput, p4.throughput, 0.15 * p4.throughput);
}

TEST(SimulationAdaptive, HeterogeneousNodesMeetIndividualBudgets) {
  // Table II-style heterogeneous budgets; every node must consume at its own
  // rate without knowing the others' parameters.
  model::NodeSet nodes{{5.0, 500.0, 500.0},
                       {10.0, 500.0, 500.0},
                       {50.0, 500.0, 500.0},
                       {100.0, 500.0, 500.0}};
  SimConfig cfg = base_config(0.5, 4e6, 5);
  cfg.warmup = 2e6;
  Simulation sim(nodes, model::Topology::clique(4), cfg);
  const SimResult r = sim.run();
  for (std::size_t i = 0; i < nodes.size(); ++i)
    EXPECT_NEAR(r.avg_power[i], nodes[i].budget, 0.15 * nodes[i].budget)
        << "node " << i;
}

TEST(SimulationBurstiness, CaptureBurstsMatchAnalyticAtHalfSigma) {
  const auto nodes = paper_nodes(5);
  const auto p4 = gibbs::solve_p4(nodes, Mode::kGroupput, 0.5);
  SimConfig cfg = base_config(0.5, 4e6, 3);
  cfg.adapt_multiplier = false;
  cfg.eta_init = p4.eta;
  Simulation sim(nodes, model::Topology::clique(5), cfg);
  const SimResult r = sim.run();
  // Eq. (34) at σ = 0.5, N = 5 gives ~8 packets per received burst.
  EXPECT_NEAR(r.burst_lengths.mean(), 8.0, 1.5);
}

TEST(SimulationBurstiness, AnyputBurstIndependentOfN) {
  // Eq. (35): B_a = e^{1/σ} for any N.
  for (const std::size_t n : {5u, 10u}) {
    const auto nodes = paper_nodes(n);
    const auto p4 = gibbs::solve_p4(nodes, Mode::kAnyput, 0.5);
    SimConfig cfg = base_config(0.5, 3e6, 17 + n);
    cfg.mode = Mode::kAnyput;
    cfg.adapt_multiplier = false;
    cfg.eta_init = p4.eta;
    Simulation sim(nodes, model::Topology::clique(n), cfg);
    const SimResult r = sim.run();
    EXPECT_NEAR(r.burst_lengths.mean(), std::exp(2.0), 1.0) << "N=" << n;
  }
}

TEST(SimulationVariants, NonCaptureMatchesCaptureThroughput) {
  // Lemma 2 holds for both variants: same stationary law, same throughput.
  const auto nodes = paper_nodes(5);
  const auto p4 = gibbs::solve_p4(nodes, Mode::kGroupput, 0.5);
  SimConfig cfg = base_config(0.5, 5e6, 11);
  cfg.variant = Variant::kNonCapture;
  cfg.adapt_multiplier = false;
  cfg.eta_init = p4.eta;
  Simulation sim(nodes, model::Topology::clique(5), cfg);
  const SimResult r = sim.run();
  EXPECT_NEAR(r.groupput, p4.throughput, 0.15 * p4.throughput);
  // NC releases after every packet: bursts are single packets.
  EXPECT_NEAR(r.burst_lengths.mean(), 1.0, 1e-9);
}

TEST(SimulationEstimators, DegradedEstimatesReduceButKeepThroughput) {
  // §V-C: estimates need not be accurate; poor estimates reduce throughput.
  // Adaptation on: with lossy estimates the protocol re-invests the energy
  // it saves on aborted bursts, so throughput degrades but stays useful.
  // The energy guard keeps the adaptation transient physical (without it, a
  // burst started at η ≈ 0 with all nodes listening can hold the channel for
  // e^{16} packet-times at σ = 0.25).
  const auto nodes = paper_nodes(5);
  SimConfig perfect_cfg = base_config(0.25, 3e6, 23);
  perfect_cfg.warmup = 1e6;
  perfect_cfg.energy_guard = true;
  perfect_cfg.initial_energy = 5e5;
  SimConfig lossy_cfg = perfect_cfg;
  lossy_cfg.estimator.kind = EstimatorKind::kBinomialThinning;
  lossy_cfg.estimator.detect_prob = 0.5;
  const SimResult perfect =
      Simulation(nodes, model::Topology::clique(5), perfect_cfg).run();
  const SimResult lossy =
      Simulation(nodes, model::Topology::clique(5), lossy_cfg).run();
  EXPECT_GT(lossy.groupput, 0.1 * perfect.groupput);
  EXPECT_LT(lossy.groupput, perfect.groupput);
}

TEST(SimulationGuard, BoundsGiantCapturesAtSmallSigma) {
  // Adaptive start from η = 0 at σ = 0.25: without the guard a single early
  // burst can capture the listeners for ~e^{16} packet-times; with the guard
  // listeners brown out, the burst dies, and the run produces many bursts.
  const auto nodes = paper_nodes(5);
  SimConfig cfg = base_config(0.25, 1e6, 23);  // the seed that triggers it
  cfg.energy_guard = true;
  cfg.initial_energy = 5e5;  // receivers can pay for ~1000 listen-packets
  Simulation sim(nodes, model::Topology::clique(5), cfg);
  const SimResult r = sim.run();
  EXPECT_GT(r.bursts, 100u);
  EXPECT_LT(r.burst_lengths.max(), 2e4);
}

TEST(SimulationGuard, StorageNeverFarBelowFloor) {
  const auto nodes = paper_nodes(5);
  SimConfig cfg = base_config(0.5, 5e5, 3);
  cfg.energy_guard = true;
  cfg.initial_energy = 1000.0;
  Simulation sim(nodes, model::Topology::clique(5), cfg);
  const SimResult r = sim.run();
  // With the guard, a node can overdraw by at most ~one packet of transmit
  // beyond the floor (the affordability check is at packet granularity).
  for (const double p : r.avg_power) EXPECT_LE(p, 10.0 * 1.3);
}

TEST(SimulationNonClique, GridAchievesFractionOfOracle) {
  // Fig. 6: EconCast on a grid reaches ~10-25% of T*_nc at σ = 0.25-0.5.
  const std::size_t k = 3;
  const auto nodes = paper_nodes(k * k);
  const auto topo = model::Topology::grid(k, k);
  const auto bounds = oracle::nonclique_groupput(nodes, topo);
  SimConfig cfg = base_config(0.5, 3e6, 31);
  cfg.warmup = 1e6;
  Simulation sim(nodes, topo, cfg);
  const SimResult r = sim.run();
  const double ratio = r.groupput / bounds.lower.throughput;
  EXPECT_GT(ratio, 0.03);
  EXPECT_LT(ratio, 1.0);
}

TEST(SimulationNonClique, LineTopologyRunsAndRespectsBudgets) {
  const auto nodes = paper_nodes(4);
  SimConfig cfg = base_config(0.5, 2e6, 13);
  cfg.warmup = 1e6;
  Simulation sim(nodes, model::Topology::line(4), cfg);
  const SimResult r = sim.run();
  for (const double p : r.avg_power) EXPECT_LT(p, 13.0);
  EXPECT_GT(r.packets_sent, 0u);
}

TEST(SimulationDeterminism, SameSeedSameResult) {
  const auto nodes = paper_nodes(5);
  const SimConfig cfg = base_config(0.5, 2e5, 100);
  const SimResult a = Simulation(nodes, model::Topology::clique(5), cfg).run();
  const SimResult b = Simulation(nodes, model::Topology::clique(5), cfg).run();
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_DOUBLE_EQ(a.groupput, b.groupput);
}

TEST(SimulationDeterminism, DifferentSeedsDiffer) {
  const auto nodes = paper_nodes(5);
  SimConfig a_cfg = base_config(0.5, 2e5, 100);
  SimConfig b_cfg = base_config(0.5, 2e5, 101);
  const SimResult a = Simulation(nodes, model::Topology::clique(5), a_cfg).run();
  const SimResult b = Simulation(nodes, model::Topology::clique(5), b_cfg).run();
  EXPECT_NE(a.events_processed, b.events_processed);
}

TEST(SimulationLatency, SamplesRequireSleepAndAreNonnegative) {
  const auto nodes = paper_nodes(5);
  SimConfig cfg = base_config(0.25, 2e6, 19);
  cfg.warmup = 5e5;
  Simulation sim(nodes, model::Topology::clique(5), cfg);
  SimResult r = sim.run();
  ASSERT_GT(r.latencies.count(), 10u);
  for (const double s : r.latencies.samples()) EXPECT_GE(s, 0.0);
}

TEST(SimulationLatency, LargerNReducesLatency) {
  // §VII-D: more nodes -> each node receives more often.
  auto mean_latency = [](std::size_t n) {
    const auto nodes = paper_nodes(n);
    SimConfig cfg;
    cfg.sigma = 0.5;
    cfg.duration = 3e6;
    cfg.warmup = 5e5;
    cfg.seed = 4;
    Simulation sim(nodes, model::Topology::clique(n), cfg);
    return sim.run().latencies.mean();
  };
  EXPECT_LT(mean_latency(10), mean_latency(5));
}

TEST(SimulationConfig, Validation) {
  const auto nodes = paper_nodes(3);
  SimConfig bad_sigma;
  bad_sigma.sigma = 0.0;
  EXPECT_THROW(Simulation(nodes, model::Topology::clique(3), bad_sigma),
               std::invalid_argument);
  SimConfig bad_warmup;
  bad_warmup.duration = 10.0;
  bad_warmup.warmup = 20.0;
  EXPECT_THROW(Simulation(nodes, model::Topology::clique(3), bad_warmup),
               std::invalid_argument);
  SimConfig bad_occ;
  bad_occ.track_state_occupancy = true;
  EXPECT_THROW(Simulation(nodes, model::Topology::line(3), bad_occ),
               std::invalid_argument);
  SimConfig bad_eta;
  bad_eta.eta_init = {0.0, 0.0};  // wrong size
  EXPECT_THROW(Simulation(nodes, model::Topology::clique(3), bad_eta),
               std::invalid_argument);
  SimConfig ok;
  EXPECT_THROW(Simulation(nodes, model::Topology::clique(4), ok),
               std::invalid_argument);  // size mismatch
}

// Property sweep: protocol invariants hold for every combination of
// variant, mode, and topology shape.
struct SweepParam {
  Variant variant;
  model::Mode mode;
  int topology;  // 0 = clique, 1 = grid, 2 = ring
};

class SimulationSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SimulationSweep, ProtocolInvariants) {
  const SweepParam p = GetParam();
  const std::size_t n = p.topology == 1 ? 9 : 6;
  const auto nodes = paper_nodes(n);
  const model::Topology topo =
      p.topology == 0   ? model::Topology::clique(n)
      : p.topology == 1 ? model::Topology::grid(3, 3)
                        : model::Topology::ring(n);
  SimConfig cfg;
  cfg.variant = p.variant;
  cfg.mode = p.mode;
  cfg.sigma = 0.5;
  cfg.duration = 8e5;
  cfg.warmup = 3e5;
  cfg.seed = 1234;
  Simulation sim(nodes, topo, cfg);
  const SimResult r = sim.run();

  // Power stays near the budget; throughput is positive and bounded by the
  // structural maxima; anyput <= groupput <= degree_max * anyput.
  for (const double power : r.avg_power) EXPECT_LT(power, 10.0 * 1.5);
  EXPECT_GT(r.packets_sent, 0u);
  EXPECT_GE(r.groupput, r.anyput - 1e-12);
  EXPECT_LE(r.groupput, static_cast<double>(n - 1) * r.anyput + 1e-12);
  EXPECT_LE(r.anyput, 1.0);
  // Non-capture never extends bursts.
  if (p.variant == Variant::kNonCapture && r.bursts > 0) {
    EXPECT_DOUBLE_EQ(r.burst_lengths.max(), 1.0);
  }
  // Fractions are probabilities.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(r.listen_fraction[i], 0.0);
    EXPECT_LE(r.listen_fraction[i] + r.transmit_fraction[i], 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantModeTopology, SimulationSweep,
    ::testing::Values(
        SweepParam{Variant::kCapture, Mode::kGroupput, 0},
        SweepParam{Variant::kCapture, Mode::kGroupput, 1},
        SweepParam{Variant::kCapture, Mode::kGroupput, 2},
        SweepParam{Variant::kCapture, Mode::kAnyput, 0},
        SweepParam{Variant::kCapture, Mode::kAnyput, 1},
        SweepParam{Variant::kCapture, Mode::kAnyput, 2},
        SweepParam{Variant::kNonCapture, Mode::kGroupput, 0},
        SweepParam{Variant::kNonCapture, Mode::kGroupput, 1},
        SweepParam{Variant::kNonCapture, Mode::kGroupput, 2},
        SweepParam{Variant::kNonCapture, Mode::kAnyput, 0},
        SweepParam{Variant::kNonCapture, Mode::kAnyput, 1},
        SweepParam{Variant::kNonCapture, Mode::kAnyput, 2}));

TEST(SimulationAccounting, FractionsAndCreditsConsistent) {
  const auto nodes = paper_nodes(5);
  SimConfig cfg = base_config(0.5, 1e6, 55);
  Simulation sim(nodes, model::Topology::clique(5), cfg);
  const SimResult r = sim.run();
  // Total transmit fraction should match packets sent (unit packets).
  double beta_sum = 0.0;
  for (const double b : r.transmit_fraction) beta_sum += b;
  EXPECT_NEAR(beta_sum * r.measured_window,
              static_cast<double>(r.packets_sent), 60.0);
  // Groupput cannot exceed total listen time.
  double alpha_sum = 0.0;
  for (const double a : r.listen_fraction) alpha_sum += a;
  EXPECT_LE(r.groupput, alpha_sum + 1e-9);
  // Anyput <= groupput <= (N-1) anyput.
  EXPECT_LE(r.anyput, r.groupput + 1e-12);
  EXPECT_LE(r.groupput, 4.0 * r.anyput + 1e-12);
}

}  // namespace
