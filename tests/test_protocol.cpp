// Tests for the protocol-agnostic simulation API: registry contents and
// error handling, adapter equivalence against the direct module calls (same
// seed → bit-identical values, which is what keeps the deprecated shims and
// the registry path interchangeable), network-requirement validation, and
// the sweep-axis specialization helper.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "baselines/birthday.h"
#include "baselines/panda.h"
#include "baselines/searchlight.h"
#include "gibbs/p4_solver.h"
#include "oracle/clique_oracle.h"
#include "protocol/protocol.h"

namespace {

using namespace econcast;
using protocol::ProtocolRegistry;
using protocol::ProtocolSpec;
using protocol::SimResult;

SimResult run_spec(const ProtocolSpec& spec, const model::NodeSet& nodes,
                   const model::Topology& topology, std::uint64_t seed) {
  const auto proto = ProtocolRegistry::global().create(spec);
  return proto->make_sim(nodes, topology, seed)->run();
}

const model::NodeSet& paper_nodes() {
  static const model::NodeSet nodes =
      model::homogeneous(5, 10.0, 500.0, 500.0);
  return nodes;
}

// ---------------------------------------------------------------- registry --

TEST(ProtocolRegistry, BuiltinsRegistered) {
  const ProtocolRegistry& r = ProtocolRegistry::global();
  for (const char* name :
       {"econcast", "econcast-p4", "oracle", "panda", "birthday",
        "searchlight-bound", "econcast-testbed"}) {
    EXPECT_TRUE(r.contains(name)) << name;
  }
  EXPECT_FALSE(r.contains("carrier-pigeon"));
  EXPECT_GE(r.names().size(), 7u);
}

TEST(ProtocolRegistry, UnknownNameThrows) {
  ProtocolSpec spec;
  spec.name = "carrier-pigeon";
  EXPECT_THROW(ProtocolRegistry::global().create(spec), std::invalid_argument);
}

TEST(ProtocolRegistry, WrongParamsTypeThrows) {
  ProtocolSpec spec = protocol::panda_spec();
  spec.name = "birthday";  // birthday factory handed PandaParams
  EXPECT_THROW(ProtocolRegistry::global().create(spec), std::invalid_argument);
}

TEST(ProtocolRegistry, DuplicateAndEmptyRegistrationRejected) {
  ProtocolRegistry local;
  protocol::register_builtin_protocols(local);
  EXPECT_THROW(local.add("econcast", [](const protocol::ProtocolParams&) {
    return std::shared_ptr<const protocol::Protocol>();
  }),
               std::invalid_argument);
  EXPECT_THROW(local.add("", [](const protocol::ProtocolParams&) {
    return std::shared_ptr<const protocol::Protocol>();
  }),
               std::invalid_argument);
  EXPECT_THROW(local.add("null-factory", ProtocolRegistry::Factory{}),
               std::invalid_argument);
}

TEST(ProtocolRegistry, CustomProtocolUsableOnceRegistered) {
  class Fixed : public protocol::Protocol {
   public:
    std::string name() const override { return "fixed"; }
    std::unique_ptr<protocol::Sim> make_sim(const model::NodeSet&,
                                            const model::Topology&,
                                            std::uint64_t seed) const override {
      class FixedSim : public protocol::Sim {
       public:
        explicit FixedSim(std::uint64_t seed) : seed_(seed) {}
        SimResult run() override {
          SimResult out;
          out.groupput = static_cast<double>(seed_);
          return out;
        }
       private:
        std::uint64_t seed_;
      };
      return std::make_unique<FixedSim>(seed);
    }
  };
  ProtocolRegistry local;
  local.add("fixed", [](const protocol::ProtocolParams&) {
    return std::make_shared<Fixed>();
  });
  ProtocolSpec spec;
  spec.name = "fixed";
  const auto proto = local.create(spec);
  EXPECT_EQ(proto->make_sim(paper_nodes(), model::Topology::clique(5), 17)
                ->run()
                .groupput,
            17.0);
}

// ------------------------------------------------- adapter ≡ direct calls --

TEST(ProtocolAdapters, EconCastMatchesDirectSimulation) {
  proto::SimConfig cfg;
  cfg.sigma = 0.5;
  cfg.duration = 2e4;
  cfg.warmup = 1e3;
  const SimResult via_registry = run_spec(
      protocol::econcast_spec(cfg), paper_nodes(), model::Topology::clique(5),
      /*seed=*/321);
  cfg.seed = 321;
  proto::Simulation direct(paper_nodes(), model::Topology::clique(5), cfg);
  const proto::SimResult expected = direct.run();
  EXPECT_EQ(via_registry.groupput, expected.groupput);
  EXPECT_EQ(via_registry.anyput, expected.anyput);
  EXPECT_EQ(via_registry.avg_power, expected.avg_power);
  EXPECT_EQ(via_registry.listen_fraction, expected.listen_fraction);
  EXPECT_EQ(via_registry.packets_sent, expected.packets_sent);
  EXPECT_EQ(via_registry.packets_received, expected.packets_received);
  EXPECT_EQ(via_registry.latencies.samples(), expected.latencies.samples());
  EXPECT_EQ(via_registry.extra("events_processed"),
            static_cast<double>(expected.events_processed));
  EXPECT_EQ(via_registry.extra("bursts"),
            static_cast<double>(expected.bursts));
}

TEST(ProtocolAdapters, QueueStatsExtrasAreOptIn) {
  proto::SimConfig cfg;
  cfg.sigma = 0.5;
  cfg.duration = 5e3;

  // Default: no queue_* extras, so existing outputs stay byte-identical.
  const SimResult quiet = run_spec(protocol::econcast_spec(cfg), paper_nodes(),
                                   model::Topology::clique(5), /*seed=*/11);
  EXPECT_EQ(quiet.extras.count("queue_pushes"), 0u);
  EXPECT_EQ(quiet.extras.count("queue_stale_drops"), 0u);

  cfg.report_queue_stats = true;
  const SimResult loud = run_spec(protocol::econcast_spec(cfg), paper_nodes(),
                                  model::Topology::clique(5), /*seed=*/11);
  EXPECT_GT(loud.extra("queue_pushes"), 0.0);
  EXPECT_GT(loud.extra("queue_pops"), 0.0);
  EXPECT_GT(loud.extra("queue_peak_live"), 0.0);
  // Conservation: everything popped or pruned was pushed first.
  EXPECT_GE(loud.extra("queue_pushes"),
            loud.extra("queue_pops") + loud.extra("queue_stale_drops"));
  // The flag changes reporting, not the simulation.
  EXPECT_EQ(loud.groupput, quiet.groupput);
  EXPECT_EQ(loud.packets_sent, quiet.packets_sent);

  // Same opt-in contract for the firmware protocol.
  protocol::TestbedParams testbed;
  testbed.duration_ms = 10.0 * 60.0 * 1000.0;
  testbed.warmup_ms = 60.0 * 1000.0;
  testbed.report_queue_stats = true;
  const SimResult firmware =
      run_spec(protocol::testbed_spec(testbed),
               model::homogeneous(5, 1.0, 52.2, 55.4),
               model::Topology::clique(5), /*seed=*/3);
  EXPECT_GT(firmware.extra("queue_pushes"), 0.0);
}

TEST(ProtocolAdapters, QueueEngineCannotChangeResults) {
  proto::SimConfig cfg;
  cfg.sigma = 0.5;
  cfg.duration = 2e4;
  cfg.queue_engine = sim::QueueEngine::kCalendar;
  protocol::ProtocolSpec spec = protocol::econcast_spec(cfg);
  const SimResult calendar = run_spec(spec, paper_nodes(),
                                      model::Topology::clique(5), /*seed=*/5);
  protocol::set_queue_engine(spec, sim::QueueEngine::kBinaryHeap);
  const SimResult heap = run_spec(spec, paper_nodes(),
                                  model::Topology::clique(5), /*seed=*/5);
  EXPECT_EQ(calendar.groupput, heap.groupput);
  EXPECT_EQ(calendar.packets_sent, heap.packets_sent);
  EXPECT_EQ(calendar.latencies.samples(), heap.latencies.samples());
  EXPECT_EQ(calendar.extra("events_processed"),
            heap.extra("events_processed"));
}

TEST(ProtocolAdapters, PandaSimulationMatchesDeprecatedShim) {
  protocol::PandaParams params;
  params.optimize = false;
  params.wake_rate = 0.01;
  params.listen_window = 1.0;
  params.simulate = true;
  params.duration = 1e5;
  const SimResult via_registry =
      run_spec(protocol::panda_spec(params), paper_nodes(),
               model::Topology::clique(5), /*seed=*/5);
  const baselines::PandaSimResult shim =
      baselines::simulate_panda(5, 0.01, 1.0, 500.0, 500.0, 1e5, 5);
  EXPECT_EQ(via_registry.packets_sent, shim.packets);
  EXPECT_EQ(via_registry.packets_received, shim.receptions);
  EXPECT_EQ(via_registry.groupput, shim.groupput);
  double mean_power = 0.0;
  for (const double p : via_registry.avg_power) mean_power += p;
  mean_power /= 5.0;
  EXPECT_NEAR(mean_power, shim.avg_power, 1e-12);
  EXPECT_GE(via_registry.anyput * 1e5,
            static_cast<double>(shim.receptions) / 5.0);
}

TEST(ProtocolAdapters, PandaAnalyticMatchesOptimizer) {
  const SimResult via_registry =
      run_spec(protocol::panda_spec(), paper_nodes(),
               model::Topology::clique(5), /*seed=*/1);
  const baselines::PandaDesign design =
      baselines::optimize_panda(5, 10.0, 500.0, 500.0);
  EXPECT_EQ(via_registry.groupput, design.throughput);
  ASSERT_EQ(via_registry.avg_power.size(), 5u);
  EXPECT_EQ(via_registry.avg_power[0], design.power);
  EXPECT_EQ(via_registry.extra("wake_rate"), design.wake_rate);
  EXPECT_EQ(via_registry.extra("listen_window"), design.listen_window);
}

TEST(ProtocolAdapters, BirthdaySimulationMatchesDeprecatedShim) {
  protocol::BirthdayParams params;
  params.optimize = false;
  params.p_transmit = 0.01;
  params.p_listen = 0.01;
  params.simulate = true;
  params.slots = 200000;
  const SimResult via_registry =
      run_spec(protocol::birthday_spec(params), paper_nodes(),
               model::Topology::clique(5), /*seed=*/9);
  EXPECT_EQ(via_registry.groupput,
            baselines::simulate_birthday(5, 0.01, 0.01,
                                         model::Mode::kGroupput, 200000, 9));
  EXPECT_EQ(via_registry.anyput,
            baselines::simulate_birthday(5, 0.01, 0.01, model::Mode::kAnyput,
                                         200000, 9));
}

TEST(ProtocolAdapters, BirthdayAnalyticMatchesOptimizer) {
  const SimResult via_registry =
      run_spec(protocol::birthday_spec(), paper_nodes(),
               model::Topology::clique(5), /*seed=*/1);
  const baselines::BirthdayDesign design = baselines::optimize_birthday(
      5, 10.0, 500.0, 500.0, model::Mode::kGroupput);
  EXPECT_EQ(via_registry.groupput, design.throughput);
  EXPECT_EQ(via_registry.extra("p_transmit"), design.p_transmit);
  EXPECT_EQ(via_registry.extra("p_listen"), design.p_listen);
}

TEST(ProtocolAdapters, P4AndOracleMatchSolvers) {
  const SimResult p4 = run_spec(protocol::p4_spec(model::Mode::kGroupput, 0.5),
                                paper_nodes(), model::Topology::clique(5), 1);
  EXPECT_EQ(p4.groupput,
            gibbs::solve_p4(paper_nodes(), model::Mode::kGroupput, 0.5)
                .throughput);
  EXPECT_EQ(p4.anyput, 0.0);

  const SimResult t_star = run_spec(protocol::oracle_spec(model::Mode::kGroupput),
                                    paper_nodes(), model::Topology::clique(5), 1);
  EXPECT_EQ(t_star.groupput, oracle::groupput(paper_nodes()).throughput);
}

TEST(ProtocolAdapters, SearchlightBoundMatchesAnalysis) {
  const SimResult via_registry =
      run_spec(protocol::searchlight_spec(), paper_nodes(),
               model::Topology::clique(5), /*seed=*/1);
  baselines::SearchlightConfig cfg;
  cfg.budget = 10.0;
  cfg.listen_power = 500.0;
  const baselines::SearchlightResult expected =
      baselines::analyze_searchlight(cfg);
  EXPECT_EQ(via_registry.groupput, expected.groupput_upper_bound(5));
  EXPECT_EQ(via_registry.extra("worst_latency_seconds"),
            expected.worst_latency_seconds);
  EXPECT_EQ(via_registry.extra("period_slots"),
            static_cast<double>(expected.period_slots));
}

// ---------------------------------------------------- network requirements --

TEST(ProtocolAdapters, BaselinesRejectUnsupportedNetworks) {
  const auto heterogeneous = [] {
    model::NodeSet nodes = model::homogeneous(4, 10.0, 500.0, 500.0);
    nodes[2].budget = 20.0;
    return nodes;
  }();
  const auto homogeneous = model::homogeneous(4, 10.0, 500.0, 500.0);
  const auto clique = model::Topology::clique(4);
  const auto line = model::Topology::line(4);

  for (const ProtocolSpec& spec :
       {protocol::panda_spec(), protocol::birthday_spec(),
        protocol::searchlight_spec()}) {
    SCOPED_TRACE(spec.name);
    const auto proto = ProtocolRegistry::global().create(spec);
    EXPECT_THROW(proto->make_sim(heterogeneous, clique, 1),
                 std::invalid_argument);
    EXPECT_THROW(proto->make_sim(homogeneous, line, 1), std::invalid_argument);
  }
  // EconCast is the protocol that removes those requirements: it accepts
  // both the heterogeneous population and the non-clique topology.
  proto::SimConfig cfg;
  cfg.duration = 1e3;
  const auto econcast =
      ProtocolRegistry::global().create(protocol::econcast_spec(cfg));
  EXPECT_NO_THROW(econcast->make_sim(heterogeneous, clique, 1));
  EXPECT_NO_THROW(econcast->make_sim(homogeneous, line, 1));
}

// ------------------------------------------------------------- specialized --

TEST(ProtocolSpecs, SpecializedAppliesModeAndSigmaWhereMeaningful) {
  const auto specialized_econcast = protocol::specialized(
      protocol::econcast_spec({}), model::Mode::kAnyput, 0.25);
  const auto& ec =
      std::get<protocol::EconCastParams>(specialized_econcast.params);
  EXPECT_EQ(ec.config.mode, model::Mode::kAnyput);
  EXPECT_EQ(ec.config.sigma, 0.25);

  const auto specialized_p4 = protocol::specialized(
      protocol::p4_spec(model::Mode::kGroupput, 0.5), model::Mode::kAnyput,
      0.1);
  const auto& p4 = std::get<protocol::P4Params>(specialized_p4.params);
  EXPECT_EQ(p4.mode, model::Mode::kAnyput);
  EXPECT_EQ(p4.sigma, 0.1);

  protocol::PandaParams panda_params;
  panda_params.wake_rate = 0.5;
  const auto specialized_panda = protocol::specialized(
      protocol::panda_spec(panda_params), model::Mode::kAnyput, 0.1);
  EXPECT_EQ(std::get<protocol::PandaParams>(specialized_panda.params).wake_rate,
            0.5);  // untouched: Panda has no mode/σ knob

  const auto specialized_birthday = protocol::specialized(
      protocol::birthday_spec(), model::Mode::kAnyput, 0.1);
  EXPECT_EQ(std::get<protocol::BirthdayParams>(specialized_birthday.params).mode,
            model::Mode::kAnyput);
}

}  // namespace
