// End-to-end coverage of the energy-guard brown-out path (SimConfig
// energy_guard / guard_floor / initial_energy): nodes that cannot pay for
// listening are forced to sleep and must recharge before competing to wake
// again, transmitters do not extend bursts they cannot afford, and the
// system keeps operating (finite throughput, bounded power) instead of
// borrowing unbounded energy like the paper's idealized §VII model.
#include <gtest/gtest.h>

#include <cmath>

#include "econcast/simulation.h"
#include "model/network.h"
#include "model/node_params.h"

namespace {

using namespace econcast;

constexpr double kBudget = 10.0;   // ρ (µW)
constexpr double kListen = 500.0;  // L
constexpr double kTransmit = 500.0;

proto::SimConfig guarded_cfg(double duration, double initial_energy) {
  proto::SimConfig cfg;
  cfg.sigma = 0.5;
  cfg.duration = duration;
  cfg.warmup = 0.0;
  cfg.seed = 4242;
  cfg.energy_guard = true;
  cfg.guard_floor = 0.0;
  cfg.initial_energy = initial_energy;
  return cfg;
}

proto::SimResult run_clique(std::size_t n, const proto::SimConfig& cfg) {
  proto::Simulation sim(model::homogeneous(n, kBudget, kListen, kTransmit),
                        model::Topology::clique(n), cfg);
  return sim.run();
}

TEST(EnergyGuard, RechargeHysteresisDelaysFirstWake) {
  // Starting at the floor, a node may not listen until it has harvested one
  // packet-time of listening energy (L = 500 at ρ = 10 → 50 packet-times).
  // Within a shorter horizon than that, nothing can happen at all.
  const auto r = run_clique(5, guarded_cfg(/*duration=*/40.0,
                                           /*initial_energy=*/0.0));
  EXPECT_EQ(r.packets_sent, 0u);
  EXPECT_EQ(r.packets_received, 0u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(r.listen_fraction[i], 0.0) << i;
    EXPECT_EQ(r.transmit_fraction[i], 0.0) << i;
  }
}

TEST(EnergyGuard, BrownOutKeepsSystemLiveAndWithinHarvest) {
  // From an empty store, every node lives hand-to-mouth: wake after
  // recharging, listen until the store hits the floor, brown out, repeat.
  // The run must stay live (packets flow) with finite throughput, and no
  // node can spend meaningfully more than it harvests.
  const auto r = run_clique(5, guarded_cfg(/*duration=*/4e5,
                                           /*initial_energy=*/0.0));
  EXPECT_TRUE(std::isfinite(r.groupput));
  EXPECT_GT(r.groupput, 0.0);
  EXPECT_GT(r.packets_sent, 0u);
  EXPECT_GT(r.packets_received, 0u);
  for (std::size_t i = 0; i < 5; ++i) {
    // Forced sleep + recharge bound the duty cycle near the energy-neutral
    // point α·L + β·X ≈ ρ; the 25% headroom covers the affordability
    // granularity (a burst's first packet is not pre-paid).
    EXPECT_GT(r.listen_fraction[i], 0.0) << i;  // recharge path re-arms wake
    EXPECT_LE(r.avg_power[i], kBudget * 1.25) << i;
    EXPECT_LE(r.listen_fraction[i], 1.25 * kBudget / kListen) << i;
  }
}

TEST(EnergyGuard, TruncatesGiantCapturesAtSmallSigma) {
  // σ = 0.25 is where unbounded storage hurts: the idealized model produces
  // e^{(N-1)/σ}-scale captures. A physical store (here ~1000 packet-times
  // of listening) cannot pay for them, so the guarded run's longest burst
  // must come in far below the unguarded one's, while throughput stays
  // finite and positive.
  proto::SimConfig cfg = guarded_cfg(/*duration=*/3e5,
                                     /*initial_energy=*/5e5);
  cfg.sigma = 0.25;
  cfg.warmup = 1e4;
  const auto guarded = run_clique(5, cfg);

  cfg.energy_guard = false;
  const auto unguarded = run_clique(5, cfg);

  ASSERT_GT(guarded.burst_lengths.count(), 0u);
  ASSERT_GT(unguarded.burst_lengths.count(), 0u);
  EXPECT_TRUE(std::isfinite(guarded.groupput));
  EXPECT_GT(guarded.groupput, 0.0);
  // An affordability ceiling: a burst is only extended while the store can
  // pay for the next packet, so its length is bounded by what the initial
  // charge plus a full run of harvesting can buy (X per packet).
  const double affordable =
      (cfg.initial_energy + kBudget * cfg.duration) / kTransmit;
  EXPECT_LE(guarded.burst_lengths.max(), affordable);
  EXPECT_LT(guarded.burst_lengths.max(), unguarded.burst_lengths.max());
}

TEST(EnergyGuard, GuardedRunStaysDeterministicPerSeed) {
  const proto::SimConfig cfg = guarded_cfg(5e4, 0.0);
  const auto a = run_clique(4, cfg);
  const auto b = run_clique(4, cfg);
  EXPECT_EQ(a.groupput, b.groupput);
  EXPECT_EQ(a.packets_received, b.packets_received);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.avg_power, b.avg_power);
}

}  // namespace
