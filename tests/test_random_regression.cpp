// Golden-value regression tests for util/random. The entire repository's
// replayability rests on these generators being bit-stable: every simulation,
// heterogeneity sample, and testbed noise draw flows from them. If a refactor
// changes any value below it silently invalidates every recorded experiment,
// so the change must be deliberate and these constants regenerated with it.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>

#include "util/random.h"

namespace {

using namespace econcast::util;

TEST(RandomRegression, SplitMix64KnownSequence) {
  std::uint64_t state = 42;
  const std::uint64_t expected[] = {
      0xBDD732262FEB6E95ULL, 0x28EFE333B266F103ULL,
      0x47526757130F9F52ULL, 0x581CE1FF0E4AE394ULL};
  for (const std::uint64_t e : expected) EXPECT_EQ(splitmix64_next(state), e);
}

TEST(RandomRegression, Xoshiro256KnownSequence) {
  Xoshiro256 gen(2016);
  const std::uint64_t expected[] = {
      0x2783899F312CA7A0ULL, 0x0624859DA8FD69E2ULL,
      0xB6D231296DD6A35BULL, 0xD160CD437036B5F1ULL,
      0xA25BC6376E6C9BBCULL, 0xC15E01F80AEF96D0ULL,
      0x839FEE18094502D2ULL, 0xD5D5542B85D2A9CAULL};
  for (const std::uint64_t e : expected) EXPECT_EQ(gen(), e);
}

TEST(RandomRegression, UniformKnownSequence) {
  Rng rng(2016);
  const double expected[] = {
      0.15435085426831785, 0.02399478053211157, 0.71414477597667281,
      0.81788332840388978, 0.63421286443046865, 0.75534069352846545};
  // Exact equality on purpose: uniform() is defined as a deterministic
  // function of the bit stream (top 53 bits scaled by 2^-53).
  for (const double e : expected) EXPECT_EQ(rng.uniform(), e);
}

TEST(RandomRegression, ExponentialKnownSequence) {
  Rng rng(2016);
  const double expected[] = {
      0.33530145350789897, 0.048574689535769246, 2.5045396120766403,
      3.406215489131978};
  for (const double e : expected) EXPECT_EQ(rng.exponential(0.5), e);
}

TEST(RandomRegression, UniformIntKnownSequence) {
  Rng rng(2016);
  const std::uint64_t expected[] = {896, 914, 339, 225, 772, 368};
  for (const std::uint64_t e : expected) EXPECT_EQ(rng.uniform_int(1000), e);
}

// Block-refill mode must reproduce the unbuffered stream exactly: the same
// golden constants as above, drawn through the batched path. Any divergence
// here means the buffered u64→[0,1) conversion or the cursor bookkeeping
// changed the stream, which would invalidate every recorded experiment.
TEST(RandomRegression, BlockModeUniformMatchesGolden) {
  Rng rng(2016, Rng::kDefaultBlock);
  const double expected[] = {
      0.15435085426831785, 0.02399478053211157, 0.71414477597667281,
      0.81788332840388978, 0.63421286443046865, 0.75534069352846545};
  for (const double e : expected) EXPECT_EQ(rng.uniform(), e);
}

TEST(RandomRegression, BlockModeExponentialMatchesGolden) {
  Rng rng(2016, Rng::kDefaultBlock);
  const double expected[] = {
      0.33530145350789897, 0.048574689535769246, 2.5045396120766403,
      3.406215489131978};
  for (const double e : expected) EXPECT_EQ(rng.exponential(0.5), e);
}

TEST(RandomRegression, BlockModeUniformIntMatchesGolden) {
  Rng rng(2016, Rng::kDefaultBlock);
  const std::uint64_t expected[] = {896, 914, 339, 225, 772, 368};
  for (const std::uint64_t e : expected) EXPECT_EQ(rng.uniform_int(1000), e);
}

// Interleaved draws exercise the shared cursor across both buffers (u01 for
// uniform/exponential, raw bits for uniform_int/fork) and across multiple
// refills, including odd block sizes that leave partial batches.
TEST(RandomRegression, BlockModeInterleavedStreamMatchesUnbuffered) {
  for (const std::size_t block : {std::size_t{1}, std::size_t{3},
                                  std::size_t{32}, Rng::kDefaultBlock}) {
    Rng reference(99);
    Rng batched(99, block);
    for (int i = 0; i < 1000; ++i) {
      switch (i % 4) {
        case 0:
          EXPECT_EQ(reference.uniform(), batched.uniform()) << "block=" << block;
          break;
        case 1:
          EXPECT_EQ(reference.exponential(2.5), batched.exponential(2.5))
              << "block=" << block;
          break;
        case 2:
          EXPECT_EQ(reference.uniform_int(12345), batched.uniform_int(12345))
              << "block=" << block;
          break;
        case 3: {
          Rng fr = reference.fork();
          Rng fb = batched.fork();
          EXPECT_EQ(fr.uniform(), fb.uniform()) << "block=" << block;
          break;
        }
      }
    }
  }
}

TEST(RandomRegression, ForkInheritsBlockModeAndStream) {
  Rng reference(7);
  Rng batched(7, Rng::kDefaultBlock);
  Rng fork_ref = reference.fork();
  Rng fork_batched = batched.fork();
  for (int i = 0; i < 600; ++i)
    EXPECT_EQ(fork_ref.uniform(), fork_batched.uniform());
}

TEST(RandomRegression, ExponentialRejectsInvalidRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_THROW(rng.exponential(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  // A rejected draw must not consume from the stream.
  Rng pristine(1);
  EXPECT_EQ(rng.uniform(), pristine.uniform());
}

TEST(RandomRegression, GeometricContinuesRejectsInvalidProbability) {
  Rng rng(1);
  EXPECT_THROW(rng.geometric_continues(-0.1), std::invalid_argument);
  EXPECT_THROW(rng.geometric_continues(1.0), std::invalid_argument);
  EXPECT_THROW(rng.geometric_continues(
                   std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  Rng pristine(1);
  EXPECT_EQ(rng.uniform(), pristine.uniform());
}

}  // namespace
