// Tests for node parameters, the heterogeneity sampler (§VII-B process),
// topologies, and the collision-free state space W.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "model/network.h"
#include "model/node_params.h"
#include "model/state_space.h"
#include "util/random.h"

namespace {

using namespace econcast::model;
using econcast::util::Rng;

// ----------------------------------------------------------- node params --

TEST(NodeParams, ValidationRejectsBadValues) {
  EXPECT_THROW((NodeParams{0.0, 1.0, 1.0}).validate(), std::invalid_argument);
  EXPECT_THROW((NodeParams{1.0, -1.0, 1.0}).validate(), std::invalid_argument);
  EXPECT_THROW((NodeParams{1.0, 1.0, 0.0}).validate(), std::invalid_argument);
  EXPECT_NO_THROW((NodeParams{1.0, 2.0, 3.0}).validate());
}

TEST(NodeParams, HomogeneousFactory) {
  const NodeSet nodes = homogeneous(5, 10.0, 500.0, 450.0);
  ASSERT_EQ(nodes.size(), 5u);
  EXPECT_TRUE(is_homogeneous(nodes));
  EXPECT_DOUBLE_EQ(nodes[3].transmit_power, 450.0);
}

TEST(NodeParams, IsHomogeneousDetectsDifference) {
  NodeSet nodes = homogeneous(3, 10.0, 500.0, 500.0);
  nodes[1].budget = 11.0;
  EXPECT_FALSE(is_homogeneous(nodes));
}

TEST(HeterogeneitySampler, H10DegeneratesToHomogeneous) {
  Rng rng(1);
  const NodeSet nodes = sample_heterogeneous(20, 10.0, rng);
  for (const auto& p : nodes) {
    EXPECT_DOUBLE_EQ(p.listen_power, 500.0);
    EXPECT_DOUBLE_EQ(p.transmit_power, 500.0);
    EXPECT_NEAR(p.budget, 10.0, 1e-9);  // exp(U[ln 10, ln 10]) = 10
  }
}

TEST(HeterogeneitySampler, PowerLevelsInPaperInterval) {
  Rng rng(2);
  const double h = 200.0;
  const NodeSet nodes = sample_heterogeneous(500, h, rng);
  for (const auto& p : nodes) {
    EXPECT_GE(p.listen_power, 510.0 - h);
    EXPECT_LE(p.listen_power, 490.0 + h);
    EXPECT_GE(p.transmit_power, 510.0 - h);
    EXPECT_LE(p.transmit_power, 490.0 + h);
    // ρ in [100/h, h] µW.
    EXPECT_GE(p.budget, 100.0 / h - 1e-9);
    EXPECT_LE(p.budget, h + 1e-9);
  }
}

TEST(HeterogeneitySampler, MeanPowerIs500ForAllH) {
  Rng rng(3);
  for (const double h : {50.0, 150.0, 250.0}) {
    double sum = 0.0;
    const NodeSet nodes = sample_heterogeneous(4000, h, rng);
    for (const auto& p : nodes) sum += p.listen_power;
    EXPECT_NEAR(sum / 4000.0, 500.0, h * 0.05);
  }
}

TEST(HeterogeneitySampler, BudgetMedianNearTen) {
  Rng rng(4);
  const NodeSet nodes = sample_heterogeneous(4001, 250.0, rng);
  std::vector<double> budgets;
  for (const auto& p : nodes) budgets.push_back(p.budget);
  std::sort(budgets.begin(), budgets.end());
  // Median of exp(U[-ln 2.5, ln 250]) = exp((ln 250 - ln 2.5)/2 - ... ):
  // the distribution of h' is uniform, so the median of ρ is
  // exp((lo+hi)/2) = exp((ln(100/h) + ln h)/2) = 10.
  EXPECT_NEAR(budgets[2000], 10.0, 1.5);
}

TEST(HeterogeneitySampler, RejectsOutOfRangeH) {
  Rng rng(5);
  EXPECT_THROW(sample_heterogeneous(5, 5.0, rng), std::invalid_argument);
  EXPECT_THROW(sample_heterogeneous(5, 300.0, rng), std::invalid_argument);
}

// -------------------------------------------------------------- topology --

TEST(Topology, CliqueProperties) {
  const Topology t = Topology::clique(6);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_TRUE(t.is_clique());
  EXPECT_TRUE(t.is_connected());
  EXPECT_EQ(t.edge_count(), 15u);
  EXPECT_EQ(t.degree(3), 5u);
  EXPECT_TRUE(t.adjacent(0, 5));
  EXPECT_FALSE(t.adjacent(2, 2));
}

TEST(Topology, SingleNodeCliqueIsClique) {
  const Topology t = Topology::clique(1);
  EXPECT_TRUE(t.is_clique());
  EXPECT_TRUE(t.is_connected());
  EXPECT_EQ(t.edge_count(), 0u);
}

TEST(Topology, GridDegreesAndEdges) {
  const Topology t = Topology::grid(5, 5);  // the paper's 25-node grid
  EXPECT_EQ(t.size(), 25u);
  EXPECT_FALSE(t.is_clique());
  EXPECT_TRUE(t.is_connected());
  EXPECT_EQ(t.edge_count(), 40u);  // 2*5*4
  EXPECT_EQ(t.degree(0), 2u);      // corner
  EXPECT_EQ(t.degree(2), 3u);      // edge
  EXPECT_EQ(t.degree(12), 4u);     // center
  EXPECT_TRUE(t.adjacent(0, 1));
  EXPECT_TRUE(t.adjacent(0, 5));
  EXPECT_FALSE(t.adjacent(0, 6));  // no diagonals
}

TEST(Topology, LineAndRing) {
  const Topology line = Topology::line(4);
  EXPECT_EQ(line.edge_count(), 3u);
  EXPECT_TRUE(line.is_connected());
  EXPECT_EQ(line.degree(0), 1u);
  const Topology ring = Topology::ring(5);
  EXPECT_EQ(ring.edge_count(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(ring.degree(i), 2u);
  EXPECT_THROW(Topology::ring(2), std::invalid_argument);
}

TEST(Topology, FromEdgesAndDuplicates) {
  const Topology t = Topology::from_edges(4, {{0, 1}, {1, 0}, {2, 3}});
  EXPECT_EQ(t.edge_count(), 2u);  // duplicate collapsed
  EXPECT_FALSE(t.is_connected());
  EXPECT_THROW(Topology::from_edges(2, {{0, 0}}), std::invalid_argument);
  EXPECT_THROW(Topology::from_edges(2, {{0, 5}}), std::out_of_range);
}

TEST(Topology, RandomGnpHasNoIsolatedNodes) {
  Rng rng(6);
  const Topology t = Topology::random_gnp(20, 0.2, rng);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_GE(t.degree(i), 1u);
}

TEST(Topology, NeighborsSortedAndSymmetric) {
  Rng rng(7);
  const Topology t = Topology::random_gnp(15, 0.3, rng);
  for (std::size_t i = 0; i < 15; ++i) {
    const auto& nb = t.neighbors(i);
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
    for (const std::size_t j : nb) {
      EXPECT_TRUE(t.adjacent(i, j));
      EXPECT_TRUE(t.adjacent(j, i));
    }
  }
}

// ----------------------------------------------------------- state space --

TEST(StateSpace, SizeFormula) {
  // |W| = (N+2) 2^(N-1).
  EXPECT_EQ(state_space_size(1), 3u);
  EXPECT_EQ(state_space_size(2), 8u);
  EXPECT_EQ(state_space_size(5), 112u);
  EXPECT_EQ(state_space_size(10), 6144u);
}

TEST(StateSpace, EnumerationCountMatchesFormula) {
  for (const std::size_t n : {1u, 2u, 3u, 5u, 8u}) {
    std::uint64_t count = 0;
    for_each_state(n, [&](const NetState&) { ++count; });
    EXPECT_EQ(count, state_space_size(n)) << "N=" << n;
  }
}

TEST(StateSpace, EnumerationStatesAreValidAndUnique) {
  const std::size_t n = 5;
  std::set<std::pair<int, std::uint64_t>> seen;
  for_each_state(n, [&](const NetState& s) {
    // Transmitter never listens to itself.
    if (s.has_transmitter()) {
      EXPECT_EQ(s.listeners & (1ULL << s.transmitter), 0u);
    }
    EXPECT_LT(s.listeners, 1ULL << n);
    EXPECT_TRUE(seen.emplace(s.transmitter, s.listeners).second);
  });
  EXPECT_EQ(seen.size(), state_space_size(n));
}

TEST(StateSpace, IndexRoundTrip) {
  const std::size_t n = 6;
  for_each_state(n, [&](const NetState& s) {
    const std::uint64_t idx = state_index(n, s);
    ASSERT_LT(idx, state_space_size(n));
    const NetState back = state_at_index(n, idx);
    EXPECT_EQ(back.transmitter, s.transmitter);
    EXPECT_EQ(back.listeners, s.listeners);
  });
}

TEST(StateSpace, IndexIsDense) {
  const std::size_t n = 4;
  std::vector<bool> hit(state_space_size(n), false);
  for_each_state(n, [&](const NetState& s) {
    hit[state_index(n, s)] = true;
  });
  for (const bool b : hit) EXPECT_TRUE(b);
}

TEST(StateSpace, ThroughputDefinitions) {
  // Definition 3: T_w = ν_w c_w (groupput), ν_w γ_w (anyput).
  const NetState idle{-1, 0b0110};
  EXPECT_DOUBLE_EQ(state_throughput(idle, Mode::kGroupput), 0.0);
  EXPECT_DOUBLE_EQ(state_throughput(idle, Mode::kAnyput), 0.0);

  const NetState tx_three{2, 0b11011};  // tx=2, listeners {0,1,3,4}
  EXPECT_DOUBLE_EQ(state_throughput(tx_three, Mode::kGroupput), 4.0);
  EXPECT_DOUBLE_EQ(state_throughput(tx_three, Mode::kAnyput), 1.0);

  const NetState tx_alone{1, 0};
  EXPECT_DOUBLE_EQ(state_throughput(tx_alone, Mode::kGroupput), 0.0);
  EXPECT_DOUBLE_EQ(state_throughput(tx_alone, Mode::kAnyput), 0.0);
}

TEST(StateSpace, ListenerCountAndGamma) {
  const NetState s{0, 0b1010};
  EXPECT_EQ(s.listener_count(), 2);
  EXPECT_TRUE(s.any_listener());
  const NetState e{-1, 0};
  EXPECT_EQ(e.listener_count(), 0);
  EXPECT_FALSE(e.any_listener());
}

TEST(StateSpace, InvalidStatesRejected) {
  EXPECT_THROW(state_index(4, NetState{1, 0b0010}), std::invalid_argument);
  EXPECT_THROW(state_index(4, NetState{9, 0}), std::out_of_range);
  EXPECT_THROW(state_at_index(4, state_space_size(4)), std::out_of_range);
  EXPECT_THROW(for_each_state(0, [](const NetState&) {}),
               std::invalid_argument);
  EXPECT_THROW(for_each_state(30, [](const NetState&) {}),
               std::invalid_argument);
}

TEST(StateSpace, ModeToString) {
  EXPECT_STREQ(to_string(Mode::kGroupput), "groupput");
  EXPECT_STREQ(to_string(Mode::kAnyput), "anyput");
}

}  // namespace
