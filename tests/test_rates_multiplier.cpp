// Tests for the transition-rate laws (18a)-(18f), the multiplier update
// (17), and the listener estimators.
#include <gtest/gtest.h>

#include <cmath>

#include "econcast/estimator.h"
#include "econcast/multiplier.h"
#include "econcast/rates.h"
#include "util/random.h"

namespace {

using namespace econcast;
using namespace econcast::proto;
using model::Mode;

// ------------------------------------------------------------------ rates --

TEST(Rates, SleepToListenFormula) {
  // (18a): λ_sl = A exp(-ηL/σ).
  const RateController rc(500.0, 500.0, 0.5, Variant::kCapture,
                          Mode::kGroupput);
  EXPECT_DOUBLE_EQ(rc.sleep_to_listen(0.0, true), 1.0);
  EXPECT_NEAR(rc.sleep_to_listen(0.001, true), std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(rc.sleep_to_listen(0.001, false), 0.0);  // gated
}

TEST(Rates, ListenToSleepIsCarrierGatedUnitRate) {
  // (18b): λ_ls = A.
  const RateController rc(500.0, 500.0, 0.5, Variant::kCapture,
                          Mode::kGroupput);
  EXPECT_DOUBLE_EQ(rc.listen_to_sleep(true), 1.0);
  EXPECT_DOUBLE_EQ(rc.listen_to_sleep(false), 0.0);
}

TEST(Rates, ListenToTransmitCapture) {
  // (18c): λ_lx = A exp(η(L-X)/σ) — independent of the listener count.
  const RateController rc(600.0, 400.0, 0.5, Variant::kCapture,
                          Mode::kGroupput);
  EXPECT_NEAR(rc.listen_to_transmit(0.001, 0.0, true),
              std::exp(0.001 * 200.0 / 0.5), 1e-12);
  EXPECT_DOUBLE_EQ(rc.listen_to_transmit(0.001, 3.0, true),
                   rc.listen_to_transmit(0.001, 0.0, true));
  EXPECT_DOUBLE_EQ(rc.listen_to_transmit(0.001, 3.0, false), 0.0);
}

TEST(Rates, ListenToTransmitNonCaptureUsesEstimate) {
  // (18d): λ_lx = A exp(η(L-X)/σ + ĉ/σ).
  const RateController rc(500.0, 500.0, 0.5, Variant::kNonCapture,
                          Mode::kGroupput);
  const double base = rc.listen_to_transmit(0.0, 0.0, true);
  EXPECT_DOUBLE_EQ(base, 1.0);
  EXPECT_NEAR(rc.listen_to_transmit(0.0, 2.0, true), std::exp(4.0), 1e-9);
}

TEST(Rates, TransmitReleaseCapture) {
  // (18e): λ_xl = exp(-ĉ/σ); continue probability 1 - λ_xl (§V-B).
  const RateController rc(500.0, 500.0, 0.5, Variant::kCapture,
                          Mode::kGroupput);
  EXPECT_DOUBLE_EQ(rc.transmit_to_listen(0.0), 1.0);
  EXPECT_NEAR(rc.transmit_to_listen(1.0), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(rc.continue_probability(1.0), 1.0 - std::exp(-2.0), 1e-12);
  EXPECT_DOUBLE_EQ(rc.continue_probability(0.0), 0.0);
}

TEST(Rates, TransmitReleaseNonCaptureIsUnit) {
  // (18f): λ_xl = 1; never continues.
  const RateController rc(500.0, 500.0, 0.5, Variant::kNonCapture,
                          Mode::kGroupput);
  EXPECT_DOUBLE_EQ(rc.transmit_to_listen(5.0), 1.0);
  EXPECT_DOUBLE_EQ(rc.continue_probability(5.0), 0.0);
}

TEST(Rates, AnyputUsesGammaNotCount) {
  const RateController rc(500.0, 500.0, 0.5, Variant::kCapture, Mode::kAnyput);
  EXPECT_DOUBLE_EQ(rc.effective_estimate(0.0), 0.0);
  EXPECT_DOUBLE_EQ(rc.effective_estimate(1.0), 1.0);
  EXPECT_DOUBLE_EQ(rc.effective_estimate(4.0), 1.0);  // existence only
  EXPECT_DOUBLE_EQ(rc.transmit_to_listen(4.0), rc.transmit_to_listen(1.0));
}

TEST(Rates, PaperPingProbabilities) {
  // §VIII-D: with one ping received, the continue probability is 0.8647 at
  // σ = 0.5 and 0.9817 at σ = 0.25.
  const RateController half(67.08, 56.29, 0.5, Variant::kCapture,
                            Mode::kGroupput);
  EXPECT_NEAR(half.continue_probability(1.0), 0.8647, 1e-4);
  const RateController quarter(67.08, 56.29, 0.25, Variant::kCapture,
                               Mode::kGroupput);
  EXPECT_NEAR(quarter.continue_probability(1.0), 0.9817, 1e-4);
}

TEST(Rates, ExtremeEtaDoesNotOverflow) {
  const RateController rc(500.0, 100.0, 0.01, Variant::kCapture,
                          Mode::kGroupput);
  EXPECT_TRUE(std::isfinite(rc.listen_to_transmit(100.0, 0.0, true)));
  EXPECT_GE(rc.sleep_to_listen(1e9, true), 0.0);
}

TEST(Rates, RejectsBadConstruction) {
  EXPECT_THROW(RateController(0.0, 1.0, 0.5, Variant::kCapture,
                              Mode::kGroupput),
               std::invalid_argument);
  EXPECT_THROW(RateController(1.0, 1.0, 0.0, Variant::kCapture,
                              Mode::kGroupput),
               std::invalid_argument);
}

TEST(Rates, VariantToString) {
  EXPECT_STREQ(to_string(Variant::kCapture), "EconCast-C");
  EXPECT_STREQ(to_string(Variant::kNonCapture), "EconCast-NC");
}

// -------------------------------------------------------------- multiplier --

TEST(Multiplier, UpdateFollowsEquation17) {
  MultiplierConfig mc;
  mc.delta = 0.1;
  mc.tau = 10.0;
  mc.eta_init = 1.0;
  MultiplierTracker t(mc);
  // η <- (η - δ/τ · Δb)⁺ = 1 - 0.01 * 20 = 0.8.
  t.update(20.0);
  EXPECT_NEAR(t.eta(), 0.8, 1e-12);
  // Negative storage delta (over-consumption) raises η.
  t.update(-20.0);
  EXPECT_NEAR(t.eta(), 1.0, 1e-12);
}

TEST(Multiplier, ProjectionAtZero) {
  MultiplierConfig mc;
  mc.delta = 1.0;
  mc.tau = 1.0;
  mc.eta_init = 0.05;
  MultiplierTracker t(mc);
  t.update(1000.0);
  EXPECT_DOUBLE_EQ(t.eta(), 0.0);  // (·)⁺ projection
}

TEST(Multiplier, ConstantScheduleIntervals) {
  MultiplierConfig mc;
  mc.tau = 42.0;
  MultiplierTracker t(mc);
  EXPECT_DOUBLE_EQ(t.next_interval_length(), 42.0);
  t.update(0.0);
  EXPECT_DOUBLE_EQ(t.next_interval_length(), 42.0);
  EXPECT_EQ(t.intervals_completed(), 1u);
}

TEST(Multiplier, Theorem1Schedule) {
  // δ_k = 1/((k+1) ln(k+1)), τ_k = k.
  MultiplierConfig mc;
  mc.schedule = StepSchedule::kTheorem1;
  mc.eta_init = 1.0;
  MultiplierTracker t(mc);
  EXPECT_DOUBLE_EQ(t.next_interval_length(), 1.0);  // τ_1 = 1
  const double delta1 = 1.0 / (2.0 * std::log(2.0));
  t.update(1.0);  // η <- 1 - (δ_1/τ_1)·1
  EXPECT_NEAR(t.eta(), 1.0 - delta1, 1e-12);
  EXPECT_DOUBLE_EQ(t.next_interval_length(), 2.0);  // τ_2 = 2
}

TEST(Multiplier, Theorem1StepsDiminish) {
  MultiplierConfig mc;
  mc.schedule = StepSchedule::kTheorem1;
  mc.eta_init = 10.0;
  MultiplierTracker t(mc);
  double prev_eta = 10.0;
  double prev_step = 1e9;
  for (int k = 0; k < 50; ++k) {
    t.update(1.0);
    const double step = prev_eta - t.eta();
    EXPECT_LT(step, prev_step);
    prev_step = step;
    prev_eta = t.eta();
  }
}

TEST(Multiplier, SyntheticConvergenceToBudgetBalance) {
  // Feedback loop: consumption(η) = c0 exp(-η); harvest ρ. The equilibrium
  // is η* = ln(c0/ρ); (17) with a small constant step converges to it.
  MultiplierConfig mc;
  mc.delta = 0.05;
  mc.tau = 1.0;
  MultiplierTracker t(mc);
  const double c0 = 5.0, rho = 1.0;
  for (int k = 0; k < 3000; ++k) {
    const double consumption = c0 * std::exp(-t.eta());
    t.update(rho - consumption);  // Δb over a unit interval
  }
  EXPECT_NEAR(t.eta(), std::log(c0 / rho), 0.02);
}

TEST(Multiplier, RejectsBadConfig) {
  MultiplierConfig mc;
  mc.delta = 0.0;
  EXPECT_THROW(MultiplierTracker{mc}, std::invalid_argument);
  MultiplierConfig neg;
  neg.eta_init = -1.0;
  EXPECT_THROW(MultiplierTracker{neg}, std::invalid_argument);
}

// -------------------------------------------------------------- estimators --

TEST(Estimator, PerfectReturnsTruth) {
  util::Rng rng(1);
  const ListenerEstimator est{EstimatorConfig{}};
  for (int c = 0; c <= 5; ++c) EXPECT_EQ(est.estimate(c, rng), c);
}

TEST(Estimator, BinomialThinningMean) {
  util::Rng rng(2);
  EstimatorConfig cfg;
  cfg.kind = EstimatorKind::kBinomialThinning;
  cfg.detect_prob = 0.6;
  const ListenerEstimator est(cfg);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += est.estimate(5, rng);
  EXPECT_NEAR(sum / 20000.0, 3.0, 0.05);
}

TEST(Estimator, ExistenceOnlyCollapsesCounts) {
  util::Rng rng(3);
  EstimatorConfig cfg;
  cfg.kind = EstimatorKind::kExistenceOnly;
  const ListenerEstimator est(cfg);
  EXPECT_EQ(est.estimate(0, rng), 0);
  EXPECT_EQ(est.estimate(1, rng), 1);
  EXPECT_EQ(est.estimate(7, rng), 1);
}

TEST(Estimator, RejectsBadDetectProb) {
  EstimatorConfig cfg;
  cfg.kind = EstimatorKind::kBinomialThinning;
  cfg.detect_prob = 1.5;
  EXPECT_THROW(ListenerEstimator{cfg}, std::invalid_argument);
}

}  // namespace
