// Tests for the simulation hot-path overhaul: the scenario arena and its
// allocator, the incremental listener counts (randomized differential test
// against the reference scan), cross-engine simulation equality (reference
// and optimized engines must produce bit-identical results), the estimator
// validation sweep, and the opt-in hotpath_* extras.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "econcast/estimator.h"
#include "econcast/simulation.h"
#include "model/network.h"
#include "sim/arena.h"
#include "sim/channel.h"
#include "sim/hotpath.h"
#include "util/random.h"

namespace {

using namespace econcast;
using namespace econcast::sim;

// ----------------------------------------------------------------- arena --

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  const void* a = arena.allocate(3, 1);
  const void* b = arena.allocate(8, 8);
  const void* c = arena.allocate(100, 64);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

TEST(Arena, GrowsAcrossChunksAndCountsStats) {
  Arena arena;
  // Larger than the first chunk: forces at least one growth.
  for (int i = 0; i < 8; ++i) (void)arena.allocate(1 << 15, 8);
  const Arena::Stats stats = arena.stats();
  EXPECT_GE(stats.bytes_allocated, 8u * (1u << 15));
  EXPECT_GE(stats.bytes_reserved, stats.bytes_allocated);
  EXPECT_GE(stats.chunks, 2u);
}

TEST(Arena, VectorsUseArenaMemoryAndHeapFallback) {
  Arena arena;
  ArenaVector<int> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 1000u);
  EXPECT_EQ(v[999], 999);
  EXPECT_GT(arena.stats().bytes_allocated, 0u);

  // Default-constructed allocator: plain heap, usable without any arena.
  ArenaVector<int> heap;
  for (int i = 0; i < 1000; ++i) heap.push_back(i);
  EXPECT_EQ(heap, v);

  // Allocators compare by arena identity (is_always_equal is false).
  EXPECT_FALSE(ArenaAllocator<int>(&arena) == ArenaAllocator<int>());
  EXPECT_TRUE(ArenaAllocator<int>(&arena) == ArenaAllocator<int>(&arena));
}

// ----------------------------------------- differential channel coverage --

// Drives a random listen/burst/packet schedule through one optimized-engine
// channel and checks the incremental listener counts against the reference
// scan after every mutation. A reference-engine channel runs the same
// schedule in lockstep so the two engines' visible behavior (counts,
// outcomes, toggle drains) must match call for call.
TEST(ChannelDifferential, RandomScheduleMatchesReferenceScan) {
  util::Rng topo_rng(7);
  for (int round = 0; round < 6; ++round) {
    const std::size_t n = 6 + static_cast<std::size_t>(round) * 5;
    const auto topo = model::Topology::random_gnp(n, 0.3, topo_rng);

    Arena arena;
    Channel opt(topo, &arena, HotpathEngine::kOptimized);
    Channel ref(topo, nullptr, HotpathEngine::kReference);
    util::Rng rng(1000 + static_cast<std::uint64_t>(round));
    NodeId tx_active = kNoNode;
    bool packet_open = false;

    auto check_all = [&] {
      for (NodeId i = 0; i < n; ++i) {
        ASSERT_EQ(opt.listening_neighbors(i), opt.listening_neighbors_scan(i))
            << "node " << i;
        ASSERT_EQ(opt.listening_neighbors(i), ref.listening_neighbors(i))
            << "node " << i;
      }
    };

    for (int step = 0; step < 2000; ++step) {
      const double u = rng.uniform();
      if (u < 0.55) {
        // Toggle a random node's listen state, respecting the channel's
        // preconditions (idle medium, not the transmitter).
        const auto i = static_cast<NodeId>(rng.uniform() *
                                           static_cast<double>(n));
        if (i == tx_active || opt.busy_at(i) || opt.is_transmitting(i))
          continue;
        const bool target = !opt.is_listening(i);
        opt.set_listening(i, target);
        ref.set_listening(i, target);
      } else if (u < 0.75 && tx_active == kNoNode) {
        const auto i = static_cast<NodeId>(rng.uniform() *
                                           static_cast<double>(n));
        if (opt.busy_at(i) || opt.is_listening(i)) continue;
        opt.begin_burst(i);
        ref.begin_burst(i);
        tx_active = i;
      } else if (u < 0.85 && tx_active != kNoNode && !packet_open) {
        opt.begin_packet(tx_active);
        ref.begin_packet(tx_active);
        packet_open = true;
      } else if (u < 0.95 && packet_open) {
        const Channel::PacketOutcome& a = opt.end_packet(tx_active);
        const Channel::PacketOutcome& b = ref.end_packet(tx_active);
        ASSERT_EQ(a.corrupted, b.corrupted);
        ASSERT_EQ(std::vector<NodeId>(a.clean_receivers.begin(),
                                      a.clean_receivers.end()),
                  std::vector<NodeId>(b.clean_receivers.begin(),
                                      b.clean_receivers.end()));
        packet_open = false;
      } else if (tx_active != kNoNode && !packet_open) {
        opt.end_burst(tx_active);
        ref.end_burst(tx_active);
        tx_active = kNoNode;
      }
      check_all();
      if (rng.uniform() < 0.1) {
        const ArenaVector<NodeId>& a = opt.drain_toggled();
        std::vector<NodeId> drained_opt(a.begin(), a.end());
        const ArenaVector<NodeId>& b = ref.drain_toggled();
        ASSERT_EQ(drained_opt, std::vector<NodeId>(b.begin(), b.end()));
      }
    }
  }
}

TEST(ChannelDifferential, ScratchBuffersAreReusedNotReallocated) {
  const auto topo = model::Topology::clique(8);
  Arena arena;
  Channel ch(topo, &arena, HotpathEngine::kOptimized);
  for (NodeId i = 1; i < 8; ++i) ch.set_listening(i, true);
  (void)ch.drain_toggled();
  const Arena::Stats before = arena.stats();
  // Steady state: bursts, packets and drains must not grow the arena.
  for (int k = 0; k < 50; ++k) {
    ch.begin_burst(0);
    ch.begin_packet(0);
    const Channel::PacketOutcome& outcome = ch.end_packet(0);
    EXPECT_EQ(outcome.clean_receivers.size(), 7u);
    ch.end_burst(0);
    for (NodeId i = 1; i < 8; ++i) ch.set_listening(i, true);
    (void)ch.drain_toggled();
  }
  EXPECT_EQ(arena.stats().bytes_allocated, before.bytes_allocated);
}

// ------------------------------------------------- cross-engine equality --

proto::SimResult run_once(const model::NodeSet& nodes,
                          const model::Topology& topo, proto::SimConfig cfg) {
  proto::Simulation sim(nodes, topo, cfg);
  return sim.run();
}

void expect_identical(const proto::SimResult& a, const proto::SimResult& b) {
  EXPECT_EQ(a.measured_window, b.measured_window);
  EXPECT_EQ(a.groupput, b.groupput);
  EXPECT_EQ(a.anyput, b.anyput);
  EXPECT_EQ(a.avg_power, b.avg_power);
  EXPECT_EQ(a.listen_fraction, b.listen_fraction);
  EXPECT_EQ(a.transmit_fraction, b.transmit_fraction);
  EXPECT_EQ(a.final_eta, b.final_eta);
  EXPECT_EQ(a.burst_lengths.count(), b.burst_lengths.count());
  EXPECT_EQ(a.burst_lengths.mean(), b.burst_lengths.mean());
  EXPECT_EQ(a.latencies.samples(), b.latencies.samples());
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_received, b.packets_received);
  EXPECT_EQ(a.bursts, b.bursts);
  EXPECT_EQ(a.corrupted_receptions, b.corrupted_receptions);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.state_occupancy, b.state_occupancy);
}

TEST(HotpathEngines, GridSimulationIsBitIdentical) {
  // The fig. 6 regime: non-clique grid, energy guard, adaptive multiplier.
  const std::size_t k = 4;
  const auto nodes = model::homogeneous(k * k, 10.0, 500.0, 500.0);
  const auto topo = model::Topology::grid(k, k);
  proto::SimConfig cfg;
  cfg.sigma = 0.25;
  cfg.duration = 5e4;
  cfg.warmup = 2e4;
  cfg.seed = 66 + k * k;
  cfg.energy_guard = true;
  cfg.initial_energy = 5e5;

  cfg.hotpath_engine = HotpathEngine::kReference;
  const proto::SimResult ref = run_once(nodes, topo, cfg);
  cfg.hotpath_engine = HotpathEngine::kOptimized;
  const proto::SimResult opt = run_once(nodes, topo, cfg);
  expect_identical(ref, opt);
  EXPECT_GT(opt.events_processed, 0u);
  // The optimized engine answers counts without scanning; the reference
  // engine scans on every query.
  EXPECT_EQ(opt.hotpath_stats.listener_scans, 0u);
  EXPECT_EQ(ref.hotpath_stats.listener_scans,
            ref.hotpath_stats.listener_queries);
}

TEST(HotpathEngines, CliqueSimulationIsBitIdentical) {
  const auto nodes = model::homogeneous(6, 10.0, 500.0, 500.0);
  const auto topo = model::Topology::clique(6);
  for (const auto mode : {model::Mode::kGroupput, model::Mode::kAnyput}) {
    proto::SimConfig cfg;
    cfg.mode = mode;
    cfg.sigma = 0.5;
    cfg.duration = 3e4;
    cfg.seed = 21;
    cfg.track_state_occupancy = true;
    cfg.hotpath_engine = HotpathEngine::kReference;
    const proto::SimResult ref = run_once(nodes, topo, cfg);
    cfg.hotpath_engine = HotpathEngine::kOptimized;
    const proto::SimResult opt = run_once(nodes, topo, cfg);
    expect_identical(ref, opt);
  }
}

TEST(HotpathEngines, DegradedEstimatorSimulationIsBitIdentical) {
  // Binomial thinning draws RNG per estimate — the memoized listen/transmit
  // rates must key on the estimate path's inputs identically.
  const auto nodes = model::homogeneous(9, 10.0, 500.0, 500.0);
  const auto topo = model::Topology::grid(3, 3);
  proto::SimConfig cfg;
  cfg.sigma = 0.5;
  cfg.duration = 3e4;
  cfg.seed = 5;
  cfg.estimator.kind = proto::EstimatorKind::kBinomialThinning;
  cfg.estimator.detect_prob = 0.7;
  cfg.hotpath_engine = HotpathEngine::kReference;
  const proto::SimResult ref = run_once(nodes, topo, cfg);
  cfg.hotpath_engine = HotpathEngine::kOptimized;
  const proto::SimResult opt = run_once(nodes, topo, cfg);
  expect_identical(ref, opt);
}

TEST(HotpathEngines, TokensRoundTrip) {
  EXPECT_EQ(to_token(HotpathEngine::kReference), "reference");
  EXPECT_EQ(to_token(HotpathEngine::kOptimized), "optimized");
  EXPECT_EQ(hotpath_engine_from_token("reference"), HotpathEngine::kReference);
  EXPECT_EQ(hotpath_engine_from_token("optimized"), HotpathEngine::kOptimized);
  EXPECT_THROW(hotpath_engine_from_token("fast"), std::invalid_argument);
  EXPECT_THROW(hotpath_engine_from_token(""), std::invalid_argument);
}

// -------------------------------------------------------------- estimator --

TEST(Estimator, ValidatesDetectProbForEveryKind) {
  for (const auto kind :
       {proto::EstimatorKind::kPerfect, proto::EstimatorKind::kBinomialThinning,
        proto::EstimatorKind::kExistenceOnly}) {
    proto::EstimatorConfig cfg;
    cfg.kind = kind;
    cfg.detect_prob = -0.1;
    EXPECT_THROW(proto::ListenerEstimator{cfg}, std::invalid_argument);
    cfg.detect_prob = 1.1;
    EXPECT_THROW(proto::ListenerEstimator{cfg}, std::invalid_argument);
    cfg.detect_prob = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(proto::ListenerEstimator{cfg}, std::invalid_argument);
    // The boundary values are legal for every kind.
    cfg.detect_prob = 0.0;
    EXPECT_NO_THROW(proto::ListenerEstimator{cfg});
    cfg.detect_prob = 1.0;
    EXPECT_NO_THROW(proto::ListenerEstimator{cfg});
  }
}

TEST(Estimator, BoundaryDetectProbsAreDeterministic) {
  util::Rng rng(3);
  proto::EstimatorConfig cfg;
  cfg.kind = proto::EstimatorKind::kBinomialThinning;
  cfg.detect_prob = 0.0;
  const proto::ListenerEstimator none(cfg);
  cfg.detect_prob = 1.0;
  const proto::ListenerEstimator all(cfg);
  for (int c = 0; c <= 8; ++c) {
    EXPECT_EQ(none.estimate(c, rng), 0);
    EXPECT_EQ(all.estimate(c, rng), c);
  }
}

TEST(Estimator, ZeroListenersEstimateZeroForEveryKind) {
  util::Rng rng(4);
  for (const auto kind :
       {proto::EstimatorKind::kPerfect, proto::EstimatorKind::kBinomialThinning,
        proto::EstimatorKind::kExistenceOnly}) {
    proto::EstimatorConfig cfg;
    cfg.kind = kind;
    cfg.detect_prob = 0.5;
    const proto::ListenerEstimator est(cfg);
    EXPECT_EQ(est.estimate(0, rng), 0);
  }
}

TEST(Estimator, RejectsCorruptedKind) {
  proto::EstimatorConfig cfg;
  cfg.kind = static_cast<proto::EstimatorKind>(250);
  EXPECT_THROW(proto::ListenerEstimator{cfg}, std::invalid_argument);
}

// ----------------------------------------------------------- stats extras --

TEST(HotpathStats, CollectedOnSimResultAndArenaBacked) {
  const auto nodes = model::homogeneous(9, 10.0, 500.0, 500.0);
  const auto topo = model::Topology::grid(3, 3);
  proto::SimConfig cfg;
  cfg.sigma = 0.5;
  cfg.duration = 2e4;
  cfg.seed = 9;
  const proto::SimResult r = run_once(nodes, topo, cfg);
  EXPECT_GT(r.hotpath_stats.listener_queries, 0u);
  EXPECT_GT(r.hotpath_stats.listen_toggles, 0u);
  EXPECT_GT(r.hotpath_stats.toggle_drains, 0u);
  EXPECT_GT(r.hotpath_stats.arena_bytes, 0u);
  EXPECT_GT(r.hotpath_stats.arena_chunks, 0u);
}

}  // namespace
