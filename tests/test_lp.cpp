// Tests for the two-phase simplex solver, including degenerate, infeasible,
// unbounded and equality-constrained programs.
#include <gtest/gtest.h>

#include "lp/problem.h"
#include "lp/simplex.h"
#include "util/random.h"

namespace {

using namespace econcast::lp;

TEST(Simplex, SimpleTwoVariable) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj 12? No:
  // vertex (3, 1): obj 11; vertex (4, 0): obj 12. Optimal is 12.
  Problem p(2);
  p.set_objective(0, 3.0);
  p.set_objective(1, 2.0);
  p.add_constraint_dense({1.0, 1.0}, Relation::kLessEq, 4.0);
  p.add_constraint_dense({1.0, 3.0}, Relation::kLessEq, 6.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-9);
  EXPECT_NEAR(s.x[0], 4.0, 1e-9);
  EXPECT_NEAR(s.x[1], 0.0, 1e-9);
}

TEST(Simplex, ClassicProductMix) {
  // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 -> x=3, y=1.5, obj 21.
  Problem p(2);
  p.set_objective(0, 5.0);
  p.set_objective(1, 4.0);
  p.add_constraint_dense({6.0, 4.0}, Relation::kLessEq, 24.0);
  p.add_constraint_dense({1.0, 2.0}, Relation::kLessEq, 6.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 21.0, 1e-9);
  EXPECT_NEAR(s.x[0], 3.0, 1e-9);
  EXPECT_NEAR(s.x[1], 1.5, 1e-9);
}

TEST(Simplex, EqualityConstraint) {
  // max x + y s.t. x + y = 2, x <= 1.5 -> obj 2.
  Problem p(2);
  p.set_objective(0, 1.0);
  p.set_objective(1, 1.0);
  p.add_constraint_dense({1.0, 1.0}, Relation::kEq, 2.0);
  p.add_constraint_dense({1.0, 0.0}, Relation::kLessEq, 1.5);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
  EXPECT_NEAR(s.x[0] + s.x[1], 2.0, 1e-9);
}

TEST(Simplex, GreaterEqualConstraint) {
  // min x  <=> max -x  s.t. x >= 3 -> obj -3.
  Problem p(1);
  p.set_objective(0, -1.0);
  p.add_constraint_dense({1.0}, Relation::kGreaterEq, 3.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-9);
  EXPECT_NEAR(s.objective, -3.0, 1e-9);
}

TEST(Simplex, InfeasibleDetected) {
  Problem p(1);
  p.set_objective(0, 1.0);
  p.add_constraint_dense({1.0}, Relation::kLessEq, 1.0);
  p.add_constraint_dense({1.0}, Relation::kGreaterEq, 2.0);
  EXPECT_EQ(solve(p).status, SolveStatus::kInfeasible);
}

TEST(Simplex, UnboundedDetected) {
  Problem p(2);
  p.set_objective(0, 1.0);
  p.add_constraint_dense({0.0, 1.0}, Relation::kLessEq, 1.0);
  EXPECT_EQ(solve(p).status, SolveStatus::kUnbounded);
}

TEST(Simplex, NoConstraintsZeroObjective) {
  Problem p(3);
  const Solution s = solve(p);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

TEST(Simplex, NoConstraintsPositiveObjectiveUnbounded) {
  Problem p(2);
  p.set_objective(1, 1.0);
  EXPECT_EQ(solve(p).status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x - y <= -1 with x, y >= 0: needs y >= x + 1. max x + y bounded by y<=3.
  Problem p(2);
  p.set_objective(0, 1.0);
  p.set_objective(1, 1.0);
  p.add_constraint_dense({1.0, -1.0}, Relation::kLessEq, -1.0);
  p.add_constraint_dense({0.0, 1.0}, Relation::kLessEq, 3.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);  // x=2, y=3
}

TEST(Simplex, DegenerateVertexStillSolves) {
  // Redundant constraints meeting at the same vertex.
  Problem p(2);
  p.set_objective(0, 1.0);
  p.set_objective(1, 1.0);
  p.add_constraint_dense({1.0, 1.0}, Relation::kLessEq, 2.0);
  p.add_constraint_dense({2.0, 2.0}, Relation::kLessEq, 4.0);
  p.add_constraint_dense({1.0, 0.0}, Relation::kLessEq, 1.0);
  p.add_constraint_dense({0.0, 1.0}, Relation::kLessEq, 1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(Simplex, RedundantEqualityRows) {
  Problem p(2);
  p.set_objective(0, 1.0);
  p.add_constraint_dense({1.0, 1.0}, Relation::kEq, 2.0);
  p.add_constraint_dense({2.0, 2.0}, Relation::kEq, 4.0);  // same hyperplane
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(Simplex, SparseConstraintInterface) {
  Problem p(4);
  p.set_objective(2, 1.0);
  p.add_constraint({{2, 1.0}}, Relation::kLessEq, 5.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
}

TEST(Simplex, RejectsBadIndices) {
  Problem p(2);
  EXPECT_THROW(p.set_objective(5, 1.0), std::out_of_range);
  EXPECT_THROW(p.add_constraint({{9, 1.0}}, Relation::kLessEq, 1.0),
               std::out_of_range);
  EXPECT_THROW(p.add_constraint_dense({1.0}, Relation::kLessEq, 1.0),
               std::invalid_argument);
  EXPECT_THROW(Problem(0), std::invalid_argument);
}

TEST(Simplex, SolutionSatisfiesConstraintsRandomized) {
  // Property: on random feasible LPs (b >= 0 so x = 0 is feasible), the
  // returned point satisfies every constraint and is nonnegative.
  econcast::util::Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(5);
    const std::size_t m = 1 + rng.uniform_int(6);
    Problem p(n);
    for (std::size_t j = 0; j < n; ++j)
      p.set_objective(j, rng.uniform(0.0, 2.0));
    std::vector<std::vector<double>> rows;
    std::vector<double> rhs;
    bool bounded = false;
    for (std::size_t r = 0; r < m; ++r) {
      std::vector<double> row(n);
      bool all_positive = true;
      for (auto& v : row) {
        v = rng.uniform(0.0, 1.0);
        all_positive = all_positive && v > 0.05;
      }
      bounded = bounded || all_positive;
      const double b = rng.uniform(0.5, 5.0);
      p.add_constraint_dense(row, Relation::kLessEq, b);
      rows.push_back(row);
      rhs.push_back(b);
    }
    if (!bounded) {
      // Add a box to guarantee boundedness.
      std::vector<double> row(n, 1.0);
      p.add_constraint_dense(row, Relation::kLessEq, 10.0);
      rows.push_back(row);
      rhs.push_back(10.0);
    }
    const Solution s = solve(p);
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    for (std::size_t j = 0; j < n; ++j) ASSERT_GE(s.x[j], -1e-9);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      double lhs = 0.0;
      for (std::size_t j = 0; j < n; ++j) lhs += rows[r][j] * s.x[j];
      ASSERT_LE(lhs, rhs[r] + 1e-7);
    }
  }
}

TEST(Simplex, ScalesToHundredsOfVariables) {
  // Transportation-like LP: 200 vars, 120 constraints.
  const std::size_t n = 200;
  Problem p(n);
  econcast::util::Rng rng(7);
  for (std::size_t j = 0; j < n; ++j) p.set_objective(j, rng.uniform(1.0, 2.0));
  for (std::size_t r = 0; r < 120; ++r) {
    std::vector<std::pair<std::size_t, double>> terms;
    for (std::size_t j = r; j < n; j += 7)
      terms.emplace_back(j, rng.uniform(0.5, 1.5));
    p.add_constraint(std::move(terms), Relation::kLessEq, 3.0);
  }
  std::vector<double> box(n, 1.0);
  p.add_constraint_dense(box, Relation::kLessEq, 50.0);
  const Solution s = solve(p);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_GT(s.objective, 0.0);
}

TEST(Simplex, StatusToString) {
  EXPECT_STREQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(SolveStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(SolveStatus::kIterationLimit), "iteration-limit");
}

}  // namespace
