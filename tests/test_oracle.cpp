// Tests for the oracle solvers: (P2) groupput, (P3) anyput, closed forms,
// the non-clique bounds of §IV-C, and the Lemma-1 periodic scheduler.
#include <gtest/gtest.h>

#include <tuple>

#include "model/network.h"
#include "oracle/clique_oracle.h"
#include "oracle/nonclique_oracle.h"
#include "oracle/periodic_schedule.h"
#include "util/random.h"

namespace {

using namespace econcast;
using namespace econcast::oracle;
using model::Mode;

constexpr double kTol = 1e-7;

// ------------------------------------------------------------ closed form --

TEST(CliqueOracle, PaperSettingGroupput) {
  // N=5, ρ=10 µW, L=X=500 µW: T*_g = N(N-1)ρ/(X+(N-1)L) = 0.08. The LP may
  // return any optimal vertex (the symmetric split is not unique), so we
  // assert the objective plus feasibility, and check the symmetric solution
  // via the closed form.
  const auto nodes = model::homogeneous(5, 10.0, 500.0, 500.0);
  const OracleSolution s = groupput(nodes);
  EXPECT_NEAR(s.throughput, 0.08, kTol);
  double beta_sum = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_LE(s.alpha[i] * 500.0 + s.beta[i] * 500.0, 10.0 + 1e-9);
    beta_sum += s.beta[i];
  }
  EXPECT_LE(beta_sum, 1.0 + 1e-9);
  const OracleSolution cf =
      homogeneous_groupput_closed_form(5, 10.0, 500.0, 500.0);
  EXPECT_NEAR(cf.beta[0], 0.004, kTol);
  EXPECT_NEAR(cf.alpha[0], 0.016, kTol);
  EXPECT_NEAR(cf.throughput, s.throughput, kTol);
}

TEST(CliqueOracle, PaperSettingAnyput) {
  // α* = β* = ρ/(X+L) = 0.01, T*_a = 0.05.
  const auto nodes = model::homogeneous(5, 10.0, 500.0, 500.0);
  const OracleSolution s = anyput(nodes);
  EXPECT_NEAR(s.throughput, 0.05, kTol);
}

TEST(CliqueOracle, LpMatchesClosedFormGroupput) {
  for (const auto& [n, rho, l, x] :
       {std::tuple{3u, 5.0, 400.0, 600.0}, std::tuple{8u, 20.0, 700.0, 300.0},
        std::tuple{10u, 10.0, 500.0, 500.0}}) {
    const auto nodes = model::homogeneous(n, rho, l, x);
    const OracleSolution lp = groupput(nodes);
    const OracleSolution cf =
        homogeneous_groupput_closed_form(n, rho, l, x);
    EXPECT_NEAR(lp.throughput, cf.throughput, 1e-6) << "n=" << n;
  }
}

TEST(CliqueOracle, LpMatchesClosedFormAnyput) {
  for (const auto& [n, rho, l, x] :
       {std::tuple{3u, 5.0, 400.0, 600.0}, std::tuple{8u, 20.0, 700.0, 300.0}}) {
    const auto nodes = model::homogeneous(n, rho, l, x);
    EXPECT_NEAR(anyput(nodes).throughput,
                homogeneous_anyput_closed_form(n, rho, l, x).throughput, 1e-6);
  }
}

TEST(CliqueOracle, ClosedFormRejectsUnconstrainedRegime) {
  // Huge budget: nodes could be awake all the time; (10) binds, not (9).
  EXPECT_THROW(homogeneous_groupput_closed_form(5, 1000.0, 1.0, 1.0),
               std::domain_error);
}

TEST(CliqueOracle, UnconstrainedOracle) {
  EXPECT_DOUBLE_EQ(unconstrained_oracle(5, Mode::kGroupput), 4.0);
  EXPECT_DOUBLE_EQ(unconstrained_oracle(5, Mode::kAnyput), 1.0);
  EXPECT_DOUBLE_EQ(unconstrained_oracle(1, Mode::kGroupput), 0.0);
}

TEST(CliqueOracle, EnergyRichNetworkHitsUnconstrainedOracle) {
  // With generous budgets the oracle approaches N-1 (groupput) and 1 (anyput).
  const auto nodes = model::homogeneous(4, 1000.0, 1.0, 1.0);
  EXPECT_NEAR(groupput(nodes).throughput, 3.0, 1e-6);
  EXPECT_NEAR(anyput(nodes).throughput, 1.0, 1e-6);
}

// --------------------------------------------------------------- LP paths --

TEST(CliqueOracle, HeterogeneousTableTwoExample) {
  // Table II: L=X=1 mW, ρ = {5, 10, 50, 100} µW = {0.005, .01, .05, .1} mW.
  // The paper's tabulated split (20/22/53.6/65.7% transmit-when-awake)
  // delivers a *useful-listen* total of 0.065 — the same objective the LP
  // certifies (node 4's 0.0043 of dead listening in the paper's vertex is
  // optimal-but-wasted; optima are not unique). We assert the objective and
  // that the paper's row is (up to rounding) optimal too.
  model::NodeSet nodes{{0.005, 1.0, 1.0},
                       {0.010, 1.0, 1.0},
                       {0.050, 1.0, 1.0},
                       {0.100, 1.0, 1.0}};
  const OracleSolution s = groupput(nodes);
  EXPECT_NEAR(s.throughput, 0.065, 1e-6);
  // Paper row: β = awake · tx-when-awake; useful listening is capped by the
  // other nodes' transmit time (eq. (12)).
  const double beta[4] = {0.005 * 0.200, 0.010 * 0.220, 0.050 * 0.536,
                          0.100 * 0.657};
  const double alpha[4] = {0.005 - beta[0], 0.010 - beta[1], 0.050 - beta[2],
                           0.100 - beta[3]};
  const double beta_total = beta[0] + beta[1] + beta[2] + beta[3];
  double paper_useful = 0.0;
  for (int i = 0; i < 4; ++i)
    paper_useful += std::min(alpha[i], beta_total - beta[i]);
  EXPECT_NEAR(paper_useful, s.throughput, 2e-3);
}

TEST(CliqueOracle, GroupputMonotoneInBudget) {
  double prev = 0.0;
  for (const double rho : {1.0, 5.0, 10.0, 20.0, 40.0}) {
    const double t = groupput(model::homogeneous(5, rho, 500.0, 500.0)).throughput;
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CliqueOracle, GroupputExceedsAnyput) {
  econcast::util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto nodes = model::sample_heterogeneous(5, 150.0, rng);
    EXPECT_GE(groupput(nodes).throughput, anyput(nodes).throughput - 1e-9);
  }
}

TEST(CliqueOracle, SolutionsRespectConstraints) {
  econcast::util::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const auto nodes = model::sample_heterogeneous(6, 200.0, rng);
    for (const Mode mode : {Mode::kGroupput, Mode::kAnyput}) {
      const OracleSolution s = solve(nodes, mode);
      double beta_sum = 0.0;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        // (9), (10).
        EXPECT_LE(s.alpha[i] * nodes[i].listen_power +
                      s.beta[i] * nodes[i].transmit_power,
                  nodes[i].budget * (1 + 1e-9));
        EXPECT_LE(s.alpha[i] + s.beta[i], 1.0 + 1e-9);
        EXPECT_GE(s.alpha[i], -1e-12);
        EXPECT_GE(s.beta[i], -1e-12);
        beta_sum += s.beta[i];
      }
      EXPECT_LE(beta_sum, 1.0 + 1e-9);  // (11)
    }
  }
}

TEST(CliqueOracle, GroupputListenCoveredByOthersTransmit) {
  econcast::util::Rng rng(3);
  const auto nodes = model::sample_heterogeneous(5, 100.0, rng);
  const OracleSolution s = groupput(nodes);
  double beta_total = 0.0;
  for (const double b : s.beta) beta_total += b;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    EXPECT_LE(s.alpha[i], beta_total - s.beta[i] + 1e-9);  // (12)
}

TEST(CliqueOracle, ThroughputScaleInvariance) {
  // Performance depends only on the ratios between ρ, L, X (§VII-A).
  const auto a = groupput(model::homogeneous(5, 10.0, 500.0, 500.0));
  const auto b = groupput(model::homogeneous(5, 1.0, 50.0, 50.0));
  EXPECT_NEAR(a.throughput, b.throughput, 1e-9);
}

TEST(CliqueOracle, AnyputSingleNodeIsZero) {
  EXPECT_DOUBLE_EQ(anyput(model::homogeneous(1, 1.0, 1.0, 1.0)).throughput, 0.0);
}

// Property sweep: oracle groupput equals the closed form across the Fig. 3
// X/L range for the paper's budget.
class OracleXOverLSweep : public ::testing::TestWithParam<double> {};

TEST_P(OracleXOverLSweep, ClosedFormAcrossPowerRatios) {
  const double ratio = GetParam();  // X/L with L+X = 1000 µW
  const double x = 1000.0 * ratio / (1.0 + ratio);
  const double l = 1000.0 - x;
  const auto nodes = model::homogeneous(5, 10.0, l, x);
  const double expect = 5.0 * 4.0 * 10.0 / (x + 4.0 * l);
  EXPECT_NEAR(groupput(nodes).throughput, expect, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(PaperRatios, OracleXOverLSweep,
                         ::testing::Values(1.0 / 9, 1.0 / 4, 3.0 / 7, 2.0 / 3,
                                           1.0, 3.0 / 2, 7.0 / 3, 4.0, 9.0));

// --------------------------------------------------------------- non-clique --

TEST(NoncliqueOracle, CliqueTopologyMatchesCliqueOracle) {
  const auto nodes = model::homogeneous(5, 10.0, 500.0, 500.0);
  const NoncliqueBounds b =
      nonclique_groupput(nodes, model::Topology::clique(5));
  EXPECT_NEAR(b.lower.throughput, 0.08, 1e-7);
}

TEST(NoncliqueOracle, GridBoundsAreTightInPaperRegime) {
  // Fig. 6 observation: for the paper's grids the bounds coincide.
  const auto nodes = model::homogeneous(25, 10.0, 500.0, 500.0);
  const NoncliqueBounds b =
      nonclique_groupput(nodes, model::Topology::grid(5, 5));
  EXPECT_TRUE(b.tight(1e-6)) << b.lower.throughput << " vs "
                             << b.upper.throughput;
  EXPECT_GT(b.lower.throughput, 0.0);
}

TEST(NoncliqueOracle, UpperBoundAtLeastLower) {
  econcast::util::Rng rng(4);
  const auto topo = model::Topology::random_gnp(10, 0.3, rng);
  const auto nodes = model::homogeneous(10, 10.0, 500.0, 500.0);
  const NoncliqueBounds b = nonclique_groupput(nodes, topo);
  EXPECT_GE(b.upper.throughput, b.lower.throughput - 1e-9);
}

TEST(NoncliqueOracle, GridOracleGrowsWithN) {
  double prev = 0.0;
  for (const std::size_t k : {2u, 3u, 4u, 5u}) {
    const auto nodes = model::homogeneous(k * k, 10.0, 500.0, 500.0);
    const double t =
        nonclique_groupput(nodes, model::Topology::grid(k, k)).lower.throughput;
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(NoncliqueOracle, LineSaturatesVersusClique) {
  // A line constrains listening to <= 2 neighbors' transmissions; with an
  // energy-rich budget its oracle falls below the clique's.
  const auto nodes = model::homogeneous(6, 200.0, 500.0, 500.0);
  const double line_t =
      nonclique_groupput(nodes, model::Topology::line(6)).upper.throughput;
  const double clique_t = groupput(nodes).throughput;
  EXPECT_LT(line_t, clique_t);
}

TEST(NoncliqueOracle, SizeMismatchThrows) {
  const auto nodes = model::homogeneous(4, 10.0, 500.0, 500.0);
  EXPECT_THROW(nonclique_groupput(nodes, model::Topology::clique(5)),
               std::invalid_argument);
}

// ------------------------------------------------------ periodic schedule --

TEST(PeriodicSchedule, AchievesOracleUpToQuantization) {
  const auto nodes = model::homogeneous(5, 10.0, 500.0, 500.0);
  const OracleSolution s = groupput(nodes);
  const PeriodicSchedule sched = build_periodic_schedule(nodes, s, 1000);
  const ScheduleCheck check = verify_schedule(nodes, sched);
  EXPECT_TRUE(check.ok());
  // Quantization loses at most N/grid of throughput.
  EXPECT_GE(check.groupput, s.throughput - 5.0 / 1000.0);
  EXPECT_LE(check.groupput, s.throughput + 1e-9);
}

TEST(PeriodicSchedule, HeterogeneousScheduleFeasible) {
  econcast::util::Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const auto nodes = model::sample_heterogeneous(6, 150.0, rng);
    const OracleSolution s = groupput(nodes);
    const PeriodicSchedule sched = build_periodic_schedule(nodes, s, 2000);
    const ScheduleCheck check = verify_schedule(nodes, sched);
    EXPECT_TRUE(check.ok());
    EXPECT_GE(check.groupput, s.throughput - 6.0 / 2000.0);
  }
}

TEST(PeriodicSchedule, AccumulationCoversInitialDeficit) {
  const auto nodes = model::homogeneous(4, 10.0, 500.0, 500.0);
  const OracleSolution s = groupput(nodes);
  const PeriodicSchedule sched = build_periodic_schedule(nodes, s, 500);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const double acc = sched.accumulation_slots(nodes, i);
    EXPECT_GE(acc, 0.0);
    // Replaying the period starting with the accumulated energy never goes
    // negative (Lemma 1 / Appendix A).
    double energy = nodes[i].budget * acc;
    for (std::int64_t slot = 0; slot < sched.period; ++slot) {
      double spend = 0.0;
      const auto action = sched.actions[i][static_cast<std::size_t>(slot)];
      if (action == SlotAction::kListen) spend = nodes[i].listen_power;
      if (action == SlotAction::kTransmit) spend = nodes[i].transmit_power;
      energy += nodes[i].budget - spend;
      EXPECT_GE(energy, -1e-9);
    }
  }
}

TEST(PeriodicSchedule, DetectsCorruptedSchedule) {
  const auto nodes = model::homogeneous(3, 10.0, 500.0, 500.0);
  const OracleSolution s = groupput(nodes);
  PeriodicSchedule sched = build_periodic_schedule(nodes, s, 200);
  // Corrupt: make two nodes transmit in slot 0.
  sched.actions[0][0] = SlotAction::kTransmit;
  sched.actions[1][0] = SlotAction::kTransmit;
  const ScheduleCheck check = verify_schedule(nodes, sched);
  EXPECT_FALSE(check.collision_free);
}

TEST(PeriodicSchedule, DetectsUncoveredListener) {
  const auto nodes = model::homogeneous(3, 10.0, 500.0, 500.0);
  PeriodicSchedule sched;
  sched.period = 10;
  sched.actions.assign(3, std::vector<SlotAction>(10, SlotAction::kSleep));
  sched.actions[0][0] = SlotAction::kListen;  // nobody transmits
  EXPECT_FALSE(verify_schedule(nodes, sched).listeners_covered);
}

TEST(PeriodicSchedule, RejectsInvalidInputs) {
  const auto nodes = model::homogeneous(3, 10.0, 500.0, 500.0);
  OracleSolution bad;
  bad.alpha = {0.1, 0.1};  // wrong size
  bad.beta = {0.1, 0.1, 0.1};
  EXPECT_THROW(build_periodic_schedule(nodes, bad, 100), std::invalid_argument);
  OracleSolution overflow;
  overflow.alpha = {0.0, 0.0, 0.0};
  overflow.beta = {0.6, 0.6, 0.6};  // Σβ > 1
  EXPECT_THROW(build_periodic_schedule(nodes, overflow, 100),
               std::invalid_argument);
}

}  // namespace
