// Executor stress suite: the concurrency patterns the plain unit tests in
// test_exec.cpp exercise one at a time, here hammered together so a data
// race in the deque steal path, batch retirement, progress serialization,
// or shutdown has a real chance to interleave. This binary is the primary
// TSan target (built in CI with -DECONCAST_SANITIZE=thread); keep the
// workloads small — under TSan every iteration costs ~10-20x.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/executor.h"

namespace {

using econcast::exec::Executor;
using econcast::exec::TaskProgress;

// Deterministic per-test pseudo-randomness (the determinism lint bans
// ambient RNG even in tests; a fixed LCG keeps every stress run identical).
struct Lcg {
  std::uint64_t state;
  explicit Lcg(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  }
};

TEST(ExecutorStress, ManySubmittersManyBatches) {
  // Several external threads each push a stream of batches with varying
  // sizes through one pool; every index of every batch must run exactly
  // once. This is the contended version of ConcurrentSubmittersSerializeSafely.
  Executor pool(4);
  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kBatchesPerSubmitter = 25;
  std::vector<std::atomic<std::uint64_t>> totals(kSubmitters);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      Lcg rng(1000 + s);
      for (std::size_t b = 0; b < kBatchesPerSubmitter; ++b) {
        const std::size_t n = 1 + rng.next() % 97;
        std::vector<std::atomic<int>> hits(n);
        pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
        std::uint64_t batch_total = 0;
        for (std::size_t i = 0; i < n; ++i) {
          batch_total += static_cast<std::uint64_t>(hits[i].load());
        }
        totals[s].fetch_add(batch_total == n ? batch_total : 0);
      }
    });
  }
  std::uint64_t expected = 0;
  {
    Lcg replay(0);
    for (std::size_t s = 0; s < kSubmitters; ++s) {
      Lcg rng(1000 + s);
      for (std::size_t b = 0; b < kBatchesPerSubmitter; ++b)
        expected += 1 + rng.next() % 97;
    }
    (void)replay;
  }
  for (std::thread& t : submitters) t.join();
  std::uint64_t observed = 0;
  for (auto& t : totals) observed += t.load();
  EXPECT_EQ(observed, expected);
}

TEST(ExecutorStress, NestedBatchesUnderContention) {
  // Outer batches whose tasks submit nested batches (which must inline)
  // while other external threads submit their own outer batches.
  Executor pool(3);
  std::atomic<std::uint64_t> inner_total{0};
  auto outer = [&](std::size_t reps) {
    for (std::size_t r = 0; r < reps; ++r) {
      pool.parallel_for(8, [&](std::size_t) {
        pool.parallel_for(4,
                          [&](std::size_t) { inner_total.fetch_add(1); });
      });
    }
  };
  std::thread rival([&] { outer(10); });
  outer(10);
  rival.join();
  EXPECT_EQ(inner_total.load(), 2u * 10u * 8u * 4u);
}

TEST(ExecutorStress, ExceptionsUnderContentionLeavePoolUsable) {
  // Failing and succeeding batches interleave from two submitters; every
  // failing batch must throw exactly its own error, every succeeding batch
  // must be complete, and the pool must stay healthy throughout.
  Executor pool(4);
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> completed{0};
  auto mixed = [&](unsigned salt) {
    for (int b = 0; b < 20; ++b) {
      const bool fail = (b + salt) % 3 == 0;
      try {
        pool.parallel_for(64, [&](std::size_t i) {
          if (fail && i == 13) throw std::runtime_error("seeded failure");
          completed.fetch_add(1);
        });
        EXPECT_FALSE(fail);
      } catch (const std::runtime_error&) {
        EXPECT_TRUE(fail);
        failures.fetch_add(1);
      }
    }
  };
  std::thread rival([&] { mixed(1); });
  mixed(0);
  rival.join();
  // salt 0: b % 3 == 0 for 7 of 20; salt 1: (b+1) % 3 == 0 for 6 of 20.
  EXPECT_EQ(failures.load(), 7 + 6);
  // Abandonment means failing batches run a subset; succeeding batches are
  // complete, so at least those indices all executed.
  EXPECT_GE(completed.load(), (20u - 7u + 20u - 6u) * 64u);
  std::atomic<int> after{0};
  pool.parallel_for(32, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 32);
}

TEST(ExecutorStress, ProgressSerializationHoldsUnderStealing) {
  // The progress contract (serialized, done advances by exactly one) is
  // what lets SweepSession write checkpoints without a lock. Verify it on
  // purpose under heavy stealing: tiny tasks, many participants — the
  // callback body deliberately touches unsynchronized state.
  Executor pool(4);
  for (int round = 0; round < 10; ++round) {
    const std::size_t n = 257;
    std::size_t calls = 0;      // unsynchronized on purpose
    std::size_t last_done = 0;  // ditto
    std::vector<int> seen(n, 0);
    pool.parallel_for(
        n, [](std::size_t) {}, 0, [&](const TaskProgress& p) {
          ++calls;
          EXPECT_EQ(p.done, last_done + 1);
          last_done = p.done;
          seen[p.index] += 1;
        });
    ASSERT_EQ(calls, n);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(seen[i], 1);
  }
}

TEST(ExecutorStress, ChurnConstructDestroyWhileWorking) {
  // Short-lived pools built, used for a couple of batches and destroyed in
  // a loop — the shutdown path (stop flag, notify, join) runs dozens of
  // times, including immediately after a batch retires.
  for (int round = 0; round < 30; ++round) {
    Executor pool(1 + round % 4);
    std::atomic<int> hits{0};
    pool.parallel_for(17, [&](std::size_t) { hits.fetch_add(1); });
    pool.parallel_for(1, [&](std::size_t) { hits.fetch_add(1); });
    ASSERT_EQ(hits.load(), 18);
  }
}

TEST(ExecutorStress, DestructionRacesIdleWakeups) {
  // A pool destroyed right after its last batch — while workers may still
  // be between the batch-retired wakeup and the next wait — must join
  // cleanly. Alternate batch sizes so some rounds end with stealing active.
  Lcg rng(7);
  for (int round = 0; round < 30; ++round) {
    const std::size_t n = 1 + rng.next() % 33;
    std::vector<std::atomic<int>> hits(n);
    {
      Executor pool(3);
      pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    }
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
  }
}

}  // namespace
