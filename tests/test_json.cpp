// Tests for the minimal JSON layer: parsing (values, nesting, escapes,
// strictness), deterministic dumping with insertion-ordered objects, the
// shortest-round-trip double format (bit-exactness), and the u64 string
// codec that carries full-range seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "util/json.h"

namespace {

namespace json = econcast::util::json;
using json::Value;

TEST(Json, ParsesPrimitives) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_EQ(json::parse("true").as_bool(), true);
  EXPECT_EQ(json::parse("false").as_bool(), false);
  EXPECT_EQ(json::parse("42").as_number(), 42.0);
  EXPECT_EQ(json::parse("-0.5e2").as_number(), -50.0);
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
  EXPECT_EQ(json::parse("  [1, 2]  ").as_array().size(), 2u);
  EXPECT_EQ(json::parse("{}").as_object().size(), 0u);
}

TEST(Json, ParsesNestedStructures) {
  const Value v = json::parse(
      R"({"a": [1, {"b": true}, "x"], "c": {"d": null}, "e": -3.25})");
  EXPECT_EQ(v.at("a").as_array()[1].at("b").as_bool(), true);
  EXPECT_TRUE(v.at("c").at("d").is_null());
  EXPECT_EQ(v.at("e").as_number(), -3.25);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(v.at("missing"), json::Error);
}

TEST(Json, ParsesStringEscapes) {
  EXPECT_EQ(json::parse(R"("a\"b\\c\/d\n\t\r\b\f")").as_string(),
            "a\"b\\c/d\n\t\r\b\f");
  EXPECT_EQ(json::parse(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(json::parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "tru", "01", "+1", "1.", ".5", "1e", "[1,]", "[1 2]", "{\"a\" 1}",
        "{\"a\":1,}", "\"unterminated", "\"bad\\escape\"", "nan", "[1] junk",
        "{\"a\": \"\\ud83d\"}", "\"\x01\""}) {
    SCOPED_TRACE(bad);
    EXPECT_THROW(json::parse(bad), json::Error);
  }
}

TEST(Json, AccessorsRejectWrongKind) {
  const Value v = json::parse("[1]");
  EXPECT_THROW(v.as_bool(), json::Error);
  EXPECT_THROW(v.as_number(), json::Error);
  EXPECT_THROW(v.as_string(), json::Error);
  EXPECT_THROW(v.as_object(), json::Error);
  EXPECT_NO_THROW(v.as_array());
}

TEST(Json, DumpIsCompactAndOrdered) {
  json::Object o;
  o.set("zebra", 1).set("alpha", json::Array{Value(true), Value(nullptr)});
  o.set("zebra", 2);  // replaces in place, keeps position
  EXPECT_EQ(json::dump(Value(o)), R"({"zebra":2,"alpha":[true,null]})");
}

TEST(Json, PrettyDumpRoundTrips) {
  const char* text =
      R"({"a": [1, 2, {"b": "x"}], "c": true, "d": {"e": [], "f": {}}})";
  const Value v = json::parse(text);
  const std::string pretty = json::dump(v, 2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(json::parse(pretty), v);
  EXPECT_EQ(json::parse(json::dump(v)), v);
}

TEST(Json, StringEscapeRoundTrips) {
  const std::string nasty = "quote\" back\\ slash/ \n\t\r\b\f ctrl\x01 utf\xc3\xa9";
  EXPECT_EQ(json::parse(json::dump(Value(nasty))).as_string(), nasty);
}

TEST(Json, DoubleFormatIsShortestRoundTrip) {
  for (const double d :
       {0.1, 1.0 / 3.0, 2.5, 1e-300, 1e300, 6.02214076e23, -0.0, 0.0,
        123456789012345678.0, std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::max(), 0.026273195549999997}) {
    const std::string s = json::format_double(d);
    const double back = json::parse(s).as_number();
    EXPECT_EQ(std::memcmp(&back, &d, sizeof d), 0)
        << s << " does not round-trip";
  }
  EXPECT_EQ(json::format_double(42.0), "42");       // integral: no exponent
  EXPECT_EQ(json::format_double(0.5), "0.5");       // short when it can be
  EXPECT_EQ(json::format_double(-0.0), "-0");       // sign preserved
  EXPECT_THROW(json::format_double(NAN), json::Error);
  EXPECT_THROW(json::format_double(INFINITY), json::Error);
}

TEST(Json, NumbersSurviveDumpParse) {
  json::Array a;
  a.emplace_back(0.1 + 0.2);  // classic non-representable sum
  a.emplace_back(1.0 / 7.0);
  a.emplace_back(4503599627370497.0);  // 2^52 + 1, integral path
  const Value back = json::parse(json::dump(Value(a)));
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = a[i].as_number();
    const double y = back.as_array()[i].as_number();
    EXPECT_EQ(std::memcmp(&x, &y, sizeof x), 0);
  }
}

TEST(Json, NonFiniteNumbersDumpAsNull) {
  // JSON cannot carry NaN/Inf; the writer encodes them as null so a
  // streaming checkpoint write never aborts mid-sweep, and the reader side
  // (as_number_or_nan) brings them back as NaN.
  EXPECT_EQ(json::dump(Value(NAN)), "null");
  EXPECT_EQ(json::dump(Value(INFINITY)), "null");
  EXPECT_EQ(json::dump(Value(-INFINITY)), "null");
  json::Object o;
  o.set("ok", 1.5).set("bad", NAN);
  EXPECT_EQ(json::dump(Value(o)), R"({"ok":1.5,"bad":null})");

  const Value back = json::parse(json::dump(Value(o)));
  EXPECT_TRUE(std::isnan(back.at("bad").as_number_or_nan()));
  EXPECT_EQ(back.at("ok").as_number_or_nan(), 1.5);
  EXPECT_THROW(back.at("bad").as_number(), json::Error);  // strict form
  EXPECT_THROW(json::parse("\"x\"").as_number_or_nan(), json::Error);
  // The round trip is byte-stable: null re-dumps as null.
  EXPECT_EQ(json::dump(back), R"({"ok":1.5,"bad":null})");
}

TEST(Json, U64StringCodec) {
  EXPECT_EQ(json::u64_to_string(0), "0");
  EXPECT_EQ(json::u64_from_string("0"), 0u);
  const std::uint64_t big = 18446744073709551615ULL;  // 2^64 - 1
  EXPECT_EQ(json::u64_from_string(json::u64_to_string(big)), big);
  EXPECT_THROW(json::u64_from_string(""), json::Error);
  EXPECT_THROW(json::u64_from_string("-1"), json::Error);
  EXPECT_THROW(json::u64_from_string("12x"), json::Error);
  EXPECT_THROW(json::u64_from_string("18446744073709551616"), json::Error);
}

TEST(Json, DeepNestingIsBounded) {
  std::string deep(500, '[');
  deep += std::string(500, ']');
  EXPECT_THROW(json::parse(deep), json::Error);
}

}  // namespace
