// Tests for the declarative sweep builder: cross-product size and order,
// deterministic naming, cell_index round-trips, axis specialization of the
// protocol parameters, custom topology/node-set hooks, and validation.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/scenario_runner.h"
#include "runner/sweep_spec.h"

namespace {

using namespace econcast;
using runner::Scenario;
using runner::SweepSpec;

TEST(SweepSpec, DefaultsToSinglePaperCell) {
  const SweepSpec sweep("one");
  EXPECT_EQ(sweep.cell_count(), 1u);
  const std::vector<Scenario> batch = sweep.expand();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].nodes.size(), 5u);
  EXPECT_EQ(batch[0].topology.size(), 5u);
  EXPECT_TRUE(batch[0].topology.is_clique());
  EXPECT_EQ(batch[0].protocol.name, "econcast");
  EXPECT_EQ(batch[0].name, "one/econcast/groupput/N5/rho10_L500_X500/s0.5");
}

TEST(SweepSpec, CrossProductSizeAndIndexRoundTrip) {
  const SweepSpec sweep =
      SweepSpec("grid")
          .protocols({protocol::p4_spec(model::Mode::kGroupput, 0.5),
                      protocol::panda_spec()})
          .modes({model::Mode::kGroupput, model::Mode::kAnyput})
          .node_counts({3, 5, 10})
          .powers({{10.0, 500.0, 500.0}, {10.0, 900.0, 100.0}})
          .sigmas({0.25, 0.5})
          .replicates(3);
  EXPECT_EQ(sweep.cell_count(), 2u * 2u * 3u * 2u * 2u * 3u);
  const std::vector<Scenario> batch = sweep.expand();
  ASSERT_EQ(batch.size(), sweep.cell_count());

  // Every cell index lands on a scenario whose axes match the arguments.
  const std::size_t i = sweep.cell_index(1, 1, 2, 1, 0, 0, 2);
  const Scenario& s = batch[i];
  EXPECT_EQ(s.protocol.name, "panda");
  EXPECT_EQ(s.nodes.size(), 10u);
  EXPECT_EQ(s.nodes[0].listen_power, 900.0);
  EXPECT_NE(s.name.find("/s0.25"), std::string::npos) << s.name;
  EXPECT_NE(s.name.find("/r2"), std::string::npos) << s.name;

  // Indices enumerate the batch exactly once.
  std::set<std::size_t> seen;
  for (std::size_t p = 0; p < 2; ++p)
    for (std::size_t m = 0; m < 2; ++m)
      for (std::size_t n = 0; n < 3; ++n)
        for (std::size_t pw = 0; pw < 2; ++pw)
          for (std::size_t sg = 0; sg < 2; ++sg)
            for (std::size_t r = 0; r < 3; ++r)
              seen.insert(sweep.cell_index(p, m, n, pw, 0, sg, r));
  EXPECT_EQ(seen.size(), batch.size());
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), batch.size() - 1);

  EXPECT_THROW(sweep.cell_index(2), std::out_of_range);
  EXPECT_THROW(sweep.cell_index(0, 0, 0, 0, 1), std::out_of_range);
  EXPECT_THROW(sweep.cell_index(0, 0, 0, 0, 0, 0, 3), std::out_of_range);
}

TEST(SweepSpec, ExpansionIsDeterministic) {
  const auto make = [] {
    return SweepSpec("det")
        .protocols({protocol::econcast_spec({}), protocol::birthday_spec()})
        .node_counts({4, 6})
        .sigmas({0.25, 0.5, 0.75})
        .replicates(2);
  };
  const std::vector<Scenario> a = make().expand();
  const std::vector<Scenario> b = make().expand();
  ASSERT_EQ(a.size(), b.size());
  std::set<std::string> names;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    names.insert(a[i].name);
  }
  EXPECT_EQ(names.size(), a.size()) << "scenario names must be unique";
}

TEST(SweepSpec, AxesSpecializeProtocolParams) {
  const SweepSpec sweep =
      SweepSpec("spec")
          .protocols({protocol::econcast_spec({}),
                      protocol::p4_spec(model::Mode::kGroupput, 0.5)})
          .modes({model::Mode::kAnyput})
          .sigmas({0.1});
  const std::vector<Scenario> batch = sweep.expand();
  ASSERT_EQ(batch.size(), 2u);
  const auto& econcast =
      std::get<protocol::EconCastParams>(batch[0].protocol.params);
  EXPECT_EQ(econcast.config.mode, model::Mode::kAnyput);
  EXPECT_EQ(econcast.config.sigma, 0.1);
  const auto& p4 = std::get<protocol::P4Params>(batch[1].protocol.params);
  EXPECT_EQ(p4.mode, model::Mode::kAnyput);
  EXPECT_EQ(p4.sigma, 0.1);
}

TEST(SweepSpec, CustomTopologyAndNodeSetHooks) {
  const SweepSpec sweep =
      SweepSpec("hooks")
          .node_counts({6})
          .topology([](std::size_t n) {
            return model::Topology::grid(2, n / 2);
          })
          .node_set([](std::size_t n, const runner::PowerPoint& p) {
            model::NodeSet nodes =
                model::homogeneous(n, p.budget, p.listen_power,
                                   p.transmit_power);
            nodes[0].budget *= 2.0;  // one richer node
            return nodes;
          });
  const std::vector<Scenario> batch = sweep.expand();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_FALSE(batch[0].topology.is_clique());
  EXPECT_EQ(batch[0].topology.size(), 6u);
  EXPECT_EQ(batch[0].nodes[0].budget, 20.0);
  EXPECT_EQ(batch[0].nodes[1].budget, 10.0);
}

TEST(SweepSpec, SampledNodeSetPairsNetworksAcrossCells) {
  // The fig2 design: every (protocol, mode, σ) cell at a given
  // (h, replicate) must see the identical §VII-B network, and that network
  // must be exactly the replicate-th draw of the per-h model stream.
  const SweepSpec sweep =
      SweepSpec("het")
          .protocols({protocol::p4_spec(model::Mode::kGroupput, 0.5),
                      protocol::oracle_spec(model::Mode::kGroupput)})
          .modes({model::Mode::kGroupput, model::Mode::kAnyput})
          .sigmas({0.25, 0.5})
          .replicates(3)
          .sampled_node_set({50.0, 150.0}, /*sample_seed=*/99);
  EXPECT_EQ(sweep.node_set_kind(), "sampled");
  EXPECT_EQ(sweep.cell_count(), 2u * 2u * 1u * 1u * 2u * 2u * 3u);
  const std::vector<Scenario> batch = sweep.expand();
  ASSERT_EQ(batch.size(), sweep.cell_count());

  const auto same_nodes = [](const model::NodeSet& a,
                             const model::NodeSet& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i)
      if (a[i].budget != b[i].budget ||
          a[i].listen_power != b[i].listen_power ||
          a[i].transmit_power != b[i].transmit_power)
        return false;
    return true;
  };

  for (std::size_t h_i = 0; h_i < 2; ++h_i) {
    const double h = h_i == 0 ? 50.0 : 150.0;
    util::Rng rng(runner::derive_seed(99, static_cast<std::uint64_t>(h)));
    const auto stream = model::sample_heterogeneous_batch(5, h, 3, rng);
    for (std::size_t r = 0; r < 3; ++r) {
      const model::NodeSet& expected = stream[r];
      for (std::size_t p = 0; p < 2; ++p)
        for (std::size_t m = 0; m < 2; ++m)
          for (std::size_t sg = 0; sg < 2; ++sg) {
            const Scenario& s =
                batch[sweep.cell_index(p, m, 0, 0, h_i, sg, r)];
            EXPECT_TRUE(same_nodes(s.nodes, expected))
                << s.name << " at h=" << h << " r=" << r;
          }
    }
    // Replicates are distinct draws, not copies.
    EXPECT_FALSE(same_nodes(stream[0], stream[1]));
  }

  // h shows up in the cell names (and only for the sampled kind).
  EXPECT_NE(batch[0].name.find("/h50/"), std::string::npos) << batch[0].name;
  EXPECT_NE(batch[sweep.cell_index(0, 0, 0, 0, 1)].name.find("/h150/"),
            std::string::npos);
}

TEST(SweepSpec, NamedNodeSetSetterResetsHeterogeneityAxis) {
  SweepSpec sweep("reset");
  sweep.sampled_node_set({10.0, 100.0, 250.0}, 7);
  EXPECT_EQ(sweep.cell_count(), 3u);
  sweep.node_set("homogeneous");
  EXPECT_EQ(sweep.node_set_kind(), "homogeneous");
  EXPECT_EQ(sweep.cell_count(), 1u);  // h axis back to its degenerate value
  EXPECT_EQ(sweep.expand()[0].name,
            "reset/econcast/groupput/N5/rho10_L500_X500/s0.5");

  EXPECT_THROW(sweep.node_set("exotic"), std::invalid_argument);
  // "sampled" needs its parameters; the string form points at the right API.
  EXPECT_THROW(sweep.node_set("sampled"), std::invalid_argument);
  EXPECT_THROW(sweep.sampled_node_set({}, 7), std::invalid_argument);
  // h outside the §VII-B range is caught by validate()/expand().
  EXPECT_THROW(SweepSpec("bad-h").sampled_node_set({5.0}, 1).expand(),
               std::invalid_argument);
  // Sampled networks ignore the power point, so a multi-power sampled sweep
  // would be bitwise-duplicate cells under distinct names — rejected.
  EXPECT_THROW(SweepSpec("dup")
                   .powers({{10.0, 500.0, 500.0}, {10.0, 900.0, 100.0}})
                   .sampled_node_set({50.0}, 1)
                   .validate(),
               std::invalid_argument);
}

TEST(SweepSpec, EdgeListTopologyExpandsAndValidates) {
  const runner::EdgeList ring{{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  const SweepSpec sweep =
      SweepSpec("ring4").node_counts({4}).topology(4, ring);
  EXPECT_EQ(sweep.topology_kind(), "edge_list");
  EXPECT_EQ(sweep.edge_list_nodes(), 4u);
  const std::vector<Scenario> batch = sweep.expand();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].topology.size(), 4u);
  EXPECT_EQ(batch[0].topology.edge_count(), 4u);
  EXPECT_TRUE(batch[0].topology.adjacent(3, 0));
  EXPECT_FALSE(batch[0].topology.adjacent(0, 2));

  // The node-count axis must match the explicit graph.
  EXPECT_THROW(SweepSpec("bad").node_counts({5}).topology(4, ring).expand(),
               std::invalid_argument);
  // Bad graphs are rejected at set time.
  EXPECT_THROW(SweepSpec("loop").topology(3, {{1, 1}}),
               std::invalid_argument);
  // The named-kind setter cannot produce an edge list.
  EXPECT_THROW(SweepSpec("named").topology("edge_list"),
               std::invalid_argument);
}

TEST(SweepSpec, GridValidationNamesTheOffendingCount) {
  SweepSpec sweep("g");
  sweep.topology("grid").node_counts({9, 7});
  try {
    sweep.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("7"), std::string::npos) << e.what();
  }
  EXPECT_THROW(sweep.expand(), std::invalid_argument);
  sweep.node_counts({9, 16});
  EXPECT_NO_THROW(sweep.validate());
}

TEST(SweepSpec, PowerRatioAxisMatchesFig3Construction) {
  const auto points = runner::power_ratio_axis({1.0 / 9, 1.0, 9.0}, 10.0,
                                               1000.0);
  ASSERT_EQ(points.size(), 3u);
  for (const auto& p : points) {
    EXPECT_EQ(p.budget, 10.0);
    EXPECT_NEAR(p.listen_power + p.transmit_power, 1000.0, 1e-9);
  }
  EXPECT_NEAR(points[0].transmit_power / points[0].listen_power, 1.0 / 9,
              1e-12);
  EXPECT_NEAR(points[1].listen_power, 500.0, 1e-9);
  EXPECT_NEAR(points[2].transmit_power / points[2].listen_power, 9.0, 1e-9);
  EXPECT_THROW(runner::power_ratio_axis({0.0}, 10.0, 1000.0),
               std::invalid_argument);
}

TEST(SweepSpec, RejectsEmptyAxesAndZeroReplicates) {
  SweepSpec sweep("bad");
  EXPECT_THROW(sweep.protocols({}), std::invalid_argument);
  EXPECT_THROW(sweep.modes({}), std::invalid_argument);
  EXPECT_THROW(sweep.node_counts({}), std::invalid_argument);
  EXPECT_THROW(sweep.powers({}), std::invalid_argument);
  EXPECT_THROW(sweep.sigmas({}), std::invalid_argument);
  EXPECT_THROW(sweep.replicates(0), std::invalid_argument);
}

TEST(SweepSpec, ExpandedBatchRunsMixedProtocols) {
  // End-to-end: a tiny mixed sweep through the runner, bit-identical across
  // thread counts (the SweepSpec + derive_seed determinism contract).
  proto::SimConfig cfg;
  cfg.duration = 1e4;
  cfg.warmup = 1e3;
  protocol::BirthdayParams birthday;
  birthday.simulate = true;
  birthday.slots = 10000;
  const SweepSpec sweep = SweepSpec("mix")
                              .protocols({protocol::econcast_spec(cfg),
                                          protocol::birthday_spec(birthday),
                                          protocol::oracle_spec(
                                              model::Mode::kGroupput)})
                              .node_counts({4})
                              .sigmas({0.5})
                              .replicates(2);
  const auto batch = sweep.expand();
  const auto serial = runner::ScenarioRunner({1, 11, true}).run(batch);
  const auto parallel = runner::ScenarioRunner({4, 11, true}).run(batch);
  ASSERT_EQ(serial.results.size(), 6u);
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    EXPECT_EQ(serial.results[i].groupput, parallel.results[i].groupput);
    EXPECT_EQ(serial.results[i].packets_received,
              parallel.results[i].packets_received);
  }
  // Replicates differ by derived seed only — the oracle cells (analytic)
  // must agree exactly, the stochastic cells should not.
  EXPECT_EQ(serial.results[sweep.cell_index(2, 0, 0, 0, 0, 0, 0)].groupput,
            serial.results[sweep.cell_index(2, 0, 0, 0, 0, 0, 1)].groupput);
}

}  // namespace
