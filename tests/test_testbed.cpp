// Tests for the eZ430 testbed emulation: capacitor measurement math
// (eqs. (25)-(26)), the firmware loop, ping collisions, regulator overhead,
// and the §VIII observations.
#include <gtest/gtest.h>

#include <cmath>

#include "gibbs/p4_solver.h"
#include "testbed/ez430.h"
#include "testbed/firmware.h"

namespace {

using namespace econcast;
using namespace econcast::testbed;

// -------------------------------------------------------------- capacitor --

TEST(Capacitor, UsableEnergyMatchesPaper) {
  // 0.5 * 5F * (3.6² - 3.0²) = 9.9 J.
  const CapacitorMeter meter(5.0);
  EXPECT_NEAR(meter.usable_energy_mj(), 9900.0, 1.0);
}

TEST(Capacitor, PaperLifetimes) {
  // §VIII-B: ~135 minutes at 1 mW, ~27 minutes at 5 mW (5 F capacitor).
  const CapacitorMeter meter(5.0);
  EXPECT_NEAR(meter.lifetime_minutes(1.0), 165.0, 40.0);
  EXPECT_NEAR(meter.lifetime_minutes(5.0), 33.0, 8.0);
}

TEST(Capacitor, VoltageAfterDischarge) {
  const CapacitorMeter meter(5.0);
  const double v1 = meter.voltage_after(9900.0 / 2.0);  // half the charge
  EXPECT_GT(v1, 3.0);
  EXPECT_LT(v1, 3.6);
  EXPECT_THROW(meter.voltage_after(20000.0), std::domain_error);
}

TEST(Capacitor, NoiselessMeasurementExact) {
  const CapacitorMeter meter(5.0);
  util::Rng rng(1);
  // 1 mW for 30 minutes = 1800 s = 1.8e6 ms -> 1800 mJ.
  const double p = meter.measure_power_mw(1800.0, 1.8e6, 0.0, rng);
  EXPECT_NEAR(p, 1.0, 1e-9);
}

TEST(Capacitor, NoisyMeasurementUnbiasedIsh) {
  const CapacitorMeter meter(5.0);
  util::Rng rng(2);
  double sum = 0.0;
  for (int i = 0; i < 400; ++i)
    sum += meter.measure_power_mw(1800.0, 1.8e6, 0.005, rng);
  EXPECT_NEAR(sum / 400.0, 1.0, 0.05);
}

TEST(Capacitor, RejectsBadConstruction) {
  EXPECT_THROW(CapacitorMeter(0.0), std::invalid_argument);
  EXPECT_THROW(CapacitorMeter(1.0, 3.0, 3.6), std::invalid_argument);
}

// ---------------------------------------------------------------- firmware --

TestbedConfig quick_config(double rho, double sigma, std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.budget_mw = rho;
  cfg.sigma = sigma;
  // The multiplier loop (τ = 30 s) needs emulated hours to settle, as on the
  // real testbed ("each experiment is conducted for up to 24 hours", §VIII);
  // 12 emulated hours cost ~tens of ms here.
  cfg.duration_ms = 12.0 * 3600e3;
  cfg.warmup_ms = 4.0 * 3600e3;
  cfg.seed = seed;
  return cfg;
}

TEST(Firmware, ConsumesNearTargetBudget) {
  // §VIII-D: consumption within ~7% of ρ at σ = 0.25, ~3% at σ = 0.5.
  for (const double sigma : {0.25, 0.5}) {
    const TestbedResult r = run_testbed(quick_config(1.0, sigma, 3));
    EXPECT_NEAR(r.battery_ratio_mean, 1.0, 0.08) << "sigma=" << sigma;
  }
}

TEST(Firmware, ActualPowerExceedsTargetByPaperMargins) {
  // §VIII-B: P exceeds ρ by ~11% at 1 mW and ~4% at 5 mW.
  const TestbedResult r1 = run_testbed(quick_config(1.0, 0.5, 4));
  double p1 = 0.0;
  for (const double p : r1.actual_power_mw) p1 += p;
  p1 /= static_cast<double>(r1.actual_power_mw.size());
  EXPECT_NEAR((p1 - 1.0) / 1.0, 0.11, 0.07);

  const TestbedResult r5 = run_testbed(quick_config(5.0, 0.5, 4));
  double p5 = 0.0;
  for (const double p : r5.actual_power_mw) p5 += p;
  p5 /= static_cast<double>(r5.actual_power_mw.size());
  EXPECT_NEAR((p5 - 5.0) / 5.0, 0.04, 0.06);
}

TEST(Firmware, ThroughputWithinPaperBandOfAchievable) {
  // Fig. 7: experimental throughput lands between ~45% and ~85% of T^σ_g.
  for (const double rho : {1.0, 5.0}) {
    const TestbedConfig cfg = quick_config(rho, 0.5, 5);
    const TestbedResult r = run_testbed(cfg);
    const auto nodes = model::homogeneous(cfg.n, rho, cfg.hw.listen_power_mw,
                                          cfg.hw.transmit_power_mw);
    const double t_sigma =
        gibbs::solve_p4(nodes, model::Mode::kGroupput, cfg.sigma).throughput;
    const double ratio = r.groupput / t_sigma;
    EXPECT_GT(ratio, 0.40) << "rho=" << rho;
    EXPECT_LT(ratio, 1.0) << "rho=" << rho;
  }
}

TEST(Firmware, PingDistributionShapeMatchesTableIV) {
  // Table IV: at ρ=1 mW most packets see no listener; at ρ=5 mW the mass
  // shifts toward 1-2 listeners.
  const TestbedResult r1 = run_testbed(quick_config(1.0, 0.25, 6));
  const TestbedResult r5 = run_testbed(quick_config(5.0, 0.25, 6));
  EXPECT_GT(r1.ping_distribution.fraction(0), 0.55);
  EXPECT_GT(r1.ping_distribution.fraction(0),
            r5.ping_distribution.fraction(0));
  EXPECT_GT(r5.ping_distribution.fraction(1) + r5.ping_distribution.fraction(2),
            r1.ping_distribution.fraction(1) + r1.ping_distribution.fraction(2));
}

TEST(Firmware, PingLossesAreAccounted) {
  const TestbedResult r = run_testbed(quick_config(5.0, 0.25, 7));
  EXPECT_GT(r.pings_sent, 0u);
  // With the default detect probability some decode losses must appear.
  EXPECT_GT(r.pings_lost_decode + r.pings_lost_collision, 0u);
  EXPECT_LT(r.pings_lost_decode + r.pings_lost_collision, r.pings_sent);
}

TEST(Firmware, HigherBudgetYieldsMoreThroughput) {
  const TestbedResult r1 = run_testbed(quick_config(1.0, 0.5, 8));
  const TestbedResult r5 = run_testbed(quick_config(5.0, 0.5, 8));
  EXPECT_GT(r5.groupput, r1.groupput);
}

TEST(Firmware, DeterministicPerSeed) {
  TestbedConfig cfg = quick_config(1.0, 0.5, 12);
  cfg.duration_ms = 30.0 * 60e3;
  cfg.warmup_ms = 10.0 * 60e3;
  const TestbedResult a = run_testbed(cfg);
  const TestbedResult b = run_testbed(cfg);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_DOUBLE_EQ(a.groupput, b.groupput);
}

TEST(Firmware, RejectsBadConfig) {
  TestbedConfig one_node;
  one_node.n = 1;
  EXPECT_THROW(run_testbed(one_node), std::invalid_argument);
  TestbedConfig bad_warmup;
  bad_warmup.duration_ms = 10.0;
  bad_warmup.warmup_ms = 20.0;
  EXPECT_THROW(run_testbed(bad_warmup), std::invalid_argument);
}

TEST(Firmware, CollisionProbabilityGrowsWithTighterPingInterval) {
  // Sanity of the ping-collision model: squeezing the pinging interval makes
  // simultaneously-sent pings overlap far more often (robust in direction,
  // unlike comparing collision counts across budgets, which is dominated by
  // how often multi-listener packets occur at all).
  TestbedConfig wide = quick_config(5.0, 0.25, 9);
  TestbedConfig tight = wide;
  tight.hw.ping_interval_ms = 1.0;  // 0.4 ms pings in a 1 ms window
  const TestbedResult rw = run_testbed(wide);
  const TestbedResult rt = run_testbed(tight);
  auto loss = [](const TestbedResult& r) {
    return r.pings_sent ? static_cast<double>(r.pings_lost_collision) /
                              static_cast<double>(r.pings_sent)
                        : 0.0;
  };
  EXPECT_GT(loss(rt), loss(rw));
}

}  // namespace
