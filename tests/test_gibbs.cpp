// Tests for the Gibbs distribution (19): exact enumeration, the symmetric
// collapse, dual function identities, and the burstiness sums of Appendix E.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gibbs/burstiness.h"
#include "gibbs/exact.h"
#include "gibbs/p4_solver.h"
#include "gibbs/symmetric.h"
#include "util/random.h"

namespace {

using namespace econcast;
using namespace econcast::gibbs;
using model::Mode;

model::NodeSet paper_nodes(std::size_t n = 5) {
  return model::homogeneous(n, 10.0, 500.0, 500.0);
}

TEST(ExactGibbs, DistributionSumsToOne) {
  const ExactGibbs g(paper_nodes(), Mode::kGroupput, 0.5);
  const std::vector<double> eta(5, 0.003);
  const auto pi = g.distribution(eta);
  const double total = std::accumulate(pi.begin(), pi.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ExactGibbs, ZeroEtaFavorsHighThroughputStates) {
  // With η = 0 the weight is exp(T_w/σ): the best groupput state (one
  // transmitter, all others listening) dominates every other single state.
  const ExactGibbs g(paper_nodes(), Mode::kGroupput, 0.5);
  const std::vector<double> eta(5, 0.0);
  const auto pi = g.distribution(eta);
  const auto best = model::state_index(5, model::NetState{0, 0b11110});
  const auto idle = model::state_index(5, model::NetState{-1, 0});
  EXPECT_GT(pi[best], pi[idle]);
}

TEST(ExactGibbs, LargeEtaForcesSleep) {
  const ExactGibbs g(paper_nodes(), Mode::kGroupput, 0.5);
  const std::vector<double> eta(5, 10.0);  // punishing multipliers
  const Marginals m = g.marginals(eta);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_LT(m.alpha[i], 1e-6);
    EXPECT_LT(m.beta[i], 1e-6);
  }
}

TEST(ExactGibbs, MarginalsMatchBruteForce) {
  const auto nodes = paper_nodes(4);
  const ExactGibbs g(nodes, Mode::kGroupput, 0.4);
  const std::vector<double> eta{0.001, 0.002, 0.003, 0.004};
  const Marginals m = g.marginals(eta);
  const auto pi = g.distribution(eta);
  for (std::size_t i = 0; i < 4; ++i) {
    double alpha = 0.0, beta = 0.0;
    model::for_each_state(4, [&](const model::NetState& s) {
      const double p = pi[model::state_index(4, s)];
      if (s.listeners & (1ULL << i)) alpha += p;
      if (s.transmitter == static_cast<int>(i)) beta += p;
    });
    EXPECT_NEAR(m.alpha[i], alpha, 1e-12);
    EXPECT_NEAR(m.beta[i], beta, 1e-12);
  }
}

TEST(ExactGibbs, ExpectedThroughputMatchesBruteForce) {
  const auto nodes = paper_nodes(4);
  for (const Mode mode : {Mode::kGroupput, Mode::kAnyput}) {
    const ExactGibbs g(nodes, mode, 0.3);
    const std::vector<double> eta(4, 0.002);
    const auto pi = g.distribution(eta);
    double expect = 0.0;
    model::for_each_state(4, [&](const model::NetState& s) {
      expect += pi[model::state_index(4, s)] * model::state_throughput(s, mode);
    });
    EXPECT_NEAR(g.marginals(eta).expected_throughput, expect, 1e-12);
  }
}

TEST(ExactGibbs, EntropyMatchesDirectSum) {
  const auto nodes = paper_nodes(4);
  const ExactGibbs g(nodes, Mode::kGroupput, 0.5);
  const std::vector<double> eta(4, 0.004);
  const auto pi = g.distribution(eta);
  double h = 0.0;
  for (const double p : pi)
    if (p > 0.0) h -= p * std::log(p);
  EXPECT_NEAR(g.marginals(eta).entropy, h, 1e-9);
}

TEST(ExactGibbs, SmallSigmaIsNumericallyStable) {
  const ExactGibbs g(paper_nodes(), Mode::kGroupput, 0.02);
  const std::vector<double> eta(5, 0.001);
  const Marginals m = g.marginals(eta);
  EXPECT_TRUE(std::isfinite(m.log_partition));
  EXPECT_TRUE(std::isfinite(m.expected_throughput));
  EXPECT_GE(m.expected_throughput, 0.0);
  EXPECT_LE(m.expected_throughput, 4.0 + 1e-9);
}

TEST(ExactGibbs, DualGradientMatchesFiniteDifference) {
  const auto nodes = paper_nodes(3);
  const ExactGibbs g(nodes, Mode::kGroupput, 0.5);
  std::vector<double> eta{0.002, 0.001, 0.003};
  const auto grad = g.dual_gradient(eta);
  const double h = 1e-7;
  for (std::size_t i = 0; i < 3; ++i) {
    auto hi = eta, lo = eta;
    hi[i] += h;
    lo[i] -= h;
    const double fd = (g.dual_value(hi) - g.dual_value(lo)) / (2.0 * h);
    EXPECT_NEAR(grad[i], fd, 1e-4);
  }
}

TEST(ExactGibbs, DualIsConvexAlongRandomLines) {
  econcast::util::Rng rng(11);
  const auto nodes = paper_nodes(3);
  const ExactGibbs g(nodes, Mode::kAnyput, 0.4);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> a(3), d(3);
    for (std::size_t i = 0; i < 3; ++i) {
      // Keep a + t d >= 0 on t in [0, 1] so the segment stays in the domain
      // (projecting would break convexity along the line).
      a[i] = rng.uniform(0.002, 0.01);
      d[i] = rng.uniform(-0.002, 0.002);
    }
    auto at = [&](double t) {
      std::vector<double> e(3);
      for (std::size_t i = 0; i < 3; ++i) e[i] = a[i] + t * d[i];
      return g.dual_value(e);
    };
    // Midpoint convexity on a segment.
    EXPECT_LE(at(0.5), 0.5 * at(0.0) + 0.5 * at(1.0) + 1e-12);
  }
}

TEST(ExactGibbs, RejectsBadConstruction) {
  EXPECT_THROW(ExactGibbs(paper_nodes(), Mode::kGroupput, 0.0),
               std::invalid_argument);
  EXPECT_THROW(ExactGibbs(model::homogeneous(17, 1, 1, 1), Mode::kGroupput, 1),
               std::invalid_argument);
  const ExactGibbs g(paper_nodes(), Mode::kGroupput, 0.5);
  EXPECT_THROW(g.marginals({0.0, 0.0}), std::invalid_argument);
}

// ------------------------------------------------------ symmetric collapse --

TEST(SymmetricGibbs, MatchesExactEnumeration) {
  for (const Mode mode : {Mode::kGroupput, Mode::kAnyput}) {
    for (const double sigma : {0.25, 0.5, 1.0}) {
      const auto nodes = paper_nodes(6);
      const SymmetricGibbs sym(6, nodes.front(), mode, sigma);
      const ExactGibbs exact(nodes, mode, sigma);
      for (const double eta : {0.0, 0.001, 0.005}) {
        const Marginals ms = sym.marginals(eta);
        const Marginals me = exact.marginals(std::vector<double>(6, eta));
        EXPECT_NEAR(ms.log_partition, me.log_partition, 1e-9)
            << model::to_string(mode) << " sigma=" << sigma << " eta=" << eta;
        EXPECT_NEAR(ms.alpha.front(), me.alpha.front(), 1e-9);
        EXPECT_NEAR(ms.beta.front(), me.beta.front(), 1e-9);
        EXPECT_NEAR(ms.expected_throughput, me.expected_throughput, 1e-9);
        EXPECT_NEAR(ms.entropy, me.entropy, 1e-7);
      }
    }
  }
}

TEST(SymmetricGibbs, BurstSumsMatchExact) {
  const auto nodes = paper_nodes(5);
  for (const Mode mode : {Mode::kGroupput, Mode::kAnyput}) {
    const SymmetricGibbs sym(5, nodes.front(), mode, 0.3);
    const ExactGibbs exact(nodes, mode, 0.3);
    const BurstSums a = sym.burst_sums(0.002);
    const BurstSums b = exact.burst_sums(std::vector<double>(5, 0.002));
    EXPECT_NEAR(a.log_success_mass, b.log_success_mass, 1e-9);
    EXPECT_NEAR(a.log_burst_rate, b.log_burst_rate, 1e-9);
  }
}

TEST(SymmetricGibbs, DualDerivativeMatchesFiniteDifference) {
  const SymmetricGibbs sym(8, {10.0, 500.0, 500.0}, Mode::kGroupput, 0.5);
  for (const double eta : {0.001, 0.004, 0.01}) {
    const double h = 1e-8;
    const double fd = (sym.dual_value(eta + h) - sym.dual_value(eta - h)) /
                      (2.0 * h);
    EXPECT_NEAR(sym.dual_derivative(eta), fd, 1e-3);
  }
}

TEST(SymmetricGibbs, OptimalEtaSatisfiesBudget) {
  const SymmetricGibbs sym(5, {10.0, 500.0, 500.0}, Mode::kGroupput, 0.5);
  const double eta = sym.solve_optimal_eta();
  const Marginals m = sym.marginals(eta);
  const double power = m.alpha.front() * 500.0 + m.beta.front() * 500.0;
  EXPECT_NEAR(power, 10.0, 1e-6);  // complementary slackness with η* > 0
  EXPECT_GT(eta, 0.0);
}

TEST(SymmetricGibbs, EnergyRichNetworkHasZeroEta) {
  // Budget large enough that damping is unnecessary.
  const SymmetricGibbs sym(4, {1e6, 1.0, 1.0}, Mode::kGroupput, 0.5);
  EXPECT_DOUBLE_EQ(sym.solve_optimal_eta(), 0.0);
}

TEST(SymmetricGibbs, ScalesToLargeN) {
  const SymmetricGibbs sym(200, {10.0, 500.0, 500.0}, Mode::kGroupput, 0.25);
  const double eta = sym.solve_optimal_eta();
  EXPECT_TRUE(std::isfinite(eta));
  const Marginals m = sym.marginals(eta);
  EXPECT_GT(m.expected_throughput, 0.0);
}

// ------------------------------------------------------------- burstiness --

TEST(Burstiness, AnyputClosedFormIndependentOfN) {
  // Eq. (35): B_a = exp(1/σ) regardless of N.
  for (const std::size_t n : {5u, 10u}) {
    const double b =
        average_burst_length(paper_nodes(n), Mode::kAnyput, 0.5);
    EXPECT_NEAR(b, std::exp(2.0), 0.02) << "N=" << n;
  }
  EXPECT_NEAR(anyput_burst_closed_form(0.25), std::exp(4.0), 1e-9);
}

TEST(Burstiness, GroupputGrowsAsSigmaShrinks) {
  double prev = 0.0;
  for (const double sigma : {1.0, 0.5, 0.25, 0.15}) {
    const double b =
        average_burst_length(paper_nodes(5), Mode::kGroupput, sigma);
    EXPECT_GT(b, prev) << "sigma=" << sigma;
    prev = b;
  }
}

TEST(Burstiness, GroupputGrowsWithN) {
  // Fig. 4(a): more listeners -> longer captures.
  const double b5 =
      average_burst_length(paper_nodes(5), Mode::kGroupput, 0.25);
  const double b10 =
      average_burst_length(paper_nodes(10), Mode::kGroupput, 0.25);
  EXPECT_GT(b10, b5);
}

TEST(Burstiness, GroupputAtLeastOnePacket) {
  EXPECT_GE(average_burst_length(paper_nodes(5), Mode::kGroupput, 1.0), 1.0);
}

TEST(Burstiness, PaperFigure4Magnitudes) {
  // §VII-D quotes an average burst length of ~85 for σ = 0.25, N = 10 and
  // ~4e5 for σ = 0.1 (we require the same order of magnitude).
  const double b25 =
      average_burst_length(paper_nodes(10), Mode::kGroupput, 0.25);
  EXPECT_GT(b25, 40.0);
  EXPECT_LT(b25, 200.0);
  const double b10 =
      average_burst_length(paper_nodes(10), Mode::kGroupput, 0.1);
  EXPECT_GT(b10, 5e4);
  EXPECT_LT(b10, 5e6);
}

TEST(Burstiness, RejectsBadSigma) {
  EXPECT_THROW(anyput_burst_closed_form(0.0), std::invalid_argument);
  EXPECT_THROW(anyput_burst_closed_form(-1.0), std::invalid_argument);
}

}  // namespace
