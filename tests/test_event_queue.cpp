// The pluggable event-queue kernel: differential tests driving both
// backends (binary heap — the reference — and the calendar/ladder queue)
// with identical push/schedule/cancel/pop sequences and asserting identical
// pop streams and counters; cancellation semantics; stale-drop accounting;
// the shared reserve_for_nodes capacity policy; and end-to-end cross-engine
// equality of the two discrete-event simulators (which is what makes the
// backend a pure performance knob).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "econcast/simulation.h"
#include "model/network.h"
#include "model/node_params.h"
#include "sim/event_queue.h"
#include "testbed/firmware.h"
#include "util/random.h"

namespace {

using namespace econcast;
using sim::Event;
using sim::EventKind;
using sim::EventQueue;
using sim::QueueEngine;

constexpr QueueEngine kEngines[] = {QueueEngine::kBinaryHeap,
                                    QueueEngine::kCalendar};

// ------------------------------------------------------- per-engine basics --

class EventQueueEngines : public ::testing::TestWithParam<QueueEngine> {};

TEST_P(EventQueueEngines, OrdersByTimeThenSeq) {
  EventQueue q(GetParam());
  q.push(3.0, EventKind::kTransition, 0);
  q.push(1.0, EventKind::kPacketEnd, 1);
  q.push(2.0, EventKind::kIntervalEnd, 2);
  q.push(1.0, EventKind::kTransition, 3);  // ties pop in push order
  EXPECT_EQ(q.pop().node, 1u);
  EXPECT_EQ(q.pop().node, 3u);
  EXPECT_EQ(q.pop().node, 2u);
  EXPECT_EQ(q.pop().node, 0u);
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueEngines, StaleDropAccounting) {
  EventQueue q(GetParam());
  q.schedule(1.0, EventKind::kTransition, 0);
  q.schedule(2.0, EventKind::kTransition, 0);  // replaces the first
  q.schedule(3.0, EventKind::kEnergyDepleted, 0);
  q.cancel(0, EventKind::kEnergyDepleted);
  q.push(4.0, EventKind::kPacketEnd, 0);
  EXPECT_DOUBLE_EQ(q.pop().time, 2.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 4.0);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.stats().pushes, 4u);
  EXPECT_EQ(q.stats().pops, 2u);
  EXPECT_EQ(q.stats().stale_drops, 2u);
  EXPECT_EQ(q.stats().peak_live, 4u);
}

TEST_P(EventQueueEngines, EmptyPopAndTopThrow) {
  EventQueue q(GetParam());
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW(q.top(), std::logic_error);
  // A fully cancelled queue is empty too, and pop still throws after the
  // stale entries are pruned.
  q.schedule(1.0, EventKind::kTransition, 0);
  q.cancel(0, EventKind::kTransition);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_EQ(q.stats().stale_drops, 1u);
}

TEST_P(EventQueueEngines, TopPrunesButDoesNotConsume) {
  EventQueue q(GetParam());
  q.schedule(1.0, EventKind::kTransition, 0);
  q.schedule(2.0, EventKind::kTransition, 0);
  EXPECT_DOUBLE_EQ(q.top().time, 2.0);
  EXPECT_EQ(q.stats().stale_drops, 1u);  // pruned while peeking
  EXPECT_DOUBLE_EQ(q.top().time, 2.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 2.0);
  EXPECT_EQ(q.stats().pops, 1u);
}

TEST_P(EventQueueEngines, ClearEmptiesAndQueueRemainsUsable) {
  EventQueue q(GetParam());
  for (int i = 0; i < 100; ++i)
    q.push(static_cast<double>(100 - i), EventKind::kCustom, 0);
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  q.push(7.0, EventKind::kCustom, 3);
  EXPECT_DOUBLE_EQ(q.pop().time, 7.0);
}

TEST_P(EventQueueEngines, ReserveForNodesAppliesSharedPolicy) {
  EventQueue q(GetParam());
  q.reserve_for_nodes(100);
  EXPECT_GE(q.capacity(), EventQueue::capacity_for_nodes(100));
  EXPECT_EQ(EventQueue::capacity_for_nodes(100), 408u);
}

TEST_P(EventQueueEngines, CompactionBoundsStaleAccumulation) {
  // A sleeping node's far-future wake-up superseded over and over: pure
  // lazy deletion would store every stale copy until the end of time (the
  // fig. 6 workload peaks at ~500x the live population). Compaction must
  // keep the stored count within a small multiple of the live count while
  // preserving the live events and the conservation identity.
  EventQueue q(GetParam());
  const std::uint32_t n = 8;
  q.reserve_for_nodes(n);
  for (int round = 0; round < 4000; ++round)
    for (std::uint32_t node = 0; node < n; ++node)
      q.schedule(1e9 + static_cast<double>(round * n + node),
                 EventKind::kTransition, node);
  q.push(0.5, EventKind::kPacketEnd, 0);
  // 8 live wake-ups + 1 durable event; anything near 32001 means stale
  // copies survived.
  EXPECT_LE(q.size(), 2u * (n + 1) + 64u);
  EXPECT_DOUBLE_EQ(q.pop().time, 0.5);
  for (std::uint32_t node = 0; node < n; ++node) {
    const Event e = q.pop();
    EXPECT_EQ(e.node, node);  // last-scheduled round, ascending times
    EXPECT_DOUBLE_EQ(e.time, 1e9 + static_cast<double>(3999 * n + node));
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.stats().pushes,
            q.stats().pops + q.stats().stale_drops);
}

TEST_P(EventQueueEngines, ManySimultaneousEventsPopInPushOrder) {
  // Degenerate for a time-bucketed backend: every event at the same time.
  EventQueue q(GetParam());
  for (std::uint32_t i = 0; i < 500; ++i)
    q.push(42.0, EventKind::kTransition, i);
  for (std::uint32_t i = 0; i < 500; ++i) EXPECT_EQ(q.pop().node, i);
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueEngines, FarFutureOutliersDoNotDisturbNearOrder) {
  // The skew the ladder exists for: a dense near cluster plus wake-ups
  // orders of magnitude out, interleaved with pops.
  EventQueue q(GetParam());
  for (std::uint32_t i = 0; i < 64; ++i) {
    q.push(1.0 + 0.001 * i, EventKind::kTransition, i);
    q.push(1e6 + 17.0 * i, EventKind::kTransition, 1000 + i);
  }
  double last = 0.0;
  for (int i = 0; i < 64; ++i) {
    const Event e = q.pop();
    EXPECT_TRUE(e.node < 64u || e.node == 9999u);  // never a far outlier
    EXPECT_GE(e.time, last);
    last = e.time;
    q.push(last + 0.0005, EventKind::kPacketEnd, 9999);  // keep feeding near
  }
  std::size_t remaining = q.size();
  EXPECT_EQ(remaining, 128u);  // 64 far + 64 near packet-ends
  while (!q.empty()) {
    const Event e = q.pop();
    EXPECT_GE(e.time, last);
    last = e.time;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, EventQueueEngines,
                         ::testing::ValuesIn(kEngines),
                         [](const auto& param_info) {
                           return param_info.param == QueueEngine::kCalendar
                                      ? std::string("Calendar")
                                      : std::string("BinaryHeap");
                         });

// ------------------------------------------------------ engine token codec --

TEST(QueueEngineTokens, RoundTripAndRejection) {
  EXPECT_EQ(sim::queue_engine_from_token("binary-heap"),
            QueueEngine::kBinaryHeap);
  EXPECT_EQ(sim::queue_engine_from_token("calendar"), QueueEngine::kCalendar);
  EXPECT_STREQ(sim::to_token(QueueEngine::kBinaryHeap), "binary-heap");
  EXPECT_STREQ(sim::to_token(QueueEngine::kCalendar), "calendar");
  EXPECT_THROW(sim::queue_engine_from_token("fibonacci"),
               std::invalid_argument);
  EXPECT_THROW(sim::queue_engine_from_token(""), std::invalid_argument);
}

// ------------------------------------------------------ differential tests --

/// Drives both backends with one operation sequence and asserts identical
/// pop streams (every Event field) and identical counters throughout.
class DifferentialHarness {
 public:
  DifferentialHarness()
      : heap_(QueueEngine::kBinaryHeap), calendar_(QueueEngine::kCalendar) {}

  void push(double time, EventKind kind, std::uint32_t node) {
    heap_.push(time, kind, node);
    calendar_.push(time, kind, node);
  }
  void schedule(double time, EventKind kind, std::uint32_t node) {
    heap_.schedule(time, kind, node);
    calendar_.schedule(time, kind, node);
  }
  void cancel(std::uint32_t node, EventKind kind) {
    heap_.cancel(node, kind);
    calendar_.cancel(node, kind);
  }

  /// Pops both queues (expecting both non-empty) and checks the events
  /// match; returns the popped time.
  double pop() {
    const bool heap_empty = heap_.empty();
    EXPECT_EQ(heap_empty, calendar_.empty());
    EXPECT_FALSE(heap_empty);
    const Event a = heap_.pop();
    const Event b = calendar_.pop();
    EXPECT_DOUBLE_EQ(a.time, b.time);
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.node, b.node);
    EXPECT_EQ(a.cancellable, b.cancellable);
    return a.time;
  }

  bool empty() {
    const bool e = heap_.empty();
    EXPECT_EQ(e, calendar_.empty());
    return e;
  }

  void drain_and_compare() {
    while (!empty()) pop();
    EXPECT_EQ(heap_.stats().pushes, calendar_.stats().pushes);
    EXPECT_EQ(heap_.stats().pops, calendar_.stats().pops);
    EXPECT_EQ(heap_.stats().stale_drops, calendar_.stats().stale_drops);
    EXPECT_EQ(heap_.stats().peak_live, calendar_.stats().peak_live);
  }

 private:
  EventQueue heap_;
  EventQueue calendar_;
};

EventKind random_kind(util::Rng& rng) {
  return static_cast<EventKind>(
      static_cast<int>(rng.uniform() * static_cast<double>(
                                           sim::kEventKindCount)));
}

TEST(EventQueueDifferential, SimLikeMonotoneWorkload) {
  // The simulator's pattern: time only moves forward, pushes land at
  // now + gap with wildly mixed scales (packet ends at +1, sleepers far
  // out), schedules replace pending transitions, occasional bare cancels.
  for (const std::uint64_t seed : {1u, 7u, 23u, 1234u}) {
    util::Rng rng(seed);
    DifferentialHarness q;
    const std::uint32_t n = 40;
    double now = 0.0;
    for (int op = 0; op < 20000; ++op) {
      const double r = rng.uniform();
      const auto node = static_cast<std::uint32_t>(rng.uniform() * n);
      // Mixed-scale gaps: 1e-3 .. 1e5.
      const double gap = rng.exponential(1.0) *
                         (rng.uniform() < 0.1 ? 1e5 : 1.0) *
                         (rng.uniform() < 0.3 ? 1e-3 : 1.0);
      if (r < 0.35) {
        q.schedule(now + gap, random_kind(rng), node);
      } else if (r < 0.45) {
        q.push(now + gap, random_kind(rng), node);
      } else if (r < 0.55) {
        q.cancel(node, random_kind(rng));
      } else if (!q.empty()) {
        now = q.pop();
      }
    }
    q.drain_and_compare();
  }
}

TEST(EventQueueDifferential, AdversarialOutOfOrderPushes) {
  // Not a pattern the simulators produce: pushes earlier than the last
  // popped time (the calendar clamps them into its current bucket), dense
  // ties, and cancel storms. The reference heap defines the contract.
  for (const std::uint64_t seed : {3u, 99u, 4321u}) {
    util::Rng rng(seed);
    DifferentialHarness q;
    const std::uint32_t n = 12;
    for (int op = 0; op < 8000; ++op) {
      const double r = rng.uniform();
      const auto node = static_cast<std::uint32_t>(rng.uniform() * n);
      // Absolute times in [0, 100), ignoring pop progress; coarse grid so
      // exact ties are frequent.
      const double t =
          std::floor(rng.uniform() * 1000.0) / 10.0;
      if (r < 0.40) {
        q.schedule(t, random_kind(rng), node);
      } else if (r < 0.55) {
        q.push(t, random_kind(rng), node);
      } else if (r < 0.65) {
        q.cancel(node, random_kind(rng));
      } else if (!q.empty()) {
        q.pop();
      }
    }
    q.drain_and_compare();
  }
}

TEST(EventQueueDifferential, BurstsOfSimultaneousSchedules) {
  DifferentialHarness q;
  for (int round = 0; round < 50; ++round) {
    const double t = static_cast<double>(round);
    for (std::uint32_t i = 0; i < 64; ++i)
      q.schedule(t + 0.5, EventKind::kTransition, i);
    for (std::uint32_t i = 0; i < 64; i += 2)
      q.cancel(i, EventKind::kTransition);  // half become stale
    for (int k = 0; k < 40 && !q.empty(); ++k) q.pop();
  }
  q.drain_and_compare();
}

// -------------------------------------------- cross-engine end-to-end runs --

TEST(CrossEngine, SimulationResultsAreIdentical) {
  const auto nodes = model::homogeneous(9, 10.0, 500.0, 500.0);
  proto::SimConfig cfg;
  cfg.sigma = 0.4;
  cfg.duration = 3e4;
  cfg.warmup = 1e4;
  cfg.seed = 99;
  cfg.energy_guard = true;  // exercises the kEnergyDepleted cancellation path
  cfg.initial_energy = 1e4;
  const auto topo = model::Topology::grid(3, 3);

  cfg.queue_engine = QueueEngine::kBinaryHeap;
  const proto::SimResult a = proto::Simulation(nodes, topo, cfg).run();
  cfg.queue_engine = QueueEngine::kCalendar;
  const proto::SimResult b = proto::Simulation(nodes, topo, cfg).run();

  EXPECT_DOUBLE_EQ(a.groupput, b.groupput);
  EXPECT_DOUBLE_EQ(a.anyput, b.anyput);
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  EXPECT_EQ(a.packets_received, b.packets_received);
  EXPECT_EQ(a.bursts, b.bursts);
  EXPECT_EQ(a.events_processed, b.events_processed);
  ASSERT_EQ(a.final_eta.size(), b.final_eta.size());
  for (std::size_t i = 0; i < a.final_eta.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.final_eta[i], b.final_eta[i]);
    EXPECT_DOUBLE_EQ(a.avg_power[i], b.avg_power[i]);
  }
  // The counters are backend-independent too (staleness resolves in pop
  // order inside the facade).
  EXPECT_EQ(a.queue_stats.pushes, b.queue_stats.pushes);
  EXPECT_EQ(a.queue_stats.pops, b.queue_stats.pops);
  EXPECT_EQ(a.queue_stats.stale_drops, b.queue_stats.stale_drops);
  EXPECT_EQ(a.queue_stats.peak_live, b.queue_stats.peak_live);
  // And they reconcile: every push was either handled or pruned (nothing
  // popped after the horizon: duration may leave events in the queue).
  EXPECT_GE(a.queue_stats.pushes,
            a.queue_stats.pops + a.queue_stats.stale_drops);
}

TEST(CrossEngine, FirmwareResultsAreIdentical) {
  testbed::TestbedConfig cfg;
  cfg.n = 10;
  cfg.duration_ms = 30.0 * 60.0 * 1000.0;
  cfg.warmup_ms = 5.0 * 60.0 * 1000.0;
  cfg.seed = 7;

  cfg.queue_engine = QueueEngine::kBinaryHeap;
  const testbed::TestbedResult a = testbed::run_testbed(cfg);
  cfg.queue_engine = QueueEngine::kCalendar;
  const testbed::TestbedResult b = testbed::run_testbed(cfg);

  EXPECT_DOUBLE_EQ(a.groupput, b.groupput);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.bursts, b.bursts);
  EXPECT_EQ(a.pings_sent, b.pings_sent);
  ASSERT_EQ(a.final_eta.size(), b.final_eta.size());
  for (std::size_t i = 0; i < a.final_eta.size(); ++i)
    EXPECT_DOUBLE_EQ(a.final_eta[i], b.final_eta[i]);
  EXPECT_EQ(a.queue_stats.pops, b.queue_stats.pops);
  EXPECT_EQ(a.queue_stats.stale_drops, b.queue_stats.stale_drops);
}

}  // namespace
