// Tests for the sweep-manifest serialization layer and the
// checkpoint/resume SweepSession:
//  - ProtocolSpec / Scenario / SweepSpec JSON round trips (re-expansion
//    yields identical batch names, seeds and simulation results),
//  - SimResult JSON round trips bit-identically (RunningStats internals
//    included),
//  - resume-after-kill: truncate the results JSONL mid-sweep (both at a line
//    boundary and mid-line), resume, and compare byte-for-byte against an
//    uninterrupted run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "protocol/protocol_json.h"
#include "runner/manifest.h"
#include "runner/scenario_runner.h"
#include "runner/sweep_session.h"

namespace {

using namespace econcast;
namespace fs = std::filesystem;
namespace json = util::json;

fs::path test_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const fs::path dir = fs::path(::testing::TempDir()) /
                       (std::string("econcast_") + info->test_suite_name() +
                        "_" + info->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// A small stochastic + analytic sweep: 2 protocols x 2 N x 2 σ x 2
/// replicates = 16 cells, a couple of seconds end to end.
runner::SweepSpec small_sweep() {
  proto::SimConfig cfg;
  cfg.duration = 4e3;
  cfg.warmup = 5e2;
  return runner::SweepSpec("mini")
      .protocols({protocol::econcast_spec(cfg),
                  protocol::p4_spec(model::Mode::kGroupput, 0.5)})
      .node_counts({3, 4})
      .sigmas({0.5, 0.75})
      .replicates(2);
}

// ------------------------------------------------- ProtocolSpec round trip --

TEST(ProtocolJson, AllBuiltinSpecsRoundTrip) {
  proto::SimConfig cfg;
  cfg.mode = model::Mode::kAnyput;
  cfg.variant = proto::Variant::kNonCapture;
  cfg.sigma = 0.3125;
  cfg.multiplier.schedule = proto::StepSchedule::kTheorem1;
  cfg.multiplier.delta = 0.07;
  cfg.eta_init = {0.001, 0.002, 0.003};
  cfg.auto_step_gain = 0.011;
  cfg.estimator.kind = proto::EstimatorKind::kBinomialThinning;
  cfg.estimator.detect_prob = 0.9;
  cfg.duration = 12345.5;
  cfg.seed = 0xDEADBEEFCAFEF00DULL;  // > 2^53: must survive as a string
  cfg.energy_guard = true;
  cfg.initial_energy = 777.0;

  protocol::PandaParams panda;
  panda.optimize = false;
  panda.wake_rate = 0.0125;
  panda.listen_window = 2.5;
  panda.simulate = true;

  protocol::BirthdayParams birthday;
  birthday.slots = (1ULL << 60) + 7;  // u64 string codec on the wire

  std::vector<protocol::ProtocolSpec> specs{
      protocol::econcast_spec(cfg),
      protocol::p4_spec(model::Mode::kAnyput, 0.125),
      protocol::oracle_spec(model::Mode::kAnyput),
      protocol::panda_spec(panda),
      protocol::birthday_spec(birthday),
      protocol::searchlight_spec({0.025, 0.0005}),
      protocol::testbed_spec({0.2, 1e6, 1e5, false}),
  };
  specs[0].seed = 0xFFFFFFFFFFFFFFFFULL;

  for (const protocol::ProtocolSpec& spec : specs) {
    SCOPED_TRACE(spec.name);
    const json::Value wire = protocol::to_json(spec);
    const protocol::ProtocolSpec back =
        protocol::spec_from_json(json::parse(json::dump(wire)));
    EXPECT_EQ(back.name, spec.name);
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_EQ(protocol::effective_seed(back), protocol::effective_seed(spec));
    // Field-by-field equality via the canonical dump.
    EXPECT_EQ(json::dump(protocol::to_json(back)), json::dump(wire));
  }
}

TEST(ProtocolJson, RejectsUnknownAndMismatched) {
  protocol::ProtocolSpec custom;
  custom.name = "my-custom-protocol";
  EXPECT_THROW(protocol::to_json(custom), json::Error);

  protocol::ProtocolSpec mismatched = protocol::panda_spec();
  mismatched.name = "birthday";  // params stay PandaParams
  EXPECT_THROW(protocol::to_json(mismatched), json::Error);

  EXPECT_THROW(protocol::spec_from_json(
                   json::parse(R"({"name":"carrier-pigeon","params":{}})")),
               json::Error);
}

// ---------------------------------------------------- SimResult round trip --

TEST(ProtocolJson, SimResultRoundTripsBitIdentically) {
  // A real stochastic result exercises every field.
  proto::SimConfig cfg;
  cfg.duration = 6e3;
  cfg.warmup = 1e3;
  cfg.seed = 99;
  const auto nodes = model::homogeneous(4, 10.0, 500.0, 500.0);
  const auto spec = protocol::econcast_spec(cfg);
  const auto sim = protocol::ProtocolRegistry::global().create(spec)->make_sim(
      nodes, model::Topology::clique(4), 1234567890123456789ULL);
  const protocol::SimResult r = sim->run();
  ASSERT_GT(r.packets_received, 0u);
  ASSERT_GT(r.burst_lengths.count(), 0u);
  ASSERT_FALSE(r.latencies.samples().empty());
  ASSERT_FALSE(r.extras.empty());

  const protocol::SimResult back = protocol::sim_result_from_json(
      json::parse(json::dump(protocol::to_json(r))));
  EXPECT_EQ(back.measured_window, r.measured_window);
  EXPECT_EQ(back.groupput, r.groupput);
  EXPECT_EQ(back.anyput, r.anyput);
  EXPECT_EQ(back.avg_power, r.avg_power);
  EXPECT_EQ(back.listen_fraction, r.listen_fraction);
  EXPECT_EQ(back.transmit_fraction, r.transmit_fraction);
  EXPECT_EQ(back.burst_lengths.count(), r.burst_lengths.count());
  EXPECT_EQ(back.burst_lengths.mean(), r.burst_lengths.mean());
  EXPECT_EQ(back.burst_lengths.m2(), r.burst_lengths.m2());
  EXPECT_EQ(back.burst_lengths.min(), r.burst_lengths.min());
  EXPECT_EQ(back.burst_lengths.max(), r.burst_lengths.max());
  EXPECT_EQ(back.latencies.samples(), r.latencies.samples());
  EXPECT_EQ(back.packets_sent, r.packets_sent);
  EXPECT_EQ(back.packets_received, r.packets_received);
  EXPECT_EQ(back.extras, r.extras);
}

// ------------------------------------------------------ Scenario round trip --

TEST(ManifestJson, ScenarioRoundTripRunsIdentically) {
  proto::SimConfig cfg;
  cfg.sigma = 0.4;
  cfg.duration = 3e3;
  const runner::Scenario original = runner::econcast_scenario(
      "grid-cell", model::homogeneous(6, 10.0, 480.0, 520.0),
      model::Topology::grid(2, 3), cfg);

  const runner::Scenario back = runner::scenario_from_json(
      json::parse(json::dump(runner::to_json(original))));
  EXPECT_EQ(back.name, original.name);
  ASSERT_EQ(back.nodes.size(), original.nodes.size());
  EXPECT_EQ(back.topology.size(), original.topology.size());
  EXPECT_EQ(back.topology.edge_count(), original.topology.edge_count());
  for (std::size_t i = 0; i < back.topology.size(); ++i)
    EXPECT_EQ(back.topology.neighbors(i), original.topology.neighbors(i));

  // The reconstructed scenario must simulate bit-identically.
  const runner::ScenarioRunner r(runner::RunnerOptions{1, 5, true});
  const auto a = r.run({original});
  const auto b = r.run({back});
  EXPECT_EQ(a.results[0].groupput, b.results[0].groupput);
  EXPECT_EQ(a.results[0].packets_received, b.results[0].packets_received);
  EXPECT_EQ(a.results[0].avg_power, b.results[0].avg_power);
}

// ----------------------------------------------------- SweepSpec round trip --

TEST(ManifestJson, SweepSpecReExpandsIdentically) {
  const runner::SweepSpec spec =
      runner::SweepSpec("fig3a-like")
          .protocols({protocol::p4_spec(model::Mode::kGroupput, 0.5),
                      protocol::panda_spec(), protocol::birthday_spec(),
                      protocol::searchlight_spec(),
                      protocol::oracle_spec(model::Mode::kGroupput)})
          .modes({model::Mode::kGroupput, model::Mode::kAnyput})
          .node_counts({4, 9})
          .powers(runner::power_ratio_axis({0.25, 1.0, 4.0}, 10.0, 1000.0))
          .sigmas({0.1, 0.25, 0.5})
          .replicates(2)
          .topology("grid");

  const runner::SweepSpec back = runner::sweep_spec_from_json(
      json::parse(json::dump(runner::to_json(spec))));
  EXPECT_EQ(back.name(), spec.name());
  EXPECT_EQ(back.topology_kind(), "grid");
  EXPECT_EQ(back.cell_count(), spec.cell_count());

  const std::vector<runner::Scenario> a = spec.expand();
  const std::vector<runner::Scenario> b = back.expand();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(protocol::effective_seed(a[i].protocol),
              protocol::effective_seed(b[i].protocol));
    // derive_seed depends only on (base, index): identical by construction —
    // assert the protocols themselves match too, via the canonical dump.
    EXPECT_EQ(json::dump(protocol::to_json(a[i].protocol)),
              json::dump(protocol::to_json(b[i].protocol)));
    EXPECT_EQ(a[i].topology.edge_count(), b[i].topology.edge_count());
  }
}

TEST(ManifestJson, HeterogeneousSweepRoundTripsBitIdentically) {
  // The schema-v2 node_set object: a sampled sweep must re-expand to the
  // exact same batch — names, sampled node parameters (bitwise), protocols.
  const runner::SweepSpec spec =
      runner::SweepSpec("fig2-like")
          .protocols({protocol::p4_spec(model::Mode::kGroupput, 0.5),
                      protocol::oracle_spec(model::Mode::kGroupput)})
          .modes({model::Mode::kGroupput, model::Mode::kAnyput})
          .sigmas({0.1, 0.5})
          .replicates(2)
          .sampled_node_set({10.0, 150.0, 250.0}, 0xF162000);

  const runner::SweepSpec back = runner::sweep_spec_from_json(
      json::parse(json::dump(runner::to_json(spec))));
  EXPECT_EQ(back.node_set_kind(), "sampled");
  EXPECT_EQ(back.sample_seed(), 0xF162000u);
  EXPECT_EQ(back.heterogeneity_axis(), spec.heterogeneity_axis());
  EXPECT_EQ(back.cell_count(), spec.cell_count());

  const std::vector<runner::Scenario> a = spec.expand();
  const std::vector<runner::Scenario> b = back.expand();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a[i].name, b[i].name);
    ASSERT_EQ(a[i].nodes.size(), b[i].nodes.size());
    for (std::size_t k = 0; k < a[i].nodes.size(); ++k) {
      EXPECT_EQ(a[i].nodes[k].budget, b[i].nodes[k].budget);
      EXPECT_EQ(a[i].nodes[k].listen_power, b[i].nodes[k].listen_power);
      EXPECT_EQ(a[i].nodes[k].transmit_power, b[i].nodes[k].transmit_power);
    }
    EXPECT_EQ(json::dump(protocol::to_json(a[i].protocol)),
              json::dump(protocol::to_json(b[i].protocol)));
  }
}

TEST(ManifestJson, EdgeListTopologyRoundTripsBitIdentically) {
  const runner::EdgeList edges{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {1, 2}};
  proto::SimConfig cfg;
  cfg.duration = 3e3;
  const runner::SweepSpec spec =
      runner::SweepSpec("graph")
          .protocols({protocol::econcast_spec(cfg)})
          .node_counts({4})
          .sigmas({0.25, 0.5})
          .topology(4, edges);

  const runner::SweepSpec back = runner::sweep_spec_from_json(
      json::parse(json::dump(runner::to_json(spec))));
  EXPECT_EQ(back.topology_kind(), "edge_list");
  EXPECT_EQ(back.edge_list_nodes(), 4u);
  EXPECT_EQ(back.edge_list(), edges);

  const std::vector<runner::Scenario> a = spec.expand();
  const std::vector<runner::Scenario> b = back.expand();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    ASSERT_EQ(a[i].topology.size(), b[i].topology.size());
    for (std::size_t v = 0; v < a[i].topology.size(); ++v)
      EXPECT_EQ(a[i].topology.neighbors(v), b[i].topology.neighbors(v));
  }
  // Named kinds are also accepted in object form.
  const runner::SweepSpec named = runner::sweep_spec_from_json(json::parse(
      R"({"name":"obj","topology":{"kind":"ring"},"node_counts":[5]})"));
  EXPECT_EQ(named.topology_kind(), "ring");
}

TEST(ManifestJson, RejectsUnknownSchemaVersions) {
  const std::string sweep_body =
      R"("sweep": {"name": "v", "node_counts": [4]})";
  // Current and legacy version keys both load...
  EXPECT_NO_THROW(runner::manifest_from_json(
      json::parse("{\"schema_version\": 2, " + sweep_body + "}")));
  EXPECT_NO_THROW(runner::manifest_from_json(
      json::parse("{\"version\": 1, " + sweep_body + "}")));
  // ...anything this build does not understand is rejected up front.
  for (const char* version :
       {"\"schema_version\": 3", "\"schema_version\": 1.5",
        "\"version\": 99"}) {
    SCOPED_TRACE(version);
    EXPECT_THROW(runner::manifest_from_json(json::parse(
                     "{" + std::string(version) + ", " + sweep_body + "}")),
                 json::Error);
  }
  // A manifest with no version key at all is rejected too — a renamed
  // version key must fail loudly, not parse under the wrong semantics.
  EXPECT_THROW(
      runner::manifest_from_json(json::parse("{" + sweep_body + "}")),
      json::Error);
}

TEST(ManifestJson, RejectsUnknownNodeSetKinds) {
  const auto sweep_with = [](const std::string& node_set) {
    return json::parse(R"({"name": "x", "node_counts": [4], "node_set": )" +
                       node_set + "}");
  };
  EXPECT_NO_THROW(runner::sweep_spec_from_json(sweep_with(R"("homogeneous")")));
  EXPECT_THROW(runner::sweep_spec_from_json(sweep_with(R"("exotic")")),
               std::invalid_argument);
  EXPECT_THROW(runner::sweep_spec_from_json(
                   sweep_with(R"({"kind": "exotic", "h": [10]})")),
               std::invalid_argument);
  // The string form of "sampled" lacks its parameters.
  EXPECT_THROW(runner::sweep_spec_from_json(sweep_with(R"("sampled")")),
               std::invalid_argument);
  // The object form requires both the h axis and the sampling seed —
  // sampled networks must derive from the manifest alone.
  EXPECT_THROW(runner::sweep_spec_from_json(
                   sweep_with(R"({"kind": "sampled"})")),
               json::Error);
  EXPECT_THROW(runner::sweep_spec_from_json(
                   sweep_with(R"({"kind": "sampled", "h": [10, 50]})")),
               json::Error);
  // Non-finite spec values are caught at the write, next to the cause —
  // they would otherwise serialize as null and fail only at reload.
  EXPECT_THROW(
      runner::to_json(runner::SweepSpec("nan-axis").sigmas(
          {std::numeric_limits<double>::quiet_NaN()})),
      std::invalid_argument);
  EXPECT_THROW(
      protocol::to_json(protocol::p4_spec(
          model::Mode::kGroupput, std::numeric_limits<double>::quiet_NaN())),
      json::Error);
  // Counts and indices must be non-negative integers — a negative or
  // fractional JSON number is a named parse error, not a silent cast.
  for (const char* bad :
       {R"({"name":"e","node_counts":[4],
            "topology":{"kind":"edge_list","n":-1,"edges":[]}})",
        R"({"name":"e","node_counts":[4],
            "topology":{"kind":"edge_list","n":4,"edges":[[0,1.5]]}})",
        R"({"name":"e","node_counts":[-4]})",
        R"({"name":"e","node_counts":[4],"replicates":2.5})"}) {
    SCOPED_TRACE(bad);
    EXPECT_THROW(runner::sweep_spec_from_json(json::parse(bad)), json::Error);
  }
  // Grid axis compatibility surfaces at parse time, naming the offender.
  try {
    runner::sweep_spec_from_json(json::parse(
        R"({"name": "g", "topology": "grid", "node_counts": [9, 11]})"));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("11"), std::string::npos)
        << e.what();
  }
}

TEST(ProtocolJson, NonFiniteResultFieldsSurviveAsNull) {
  // A NaN/Inf metric must not abort the streaming checkpoint write: the
  // writer encodes non-finite doubles as null and the reader brings them
  // back as NaN, with the dump byte-stable across the round trip.
  protocol::SimResult r;
  r.groupput = std::numeric_limits<double>::quiet_NaN();
  r.anyput = std::numeric_limits<double>::infinity();
  r.avg_power = {1.0, std::numeric_limits<double>::quiet_NaN()};
  r.extras["diverged"] = -std::numeric_limits<double>::infinity();
  r.extras["fine"] = 0.5;

  const std::string wire = json::dump(protocol::to_json(r));
  EXPECT_NE(wire.find("\"groupput\":null"), std::string::npos) << wire;

  const protocol::SimResult back =
      protocol::sim_result_from_json(json::parse(wire));
  EXPECT_TRUE(std::isnan(back.groupput));
  EXPECT_TRUE(std::isnan(back.anyput));  // Inf is not representable: NaN
  ASSERT_EQ(back.avg_power.size(), 2u);
  EXPECT_EQ(back.avg_power[0], 1.0);
  EXPECT_TRUE(std::isnan(back.avg_power[1]));
  EXPECT_TRUE(std::isnan(back.extras.at("diverged")));
  EXPECT_EQ(back.extras.at("fine"), 0.5);
  EXPECT_EQ(json::dump(protocol::to_json(back)), wire);

  // The leniency is for measured metrics only. Config/spec fields and
  // integral counts stay strict — a null there is corruption, not an
  // encoded NaN.
  EXPECT_THROW(protocol::spec_from_json(json::parse(
                   R"({"name": "econcast", "params": {"duration": null}})")),
               json::Error);
  EXPECT_THROW(protocol::sim_result_from_json(json::parse(
                   R"({"burst_lengths": {"count": null}})")),
               json::Error);
}

TEST(ManifestJson, CustomTopologyIsNotSerializable) {
  runner::SweepSpec spec("custom");
  spec.topology([](std::size_t n) { return model::Topology::line(n); });
  EXPECT_EQ(spec.topology_kind(), "");
  EXPECT_THROW(runner::to_json(spec), json::Error);
  EXPECT_THROW(runner::SweepSpec("x").topology("moebius"),
               std::invalid_argument);
}

TEST(ManifestJson, ManifestFileRoundTrips) {
  const fs::path dir = test_dir();
  const std::string path = (dir / "mini.manifest.json").string();
  const runner::SweepManifest manifest(small_sweep(), 4242, true);
  runner::write_manifest(manifest, path);

  const runner::SweepManifest back = runner::load_manifest(path);
  EXPECT_EQ(back.base_seed, 4242u);
  EXPECT_TRUE(back.reseed);
  EXPECT_EQ(json::dump(runner::to_json(back)),
            json::dump(runner::to_json(manifest)));
}

TEST(ManifestJson, QueueEngineOverrideRoundTripsAndValidates) {
  const fs::path dir = test_dir();
  runner::SweepManifest manifest(small_sweep(), 4242, true);
  manifest.queue_engine = "calendar";
  const std::string path = (dir / "cal.manifest.json").string();
  runner::write_manifest(manifest, path);
  EXPECT_EQ(runner::load_manifest(path).queue_engine, "calendar");

  // Unset: the runner object carries no queue_engine key at all.
  runner::SweepManifest plain(small_sweep(), 4242, true);
  EXPECT_EQ(runner::to_json(plain)
                .as_object()
                .at("runner")
                .as_object()
                .find("queue_engine"),
            nullptr);

  // Bad tokens die at the write and at the parse, offender named.
  runner::SweepManifest bad(small_sweep(), 4242, true);
  bad.queue_engine = "fibonacci";
  EXPECT_THROW(runner::to_json(bad), json::Error);
  std::string text = json::dump(runner::to_json(manifest));
  const std::string needle = "\"calendar\"";  // only the runner override
  const std::size_t at = text.find(needle);
  ASSERT_NE(at, std::string::npos);
  text.replace(at, needle.size(), "\"fibonacci\"");
  EXPECT_THROW(runner::manifest_from_json(json::parse(text)), json::Error);
}

// -------------------------------------------------------------- SweepSession --

TEST(SweepSession, QueueEngineOverrideResultsAreByteIdentical) {
  // The whole point of the determinism contract: the same manifest run
  // under either backend — or checkpointed under one and resumed under the
  // other — produces byte-identical results files.
  const fs::path dir = test_dir();
  runner::SweepManifest manifest(small_sweep(), 7, true);
  runner::SweepSession heap(manifest, (dir / "heap.jsonl").string());
  heap.run();

  manifest.queue_engine = "calendar";
  runner::SweepSession calendar(manifest, (dir / "cal.jsonl").string());
  calendar.run();
  EXPECT_EQ(slurp(dir / "heap.jsonl"), slurp(dir / "cal.jsonl"));

  // Checkpoint 5 cells under the calendar, resume under the heap.
  runner::SweepSession first(manifest, (dir / "mixed.jsonl").string());
  first.run(5);
  manifest.queue_engine = "binary-heap";
  runner::SweepSession resumed(manifest, (dir / "mixed.jsonl").string());
  EXPECT_EQ(resumed.completed_cells(), 5u);
  resumed.run();
  EXPECT_EQ(slurp(dir / "heap.jsonl"), slurp(dir / "mixed.jsonl"));
}

TEST(SweepSession, UninterruptedRunCompletesAndAggregates) {
  const fs::path dir = test_dir();
  const runner::SweepManifest manifest(small_sweep(), 7, true);
  runner::SweepSession session(manifest, (dir / "a.jsonl").string());
  EXPECT_EQ(session.cell_count(), 16u);
  EXPECT_EQ(session.completed_cells(), 0u);
  EXPECT_THROW(session.results(), std::logic_error);
  EXPECT_EQ(session.run(), 16u);
  EXPECT_TRUE(session.complete());
  const runner::BatchResult all = session.results();
  EXPECT_EQ(all.results.size(), 16u);
  EXPECT_GT(all.summary.groupput.mean(), 0.0);

  // The file holds one valid record per cell, in index order.
  std::ifstream in(dir / "a.jsonl");
  std::string line;
  std::size_t index = 0;
  while (std::getline(in, line)) {
    const json::Value record = json::parse(line);
    EXPECT_EQ(record.at("index").as_number(), static_cast<double>(index));
    EXPECT_EQ(record.at("name").as_string(), session.cells()[index].name);
    ++index;
  }
  EXPECT_EQ(index, 16u);
}

TEST(SweepSession, LimitCheckpointsAndResumeIsByteIdentical) {
  const fs::path dir = test_dir();
  const runner::SweepManifest manifest(small_sweep(), 7, true);

  runner::SweepSession full(manifest, (dir / "full.jsonl").string());
  full.run();

  // Interrupted run: 5 cells, new session object (fresh process in CI),
  // finish, compare bytes.
  {
    runner::SweepSession part(manifest, (dir / "part.jsonl").string());
    EXPECT_EQ(part.run(5), 5u);
    EXPECT_EQ(part.completed_cells(), 5u);
    EXPECT_FALSE(part.complete());
  }
  {
    runner::SweepSession resumed(manifest, (dir / "part.jsonl").string());
    EXPECT_EQ(resumed.completed_cells(), 5u);  // loaded, not recomputed
    EXPECT_EQ(resumed.run(), 11u);
    EXPECT_TRUE(resumed.complete());
    // Aggregates over loaded + fresh cells match the uninterrupted run.
    const runner::BatchResult a = full.results();
    const runner::BatchResult b = resumed.results();
    EXPECT_EQ(a.summary.groupput.mean(), b.summary.groupput.mean());
    EXPECT_EQ(a.summary.groupput.stddev(), b.summary.groupput.stddev());
    EXPECT_EQ(a.summary.packets_received.sum(),
              b.summary.packets_received.sum());
  }
  EXPECT_EQ(slurp(dir / "part.jsonl"), slurp(dir / "full.jsonl"));
}

TEST(SweepSession, TruncatedMidLineResumesByteIdentically) {
  // The kill-at-any-byte contract: chop the results file mid-record; the
  // partial line is discarded on open and its cell reruns.
  const fs::path dir = test_dir();
  const runner::SweepManifest manifest(small_sweep(), 7, true);

  runner::SweepSession full(manifest, (dir / "full.jsonl").string());
  full.run();
  const std::string reference = slurp(dir / "full.jsonl");

  {
    runner::SweepSession part(manifest, (dir / "killed.jsonl").string());
    part.run(4);
  }
  // Simulate a kill mid-write of record 4: keep 3 full lines + part of the
  // 4th (no trailing newline).
  std::string bytes = slurp(dir / "killed.jsonl");
  std::size_t third_newline = 0;
  for (int k = 0; k < 3; ++k)
    third_newline = bytes.find('\n', third_newline) + 1;
  ASSERT_LT(third_newline + 10, bytes.size());
  bytes.resize(third_newline + 10);  // mid-line garbage tail
  {
    std::ofstream out(dir / "killed.jsonl",
                      std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  runner::SweepSession resumed(manifest, (dir / "killed.jsonl").string());
  EXPECT_EQ(resumed.completed_cells(), 3u);  // partial 4th line dropped
  resumed.run();
  EXPECT_EQ(slurp(dir / "killed.jsonl"), reference);
}

TEST(SweepSession, TruncatedMidEscapeSequenceResumesByteIdentically) {
  // The hardest truncation point: inside a two-byte JSON escape. A sweep
  // name containing a quote serializes as \" in every record's "name"; kill
  // the writer between the backslash and the quote and the file ends in a
  // lone backslash inside an open string. The partial line must still be
  // detected and discarded (no newline terminator), never half-parsed.
  const fs::path dir = test_dir();
  proto::SimConfig cfg;
  cfg.duration = 4e3;
  cfg.warmup = 5e2;
  const runner::SweepManifest manifest(
      runner::SweepSpec("mini\"quoted")
          .protocols({protocol::econcast_spec(cfg),
                      protocol::p4_spec(model::Mode::kGroupput, 0.5)})
          .node_counts({3, 4})
          .replicates(2),
      /*seed=*/7, true);

  runner::SweepSession full(manifest, (dir / "full.jsonl").string());
  full.run();
  const std::string reference = slurp(dir / "full.jsonl");

  {
    runner::SweepSession part(manifest, (dir / "killed.jsonl").string());
    part.run(4);
  }
  std::string bytes = slurp(dir / "killed.jsonl");
  // Cut record 4 right after the backslash of the \" escape in its name.
  const std::size_t third_newline = [&] {
    std::size_t at = 0;
    for (int k = 0; k < 3; ++k) at = bytes.find('\n', at) + 1;
    return at;
  }();
  const std::size_t escape = bytes.find("\\\"", third_newline);
  ASSERT_NE(escape, std::string::npos);
  bytes.resize(escape + 1);  // file now ends in the lone backslash
  {
    std::ofstream out(dir / "killed.jsonl",
                      std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  runner::SweepSession resumed(manifest, (dir / "killed.jsonl").string());
  EXPECT_EQ(resumed.completed_cells(), 3u);
  resumed.run();
  EXPECT_EQ(slurp(dir / "killed.jsonl"), reference);
}

TEST(SweepSession, SampledSweepKillResumeIsByteIdentical) {
  // Kill/resume on the schema-v2 path: a heterogeneous (sampled node-set)
  // sweep, chopped mid-record, must resume to a byte-identical results file
  // — cell seeds and sampled networks both derive from the manifest alone.
  const fs::path dir = test_dir();
  proto::SimConfig cfg;
  cfg.duration = 3e3;
  cfg.warmup = 5e2;
  const runner::SweepManifest manifest(
      runner::SweepSpec("het-mini")
          .protocols({protocol::econcast_spec(cfg),
                      protocol::oracle_spec(model::Mode::kGroupput)})
          .sigmas({0.5})
          .replicates(2)
          .sampled_node_set({10.0, 200.0}, 0xF162000),
      /*seed=*/21, true);

  runner::SweepSession full(manifest, (dir / "full.jsonl").string());
  EXPECT_EQ(full.cell_count(), 8u);
  full.run();
  const std::string reference = slurp(dir / "full.jsonl");

  {
    runner::SweepSession part(manifest, (dir / "killed.jsonl").string());
    part.run(3);
  }
  std::string bytes = slurp(dir / "killed.jsonl");
  bytes.resize(bytes.size() - 7);  // mid-record kill
  {
    std::ofstream out(dir / "killed.jsonl",
                      std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  runner::SweepSession resumed(manifest, (dir / "killed.jsonl").string());
  EXPECT_EQ(resumed.completed_cells(), 2u);
  resumed.run();
  EXPECT_EQ(slurp(dir / "killed.jsonl"), reference);
}

TEST(SweepSession, RejectsResultsFromADifferentManifest) {
  const fs::path dir = test_dir();
  const runner::SweepManifest manifest(small_sweep(), 7, true);
  {
    runner::SweepSession session(manifest, (dir / "r.jsonl").string());
    session.run(3);
  }
  // Same shape, different base seed: recorded seeds no longer match.
  const runner::SweepManifest other(small_sweep(), 8, true);
  EXPECT_THROW(
      runner::SweepSession(other, (dir / "r.jsonl").string()),
      std::runtime_error);
  // A different sweep entirely: names mismatch.
  proto::SimConfig cfg;
  cfg.duration = 4e3;
  const runner::SweepManifest renamed(
      runner::SweepSpec("other").protocols({protocol::econcast_spec(cfg)}),
      7, true);
  EXPECT_THROW(
      runner::SweepSession(renamed, (dir / "r.jsonl").string()),
      std::runtime_error);
}

TEST(SweepSession, ReseedOffUsesEmbeddedSeeds) {
  const fs::path dir = test_dir();
  proto::SimConfig cfg;
  cfg.duration = 3e3;
  cfg.seed = 424242;
  const runner::SweepManifest manifest(
      runner::SweepSpec("fixed-seed").protocols({protocol::econcast_spec(cfg)}),
      1, /*reseed=*/false);
  runner::SweepSession session(manifest, (dir / "f.jsonl").string());
  session.run();
  const json::Value record = json::parse(slurp(dir / "f.jsonl"));
  EXPECT_EQ(record.at("seed").as_string(), "424242");

  proto::Simulation direct(model::homogeneous(5, 10.0, 500.0, 500.0),
                           model::Topology::clique(5), cfg);
  EXPECT_EQ(session.results().results[0].groupput, direct.run().groupput);
}

TEST(SweepSession, DefaultResultsPath) {
  EXPECT_EQ(runner::SweepSession::default_results_path("a/b/fig3a.manifest.json"),
            "a/b/fig3a.manifest.results.jsonl");
  EXPECT_EQ(runner::SweepSession::default_results_path("weird.txt"),
            "weird.txt.results.jsonl");
}

}  // namespace
