#include "exec/executor.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace econcast::exec {

namespace {
// Depth of Executor::work_on frames on this thread — covers pool workers AND
// the submitting thread while it participates in a batch, so nested
// parallel_for calls from either are detected and run inline.
// NOLINT-DETERMINISM(thread-local): nesting-depth flag, not RNG or result
// state — it only routes nested parallel_for calls to the inline path.
thread_local int t_work_depth = 0;

struct WorkDepthScope {
  WorkDepthScope() noexcept { ++t_work_depth; }
  ~WorkDepthScope() noexcept { --t_work_depth; }
};
}  // namespace

bool on_executor_thread() noexcept { return t_work_depth > 0; }

Executor::Executor(std::size_t num_threads) {
  if (num_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw > 0 ? hw : 1;
  }
  workers_.reserve(num_threads);
  try {
    for (std::size_t t = 0; t < num_threads; ++t)
      workers_.emplace_back([this] { worker_main(); });
  } catch (...) {
    // Partial construction: stop and join what exists before rethrowing, or
    // the thread destructors call std::terminate.
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      stop_ = true;
    }
    pool_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
    throw;
  }
}

Executor::~Executor() {
  // Taking submit_mu_ first guarantees no batch is in flight (parallel_for
  // holds it for the whole batch), so workers are all parked on pool_cv_.
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    stop_ = true;
  }
  pool_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

Executor& Executor::shared() {
  // Intentionally leaked: worker threads must not be joined from a static
  // destructor racing other exit-time teardown.
  static Executor* const instance = new Executor();
  return *instance;
}

void Executor::worker_main() {
  std::unique_lock<std::mutex> lock(pool_mu_);
  for (;;) {
    pool_cv_.wait(lock, [&] { return stop_ || current_batch_ != nullptr; });
    if (stop_) return;
    Batch* batch = current_batch_;
    const std::uint64_t gen = batch_gen_;

    // Claim a participant slot and bump `inside` while still under pool_mu_.
    // The submitter retires the batch under the same mutex and only then
    // waits for `inside` to drain, so either we are counted before the
    // retire or we observe current_batch_ == nullptr — never a join after
    // the submitter stopped waiting.
    std::size_t slot = 0;
    bool joined = false;
    {
      std::lock_guard<std::mutex> slots(batch->slot_mu);
      if (batch->next_slot < batch->deques.size()) {
        slot = batch->next_slot++;
        joined = true;
      }
    }
    if (joined) {
      {
        std::lock_guard<std::mutex> state(batch->state_mu);
        ++batch->inside;
      }
      lock.unlock();
      work_on(*batch, slot);
      lock.lock();
    }
    // Sleep until this batch is retired so a full or drained batch is not
    // re-examined in a hot loop.
    pool_cv_.wait(lock, [&] { return stop_ || batch_gen_ != gen; });
    if (stop_) return;
  }
}

void Executor::run_serial(std::size_t n, const TaskFn& fn,
                          const ProgressFn& progress) {
  // The serial path may hold submit_mu_; mark task context so a task that
  // nests parallel_for is inlined here too instead of deadlocking on it.
  const WorkDepthScope in_task_context;
  for (std::size_t i = 0; i < n; ++i) {
    fn(i);
    if (progress) progress(TaskProgress{i, i + 1, n});
  }
}

void Executor::parallel_for(std::size_t n, const TaskFn& fn,
                            std::size_t max_parallelism,
                            const ProgressFn& progress) {
  if (n == 0) return;
  if (on_executor_thread()) {
    // Nested call from inside one of our tasks: blocking on submit_mu_ from
    // a worker would deadlock (the outer batch holds it), so run inline.
    run_serial(n, fn, progress);
    return;
  }

  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  std::size_t participants = workers_.size() + 1;  // workers + this thread
  if (max_parallelism > 0)
    participants = std::min(participants, max_parallelism);
  participants = std::min(participants, n);
  if (participants <= 1) {
    run_serial(n, fn, progress);
    return;
  }

  Batch batch;
  batch.n = n;
  batch.fn = &fn;
  batch.progress = progress ? &progress : nullptr;
  batch.deques = std::vector<WorkDeque>(participants);
  // Seed each participant with a contiguous chunk; stealing rebalances.
  const std::size_t base = n / participants;
  const std::size_t extra = n % participants;
  std::size_t begin = 0;
  for (std::size_t p = 0; p < participants; ++p) {
    const std::size_t len = base + (p < extra ? 1 : 0);
    batch.deques[p].ranges.push_back(Range{begin, begin + len});
    begin += len;
  }
  batch.inside = 1;  // the submitting thread, slot 0

  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    current_batch_ = &batch;
    ++batch_gen_;
  }
  pool_cv_.notify_all();

  work_on(batch, 0);

  // Retire the batch BEFORE waiting for it to drain: workers join (and bump
  // `inside`) only while holding pool_mu_ with current_batch_ still set, so
  // after this block every participant is accounted for in `inside` and no
  // late joiner can touch the stack-allocated Batch.
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    current_batch_ = nullptr;
    ++batch_gen_;
  }
  pool_cv_.notify_all();
  {
    std::unique_lock<std::mutex> state(batch.state_mu);
    batch.state_cv.wait(
        state, [&] { return batch.settled == batch.n && batch.inside == 0; });
  }

  if (batch.first_error) std::rethrow_exception(batch.first_error);
}

bool Executor::pop_own(Batch& b, std::size_t slot, std::size_t& index) {
  WorkDeque& d = b.deques[slot];
  std::lock_guard<std::mutex> lock(d.mu);
  if (d.ranges.empty()) return false;
  Range& r = d.ranges.back();
  index = r.begin++;
  if (r.begin == r.end) d.ranges.pop_back();
  return true;
}

bool Executor::steal_into(Batch& b, std::size_t slot) {
  // Scan the other deques starting just past our own so contention spreads;
  // take the front range of the first victim with work, leaving the victim
  // the back half when the range can split.
  const std::size_t p = b.deques.size();
  for (std::size_t k = 1; k < p; ++k) {
    WorkDeque& victim = b.deques[(slot + k) % p];
    Range stolen;
    {
      std::lock_guard<std::mutex> lock(victim.mu);
      if (victim.ranges.empty()) continue;
      Range& r = victim.ranges.front();
      const std::size_t len = r.end - r.begin;
      if (len > 1) {
        const std::size_t mid = r.begin + len / 2;
        stolen = Range{r.begin, mid};
        r.begin = mid;
      } else {
        stolen = r;
        victim.ranges.pop_front();
      }
    }
    std::lock_guard<std::mutex> lock(b.deques[slot].mu);
    b.deques[slot].ranges.push_back(stolen);
    return true;
  }
  return false;
}

void Executor::run_task(Batch& b, std::size_t index) {
  try {
    (*b.fn)(index);
    if (b.progress) {
      // Serialized: `done` advances by exactly one per callback, and the
      // callback body (e.g. SweepSession's checkpoint writer) can touch
      // shared state without its own lock.
      std::lock_guard<std::mutex> lock(b.progress_mu);
      ++b.done;
      (*b.progress)(TaskProgress{index, b.done, b.n});
    }
  } catch (...) {
    std::lock_guard<std::mutex> state(b.state_mu);
    if (!b.failed) {
      b.failed = true;
      b.first_error = std::current_exception();
    }
  }
  std::lock_guard<std::mutex> state(b.state_mu);
  ++b.settled;
  if (b.settled == b.n) b.state_cv.notify_all();
}

void Executor::abandon_remaining(Batch& b) {
  std::size_t abandoned = 0;
  for (WorkDeque& d : b.deques) {
    std::lock_guard<std::mutex> lock(d.mu);
    for (const Range& r : d.ranges) abandoned += r.end - r.begin;
    d.ranges.clear();
  }
  if (abandoned == 0) return;
  std::lock_guard<std::mutex> state(b.state_mu);
  b.settled += abandoned;
  if (b.settled == b.n) b.state_cv.notify_all();
}

void Executor::work_on(Batch& b, std::size_t slot) {
  const WorkDepthScope in_task_context;
  for (;;) {
    {
      std::lock_guard<std::mutex> state(b.state_mu);
      if (b.failed) break;
    }
    std::size_t index;
    if (pop_own(b, slot, index)) {
      run_task(b, index);
      continue;
    }
    if (!steal_into(b, slot)) break;  // every deque empty: only in-flight
                                      // tasks remain, nothing to steal
  }
  {
    std::lock_guard<std::mutex> state(b.state_mu);
    if (!b.failed) {
      --b.inside;
      if (b.inside == 0) b.state_cv.notify_all();
      return;
    }
  }
  abandon_remaining(b);
  std::lock_guard<std::mutex> state(b.state_mu);
  --b.inside;
  if (b.inside == 0) b.state_cv.notify_all();
}

}  // namespace econcast::exec
