// Persistent work-stealing executor for the sweep workloads.
//
// The paper's evaluation is a pipeline of large batches (hundreds of sampled
// networks per figure cell), and before this subsystem existed every batch
// paid for a fresh std::thread pool spin-up/join. Executor keeps one set of
// worker threads alive for the life of the process (or of a test), executes
// index-space batches over per-worker deques with range stealing, and
// reports per-task completion through a serialized progress callback — the
// hook runner::SweepSession uses to stream checkpoint results in index
// order.
//
// Determinism: the executor assigns *which* thread runs fn(i), never *what*
// fn(i) computes. Callers that confine writes to per-index state (the
// ScenarioRunner contract) get bit-identical batch output for any worker
// count, including 1.
#ifndef ECONCAST_EXEC_EXECUTOR_H
#define ECONCAST_EXEC_EXECUTOR_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace econcast::exec {

/// Per-task progress notification: fn(index) has completed, `done` of
/// `total` tasks are finished (monotone — invocations are serialized under a
/// mutex, so `done` increases by exactly 1 per call and the callback needs
/// no synchronization of its own). Invoked on whichever thread ran the task.
struct TaskProgress {
  std::size_t index = 0;
  std::size_t done = 0;
  std::size_t total = 0;
};

class Executor {
 public:
  using TaskFn = std::function<void(std::size_t)>;
  using ProgressFn = std::function<void(const TaskProgress&)>;

  /// Spawns `num_threads` persistent workers (0 means
  /// std::thread::hardware_concurrency(), at least 1). Workers sleep on a
  /// condition variable between batches.
  explicit Executor(std::size_t num_threads = 0);

  /// Graceful shutdown: blocks until any in-flight batch has drained (a
  /// batch blocks its submitter, so destroying an executor mid-batch is only
  /// possible from another thread), then stops and joins every worker.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  std::size_t num_workers() const noexcept { return workers_.size(); }

  /// Runs fn(i) for every i in [0, n), distributing indices across this
  /// executor's workers plus the calling thread. Blocks until the batch is
  /// complete. `max_parallelism` caps the number of participating threads
  /// (0 = no cap beyond the pool size); 1 runs inline on the caller. The
  /// first exception thrown by any task is rethrown after the batch drains;
  /// remaining indices are abandoned.
  ///
  /// One batch runs at a time per executor: concurrent calls from other
  /// threads queue behind a submission mutex. A call made from inside one of
  /// this executor's own tasks (nested parallelism) runs inline serially
  /// instead of deadlocking on that mutex.
  void parallel_for(std::size_t n, const TaskFn& fn,
                    std::size_t max_parallelism = 0,
                    const ProgressFn& progress = nullptr);

  /// The process-wide shared executor (hardware_concurrency workers),
  /// constructed on first use and alive until exit. This is what
  /// runner::ScenarioRunner submits to by default, so every batch in the
  /// process reuses one warm pool.
  static Executor& shared();

 private:
  /// A half-open index range; the unit of work ownership and stealing.
  struct Range {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// One participant's deque. The owner takes single indices from the back;
  /// thieves split off the front half of the front range. A plain mutex per
  /// deque keeps this obviously correct — the tasks this project runs are
  /// simulations lasting milliseconds to hours, so queue overhead is noise.
  struct WorkDeque {
    std::mutex mu;
    std::deque<Range> ranges;
  };

  struct Batch {
    std::size_t n = 0;
    const TaskFn* fn = nullptr;
    const ProgressFn* progress = nullptr;
    std::vector<WorkDeque> deques;  // one per participant slot
    std::mutex slot_mu;
    std::size_t next_slot = 1;  // slot 0 is the submitting thread

    std::mutex progress_mu;
    std::size_t done = 0;  // tasks executed (guarded by progress_mu)

    std::mutex state_mu;
    std::condition_variable state_cv;
    std::size_t settled = 0;  // executed or abandoned (guarded by state_mu)
    std::size_t inside = 0;   // participants currently in work_on (state_mu)
    bool failed = false;
    std::exception_ptr first_error;
  };

  void worker_main();
  void work_on(Batch& b, std::size_t slot);
  bool pop_own(Batch& b, std::size_t slot, std::size_t& index);
  bool steal_into(Batch& b, std::size_t slot);
  void run_task(Batch& b, std::size_t index);
  void abandon_remaining(Batch& b);
  void run_serial(std::size_t n, const TaskFn& fn, const ProgressFn& progress);

  std::vector<std::thread> workers_;

  std::mutex submit_mu_;  // serializes batches

  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  Batch* current_batch_ = nullptr;  // guarded by pool_mu_
  std::uint64_t batch_gen_ = 0;     // bumped on publish and retire
  bool stop_ = false;
};

/// True when the calling thread is currently executing inside an Executor
/// batch — a pool worker running tasks, or a submitting thread participating
/// in its own batch. Used to detect nested parallel_for calls (they run
/// inline).
bool on_executor_thread() noexcept;

}  // namespace econcast::exec

#endif  // ECONCAST_EXEC_EXECUTOR_H
