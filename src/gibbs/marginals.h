// Shared result types for Gibbs-distribution computations (eq. (19)).
#ifndef ECONCAST_GIBBS_MARGINALS_H
#define ECONCAST_GIBBS_MARGINALS_H

#include <vector>

namespace econcast::gibbs {

/// Moments of the Gibbs distribution π^η of eq. (19) at a fixed multiplier
/// vector η. All log quantities use natural logarithms.
struct Marginals {
  double log_partition = 0.0;          // log Z_η
  std::vector<double> alpha;           // P(node i listens)
  std::vector<double> beta;            // P(node i transmits)
  double expected_throughput = 0.0;    // Σ_w π_w T_w
  double entropy = 0.0;                // -Σ_w π_w log π_w
};

/// Log-domain sums over the burst states W' = {w : ν_w = 1, c_w >= 1} needed
/// by the burstiness analysis of Appendix E (eq. (34)).
struct BurstSums {
  double log_success_mass = 0.0;  // log Σ_{w in W'} π_w
  double log_burst_rate = 0.0;    // log Σ_{w in W'} π_w exp(-c_w/σ)  (groupput)
                                  //  or       π_w exp(-γ_w/σ)        (anyput)
};

}  // namespace econcast::gibbs

#endif  // ECONCAST_GIBBS_MARGINALS_H
