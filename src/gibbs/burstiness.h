// Burstiness analysis of Appendix E. EconCast-C keeps the channel for a
// geometric number of unit packets; the average burst length at the (P4)
// optimum π* is
//   B_g = Σ_{w∈W'} π*_w / Σ_{w∈W'} π*_w exp(-c_w/σ)          (34)
//   B_a = exp(1/σ)                                            (35)
// with W' = {w : ν_w = 1, c_w >= 1}.
#ifndef ECONCAST_GIBBS_BURSTINESS_H
#define ECONCAST_GIBBS_BURSTINESS_H

#include "model/node_params.h"
#include "model/state_space.h"

namespace econcast::gibbs {

/// Solves (P4) at σ and evaluates eq. (34) (groupput mode) or the same ratio
/// with γ_w (anyput mode, which collapses to exp(1/σ)).
double average_burst_length(const model::NodeSet& nodes, model::Mode mode,
                            double sigma);

/// Closed form for anyput (eq. (35)); independent of N and of the network.
double anyput_burst_closed_form(double sigma);

}  // namespace econcast::gibbs

#endif  // ECONCAST_GIBBS_BURSTINESS_H
