// Solvers for the entropy-regularized throughput problem (P4), §VI part (ii):
//
//   max_π  Σ_w π_w T_w  -  σ Σ_w π_w log π_w   s.t. power budgets (6)
//
// Strong duality holds; the dual is D(η) = σ log Z_η + η·ρ, minimized over
// η >= 0 (eq. (22) gives ∇D). Three methods:
//   * kAlgorithm1    — the paper's Algorithm 1: plain projected gradient with
//                      step δ_k = δ_0 / k (faithful reproduction).
//   * kAccelerated   — projected gradient with backtracking line search
//                      (default for heterogeneous networks).
//   * kAutomatic     — 1-D bisection via SymmetricGibbs when the network is
//                      homogeneous; kAccelerated otherwise.
// The achievable throughput at σ, T^σ = Σ_w π*_w T_w, is what the paper's
// evaluation reports (it approaches the oracle T* as σ → 0, Theorem 1).
#ifndef ECONCAST_GIBBS_P4_SOLVER_H
#define ECONCAST_GIBBS_P4_SOLVER_H

#include <cstddef>
#include <vector>

#include "model/node_params.h"
#include "model/state_space.h"

namespace econcast::gibbs {

enum class P4Method { kAutomatic, kAlgorithm1, kAccelerated };

struct P4Options {
  P4Method method = P4Method::kAutomatic;
  std::size_t max_iterations = 50000;
  /// Relative KKT tolerance: max_i |power_i - ρ_i| / ρ_i on active
  /// multipliers and max_i (power_i - ρ_i)+ / ρ_i overall.
  double tolerance = 1e-8;
  /// Algorithm 1 step scale: δ_k = delta0 / k.
  double delta0 = 1.0;
};

struct P4Result {
  std::vector<double> eta;    // optimal Lagrange multipliers η*
  std::vector<double> alpha;  // listen fraction per node at π*
  std::vector<double> beta;   // transmit fraction per node at π*
  double throughput = 0.0;    // T^σ = Σ_w π*_w T_w
  double objective = 0.0;     // T^σ + σ H(π*)  (the (P4) objective)
  double dual = 0.0;          // D(η*) — equals objective at optimality
  std::size_t iterations = 0;
  bool converged = false;
};

P4Result solve_p4(const model::NodeSet& nodes, model::Mode mode, double sigma,
                  const P4Options& options = {});

}  // namespace econcast::gibbs

#endif  // ECONCAST_GIBBS_P4_SOLVER_H
