#include "gibbs/symmetric.h"

#include <cmath>
#include <stdexcept>

#include "util/logsumexp.h"

namespace econcast::gibbs {

namespace {
std::vector<double> log_binomials(std::size_t n) {
  std::vector<double> out(n + 1);
  for (std::size_t c = 0; c <= n; ++c)
    out[c] = std::lgamma(static_cast<double>(n) + 1.0) -
             std::lgamma(static_cast<double>(c) + 1.0) -
             std::lgamma(static_cast<double>(n - c) + 1.0);
  return out;
}
}  // namespace

SymmetricGibbs::SymmetricGibbs(std::size_t n, model::NodeParams params,
                               model::Mode mode, double sigma)
    : n_(n), params_(params), mode_(mode), sigma_(sigma) {
  params_.validate();
  if (n < 2) throw std::invalid_argument("SymmetricGibbs needs N >= 2");
  if (!(sigma > 0.0)) throw std::invalid_argument("sigma must be positive");
  log_choose_n_ = log_binomials(n);
  log_choose_nm1_ = log_binomials(n - 1);
}

double SymmetricGibbs::class_throughput(int nu, int c) const {
  if (nu == 0) return 0.0;
  return mode_ == model::Mode::kGroupput ? static_cast<double>(c)
                                         : (c >= 1 ? 1.0 : 0.0);
}

double SymmetricGibbs::state_log_weight(int nu, int c, double eta) const {
  const double exponent =
      class_throughput(nu, c) -
      eta * (static_cast<double>(c) * params_.listen_power +
             (nu ? params_.transmit_power : 0.0));
  return exponent / sigma_;
}

double SymmetricGibbs::class_log_weight(int nu, int c, double eta) const {
  const double log_mult =
      nu == 0 ? log_choose_n_[static_cast<std::size_t>(c)]
              : std::log(static_cast<double>(n_)) +
                    log_choose_nm1_[static_cast<std::size_t>(c)];
  return state_log_weight(nu, c, eta) + log_mult;
}

Marginals SymmetricGibbs::marginals(double eta) const {
  util::LogSumExp log_z;
  const int n = static_cast<int>(n_);
  for (int c = 0; c <= n; ++c) log_z.add(class_log_weight(0, c, eta));
  for (int c = 0; c <= n - 1; ++c) log_z.add(class_log_weight(1, c, eta));
  const double lz = log_z.value();

  double e_c = 0.0, e_nu = 0.0, e_t = 0.0, e_state_lw = 0.0;
  auto accumulate = [&](int nu, int c) {
    const double p = std::exp(class_log_weight(nu, c, eta) - lz);
    if (p == 0.0) return;
    e_c += p * static_cast<double>(c);
    e_nu += p * static_cast<double>(nu);
    e_t += p * class_throughput(nu, c);
    e_state_lw += p * state_log_weight(nu, c, eta);
  };
  for (int c = 0; c <= n; ++c) accumulate(0, c);
  for (int c = 0; c <= n - 1; ++c) accumulate(1, c);

  Marginals out;
  out.log_partition = lz;
  out.alpha.assign(n_, e_c / static_cast<double>(n_));
  out.beta.assign(n_, e_nu / static_cast<double>(n_));
  out.expected_throughput = e_t;
  // H = log Z - E[state log-weight]; multiplicities belong to the state
  // count, not the per-state probability, so use state_log_weight here.
  out.entropy = lz - e_state_lw;
  return out;
}

BurstSums SymmetricGibbs::burst_sums(double eta) const {
  util::LogSumExp log_z, mass, rate;
  const int n = static_cast<int>(n_);
  for (int c = 0; c <= n; ++c) log_z.add(class_log_weight(0, c, eta));
  for (int c = 0; c <= n - 1; ++c) {
    const double lw = class_log_weight(1, c, eta);
    log_z.add(lw);
    if (c >= 1) {
      mass.add(lw);
      const double end_rate =
          mode_ == model::Mode::kGroupput ? static_cast<double>(c) : 1.0;
      rate.add(lw - end_rate / sigma_);
    }
  }
  const double lz = log_z.value();
  return BurstSums{mass.value() - lz, rate.value() - lz};
}

double SymmetricGibbs::dual_value(double eta) const {
  util::LogSumExp log_z;
  const int n = static_cast<int>(n_);
  for (int c = 0; c <= n; ++c) log_z.add(class_log_weight(0, c, eta));
  for (int c = 0; c <= n - 1; ++c) log_z.add(class_log_weight(1, c, eta));
  return sigma_ * log_z.value() +
         static_cast<double>(n_) * eta * params_.budget;
}

double SymmetricGibbs::dual_derivative(double eta) const {
  const Marginals m = marginals(eta);
  return static_cast<double>(n_) *
         (params_.budget - (m.alpha.front() * params_.listen_power +
                            m.beta.front() * params_.transmit_power));
}

double SymmetricGibbs::solve_optimal_eta(double tol) const {
  // D is convex, so D' is nondecreasing; find its zero crossing (or return 0
  // when the budget is slack even with no damping).
  if (dual_derivative(0.0) >= 0.0) return 0.0;
  double lo = 0.0;
  double hi = sigma_ / std::min(params_.listen_power, params_.transmit_power);
  int guard = 0;
  while (dual_derivative(hi) < 0.0) {
    lo = hi;
    hi *= 2.0;
    if (++guard > 200) throw std::runtime_error("eta bracket failed");
  }
  while (hi - lo > tol * std::max(1.0, hi)) {
    const double mid = 0.5 * (lo + hi);
    (dual_derivative(mid) < 0.0 ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace econcast::gibbs
