// Collapsed Gibbs distribution for homogeneous networks. With identical
// (ρ, L, X) and a common multiplier η, the distribution (19) is exchangeable,
// so states collapse to classes (ν, c) — transmitter present or not, c
// listeners — with binomial multiplicities:
//   ν=0: C(N, c) states,   ν=1: N * C(N-1, c) states.
// Evaluation is O(N) instead of O((N+2) 2^(N-1) N), making small σ and large
// N cheap (used by Figs. 3-5 and the homogeneous fast path of the P4 solver).
#ifndef ECONCAST_GIBBS_SYMMETRIC_H
#define ECONCAST_GIBBS_SYMMETRIC_H

#include "gibbs/marginals.h"
#include "model/node_params.h"
#include "model/state_space.h"

namespace econcast::gibbs {

class SymmetricGibbs {
 public:
  SymmetricGibbs(std::size_t n, model::NodeParams params, model::Mode mode,
                 double sigma);

  std::size_t num_nodes() const noexcept { return n_; }
  double sigma() const noexcept { return sigma_; }

  /// Moments at a common scalar multiplier η (alpha/beta filled with the
  /// shared per-node value).
  Marginals marginals(double eta) const;

  BurstSums burst_sums(double eta) const;

  /// Dual D(η) = σ log Z_η + N η ρ and its derivative
  /// D'(η) = N (ρ - (α L + β X)).
  double dual_value(double eta) const;
  double dual_derivative(double eta) const;

  /// Minimizes D over η >= 0 (convex, 1-D): bisection on the monotone
  /// derivative. Exact to `tol` (absolute, on η).
  double solve_optimal_eta(double tol = 1e-12) const;

 private:
  // Log-weight of one *class* (including multiplicity) and of one state.
  double class_log_weight(int nu, int c, double eta) const;
  double state_log_weight(int nu, int c, double eta) const;
  double class_throughput(int nu, int c) const;

  std::size_t n_;
  model::NodeParams params_;
  model::Mode mode_;
  double sigma_;
  std::vector<double> log_choose_n_;    // log C(N, c)
  std::vector<double> log_choose_nm1_;  // log C(N-1, c)
};

}  // namespace econcast::gibbs

#endif  // ECONCAST_GIBBS_SYMMETRIC_H
