// Exact Gibbs distribution (19) over the full collision-free state space W
// for an arbitrary heterogeneous clique. Cost is O(|W| * N) per evaluation
// with |W| = (N+2) 2^(N-1); practical for N <= ~16, which covers every
// heterogeneous experiment in the paper (N = 5, 10).
//
//   π^η_w  ∝  exp[ (T_w - Σ_{i: w_i=l} η_i L_i - Σ_{i: w_i=x} η_i X_i) / σ ]
#ifndef ECONCAST_GIBBS_EXACT_H
#define ECONCAST_GIBBS_EXACT_H

#include <vector>

#include "gibbs/marginals.h"
#include "model/node_params.h"
#include "model/state_space.h"

namespace econcast::gibbs {

class ExactGibbs {
 public:
  /// σ is the paper's temperature parameter (> 0).
  ExactGibbs(model::NodeSet nodes, model::Mode mode, double sigma);

  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  double sigma() const noexcept { return sigma_; }
  model::Mode mode() const noexcept { return mode_; }
  const model::NodeSet& nodes() const noexcept { return nodes_; }

  /// Log-weight (unnormalized) of a single state at multipliers η.
  double log_weight(const model::NetState& state,
                    const std::vector<double>& eta) const;

  /// All moments of π^η in one pass over W.
  Marginals marginals(const std::vector<double>& eta) const;

  /// Burst-state sums for eq. (34)/(35).
  BurstSums burst_sums(const std::vector<double>& eta) const;

  /// Full probability vector indexed by model::state_index (tests / small N).
  std::vector<double> distribution(const std::vector<double>& eta) const;

  /// Dual function D(η) = σ log Z_η + Σ_i η_i ρ_i (minimized over η >= 0 to
  /// solve (P4); see §VI part (ii)).
  double dual_value(const std::vector<double>& eta) const;

  /// ∇D: grad_i = ρ_i - (α_i L_i + β_i X_i), eq. (22).
  std::vector<double> dual_gradient(const std::vector<double>& eta) const;

 private:
  void check_eta(const std::vector<double>& eta) const;

  model::NodeSet nodes_;
  model::Mode mode_;
  double sigma_;
};

}  // namespace econcast::gibbs

#endif  // ECONCAST_GIBBS_EXACT_H
