#include "gibbs/p4_solver.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gibbs/exact.h"
#include "gibbs/symmetric.h"

namespace econcast::gibbs {

namespace {

// Relative KKT residual of the dual iterate: budget violations everywhere,
// complementary slackness where η_i is active.
double kkt_residual(const model::NodeSet& nodes,
                    const std::vector<double>& eta, const Marginals& m) {
  double res = 0.0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const double power =
        m.alpha[i] * nodes[i].listen_power + m.beta[i] * nodes[i].transmit_power;
    const double rel = (power - nodes[i].budget) / nodes[i].budget;
    res = std::max(res, rel);                        // infeasibility
    if (eta[i] > 1e-14) res = std::max(res, std::abs(rel));  // slackness
  }
  return res;
}

P4Result finalize(const ExactGibbs& gibbs, std::vector<double> eta,
                  std::size_t iters, bool converged) {
  const Marginals m = gibbs.marginals(eta);
  P4Result out;
  out.dual = gibbs.dual_value(eta);
  out.eta = std::move(eta);
  out.alpha = m.alpha;
  out.beta = m.beta;
  out.throughput = m.expected_throughput;
  out.objective = m.expected_throughput + gibbs.sigma() * m.entropy;
  out.iterations = iters;
  out.converged = converged;
  return out;
}

P4Result solve_algorithm1(const ExactGibbs& gibbs, const P4Options& opt) {
  const std::size_t n = gibbs.num_nodes();
  const model::NodeSet& nodes = gibbs.nodes();
  std::vector<double> eta(n, 0.0);
  for (std::size_t k = 1; k <= opt.max_iterations; ++k) {
    const Marginals m = gibbs.marginals(eta);
    if (kkt_residual(nodes, eta, m) < opt.tolerance)
      return finalize(gibbs, std::move(eta), k, true);
    const double delta = opt.delta0 / static_cast<double>(k);
    for (std::size_t i = 0; i < n; ++i) {
      const double grad = nodes[i].budget -
                          (m.alpha[i] * nodes[i].listen_power +
                           m.beta[i] * nodes[i].transmit_power);
      eta[i] = std::max(0.0, eta[i] - delta * grad);
    }
  }
  return finalize(gibbs, std::move(eta), opt.max_iterations, false);
}

P4Result solve_accelerated(const ExactGibbs& gibbs, const P4Options& opt) {
  const std::size_t n = gibbs.num_nodes();
  const model::NodeSet& nodes = gibbs.nodes();
  std::vector<double> eta(n, 0.0);
  double dual = gibbs.dual_value(eta);

  // Initial step: the dual curvature scales like max(L,X)^2 / σ.
  double worst_power = 0.0;
  for (const auto& p : nodes)
    worst_power = std::max({worst_power, p.listen_power, p.transmit_power});
  double t = gibbs.sigma() / (worst_power * worst_power *
                              static_cast<double>(n));

  std::vector<double> candidate(n);
  for (std::size_t k = 1; k <= opt.max_iterations; ++k) {
    const Marginals m = gibbs.marginals(eta);
    if (kkt_residual(nodes, eta, m) < opt.tolerance)
      return finalize(gibbs, std::move(eta), k, true);

    std::vector<double> grad(n);
    for (std::size_t i = 0; i < n; ++i)
      grad[i] = nodes[i].budget - (m.alpha[i] * nodes[i].listen_power +
                                   m.beta[i] * nodes[i].transmit_power);

    // Backtracking proximal-gradient step on the convex dual.
    bool accepted = false;
    for (int bt = 0; bt < 60 && !accepted; ++bt) {
      double step_sq = 0.0, step_dot_grad = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        candidate[i] = std::max(0.0, eta[i] - t * grad[i]);
        const double d = candidate[i] - eta[i];
        step_sq += d * d;
        step_dot_grad += d * grad[i];
      }
      if (step_sq == 0.0) return finalize(gibbs, std::move(eta), k, true);
      const double cand_dual = gibbs.dual_value(candidate);
      if (cand_dual <= dual + step_dot_grad + step_sq / (2.0 * t) + 1e-15) {
        eta.swap(candidate);
        dual = cand_dual;
        t *= 1.3;  // optimistic growth for the next iteration
        accepted = true;
      } else {
        t *= 0.5;
      }
    }
    if (!accepted) return finalize(gibbs, std::move(eta), k, false);
  }
  return finalize(gibbs, std::move(eta), opt.max_iterations, false);
}

P4Result solve_symmetric(const model::NodeSet& nodes, model::Mode mode,
                         double sigma, const P4Options& opt) {
  SymmetricGibbs gibbs(nodes.size(), nodes.front(), mode, sigma);
  const double eta = gibbs.solve_optimal_eta(opt.tolerance * 1e-2);
  const Marginals m = gibbs.marginals(eta);
  P4Result out;
  out.eta.assign(nodes.size(), eta);
  out.alpha = m.alpha;
  out.beta = m.beta;
  out.throughput = m.expected_throughput;
  out.objective = m.expected_throughput + sigma * m.entropy;
  out.dual = gibbs.dual_value(eta);
  out.iterations = 1;
  out.converged = true;
  return out;
}

}  // namespace

P4Result solve_p4(const model::NodeSet& nodes, model::Mode mode, double sigma,
                  const P4Options& options) {
  model::validate(nodes);
  if (nodes.size() < 2)
    throw std::invalid_argument("P4 needs at least two nodes");
  switch (options.method) {
    case P4Method::kAutomatic:
      if (model::is_homogeneous(nodes))
        return solve_symmetric(nodes, mode, sigma, options);
      return solve_accelerated(ExactGibbs(nodes, mode, sigma), options);
    case P4Method::kAlgorithm1:
      return solve_algorithm1(ExactGibbs(nodes, mode, sigma), options);
    case P4Method::kAccelerated:
      return solve_accelerated(ExactGibbs(nodes, mode, sigma), options);
  }
  throw std::logic_error("unreachable");
}

}  // namespace econcast::gibbs
