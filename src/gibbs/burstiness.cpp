#include "gibbs/burstiness.h"

#include <cmath>
#include <stdexcept>

#include "gibbs/exact.h"
#include "gibbs/p4_solver.h"
#include "gibbs/symmetric.h"

namespace econcast::gibbs {

double average_burst_length(const model::NodeSet& nodes, model::Mode mode,
                            double sigma) {
  const P4Result p4 = solve_p4(nodes, mode, sigma);
  BurstSums sums;
  if (model::is_homogeneous(nodes)) {
    SymmetricGibbs gibbs(nodes.size(), nodes.front(), mode, sigma);
    sums = gibbs.burst_sums(p4.eta.front());
  } else {
    ExactGibbs gibbs(nodes, mode, sigma);
    sums = gibbs.burst_sums(p4.eta);
  }
  return std::exp(sums.log_success_mass - sums.log_burst_rate);
}

double anyput_burst_closed_form(double sigma) {
  if (!(sigma > 0.0)) throw std::invalid_argument("sigma must be positive");
  return std::exp(1.0 / sigma);
}

}  // namespace econcast::gibbs
