#include "gibbs/exact.h"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "util/logsumexp.h"

namespace econcast::gibbs {

using model::NetState;

ExactGibbs::ExactGibbs(model::NodeSet nodes, model::Mode mode, double sigma)
    : nodes_(std::move(nodes)), mode_(mode), sigma_(sigma) {
  model::validate(nodes_);
  if (!(sigma > 0.0)) throw std::invalid_argument("sigma must be positive");
  if (nodes_.size() > 16)
    throw std::invalid_argument(
        "ExactGibbs supports N <= 16; use SymmetricGibbs for large "
        "homogeneous networks");
}

void ExactGibbs::check_eta(const std::vector<double>& eta) const {
  if (eta.size() != nodes_.size())
    throw std::invalid_argument("eta size mismatch");
}

double ExactGibbs::log_weight(const NetState& state,
                              const std::vector<double>& eta) const {
  double exponent = model::state_throughput(state, mode_);
  std::uint64_t mask = state.listeners;
  while (mask) {
    const int i = std::countr_zero(mask);
    exponent -= eta[static_cast<std::size_t>(i)] *
                nodes_[static_cast<std::size_t>(i)].listen_power;
    mask &= mask - 1;
  }
  if (state.has_transmitter()) {
    const auto tx = static_cast<std::size_t>(state.transmitter);
    exponent -= eta[tx] * nodes_[tx].transmit_power;
  }
  return exponent / sigma_;
}

Marginals ExactGibbs::marginals(const std::vector<double>& eta) const {
  check_eta(eta);
  const std::size_t n = nodes_.size();

  // First pass: log Z. Second pass folded in by accumulating per-node and
  // throughput expectations as weighted log-sums.
  util::LogSumExp log_z;
  model::for_each_state(n, [&](const NetState& s) {
    log_z.add(log_weight(s, eta));
  });
  const double lz = log_z.value();

  Marginals out;
  out.log_partition = lz;
  out.alpha.assign(n, 0.0);
  out.beta.assign(n, 0.0);
  double expected_t = 0.0;
  double expected_exponent = 0.0;  // E[log-weight] for the entropy
  model::for_each_state(n, [&](const NetState& s) {
    const double lw = log_weight(s, eta);
    const double p = std::exp(lw - lz);
    if (p == 0.0) return;
    std::uint64_t mask = s.listeners;
    while (mask) {
      const int i = std::countr_zero(mask);
      out.alpha[static_cast<std::size_t>(i)] += p;
      mask &= mask - 1;
    }
    if (s.has_transmitter())
      out.beta[static_cast<std::size_t>(s.transmitter)] += p;
    expected_t += p * model::state_throughput(s, mode_);
    expected_exponent += p * lw;
  });
  out.expected_throughput = expected_t;
  out.entropy = lz - expected_exponent;
  return out;
}

BurstSums ExactGibbs::burst_sums(const std::vector<double>& eta) const {
  check_eta(eta);
  const std::size_t n = nodes_.size();
  util::LogSumExp log_z, mass, rate;
  model::for_each_state(n, [&](const NetState& s) {
    const double lw = log_weight(s, eta);
    log_z.add(lw);
    if (s.has_transmitter() && s.any_listener()) {
      mass.add(lw);
      // Groupput bursts end at rate exp(-c_w/σ), anyput at exp(-γ_w/σ).
      const double end_rate = mode_ == model::Mode::kGroupput
                                  ? static_cast<double>(s.listener_count())
                                  : 1.0;
      rate.add(lw - end_rate / sigma_);
    }
  });
  const double lz = log_z.value();
  return BurstSums{mass.value() - lz, rate.value() - lz};
}

std::vector<double> ExactGibbs::distribution(
    const std::vector<double>& eta) const {
  check_eta(eta);
  const std::size_t n = nodes_.size();
  std::vector<double> pi(model::state_space_size(n));
  util::LogSumExp log_z;
  model::for_each_state(n, [&](const NetState& s) {
    log_z.add(log_weight(s, eta));
  });
  const double lz = log_z.value();
  model::for_each_state(n, [&](const NetState& s) {
    pi[model::state_index(n, s)] = std::exp(log_weight(s, eta) - lz);
  });
  return pi;
}

double ExactGibbs::dual_value(const std::vector<double>& eta) const {
  check_eta(eta);
  util::LogSumExp log_z;
  model::for_each_state(nodes_.size(), [&](const NetState& s) {
    log_z.add(log_weight(s, eta));
  });
  double dual = sigma_ * log_z.value();
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    dual += eta[i] * nodes_[i].budget;
  return dual;
}

std::vector<double> ExactGibbs::dual_gradient(
    const std::vector<double>& eta) const {
  const Marginals m = marginals(eta);
  std::vector<double> grad(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    grad[i] = nodes_[i].budget - (m.alpha[i] * nodes_[i].listen_power +
                                  m.beta[i] * nodes_[i].transmit_power);
  return grad;
}

}  // namespace econcast::gibbs
