#include "protocol/protocol_json.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace econcast::protocol {

namespace {

using util::json::Array;
using util::json::Error;
using util::json::Object;
using util::json::Value;

// Field helpers: absent keys fall back to the struct's default so manifests
// can be written by hand with only the knobs they care about.

double num(const Object& o, const std::string& key, double fallback) {
  const Value* v = o.find(key);
  return v ? v->as_number() : fallback;
}

/// Measured SimResult metrics may legitimately be non-finite, and the writer
/// encodes those as null (see util::json::dump) — so the metric decode maps
/// null back to NaN. Config/spec fields keep the strict num() above: there a
/// null is corruption and must fail loudly, not load as NaN.
double metric(const Object& o, const std::string& key, double fallback) {
  const Value* v = o.find(key);
  return v ? v->as_number_or_nan() : fallback;
}

bool flag(const Object& o, const std::string& key, bool fallback) {
  const Value* v = o.find(key);
  return v ? v->as_bool() : fallback;
}

std::uint64_t u64(const Object& o, const std::string& key,
                  std::uint64_t fallback) {
  const Value* v = o.find(key);
  return v ? util::json::u64_from_string(v->as_string()) : fallback;
}

std::string str(const Object& o, const std::string& key,
                const std::string& fallback) {
  const Value* v = o.find(key);
  return v ? v->as_string() : fallback;
}

Value doubles_to_json(const std::vector<double>& xs) {
  Array a;
  a.reserve(xs.size());
  for (const double x : xs) a.emplace_back(x);
  return Value(std::move(a));
}

std::vector<double> doubles_from_json(const Value& v) {
  std::vector<double> out;
  out.reserve(v.as_array().size());
  for (const Value& x : v.as_array()) out.push_back(x.as_number());
  return out;
}

/// Lenient array decode for per-node metric vectors (null → NaN).
std::vector<double> metrics_from_json(const Value& v) {
  std::vector<double> out;
  out.reserve(v.as_array().size());
  for (const Value& x : v.as_array()) out.push_back(x.as_number_or_nan());
  return out;
}

// ------------------------------------------------------------ enum codecs --

const char* variant_to_token(proto::Variant v) noexcept {
  return v == proto::Variant::kCapture ? "capture" : "non-capture";
}

proto::Variant variant_from_token(const std::string& t) {
  if (t == "capture") return proto::Variant::kCapture;
  if (t == "non-capture") return proto::Variant::kNonCapture;
  throw Error("unknown variant '" + t + "'");
}

const char* schedule_to_token(proto::StepSchedule s) noexcept {
  return s == proto::StepSchedule::kConstant ? "constant" : "theorem1";
}

proto::StepSchedule schedule_from_token(const std::string& t) {
  if (t == "constant") return proto::StepSchedule::kConstant;
  if (t == "theorem1") return proto::StepSchedule::kTheorem1;
  throw Error("unknown step schedule '" + t + "'");
}

const char* estimator_to_token(proto::EstimatorKind k) noexcept {
  switch (k) {
    case proto::EstimatorKind::kPerfect: return "perfect";
    case proto::EstimatorKind::kBinomialThinning: return "binomial-thinning";
    case proto::EstimatorKind::kExistenceOnly: return "existence-only";
  }
  return "perfect";
}

proto::EstimatorKind estimator_from_token(const std::string& t) {
  if (t == "perfect") return proto::EstimatorKind::kPerfect;
  if (t == "binomial-thinning") return proto::EstimatorKind::kBinomialThinning;
  if (t == "existence-only") return proto::EstimatorKind::kExistenceOnly;
  throw Error("unknown estimator kind '" + t + "'");
}

// ----------------------------------------------------------- param codecs --

Value econcast_to_json(const EconCastParams& p) {
  const proto::SimConfig& c = p.config;
  Object o;
  o.set("mode", mode_to_token(c.mode))
      .set("variant", variant_to_token(c.variant))
      .set("sigma", c.sigma)
      .set("multiplier",
           Object{}
               .set("schedule", schedule_to_token(c.multiplier.schedule))
               .set("delta", c.multiplier.delta)
               .set("tau", c.multiplier.tau)
               .set("eta_init", c.multiplier.eta_init))
      .set("adapt_multiplier", c.adapt_multiplier);
  if (!c.eta_init.empty()) o.set("eta_init", doubles_to_json(c.eta_init));
  o.set("auto_step", c.auto_step)
      .set("auto_step_gain", c.auto_step_gain)
      .set("estimator", Object{}
                            .set("kind", estimator_to_token(c.estimator.kind))
                            .set("detect_prob", c.estimator.detect_prob))
      .set("duration", c.duration)
      .set("warmup", c.warmup)
      .set("seed", util::json::u64_to_string(c.seed))
      .set("initial_energy", c.initial_energy)
      .set("energy_guard", c.energy_guard)
      .set("guard_floor", c.guard_floor)
      .set("track_state_occupancy", c.track_state_occupancy)
      .set("queue_engine", sim::to_token(c.queue_engine))
      .set("report_queue_stats", c.report_queue_stats)
      .set("hotpath_engine", sim::to_token(c.hotpath_engine))
      .set("report_hotpath_stats", c.report_hotpath_stats);
  return Value(std::move(o));
}

EconCastParams econcast_from_json(const Object& o) {
  proto::SimConfig c;
  c.mode = mode_from_token(str(o, "mode", mode_to_token(c.mode)));
  c.variant =
      variant_from_token(str(o, "variant", variant_to_token(c.variant)));
  c.sigma = num(o, "sigma", c.sigma);
  if (const Value* m = o.find("multiplier")) {
    const Object& mo = m->as_object();
    c.multiplier.schedule = schedule_from_token(
        str(mo, "schedule", schedule_to_token(c.multiplier.schedule)));
    c.multiplier.delta = num(mo, "delta", c.multiplier.delta);
    c.multiplier.tau = num(mo, "tau", c.multiplier.tau);
    c.multiplier.eta_init = num(mo, "eta_init", c.multiplier.eta_init);
  }
  c.adapt_multiplier = flag(o, "adapt_multiplier", c.adapt_multiplier);
  if (const Value* e = o.find("eta_init")) c.eta_init = doubles_from_json(*e);
  c.auto_step = flag(o, "auto_step", c.auto_step);
  c.auto_step_gain = num(o, "auto_step_gain", c.auto_step_gain);
  if (const Value* e = o.find("estimator")) {
    const Object& eo = e->as_object();
    c.estimator.kind = estimator_from_token(
        str(eo, "kind", estimator_to_token(c.estimator.kind)));
    c.estimator.detect_prob = num(eo, "detect_prob", c.estimator.detect_prob);
  }
  c.duration = num(o, "duration", c.duration);
  c.warmup = num(o, "warmup", c.warmup);
  c.seed = u64(o, "seed", c.seed);
  c.initial_energy = num(o, "initial_energy", c.initial_energy);
  c.energy_guard = flag(o, "energy_guard", c.energy_guard);
  c.guard_floor = num(o, "guard_floor", c.guard_floor);
  c.track_state_occupancy =
      flag(o, "track_state_occupancy", c.track_state_occupancy);
  c.queue_engine = queue_engine_from_token_json(
      str(o, "queue_engine", sim::to_token(c.queue_engine)));
  c.report_queue_stats = flag(o, "report_queue_stats", c.report_queue_stats);
  c.hotpath_engine = hotpath_engine_from_token_json(
      str(o, "hotpath_engine", sim::to_token(c.hotpath_engine)));
  c.report_hotpath_stats =
      flag(o, "report_hotpath_stats", c.report_hotpath_stats);
  return EconCastParams{std::move(c)};
}

Value params_to_json(const ProtocolParams& params) {
  struct Visitor {
    Value operator()(const EconCastParams& p) const {
      return econcast_to_json(p);
    }
    Value operator()(const P4Params& p) const {
      return Value(Object{}
                       .set("mode", mode_to_token(p.mode))
                       .set("sigma", p.sigma));
    }
    Value operator()(const OracleParams& p) const {
      return Value(Object{}.set("mode", mode_to_token(p.mode)));
    }
    Value operator()(const PandaParams& p) const {
      return Value(Object{}
                       .set("optimize", p.optimize)
                       .set("wake_rate", p.wake_rate)
                       .set("listen_window", p.listen_window)
                       .set("simulate", p.simulate)
                       .set("duration", p.duration));
    }
    Value operator()(const BirthdayParams& p) const {
      return Value(Object{}
                       .set("mode", mode_to_token(p.mode))
                       .set("optimize", p.optimize)
                       .set("p_transmit", p.p_transmit)
                       .set("p_listen", p.p_listen)
                       .set("simulate", p.simulate)
                       .set("slots", util::json::u64_to_string(p.slots)));
    }
    Value operator()(const SearchlightParams& p) const {
      return Value(Object{}
                       .set("slot_seconds", p.slot_seconds)
                       .set("beacon_seconds", p.beacon_seconds));
    }
    Value operator()(const TestbedParams& p) const {
      return Value(Object{}
                       .set("sigma", p.sigma)
                       .set("duration_ms", p.duration_ms)
                       .set("warmup_ms", p.warmup_ms)
                       .set("observer", p.observer)
                       .set("queue_engine", sim::to_token(p.queue_engine))
                       .set("report_queue_stats", p.report_queue_stats));
    }
  };
  return std::visit(Visitor{}, params);
}

ProtocolParams params_from_json(const std::string& name, const Object& o) {
  if (name == "econcast") return econcast_from_json(o);
  if (name == "econcast-p4") {
    P4Params p;
    p.mode = mode_from_token(str(o, "mode", mode_to_token(p.mode)));
    p.sigma = num(o, "sigma", p.sigma);
    return p;
  }
  if (name == "oracle") {
    OracleParams p;
    p.mode = mode_from_token(str(o, "mode", mode_to_token(p.mode)));
    return p;
  }
  if (name == "panda") {
    PandaParams p;
    p.optimize = flag(o, "optimize", p.optimize);
    p.wake_rate = num(o, "wake_rate", p.wake_rate);
    p.listen_window = num(o, "listen_window", p.listen_window);
    p.simulate = flag(o, "simulate", p.simulate);
    p.duration = num(o, "duration", p.duration);
    return p;
  }
  if (name == "birthday") {
    BirthdayParams p;
    p.mode = mode_from_token(str(o, "mode", mode_to_token(p.mode)));
    p.optimize = flag(o, "optimize", p.optimize);
    p.p_transmit = num(o, "p_transmit", p.p_transmit);
    p.p_listen = num(o, "p_listen", p.p_listen);
    p.simulate = flag(o, "simulate", p.simulate);
    p.slots = u64(o, "slots", p.slots);
    return p;
  }
  if (name == "searchlight-bound") {
    SearchlightParams p;
    p.slot_seconds = num(o, "slot_seconds", p.slot_seconds);
    p.beacon_seconds = num(o, "beacon_seconds", p.beacon_seconds);
    return p;
  }
  if (name == "econcast-testbed") {
    TestbedParams p;
    p.sigma = num(o, "sigma", p.sigma);
    p.duration_ms = num(o, "duration_ms", p.duration_ms);
    p.warmup_ms = num(o, "warmup_ms", p.warmup_ms);
    p.observer = flag(o, "observer", p.observer);
    p.queue_engine =
        queue_engine_from_token_json(
            str(o, "queue_engine", sim::to_token(p.queue_engine)));
    p.report_queue_stats = flag(o, "report_queue_stats", p.report_queue_stats);
    return p;
  }
  throw Error("protocol '" + name + "' has no JSON parameter codec");
}

/// Rejects non-finite numbers anywhere in an encoded parameter tree. Specs
/// decode strictly (null there is corruption), so letting dump's
/// NaN-as-null encoding into a spec would write a manifest the tool itself
/// cannot reload; fail at the write, next to the cause.
void require_finite_params(const Value& v, const std::string& name) {
  switch (v.kind()) {
    case Value::Kind::kNumber:
      if (!std::isfinite(v.as_number()))
        throw Error("protocol '" + name +
                    "': parameters contain a non-finite value");
      break;
    case Value::Kind::kArray:
      for (const Value& x : v.as_array()) require_finite_params(x, name);
      break;
    case Value::Kind::kObject:
      for (const auto& [key, x] : v.as_object().members())
        require_finite_params(x, name);
      break;
    default: break;
  }
}

/// The serializable protocol names, paired with the variant alternative
/// each one expects — used to reject name/params mismatches on write.
bool params_match_name(const std::string& name, const ProtocolParams& params) {
  if (name == "econcast")
    return std::holds_alternative<EconCastParams>(params);
  if (name == "econcast-p4") return std::holds_alternative<P4Params>(params);
  if (name == "oracle") return std::holds_alternative<OracleParams>(params);
  if (name == "panda") return std::holds_alternative<PandaParams>(params);
  if (name == "birthday")
    return std::holds_alternative<BirthdayParams>(params);
  if (name == "searchlight-bound")
    return std::holds_alternative<SearchlightParams>(params);
  if (name == "econcast-testbed")
    return std::holds_alternative<TestbedParams>(params);
  return false;
}

}  // namespace

const char* mode_to_token(model::Mode mode) noexcept {
  return model::to_string(mode);  // "groupput" / "anyput"
}

model::Mode mode_from_token(const std::string& token) {
  if (token == "groupput") return model::Mode::kGroupput;
  if (token == "anyput") return model::Mode::kAnyput;
  throw Error("unknown mode '" + token + "'");
}

sim::QueueEngine queue_engine_from_token_json(const std::string& token) {
  try {
    return sim::queue_engine_from_token(token);
  } catch (const std::invalid_argument& e) {
    throw Error(e.what());
  }
}

sim::HotpathEngine hotpath_engine_from_token_json(const std::string& token) {
  try {
    return sim::hotpath_engine_from_token(token);
  } catch (const std::invalid_argument& e) {
    throw Error(e.what());
  }
}

Value to_json(const ProtocolSpec& spec) {
  if (!params_match_name(spec.name, spec.params))
    throw Error("protocol '" + spec.name +
                "' is not JSON-serializable (custom protocol, or params do "
                "not match the name)");
  Value params = params_to_json(spec.params);
  require_finite_params(params, spec.name);
  Object o;
  o.set("name", spec.name)
      .set("seed", util::json::u64_to_string(spec.seed))
      .set("params", std::move(params));
  return Value(std::move(o));
}

ProtocolSpec spec_from_json(const Value& value) {
  const Object& o = value.as_object();
  ProtocolSpec spec;
  spec.name = o.at("name").as_string();
  spec.seed = u64(o, "seed", spec.seed);
  const Value* params = o.find("params");
  static const Object empty;
  spec.params = params_from_json(spec.name,
                                 params ? params->as_object() : empty);
  return spec;
}

Value to_json(const SimResult& result) {
  // Latencies live in a SampleSet whose percentile/cdf queries sort, and
  // NaN breaks strict weak ordering — so the latency wire format carries
  // finite samples only, symmetric with the decode below. Scalar metrics
  // keep the null encoding instead (they are never sorted).
  Array latencies;
  latencies.reserve(result.latencies.samples().size());
  for (const double x : result.latencies.samples())
    if (std::isfinite(x)) latencies.emplace_back(x);

  Object bursts;
  bursts.set("count",
             Value(static_cast<double>(result.burst_lengths.count())))
      .set("mean", result.burst_lengths.mean())
      .set("m2", result.burst_lengths.m2())
      .set("min", result.burst_lengths.min())
      .set("max", result.burst_lengths.max());
  Object extras;
  for (const auto& [key, v] : result.extras) extras.set(key, v);
  Object o;
  o.set("measured_window", result.measured_window)
      .set("groupput", result.groupput)
      .set("anyput", result.anyput)
      .set("avg_power", doubles_to_json(result.avg_power))
      .set("listen_fraction", doubles_to_json(result.listen_fraction))
      .set("transmit_fraction", doubles_to_json(result.transmit_fraction))
      .set("burst_lengths", std::move(bursts))
      .set("latencies", std::move(latencies))
      .set("packets_sent", util::json::u64_to_string(result.packets_sent))
      .set("packets_received",
           util::json::u64_to_string(result.packets_received))
      .set("extras", std::move(extras));
  return Value(std::move(o));
}

SimResult sim_result_from_json(const Value& value) {
  const Object& o = value.as_object();
  SimResult r;
  r.measured_window = metric(o, "measured_window", 0.0);
  r.groupput = metric(o, "groupput", 0.0);
  r.anyput = metric(o, "anyput", 0.0);
  if (const Value* v = o.find("avg_power")) r.avg_power = metrics_from_json(*v);
  if (const Value* v = o.find("listen_fraction"))
    r.listen_fraction = metrics_from_json(*v);
  if (const Value* v = o.find("transmit_fraction"))
    r.transmit_fraction = metrics_from_json(*v);
  if (const Value* v = o.find("burst_lengths")) {
    const Object& b = v->as_object();
    // count stays strict: it is integral by construction, and a null here
    // would otherwise reach a double-to-size_t cast as NaN (UB).
    r.burst_lengths = util::RunningStats::restore(
        static_cast<std::size_t>(num(b, "count", 0.0)),
        metric(b, "mean", 0.0), metric(b, "m2", 0.0), metric(b, "min", 0.0),
        metric(b, "max", 0.0));
  }
  if (const Value* v = o.find("latencies"))
    for (const Value& x : v->as_array()) {
      // The writer never emits non-finite latencies (see to_json); dropping
      // any that appear keeps a hand-edited file from planting NaN in a
      // container whose sort-based queries NaN would break.
      const double latency = x.as_number_or_nan();
      if (std::isfinite(latency)) r.latencies.add(latency);
    }
  r.packets_sent = u64(o, "packets_sent", 0);
  r.packets_received = u64(o, "packets_received", 0);
  if (const Value* v = o.find("extras"))
    for (const auto& [key, x] : v->as_object().members())
      r.extras[key] = x.as_number_or_nan();
  return r;
}

}  // namespace econcast::protocol
