// JSON codecs for the protocol layer: ProtocolSpec (registry name + typed
// parameters) and SimResult. These are the leaves of the sweep-manifest
// format — runner::SweepSpec manifests embed ProtocolSpecs, and the
// checkpoint JSONL stream embeds one SimResult per completed cell.
//
// Round-trip guarantees: spec_from_json(to_json(s)) reconstructs the exact
// parameter values (doubles bit-for-bit via the writer's shortest-round-trip
// formatting; 64-bit seeds/counters as decimal strings), and a SimResult
// survives the trip with every metric — including the RunningStats/SampleSet
// internals — bit-identical, which is what lets a resumed sweep reproduce an
// uninterrupted run's aggregates exactly.
//
// Only the built-in protocols serialize: custom registry entries carry
// arbitrary typed params this codec cannot name. to_json throws
// util::json::Error for specs whose name has no codec.
#ifndef ECONCAST_PROTOCOL_PROTOCOL_JSON_H
#define ECONCAST_PROTOCOL_PROTOCOL_JSON_H

#include "protocol/protocol.h"
#include "util/json.h"

namespace econcast::protocol {

util::json::Value to_json(const ProtocolSpec& spec);
ProtocolSpec spec_from_json(const util::json::Value& value);

util::json::Value to_json(const SimResult& result);
SimResult sim_result_from_json(const util::json::Value& value);

/// Mode codec shared with the runner's manifest layer ("groupput"/"anyput").
const char* mode_to_token(model::Mode mode) noexcept;
model::Mode mode_from_token(const std::string& token);

/// sim::queue_engine_from_token with the failure re-raised as a
/// util::json::Error, so manifest/spec loads keep their "json::Error on
/// malformed content" contract. Shared with the runner's manifest layer
/// (the runner.queue_engine override uses the same tokens).
sim::QueueEngine queue_engine_from_token_json(const std::string& token);

/// sim::hotpath_engine_from_token with the same json::Error re-raise; shared
/// with the runner's manifest layer (runner.hotpath_engine override).
sim::HotpathEngine hotpath_engine_from_token_json(const std::string& token);

}  // namespace econcast::protocol

#endif  // ECONCAST_PROTOCOL_PROTOCOL_JSON_H
