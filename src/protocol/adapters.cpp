// Built-in Protocol adapters: EconCast (discrete-event sim, P4 analytic,
// testbed firmware), the prior-art baselines (Panda, Birthday, the
// Searchlight bound) and the oracle, all mapped onto the unified
// protocol::SimResult so runner::ScenarioRunner can mix them in one batch.
#include <cmath>
#include <stdexcept>
#include <utility>

#include "baselines/birthday.h"
#include "baselines/panda.h"
#include "baselines/searchlight.h"
#include "gibbs/p4_solver.h"
#include "oracle/clique_oracle.h"
#include "protocol/protocol.h"
#include "testbed/firmware.h"

namespace econcast::protocol {

namespace {

// ---------------------------------------------------------------- helpers --

/// Queue instrumentation -> extras, shared by the two discrete-event
/// protocols (econcast and the testbed firmware). Opt-in per config so
/// default outputs stay byte-identical; the counters are
/// backend-independent, so enabling them still cannot make results differ
/// across queue engines.
void report_queue_stats(SimResult& out, const sim::QueueStats& stats) {
  out.extras["queue_pushes"] = static_cast<double>(stats.pushes);
  out.extras["queue_pops"] = static_cast<double>(stats.pops);
  out.extras["queue_stale_drops"] = static_cast<double>(stats.stale_drops);
  out.extras["queue_peak_live"] = static_cast<double>(stats.peak_live);
}

/// Hot-path instrumentation -> extras, opt-in like the queue counters. The
/// query/toggle counters are engine-independent for identical trajectories;
/// listener_scans distinguishes the engines (0 under kOptimized).
void report_hotpath_stats(SimResult& out, const sim::HotpathStats& stats) {
  out.extras["hotpath_listener_queries"] =
      static_cast<double>(stats.listener_queries);
  out.extras["hotpath_listener_scans"] =
      static_cast<double>(stats.listener_scans);
  out.extras["hotpath_listen_toggles"] =
      static_cast<double>(stats.listen_toggles);
  out.extras["hotpath_toggle_drains"] =
      static_cast<double>(stats.toggle_drains);
  out.extras["hotpath_arena_bytes"] = static_cast<double>(stats.arena_bytes);
  out.extras["hotpath_arena_chunks"] = static_cast<double>(stats.arena_chunks);
}

void require_clique(const model::Topology& topology, const char* protocol) {
  if (!topology.is_clique())
    throw std::invalid_argument(std::string(protocol) +
                                ": requires a clique topology");
}

const model::NodeParams& require_homogeneous(const model::NodeSet& nodes,
                                             const char* protocol) {
  if (nodes.empty())
    throw std::invalid_argument(std::string(protocol) + ": empty node set");
  if (!model::is_homogeneous(nodes))
    throw std::invalid_argument(
        std::string(protocol) +
        ": requires homogeneous nodes (one of the coordination requirements "
        "EconCast removes)");
  return nodes.front();
}

template <typename Params>
const Params& expect_params(const ProtocolParams& params,
                            const char* protocol) {
  const Params* p = std::get_if<Params>(&params);
  if (p == nullptr)
    throw std::invalid_argument(std::string("protocol '") + protocol +
                                "': ProtocolSpec carries parameters of the "
                                "wrong type");
  return *p;
}

/// A Sim whose whole run is one deferred computation (the analytic
/// protocols and the thin simulator wrappers below).
class LambdaSim final : public Sim {
 public:
  explicit LambdaSim(std::function<SimResult()> fn) : fn_(std::move(fn)) {}
  SimResult run() override { return fn_(); }

 private:
  std::function<SimResult()> fn_;
};

std::vector<double> power_from_fractions(const model::NodeSet& nodes,
                                         const std::vector<double>& alpha,
                                         const std::vector<double>& beta) {
  std::vector<double> power(nodes.size(), 0.0);
  for (std::size_t i = 0; i < nodes.size(); ++i)
    power[i] =
        alpha[i] * nodes[i].listen_power + beta[i] * nodes[i].transmit_power;
  return power;
}

// --------------------------------------------------------------- econcast --

class EconCastProtocol final : public Protocol {
 public:
  explicit EconCastProtocol(EconCastParams params)
      : params_(std::move(params)) {}

  std::string name() const override { return "econcast"; }

  std::unique_ptr<Sim> make_sim(const model::NodeSet& nodes,
                                const model::Topology& topology,
                                std::uint64_t seed) const override {
    proto::SimConfig config = params_.config;
    config.seed = seed;
    const bool queue_stats = config.report_queue_stats;
    const bool hotpath_stats = config.report_hotpath_stats;
    return std::make_unique<LambdaSim>(
        [sim = std::make_shared<proto::Simulation>(nodes, topology,
                                                   std::move(config)),
         queue_stats, hotpath_stats] {
          proto::SimResult r = sim->run();
          SimResult out;
          out.measured_window = r.measured_window;
          out.groupput = r.groupput;
          out.anyput = r.anyput;
          out.avg_power = std::move(r.avg_power);
          out.listen_fraction = std::move(r.listen_fraction);
          out.transmit_fraction = std::move(r.transmit_fraction);
          out.burst_lengths = r.burst_lengths;
          out.latencies = std::move(r.latencies);
          out.packets_sent = r.packets_sent;
          out.packets_received = r.packets_received;
          out.extras["bursts"] = static_cast<double>(r.bursts);
          out.extras["corrupted_receptions"] =
              static_cast<double>(r.corrupted_receptions);
          out.extras["events_processed"] =
              static_cast<double>(r.events_processed);
          if (queue_stats) report_queue_stats(out, r.queue_stats);
          if (hotpath_stats) report_hotpath_stats(out, r.hotpath_stats);
          return out;
        });
  }

 private:
  EconCastParams params_;
};

// ------------------------------------------------------------ econcast-p4 --

class P4Protocol final : public Protocol {
 public:
  explicit P4Protocol(P4Params params) : params_(params) {}

  std::string name() const override { return "econcast-p4"; }

  std::unique_ptr<Sim> make_sim(const model::NodeSet& nodes,
                                const model::Topology& topology,
                                std::uint64_t /*seed*/) const override {
    require_clique(topology, "econcast-p4");
    return std::make_unique<LambdaSim>([nodes, params = params_] {
      const gibbs::P4Result p4 =
          gibbs::solve_p4(nodes, params.mode, params.sigma);
      SimResult out;
      (params.mode == model::Mode::kGroupput ? out.groupput : out.anyput) =
          p4.throughput;
      out.avg_power = power_from_fractions(nodes, p4.alpha, p4.beta);
      out.listen_fraction = p4.alpha;
      out.transmit_fraction = p4.beta;
      out.extras["objective"] = p4.objective;
      out.extras["iterations"] = static_cast<double>(p4.iterations);
      out.extras["converged"] = p4.converged ? 1.0 : 0.0;
      return out;
    });
  }

 private:
  P4Params params_;
};

// ----------------------------------------------------------------- oracle --

class OracleProtocol final : public Protocol {
 public:
  explicit OracleProtocol(OracleParams params) : params_(params) {}

  std::string name() const override { return "oracle"; }

  std::unique_ptr<Sim> make_sim(const model::NodeSet& nodes,
                                const model::Topology& topology,
                                std::uint64_t /*seed*/) const override {
    require_clique(topology, "oracle");
    return std::make_unique<LambdaSim>([nodes, params = params_] {
      const oracle::OracleSolution sol = oracle::solve(nodes, params.mode);
      SimResult out;
      (params.mode == model::Mode::kGroupput ? out.groupput : out.anyput) =
          sol.throughput;
      out.avg_power = power_from_fractions(nodes, sol.alpha, sol.beta);
      out.listen_fraction = sol.alpha;
      out.transmit_fraction = sol.beta;
      return out;
    });
  }

 private:
  OracleParams params_;
};

// ------------------------------------------------------------------ panda --

class PandaProtocol final : public Protocol {
 public:
  explicit PandaProtocol(PandaParams params) : params_(params) {}

  std::string name() const override { return "panda"; }

  std::unique_ptr<Sim> make_sim(const model::NodeSet& nodes,
                                const model::Topology& topology,
                                std::uint64_t seed) const override {
    require_clique(topology, "panda");
    const model::NodeParams node = require_homogeneous(nodes, "panda");
    const std::size_t n = nodes.size();

    baselines::PandaDesign design;
    if (params_.optimize) {
      design = baselines::optimize_panda(n, node.budget, node.listen_power,
                                         node.transmit_power);
    } else {
      design.wake_rate = params_.wake_rate;
      design.listen_window = params_.listen_window;
      design.throughput = baselines::panda_throughput(n, design.wake_rate,
                                                      design.listen_window);
      design.power =
          baselines::panda_power(n, design.wake_rate, design.listen_window,
                                 node.listen_power, node.transmit_power);
    }

    if (!params_.simulate) {
      return std::make_unique<LambdaSim>([n, design] {
        SimResult out;
        out.groupput = design.throughput;
        out.avg_power.assign(n, design.power);
        out.extras["wake_rate"] = design.wake_rate;
        out.extras["listen_window"] = design.listen_window;
        return out;
      });
    }
    return std::make_unique<LambdaSim>(
        [n, node, design, duration = params_.duration, seed] {
          const baselines::PandaSimDetail d = baselines::simulate_panda_detailed(
              n, design.wake_rate, design.listen_window, duration, seed);
          SimResult out;
          out.measured_window = d.duration;
          out.groupput = static_cast<double>(d.receptions) / d.duration;
          out.anyput = static_cast<double>(d.packets_received_any) / d.duration;
          out.packets_sent = d.packets;
          out.packets_received = d.receptions;
          out.listen_fraction.resize(n);
          out.transmit_fraction.resize(n);
          out.avg_power.resize(n);
          for (std::size_t i = 0; i < n; ++i) {
            out.listen_fraction[i] = d.listen_time[i] / d.duration;
            out.transmit_fraction[i] = d.transmit_time[i] / d.duration;
            out.avg_power[i] =
                out.listen_fraction[i] * node.listen_power +
                out.transmit_fraction[i] * node.transmit_power;
          }
          out.extras["wake_rate"] = design.wake_rate;
          out.extras["listen_window"] = design.listen_window;
          return out;
        });
  }

 private:
  PandaParams params_;
};

// --------------------------------------------------------------- birthday --

class BirthdayProtocol final : public Protocol {
 public:
  explicit BirthdayProtocol(BirthdayParams params) : params_(params) {}

  std::string name() const override { return "birthday"; }

  std::unique_ptr<Sim> make_sim(const model::NodeSet& nodes,
                                const model::Topology& topology,
                                std::uint64_t seed) const override {
    require_clique(topology, "birthday");
    const model::NodeParams node = require_homogeneous(nodes, "birthday");
    const std::size_t n = nodes.size();

    double p_transmit = params_.p_transmit;
    double p_listen = params_.p_listen;
    if (params_.optimize) {
      const baselines::BirthdayDesign design = baselines::optimize_birthday(
          n, node.budget, node.listen_power, node.transmit_power,
          params_.mode);
      p_transmit = design.p_transmit;
      p_listen = design.p_listen;
    }

    if (!params_.simulate) {
      return std::make_unique<LambdaSim>([n, node, p_transmit, p_listen] {
        SimResult out;
        out.groupput = baselines::birthday_throughput(
            n, p_transmit, p_listen, model::Mode::kGroupput);
        out.anyput = baselines::birthday_throughput(n, p_transmit, p_listen,
                                                    model::Mode::kAnyput);
        out.listen_fraction.assign(n, p_listen);
        out.transmit_fraction.assign(n, p_transmit);
        out.avg_power.assign(n, p_listen * node.listen_power +
                                    p_transmit * node.transmit_power);
        out.extras["p_transmit"] = p_transmit;
        out.extras["p_listen"] = p_listen;
        return out;
      });
    }
    return std::make_unique<LambdaSim>(
        [n, node, p_transmit, p_listen, slots = params_.slots, seed] {
          const baselines::BirthdaySimDetail d =
              baselines::simulate_birthday_detailed(n, p_transmit, p_listen,
                                                    slots, seed);
          const double window = static_cast<double>(d.slots);
          SimResult out;
          out.measured_window = window;
          out.groupput = d.groupput_credit / window;
          out.anyput = d.anyput_credit / window;
          out.packets_sent = d.packets;
          out.packets_received =
              static_cast<std::uint64_t>(d.groupput_credit);
          out.listen_fraction.resize(n);
          out.transmit_fraction.resize(n);
          out.avg_power.resize(n);
          for (std::size_t i = 0; i < n; ++i) {
            out.listen_fraction[i] =
                static_cast<double>(d.listen_slots[i]) / window;
            out.transmit_fraction[i] =
                static_cast<double>(d.transmit_slots[i]) / window;
            out.avg_power[i] =
                out.listen_fraction[i] * node.listen_power +
                out.transmit_fraction[i] * node.transmit_power;
          }
          out.extras["p_transmit"] = p_transmit;
          out.extras["p_listen"] = p_listen;
          return out;
        });
  }

 private:
  BirthdayParams params_;
};

// ------------------------------------------------------ searchlight-bound --

class SearchlightBoundProtocol final : public Protocol {
 public:
  explicit SearchlightBoundProtocol(SearchlightParams params)
      : params_(params) {}

  std::string name() const override { return "searchlight-bound"; }

  std::unique_ptr<Sim> make_sim(const model::NodeSet& nodes,
                                const model::Topology& topology,
                                std::uint64_t /*seed*/) const override {
    require_clique(topology, "searchlight-bound");
    const model::NodeParams node =
        require_homogeneous(nodes, "searchlight-bound");
    baselines::SearchlightConfig config;
    config.budget = node.budget;
    config.listen_power = node.listen_power;
    config.slot_seconds = params_.slot_seconds;
    config.beacon_seconds = params_.beacon_seconds;
    return std::make_unique<LambdaSim>([n = nodes.size(), config] {
      const baselines::SearchlightResult r =
          baselines::analyze_searchlight(config);
      SimResult out;
      out.groupput = r.groupput_upper_bound(n);
      out.extras["period_slots"] = static_cast<double>(r.period_slots);
      out.extras["duty_cycle"] = r.duty_cycle;
      out.extras["worst_latency_seconds"] = r.worst_latency_seconds;
      out.extras["mean_latency_seconds"] = r.mean_latency_seconds;
      out.extras["rendezvous_per_second"] = r.rendezvous_per_second;
      out.extras["pairwise_throughput"] = r.pairwise_throughput;
      return out;
    });
  }

 private:
  SearchlightParams params_;
};

// ------------------------------------------------------- econcast-testbed --

class TestbedProtocol final : public Protocol {
 public:
  explicit TestbedProtocol(TestbedParams params) : params_(params) {}

  std::string name() const override { return "econcast-testbed"; }

  std::unique_ptr<Sim> make_sim(const model::NodeSet& nodes,
                                const model::Topology& topology,
                                std::uint64_t seed) const override {
    require_clique(topology, "econcast-testbed");
    const model::NodeParams node =
        require_homogeneous(nodes, "econcast-testbed");
    testbed::TestbedConfig config;
    config.n = nodes.size();
    config.budget_mw = node.budget;
    config.hw.listen_power_mw = node.listen_power;
    config.hw.transmit_power_mw = node.transmit_power;
    config.sigma = params_.sigma;
    config.duration_ms = params_.duration_ms;
    config.warmup_ms = params_.warmup_ms;
    config.observer = params_.observer;
    config.queue_engine = params_.queue_engine;
    config.seed = seed;
    return std::make_unique<LambdaSim>([config,
                                        queue_stats =
                                            params_.report_queue_stats] {
      const testbed::TestbedResult r = testbed::run_testbed(config);
      SimResult out;
      out.measured_window = r.measured_window_ms;
      out.groupput = r.groupput;
      out.avg_power = r.actual_power_mw;
      out.packets_sent = r.packets;
      out.extras["bursts"] = static_cast<double>(r.bursts);
      out.extras["battery_ratio_mean"] = r.battery_ratio_mean;
      out.extras["battery_ratio_min"] = r.battery_ratio_min;
      out.extras["battery_ratio_max"] = r.battery_ratio_max;
      out.extras["pings_sent"] = static_cast<double>(r.pings_sent);
      out.extras["pings_lost_collision"] =
          static_cast<double>(r.pings_lost_collision);
      out.extras["pings_lost_decode"] =
          static_cast<double>(r.pings_lost_decode);
      if (queue_stats) report_queue_stats(out, r.queue_stats);
      return out;
    });
  }

 private:
  TestbedParams params_;
};

template <typename ProtocolT, typename ParamsT>
ProtocolRegistry::Factory make_factory(const char* name) {
  return [name](const ProtocolParams& params) {
    return std::make_shared<ProtocolT>(expect_params<ParamsT>(params, name));
  };
}

}  // namespace

void register_builtin_protocols(ProtocolRegistry& registry) {
  registry.add("econcast",
               make_factory<EconCastProtocol, EconCastParams>("econcast"));
  registry.add("econcast-p4",
               make_factory<P4Protocol, P4Params>("econcast-p4"));
  registry.add("oracle", make_factory<OracleProtocol, OracleParams>("oracle"));
  registry.add("panda", make_factory<PandaProtocol, PandaParams>("panda"));
  registry.add("birthday",
               make_factory<BirthdayProtocol, BirthdayParams>("birthday"));
  registry.add("searchlight-bound",
               make_factory<SearchlightBoundProtocol, SearchlightParams>(
                   "searchlight-bound"));
  registry.add("econcast-testbed",
               make_factory<TestbedProtocol, TestbedParams>(
                   "econcast-testbed"));
}

}  // namespace econcast::protocol
