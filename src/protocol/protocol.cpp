#include "protocol/protocol.h"

#include <stdexcept>
#include <utility>

namespace econcast::protocol {

double SimResult::extra(const std::string& key, double fallback) const {
  const auto it = extras.find(key);
  return it == extras.end() ? fallback : it->second;
}

std::uint64_t effective_seed(const ProtocolSpec& spec) noexcept {
  if (const auto* econcast = std::get_if<EconCastParams>(&spec.params))
    return econcast->config.seed;
  return spec.seed;
}

ProtocolSpec econcast_spec(proto::SimConfig config) {
  ProtocolSpec spec;
  spec.name = "econcast";
  spec.seed = config.seed;
  spec.params = EconCastParams{std::move(config)};
  return spec;
}

ProtocolSpec p4_spec(model::Mode mode, double sigma) {
  return ProtocolSpec{"econcast-p4", P4Params{mode, sigma}, 1};
}

ProtocolSpec oracle_spec(model::Mode mode) {
  return ProtocolSpec{"oracle", OracleParams{mode}, 1};
}

ProtocolSpec panda_spec(PandaParams params) {
  return ProtocolSpec{"panda", std::move(params), 1};
}

ProtocolSpec birthday_spec(BirthdayParams params) {
  return ProtocolSpec{"birthday", std::move(params), 1};
}

ProtocolSpec searchlight_spec(SearchlightParams params) {
  return ProtocolSpec{"searchlight-bound", std::move(params), 1};
}

ProtocolSpec testbed_spec(TestbedParams params) {
  return ProtocolSpec{"econcast-testbed", std::move(params), 1};
}

ProtocolSpec specialized(ProtocolSpec spec, model::Mode mode, double sigma) {
  struct Visitor {
    model::Mode mode;
    double sigma;
    void operator()(EconCastParams& p) const {
      p.config.mode = mode;
      p.config.sigma = sigma;
    }
    void operator()(P4Params& p) const {
      p.mode = mode;
      p.sigma = sigma;
    }
    void operator()(OracleParams& p) const { p.mode = mode; }
    void operator()(PandaParams&) const {}  // Panda has no mode/σ knob
    void operator()(BirthdayParams& p) const { p.mode = mode; }
    void operator()(SearchlightParams&) const {}
    void operator()(TestbedParams& p) const { p.sigma = sigma; }
  };
  std::visit(Visitor{mode, sigma}, spec.params);
  return spec;
}

void set_queue_engine(ProtocolSpec& spec, sim::QueueEngine engine) {
  if (auto* econ = std::get_if<EconCastParams>(&spec.params)) {
    econ->config.queue_engine = engine;
  } else if (auto* testbed = std::get_if<TestbedParams>(&spec.params)) {
    testbed->queue_engine = engine;
  }
}

void set_hotpath_engine(ProtocolSpec& spec, sim::HotpathEngine engine) {
  if (auto* p = std::get_if<EconCastParams>(&spec.params))
    p->config.hotpath_engine = engine;
}

ProtocolRegistry& ProtocolRegistry::global() {
  static ProtocolRegistry* const registry = [] {
    auto* r = new ProtocolRegistry();
    register_builtin_protocols(*r);
    return r;
  }();
  return *registry;
}

void ProtocolRegistry::add(std::string name, Factory factory) {
  if (name.empty())
    throw std::invalid_argument("protocol registry: empty name");
  if (!factory)
    throw std::invalid_argument("protocol registry: null factory for '" +
                                name + "'");
  const auto [it, inserted] =
      factories_.emplace(std::move(name), std::move(factory));
  if (!inserted)
    throw std::invalid_argument("protocol registry: '" + it->first +
                                "' already registered");
}

bool ProtocolRegistry::contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map iterates in sorted key order
}

std::shared_ptr<const Protocol> ProtocolRegistry::create(
    const ProtocolSpec& spec) const {
  const auto it = factories_.find(spec.name);
  if (it == factories_.end())
    throw std::invalid_argument("protocol registry: unknown protocol '" +
                                spec.name + "'");
  return it->second(spec.params);
}

}  // namespace econcast::protocol
