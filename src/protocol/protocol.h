// Protocol-agnostic simulation API. The paper's evaluation is comparative —
// every figure overlays EconCast against Panda, Birthday and Searchlight
// under identical (N, ρ, L, X) settings — so the protocols must be
// interchangeable units of work: a `Protocol` builds a runnable `Sim` from
// (nodes, topology, seed), every `Sim` produces the same `SimResult` shape,
// and a string-keyed `ProtocolRegistry` lets scenario descriptions refer to
// protocols by name ("econcast", "panda", "birthday", "searchlight-bound",
// ...). runner::ScenarioRunner executes any mix of them in one batch under
// one determinism contract.
//
// Analytic baselines (the Panda/Birthday closed-form optima, the Searchlight
// bound, the P4 achievable throughput, the oracle) fit the same interface:
// their `Sim` ignores the seed and returns the deterministic model values,
// which is exactly how the paper's Fig. 3 / Table III columns are defined.
#ifndef ECONCAST_PROTOCOL_PROTOCOL_H
#define ECONCAST_PROTOCOL_PROTOCOL_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "econcast/simulation.h"
#include "model/network.h"
#include "model/node_params.h"
#include "model/state_space.h"
#include "util/stats.h"

namespace econcast::protocol {

/// The metric surface every protocol reports. Fields a protocol does not
/// measure stay at their empty defaults; protocol-specific scalars (wake
/// rate, ping losses, iteration counts, ...) go into `extras`.
struct SimResult {
  double measured_window = 0.0;  // simulated time covered (0 for analytic)
  double groupput = 0.0;         // received packet-time per unit time
  double anyput = 0.0;

  std::vector<double> avg_power;          // measured consumption per node
  std::vector<double> listen_fraction;    // measured α_i
  std::vector<double> transmit_fraction;  // measured β_i

  util::RunningStats burst_lengths;  // packets per received burst
  util::SampleSet latencies;         // inter-delivery gaps (protocol units)

  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;

  /// Protocol-specific scalars, keyed by stable snake_case names (e.g.
  /// "events_processed", "wake_rate", "worst_latency_seconds").
  std::map<std::string, double> extras;

  /// extras[key], or `fallback` when the protocol did not report it.
  double extra(const std::string& key, double fallback = 0.0) const;
};

/// A runnable simulation instance bound to one (nodes, topology, seed).
class Sim {
 public:
  virtual ~Sim() = default;

  /// Runs to completion and collects results. Call once.
  virtual SimResult run() = 0;
};

/// A protocol: a factory of Sims. Implementations carry their own tuned
/// parameters (σ, wake rate, slot probabilities, ...); the network and the
/// seed arrive per run so one Protocol instance can serve a whole sweep.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// The registry key this protocol answers to (diagnostics only).
  virtual std::string name() const = 0;

  /// Builds a runnable sim. Throws std::invalid_argument when the protocol
  /// cannot operate on the given network (e.g. Panda requires a homogeneous
  /// clique). Analytic protocols ignore `seed`.
  virtual std::unique_ptr<Sim> make_sim(const model::NodeSet& nodes,
                                        const model::Topology& topology,
                                        std::uint64_t seed) const = 0;
};

// ---------------------------------------------------------------------------
// Typed per-protocol parameters. A ProtocolSpec pairs a registry name with
// one of these; the registry factory checks it received the matching type.
// ---------------------------------------------------------------------------

/// "econcast": the §V discrete-event simulation (config.seed is overridden
/// by the per-run seed).
struct EconCastParams {
  proto::SimConfig config;
};

/// "econcast-p4": the analytic achievable throughput T^σ via the (P4)
/// solver — the curve the paper normalizes everything against.
struct P4Params {
  model::Mode mode = model::Mode::kGroupput;
  double sigma = 0.5;
};

/// "oracle": the centralized upper bound T* ((P2)/(P3) LPs).
struct OracleParams {
  model::Mode mode = model::Mode::kGroupput;
};

/// "panda": Margolies et al. neighbor discovery. With `optimize` the
/// (λ, w) design is derived from the node budget/powers (the paper's
/// comparison point); otherwise `wake_rate`/`listen_window` are used as
/// given. With `simulate` the event-driven simulator runs for `duration`
/// packet-times; otherwise the renewal-reward model values are reported.
struct PandaParams {
  bool optimize = true;
  double wake_rate = 0.0;
  double listen_window = 0.0;
  bool simulate = false;
  double duration = 1e6;
};

/// "birthday": McGlynn & Borbash slotted discovery. Same optimize/simulate
/// split as Panda; `slots` is the simulated horizon (1 slot = 1 packet-time).
struct BirthdayParams {
  model::Mode mode = model::Mode::kGroupput;
  bool optimize = true;
  double p_transmit = 0.0;
  double p_listen = 0.0;
  bool simulate = false;
  std::uint64_t slots = 1000000;
};

/// "searchlight-bound": the paper's Searchlight groupput upper bound
/// ((N-1) × pairwise throughput) plus the latency analysis. Budget and
/// listen power come from the (homogeneous) node set; slot and beacon
/// lengths are protocol constants.
struct SearchlightParams {
  double slot_seconds = 0.050;
  double beacon_seconds = 0.001;
};

/// "econcast-testbed": the eZ430 firmware emulation of §VIII (mW units,
/// real milliseconds; groupput is converted back to the theory's units).
struct TestbedParams {
  double sigma = 0.25;
  double duration_ms = 4.0 * 3600.0 * 1000.0;
  double warmup_ms = 20.0 * 60.0 * 1000.0;
  bool observer = true;
  /// Event-queue backend for the firmware loop (cannot change results).
  sim::QueueEngine queue_engine = sim::QueueEngine::kBinaryHeap;
  /// Surface the queue counters into SimResult::extras (same keys as the
  /// econcast protocol: "queue_pushes", "queue_pops", "queue_stale_drops",
  /// "queue_peak_live"). Off by default.
  bool report_queue_stats = false;
};

using ProtocolParams =
    std::variant<EconCastParams, P4Params, OracleParams, PandaParams,
                 BirthdayParams, SearchlightParams, TestbedParams>;

/// A serialization-ready protocol reference: registry name + typed
/// parameters. This is what runner::Scenario carries, so one batch can mix
/// protocols freely.
struct ProtocolSpec {
  std::string name = "econcast";
  ProtocolParams params = EconCastParams{};

  /// Seed used when the runner's batch reseeding is disabled (reseed=false)
  /// and the parameter struct does not carry its own seed — see
  /// effective_seed. With reseeding on, the runner derives the seed from
  /// (base_seed, index) and both fields are ignored.
  std::uint64_t seed = 1;
};

/// The seed an unreseeded run of this spec uses. Parameter structs that
/// embed a seed are authoritative (EconCastParams uses config.seed, exactly
/// like a direct proto::Simulation run); every other protocol falls back to
/// spec.seed. This keeps one source of truth per spec — mutating
/// EconCastParams::config.seed after construction behaves as expected.
std::uint64_t effective_seed(const ProtocolSpec& spec) noexcept;

/// Convenience constructors for the built-in protocols.
ProtocolSpec econcast_spec(proto::SimConfig config);
ProtocolSpec p4_spec(model::Mode mode, double sigma);
ProtocolSpec oracle_spec(model::Mode mode);
ProtocolSpec panda_spec(PandaParams params = {});
ProtocolSpec birthday_spec(BirthdayParams params = {});
ProtocolSpec searchlight_spec(SearchlightParams params = {});
ProtocolSpec testbed_spec(TestbedParams params = {});

/// Applies sweep axes to a spec: sets `mode` and `sigma` on parameter
/// structs that have those knobs (EconCast, P4, Birthday [mode only],
/// Testbed [sigma only]) and leaves the others untouched. Used by
/// runner::SweepSpec to cross protocols with mode/σ axes.
ProtocolSpec specialized(ProtocolSpec spec, model::Mode mode, double sigma);

/// Selects the event-queue backend on parameter structs that carry a
/// discrete-event kernel (EconCast and Testbed); a no-op for the analytic
/// protocols and the slotted/renewal baselines. Used by the sweep layer to
/// apply a manifest-level or `econcast_sweep --engine` override — safe to
/// apply anywhere because the backend can never change results.
void set_queue_engine(ProtocolSpec& spec, sim::QueueEngine engine);

/// Selects the simulator hot-path engine on parameter structs that carry it
/// (EconCast only: the testbed's clique firmware loop has no listener-count
/// hot path); a no-op for every other protocol. Like set_queue_engine, safe
/// to apply anywhere — the engine can never change results.
void set_hotpath_engine(ProtocolSpec& spec, sim::HotpathEngine engine);

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// String-keyed protocol factory table. `global()` is pre-populated with the
/// built-ins; register custom protocols there before constructing batches.
/// Lookups (`create`, `contains`, `names`) are const and safe to call from
/// runner worker threads; `add` is not thread-safe and belongs in startup
/// code.
class ProtocolRegistry {
 public:
  using Factory =
      std::function<std::shared_ptr<const Protocol>(const ProtocolParams&)>;

  /// The process-wide registry with the built-ins pre-registered.
  static ProtocolRegistry& global();

  /// Registers a factory under `name`. Throws std::invalid_argument when the
  /// name is empty or already taken.
  void add(std::string name, Factory factory);

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;  // sorted

  /// Instantiates the protocol a spec refers to. Throws
  /// std::invalid_argument for an unknown name and std::invalid_argument
  /// when spec.params holds the wrong alternative for the protocol.
  std::shared_ptr<const Protocol> create(const ProtocolSpec& spec) const;

 private:
  std::map<std::string, Factory> factories_;
};

/// Registers the built-in protocols into `registry` (called automatically
/// for `ProtocolRegistry::global()`; exposed for custom registries).
void register_builtin_protocols(ProtocolRegistry& registry);

}  // namespace econcast::protocol

#endif  // ECONCAST_PROTOCOL_PROTOCOL_H
