// Deterministic, seedable pseudo-random generation for all stochastic
// components (simulator, heterogeneity sampler, testbed noise models).
//
// We use xoshiro256** seeded through splitmix64: fast, high quality, and —
// unlike std::mt19937 + std::*_distribution — bit-for-bit reproducible across
// standard library implementations, which keeps every experiment in this
// repository replayable from its seed alone.
#ifndef ECONCAST_UTIL_RANDOM_H
#define ECONCAST_UTIL_RANDOM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace econcast::util {

/// splitmix64: used to expand a single 64-bit seed into generator state.
/// Advances `state` and returns the next value of the sequence.
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single seed via splitmix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Equivalent to 2^128 calls of operator(); used to derive independent
  /// parallel streams from one seed.
  void jump() noexcept;

 private:
  std::uint64_t s_[4];
};

/// Convenience wrapper bundling the generator with the distributions this
/// project needs. All sampling is implemented here (not with std::
/// distributions) for cross-platform determinism.
///
/// Block-refill mode: constructed with `block > 0`, the Rng draws raw
/// generator outputs `block` at a time and converts the whole batch to
/// [0, 1) doubles through the dispatched u01 kernel (util/kernels.h), so
/// uniform()/exponential() in the hot loops become a buffered load. The
/// consumption order is unchanged — every draw, including the raw-bits
/// draws of uniform_int() and fork(), takes the *next* buffered generator
/// output — and the conversion is exact in every tier, so a block-mode Rng
/// emits the bit-identical stream of the scalar path for any interleaving
/// of calls (the golden vectors in test_random_regression prove it).
class Rng {
 public:
  /// The block size proto::Simulation uses; large enough to amortize the
  /// refill, small enough to stay in L1.
  static constexpr std::size_t kDefaultBlock = 256;

  explicit Rng(std::uint64_t seed = 1, std::size_t block = 0)
      : gen_(seed), block_(block) {
    if (block_ > 0) {
      raw_.resize(block_);
      u01_.resize(block_);
    }
  }

  /// Uniform on [0, 1). Uses the top 53 bits, so the result is an exact
  /// multiple of 2^-53.
  double uniform() {
    if (block_ == 0) return to_u01(gen_());
    if (pos_ == fill_) refill();
    return u01_[pos_++];
  }

  /// Uniform on [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Exponential with the given rate (mean 1/rate). Throws
  /// std::invalid_argument (naming the value) unless rate is positive and
  /// finite — a non-positive or NaN rate would silently return a negative,
  /// infinite or NaN sojourn time and corrupt every event after it.
  double exponential(double rate);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) { return uniform() < p; }

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_int(std::uint64_t n);

  /// Geometric number of Bernoulli(p_continue) successes before the first
  /// failure, i.e. #extra trials; mean p/(1-p). Throws
  /// std::invalid_argument (naming the value) unless p_continue is in
  /// [0, 1) — p_continue >= 1 would loop forever and NaN would silently
  /// return 0.
  std::uint64_t geometric_continues(double p_continue);

  /// A fresh Rng whose stream is independent of this one
  /// (splitmix64-derived). The child inherits this Rng's block mode.
  Rng fork();

  /// Direct access to the underlying generator. Only meaningful for an
  /// unbuffered Rng (block 0): in block-refill mode the generator has
  /// already advanced past the buffered outputs, so drawing from it
  /// directly would skip them.
  Xoshiro256& generator() noexcept { return gen_; }

 private:
  static double to_u01(std::uint64_t bits) noexcept {
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
  }

  /// The next raw generator output in stream order (buffered in block
  /// mode, so raw-bit draws stay aligned with the uniform() stream).
  std::uint64_t next_bits() {
    if (block_ == 0) return gen_();
    if (pos_ == fill_) refill();
    return raw_[pos_++];
  }

  void refill();

  Xoshiro256 gen_;
  std::size_t block_ = 0;            // 0: unbuffered scalar path
  std::size_t pos_ = 0, fill_ = 0;   // consumption cursor / buffered count
  std::vector<std::uint64_t> raw_;   // generator outputs, stream order
  std::vector<double> u01_;          // raw_ through the u01 kernel
};

/// Fisher–Yates shuffle using the project Rng (std::shuffle is not
/// reproducible across standard libraries).
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_int(i));
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

}  // namespace econcast::util

#endif  // ECONCAST_UTIL_RANDOM_H
