// Deterministic, seedable pseudo-random generation for all stochastic
// components (simulator, heterogeneity sampler, testbed noise models).
//
// We use xoshiro256** seeded through splitmix64: fast, high quality, and —
// unlike std::mt19937 + std::*_distribution — bit-for-bit reproducible across
// standard library implementations, which keeps every experiment in this
// repository replayable from its seed alone.
#ifndef ECONCAST_UTIL_RANDOM_H
#define ECONCAST_UTIL_RANDOM_H

#include <cstdint>
#include <vector>

namespace econcast::util {

/// splitmix64: used to expand a single 64-bit seed into generator state.
/// Advances `state` and returns the next value of the sequence.
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single seed via splitmix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Equivalent to 2^128 calls of operator(); used to derive independent
  /// parallel streams from one seed.
  void jump() noexcept;

 private:
  std::uint64_t s_[4];
};

/// Convenience wrapper bundling the generator with the distributions this
/// project needs. All sampling is implemented here (not with std::
/// distributions) for cross-platform determinism.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) noexcept : gen_(seed) {}

  /// Uniform on [0, 1). Uses the top 53 bits, so the result is an exact
  /// multiple of 2^-53.
  double uniform() noexcept;

  /// Uniform on [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate) noexcept;

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Geometric number of Bernoulli(p_continue) successes before the first
  /// failure, i.e. #extra trials; mean p/(1-p). Requires p in [0, 1).
  std::uint64_t geometric_continues(double p_continue) noexcept;

  /// A fresh Rng whose stream is independent of this one (splitmix64-derived).
  Rng fork() noexcept;

  Xoshiro256& generator() noexcept { return gen_; }

 private:
  Xoshiro256 gen_;
};

/// Fisher–Yates shuffle using the project Rng (std::shuffle is not
/// reproducible across standard libraries).
template <typename T>
void shuffle(std::vector<T>& v, Rng& rng) noexcept {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform_int(i));
    using std::swap;
    swap(v[i - 1], v[j]);
  }
}

}  // namespace econcast::util

#endif  // ECONCAST_UTIL_RANDOM_H
