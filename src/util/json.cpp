#include "util/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace econcast::util::json {

// ---------------------------------------------------------------- Object --

Object& Object::set(std::string key, Value value) {
  for (Member& m : members_) {
    if (m.first == key) {
      m.second = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Value* Object::find(const std::string& key) const noexcept {
  for (const Member& m : members_)
    if (m.first == key) return &m.second;
  return nullptr;
}

const Value& Object::at(const std::string& key) const {
  const Value* v = find(key);
  if (!v) throw Error("json: missing key '" + key + "'");
  return *v;
}

bool operator==(const Object& a, const Object& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a.members()[i] != b.members()[i]) return false;
  return true;
}

// ----------------------------------------------------------------- Value --

namespace {
const char* kind_name(Value::Kind k) {
  switch (k) {
    case Value::Kind::kNull: return "null";
    case Value::Kind::kBool: return "bool";
    case Value::Kind::kNumber: return "number";
    case Value::Kind::kString: return "string";
    case Value::Kind::kArray: return "array";
    case Value::Kind::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void kind_error(const char* wanted, Value::Kind got) {
  throw Error(std::string("json: expected ") + wanted + ", got " +
              kind_name(got));
}
}  // namespace

bool Value::as_bool() const {
  if (const auto* b = std::get_if<bool>(&data_)) return *b;
  kind_error("bool", kind());
}

double Value::as_number() const {
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  kind_error("number", kind());
}

double Value::as_number_or_nan() const {
  if (is_null()) return std::numeric_limits<double>::quiet_NaN();
  return as_number();
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&data_)) return *s;
  kind_error("string", kind());
}

const Array& Value::as_array() const {
  if (const auto* a = std::get_if<Array>(&data_)) return *a;
  kind_error("array", kind());
}

const Object& Value::as_object() const {
  if (const auto* o = std::get_if<Object>(&data_)) return *o;
  kind_error("object", kind());
}

bool operator==(const Value& a, const Value& b) { return a.data_ == b.data_; }

// ---------------------------------------------------------------- parser --

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 256;

  [[noreturn]] void fail(const std::string& message) const {
    throw Error("json parse error at offset " + std::to_string(pos_) + ": " +
                message);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal");
      default: return Value(parse_number());
    }
  }

  Value parse_object(int depth) {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return Value(std::move(obj));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array(int depth) {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return Value(std::move(arr));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = peek();
      ++pos_;
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const std::uint32_t lo = parse_hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid surrogate pair");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              fail("unpaired surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    // Validate the JSON grammar before handing to strtod (strtod accepts
    // hex, "inf", leading '+', none of which are JSON).
    auto digits = [&] {
      std::size_t count = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++count;
      }
      return count;
    };
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;
    } else if (digits() == 0) {
      fail("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (digits() == 0) fail("digits required in exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL))
      fail("number out of range");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

// ---------------------------------------------------------------- writer --

std::string format_double(double d) {
  if (!std::isfinite(d)) throw Error("json: NaN/Inf is not representable");
  // Integral doubles inside the exactly-representable range print as plain
  // integers (stable, exponent-free — these are counts and axis values).
  if (d == std::floor(d) && std::fabs(d) < 9007199254740992.0) {  // 2^53
    if (d == 0.0 && std::signbit(d)) return "-0";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    return buf;
  }
  char buf[40];
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, d);
    const double back = std::strtod(buf, nullptr);
    if (std::memcmp(&back, &d, sizeof(double)) == 0) return buf;
  }
  return buf;  // %.17g always round-trips IEEE double
}

std::string u64_to_string(std::uint64_t v) { return std::to_string(v); }

std::uint64_t u64_from_string(const std::string& s) {
  if (s.empty() || s[0] == '-' || s[0] == '+')
    throw Error("json: invalid u64 '" + s + "'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE)
    throw Error("json: invalid u64 '" + s + "'");
  return static_cast<std::uint64_t>(v);
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through
        }
    }
  }
  out.push_back('"');
}

void dump_value(const Value& v, int indent, int depth, std::string& out) {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d),
               ' ');
  };
  switch (v.kind()) {
    case Value::Kind::kNull: out += "null"; break;
    case Value::Kind::kBool: out += v.as_bool() ? "true" : "false"; break;
    case Value::Kind::kNumber: {
      // JSON has no NaN/Inf; encode them as null (decoders use
      // as_number_or_nan) instead of aborting a mid-sweep checkpoint write.
      const double d = v.as_number();
      out += std::isfinite(d) ? format_double(d) : "null";
      break;
    }
    case Value::Kind::kString: dump_string(v.as_string(), out); break;
    case Value::Kind::kArray: {
      const Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) out.push_back(',');
        newline_pad(depth + 1);
        dump_value(a[i], indent, depth + 1, out);
      }
      newline_pad(depth);
      out.push_back(']');
      break;
    }
    case Value::Kind::kObject: {
      const Object& o = v.as_object();
      if (o.size() == 0) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const Object::Member& m : o.members()) {
        if (!first) out.push_back(',');
        first = false;
        newline_pad(depth + 1);
        dump_string(m.first, out);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        dump_value(m.second, indent, depth + 1, out);
      }
      newline_pad(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

std::string dump(const Value& value, int indent) {
  std::string out;
  dump_value(value, indent, 0, out);
  return out;
}

}  // namespace econcast::util::json
