#include "util/logsumexp.h"

#include <cmath>

namespace econcast::util {

void LogSumExp::add(double log_value) noexcept {
  if (log_value == kLogZero) return;
  if (log_value <= max_) {
    sum_ += std::exp(log_value - max_);
    return;
  }
  // New maximum: rescale the running sum.
  if (max_ == kLogZero) {
    sum_ = 1.0;
  } else {
    sum_ = sum_ * std::exp(max_ - log_value) + 1.0;
  }
  max_ = log_value;
}

double LogSumExp::value() const noexcept {
  if (max_ == kLogZero) return kLogZero;
  return max_ + std::log(sum_);
}

double log_sum_exp(std::span<const double> log_values) noexcept {
  LogSumExp acc;
  for (const double v : log_values) acc.add(v);
  return acc.value();
}

}  // namespace econcast::util
