#include "util/rational.h"

#include <cmath>
#include <stdexcept>

namespace econcast::util {

std::int64_t gcd64(std::int64_t a, std::int64_t b) noexcept {
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a < 0 ? -a : a;
}

std::int64_t lcm64_checked(std::int64_t a, std::int64_t b, std::int64_t limit) {
  if (a == 0 || b == 0) return 0;
  const std::int64_t g = gcd64(a, b);
  const std::int64_t l = (a / g) * b;
  if (l > limit || l < 0)
    throw std::overflow_error("lcm64_checked: period limit exceeded");
  return l;
}

Rational approximate_rational(double x, std::int64_t max_den) {
  if (x < 0.0 || !std::isfinite(x))
    throw std::invalid_argument("approximate_rational: x must be finite, >= 0");
  if (max_den < 1)
    throw std::invalid_argument("approximate_rational: max_den must be >= 1");

  // Continued-fraction expansion, tracking convergents h/k.
  std::int64_t h0 = 0, k0 = 1;  // previous convergent
  std::int64_t h1 = 1, k1 = 0;  // current convergent
  double frac = x;
  for (int iter = 0; iter < 64; ++iter) {
    const double a_floor = std::floor(frac);
    const auto a = static_cast<std::int64_t>(a_floor);
    // Next convergent h2/k2 = a*h1 + h0 / a*k1 + k0.
    if (k1 != 0 && a > (max_den - k0) / k1) {
      // Denominator would exceed the bound: take the best semiconvergent.
      const std::int64_t a_max = (max_den - k0) / k1;
      if (a_max > 0) {
        const std::int64_t h2 = a_max * h1 + h0;
        const std::int64_t k2 = a_max * k1 + k0;
        const double err_semi = std::abs(x - static_cast<double>(h2) /
                                                 static_cast<double>(k2));
        const double err_conv = std::abs(x - static_cast<double>(h1) /
                                                 static_cast<double>(k1));
        return err_semi < err_conv ? Rational{h2, k2} : Rational{h1, k1};
      }
      break;
    }
    const std::int64_t h2 = a * h1 + h0;
    const std::int64_t k2 = a * k1 + k0;
    h0 = h1;
    k0 = k1;
    h1 = h2;
    k1 = k2;
    const double rem = frac - a_floor;
    if (rem < 1e-12) break;  // exact (within double precision)
    frac = 1.0 / rem;
  }
  if (k1 == 0) return Rational{0, 1};
  return Rational{h1, k1};
}

}  // namespace econcast::util
