#include "util/kernels.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

namespace econcast::util {

const char* to_token(KernelTier tier) noexcept {
  return tier == KernelTier::kAvx2 ? "avx2" : "scalar";
}

KernelTier kernel_tier_from_token(const std::string& token) {
  if (token == "scalar") return KernelTier::kScalar;
  if (token == "avx2") return KernelTier::kAvx2;
  throw std::invalid_argument("unknown kernel tier '" + token +
                              "' (expected 'scalar' or 'avx2')");
}

bool kernel_tier_supported(KernelTier tier) noexcept {
  if (tier == KernelTier::kScalar) return true;
#if ECONCAST_HAVE_AVX2
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

KernelTier best_kernel_tier() noexcept {
  return kernel_tier_supported(KernelTier::kAvx2) ? KernelTier::kAvx2
                                                  : KernelTier::kScalar;
}

namespace {

/// Rejects tiers this process cannot run, naming the tier and the reason.
KernelTier checked(KernelTier tier) {
  if (!kernel_tier_supported(tier))
    throw std::invalid_argument(
        std::string("kernel tier '") + to_token(tier) +
#if ECONCAST_HAVE_AVX2
        "' is not supported by this CPU");
#else
        "' is not compiled into this build");
#endif
  return tier;
}

KernelTier initial_tier() {
  if (const char* env = std::getenv("ECONCAST_KERNELS"))
    return checked(kernel_tier_from_token(env));
  return best_kernel_tier();
}

std::atomic<KernelTier>& tier_slot() {
  // First use probes cpuid and the environment; a bad ECONCAST_KERNELS
  // value throws out of the static initializer (and is retried — i.e.
  // re-thrown — on the next call rather than cached as a broken state).
  static std::atomic<KernelTier> tier{initial_tier()};
  return tier;
}

}  // namespace

KernelTier active_kernel_tier() {
  return tier_slot().load(std::memory_order_relaxed);
}

void set_kernel_tier(KernelTier tier) {
  tier_slot().store(checked(tier), std::memory_order_relaxed);
}

namespace kernel_detail {

void u01_from_bits_scalar(const std::uint64_t* bits, double* out,
                          std::size_t n) noexcept {
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<double>(bits[i] >> 11) * 0x1.0p-53;
}

std::size_t filter_state_not_scalar(const std::uint32_t* ids, std::size_t n,
                                    const std::uint8_t* state,
                                    std::size_t /*n_state*/,
                                    std::uint8_t skip,
                                    std::uint32_t* out) noexcept {
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (state[ids[i]] != skip) out[kept++] = ids[i];
  return kept;
}

}  // namespace kernel_detail

void u01_from_bits(const std::uint64_t* bits, double* out, std::size_t n) {
#if ECONCAST_HAVE_AVX2
  if (active_kernel_tier() == KernelTier::kAvx2)
    return kernel_detail::u01_from_bits_avx2(bits, out, n);
#endif
  kernel_detail::u01_from_bits_scalar(bits, out, n);
}

std::size_t filter_state_not(const std::uint32_t* ids, std::size_t n,
                             const std::uint8_t* state, std::size_t n_state,
                             std::uint8_t skip, std::uint32_t* out) {
#if ECONCAST_HAVE_AVX2
  if (active_kernel_tier() == KernelTier::kAvx2)
    return kernel_detail::filter_state_not_avx2(ids, n, state, n_state, skip,
                                                out);
#endif
  return kernel_detail::filter_state_not_scalar(ids, n, state, n_state, skip,
                                                out);
}

}  // namespace econcast::util
