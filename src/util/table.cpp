#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace econcast::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

std::size_t Table::add_row() {
  rows_.emplace_back();
  return rows_.size() - 1;
}

void Table::add_cell(std::string text) {
  if (rows_.empty()) add_row();
  if (rows_.back().size() >= headers_.size())
    throw std::logic_error("Table row has more cells than headers");
  rows_.back().push_back(std::move(text));
}

void Table::add_cell(double value, int precision) {
  add_cell(format_double(value, precision));
}

void Table::add_cell(std::int64_t value) { add_cell(std::to_string(value)); }

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::logic_error("Table row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  if (!title.empty()) os << "== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      os << "  " << std::left << std::setw(static_cast<int>(widths[c])) << cell;
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 2;
  for (const auto w : widths) total += w + 2;
  os << "  " << std::string(total - 2, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string format_double(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string format_sci(double value, int precision) {
  std::ostringstream ss;
  ss << std::scientific << std::setprecision(precision) << value;
  return ss.str();
}

}  // namespace econcast::util
