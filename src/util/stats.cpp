#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace econcast::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

RunningStats RunningStats::restore(std::size_t count, double mean, double m2,
                                   double min, double max) noexcept {
  RunningStats s;
  s.n_ = count;
  s.mean_ = mean;
  s.m2_ = m2;
  s.min_ = min;
  s.max_ = max;
  return s;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double SampleSet::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (const double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    auto& mut = const_cast<std::vector<double>&>(samples_);
    std::sort(mut.begin(), mut.end());
    sorted_ = true;
  }
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) throw std::logic_error("percentile of empty SampleSet");
  ensure_sorted();
  p = std::clamp(p, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(samples_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(idx, samples_.size() - 1)];
}

double SampleSet::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<double> SampleSet::cdf_curve(
    const std::vector<double>& points) const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const double x : points) out.push_back(cdf(x));
  return out;
}

void Counter::add(std::size_t value, std::uint64_t weight) {
  if (value >= counts_.size()) counts_.resize(value + 1, 0);
  counts_[value] += weight;
  total_ += weight;
}

std::size_t Counter::max_value() const noexcept {
  return counts_.empty() ? 0 : counts_.size() - 1;
}

double Counter::fraction(std::size_t value) const noexcept {
  if (total_ == 0 || value >= counts_.size()) return 0.0;
  return static_cast<double>(counts_[value]) / static_cast<double>(total_);
}

std::uint64_t Counter::count(std::size_t value) const noexcept {
  return value < counts_.size() ? counts_[value] : 0;
}

}  // namespace econcast::util
