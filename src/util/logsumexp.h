// Log-domain accumulation. The Gibbs distribution (19) has weights
// exp(T_w/σ - ...) whose exponents reach hundreds for small σ, so partition
// functions and marginals must be accumulated as log-sum-exp.
#ifndef ECONCAST_UTIL_LOGSUMEXP_H
#define ECONCAST_UTIL_LOGSUMEXP_H

#include <limits>
#include <span>

namespace econcast::util {

/// Identity element for log-sum-exp accumulation (represents log(0)).
inline constexpr double kLogZero = -std::numeric_limits<double>::infinity();

/// Streaming log-sum-exp accumulator: after adding log-values l_1..l_n,
/// value() returns log(sum_i exp(l_i)) without overflow.
class LogSumExp {
 public:
  void add(double log_value) noexcept;

  /// log of the accumulated sum; kLogZero if nothing was added.
  double value() const noexcept;

  bool empty() const noexcept { return max_ == kLogZero; }

 private:
  double max_ = kLogZero;   // running maximum exponent
  double sum_ = 0.0;        // sum of exp(l_i - max_)
};

/// One-shot log-sum-exp over a span of log-values.
double log_sum_exp(std::span<const double> log_values) noexcept;

}  // namespace econcast::util

#endif  // ECONCAST_UTIL_LOGSUMEXP_H
