// Statistics helpers used by the simulator metrics and the benchmark
// harnesses: streaming mean/variance, empirical CDFs with percentiles, and
// Student-t style confidence intervals for across-run aggregation.
#ifndef ECONCAST_UTIL_STATS_H
#define ECONCAST_UTIL_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace econcast::util {

/// Welford streaming mean / variance / extrema.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 with fewer than 2 samples).
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Half-width of the ~95% confidence interval of the mean (normal
  /// approximation, 1.96 * stderr). 0 with fewer than 2 samples.
  double ci95_halfwidth() const noexcept;

  /// Raw Welford accumulator Σ(x - mean)² — exposed (with `restore`) so the
  /// checkpoint serializer can round-trip the exact internal state; variance
  /// reconstructed from variance() would not be bit-identical.
  double m2() const noexcept { return m2_; }

  /// Rebuilds an accumulator from previously serialized internals. The
  /// arguments must come from a matching (count, mean, m2, min, max)
  /// snapshot of another RunningStats.
  static RunningStats restore(std::size_t count, double mean, double m2,
                              double min, double max) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects raw samples; answers percentile / CDF queries after a sort.
/// Suitable for latency distributions (sample counts up to ~10^7).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  double mean() const noexcept;

  /// p in [0, 1]; nearest-rank percentile. Requires at least one sample.
  double percentile(double p) const;

  /// Empirical CDF value at x: fraction of samples <= x.
  double cdf(double x) const;

  /// CDF evaluated at each of `points` (ascending output, one pass).
  std::vector<double> cdf_curve(const std::vector<double>& points) const;

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Discrete histogram over small non-negative integers (e.g. ping counts).
class Counter {
 public:
  void add(std::size_t value, std::uint64_t weight = 1);

  std::uint64_t total() const noexcept { return total_; }
  std::size_t max_value() const noexcept;
  /// Fraction of mass at `value` (0 if beyond range or empty).
  double fraction(std::size_t value) const noexcept;
  std::uint64_t count(std::size_t value) const noexcept;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace econcast::util

#endif  // ECONCAST_UTIL_STATS_H
