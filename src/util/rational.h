// Rational approximation of real-valued oracle solutions. Lemma 1 constructs
// a periodic schedule from *rational* (α*, β*); we approximate the LP's
// floating-point solution by fractions over a bounded denominator
// (Stern–Brocot / continued fractions), then take the LCM as the period.
#ifndef ECONCAST_UTIL_RATIONAL_H
#define ECONCAST_UTIL_RATIONAL_H

#include <cstdint>

namespace econcast::util {

struct Rational {
  std::int64_t num = 0;
  std::int64_t den = 1;

  double value() const noexcept {
    return static_cast<double>(num) / static_cast<double>(den);
  }
};

/// Best rational approximation of x with denominator <= max_den, via
/// continued-fraction convergents. Requires x >= 0 and max_den >= 1.
Rational approximate_rational(double x, std::int64_t max_den);

std::int64_t gcd64(std::int64_t a, std::int64_t b) noexcept;

/// LCM with saturation guard; throws std::overflow_error if it exceeds
/// `limit` (schedule periods must stay manageable).
std::int64_t lcm64_checked(std::int64_t a, std::int64_t b, std::int64_t limit);

}  // namespace econcast::util

#endif  // ECONCAST_UTIL_RATIONAL_H
