// Minimal dependency-free JSON reader/writer for the sweep-manifest and
// checkpoint pipeline. Scope is deliberately small: the six JSON kinds, an
// insertion-ordered object (so dumps are deterministic and diffs are
// stable), a strict recursive-descent parser, and a writer whose number
// formatting is shortest-round-trip — parse(dump(v)) reproduces every double
// bit for bit, which is what makes resumed sweep results byte-identical to
// uninterrupted ones.
//
// 64-bit integers (seeds, packet counts) do not survive the double-only JSON
// number model above 2^53, so seeds are carried as decimal strings via
// u64_to_string / u64_from_string.
#ifndef ECONCAST_UTIL_JSON_H
#define ECONCAST_UTIL_JSON_H

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace econcast::util::json {

/// Parse or access error; `what()` includes byte offsets for parse errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

class Value;
using Array = std::vector<Value>;

/// A JSON object that preserves insertion order (std::map would silently
/// reorder keys between write and re-write). Lookup is a linear scan —
/// manifests have tens of keys, not thousands.
class Object {
 public:
  using Member = std::pair<std::string, Value>;

  /// Sets `key` (replacing an existing member in place, else appending).
  /// Returns *this for builder-style chaining.
  Object& set(std::string key, Value value);

  const Value* find(const std::string& key) const noexcept;
  /// Throws Error when `key` is absent.
  const Value& at(const std::string& key) const;
  bool contains(const std::string& key) const noexcept {
    return find(key) != nullptr;
  }

  const std::vector<Member>& members() const noexcept { return members_; }
  std::size_t size() const noexcept { return members_.size(); }

 private:
  std::vector<Member> members_;
};

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() noexcept : data_(nullptr) {}
  Value(std::nullptr_t) noexcept : data_(nullptr) {}
  Value(bool b) noexcept : data_(b) {}
  Value(double d) noexcept : data_(d) {}
  Value(int i) noexcept : data_(static_cast<double>(i)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  Kind kind() const noexcept { return static_cast<Kind>(data_.index()); }
  bool is_null() const noexcept { return kind() == Kind::kNull; }
  bool is_bool() const noexcept { return kind() == Kind::kBool; }
  bool is_number() const noexcept { return kind() == Kind::kNumber; }
  bool is_string() const noexcept { return kind() == Kind::kString; }
  bool is_array() const noexcept { return kind() == Kind::kArray; }
  bool is_object() const noexcept { return kind() == Kind::kObject; }

  // Checked accessors; Error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  /// as_number(), except null decodes to NaN — the reader side of the
  /// writer's non-finite-numbers-as-null encoding (see dump).
  double as_number_or_nan() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  // Object conveniences (Error when not an object / key absent).
  const Value& at(const std::string& key) const { return as_object().at(key); }
  const Value* find(const std::string& key) const {
    return as_object().find(key);
  }

  friend bool operator==(const Value& a, const Value& b);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

bool operator==(const Object& a, const Object& b);

/// Strict JSON parse of the whole input (trailing non-whitespace is an
/// error). Throws Error with the byte offset of the problem.
Value parse(std::string_view text);

/// Serializes. indent < 0 gives the compact single-line form used for JSONL
/// checkpoint records; indent >= 0 pretty-prints with that many spaces per
/// level. Non-finite numbers (which JSON cannot represent) are written as
/// null — a simulation result with a NaN metric must not abort a streaming
/// checkpoint write mid-sweep; decode such fields with as_number_or_nan.
std::string dump(const Value& value, int indent = -1);

/// Shortest decimal string that strtod parses back to exactly `d` (tries
/// %.15g, %.16g, %.17g). Integral values within 2^53 print without exponent
/// or decimal point. Deterministic for a given double. Throws Error on
/// NaN/Inf — only dump applies the null encoding.
std::string format_double(double d);

/// Decimal-string codec for full-range 64-bit values (seeds).
std::string u64_to_string(std::uint64_t v);
std::uint64_t u64_from_string(const std::string& s);

}  // namespace econcast::util::json

#endif  // ECONCAST_UTIL_JSON_H
