// Console table rendering for the benchmark harnesses: every bench binary
// prints the rows/series of the paper table or figure it regenerates, in a
// uniform, diff-friendly format (also emittable as CSV).
#ifndef ECONCAST_UTIL_TABLE_H
#define ECONCAST_UTIL_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace econcast::util {

/// A simple column-aligned text table. Cells are strings; numeric helpers
/// format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; returns row index.
  std::size_t add_row();

  /// Appends a cell to the last row.
  void add_cell(std::string text);
  void add_cell(double value, int precision = 4);
  void add_cell(std::int64_t value);

  /// Convenience: add a full row at once.
  void add_row(std::vector<std::string> cells);

  /// Renders with aligned columns, header underline, optional title.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Comma-separated rendering (headers first).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (fixed notation).
std::string format_double(double value, int precision = 4);

/// Formats as scientific notation with the given precision.
std::string format_sci(double value, int precision = 3);

}  // namespace econcast::util

#endif  // ECONCAST_UTIL_TABLE_H
