// Dependency-free SHA-256 (FIPS 180-4) for content-addressed keys.
//
// The sweep cache (runner/cell_cache.h) files results under a digest of a
// canonical-JSON cell key, so the hash must be stable across processes,
// platforms, library versions and time — which rules out std::hash (its
// value is explicitly unspecified and may change per libstdc++ release; the
// determinism lint's raw-hash rule enforces this). SHA-256 gives a fixed,
// specified function with negligible collision probability at sweep scale,
// and the implementation below is ~80 lines of plain integer arithmetic:
// no OpenSSL, no new dependency.
//
// This is a content-addressing checksum, not an attempt at cryptographic
// protection of the cache (anyone who can write the cache directory can
// write a well-formed entry); tamper *detection* comes from re-validating
// stored entries against the manifest expansion, the digest only has to be
// collision-free and stable.
#ifndef ECONCAST_UTIL_SHA256_H
#define ECONCAST_UTIL_SHA256_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace econcast::util {

class Sha256 {
 public:
  Sha256() noexcept;

  /// Absorbs `data`; call any number of times before digest().
  void update(const void* data, std::size_t size) noexcept;
  void update(std::string_view data) noexcept {
    update(data.data(), data.size());
  }

  /// Finalizes and returns the 32-byte digest. Call once; the object is
  /// spent afterwards (construct a fresh one for the next message).
  std::array<std::uint8_t, 32> digest() noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t total_bytes_ = 0;
  std::size_t buffered_ = 0;
};

/// One-shot digest of `data`, as 64 lowercase hex characters — the form the
/// cell cache uses for file names. Matches the standard test vectors
/// (sha256("") = e3b0c442..., covered by tests/test_util.cpp).
std::string sha256_hex(std::string_view data);

}  // namespace econcast::util

#endif  // ECONCAST_UTIL_SHA256_H
