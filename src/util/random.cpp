#include "util/random.h"

#include <cmath>

namespace econcast::util {

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64_next(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (void)(*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

double Rng::uniform() noexcept {
  return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

double Rng::exponential(double rate) noexcept {
  // 1 - uniform() is in (0, 1], so the log argument is never zero.
  return -std::log(1.0 - uniform()) / rate;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Lemire-style rejection sampling for an unbiased result.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = gen_();
    if (r >= threshold) return r % n;
  }
}

std::uint64_t Rng::geometric_continues(double p_continue) noexcept {
  std::uint64_t count = 0;
  while (bernoulli(p_continue)) ++count;
  return count;
}

Rng Rng::fork() noexcept {
  std::uint64_t s = gen_();
  return Rng(splitmix64_next(s));
}

}  // namespace econcast::util
