#include "util/random.h"

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/kernels.h"

namespace econcast::util {

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64_next(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (void)(*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

void Rng::refill() {
  // Generator outputs in stream order (the recurrence is sequential, so
  // the batch win here is the tight loop and the single state round-trip),
  // then the whole block through the dispatched u01 kernel at once. Both
  // views of the block are kept: uniform() consumes u01_[i], raw-bit draws
  // consume raw_[i], and one cursor walks them in lockstep so the stream
  // order is exactly the unbuffered path's.
  for (std::size_t i = 0; i < block_; ++i) raw_[i] = gen_();
  u01_from_bits(raw_.data(), u01_.data(), block_);
  pos_ = 0;
  fill_ = block_;
}

double Rng::exponential(double rate) {
  if (!(rate > 0.0) || !std::isfinite(rate))
    throw std::invalid_argument("exponential rate must be positive and "
                                "finite, got " +
                                std::to_string(rate));
  // 1 - uniform() is in (0, 1], so the log argument is never zero.
  return -std::log(1.0 - uniform()) / rate;
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Lemire-style rejection sampling for an unbiased result.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_bits();
    if (r >= threshold) return r % n;
  }
}

std::uint64_t Rng::geometric_continues(double p_continue) {
  if (!(p_continue >= 0.0 && p_continue < 1.0))
    throw std::invalid_argument("geometric continue-probability must be in "
                                "[0, 1), got " +
                                std::to_string(p_continue));
  std::uint64_t count = 0;
  while (bernoulli(p_continue)) ++count;
  return count;
}

Rng Rng::fork() {
  std::uint64_t s = next_bits();
  return Rng(splitmix64_next(s), block_);
}

}  // namespace econcast::util
