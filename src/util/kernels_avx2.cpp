// AVX2 tier of the util kernels. This translation unit is compiled with
// -mavx2 (and nothing else in the module is), so every function here must
// only be reached through the runtime dispatch in kernels.cpp after a cpuid
// check. No FMA, no fast-math: each step below is an exact IEEE operation,
// which is what makes the tier bit-identical to the scalar reference.
#if ECONCAST_HAVE_AVX2

#include <immintrin.h>

#include "util/kernels.h"

namespace econcast::util::kernel_detail {

// out[i] = (double)(bits[i] >> 11) * 2^-53, vectorized.
//
// AVX2 has no u64 -> f64 conversion (that is AVX-512DQ), but the shifted
// value v < 2^53 splits exactly: v = hi * 2^32 + lo with hi < 2^21 and
// lo < 2^32.
//   * OR-ing lo into the mantissa of 2^52 yields the double 2^52 + lo
//     exactly; subtracting 2^52 recovers lo.
//   * OR-ing hi into the mantissa of 2^84 yields 2^84 + hi * 2^32 exactly
//     (the mantissa step at that exponent is 2^32); subtracting
//     (2^84 + 2^52) gives hi * 2^32 - 2^52, a multiple of 2^32 below 2^53
//     in magnitude, hence exact.
//   * Adding the two partials gives hi * 2^32 + lo = v, an integer < 2^53,
//     hence exact; the final multiply by 2^-53 is a pure exponent shift.
// Every intermediate is exactly representable, so each lane equals the
// scalar (double)(v) * 2^-53 bit for bit.
void u01_from_bits_avx2(const std::uint64_t* bits, double* out,
                        std::size_t n) noexcept {
  const __m256i k2p52 = _mm256_castpd_si256(_mm256_set1_pd(0x1.0p52));
  const __m256i k2p84 = _mm256_castpd_si256(_mm256_set1_pd(0x1.0p84));
  const __m256d k2p84_2p52 = _mm256_set1_pd(0x1.0p84 + 0x1.0p52);
  const __m256d k2n53 = _mm256_set1_pd(0x1.0p-53);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bits + i));
    const __m256i v = _mm256_srli_epi64(x, 11);
    // lo lanes: low 32 bits of v under the exponent/high dword of 2^52
    // (blend mask 0xAA replaces every odd 32-bit element, i.e. each
    // qword's high dword, with 2^52's high dword; 2^52's low dword is 0).
    const __m256i lo = _mm256_blend_epi32(v, k2p52, 0xAA);
    const __m256i hi = _mm256_or_si256(_mm256_srli_epi64(v, 32), k2p84);
    const __m256d hi_part =
        _mm256_sub_pd(_mm256_castsi256_pd(hi), k2p84_2p52);
    const __m256d vd = _mm256_add_pd(hi_part, _mm256_castsi256_pd(lo));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(vd, k2n53));
  }
  for (; i < n; ++i)
    out[i] = static_cast<double>(bits[i] >> 11) * 0x1.0p-53;
}

}  // namespace econcast::util::kernel_detail

#endif  // ECONCAST_HAVE_AVX2
