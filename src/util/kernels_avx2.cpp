// AVX2 tier of the util kernels. This translation unit is compiled with
// -mavx2 (and nothing else in the module is), so every function here must
// only be reached through the runtime dispatch in kernels.cpp after a cpuid
// check. No FMA, no fast-math: each step below is an exact IEEE operation,
// which is what makes the tier bit-identical to the scalar reference.
#if ECONCAST_HAVE_AVX2

#include <immintrin.h>

#include "util/kernels.h"

namespace econcast::util::kernel_detail {

// out[i] = (double)(bits[i] >> 11) * 2^-53, vectorized.
//
// AVX2 has no u64 -> f64 conversion (that is AVX-512DQ), but the shifted
// value v < 2^53 splits exactly: v = hi * 2^32 + lo with hi < 2^21 and
// lo < 2^32.
//   * OR-ing lo into the mantissa of 2^52 yields the double 2^52 + lo
//     exactly; subtracting 2^52 recovers lo.
//   * OR-ing hi into the mantissa of 2^84 yields 2^84 + hi * 2^32 exactly
//     (the mantissa step at that exponent is 2^32); subtracting
//     (2^84 + 2^52) gives hi * 2^32 - 2^52, a multiple of 2^32 below 2^53
//     in magnitude, hence exact.
//   * Adding the two partials gives hi * 2^32 + lo = v, an integer < 2^53,
//     hence exact; the final multiply by 2^-53 is a pure exponent shift.
// Every intermediate is exactly representable, so each lane equals the
// scalar (double)(v) * 2^-53 bit for bit.
void u01_from_bits_avx2(const std::uint64_t* bits, double* out,
                        std::size_t n) noexcept {
  const __m256i k2p52 = _mm256_castpd_si256(_mm256_set1_pd(0x1.0p52));
  const __m256i k2p84 = _mm256_castpd_si256(_mm256_set1_pd(0x1.0p84));
  const __m256d k2p84_2p52 = _mm256_set1_pd(0x1.0p84 + 0x1.0p52);
  const __m256d k2n53 = _mm256_set1_pd(0x1.0p-53);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(bits + i));
    const __m256i v = _mm256_srli_epi64(x, 11);
    // lo lanes: low 32 bits of v under the exponent/high dword of 2^52
    // (blend mask 0xAA replaces every odd 32-bit element, i.e. each
    // qword's high dword, with 2^52's high dword; 2^52's low dword is 0).
    const __m256i lo = _mm256_blend_epi32(v, k2p52, 0xAA);
    const __m256i hi = _mm256_or_si256(_mm256_srli_epi64(v, 32), k2p84);
    const __m256d hi_part =
        _mm256_sub_pd(_mm256_castsi256_pd(hi), k2p84_2p52);
    const __m256d vd = _mm256_add_pd(hi_part, _mm256_castsi256_pd(lo));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(vd, k2n53));
  }
  for (; i < n; ++i)
    out[i] = static_cast<double>(bits[i] >> 11) * 0x1.0p-53;
}

// Stable compaction of ids whose state byte != skip, 8 lanes at a time:
// byte-gather the states, compare, then pack the surviving lanes left with
// a permutation looked up by the 8-bit keep mask. The permutation preserves
// lane order, the compares are exact integers, and the scalar tail uses the
// reference loop — so the output is the scalar result byte for byte.
std::size_t filter_state_not_avx2(const std::uint32_t* ids, std::size_t n,
                                  const std::uint8_t* state,
                                  std::size_t n_state, std::uint8_t skip,
                                  std::uint32_t* out) noexcept {
  // keep-mask -> lane permutation packing the kept lanes to the front.
  // Function-local static: built on first call, which is already behind the
  // cpuid dispatch (this whole TU is -mavx2; nothing here may run at static
  // initialization time on a CPU that was never probed).
  struct CompactLut {
    std::uint32_t perm[256][8];
    CompactLut() noexcept {
      for (int m = 0; m < 256; ++m) {
        int k = 0;
        for (int b = 0; b < 8; ++b)
          if (m & (1 << b)) perm[m][k++] = static_cast<std::uint32_t>(b);
        for (; k < 8; ++k) perm[m][k] = 0;
      }
    }
  };
  static const CompactLut lut;

  std::size_t kept = 0;
  std::size_t i = 0;
  if (n_state >= 4) {
    // The byte gather loads a full 32-bit word at state + id, so a lane is
    // only safe when id <= n_state - 4; chunks with a lane beyond that
    // (ids near the end of the state array) fall back to the scalar loop.
    // Ids are < 2^31 by contract, so the signed compare is exact.
    const __m256i limit = _mm256_set1_epi32(static_cast<int>(n_state - 4));
    const __m256i skip_v = _mm256_set1_epi32(skip);
    const __m256i byte_mask = _mm256_set1_epi32(0xFF);
    for (; i + 8 <= n; i += 8) {
      const __m256i idx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ids + i));
      if (_mm256_movemask_epi8(_mm256_cmpgt_epi32(idx, limit)) != 0) {
        for (std::size_t j = i; j < i + 8; ++j)
          if (state[ids[j]] != skip) out[kept++] = ids[j];
        continue;
      }
      const __m256i word = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(state), idx, 1);
      const __m256i st = _mm256_and_si256(word, byte_mask);
      const __m256i eq = _mm256_cmpeq_epi32(st, skip_v);
      const unsigned keep =
          ~static_cast<unsigned>(
              _mm256_movemask_ps(_mm256_castsi256_ps(eq))) &
          0xFFu;
      const __m256i perm = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(lut.perm[keep]));
      // kept <= i here, so the full 8-lane store stays inside out[0..n);
      // the next iteration (or the popcount bump) only ever overwrites the
      // lanes beyond the kept count.
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + kept),
                          _mm256_permutevar8x32_epi32(idx, perm));
      kept += static_cast<unsigned>(__builtin_popcount(keep));
    }
  }
  for (; i < n; ++i)
    if (state[ids[i]] != skip) out[kept++] = ids[i];
  return kept;
}

}  // namespace econcast::util::kernel_detail

#endif  // ECONCAST_HAVE_AVX2
