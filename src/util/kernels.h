// Vectorized micro-kernel tier with runtime CPU dispatch.
//
// The engine-knob playbook (queue_engine, hotpath_engine) applied one level
// down: the innermost loops the profiler still sees after the PR 6 hot-path
// overhaul — the u64 -> [0,1) conversion behind every uniform/exponential
// draw, the calendar queue's (time, seq)-min bucket scans, the stale-event
// partitions — each exist as a scalar reference implementation and, where
// the toolchain can build it, an AVX2 implementation. One tier is selected
// per process (cpuid-probed at first use, overridable), and every kernel is
// bit-identical across tiers by construction:
//
//   * u01_from_bits keeps only exact operations (shift, u64 -> double of a
//     53-bit value, multiply by the power of two 2^-53), so the SIMD lanes
//     compute the identical IEEE doubles the scalar loop does.
//   * The event scans select the minimum of a *strict total order* on
//     (time, seq) — seq is unique — so any reduction order finds the same
//     element; comparisons are exact in SIMD.
//   * The stale partition is a stable keep-order compaction driven by exact
//     integer compares.
//
// The paper tables therefore cannot change with the tier; only wall clock
// does — CI forces `scalar` against the dispatched build and byte-compares.
//
// Tier selection: the first call to active_kernel_tier() probes cpuid and
// honours the ECONCAST_KERNELS environment variable ("scalar" | "avx2",
// anything else is a named error); set_kernel_tier() overrides at runtime
// (the CLI knobs `econcast_sweep --kernels` / bench `--kernels=` go through
// it). A tier the CPU or build cannot run is rejected with a named error,
// never silently downgraded.
#ifndef ECONCAST_UTIL_KERNELS_H
#define ECONCAST_UTIL_KERNELS_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace econcast::util {

enum class KernelTier : std::uint8_t {
  kScalar,  // reference implementations; always available
  kAvx2,    // AVX2 implementations; requires toolchain + cpuid support
};

/// "scalar" / "avx2" — the wire/CLI token of a tier.
const char* to_token(KernelTier tier) noexcept;

/// Inverse of to_token. Throws std::invalid_argument (with the offending
/// token named) for anything else.
KernelTier kernel_tier_from_token(const std::string& token);

/// True when this build contains the tier's kernels *and* the running CPU
/// can execute them.
bool kernel_tier_supported(KernelTier tier) noexcept;

/// The fastest supported tier (what auto-dispatch selects).
KernelTier best_kernel_tier() noexcept;

/// The tier every dispatched kernel currently runs. Initialized on first
/// use: ECONCAST_KERNELS if set (a bad or unsupported value is a named
/// error), else best_kernel_tier().
KernelTier active_kernel_tier();

/// Overrides the active tier for the whole process. Throws
/// std::invalid_argument (naming the tier) when the build or CPU cannot run
/// it. Call before spinning up worker threads; the selection itself is a
/// relaxed atomic, but kernels already in flight finish on the old tier.
void set_kernel_tier(KernelTier tier);

/// Converts raw generator outputs to uniform doubles in [0, 1), exactly as
/// Rng::uniform does one at a time: out[i] = (bits[i] >> 11) * 2^-53. Every
/// operation is exact, so the result is bit-identical across tiers. `bits`
/// and `out` must not overlap.
void u01_from_bits(const std::uint64_t* bits, double* out, std::size_t n);

/// Stable keep-order compaction of node ids by state byte: copies every id
/// of ids[0..n) whose state[id] != skip into `out` (relative order
/// preserved) and returns how many were kept. The simulator's per-toggle
/// estimator refresh is this filter over the SoA state array — the toggled
/// list against state != kTransmit. Contract: every id < n_state (< 2^31,
/// as all NodeIds are), `out` holds at least n entries, and out/ids/state
/// do not overlap. The kept set and order are a pure function of the
/// inputs — exact integer compares only — so tiers are bit-identical.
std::size_t filter_state_not(const std::uint32_t* ids, std::size_t n,
                             const std::uint8_t* state, std::size_t n_state,
                             std::uint8_t skip, std::uint32_t* out);

namespace kernel_detail {
void u01_from_bits_scalar(const std::uint64_t* bits, double* out,
                          std::size_t n) noexcept;
std::size_t filter_state_not_scalar(const std::uint32_t* ids, std::size_t n,
                                    const std::uint8_t* state,
                                    std::size_t n_state, std::uint8_t skip,
                                    std::uint32_t* out) noexcept;
#if ECONCAST_HAVE_AVX2
void u01_from_bits_avx2(const std::uint64_t* bits, double* out,
                        std::size_t n) noexcept;
std::size_t filter_state_not_avx2(const std::uint32_t* ids, std::size_t n,
                                  const std::uint8_t* state,
                                  std::size_t n_state, std::uint8_t skip,
                                  std::uint32_t* out) noexcept;
#endif
}  // namespace kernel_detail

}  // namespace econcast::util

#endif  // ECONCAST_UTIL_KERNELS_H
