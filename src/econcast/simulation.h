// Continuous-time discrete-event simulation of a network running EconCast
// (§V). Each node holds exponential sojourn times with the rates of eq. (18),
// gated by carrier sense; the capture variant is packetized via the §V-B
// equivalence (continue with probability 1 - λ_xl per unit packet). Nodes
// adapt their multipliers from energy-storage deltas (eq. (17)).
//
// Works on any topology; on cliques with N <= 16 it can additionally tally
// the empirical network-state occupancy for direct comparison against the
// Gibbs distribution (19) (the Lemma 2 cross-check used by the test suite).
#ifndef ECONCAST_ECONCAST_SIMULATION_H
#define ECONCAST_ECONCAST_SIMULATION_H

#include <cstdint>
#include <vector>

#include "econcast/estimator.h"
#include "econcast/multiplier.h"
#include "econcast/rates.h"
#include "model/network.h"
#include "model/node_params.h"
#include "model/state_space.h"
#include "sim/channel.h"
#include "sim/energy.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "util/stats.h"

namespace econcast::proto {

struct SimConfig {
  model::Mode mode = model::Mode::kGroupput;
  Variant variant = Variant::kCapture;
  double sigma = 0.5;

  MultiplierConfig multiplier;         // shared adaptation parameters
  bool adapt_multiplier = true;        // false: freeze η at its initial value
  std::vector<double> eta_init;        // optional per-node override

  /// Auto-scale the constant step δ to the node's own power scale:
  /// δ_i = auto_step_gain · σ / (L_i · ρ_i). The multiplier's natural scale
  /// is σ/L_i and the storage delta's natural scale per interval is ρ_i·τ,
  /// so this makes the per-interval η drift a fixed fraction of σ/L_i —
  /// eq. (17) is unit-sensitive and the paper leaves the calibration of δ
  /// open ("some small constant δ", §V-F). Ignored for kTheorem1.
  bool auto_step = true;
  double auto_step_gain = 0.02;

  EstimatorConfig estimator;

  double duration = 1e6;   // total simulated packet-times
  double warmup = 0.0;     // metrics discarded before this time
  std::uint64_t seed = 1;
  double initial_energy = 0.0;

  /// Event-queue backend. kBinaryHeap is the reference; kCalendar is the
  /// O(1)-amortized bucket queue for large N. The backend can never change
  /// results — pop order is a strict total order on (time, seq) — so this
  /// knob trades only wall-clock time.
  sim::QueueEngine queue_engine = sim::QueueEngine::kBinaryHeap;

  /// Report the event-queue instrumentation counters through
  /// protocol::SimResult::extras ("queue_pushes", "queue_pops",
  /// "queue_stale_drops", "queue_peak_live"). Off by default so existing
  /// outputs are byte-identical. The counters themselves are
  /// backend-independent (staleness is resolved in pop order), so enabling
  /// this still cannot make outputs differ across engines.
  bool report_queue_stats = false;

  /// Physical-storage guard (off by default to match the paper's idealized
  /// §VII model, where b(t) is unbounded). When enabled, a node whose
  /// storage reaches `guard_floor` browns out: it is forced to sleep (an
  /// in-progress reception is lost) and may not wake again until it has
  /// recharged enough to afford one packet-time of listening. A transmitter
  /// will not extend a burst it cannot pay for. This bounds the giant
  /// captures that unbounded storage permits at small σ.
  ///
  /// Pair the guard with a realistic `initial_energy` — a receiver can only
  /// take bursts it can pay for, so starting at the floor collapses
  /// reception into one-packet snippets. A small storage capacitor's worth
  /// (e.g. ~1000 packet-times of listening, 0.5 mJ at the paper's scale)
  /// makes the guard invisible in steady state while still truncating the
  /// e^{(N-1)/σ}-packet transient captures.
  bool energy_guard = false;
  double guard_floor = 0.0;

  /// Tally time per network state (cliques, N <= 16 only).
  bool track_state_occupancy = false;
};

struct SimResult {
  double measured_window = 0.0;  // duration - warmup
  double groupput = 0.0;         // received packet-time per unit time
  double anyput = 0.0;

  std::vector<double> avg_power;          // measured consumption rate per node
  std::vector<double> listen_fraction;    // measured α_i
  std::vector<double> transmit_fraction;  // measured β_i
  std::vector<double> final_eta;

  util::RunningStats burst_lengths;  // packets per received burst
  util::SampleSet latencies;         // inter-burst gaps incl. >= 1 sleep

  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t bursts = 0;
  std::uint64_t corrupted_receptions = 0;
  /// Live events handled by the main loop (cancelled events the queue
  /// pruned are counted separately, in queue_stats.stale_drops).
  std::uint64_t events_processed = 0;

  /// Event-queue instrumentation (always collected — it is a handful of
  /// counters); surfaced into protocol extras only when
  /// SimConfig::report_queue_stats is set.
  sim::QueueStats queue_stats;

  /// Normalized time-in-state (indexed by model::state_index); empty unless
  /// track_state_occupancy was set.
  std::vector<double> state_occupancy;
};

class Simulation {
 public:
  Simulation(model::NodeSet nodes, model::Topology topology, SimConfig config);

  /// Runs to config.duration and collects results. Call once.
  SimResult run();

 private:
  enum class NodeState : std::uint8_t { kSleep, kListen, kTransmit };

  struct NodeRuntime {
    NodeState state = NodeState::kSleep;
    MultiplierTracker multiplier;
    sim::EnergyStore energy;
    double interval_start_level = 0.0;
    double state_since = 0.0;
    double listen_time = 0.0;    // accumulated inside the measured window
    double transmit_time = 0.0;
    // Burst bookkeeping while transmitting:
    std::uint64_t burst_packets = 0;
    bool burst_received_any = false;
    double packet_start = 0.0;

    NodeRuntime(const MultiplierConfig& mc, double harvest, double b0)
        : multiplier(mc), energy(harvest, b0) {}
  };

  // Event handlers.
  void fire_transition(std::size_t i);
  void handle_packet_end(std::size_t i);
  void handle_interval_end(std::size_t i);
  void handle_energy_guard(std::size_t i);

  // State machinery.
  void set_state(std::size_t i, NodeState next);
  void schedule_transition(std::size_t i);
  /// Cancels the node's pending rate-driven events (the next transition and
  /// any energy-guard wake-up/watchdog). Cancellation is owned by the event
  /// queue; the stale entries are pruned lazily in pop order.
  void invalidate_transition(std::size_t i) {
    queue_.cancel(static_cast<std::uint32_t>(i), sim::EventKind::kTransition);
    queue_.cancel(static_cast<std::uint32_t>(i),
                  sim::EventKind::kEnergyDepleted);
  }
  void resample_toggled();
  void resample_listening_neighbors_nc(std::size_t i);
  void begin_packet_timer(std::size_t i);
  void finish_burst(std::size_t i);

  // Estimation.
  int observed_listeners(std::size_t i) const;

  // Occupancy tracking.
  void occupancy_advance();
  void occupancy_apply_state(std::size_t i, NodeState next);

  model::NodeSet nodes_;
  model::Topology topo_;
  SimConfig config_;
  std::vector<RateController> rates_;  // per node (heterogeneous powers)
  ListenerEstimator estimator_;
  util::Rng rng_;

  double now_ = 0.0;
  sim::EventQueue queue_;
  sim::Channel channel_;
  sim::MetricsCollector metrics_;
  std::vector<NodeRuntime> nodes_rt_;
  std::vector<std::uint8_t> burst_rx_flag_;     // receivers of current burst
  std::vector<std::size_t> burst_rx_list_;
  std::uint64_t events_processed_ = 0;

  // Occupancy tracker state.
  std::vector<double> occupancy_;
  std::uint64_t occ_mask_ = 0;
  int occ_tx_ = -1;
  double occ_since_ = 0.0;
};

}  // namespace econcast::proto

#endif  // ECONCAST_ECONCAST_SIMULATION_H
