// Continuous-time discrete-event simulation of a network running EconCast
// (§V). Each node holds exponential sojourn times with the rates of eq. (18),
// gated by carrier sense; the capture variant is packetized via the §V-B
// equivalence (continue with probability 1 - λ_xl per unit packet). Nodes
// adapt their multipliers from energy-storage deltas (eq. (17)).
//
// Works on any topology; on cliques with N <= 16 it can additionally tally
// the empirical network-state occupancy for direct comparison against the
// Gibbs distribution (19) (the Lemma 2 cross-check used by the test suite).
//
// Hot-path layout: the per-node fields the inner loops touch on every event
// (state, state_since, the η mirror, the energy balance) live in parallel
// arrays backed by a per-scenario bump arena, not in the per-node struct —
// see SimConfig::hotpath_engine for the reference/optimized knob and the
// determinism guarantee.
#ifndef ECONCAST_ECONCAST_SIMULATION_H
#define ECONCAST_ECONCAST_SIMULATION_H

#include <cstdint>
#include <vector>

#include "econcast/estimator.h"
#include "econcast/multiplier.h"
#include "econcast/rates.h"
#include "model/network.h"
#include "model/node_params.h"
#include "model/state_space.h"
#include "sim/arena.h"
#include "sim/channel.h"
#include "sim/energy.h"
#include "sim/event_queue.h"
#include "sim/hotpath.h"
#include "sim/metrics.h"
#include "sim/node_id.h"
#include "util/stats.h"

namespace econcast::proto {

struct SimConfig {
  model::Mode mode = model::Mode::kGroupput;
  Variant variant = Variant::kCapture;
  double sigma = 0.5;

  MultiplierConfig multiplier;         // shared adaptation parameters
  bool adapt_multiplier = true;        // false: freeze η at its initial value
  std::vector<double> eta_init;        // optional per-node override

  /// Auto-scale the constant step δ to the node's own power scale:
  /// δ_i = auto_step_gain · σ / (L_i · ρ_i). The multiplier's natural scale
  /// is σ/L_i and the storage delta's natural scale per interval is ρ_i·τ,
  /// so this makes the per-interval η drift a fixed fraction of σ/L_i —
  /// eq. (17) is unit-sensitive and the paper leaves the calibration of δ
  /// open ("some small constant δ", §V-F). Ignored for kTheorem1.
  bool auto_step = true;
  double auto_step_gain = 0.02;

  EstimatorConfig estimator;

  double duration = 1e6;   // total simulated packet-times
  double warmup = 0.0;     // metrics discarded before this time
  std::uint64_t seed = 1;
  double initial_energy = 0.0;

  /// Event-queue backend. kBinaryHeap is the reference; kCalendar is the
  /// O(1)-amortized bucket queue for large N. The backend can never change
  /// results — pop order is a strict total order on (time, seq) — so this
  /// knob trades only wall-clock time.
  sim::QueueEngine queue_engine = sim::QueueEngine::kBinaryHeap;

  /// Report the event-queue instrumentation counters through
  /// protocol::SimResult::extras ("queue_pushes", "queue_pops",
  /// "queue_stale_drops", "queue_peak_live"). Off by default so existing
  /// outputs are byte-identical. The counters themselves are
  /// backend-independent (staleness is resolved in pop order), so enabling
  /// this still cannot make outputs differ across engines.
  bool report_queue_stats = false;

  /// Hot-path engine. kOptimized answers listener-count queries from the
  /// channel's incrementally maintained per-node counts and memoizes the
  /// rate exponentials between η updates; kReference recomputes both the
  /// O(degree) scan and the exponentials on every query — the pre-overhaul
  /// hot path, kept selectable as the oracle the optimized path is
  /// differentially tested against. Neither choice can change results: the
  /// cached values are produced by the exact same expressions the reference
  /// path evaluates, and the RNG stream is untouched. Only wall clock
  /// differs.
  sim::HotpathEngine hotpath_engine = sim::HotpathEngine::kOptimized;

  /// Report the hot-path instrumentation counters through
  /// protocol::SimResult::extras ("hotpath_listener_queries",
  /// "hotpath_listener_scans", "hotpath_listen_toggles",
  /// "hotpath_toggle_drains", "hotpath_arena_bytes",
  /// "hotpath_arena_chunks"). Off by default, mirroring
  /// report_queue_stats.
  bool report_hotpath_stats = false;

  /// Physical-storage guard (off by default to match the paper's idealized
  /// §VII model, where b(t) is unbounded). When enabled, a node whose
  /// storage reaches `guard_floor` browns out: it is forced to sleep (an
  /// in-progress reception is lost) and may not wake again until it has
  /// recharged enough to afford one packet-time of listening. A transmitter
  /// will not extend a burst it cannot pay for. This bounds the giant
  /// captures that unbounded storage permits at small σ.
  ///
  /// Pair the guard with a realistic `initial_energy` — a receiver can only
  /// take bursts it can pay for, so starting at the floor collapses
  /// reception into one-packet snippets. A small storage capacitor's worth
  /// (e.g. ~1000 packet-times of listening, 0.5 mJ at the paper's scale)
  /// makes the guard invisible in steady state while still truncating the
  /// e^{(N-1)/σ}-packet transient captures.
  bool energy_guard = false;
  double guard_floor = 0.0;

  /// Tally time per network state (cliques, N <= 16 only).
  bool track_state_occupancy = false;
};

struct SimResult {
  double measured_window = 0.0;  // duration - warmup
  double groupput = 0.0;         // received packet-time per unit time
  double anyput = 0.0;

  std::vector<double> avg_power;          // measured consumption rate per node
  std::vector<double> listen_fraction;    // measured α_i
  std::vector<double> transmit_fraction;  // measured β_i
  std::vector<double> final_eta;

  util::RunningStats burst_lengths;  // packets per received burst
  util::SampleSet latencies;         // inter-burst gaps incl. >= 1 sleep

  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t bursts = 0;
  std::uint64_t corrupted_receptions = 0;
  /// Live events handled by the main loop (cancelled events the queue
  /// pruned are counted separately, in queue_stats.stale_drops).
  std::uint64_t events_processed = 0;

  /// Event-queue instrumentation (always collected — it is a handful of
  /// counters); surfaced into protocol extras only when
  /// SimConfig::report_queue_stats is set.
  sim::QueueStats queue_stats;

  /// Hot-path instrumentation (always collected, like queue_stats);
  /// surfaced into protocol extras only when
  /// SimConfig::report_hotpath_stats is set.
  sim::HotpathStats hotpath_stats;

  /// Normalized time-in-state (indexed by model::state_index); empty unless
  /// track_state_occupancy was set.
  std::vector<double> state_occupancy;
};

class Simulation {
 public:
  Simulation(model::NodeSet nodes, model::Topology topology, SimConfig config);

  /// Runs to config.duration and collects results. Call once.
  SimResult run();

 private:
  enum class NodeState : std::uint8_t { kSleep, kListen, kTransmit };

  /// Cold per-node state: touched once per multiplier interval or once per
  /// burst, not on every event. The hot fields (state, state_since, η,
  /// energy balance) live in the SoA arrays below.
  struct NodeRuntime {
    MultiplierTracker multiplier;
    double interval_start_level = 0.0;
    // Burst bookkeeping while transmitting:
    std::uint64_t burst_packets = 0;
    bool burst_received_any = false;
    double packet_start = 0.0;

    explicit NodeRuntime(const MultiplierConfig& mc) : multiplier(mc) {}
  };

  // Event handlers.
  void fire_transition(sim::NodeId i);
  void handle_packet_end(sim::NodeId i);
  void handle_interval_end(sim::NodeId i);
  void handle_energy_guard(sim::NodeId i);

  // State machinery.
  void set_state(sim::NodeId i, NodeState next);
  void schedule_transition(sim::NodeId i);
  /// Cancels the node's pending rate-driven events (the next transition and
  /// any energy-guard wake-up/watchdog). Cancellation is owned by the event
  /// queue; the stale entries are pruned lazily in pop order.
  void invalidate_transition(sim::NodeId i) {
    queue_.cancel(i, sim::EventKind::kTransition);
    queue_.cancel(i, sim::EventKind::kEnergyDepleted);
  }
  void resample_toggled();
  void resample_listening_neighbors_nc(sim::NodeId i);
  void begin_packet_timer(sim::NodeId i);
  void finish_burst(sim::NodeId i);

  // Estimation.
  int observed_listeners(sim::NodeId i) const;

  // Rate evaluation. λ_sl and λ_lx are exponentials of expressions that only
  // change when η or the listener count changes; under the optimized engine
  // they are served from per-node memos refreshed on η updates. The memo
  // entries are produced by the exact same RateController expressions the
  // reference engine evaluates inline, so both engines return bit-equal
  // rates.
  void refresh_eta(sim::NodeId i);
  double wake_rate(sim::NodeId i, bool idle);
  double listen_tx_rate(sim::NodeId i, bool idle);

  // Occupancy tracking.
  void occupancy_advance();
  void occupancy_apply_state(sim::NodeId i, NodeState next);

  model::NodeSet nodes_;
  model::Topology topo_;
  SimConfig config_;
  std::vector<RateController> rates_;  // per node (heterogeneous powers)
  ListenerEstimator estimator_;
  util::Rng rng_;

  double now_ = 0.0;
  // The scenario arena backs every member below it; it is declared first so
  // it is destroyed last (and Simulation is immovable because of it — the
  // containers hold raw pointers into it).
  sim::Arena arena_;
  sim::EventQueue queue_;
  sim::Channel channel_;
  sim::MetricsCollector metrics_;
  std::vector<NodeRuntime> nodes_rt_;  // cold per-node state

  // Hot per-node state, struct-of-arrays (all arena-backed, assigned after
  // validation in the constructor):
  sim::ArenaVector<NodeState> state_;
  sim::ArenaVector<double> state_since_;
  sim::ArenaVector<double> listen_time_;    // inside the measured window
  sim::ArenaVector<double> transmit_time_;
  sim::ArenaVector<double> eta_;        // mirror of nodes_rt_[i].multiplier
  sim::ArenaVector<double> wake_rate_;  // λ_sl(η) at idle; refreshed with η
  sim::ArenaVector<double> tx_rate_;    // λ_lx(η, c) memo, row per node,
  std::size_t tx_rate_width_ = 0;       //   column per count; rows refilled
                                        //   eagerly on every η update
  sim::EnergyLedger energy_;

  sim::ArenaVector<std::uint8_t> burst_rx_flag_;  // receivers of current burst
  sim::ArenaVector<sim::NodeId> burst_rx_list_;
  sim::ArenaVector<sim::NodeId> toggled_scratch_;  // filter_state_not output
  std::uint64_t events_processed_ = 0;
  bool opt_ = true;  // hotpath_engine == kOptimized

  // Occupancy tracker state.
  std::vector<double> occupancy_;
  std::uint64_t occ_mask_ = 0;
  int occ_tx_ = -1;
  double occ_since_ = 0.0;
};

}  // namespace econcast::proto

#endif  // ECONCAST_ECONCAST_SIMULATION_H
