// Local Lagrange-multiplier adaptation, eq. (17):
//   η[k] = ( η[k-1] - δ_k/τ_k · (b[k] - b[k-1]) )⁺
// The node observes only its own energy-storage delta over the k-th interval
// — a noisy estimate of (ρ - average power), which is exactly -∂D/∂η
// (eq. (22)) — so this is the stochastic-approximation dual descent of §VI.
//
// Two step schedules:
//  * kConstant:  δ_k = δ, τ_k = τ         (the practical choice of §V-F)
//  * kTheorem1:  δ_k = 1/((k+1)·ln(k+1)),  τ_k = k   (guaranteed convergence)
#ifndef ECONCAST_ECONCAST_MULTIPLIER_H
#define ECONCAST_ECONCAST_MULTIPLIER_H

#include <cstddef>

namespace econcast::proto {

enum class StepSchedule { kConstant, kTheorem1 };

struct MultiplierConfig {
  StepSchedule schedule = StepSchedule::kConstant;
  double delta = 0.02;    // δ for kConstant
  double tau = 50.0;      // τ for kConstant (packet-times)
  double eta_init = 0.0;  // starting multiplier
};

class MultiplierTracker {
 public:
  explicit MultiplierTracker(const MultiplierConfig& config);

  double eta() const noexcept { return eta_; }
  /// Length τ_k of the interval that is about to run (k starts at 1).
  double next_interval_length() const noexcept;
  /// Applies eq. (17) with the storage delta observed over the interval just
  /// finished, then advances k.
  void update(double storage_delta) noexcept;

  std::size_t intervals_completed() const noexcept { return k_ - 1; }

  /// Overrides the multiplier (e.g. warm-start at the analytic η*).
  void set_eta(double eta) noexcept { eta_ = eta < 0.0 ? 0.0 : eta; }

 private:
  double step_over_interval() const noexcept;  // δ_k / τ_k

  MultiplierConfig config_;
  double eta_;
  std::size_t k_ = 1;
};

}  // namespace econcast::proto

#endif  // ECONCAST_ECONCAST_MULTIPLIER_H
