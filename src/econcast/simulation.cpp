#include "econcast/simulation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <type_traits>

#include "util/kernels.h"

namespace econcast::proto {

using sim::EventKind;
using sim::NodeId;

namespace {
MultiplierConfig node_multiplier_config(const SimConfig& cfg,
                                        const model::NodeParams& node,
                                        double eta_init) {
  MultiplierConfig mc = cfg.multiplier;
  mc.eta_init = eta_init;
  if (cfg.auto_step && mc.schedule == StepSchedule::kConstant)
    mc.delta = cfg.auto_step_gain * cfg.sigma /
               (node.listen_power * node.budget);
  return mc;
}

}  // namespace

Simulation::Simulation(model::NodeSet nodes, model::Topology topology,
                       SimConfig config)
    : nodes_(std::move(nodes)),
      topo_(std::move(topology)),
      config_(std::move(config)),
      estimator_(config_.estimator),
      rng_(config_.seed, util::Rng::kDefaultBlock),
      queue_(config_.queue_engine, &arena_),
      channel_(topo_, &arena_, config_.hotpath_engine),
      metrics_(nodes_.size()),
      state_(sim::ArenaAllocator<NodeState>(&arena_)),
      state_since_(sim::ArenaAllocator<double>(&arena_)),
      listen_time_(sim::ArenaAllocator<double>(&arena_)),
      transmit_time_(sim::ArenaAllocator<double>(&arena_)),
      eta_(sim::ArenaAllocator<double>(&arena_)),
      wake_rate_(sim::ArenaAllocator<double>(&arena_)),
      tx_rate_(sim::ArenaAllocator<double>(&arena_)),
      energy_(&arena_),
      burst_rx_flag_(sim::ArenaAllocator<std::uint8_t>(&arena_)),
      burst_rx_list_(sim::ArenaAllocator<NodeId>(&arena_)),
      toggled_scratch_(sim::ArenaAllocator<NodeId>(&arena_)),
      opt_(config_.hotpath_engine == sim::HotpathEngine::kOptimized) {
  model::validate(nodes_);
  if (nodes_.size() != topo_.size())
    throw std::invalid_argument("nodes/topology size mismatch");
  if (!(config_.sigma > 0.0))
    throw std::invalid_argument("sigma must be positive");
  if (!(config_.duration > config_.warmup) || config_.warmup < 0.0)
    throw std::invalid_argument("need 0 <= warmup < duration");
  if (!config_.eta_init.empty() && config_.eta_init.size() != nodes_.size())
    throw std::invalid_argument("eta_init size mismatch");
  if (config_.track_state_occupancy &&
      (!topo_.is_clique() || nodes_.size() > 16))
    throw std::invalid_argument(
        "state occupancy tracking requires a clique with N <= 16");

  const std::size_t n = nodes_.size();

  // Live events are bounded by a few per node; reserving up front avoids
  // the reallocation churn that otherwise recurs during every run's ramp-up
  // in the N >= 64 regime (the shared policy lives in
  // EventQueue::capacity_for_nodes).
  queue_.reserve_for_nodes(n);

  state_.assign(n, NodeState::kSleep);
  state_since_.assign(n, 0.0);
  listen_time_.assign(n, 0.0);
  transmit_time_.assign(n, 0.0);
  eta_.assign(n, 0.0);
  wake_rate_.assign(n, 0.0);
  std::size_t max_degree = 0;
  for (std::size_t i = 0; i < n; ++i)
    max_degree = std::max(max_degree, topo_.neighbors(i).size());
  tx_rate_width_ = max_degree + 1;
  tx_rate_.assign(n * tx_rate_width_, 0.0);  // rows filled by refresh_eta
  energy_.reserve(n);
  burst_rx_flag_.assign(n, 0);
  burst_rx_list_.reserve(n);
  toggled_scratch_.reserve(n);

  rates_.reserve(n);
  nodes_rt_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rates_.emplace_back(nodes_[i].listen_power, nodes_[i].transmit_power,
                        config_.sigma, config_.variant, config_.mode);
    const double eta0 = config_.eta_init.empty()
                            ? config_.multiplier.eta_init
                            : config_.eta_init[i];
    nodes_rt_.emplace_back(node_multiplier_config(config_, nodes_[i], eta0));
    nodes_rt_.back().interval_start_level = config_.initial_energy;
    energy_.add(nodes_[i].budget, config_.initial_energy);
    refresh_eta(static_cast<NodeId>(i));
  }
  if (config_.track_state_occupancy)
    occupancy_.assign(model::state_space_size(n), 0.0);
}

int Simulation::observed_listeners(NodeId i) const {
  return channel_.listening_neighbors(i);
}

void Simulation::refresh_eta(NodeId i) {
  eta_[i] = nodes_rt_[i].multiplier.eta();
  if (!opt_) return;
  wake_rate_[i] = rates_[i].sleep_to_listen(eta_[i], true);
  // Eager batch refill: one contiguous pass over the node's memo row per η
  // update replaces the old invalidate-then-lazily-recompute scheme, so the
  // hot-loop query below is a plain load with no staleness check. The row
  // entries are the exact per-call expressions (see
  // RateController::fill_listen_to_transmit_row), so results are unchanged.
  rates_[i].fill_listen_to_transmit_row(
      eta_[i], tx_rate_.data() + static_cast<std::size_t>(i) * tx_rate_width_,
      tx_rate_width_);
}

double Simulation::wake_rate(NodeId i, bool idle) {
  if (opt_) return idle ? wake_rate_[i] : 0.0;
  return rates_[i].sleep_to_listen(eta_[i], idle);
}

double Simulation::listen_tx_rate(NodeId i, bool idle) {
  if (!idle) return 0.0;
  const int count = observed_listeners(i);
  if (!opt_)
    return rates_[i].listen_to_transmit(eta_[i], static_cast<double>(count),
                                        true);
  return tx_rate_[static_cast<std::size_t>(i) * tx_rate_width_ +
                  static_cast<std::size_t>(count)];
}

void Simulation::occupancy_advance() {
  if (occupancy_.empty()) return;
  const double from = std::max(occ_since_, metrics_.start_time());
  if (now_ > from) {
    const model::NetState s{occ_tx_, occ_mask_};
    occupancy_[model::state_index(nodes_.size(), s)] += now_ - from;
  }
  occ_since_ = now_;
}

void Simulation::occupancy_apply_state(NodeId i, NodeState next) {
  if (occupancy_.empty()) return;
  const std::uint64_t bit = 1ULL << i;
  // Clear the node's previous contribution.
  occ_mask_ &= ~bit;
  if (occ_tx_ == static_cast<int>(i)) occ_tx_ = -1;
  switch (next) {
    case NodeState::kListen:
      occ_mask_ |= bit;
      break;
    case NodeState::kTransmit:
      occ_tx_ = static_cast<int>(i);
      break;
    case NodeState::kSleep:
      break;
  }
}

void Simulation::set_state(NodeId i, NodeState next) {
  occupancy_advance();
  occupancy_apply_state(i, next);

  // Time-in-state accounting, clipped to the measured window.
  const double from = std::max(state_since_[i], metrics_.start_time());
  if (now_ > from) {
    if (state_[i] == NodeState::kListen) listen_time_[i] += now_ - from;
    if (state_[i] == NodeState::kTransmit) transmit_time_[i] += now_ - from;
  }

  // Channel listen bookkeeping (transmit raises carrier via begin_burst).
  if (state_[i] == NodeState::kListen && next != NodeState::kListen)
    channel_.set_listening(i, false);
  if (next == NodeState::kListen) channel_.set_listening(i, true);

  double draw = 0.0;
  if (next == NodeState::kListen) draw = nodes_[i].listen_power;
  if (next == NodeState::kTransmit) draw = nodes_[i].transmit_power;
  energy_.set_draw(i, draw, now_);

  state_[i] = next;
  state_since_[i] = now_;
}

void Simulation::schedule_transition(NodeId i) {
  // Any previously scheduled transition / energy-guard event for this node
  // is obsolete the moment we re-sample; the queue invalidates them in
  // O(1) and prunes lazily (schedule() below re-arms its own slot).
  invalidate_transition(i);
  const bool idle = !channel_.busy_at(i);
  double rate = 0.0;
  switch (state_[i]) {
    case NodeState::kSleep:
      if (config_.energy_guard) {
        // Hysteresis: a browned-out node recharges enough for one
        // packet-time of listening before it competes to wake again. The
        // tolerance and slack keep floating-point round-off from
        // re-arming the refill timer at ~zero intervals.
        const double refill =
            config_.guard_floor + nodes_[i].listen_power;
        const double level = energy_.level(i, now_);
        const double deficit = refill - level;
        if (deficit > 1e-9 * refill) {
          queue_.schedule(now_ + deficit / nodes_[i].budget + 1e-9,
                          EventKind::kEnergyDepleted, i);
          return;
        }
      }
      rate = wake_rate(i, idle);
      break;
    case NodeState::kListen: {
      if (config_.energy_guard &&
          nodes_[i].listen_power > nodes_[i].budget) {
        // Brown-out watchdog: fires even while carrier-gated (a listener
        // pinned inside a long burst still drains its storage).
        const double level = energy_.level(i, now_);
        const double dt = std::max(0.0, level - config_.guard_floor) /
                          (nodes_[i].listen_power - nodes_[i].budget);
        queue_.schedule(now_ + dt, EventKind::kEnergyDepleted, i);
      }
      rate = rates_[i].listen_to_sleep(idle) + listen_tx_rate(i, idle);
      break;
    }
    case NodeState::kTransmit:
      return;  // bursts advance via packet-end events
  }
  if (rate <= 0.0) return;  // gated: wait for a channel/interval wake-up
  queue_.schedule(now_ + rng_.exponential(rate), EventKind::kTransition, i);
}

void Simulation::resample_toggled() {
  // Filter-then-schedule: the non-transmitting survivors are collected by
  // the tier-dispatched SoA compaction kernel (util::filter_state_not — the
  // hot branchy loop this used to be), then re-sampled. schedule_transition
  // never writes state_, so filtering up front is behavior-identical to
  // testing each id inline, on every tier (the kernel is stable and exact).
  const sim::ArenaVector<NodeId>& toggled = channel_.drain_toggled();
  if (toggled.empty()) return;
  toggled_scratch_.resize(toggled.size());
  static_assert(std::is_same_v<NodeId, std::uint32_t>,
                "filter kernel compacts 32-bit node ids");
  const std::size_t kept = util::filter_state_not(
      toggled.data(), toggled.size(),
      reinterpret_cast<const std::uint8_t*>(state_.data()), state_.size(),
      static_cast<std::uint8_t>(NodeState::kTransmit),
      toggled_scratch_.data());
  for (std::size_t i = 0; i < kept; ++i)
    schedule_transition(toggled_scratch_[i]);
}

void Simulation::resample_listening_neighbors_nc(NodeId i) {
  if (config_.variant != Variant::kNonCapture) return;
  // λ_lx of eq. (18d) depends on the other-listener count, so listening
  // neighbors must re-sample when node i joins/leaves the listener pool.
  for (const std::size_t j : topo_.neighbors(i)) {
    if (state_[j] == NodeState::kListen)
      schedule_transition(static_cast<NodeId>(j));
  }
}

void Simulation::begin_packet_timer(NodeId i) {
  nodes_rt_[i].packet_start = now_;
  queue_.push(now_ + 1.0, EventKind::kPacketEnd, i);
}

void Simulation::fire_transition(NodeId i) {
  const bool idle = !channel_.busy_at(i);
  if (!idle) return;  // defensive: gated events are cancelled in the queue

  switch (state_[i]) {
    case NodeState::kSleep: {
      set_state(i, NodeState::kListen);
      schedule_transition(i);
      resample_listening_neighbors_nc(i);
      break;
    }
    case NodeState::kListen: {
      const double r_sleep = rates_[i].listen_to_sleep(idle);
      const double r_tx = listen_tx_rate(i, idle);
      const double total = r_sleep + r_tx;
      if (total <= 0.0) return;
      if (rng_.uniform() * total < r_sleep) {
        set_state(i, NodeState::kSleep);
        metrics_.node_slept(i);
        schedule_transition(i);
        resample_listening_neighbors_nc(i);
      } else {
        set_state(i, NodeState::kTransmit);
        invalidate_transition(i);  // cancel any pending guard watchdog
        channel_.begin_burst(i);
        channel_.begin_packet(i);
        nodes_rt_[i].burst_packets = 0;
        nodes_rt_[i].burst_received_any = false;
        begin_packet_timer(i);
        resample_toggled();
      }
      break;
    }
    case NodeState::kTransmit:
      break;  // no rate-driven exits from transmit
  }
}

void Simulation::finish_burst(NodeId i) {
  NodeRuntime& rt = nodes_rt_[i];
  metrics_.record_burst(now_, rt.burst_packets, rt.burst_received_any);
  for (const NodeId j : burst_rx_list_) {
    metrics_.receiver_burst_ended(j, now_);
    burst_rx_flag_[j] = 0;
  }
  burst_rx_list_.clear();
  channel_.end_burst(i);
  set_state(i, NodeState::kListen);  // x -> l (Fig. 1)
  schedule_transition(i);
  resample_toggled();
}

void Simulation::handle_packet_end(NodeId i) {
  NodeRuntime& rt = nodes_rt_[i];
  const sim::Channel::PacketOutcome& outcome = channel_.end_packet(i);
  const auto clean = static_cast<std::uint32_t>(outcome.clean_receivers.size());
  metrics_.record_packet(now_, 1.0, clean, outcome.corrupted);
  for (const NodeId j : outcome.clean_receivers) {
    metrics_.receiver_burst_started(j, rt.packet_start);
    if (!burst_rx_flag_[j]) {
      burst_rx_flag_[j] = 1;
      burst_rx_list_.push_back(j);
    }
  }
  ++rt.burst_packets;
  rt.burst_received_any |= clean > 0;

  // Capture decision (§V-D): the transmitter estimates the listener count
  // from the pings of this packet's recipients and keeps the channel with
  // probability 1 - exp(-ĉ/σ) (groupput) / 1 - exp(-γ̂/σ) (anyput).
  const int estimate = estimator_.estimate(static_cast<int>(clean), rng_);
  // The energy guard refuses to extend a burst the node cannot pay for.
  const bool can_afford =
      !config_.energy_guard ||
      energy_.level(i, now_) - config_.guard_floor >=
          nodes_[i].transmit_power;
  if (can_afford &&
      rng_.bernoulli(
          rates_[i].continue_probability(static_cast<double>(estimate)))) {
    channel_.begin_packet(i);
    begin_packet_timer(i);
  } else {
    finish_burst(i);
  }
}

void Simulation::handle_energy_guard(NodeId i) {
  switch (state_[i]) {
    case NodeState::kSleep:
      // Refill reached: resume the normal wake-up race.
      schedule_transition(i);
      break;
    case NodeState::kListen:
      // Brown-out: forced sleep; an in-progress reception is lost (the
      // channel drops the lock when the node stops listening).
      set_state(i, NodeState::kSleep);
      metrics_.node_slept(i);
      schedule_transition(i);
      resample_listening_neighbors_nc(i);
      break;
    case NodeState::kTransmit:
      break;  // transmit affordability is checked at packet boundaries
  }
}

void Simulation::handle_interval_end(NodeId i) {
  NodeRuntime& rt = nodes_rt_[i];
  const double level = energy_.level(i, now_);
  if (config_.adapt_multiplier)
    rt.multiplier.update(level - rt.interval_start_level);
  rt.interval_start_level = level;
  refresh_eta(i);
  queue_.push(now_ + rt.multiplier.next_interval_length(),
              EventKind::kIntervalEnd, i);
  if (state_[i] != NodeState::kTransmit) schedule_transition(i);
}

SimResult Simulation::run() {
  const std::size_t n = nodes_.size();
  metrics_.start_measurement(config_.warmup);
  std::vector<double> consumed_at_warmup(n, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    schedule_transition(static_cast<NodeId>(i));
    queue_.push(nodes_rt_[i].multiplier.next_interval_length(),
                EventKind::kIntervalEnd, static_cast<NodeId>(i));
  }
  bool warmup_snapshot_pending = config_.warmup > 0.0;
  if (warmup_snapshot_pending)
    queue_.push(config_.warmup, EventKind::kCustom, 0);

  while (!queue_.empty() && queue_.top().time <= config_.duration) {
    const sim::Event e = queue_.pop();
    now_ = e.time;
    ++events_processed_;
    switch (e.kind) {
      case EventKind::kTransition:
        fire_transition(e.node);  // cancelled events never leave the queue
        break;
      case EventKind::kPacketEnd:
        handle_packet_end(e.node);
        break;
      case EventKind::kIntervalEnd:
        handle_interval_end(e.node);
        break;
      case EventKind::kEnergyDepleted:
        handle_energy_guard(e.node);
        break;
      case EventKind::kCustom:
        if (warmup_snapshot_pending) {
          for (std::size_t i = 0; i < n; ++i)
            consumed_at_warmup[i] = energy_.consumed(i, now_);
          warmup_snapshot_pending = false;
        }
        break;
      case EventKind::kPingSlot:
        break;  // unused in the idealized simulation
    }
  }
  now_ = config_.duration;
  occupancy_advance();

  SimResult result;
  result.measured_window = config_.duration - config_.warmup;
  result.groupput = metrics_.groupput(config_.duration);
  result.anyput = metrics_.anyput(config_.duration);
  result.avg_power.resize(n);
  result.listen_fraction.resize(n);
  result.transmit_fraction.resize(n);
  result.final_eta.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Close the open state interval.
    const double from = std::max(state_since_[i], config_.warmup);
    if (now_ > from) {
      if (state_[i] == NodeState::kListen) listen_time_[i] += now_ - from;
      if (state_[i] == NodeState::kTransmit) transmit_time_[i] += now_ - from;
    }
    result.avg_power[i] =
        (energy_.consumed(i, now_) - consumed_at_warmup[i]) /
        result.measured_window;
    result.listen_fraction[i] = listen_time_[i] / result.measured_window;
    result.transmit_fraction[i] = transmit_time_[i] / result.measured_window;
    result.final_eta[i] = nodes_rt_[i].multiplier.eta();
  }
  result.burst_lengths = metrics_.burst_lengths();
  result.latencies = std::move(metrics_.latencies());
  result.packets_sent = metrics_.packets_sent();
  result.packets_received = metrics_.packets_received();
  result.bursts = metrics_.burst_count();
  result.corrupted_receptions = metrics_.corrupted_receptions();
  result.events_processed = events_processed_;
  result.queue_stats = queue_.stats();
  result.hotpath_stats = channel_.hotpath_stats();
  result.hotpath_stats.arena_bytes = arena_.stats().bytes_allocated;
  result.hotpath_stats.arena_chunks = arena_.stats().chunks;
  if (!occupancy_.empty()) {
    result.state_occupancy = occupancy_;
    const double total = result.measured_window;
    for (double& v : result.state_occupancy) v /= total;
  }
  return result;
}

}  // namespace econcast::proto
