#include "econcast/estimator.h"

#include <stdexcept>

namespace econcast::proto {

ListenerEstimator::ListenerEstimator(const EstimatorConfig& config)
    : config_(config) {
  if (config.kind == EstimatorKind::kBinomialThinning &&
      (config.detect_prob < 0.0 || config.detect_prob > 1.0))
    throw std::invalid_argument("detect_prob must be in [0, 1]");
}

int ListenerEstimator::estimate(int true_count, util::Rng& rng) const {
  switch (config_.kind) {
    case EstimatorKind::kPerfect:
      return true_count;
    case EstimatorKind::kBinomialThinning: {
      int seen = 0;
      for (int i = 0; i < true_count; ++i)
        if (rng.bernoulli(config_.detect_prob)) ++seen;
      return seen;
    }
    case EstimatorKind::kExistenceOnly:
      return true_count > 0 ? 1 : 0;
  }
  return true_count;
}

}  // namespace econcast::proto
