#include "econcast/estimator.h"

#include <stdexcept>

namespace econcast::proto {

ListenerEstimator::ListenerEstimator(const EstimatorConfig& config)
    : config_(config) {
  // detect_prob is validated for every kind (the written-but-unused negation
  // rejects NaN too): a config that only becomes invalid when the kind is
  // later switched to thinning should fail here, not at that switch.
  if (!(config.detect_prob >= 0.0 && config.detect_prob <= 1.0))
    throw std::invalid_argument("detect_prob must be in [0, 1]");
  switch (config.kind) {
    case EstimatorKind::kPerfect:
    case EstimatorKind::kBinomialThinning:
    case EstimatorKind::kExistenceOnly:
      break;
    default:
      throw std::invalid_argument("invalid EstimatorKind");
  }
}

int ListenerEstimator::estimate(int true_count, util::Rng& rng) const {
  switch (config_.kind) {
    case EstimatorKind::kPerfect:
      return true_count;
    case EstimatorKind::kBinomialThinning: {
      int seen = 0;
      for (int i = 0; i < true_count; ++i)
        if (rng.bernoulli(config_.detect_prob)) ++seen;
      return seen;
    }
    case EstimatorKind::kExistenceOnly:
      return true_count > 0 ? 1 : 0;
  }
  // An out-of-range kind is rejected at construction; reaching here means
  // the config was bitwise-corrupted after the fact. Fail loudly instead of
  // silently degrading to perfect estimation.
  throw std::logic_error("ListenerEstimator: corrupted EstimatorKind");
}

}  // namespace econcast::proto
