// The EconCast transition-rate laws, eqs. (18a)-(18f). Rates are per
// packet-time; the carrier-sense indicator A(t) gates every sleep/listen
// transition ("stick to the current state" while the medium is busy, §V-E).
//
// Groupput mode drives rates with the listener-count estimate ĉ(t); anyput
// mode with the listener-existence estimate γ̂(t). The capture variant (C)
// applies the estimate to the transmit-release rate λ_xl; the non-capture
// variant (NC) applies it to the transmit-entry rate λ_lx.
#ifndef ECONCAST_ECONCAST_RATES_H
#define ECONCAST_ECONCAST_RATES_H

#include <cstddef>

#include "model/state_space.h"

namespace econcast::proto {

enum class Variant {
  kCapture,     // EconCast-C: transmitter may keep the channel (§V-D)
  kNonCapture,  // EconCast-NC: one packet per channel acquisition
};

const char* to_string(Variant variant) noexcept;

class RateController {
 public:
  RateController(double listen_power, double transmit_power, double sigma,
                 Variant variant, model::Mode mode);

  /// Converts a raw listener count into the mode's driving estimate:
  /// ĉ = count (groupput) or γ̂ = 1{count > 0} (anyput).
  double effective_estimate(double listener_count) const noexcept;

  /// λ_sl, eq. (18a): A(t) · exp(-ηL/σ).
  double sleep_to_listen(double eta, bool channel_idle) const noexcept;

  /// λ_ls, eq. (18b): A(t).
  double listen_to_sleep(bool channel_idle) const noexcept;

  /// λ_lx, eqs. (18c)/(18d). `listener_count` is the count of *other* active
  /// listeners; it only matters for the non-capture variant.
  double listen_to_transmit(double eta, double listener_count,
                            bool channel_idle) const noexcept;

  /// Fills row[c] = listen_to_transmit(eta, c, /*channel_idle=*/true) for
  /// every count c in [0, width) — the eager batch refill behind the
  /// optimized hot path's rate memo. The count-invariant exponent term is
  /// hoisted out of the loop and the count-independent variants collapse to
  /// one or two exp() calls, but every entry is produced by the exact
  /// expression the per-call path evaluates, so the row is bit-identical to
  /// width separate listen_to_transmit calls.
  void fill_listen_to_transmit_row(double eta, double* row,
                                   std::size_t width) const noexcept;

  /// λ_xl, eqs. (18e)/(18f). `listener_count` is the number of listeners the
  /// transmitter observed (pings).
  double transmit_to_listen(double listener_count) const noexcept;

  /// Packetized equivalent of λ_xl (§V-B): probability of sending another
  /// back-to-back unit packet, 1 - λ_xl. Always 0 for the non-capture
  /// variant.
  double continue_probability(double listener_count) const noexcept;

  double sigma() const noexcept { return sigma_; }
  Variant variant() const noexcept { return variant_; }
  model::Mode mode() const noexcept { return mode_; }

 private:
  double listen_power_;
  double transmit_power_;
  double sigma_;
  Variant variant_;
  model::Mode mode_;
};

}  // namespace econcast::proto

#endif  // ECONCAST_ECONCAST_RATES_H
