#include "econcast/rates.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace econcast::proto {

const char* to_string(Variant variant) noexcept {
  return variant == Variant::kCapture ? "EconCast-C" : "EconCast-NC";
}

namespace {
// exp with the exponent clamped to avoid inf/0-collapse during transients
// (η far from η* can momentarily produce huge exponents).
double safe_exp(double x) noexcept {
  return std::exp(std::clamp(x, -700.0, 700.0));
}
}  // namespace

RateController::RateController(double listen_power, double transmit_power,
                               double sigma, Variant variant, model::Mode mode)
    : listen_power_(listen_power),
      transmit_power_(transmit_power),
      sigma_(sigma),
      variant_(variant),
      mode_(mode) {
  if (!(listen_power > 0.0) || !(transmit_power > 0.0))
    throw std::invalid_argument("power levels must be positive");
  if (!(sigma > 0.0)) throw std::invalid_argument("sigma must be positive");
}

double RateController::effective_estimate(double listener_count) const noexcept {
  if (mode_ == model::Mode::kGroupput) return std::max(0.0, listener_count);
  return listener_count > 0.0 ? 1.0 : 0.0;
}

double RateController::sleep_to_listen(double eta,
                                       bool channel_idle) const noexcept {
  if (!channel_idle) return 0.0;
  return safe_exp(-eta * listen_power_ / sigma_);
}

double RateController::listen_to_sleep(bool channel_idle) const noexcept {
  return channel_idle ? 1.0 : 0.0;
}

double RateController::listen_to_transmit(double eta, double listener_count,
                                          bool channel_idle) const noexcept {
  if (!channel_idle) return 0.0;
  double exponent = eta * (listen_power_ - transmit_power_) / sigma_;
  if (variant_ == Variant::kNonCapture)
    exponent += effective_estimate(listener_count) / sigma_;
  return safe_exp(exponent);
}

void RateController::fill_listen_to_transmit_row(
    double eta, double* row, std::size_t width) const noexcept {
  // The same exponent expressions as listen_to_transmit above, with the
  // count-invariant base hoisted; entry c must stay bit-identical to
  // listen_to_transmit(eta, c, true).
  const double base = eta * (listen_power_ - transmit_power_) / sigma_;
  if (variant_ != Variant::kNonCapture) {
    // (18c): the capture entry rate carries no listener-count term.
    const double rate = safe_exp(base);
    for (std::size_t c = 0; c < width; ++c) row[c] = rate;
  } else if (mode_ != model::Mode::kGroupput) {
    // Anyput drives with 1{c > 0}: the row holds two distinct values.
    if (width > 0) row[0] = safe_exp(base + 0.0 / sigma_);
    if (width > 1) {
      const double active = safe_exp(base + 1.0 / sigma_);
      for (std::size_t c = 1; c < width; ++c) row[c] = active;
    }
  } else {
    for (std::size_t c = 0; c < width; ++c)
      row[c] = safe_exp(base + static_cast<double>(c) / sigma_);
  }
}

double RateController::transmit_to_listen(double listener_count) const noexcept {
  if (variant_ == Variant::kNonCapture) return 1.0;  // (18f)
  return safe_exp(-effective_estimate(listener_count) / sigma_);  // (18e)
}

double RateController::continue_probability(double listener_count) const noexcept {
  if (variant_ == Variant::kNonCapture) return 0.0;
  return 1.0 - transmit_to_listen(listener_count);
}

}  // namespace econcast::proto
