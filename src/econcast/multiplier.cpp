#include "econcast/multiplier.h"

#include <cmath>
#include <stdexcept>

namespace econcast::proto {

MultiplierTracker::MultiplierTracker(const MultiplierConfig& config)
    : config_(config), eta_(config.eta_init) {
  if (config.schedule == StepSchedule::kConstant) {
    if (!(config.delta > 0.0) || !(config.tau > 0.0))
      throw std::invalid_argument("constant schedule needs delta, tau > 0");
  }
  if (eta_ < 0.0) throw std::invalid_argument("eta_init must be >= 0");
}

double MultiplierTracker::next_interval_length() const noexcept {
  if (config_.schedule == StepSchedule::kConstant) return config_.tau;
  return static_cast<double>(k_);  // τ_k = k
}

double MultiplierTracker::step_over_interval() const noexcept {
  if (config_.schedule == StepSchedule::kConstant)
    return config_.delta / config_.tau;
  const double kp1 = static_cast<double>(k_ + 1);
  const double delta_k = 1.0 / (kp1 * std::log(kp1));
  return delta_k / static_cast<double>(k_);
}

void MultiplierTracker::update(double storage_delta) noexcept {
  eta_ -= step_over_interval() * storage_delta;
  if (eta_ < 0.0) eta_ = 0.0;
  ++k_;
}

}  // namespace econcast::proto
