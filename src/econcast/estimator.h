// Listener-count estimation models (§V-C). The idealized evaluation (§VII-A)
// assumes ĉ(t) = c(t); the ablation suite degrades this to quantify the
// paper's claim that "estimates do not need to be accurate for EconCast to
// function". The full ping-collision process is modeled in src/testbed/.
#ifndef ECONCAST_ECONCAST_ESTIMATOR_H
#define ECONCAST_ECONCAST_ESTIMATOR_H

#include "util/random.h"

namespace econcast::proto {

enum class EstimatorKind {
  kPerfect,           // ĉ = c
  kBinomialThinning,  // each listener's ping detected independently w.p. p
  kExistenceOnly,     // ĉ = 1{c > 0} (existence detector even in groupput mode)
};

struct EstimatorConfig {
  EstimatorKind kind = EstimatorKind::kPerfect;
  double detect_prob = 1.0;  // for kBinomialThinning
};

class ListenerEstimator {
 public:
  explicit ListenerEstimator(const EstimatorConfig& config);

  /// Returns ĉ given the true count of listeners.
  int estimate(int true_count, util::Rng& rng) const;

 private:
  EstimatorConfig config_;
};

}  // namespace econcast::proto

#endif  // ECONCAST_ECONCAST_ESTIMATOR_H
