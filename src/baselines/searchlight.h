// Searchlight baseline (Bakht, Trower & Kravets, MobiCom'12 — ref [19]).
// Deterministic slotted discovery: each node is awake in an anchor slot
// (slot 0 of its period) and in one probe slot that sequentially scans
// 1..ceil(t/2) across periods. Discovery happens when two nodes' awake slots
// coincide. The period t is set by the power budget: 2 awake slots per
// period of t slots gives duty cycle 2/t, so t = 2·L_effective/ρ.
//
// The paper compares against Searchlight via (a) the pairwise worst-case
// discovery latency (Fig. 5's 125 s line: slot 50 ms, beacon 1 ms, the §VII
// power setting) and (b) a groupput upper bound: pairwise throughput
// (rendezvous rate × payload per rendezvous) multiplied by (N-1) as if all
// N-1 nodes received every transmission (§VII-C).
#ifndef ECONCAST_BASELINES_SEARCHLIGHT_H
#define ECONCAST_BASELINES_SEARCHLIGHT_H

#include <cstdint>

namespace econcast::baselines {

struct SearchlightConfig {
  double budget = 10e-6;         // ρ (same unit as listen_power)
  double listen_power = 500e-6;  // awake-slot draw (listen ≈ transmit here)
  double slot_seconds = 0.050;   // paper footnote 7
  double beacon_seconds = 0.001; // beacon (packet) length, also the unit
                                 // packet length for throughput normalization
};

struct SearchlightResult {
  std::int64_t period_slots = 0;     // t
  double duty_cycle = 0.0;           // 2/t
  double worst_latency_seconds = 0.0;
  double mean_latency_seconds = 0.0;
  double rendezvous_per_second = 0.0;  // steady-state overlap rate (pairwise)
  /// Pairwise throughput in fraction-of-time units (payload per rendezvous =
  /// slot - 2 beacons, divided by mean rendezvous interval).
  double pairwise_throughput = 0.0;

  /// The paper's groupput upper bound for an N-clique: (N-1) x pairwise.
  double groupput_upper_bound(std::size_t n) const noexcept {
    return n < 2 ? 0.0 : pairwise_throughput * static_cast<double>(n - 1);
  }
};

/// Exhaustive slotted analysis: simulates a node pair over every integer
/// phase offset d in [0, t) for full probe-pattern hyper-periods and reports
/// worst/mean first-discovery latency and the steady-state rendezvous rate.
SearchlightResult analyze_searchlight(const SearchlightConfig& config);

}  // namespace econcast::baselines

#endif  // ECONCAST_BASELINES_SEARCHLIGHT_H
