// Panda baseline (Margolies et al., JSAC'16 — ref [14] of the paper):
// neighbor discovery on a power-harvesting budget. Homogeneous nodes cycle
// sleep -> listen -> {receive | transmit}:
//   * sleep for Exp(λ);
//   * on waking, listen for a window of w packet-times;
//   * if a packet *starts* during the window, receive it and sleep;
//   * if the window expires with the channel idle, transmit one unit packet
//     and sleep; if it expires mid-packet (the node woke into an ongoing
//     transmission it cannot decode), abort and sleep.
// Panda needs to know N and ρ to tune λ (and w) — one of the coordination
// requirements EconCast removes (§V-B).
//
// The analytical model is a renewal-reward approximation (documented in
// DESIGN.md): cycles of E[C] = 1/(Nλ) + w + 1 with (N-1)(1-e^{-λw}) expected
// receptions, and per-node energy
//   E = (1/N)(wL + X) + ((N-1)/N)[(1-e^{-λw})(w/2+1)L + e^{-λw}(1-e^{-λ})wL].
// We optimize both λ and w under P = E/E[C] <= ρ, which upper-bounds the
// published protocol (the paper itself compares against Panda's *analytical*
// throughput, §VIII-D). An event-driven simulator cross-checks the model.
#ifndef ECONCAST_BASELINES_PANDA_H
#define ECONCAST_BASELINES_PANDA_H

#include <cstdint>
#include <vector>

namespace econcast::baselines {

struct PandaDesign {
  double wake_rate = 0.0;       // λ (per packet-time)
  double listen_window = 0.0;   // w (packet-times)
  double throughput = 0.0;      // analytical groupput at (λ, w)
  double power = 0.0;           // analytical per-node power at (λ, w)
};

/// Analytical groupput and per-node power for given (λ, w).
double panda_throughput(std::size_t n, double wake_rate, double listen_window);
double panda_power(std::size_t n, double wake_rate, double listen_window,
                   double listen_power, double transmit_power);

/// Maximizes the analytical groupput over (λ, w) subject to power <= ρ.
PandaDesign optimize_panda(std::size_t n, double budget, double listen_power,
                           double transmit_power);

/// Full per-node accounting of one event-driven Panda run — the payload the
/// protocol::Protocol adapter maps onto the unified SimResult.
struct PandaSimDetail {
  double duration = 0.0;
  std::uint64_t packets = 0;      // transmissions
  std::uint64_t receptions = 0;   // (packet, receiver) deliveries
  std::uint64_t packets_received_any = 0;  // packets with >= 1 receiver
  std::vector<double> listen_time;    // per node
  std::vector<double> transmit_time;  // per node
};

/// Event-driven simulation of the protocol at fixed (λ, w). Deterministic
/// per seed (project Rng); powers are not needed during the run — energy is
/// an after-the-fact integral of the per-node state times.
PandaSimDetail simulate_panda_detailed(std::size_t n, double wake_rate,
                                       double listen_window, double duration,
                                       std::uint64_t seed);

struct PandaSimResult {
  double groupput = 0.0;
  double avg_power = 0.0;       // mean over nodes
  std::uint64_t packets = 0;
  std::uint64_t receptions = 0;
};

/// Deprecated shim over simulate_panda_detailed (same RNG stream, so results
/// are bit-identical to the seed version). Prefer the "panda" entry of
/// protocol::ProtocolRegistry for new code.
PandaSimResult simulate_panda(std::size_t n, double wake_rate,
                              double listen_window, double listen_power,
                              double transmit_power, double duration,
                              std::uint64_t seed);

}  // namespace econcast::baselines

#endif  // ECONCAST_BASELINES_PANDA_H
