#include "baselines/panda.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <vector>

#include "util/random.h"

namespace econcast::baselines {

double panda_throughput(std::size_t n, double wake_rate,
                        double listen_window) {
  if (n < 2 || wake_rate <= 0.0 || listen_window <= 0.0) return 0.0;
  const double nd = static_cast<double>(n);
  const double cycle = 1.0 / (nd * wake_rate) + listen_window + 1.0;
  const double receptions =
      (nd - 1.0) * (1.0 - std::exp(-wake_rate * listen_window));
  return receptions / cycle;
}

double panda_power(std::size_t n, double wake_rate, double listen_window,
                   double listen_power, double transmit_power) {
  const double nd = static_cast<double>(n);
  const double w = listen_window;
  const double cycle = 1.0 / (nd * wake_rate) + w + 1.0;
  const double p_join = 1.0 - std::exp(-wake_rate * w);
  const double p_mid = std::exp(-wake_rate * w) *
                       (1.0 - std::exp(-wake_rate));  // wakes into the packet
  const double energy =
      (w * listen_power + transmit_power) / nd +
      (nd - 1.0) / nd *
          (p_join * (0.5 * w + 1.0) * listen_power + p_mid * w * listen_power);
  return energy / cycle;
}

PandaDesign optimize_panda(std::size_t n, double budget, double listen_power,
                           double transmit_power) {
  if (n < 2) throw std::invalid_argument("panda: need N >= 2");
  if (!(budget > 0.0) || !(listen_power > 0.0) || !(transmit_power > 0.0))
    throw std::invalid_argument("panda: positive parameters required");

  // Power is increasing in λ (shorter cycles, more joiners), so the maximal
  // budget-feasible λ for a window w is found by bisection.
  auto lambda_for = [&](double w) {
    double lo = 0.0, hi = 1.0;
    if (panda_power(n, hi, w, listen_power, transmit_power) < budget) {
      // Even aggressive waking stays within budget: cap at hi (activity is
      // then limited by the protocol, not the budget).
      return hi;
    }
    for (int it = 0; it < 200; ++it) {
      const double mid = 0.5 * (lo + hi);
      (panda_power(n, mid, w, listen_power, transmit_power) <= budget ? lo
                                                                      : hi) =
          mid;
    }
    return lo;
  };

  PandaDesign best;
  // Window sweep on a log grid with golden refinement around the best point.
  auto value_at = [&](double w) {
    const double lambda = lambda_for(w);
    return panda_throughput(n, lambda, w);
  };
  double best_w = 0.0;
  for (double lw = -3.0; lw <= 3.0; lw += 0.01) {
    const double w = std::pow(10.0, lw);
    const double v = value_at(w);
    if (v > best.throughput) {
      best.throughput = v;
      best_w = w;
    }
  }
  double lo = best_w / std::pow(10.0, 0.01), hi = best_w * std::pow(10.0, 0.01);
  constexpr double kInvPhi = 0.6180339887498949;
  double a = hi - (hi - lo) * kInvPhi, b = lo + (hi - lo) * kInvPhi;
  double fa = value_at(a), fb = value_at(b);
  for (int it = 0; it < 120; ++it) {
    if (fa < fb) {
      lo = a;
      a = b;
      fa = fb;
      b = lo + (hi - lo) * kInvPhi;
      fb = value_at(b);
    } else {
      hi = b;
      b = a;
      fb = fa;
      a = hi - (hi - lo) * kInvPhi;
      fa = value_at(a);
    }
  }
  best.listen_window = 0.5 * (lo + hi);
  best.wake_rate = lambda_for(best.listen_window);
  best.throughput = panda_throughput(n, best.wake_rate, best.listen_window);
  best.power = panda_power(n, best.wake_rate, best.listen_window, listen_power,
                           transmit_power);
  return best;
}

namespace {

enum class PandaEvent : std::uint8_t { kWake, kWindowExpire, kPacketEnd };

struct Ev {
  double time;
  std::uint64_t seq;
  PandaEvent kind;
  std::uint32_t node;
  std::uint64_t stamp;
  bool operator<(const Ev& o) const {
    if (time != o.time) return time > o.time;  // min-heap via operator<
    return seq > o.seq;
  }
};

}  // namespace

PandaSimDetail simulate_panda_detailed(std::size_t n, double wake_rate,
                                       double listen_window, double duration,
                                       std::uint64_t seed) {
  if (n < 2 || wake_rate <= 0.0 || listen_window <= 0.0)
    throw std::invalid_argument("panda sim: bad parameters");
  util::Rng rng(seed);
  enum class S : std::uint8_t { kSleep, kListen, kTransmit };
  std::vector<S> state(n, S::kSleep);
  std::vector<std::uint64_t> stamp(n, 0);
  std::vector<std::uint8_t> locked(n, 0);  // receiving the current packet
  std::vector<double> state_since(n, 0.0);
  std::vector<double> listen_time(n, 0.0), transmit_time(n, 0.0);
  int transmitter = -1;

  std::priority_queue<Ev> q;
  std::uint64_t seq = 0;
  auto push = [&](double t, PandaEvent k, std::size_t i, std::uint64_t st) {
    q.push(Ev{t, seq++, k, static_cast<std::uint32_t>(i), st});
  };
  for (std::size_t i = 0; i < n; ++i)
    push(rng.exponential(wake_rate), PandaEvent::kWake, i, stamp[i]);

  PandaSimDetail result;
  result.duration = duration;
  double now = 0.0;
  auto set_state = [&](std::size_t i, S next) {
    const double dt = now - state_since[i];
    if (state[i] == S::kListen) listen_time[i] += dt;
    if (state[i] == S::kTransmit) transmit_time[i] += dt;
    state[i] = next;
    state_since[i] = now;
  };

  while (!q.empty() && q.top().time <= duration) {
    const Ev e = q.top();
    q.pop();
    now = e.time;
    const std::size_t i = e.node;
    switch (e.kind) {
      case PandaEvent::kWake:
        if (e.stamp != stamp[i]) break;
        set_state(i, S::kListen);
        push(now + listen_window, PandaEvent::kWindowExpire, i, stamp[i]);
        break;
      case PandaEvent::kWindowExpire:
        if (e.stamp != stamp[i] || state[i] != S::kListen) break;
        if (transmitter >= 0) {
          // Woke into an ongoing packet it cannot decode: abort and sleep.
          set_state(i, S::kSleep);
          ++stamp[i];
          push(now + rng.exponential(wake_rate), PandaEvent::kWake, i,
               stamp[i]);
        } else {
          set_state(i, S::kTransmit);
          transmitter = static_cast<int>(i);
          ++result.packets;
          for (std::size_t j = 0; j < n; ++j)
            if (state[j] == S::kListen) locked[j] = 1;  // hears packet start
          push(now + 1.0, PandaEvent::kPacketEnd, i, 0);
        }
        break;
      case PandaEvent::kPacketEnd: {
        transmitter = -1;
        bool delivered = false;
        for (std::size_t j = 0; j < n; ++j) {
          if (locked[j]) {
            locked[j] = 0;
            ++result.receptions;
            delivered = true;
            set_state(j, S::kSleep);
            ++stamp[j];
            push(now + rng.exponential(wake_rate), PandaEvent::kWake, j,
                 stamp[j]);
          }
        }
        if (delivered) ++result.packets_received_any;
        set_state(i, S::kSleep);
        ++stamp[i];
        push(now + rng.exponential(wake_rate), PandaEvent::kWake, i, stamp[i]);
        break;
      }
    }
  }
  now = duration;
  for (std::size_t i = 0; i < n; ++i) set_state(i, state[i]);  // close interval
  result.listen_time = std::move(listen_time);
  result.transmit_time = std::move(transmit_time);
  return result;
}

PandaSimResult simulate_panda(std::size_t n, double wake_rate,
                              double listen_window, double listen_power,
                              double transmit_power, double duration,
                              std::uint64_t seed) {
  const PandaSimDetail d =
      simulate_panda_detailed(n, wake_rate, listen_window, duration, seed);
  PandaSimResult result;
  result.packets = d.packets;
  result.receptions = d.receptions;
  double energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    energy +=
        d.listen_time[i] * listen_power + d.transmit_time[i] * transmit_power;
  }
  result.groupput = static_cast<double>(d.receptions) / duration;
  result.avg_power = energy / (static_cast<double>(n) * duration);
  return result;
}

}  // namespace econcast::baselines
