// Birthday protocol baseline (McGlynn & Borbash, MobiHoc'01 — ref [18] of the
// paper). Slotted: in every slot a node independently transmits w.p. p_x,
// listens w.p. p_l, and sleeps otherwise. We derive the throughput in the
// paper's units (packet-times of delivered data per packet-time):
//
//   groupput(p_x, p_l) = N (N-1) p_x p_l (1-p_x)^(N-2)
//     — a slot succeeds when exactly one node transmits; each of the other
//       N-1 nodes (conditioned on not transmitting) listens w.p. p_l/(1-p_x).
//   anyput(p_x, p_l)  = N p_x (1-p_x)^(N-1) [1 - (1 - p_l/(1-p_x))^(N-1)]
//
// under the per-slot power budget p_l L + p_x X <= ρ and p_l + p_x <= 1.
// Birthday (like Panda, unlike EconCast) requires homogeneous nodes and
// knowledge of N to tune (p_x, p_l).
#ifndef ECONCAST_BASELINES_BIRTHDAY_H
#define ECONCAST_BASELINES_BIRTHDAY_H

#include <cstdint>
#include <vector>

#include "model/node_params.h"
#include "model/state_space.h"

namespace econcast::baselines {

struct BirthdayDesign {
  double p_transmit = 0.0;
  double p_listen = 0.0;
  double throughput = 0.0;  // in the selected mode's units
};

/// Throughput of a given design (no optimization).
double birthday_throughput(std::size_t n, double p_transmit, double p_listen,
                           model::Mode mode);

/// Budget-optimal design: maximizes throughput subject to
/// p_l L + p_x X <= ρ and p_l + p_x <= 1 (1-D search along the active budget
/// line; the objective is unimodal in p_x).
BirthdayDesign optimize_birthday(std::size_t n, double budget,
                                 double listen_power, double transmit_power,
                                 model::Mode mode);

/// Full accounting of one slotted Birthday run — the payload the
/// protocol::Protocol adapter maps onto the unified SimResult. Both
/// throughput modes are tallied from the same slot draws, so either shim
/// view is bit-identical to the seed version's single-mode run.
struct BirthdaySimDetail {
  std::uint64_t slots = 0;
  double groupput_credit = 0.0;  // Σ listeners over singleton-transmitter slots
  double anyput_credit = 0.0;    // singleton slots with >= 1 listener
  std::uint64_t packets = 0;     // singleton-transmitter slots
  std::vector<std::uint64_t> listen_slots;    // per node
  std::vector<std::uint64_t> transmit_slots;  // per node
};

/// Monte-Carlo slotted simulation of the protocol (cross-check of the closed
/// form). One uniform draw per node per slot, in node order.
BirthdaySimDetail simulate_birthday_detailed(std::size_t n, double p_transmit,
                                             double p_listen,
                                             std::uint64_t slots,
                                             std::uint64_t seed);

/// Deprecated shim over simulate_birthday_detailed (same RNG stream, bit-
/// identical to the seed version). Returns measured throughput over `slots`
/// slots. Prefer the "birthday" entry of protocol::ProtocolRegistry.
double simulate_birthday(std::size_t n, double p_transmit, double p_listen,
                         model::Mode mode, std::uint64_t slots,
                         std::uint64_t seed);

}  // namespace econcast::baselines

#endif  // ECONCAST_BASELINES_BIRTHDAY_H
