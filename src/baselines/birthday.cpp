#include "baselines/birthday.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/random.h"

namespace econcast::baselines {

double birthday_throughput(std::size_t n, double p_transmit, double p_listen,
                           model::Mode mode) {
  if (n < 2) return 0.0;
  const double nd = static_cast<double>(n);
  const double px = p_transmit, pl = p_listen;
  if (px <= 0.0 || pl <= 0.0) return 0.0;
  if (mode == model::Mode::kGroupput)
    return nd * (nd - 1.0) * px * pl * std::pow(1.0 - px, nd - 2.0);
  const double listen_given_quiet = std::min(1.0, pl / (1.0 - px));
  return nd * px * std::pow(1.0 - px, nd - 1.0) *
         (1.0 - std::pow(1.0 - listen_given_quiet, nd - 1.0));
}

BirthdayDesign optimize_birthday(std::size_t n, double budget,
                                 double listen_power, double transmit_power,
                                 model::Mode mode) {
  if (!(budget > 0.0) || !(listen_power > 0.0) || !(transmit_power > 0.0))
    throw std::invalid_argument("birthday: positive parameters required");
  // Throughput increases in both p_x and p_l at the optimum, so the budget
  // constraint is active: p_l = (ρ - p_x X) / L. Scan p_x, then refine by
  // golden-section around the best grid point.
  auto value = [&](double px) {
    if (px <= 0.0) return 0.0;
    double pl = (budget - px * transmit_power) / listen_power;
    if (pl <= 0.0) return 0.0;
    if (px + pl > 1.0) pl = 1.0 - px;  // awake-time cap
    if (pl <= 0.0) return 0.0;
    return birthday_throughput(n, px, pl, mode);
  };
  const double px_max = std::min(1.0, budget / transmit_power);
  double best_px = 0.0, best_val = 0.0;
  constexpr int kGrid = 4000;
  for (int k = 1; k < kGrid; ++k) {
    const double px = px_max * static_cast<double>(k) / kGrid;
    const double v = value(px);
    if (v > best_val) {
      best_val = v;
      best_px = px;
    }
  }
  double lo = std::max(0.0, best_px - px_max / kGrid);
  double hi = std::min(px_max, best_px + px_max / kGrid);
  constexpr double kInvPhi = 0.6180339887498949;
  double a = hi - (hi - lo) * kInvPhi, b = lo + (hi - lo) * kInvPhi;
  double fa = value(a), fb = value(b);
  for (int it = 0; it < 200 && hi - lo > 1e-14; ++it) {
    if (fa < fb) {
      lo = a;
      a = b;
      fa = fb;
      b = lo + (hi - lo) * kInvPhi;
      fb = value(b);
    } else {
      hi = b;
      b = a;
      fb = fa;
      a = hi - (hi - lo) * kInvPhi;
      fa = value(a);
    }
  }
  BirthdayDesign design;
  design.p_transmit = 0.5 * (lo + hi);
  design.p_listen = std::min(
      1.0 - design.p_transmit,
      (budget - design.p_transmit * transmit_power) / listen_power);
  design.throughput =
      birthday_throughput(n, design.p_transmit, design.p_listen, mode);
  return design;
}

BirthdaySimDetail simulate_birthday_detailed(std::size_t n, double p_transmit,
                                             double p_listen,
                                             std::uint64_t slots,
                                             std::uint64_t seed) {
  util::Rng rng(seed);
  BirthdaySimDetail detail;
  detail.slots = slots;
  detail.listen_slots.assign(n, 0);
  detail.transmit_slots.assign(n, 0);
  for (std::uint64_t s = 0; s < slots; ++s) {
    int transmitters = 0;
    int listeners = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double u = rng.uniform();
      if (u < p_transmit) {
        ++transmitters;
        ++detail.transmit_slots[i];
      } else if (u < p_transmit + p_listen) {
        ++listeners;
        ++detail.listen_slots[i];
      }
    }
    if (transmitters == 1) {
      ++detail.packets;
      detail.groupput_credit += static_cast<double>(listeners);
      detail.anyput_credit += listeners > 0 ? 1.0 : 0.0;
    }
  }
  return detail;
}

double simulate_birthday(std::size_t n, double p_transmit, double p_listen,
                         model::Mode mode, std::uint64_t slots,
                         std::uint64_t seed) {
  const BirthdaySimDetail d =
      simulate_birthday_detailed(n, p_transmit, p_listen, slots, seed);
  const double credit =
      mode == model::Mode::kGroupput ? d.groupput_credit : d.anyput_credit;
  return credit / static_cast<double>(slots);
}

}  // namespace econcast::baselines
