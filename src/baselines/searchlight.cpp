#include "baselines/searchlight.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace econcast::baselines {

namespace {

// Searchlight-S schedule: anchor at local slot 0 plus a striped probe that
// visits the odd positions 1, 3, 5, ... <= ceil(t/2), one per period. Each
// probe slot overflows slightly into the next slot, so a probe at position p
// also discovers a peer whose awake slot sits at p+1 (the striping trick that
// halves the search span; Searchlight §4.3).
struct Schedule {
  std::int64_t t;           // period in slots
  std::int64_t probe_span;  // number of striped probe positions

  explicit Schedule(std::int64_t period)
      : t(period), probe_span((period / 2 + 1 + 1) / 2) {}

  std::int64_t probe_position(std::int64_t period_index) const {
    return 1 + 2 * (period_index % probe_span);
  }

  // Awake during the full local slot (anchor or probe body).
  bool awake(std::int64_t global_slot, std::int64_t start) const {
    const std::int64_t local = global_slot - start;
    if (local < 0) return false;
    const std::int64_t in_period = local % t;
    if (in_period == 0) return true;
    return in_period == probe_position(local / t);
  }

  // Probe overflow: listening during the head of the *next* slot.
  bool probing_overflow(std::int64_t global_slot, std::int64_t start) const {
    const std::int64_t local = global_slot - start;
    if (local < 1) return false;
    const std::int64_t prev = local - 1;
    return prev % t == probe_position(prev / t);
  }
};

}  // namespace

SearchlightResult analyze_searchlight(const SearchlightConfig& config) {
  if (!(config.budget > 0.0) || !(config.listen_power > config.budget))
    throw std::invalid_argument(
        "searchlight: need 0 < budget < listen_power (duty cycling)");
  SearchlightResult out;
  // Two awake slots per period at listen-level draw: duty cycle 2/t = ρ/L.
  const auto t = static_cast<std::int64_t>(
      std::ceil(2.0 * config.listen_power / config.budget));
  out.period_slots = t;
  out.duty_cycle = 2.0 / static_cast<double>(t);

  const Schedule sched(t);
  const std::int64_t hyper = t * sched.probe_span;  // full probe pattern
  const std::int64_t horizon = 2 * hyper;

  std::int64_t worst_first = 0;
  double sum_first = 0.0;
  std::int64_t full_overlaps = 0;  // slot-long rendezvous (data exchange)
  for (std::int64_t d = 0; d < t; ++d) {
    std::int64_t first = -1;
    for (std::int64_t s = d; s < d + horizon; ++s) {
      const bool a_awake = sched.awake(s, 0);
      const bool b_awake = sched.awake(s, d);
      const bool discover =
          (a_awake && b_awake) ||
          (b_awake && sched.probing_overflow(s, 0)) ||
          (a_awake && sched.probing_overflow(s, d));
      if (a_awake && b_awake) ++full_overlaps;
      if (discover && first < 0) first = s - d;
    }
    if (first < 0)
      throw std::logic_error("searchlight: offset never discovered");
    worst_first = std::max(worst_first, first + 1);  // slot inclusive
    sum_first += static_cast<double>(first + 1);
  }
  const double slot = config.slot_seconds;
  out.worst_latency_seconds = static_cast<double>(worst_first) * slot;
  out.mean_latency_seconds = sum_first / static_cast<double>(t) * slot;
  out.rendezvous_per_second =
      static_cast<double>(full_overlaps) /
      (static_cast<double>(t) * static_cast<double>(horizon) * slot);
  const double payload_fraction =
      std::max(0.0, config.slot_seconds - 2.0 * config.beacon_seconds);
  out.pairwise_throughput = out.rendezvous_per_second * payload_fraction;
  return out;
}

}  // namespace econcast::baselines
