// Constructive side of Lemma 1: an oracle that knows (α*, β*) can realize the
// oracle groupput with a fixed-period slotted schedule, possibly after a
// one-time energy-accumulation interval. We quantize the LP solution onto a
// slot grid (rounding down, so every constraint is preserved), assign
// transmit slots in order, let each listener pick others' transmit slots, and
// compute the accumulation interval from the worst intra-period energy
// deficit (Appendix A).
#ifndef ECONCAST_ORACLE_PERIODIC_SCHEDULE_H
#define ECONCAST_ORACLE_PERIODIC_SCHEDULE_H

#include <cstdint>
#include <vector>

#include "model/node_params.h"
#include "oracle/clique_oracle.h"

namespace econcast::oracle {

enum class SlotAction : std::uint8_t { kSleep, kListen, kTransmit };

/// A periodic slotted schedule for a clique. actions[i][s] is node i's action
/// in slot s of the period.
struct PeriodicSchedule {
  std::int64_t period = 0;  // slots per period
  std::vector<std::vector<SlotAction>> actions;

  /// Groupput of the schedule: (Σ_i listen slots) / period. Every scheduled
  /// listen slot coincides with exactly one other node's transmit slot.
  double groupput() const noexcept;

  /// Per-node energy-accumulation interval (in slots) required before the
  /// periodic schedule can start, per Appendix A: the worst prefix deficit of
  /// (spent - harvested) within one period, divided by the harvest rate.
  double accumulation_slots(const model::NodeSet& nodes, std::size_t i) const;
};

/// Builds the schedule from an oracle solution. `grid` is the quantization
/// denominator (the period, default 1000 slots): fractions are floored onto
/// multiples of 1/grid, which loses at most N/grid of throughput while
/// keeping (9)-(12) satisfied.
PeriodicSchedule build_periodic_schedule(const model::NodeSet& nodes,
                                         const OracleSolution& solution,
                                         std::int64_t grid = 1000);

/// Result of verifying a schedule against the model constraints.
struct ScheduleCheck {
  bool collision_free = true;      // at most one transmitter per slot
  bool listeners_covered = true;   // every listen slot has a transmitter
  bool budget_respected = true;    // per-period energy within ρ_i * period
  double groupput = 0.0;
  bool ok() const noexcept {
    return collision_free && listeners_covered && budget_respected;
  }
};

ScheduleCheck verify_schedule(const model::NodeSet& nodes,
                              const PeriodicSchedule& schedule);

}  // namespace econcast::oracle

#endif  // ECONCAST_ORACLE_PERIODIC_SCHEDULE_H
