#include "oracle/nonclique_oracle.h"

#include <cmath>
#include <stdexcept>

#include "lp/simplex.h"

namespace econcast::oracle {

namespace {

OracleSolution solve_bound(const model::NodeSet& nodes,
                           const model::Topology& topology,
                           bool include_single_transmitter_constraint) {
  const std::size_t n = nodes.size();
  lp::Problem p(2 * n);
  for (std::size_t i = 0; i < n; ++i) p.set_objective(i, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    p.add_constraint(
        {{i, nodes[i].listen_power}, {n + i, nodes[i].transmit_power}},
        lp::Relation::kLessEq, nodes[i].budget);
    p.add_constraint({{i, 1.0}, {n + i, 1.0}}, lp::Relation::kLessEq, 1.0);
    // Neighborhood form of (12): node i hears only its neighbors.
    std::vector<std::pair<std::size_t, double>> terms{{i, 1.0}};
    for (const std::size_t j : topology.neighbors(i))
      terms.emplace_back(n + j, -1.0);
    p.add_constraint(std::move(terms), lp::Relation::kLessEq, 0.0);
  }
  if (include_single_transmitter_constraint) {
    std::vector<std::pair<std::size_t, double>> sum_beta;
    for (std::size_t i = 0; i < n; ++i) sum_beta.emplace_back(n + i, 1.0);
    p.add_constraint(std::move(sum_beta), lp::Relation::kLessEq, 1.0);
  }
  const lp::Solution sol = lp::solve(p);
  if (sol.status != lp::SolveStatus::kOptimal)
    throw std::runtime_error("non-clique oracle LP failed");
  OracleSolution out;
  out.throughput = sol.objective;
  out.alpha.assign(sol.x.begin(), sol.x.begin() + static_cast<long>(n));
  out.beta.assign(sol.x.begin() + static_cast<long>(n),
                  sol.x.begin() + static_cast<long>(2 * n));
  return out;
}

}  // namespace

bool NoncliqueBounds::tight(double tol) const noexcept {
  const double scale = std::max(upper.throughput, 1e-300);
  return (upper.throughput - lower.throughput) / scale <= tol;
}

NoncliqueBounds nonclique_groupput(const model::NodeSet& nodes,
                                   const model::Topology& topology) {
  model::validate(nodes);
  if (nodes.size() != topology.size())
    throw std::invalid_argument("nodes/topology size mismatch");
  NoncliqueBounds out;
  out.lower = solve_bound(nodes, topology, /*include_single_tx=*/true);
  out.upper = solve_bound(nodes, topology, /*include_single_tx=*/false);
  return out;
}

}  // namespace econcast::oracle
