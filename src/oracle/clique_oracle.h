// Oracle (maximum achievable) throughput in a clique, §IV-A/B: the paper's
// polynomial-size reformulations (P2) for groupput and (P3) for anyput of the
// exponential LP (P1), plus the homogeneous closed forms of Appendix B.
#ifndef ECONCAST_ORACLE_CLIQUE_ORACLE_H
#define ECONCAST_ORACLE_CLIQUE_ORACLE_H

#include <vector>

#include "model/node_params.h"
#include "model/state_space.h"

namespace econcast::oracle {

/// Solution of an oracle problem: the optimal value and the per-node listen
/// and transmit time fractions that achieve it.
struct OracleSolution {
  double throughput = 0.0;
  std::vector<double> alpha;  // listen fraction per node
  std::vector<double> beta;   // transmit fraction per node
};

/// Oracle groupput T*_g by solving (P2):
///   max Σ α_i  s.t. (9) α_i L_i + β_i X_i <= ρ_i, (10) α_i + β_i <= 1,
///                   (11) Σ β_i <= 1, (12) α_i <= Σ_{j≠i} β_j.
/// Throws std::runtime_error if the LP solver fails (cannot happen for valid
/// inputs: the zero solution is always feasible).
OracleSolution groupput(const model::NodeSet& nodes);

/// Oracle anyput T*_a by solving (P3) with flow variables χ_{i,j}:
///   max Σ β_i  s.t. (9)-(11), (14) β_i <= Σ_{j≠i} χ_{i,j},
///                   (15) α_j = Σ_{i≠j} χ_{i,j}.
OracleSolution anyput(const model::NodeSet& nodes);

/// Dispatch on mode.
OracleSolution solve(const model::NodeSet& nodes, model::Mode mode);

/// Closed forms for homogeneous, sufficiently energy-constrained networks
/// (§IV-A/B): groupput β* = ρ/(X + (N-1)L), α* = (N-1)β*, T*_g = Nα*;
/// anyput α* = β* = ρ/(X+L), T*_a = Nβ*. Valid when the power constraint
/// dominates the awake-time constraint (10); callers in that regime can skip
/// the LP. Throws std::domain_error outside that regime.
OracleSolution homogeneous_groupput_closed_form(std::size_t n, double budget,
                                                double listen_power,
                                                double transmit_power);
OracleSolution homogeneous_anyput_closed_form(std::size_t n, double budget,
                                              double listen_power,
                                              double transmit_power);

/// Oracle throughput with no energy constraint (§III-C): N-1 for groupput,
/// 1 for anyput.
double unconstrained_oracle(std::size_t n, model::Mode mode) noexcept;

}  // namespace econcast::oracle

#endif  // ECONCAST_ORACLE_CLIQUE_ORACLE_H
