// Non-clique oracle groupput bounds of §IV-C. Exact maximum groupput is hard
// outside cliques (spatial reuse + hidden collisions), so the paper bounds it:
//   lower bound: (P2) with (12) replaced by the neighborhood form
//                α_i <= Σ_{j in N(i)} β_j, keeping (11) (a clique-style,
//                reuse-free schedule is always realizable);
//   upper bound: same neighborhood constraint but (11) removed (allowing
//                arbitrary concurrent transmissions).
// When both coincide (they do for the paper's grids, Fig. 6) the exact
// T*_nc is known.
#ifndef ECONCAST_ORACLE_NONCLIQUE_ORACLE_H
#define ECONCAST_ORACLE_NONCLIQUE_ORACLE_H

#include "model/network.h"
#include "model/node_params.h"
#include "oracle/clique_oracle.h"

namespace econcast::oracle {

struct NoncliqueBounds {
  OracleSolution lower;   // T*_nc lower bound (achievable)
  OracleSolution upper;   // T*_nc upper bound
  /// True when upper and lower agree within `tol` (relative), i.e. the exact
  /// non-clique oracle groupput is pinned down.
  bool tight(double tol = 1e-6) const noexcept;
};

/// Computes both bounds for groupput on an arbitrary topology. `nodes` and
/// `topology` must have the same size.
NoncliqueBounds nonclique_groupput(const model::NodeSet& nodes,
                                   const model::Topology& topology);

}  // namespace econcast::oracle

#endif  // ECONCAST_ORACLE_NONCLIQUE_ORACLE_H
