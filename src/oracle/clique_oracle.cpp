#include "oracle/clique_oracle.h"

#include <stdexcept>
#include <string>

#include "lp/simplex.h"

namespace econcast::oracle {

namespace {

// Shared constraints (9)-(11) over variables [α_0..α_{N-1}, β_0..β_{N-1}].
void add_common_constraints(lp::Problem& p, const model::NodeSet& nodes) {
  const std::size_t n = nodes.size();
  for (std::size_t i = 0; i < n; ++i) {
    // (9) power budget.
    p.add_constraint({{i, nodes[i].listen_power}, {n + i, nodes[i].transmit_power}},
                     lp::Relation::kLessEq, nodes[i].budget);
    // (10) a node occupies one state at a time.
    p.add_constraint({{i, 1.0}, {n + i, 1.0}}, lp::Relation::kLessEq, 1.0);
  }
  // (11) collision-free clique: at most one transmitter at any time.
  std::vector<std::pair<std::size_t, double>> sum_beta;
  for (std::size_t i = 0; i < n; ++i) sum_beta.emplace_back(n + i, 1.0);
  p.add_constraint(std::move(sum_beta), lp::Relation::kLessEq, 1.0);
}

OracleSolution extract(const lp::Solution& sol, std::size_t n,
                       const char* which) {
  if (sol.status != lp::SolveStatus::kOptimal)
    throw std::runtime_error(std::string("oracle LP failed (") + which +
                             "): " + lp::to_string(sol.status));
  OracleSolution out;
  out.throughput = sol.objective;
  out.alpha.assign(sol.x.begin(), sol.x.begin() + static_cast<long>(n));
  out.beta.assign(sol.x.begin() + static_cast<long>(n),
                  sol.x.begin() + static_cast<long>(2 * n));
  return out;
}

}  // namespace

OracleSolution groupput(const model::NodeSet& nodes) {
  model::validate(nodes);
  const std::size_t n = nodes.size();
  lp::Problem p(2 * n);
  for (std::size_t i = 0; i < n; ++i) p.set_objective(i, 1.0);
  add_common_constraints(p, nodes);
  // (12) node i can usefully listen only while some other node transmits.
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::pair<std::size_t, double>> terms{{i, 1.0}};
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) terms.emplace_back(n + j, -1.0);
    p.add_constraint(std::move(terms), lp::Relation::kLessEq, 0.0);
  }
  return extract(lp::solve(p), n, "P2/groupput");
}

OracleSolution anyput(const model::NodeSet& nodes) {
  model::validate(nodes);
  const std::size_t n = nodes.size();
  if (n < 2) {
    // A single node has nobody to deliver to.
    OracleSolution out;
    out.alpha.assign(n, 0.0);
    out.beta.assign(n, 0.0);
    return out;
  }
  // Variables: α (n), β (n), then χ_{i,j} for i != j in row-major order
  // with the diagonal skipped.
  const std::size_t chi_base = 2 * n;
  auto chi = [n, chi_base](std::size_t i, std::size_t j) {
    const std::size_t col = j > i ? j - 1 : j;  // skip the diagonal
    return chi_base + i * (n - 1) + col;
  };
  lp::Problem p(2 * n + n * (n - 1));
  for (std::size_t i = 0; i < n; ++i) p.set_objective(n + i, 1.0);
  add_common_constraints(p, nodes);
  for (std::size_t i = 0; i < n; ++i) {
    // (14) every transmission must be covered by at least one receiver.
    std::vector<std::pair<std::size_t, double>> cover{{n + i, 1.0}};
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) cover.emplace_back(chi(i, j), -1.0);
    p.add_constraint(std::move(cover), lp::Relation::kLessEq, 0.0);
    // (15) listen time of node i exactly covers the receptions it takes.
    std::vector<std::pair<std::size_t, double>> listen{{i, 1.0}};
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) listen.emplace_back(chi(j, i), -1.0);
    p.add_constraint(std::move(listen), lp::Relation::kEq, 0.0);
  }
  return extract(lp::solve(p), n, "P3/anyput");
}

OracleSolution solve(const model::NodeSet& nodes, model::Mode mode) {
  return mode == model::Mode::kGroupput ? groupput(nodes) : anyput(nodes);
}

namespace {
void check_constrained(double awake_fraction) {
  if (awake_fraction > 1.0)
    throw std::domain_error(
        "closed form requires a sufficiently energy-constrained network "
        "(awake fraction <= 1); use the LP instead");
}
}  // namespace

OracleSolution homogeneous_groupput_closed_form(std::size_t n, double budget,
                                                double listen_power,
                                                double transmit_power) {
  if (n < 2) throw std::invalid_argument("need N >= 2");
  const double nd = static_cast<double>(n);
  const double beta =
      budget / (transmit_power + (nd - 1.0) * listen_power);
  const double alpha = (nd - 1.0) * beta;
  check_constrained(alpha + beta);
  if (nd * beta > 1.0)
    throw std::domain_error("closed form requires Σβ <= 1; use the LP");
  OracleSolution out;
  out.throughput = nd * alpha;
  out.alpha.assign(n, alpha);
  out.beta.assign(n, beta);
  return out;
}

OracleSolution homogeneous_anyput_closed_form(std::size_t n, double budget,
                                              double listen_power,
                                              double transmit_power) {
  if (n < 2) throw std::invalid_argument("need N >= 2");
  const double nd = static_cast<double>(n);
  const double beta = budget / (transmit_power + listen_power);
  check_constrained(2.0 * beta);
  if (nd * beta > 1.0)
    throw std::domain_error("closed form requires Σβ <= 1; use the LP");
  OracleSolution out;
  out.throughput = nd * beta;
  out.alpha.assign(n, beta);
  out.beta.assign(n, beta);
  return out;
}

double unconstrained_oracle(std::size_t n, model::Mode mode) noexcept {
  if (n < 2) return 0.0;
  return mode == model::Mode::kGroupput ? static_cast<double>(n - 1) : 1.0;
}

}  // namespace econcast::oracle
