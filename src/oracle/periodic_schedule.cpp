#include "oracle/periodic_schedule.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace econcast::oracle {

double PeriodicSchedule::groupput() const noexcept {
  if (period <= 0) return 0.0;
  std::int64_t listens = 0;
  for (const auto& node_actions : actions)
    listens += std::count(node_actions.begin(), node_actions.end(),
                          SlotAction::kListen);
  return static_cast<double>(listens) / static_cast<double>(period);
}

double PeriodicSchedule::accumulation_slots(const model::NodeSet& nodes,
                                            std::size_t i) const {
  if (i >= actions.size()) throw std::out_of_range("node index");
  const auto& p = nodes.at(i);
  double energy = 0.0;        // running balance relative to start of period
  double worst_deficit = 0.0; // most negative balance seen
  for (std::int64_t s = 0; s < period; ++s) {
    double spend = 0.0;
    switch (actions[i][static_cast<std::size_t>(s)]) {
      case SlotAction::kListen:
        spend = p.listen_power;
        break;
      case SlotAction::kTransmit:
        spend = p.transmit_power;
        break;
      case SlotAction::kSleep:
        break;
    }
    energy += p.budget - spend;
    worst_deficit = std::min(worst_deficit, energy);
  }
  return -worst_deficit / p.budget;
}

PeriodicSchedule build_periodic_schedule(const model::NodeSet& nodes,
                                         const OracleSolution& solution,
                                         std::int64_t grid) {
  model::validate(nodes);
  const std::size_t n = nodes.size();
  if (solution.alpha.size() != n || solution.beta.size() != n)
    throw std::invalid_argument("solution size mismatch");
  if (grid < 1) throw std::invalid_argument("grid must be >= 1");

  const double gridf = static_cast<double>(grid);
  // Quantize downward; a tiny epsilon absorbs LP round-off just below an
  // integer (e.g. alpha*grid = 79.999999994 means 80 slots).
  auto floor_slots = [gridf](double fraction) {
    return static_cast<std::int64_t>(std::floor(fraction * gridf + 1e-9));
  };
  std::vector<std::int64_t> tx_slots(n), listen_slots(n);
  std::int64_t total_tx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    tx_slots[i] = std::max<std::int64_t>(0, floor_slots(solution.beta[i]));
    total_tx += tx_slots[i];
  }
  if (total_tx > grid)
    throw std::invalid_argument("solution violates (11): Σβ > 1");
  for (std::size_t i = 0; i < n; ++i) {
    listen_slots[i] = std::max<std::int64_t>(0, floor_slots(solution.alpha[i]));
    // Preserve (12) after quantization: cannot listen more than others send.
    listen_slots[i] = std::min(listen_slots[i], total_tx - tx_slots[i]);
  }

  PeriodicSchedule sched;
  sched.period = grid;
  sched.actions.assign(
      n, std::vector<SlotAction>(static_cast<std::size_t>(grid),
                                 SlotAction::kSleep));

  // Transmit slots packed in node order at the head of the period.
  std::vector<int> slot_owner(static_cast<std::size_t>(grid), -1);
  std::int64_t cursor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::int64_t k = 0; k < tx_slots[i]; ++k, ++cursor) {
      slot_owner[static_cast<std::size_t>(cursor)] = static_cast<int>(i);
      sched.actions[i][static_cast<std::size_t>(cursor)] =
          SlotAction::kTransmit;
    }
  }
  // Each listener takes the first listen_slots[i] transmit slots not its own.
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t needed = listen_slots[i];
    for (std::int64_t s = 0; s < total_tx && needed > 0; ++s) {
      const auto su = static_cast<std::size_t>(s);
      if (slot_owner[su] != static_cast<int>(i)) {
        sched.actions[i][su] = SlotAction::kListen;
        --needed;
      }
    }
  }
  return sched;
}

ScheduleCheck verify_schedule(const model::NodeSet& nodes,
                              const PeriodicSchedule& schedule) {
  ScheduleCheck check;
  const std::size_t n = schedule.actions.size();
  if (nodes.size() != n) throw std::invalid_argument("size mismatch");
  const auto period = static_cast<std::size_t>(schedule.period);

  std::vector<double> spent(n, 0.0);
  std::int64_t receptions = 0;
  for (std::size_t s = 0; s < period; ++s) {
    int transmitters = 0;
    for (std::size_t i = 0; i < n; ++i)
      if (schedule.actions[i][s] == SlotAction::kTransmit) ++transmitters;
    if (transmitters > 1) check.collision_free = false;
    for (std::size_t i = 0; i < n; ++i) {
      switch (schedule.actions[i][s]) {
        case SlotAction::kListen:
          spent[i] += nodes[i].listen_power;
          if (transmitters != 1) check.listeners_covered = false;
          else ++receptions;
          break;
        case SlotAction::kTransmit:
          spent[i] += nodes[i].transmit_power;
          break;
        case SlotAction::kSleep:
          break;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double allowance =
        nodes[i].budget * static_cast<double>(schedule.period);
    if (spent[i] > allowance * (1.0 + 1e-9)) check.budget_respected = false;
  }
  check.groupput = static_cast<double>(receptions) /
                   static_cast<double>(schedule.period);
  return check;
}

}  // namespace econcast::oracle
