#include "model/node_params.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace econcast::model {

void NodeParams::validate() const {
  if (!(budget > 0.0) || !std::isfinite(budget))
    throw std::invalid_argument("NodeParams: budget must be positive");
  if (!(listen_power > 0.0) || !std::isfinite(listen_power))
    throw std::invalid_argument("NodeParams: listen_power must be positive");
  if (!(transmit_power > 0.0) || !std::isfinite(transmit_power))
    throw std::invalid_argument("NodeParams: transmit_power must be positive");
}

NodeSet homogeneous(std::size_t n, double budget, double listen_power,
                    double transmit_power) {
  NodeParams p{budget, listen_power, transmit_power};
  p.validate();
  return NodeSet(n, p);
}

bool is_homogeneous(const NodeSet& nodes, double tol) {
  if (nodes.size() <= 1) return true;
  const auto& first = nodes.front();
  auto close = [tol](double a, double b) {
    const double scale = std::max({std::abs(a), std::abs(b), 1e-300});
    return std::abs(a - b) <= tol * scale;
  };
  for (const auto& p : nodes) {
    if (!close(p.budget, first.budget) ||
        !close(p.listen_power, first.listen_power) ||
        !close(p.transmit_power, first.transmit_power))
      return false;
  }
  return true;
}

NodeSet sample_heterogeneous(std::size_t n, double h, util::Rng& rng) {
  if (h < 10.0 || h > 250.0)
    throw std::invalid_argument("heterogeneity h must be in [10, 250]");
  NodeSet nodes;
  nodes.reserve(n);
  const double lo = 510.0 - h;
  const double hi = 490.0 + h;
  const double lh_lo = -std::log(h / 100.0);
  const double lh_hi = std::log(h);
  for (std::size_t i = 0; i < n; ++i) {
    NodeParams p;
    // h = 10 makes [lo, hi] = [500, 500]: uniform() on a zero-width interval
    // returns the single point, reproducing the homogeneous network.
    p.listen_power = rng.uniform(lo, hi);
    p.transmit_power = rng.uniform(lo, hi);
    p.budget = std::exp(rng.uniform(lh_lo, lh_hi));
    p.validate();
    nodes.push_back(p);
  }
  return nodes;
}

std::vector<NodeSet> sample_heterogeneous_batch(std::size_t n, double h,
                                                std::size_t count,
                                                util::Rng& rng) {
  std::vector<NodeSet> sets;
  sets.reserve(count);
  for (std::size_t r = 0; r < count; ++r)
    sets.push_back(sample_heterogeneous(n, h, rng));
  return sets;
}

void validate(const NodeSet& nodes) {
  if (nodes.empty()) throw std::invalid_argument("empty NodeSet");
  for (const auto& p : nodes) p.validate();
}

}  // namespace econcast::model
