#include "model/network.h"

#include <algorithm>
#include <stdexcept>

namespace econcast::model {

Topology::Topology(std::size_t n) : n_(n), adj_(n), matrix_(n * n, false) {
  if (n == 0) throw std::invalid_argument("Topology with zero nodes");
}

void Topology::add_edge(std::size_t i, std::size_t j) {
  if (i >= n_ || j >= n_) throw std::out_of_range("edge endpoint");
  if (i == j) throw std::invalid_argument("self-loop");
  if (matrix_[i * n_ + j]) return;  // ignore duplicates
  matrix_[i * n_ + j] = matrix_[j * n_ + i] = true;
  adj_[i].push_back(j);
  adj_[j].push_back(i);
}

void Topology::finalize() {
  for (auto& list : adj_) std::sort(list.begin(), list.end());
}

Topology Topology::clique(std::size_t n) {
  Topology t(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) t.add_edge(i, j);
  t.finalize();
  return t;
}

Topology Topology::grid(std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("empty grid");
  Topology t(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) t.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) t.add_edge(id(r, c), id(r + 1, c));
    }
  }
  t.finalize();
  return t;
}

Topology Topology::line(std::size_t n) {
  Topology t(n);
  for (std::size_t i = 0; i + 1 < n; ++i) t.add_edge(i, i + 1);
  t.finalize();
  return t;
}

Topology Topology::ring(std::size_t n) {
  if (n < 3) throw std::invalid_argument("ring needs >= 3 nodes");
  Topology t(n);
  for (std::size_t i = 0; i < n; ++i) t.add_edge(i, (i + 1) % n);
  t.finalize();
  return t;
}

Topology Topology::random_gnp(std::size_t n, double p, util::Rng& rng) {
  if (n < 2) throw std::invalid_argument("random_gnp needs >= 2 nodes");
  for (int attempt = 0; attempt < 1000; ++attempt) {
    Topology t(n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        if (rng.bernoulli(p)) t.add_edge(i, j);
    const bool no_isolated = std::all_of(
        t.adj_.begin(), t.adj_.end(),
        [](const std::vector<std::size_t>& a) { return !a.empty(); });
    if (no_isolated) {
      t.finalize();
      return t;
    }
  }
  throw std::runtime_error("random_gnp: could not avoid isolated nodes");
}

Topology Topology::from_edges(
    std::size_t n,
    const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
  Topology t(n);
  for (const auto& [i, j] : edges) t.add_edge(i, j);
  t.finalize();
  return t;
}

bool Topology::adjacent(std::size_t i, std::size_t j) const {
  if (i >= n_ || j >= n_) throw std::out_of_range("adjacent index");
  return matrix_[i * n_ + j];
}

const std::vector<std::size_t>& Topology::neighbors(std::size_t i) const {
  if (i >= n_) throw std::out_of_range("neighbors index");
  return adj_[i];
}

bool Topology::is_clique() const noexcept {
  for (std::size_t i = 0; i < n_; ++i)
    if (adj_[i].size() != n_ - 1) return false;
  return true;
}

bool Topology::is_connected() const {
  std::vector<bool> seen(n_, false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t count = 1;
  while (!stack.empty()) {
    const std::size_t u = stack.back();
    stack.pop_back();
    for (const std::size_t v : adj_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        stack.push_back(v);
      }
    }
  }
  return count == n_;
}

std::size_t Topology::edge_count() const noexcept {
  std::size_t deg_sum = 0;
  for (const auto& a : adj_) deg_sum += a.size();
  return deg_sum / 2;
}

std::vector<std::pair<std::size_t, std::size_t>> Topology::edges() const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(edge_count());
  for (std::size_t i = 0; i < n_; ++i)
    for (const std::size_t j : adj_[i])
      if (i < j) out.emplace_back(i, j);
  return out;
}

}  // namespace econcast::model
