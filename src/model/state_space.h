// The collision-free network state space W of §III-C: each node is in
// sleep/listen/transmit and at most one node transmits, giving
// |W| = (N+2) * 2^(N-1) states. This is the domain of the Gibbs
// distribution (19) and of the (P4) achievability machinery.
#ifndef ECONCAST_MODEL_STATE_SPACE_H
#define ECONCAST_MODEL_STATE_SPACE_H

#include <cstdint>
#include <functional>

#include "model/node_params.h"

namespace econcast::model {

/// Which broadcast throughput the system optimizes (§I / Definition 1-2).
enum class Mode {
  kGroupput,  // each delivered bit counted once per receiver
  kAnyput,    // each delivered bit counted once if >= 1 receiver
};

const char* to_string(Mode mode) noexcept;

/// One collision-free network state. `transmitter < 0` means nobody
/// transmits; `listeners` is a bitmask over all N nodes (the transmitter's
/// bit is always clear). Nodes that neither transmit nor listen sleep.
struct NetState {
  int transmitter = -1;
  std::uint64_t listeners = 0;

  bool has_transmitter() const noexcept { return transmitter >= 0; }
  int listener_count() const noexcept;          // c_w
  bool any_listener() const noexcept { return listeners != 0; }  // γ_w
};

/// ν_w · c_w (groupput) or ν_w · γ_w (anyput) — Definition 3, eq. (3).
double state_throughput(const NetState& state, Mode mode) noexcept;

/// Exact |W| = (N+2) * 2^(N-1).
std::uint64_t state_space_size(std::size_t n) noexcept;

/// Enumerates every state of W for an N-node clique, invoking `fn` once per
/// state. Enumeration order is deterministic: first the no-transmitter
/// states (listener mask ascending), then transmitter 0..N-1 each with its
/// listener masks ascending. N must be <= 24 (enumeration cost).
void for_each_state(std::size_t n, const std::function<void(const NetState&)>& fn);

/// Dense index of a state within the enumeration order above (useful for
/// storing per-state vectors). Inverse of `state_at_index`.
std::uint64_t state_index(std::size_t n, const NetState& state);
NetState state_at_index(std::size_t n, std::uint64_t index);

}  // namespace econcast::model

#endif  // ECONCAST_MODEL_STATE_SPACE_H
