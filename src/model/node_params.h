// Per-node energy model (§III-A): power budget ρ, listen power L, transmit
// power X. Sleep power is 0 by the paper's normalization (a non-zero sleep
// draw is folded into ρ/L/X, footnote 2).
//
// Powers are unit-agnostic: every quantity in this project depends only on
// the ratios between ρ, L and X (the paper makes the same observation in
// §VII-A), so callers may pass µW, mW or W as long as they are consistent.
#ifndef ECONCAST_MODEL_NODE_PARAMS_H
#define ECONCAST_MODEL_NODE_PARAMS_H

#include <cstddef>
#include <vector>

#include "util/random.h"

namespace econcast::model {

struct NodeParams {
  double budget = 0.0;          // ρ_i: long-run power budget
  double listen_power = 0.0;    // L_i: draw in listen/receive state
  double transmit_power = 0.0;  // X_i: draw in transmit state

  /// Validates ρ > 0, L > 0, X > 0 (throws std::invalid_argument).
  void validate() const;
};

/// The heterogeneous node collection a network is built from.
using NodeSet = std::vector<NodeParams>;

/// n identical nodes (the paper's homogeneous setting ρ_i=ρ, L_i=L, X_i=X).
NodeSet homogeneous(std::size_t n, double budget, double listen_power,
                    double transmit_power);

/// True when all nodes share identical parameters (within `tol` relative).
bool is_homogeneous(const NodeSet& nodes, double tol = 1e-12);

/// The paper's heterogeneity sampling process (§VII-B), parameterized by
/// h ∈ [10, 250]:
///   L_i, X_i ~ U[510-h, 490+h] µW   (mean 500 µW for every h)
///   h'      ~ U[-ln(h/100), ln h],  ρ_i = exp(h') µW  (median 10 µW)
/// h = 10 degenerates to the homogeneous network (L=X=500 µW, ρ=10 µW).
/// Returned values are in µW.
NodeSet sample_heterogeneous(std::size_t n, double h, util::Rng& rng);

/// `count` consecutive §VII-B networks drawn from one stream — the named,
/// manifest-addressable form of the sampler. Element r is exactly the r-th
/// network a serial sampling loop over `rng` would see, so sweeps that pair
/// cells on (h, replicate) reproduce a serial paired-sampling design network
/// for network (runner::SweepSpec's "sampled" node-set kind relies on this).
std::vector<NodeSet> sample_heterogeneous_batch(std::size_t n, double h,
                                                std::size_t count,
                                                util::Rng& rng);

/// Validates every node in the set.
void validate(const NodeSet& nodes);

}  // namespace econcast::model

#endif  // ECONCAST_MODEL_NODE_PARAMS_H
