#include "model/state_space.h"

#include <bit>
#include <stdexcept>

namespace econcast::model {

const char* to_string(Mode mode) noexcept {
  return mode == Mode::kGroupput ? "groupput" : "anyput";
}

int NetState::listener_count() const noexcept {
  return std::popcount(listeners);
}

double state_throughput(const NetState& state, Mode mode) noexcept {
  if (!state.has_transmitter()) return 0.0;  // ν_w = 0
  if (mode == Mode::kGroupput)
    return static_cast<double>(state.listener_count());
  return state.any_listener() ? 1.0 : 0.0;
}

std::uint64_t state_space_size(std::size_t n) noexcept {
  if (n == 0) return 1;
  return (static_cast<std::uint64_t>(n) + 2) << (n - 1);
}

namespace {
void check_n(std::size_t n) {
  if (n == 0 || n > 24)
    throw std::invalid_argument("state space enumeration requires 1 <= N <= 24");
}
}  // namespace

void for_each_state(std::size_t n,
                    const std::function<void(const NetState&)>& fn) {
  check_n(n);
  const std::uint64_t full = n == 64 ? ~0ULL : (1ULL << n) - 1;
  // No transmitter: any subset of nodes listens.
  for (std::uint64_t mask = 0; mask <= full; ++mask)
    fn(NetState{-1, mask});
  // Transmitter i: any subset of the other nodes listens.
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t self = 1ULL << i;
    for (std::uint64_t mask = 0; mask <= full; ++mask) {
      if (mask & self) continue;
      fn(NetState{static_cast<int>(i), mask});
    }
  }
}

std::uint64_t state_index(std::size_t n, const NetState& state) {
  check_n(n);
  const std::uint64_t half = 1ULL << (n - 1);
  if (!state.has_transmitter()) return state.listeners;
  const auto tx = static_cast<std::size_t>(state.transmitter);
  if (tx >= n) throw std::out_of_range("state transmitter index");
  if (state.listeners & (1ULL << tx))
    throw std::invalid_argument("transmitter cannot also listen");
  // Compress the listener mask by removing the transmitter's bit position.
  const std::uint64_t low = state.listeners & ((1ULL << tx) - 1);
  const std::uint64_t high = state.listeners >> (tx + 1);
  const std::uint64_t compressed = low | (high << tx);
  return (1ULL << n) + static_cast<std::uint64_t>(tx) * half + compressed;
}

NetState state_at_index(std::size_t n, std::uint64_t index) {
  check_n(n);
  const std::uint64_t no_tx_count = 1ULL << n;
  if (index < no_tx_count) return NetState{-1, index};
  index -= no_tx_count;
  const std::uint64_t half = 1ULL << (n - 1);
  const auto tx = static_cast<std::size_t>(index / half);
  if (tx >= n) throw std::out_of_range("state index out of range");
  const std::uint64_t compressed = index % half;
  const std::uint64_t low = compressed & ((1ULL << tx) - 1);
  const std::uint64_t high = compressed >> tx;
  return NetState{static_cast<int>(tx), low | (high << (tx + 1))};
}

}  // namespace econcast::model
