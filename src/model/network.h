// Network topology: which nodes hear each other. The paper analyzes cliques
// (§III-C) and evaluates grids (§VII-E); the simulator and the non-clique
// oracle bounds work on arbitrary undirected graphs.
#ifndef ECONCAST_MODEL_NETWORK_H
#define ECONCAST_MODEL_NETWORK_H

#include <cstddef>
#include <utility>
#include <vector>

#include "util/random.h"

namespace econcast::model {

class Topology {
 public:
  /// All-pairs connectivity (the paper's main analytical setting).
  static Topology clique(std::size_t n);

  /// rows x cols grid, 4-neighborhood (the §VII-E evaluation topology).
  static Topology grid(std::size_t rows, std::size_t cols);

  /// Path 0-1-2-...-(n-1).
  static Topology line(std::size_t n);

  /// Cycle of n >= 3 nodes.
  static Topology ring(std::size_t n);

  /// Erdős–Rényi G(n, p) conditioned on no isolated node (retries until the
  /// sampled graph has minimum degree >= 1; p must make that likely).
  static Topology random_gnp(std::size_t n, double p, util::Rng& rng);

  /// Arbitrary undirected graph from an edge list (self-loops rejected).
  static Topology from_edges(std::size_t n,
                             const std::vector<std::pair<std::size_t, std::size_t>>& edges);

  std::size_t size() const noexcept { return n_; }
  bool adjacent(std::size_t i, std::size_t j) const;
  const std::vector<std::size_t>& neighbors(std::size_t i) const;
  std::size_t degree(std::size_t i) const { return neighbors(i).size(); }

  bool is_clique() const noexcept;
  bool is_connected() const;
  std::size_t edge_count() const noexcept;
  /// Every undirected edge once, as (i, j) pairs with i < j in ascending
  /// order — the inverse of from_edges up to edge ordering (serializers and
  /// edge-list sweep builders rely on this canonical form).
  std::vector<std::pair<std::size_t, std::size_t>> edges() const;

 private:
  explicit Topology(std::size_t n);
  void add_edge(std::size_t i, std::size_t j);
  void finalize();

  std::size_t n_ = 0;
  std::vector<std::vector<std::size_t>> adj_;   // sorted neighbor lists
  std::vector<bool> matrix_;                    // n x n adjacency for O(1) tests
};

}  // namespace econcast::model

#endif  // ECONCAST_MODEL_NETWORK_H
