// A fabric worker: claim one shard of a manifest, run it, heartbeat.
//
// Worker is a thin orchestration shell around a range-restricted
// runner::SweepSession: it pins (or validates) the shard plan, acquires the
// shard's claim file (atomic create — see claim.h), opens the session on
// the shard's results JSONL restricted to the shard's cell range, and
// touches the claim after every completed cell. Kill a worker at any byte
// and the next claimant resumes from the shard file exactly as a
// single-process sweep resumes from its checkpoint; finish the shard and
// the claim is released. Everything a worker writes is keyed by global cell
// index, which is what makes the eventual merge byte-identical to a
// single-process run (see merger.h).
#ifndef ECONCAST_FABRIC_WORKER_H
#define ECONCAST_FABRIC_WORKER_H

#include <cstddef>
#include <functional>
#include <string>

#include "fabric/shard_plan.h"
#include "runner/scenario_runner.h"

namespace econcast::fabric {

class Worker {
 public:
  struct Options {
    /// Free-form worker id recorded in the claim; empty = "pid-<getpid>".
    std::string worker_id;
    /// Thread cap for the shard's cells; 0 = hardware_concurrency.
    std::size_t num_threads = 0;
    /// Stop (checkpoint + release the claim) after this many newly
    /// completed cells; 0 = run the shard to completion. The deterministic
    /// "interrupted worker" knob, mirroring `econcast_sweep --limit`.
    std::size_t limit = 0;
    /// Forwarded per-cell hook (progress lines); invoked after the cell is
    /// checkpointed and the heartbeat is written.
    std::function<void(const runner::ScenarioProgress&)> on_cell_done;
    /// Optional event-queue / hot-path engine overrides applied to the
    /// loaded manifest (the `econcast_sweep --engine/--hotpath` knobs).
    /// Results-neutral by contract, so mixed-engine workers on one sweep
    /// still merge byte-identically. Validated at session construction.
    std::string queue_engine;
    std::string hotpath_engine;
    /// Result-cache directory shared across workers (and with plain
    /// `econcast_sweep --cache` runs); empty = no cache. Cached cells skip
    /// execution, newly computed cells are published — results-neutral,
    /// like the engines above. Enables cost-ordered submission within the
    /// shard (the cache's observed wall clocks calibrate the model).
    std::string cache_dir;
  };

  struct Outcome {
    enum class Status {
      kRan,              // held the claim; `ran` new cells completed
      kShardBusy,        // another worker holds the claim — nothing run
      kAlreadyComplete,  // shard results file already has every cell
    };
    Status status = Status::kRan;
    std::size_t shard_cells = 0;  // size of the shard's range
    std::size_t resumed = 0;      // loaded from a previous worker's file
    std::size_t ran = 0;          // newly completed by this worker
    bool shard_complete = false;
    std::string results_path;
  };

  /// Loads the manifest and pins/validates the shard plan. Throws
  /// std::invalid_argument for shard >= shard_count and propagates manifest
  /// and plan errors.
  Worker(std::string manifest_path, std::size_t shard,
         std::size_t shard_count, Options options);
  Worker(std::string manifest_path, std::size_t shard,
         std::size_t shard_count);

  const ShardRange& range() const noexcept { return range_; }
  const std::string& worker_id() const noexcept { return options_.worker_id; }

  /// Claim → run → heartbeat-per-cell → release. Returns without running
  /// anything when the shard is busy or already complete. On a cell failure
  /// the claim is released (completed cells stay checkpointed) and the
  /// exception propagates.
  Outcome run();

 private:
  std::string manifest_path_;
  Options options_;
  ShardRange range_;
};

}  // namespace econcast::fabric

#endif  // ECONCAST_FABRIC_WORKER_H
