// Merging shard results into the canonical single-process results file.
//
// Every shard record was written by runner::SweepSession::record_line with
// the cell's *global* index, name and derived seed — exactly the bytes a
// single-process run writes for that cell. The merger therefore never
// re-serializes anything: it validates each shard file record-by-record
// against the manifest expansion (index contiguity across the whole plan,
// name and seed per cell, complete trailing newline) and concatenates the
// raw line bytes in shard order into the merged file (temp + rename, so a
// partially merged file is never observable). Byte-identity to an
// uninterrupted `econcast_sweep` run is by construction, and CI re-checks
// it with `cmp` on every push.
#ifndef ECONCAST_FABRIC_MERGER_H
#define ECONCAST_FABRIC_MERGER_H

#include <cstddef>
#include <string>

namespace econcast::fabric {

class Merger {
 public:
  struct Report {
    std::size_t shard_count = 0;
    std::size_t cells = 0;
    std::string merged_path;
  };

  /// Merges the shard files of `manifest_path`'s pinned plan (plan.json —
  /// see shard_plan.h) into `merged_path` (empty = merged_results_path).
  /// Throws std::runtime_error when a shard file is missing, short, long,
  /// ends in a partial record, or any record's index/name/seed disagrees
  /// with the manifest expansion — a merge either produces the exact
  /// single-process bytes or fails loudly, naming the offending file.
  static Report merge(const std::string& manifest_path,
                      std::string merged_path = {});

  /// Same, with an explicit shard count instead of a pinned plan.json (the
  /// standalone `econcast_sweep --merge` path validates the two agree when
  /// both exist).
  static Report merge(const std::string& manifest_path,
                      std::size_t shard_count, std::string merged_path);
};

}  // namespace econcast::fabric

#endif  // ECONCAST_FABRIC_MERGER_H
