// Sharding a sweep manifest into contiguous cell-index ranges, and the
// on-disk layout of a sharded ("fabric") sweep.
//
// Because every cell's name and seed derive from its *global* expansion
// index (runner::derive_seed(base_seed, index) — PR 3), a shard is nothing
// but a contiguous index range handed to a range-restricted
// runner::SweepSession: the shard's results JSONL carries globally-indexed
// records, so concatenating the shard files of a partition of
// [0, cell_count) in shard order reproduces the single-process results file
// byte for byte. ShardPlan is the one place that partition is computed, and
// plan.json pins it on disk so every worker and the merger agree on it.
//
// Layout, for a manifest at <dir>/<name>.json:
//   <dir>/<name>.fabric/                     fabric_dir()
//     plan.json                              the pinned ShardPlan
//     shard-<i>-of-<k>.jsonl                 shard_results_path()
//     shard-<i>-of-<k>.claim.json            shard_claim_path() (claim.h)
//   <dir>/<name>.results.jsonl               merged_results_path()
// The merged path equals runner::SweepSession::default_results_path, so a
// fabric run lands exactly where a single-process `econcast_sweep` run of
// the same manifest would.
#ifndef ECONCAST_FABRIC_SHARD_PLAN_H
#define ECONCAST_FABRIC_SHARD_PLAN_H

#include <cstddef>
#include <string>
#include <vector>

namespace econcast::fabric {

/// One contiguous cell-index range [begin, end) of a sharded sweep.
struct ShardRange {
  std::size_t index = 0;  // shard number in [0, count)
  std::size_t count = 0;  // total shards of the plan
  std::size_t begin = 0;  // global cell index, inclusive
  std::size_t end = 0;    // global cell index, exclusive

  std::size_t size() const noexcept { return end - begin; }
};

/// A deterministic partition of [0, total_cells) into `shard_count`
/// contiguous ranges. The default partition is the equal split — shard i
/// covers [i*total/k, (i+1)*total/k), sizes differing by at most one — and
/// a plan may instead carry explicit bounds (the cost-balanced plans of
/// cost_plan.h), as long as they tile the expansion exactly. Empty shards
/// are allowed (over-sharded plans; a balanced plan over a mostly-cached
/// expansion) and are trivially complete.
class ShardPlan {
 public:
  /// The equal split. Throws std::invalid_argument when shard_count is zero.
  ShardPlan(std::size_t total_cells, std::size_t shard_count);

  /// Explicit bounds: shard i covers [bounds[i], bounds[i+1]), so `bounds`
  /// has shard_count+1 entries, starts at 0, ends at total_cells and is
  /// non-decreasing — anything else throws std::invalid_argument.
  ShardPlan(std::size_t total_cells, std::vector<std::size_t> bounds);

  std::size_t total_cells() const noexcept { return total_cells_; }
  std::size_t shard_count() const noexcept { return bounds_.size() - 1; }

  /// The shard_count+1 cut points (see the bounds constructor).
  const std::vector<std::size_t>& bounds() const noexcept { return bounds_; }

  /// True when the bounds equal the equal split for this (total, count) —
  /// such plans serialize without an explicit bounds array.
  bool equal_split() const noexcept;

  /// The range of shard `i`; throws std::out_of_range for i >= shard_count.
  ShardRange shard(std::size_t i) const;

 private:
  std::size_t total_cells_ = 0;
  std::vector<std::size_t> bounds_;  // shard_count()+1 cut points
};

/// "<manifest path minus trailing .json>.fabric" — the per-manifest
/// directory holding the plan, shard results and shard claims.
std::string fabric_dir(const std::string& manifest_path);

/// fabric_dir()/shard-<i>-of-<k>.jsonl
std::string shard_results_path(const std::string& manifest_path,
                               std::size_t shard, std::size_t shard_count);

/// fabric_dir()/shard-<i>-of-<k>.claim.json
std::string shard_claim_path(const std::string& manifest_path,
                             std::size_t shard, std::size_t shard_count);

/// fabric_dir()/plan.json
std::string plan_path(const std::string& manifest_path);

/// Where the merger writes the canonical index-ordered results file —
/// identical to runner::SweepSession::default_results_path(manifest_path).
std::string merged_results_path(const std::string& manifest_path);

/// Writes plan.json if absent (atomically), or validates an existing one:
/// a plan already pinned with a different total or shard count throws
/// std::runtime_error naming the file and both values — one manifest can
/// only ever be sharded one way at a time. Creates fabric_dir() as needed.
/// Returns the *pinned* plan: when plan.json already exists its bounds win
/// (even if they differ from the requested plan's), so every worker and the
/// merger agree on one partition no matter who planned what.
ShardPlan pin_plan(const std::string& manifest_path, const ShardPlan& plan);

/// pin_plan with the equal-split plan for (total_cells, shard_count).
ShardPlan pin_plan(const std::string& manifest_path, std::size_t total_cells,
                   std::size_t shard_count);

/// Loads a pinned plan.json. Throws std::runtime_error when missing or
/// malformed.
ShardPlan load_plan(const std::string& manifest_path);

/// True when plan.json exists for this manifest.
bool plan_exists(const std::string& manifest_path);

/// Number of *complete* ('\n'-terminated) lines in `path`; 0 when the file
/// does not exist. A read-only progress probe: SweepSession appends one
/// line per completed cell in index order, so this equals the number of
/// checkpointed cells without parsing (and without truncating a partial
/// trailing record the way opening a SweepSession would — safe to call on
/// a shard file another process is writing).
std::size_t complete_line_count(const std::string& path);

}  // namespace econcast::fabric

#endif  // ECONCAST_FABRIC_SHARD_PLAN_H
