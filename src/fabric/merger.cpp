#include "fabric/merger.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "fabric/shard_plan.h"
#include "protocol/protocol.h"
#include "runner/manifest.h"
#include "runner/scenario_runner.h"
#include "util/json.h"

namespace econcast::fabric {

namespace fs = std::filesystem;
namespace json = util::json;

namespace {

std::uint64_t expected_seed(const runner::SweepManifest& manifest,
                            const runner::Scenario& cell,
                            std::size_t global_index) {
  // Mirrors SweepSession::cell_seed — the derivation every record carries.
  return manifest.reseed
             ? runner::derive_seed(manifest.base_seed, global_index)
             : protocol::effective_seed(cell.protocol);
}

}  // namespace

Merger::Report Merger::merge(const std::string& manifest_path,
                             std::string merged_path) {
  const ShardPlan plan = load_plan(manifest_path);
  return merge(manifest_path, plan.shard_count(), std::move(merged_path));
}

Merger::Report Merger::merge(const std::string& manifest_path,
                             std::size_t shard_count,
                             std::string merged_path) {
  const runner::SweepManifest manifest = runner::load_manifest(manifest_path);
  const std::vector<runner::Scenario> batch = manifest.spec.expand();
  const ShardPlan plan(batch.size(), shard_count);
  if (plan_exists(manifest_path)) {
    const ShardPlan pinned = load_plan(manifest_path);
    if (pinned.total_cells() != plan.total_cells() ||
        pinned.shard_count() != plan.shard_count())
      throw std::runtime_error(
          "shard plan '" + plan_path(manifest_path) + "' pins " +
          std::to_string(pinned.total_cells()) + " cells / " +
          std::to_string(pinned.shard_count()) + " shards; cannot merge as " +
          std::to_string(plan.total_cells()) + " cells / " +
          std::to_string(plan.shard_count()) + " shards");
  }

  Report report;
  report.shard_count = shard_count;
  report.merged_path = merged_path.empty() ? merged_results_path(manifest_path)
                                           : std::move(merged_path);

  const std::string tmp = report.merged_path + ".merge.tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out)
    throw std::runtime_error("cannot write merged results '" + tmp + "'");

  std::size_t global = 0;  // next expected cell index across all shards
  for (std::size_t i = 0; i < shard_count; ++i) {
    const ShardRange range = plan.shard(i);
    const std::string path = shard_results_path(manifest_path, i, shard_count);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      if (range.size() == 0) continue;  // empty shards need no file
      throw std::runtime_error("shard results '" + path +
                               "' is missing: shard " + std::to_string(i) +
                               " (" + std::to_string(range.size()) +
                               " cells) has not completed");
    }
    std::string line;
    std::size_t local = 0;
    while (std::getline(in, line)) {
      if (in.eof())
        throw std::runtime_error(
            "shard results '" + path +
            "' ends in a partial record: the shard's worker was killed "
            "mid-write and has not been resumed");
      if (global >= range.end)
        throw std::runtime_error(
            "shard results '" + path + "' has more than the " +
            std::to_string(range.size()) + " cells of its range [" +
            std::to_string(range.begin) + ", " + std::to_string(range.end) +
            ")");
      const json::Value record = [&] {
        try {
          return json::parse(line);
        } catch (const json::Error& e) {
          throw std::runtime_error("shard results '" + path + "' line " +
                                   std::to_string(local + 1) +
                                   " is corrupt: " + e.what());
        }
      }();
      const auto recorded_index =
          static_cast<std::size_t>(record.at("index").as_number());
      const std::string& recorded_name = record.at("name").as_string();
      const std::uint64_t recorded_seed =
          json::u64_from_string(record.at("seed").as_string());
      if (recorded_index != global || recorded_name != batch[global].name ||
          recorded_seed != expected_seed(manifest, batch[global], global))
        throw std::runtime_error(
            "shard results '" + path + "' line " + std::to_string(local + 1) +
            " does not match sweep '" + manifest.spec.name() + "' cell " +
            std::to_string(global) + " ('" + batch[global].name +
            "'): wrong manifest, wrong shard, or interleaved writers");
      out << line << '\n';
      ++global;
      ++local;
    }
    if (global != range.end)
      throw std::runtime_error(
          "shard results '" + path + "' has " + std::to_string(local) +
          " of the " + std::to_string(range.size()) + " cells of range [" +
          std::to_string(range.begin) + ", " + std::to_string(range.end) +
          "): the shard has not completed");
  }
  if (!out.flush())
    throw std::runtime_error("write to merged results '" + tmp + "' failed");
  out.close();
  fs::rename(tmp, report.merged_path);
  report.cells = global;
  return report;
}

}  // namespace econcast::fabric
