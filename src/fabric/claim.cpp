#include "fabric/claim.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.h"

namespace econcast::fabric {

namespace fs = std::filesystem;
namespace json = util::json;

std::int64_t wall_clock_seconds() {
  // Heartbeat freshness is operational metadata for the coordinator's lease
  // decisions; it never reaches a simulation result or a results file.
  return std::chrono::duration_cast<std::chrono::seconds>(
             // NOLINT-DETERMINISM(wall-clock): lease timestamps only —
             // merged result bytes are independent of every heartbeat value.
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

namespace {

std::string claim_text(const ShardClaim& claim) {
  json::Object o;
  o.set("format", "econcast-shard-claim")
      .set("shard", static_cast<double>(claim.shard))
      .set("shards", static_cast<double>(claim.shard_count))
      .set("worker", claim.worker)
      .set("claimed_at", static_cast<double>(claim.claimed_at))
      .set("heartbeat_at", static_cast<double>(claim.heartbeat_at))
      .set("cells_done", json::u64_to_string(claim.cells_done));
  return json::dump(json::Value(std::move(o)), 2) + "\n";
}

}  // namespace

bool try_acquire_claim(const std::string& path, const ShardClaim& claim) {
  // O_CREAT|O_EXCL is the atomic mutual exclusion: exactly one concurrent
  // acquirer gets the file. (std::ofstream has no create-exclusive mode
  // until C++23's noreplace.)
  const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) {
    if (errno == EEXIST) return false;
    throw std::runtime_error("cannot create shard claim '" + path +
                             "': " + std::strerror(errno));
  }
  const std::string text = claim_text(claim);
  std::size_t written = 0;
  while (written < text.size()) {
    const ssize_t n =
        ::write(fd, text.data() + written, text.size() - written);
    if (n < 0) {
      const int err = errno;
      ::close(fd);
      ::unlink(path.c_str());  // do not leave a torn claim holding the shard
      throw std::runtime_error("cannot write shard claim '" + path +
                               "': " + std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return true;
}

ShardClaim load_claim(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("cannot read shard claim '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const json::Value v = json::parse(buffer.str());
    if (v.at("format").as_string() != "econcast-shard-claim")
      throw json::Error("unexpected format");
    ShardClaim claim;
    claim.shard = static_cast<std::size_t>(v.at("shard").as_number());
    claim.shard_count = static_cast<std::size_t>(v.at("shards").as_number());
    claim.worker = v.at("worker").as_string();
    claim.claimed_at =
        static_cast<std::int64_t>(v.at("claimed_at").as_number());
    claim.heartbeat_at =
        static_cast<std::int64_t>(v.at("heartbeat_at").as_number());
    claim.cells_done = json::u64_from_string(v.at("cells_done").as_string());
    return claim;
  } catch (const json::Error& e) {
    throw std::runtime_error("shard claim '" + path + "' is corrupt: " +
                             e.what());
  }
}

void touch_claim(const std::string& path, ShardClaim& claim,
                 std::uint64_t cells_done) {
  // Re-read before rewriting: if the coordinator decided we were dead and
  // released (or another worker re-acquired) the claim, this worker must
  // stop touching the shard rather than fight the new owner.
  ShardClaim current;
  try {
    current = load_claim(path);
  } catch (const std::runtime_error&) {
    throw std::runtime_error("shard claim '" + path +
                             "' disappeared: the coordinator reassigned "
                             "this shard (heartbeat lease expired)");
  }
  if (current.worker != claim.worker)
    throw std::runtime_error("shard claim '" + path + "' now belongs to '" +
                             current.worker + "', not '" + claim.worker +
                             "': this shard was reassigned");

  claim.heartbeat_at = wall_clock_seconds();
  claim.cells_done = cells_done;
  const std::string tmp = path + "." + claim.worker + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || !(out << claim_text(claim) << std::flush))
      throw std::runtime_error("cannot write shard claim '" + tmp + "'");
  }
  // rename is atomic: readers see either the old heartbeat or the new one,
  // never a torn file.
  fs::rename(tmp, path);
}

void release_claim(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);  // idempotent; ignore missing files
}

bool claim_exists(const std::string& path) { return fs::exists(path); }

}  // namespace econcast::fabric
