// The fabric coordinator: spool-directory scanning, shard-plan pinning,
// stale-worker reassignment, and merge-on-completion.
//
// A coordinator pass scans a spool directory for `*.manifest.json` files
// and, for each manifest:
//   1. pins the shard plan (writes plan.json on first sight — see
//      shard_plan.h) so every worker shards the sweep the same way;
//   2. probes shard progress read-only (complete-line counts — the probe
//      never truncates a file a live worker is writing);
//   3. releases claims whose heartbeat is older than the lease: the
//      shard's claim file disappears, the next `econcast_sweep --shard`
//      worker re-acquires it and resumes from the shard's checkpoint;
//   4. when every shard's results file is complete, runs the Merger and
//      writes the canonical `<manifest>.results.jsonl` (skipped when the
//      merged file already exists).
// The coordinator never runs cells itself and holds no in-memory state
// between passes — all state lives in the fabric directory, so the daemon
// can be killed and restarted freely, and `--once` (one pass, then exit)
// gives CI a deterministic step.
#ifndef ECONCAST_FABRIC_COORDINATOR_H
#define ECONCAST_FABRIC_COORDINATOR_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace econcast::fabric {

class Coordinator {
 public:
  struct Options {
    /// Shards per manifest for plans this coordinator pins. Manifests whose
    /// plan is already pinned keep their pinned count.
    std::size_t shard_count = 3;
    /// A claim whose heartbeat is at least this old is considered abandoned
    /// and released. Zero treats every claim as stale — the deterministic
    /// reassignment knob for tests/CI. Size it well above the worst-case
    /// per-cell wall clock (see claim.h).
    std::int64_t lease_seconds = 300;
    /// When non-empty, plans pinned by this coordinator are cost-balanced
    /// against this cache directory (see cost_plan.h) instead of
    /// equal-split: shards carry equal estimated *remaining* cost, cached
    /// cells counting as zero. Manifests with an already-pinned plan keep
    /// their pinned bounds either way.
    std::string cache_dir;
  };

  /// Per-manifest status of one pass.
  struct SweepStatus {
    std::string manifest_path;
    std::size_t total_cells = 0;
    std::size_t shard_count = 0;
    std::size_t cells_done = 0;       // checkpointed cells across shards
    std::size_t shards_complete = 0;  // shards with every cell checkpointed
    std::size_t shards_claimed = 0;   // live (fresh-heartbeat) claims
    std::size_t shards_reassigned = 0;  // stale claims released this pass
    bool plan_pinned = false;           // plan.json written this pass
    bool merged = false;                // merged file exists after this pass
  };

  /// Throws std::invalid_argument for shard_count == 0.
  Coordinator(std::string spool_dir, Options options);

  const std::string& spool_dir() const noexcept { return spool_dir_; }

  /// One scan over the spool (manifests in lexicographic order, so passes
  /// are deterministic). Throws std::runtime_error when the spool directory
  /// is missing; a broken manifest makes the pass throw after healthy
  /// manifests were still advanced.
  std::vector<SweepStatus> pass();

 private:
  SweepStatus pass_manifest(const std::string& manifest_path);

  std::string spool_dir_;
  Options options_;
};

}  // namespace econcast::fabric

#endif  // ECONCAST_FABRIC_COORDINATOR_H
