// Shard-claim files: how fabric workers take ownership of a shard and how
// the coordinator decides a worker has died.
//
// A claim is a small JSON file next to the shard's results JSONL (see
// shard_plan.h for paths). Ownership is the *existence* of the file:
// acquisition is an atomic create-exclusive (O_CREAT|O_EXCL), so exactly
// one worker can hold a shard at a time — there is no distributed lock
// beyond the (shared) filesystem. The worker heartbeats by atomically
// rewriting the claim with a fresh `heartbeat_at` after every completed
// cell; the coordinator treats a claim whose heartbeat is older than the
// lease as abandoned, deletes it, and the shard becomes claimable again.
// The new worker resumes from the shard's results file exactly as a
// single-process `econcast_sweep` rerun would — the kill-anywhere contract
// of runner::SweepSession carries over unchanged.
//
// Claim format (one pretty-printed JSON object):
//   {
//     "format": "econcast-shard-claim",
//     "shard": 1, "shards": 3,
//     "worker": "host-1234",        // free-form worker id
//     "claimed_at": 1754550000,     // unix seconds, wall clock
//     "heartbeat_at": 1754550012,   // last heartbeat, unix seconds
//     "cells_done": 5               // session-local progress at heartbeat
//   }
//
// The lease must comfortably exceed the worst-case wall clock of one cell
// (heartbeats happen per completed cell, not on a timer): undersizing it
// can reassign a shard whose worker is merely slow, and two live writers
// on one shard file produce interleaved records that the merger will
// reject (detected, not silent).
#ifndef ECONCAST_FABRIC_CLAIM_H
#define ECONCAST_FABRIC_CLAIM_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace econcast::fabric {

struct ShardClaim {
  std::size_t shard = 0;
  std::size_t shard_count = 0;
  std::string worker;
  std::int64_t claimed_at = 0;    // unix seconds
  std::int64_t heartbeat_at = 0;  // unix seconds
  std::uint64_t cells_done = 0;   // completed cells at last heartbeat

  /// Stale when `now - heartbeat_at >= lease_seconds`. A zero lease makes
  /// every claim stale — the deterministic knob tests and CI use to force
  /// reassignment without waiting.
  bool stale(std::int64_t now, std::int64_t lease_seconds) const noexcept {
    return now - heartbeat_at >= lease_seconds;
  }
};

/// Wall-clock unix seconds (system_clock).
std::int64_t wall_clock_seconds();

/// Atomically creates `path` with the claim's contents. Returns false when
/// the file already exists (the shard is owned by someone else); throws
/// std::runtime_error on any other I/O failure.
bool try_acquire_claim(const std::string& path, const ShardClaim& claim);

/// Parses a claim file. Throws std::runtime_error when unreadable or
/// malformed (a torn claim is treated as corrupt, never half-parsed).
ShardClaim load_claim(const std::string& path);

/// Heartbeat: atomically rewrites `path` (temp + rename) with
/// heartbeat_at = wall_clock_seconds() and the given progress. Throws
/// std::runtime_error when the claim no longer belongs to `claim.worker`
/// (the coordinator reassigned the shard under us) or is gone — the caller
/// must stop writing to the shard.
void touch_claim(const std::string& path, ShardClaim& claim,
                 std::uint64_t cells_done);

/// Removes a claim file; missing files are fine (release is idempotent).
void release_claim(const std::string& path);

bool claim_exists(const std::string& path);

}  // namespace econcast::fabric

#endif  // ECONCAST_FABRIC_CLAIM_H
