#include "fabric/coordinator.h"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "fabric/claim.h"
#include "fabric/cost_plan.h"
#include "fabric/merger.h"
#include "fabric/shard_plan.h"
#include "runner/manifest.h"

namespace econcast::fabric {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kManifestSuffix = ".manifest.json";

bool is_manifest_name(const std::string& name) {
  return name.size() > kManifestSuffix.size() &&
         name.compare(name.size() - kManifestSuffix.size(),
                      kManifestSuffix.size(), kManifestSuffix) == 0;
}

}  // namespace

Coordinator::Coordinator(std::string spool_dir, Options options)
    : spool_dir_(std::move(spool_dir)), options_(options) {
  if (options_.shard_count == 0)
    throw std::invalid_argument("coordinator needs at least one shard");
}

std::vector<Coordinator::SweepStatus> Coordinator::pass() {
  if (!fs::is_directory(spool_dir_))
    throw std::runtime_error("spool directory '" + spool_dir_ +
                             "' does not exist");
  // Deterministic order: manifests sorted by name.
  std::vector<std::string> manifests;
  for (const fs::directory_entry& entry : fs::directory_iterator(spool_dir_)) {
    if (entry.is_regular_file() &&
        is_manifest_name(entry.path().filename().string()))
      manifests.push_back(entry.path().string());
  }
  std::sort(manifests.begin(), manifests.end());

  std::vector<SweepStatus> statuses;
  statuses.reserve(manifests.size());
  for (const std::string& path : manifests)
    statuses.push_back(pass_manifest(path));
  return statuses;
}

Coordinator::SweepStatus Coordinator::pass_manifest(
    const std::string& manifest_path) {
  SweepStatus status;
  status.manifest_path = manifest_path;

  const runner::SweepManifest manifest = runner::load_manifest(manifest_path);
  status.total_cells = manifest.spec.cell_count();
  status.plan_pinned = !plan_exists(manifest_path);
  // Only a plan this pass actually pins pays for cost balancing; an
  // existing plan.json keeps its bounds regardless (pin_plan contract).
  const ShardPlan plan =
      status.plan_pinned && !options_.cache_dir.empty()
          ? pin_plan(manifest_path,
                     cost_balanced_plan(manifest, options_.shard_count,
                                        options_.cache_dir))
          : pin_plan(manifest_path, status.total_cells, options_.shard_count);
  status.shard_count = plan.shard_count();

  const std::int64_t now = wall_clock_seconds();
  for (std::size_t i = 0; i < plan.shard_count(); ++i) {
    const ShardRange range = plan.shard(i);
    const std::string claim_path =
        shard_claim_path(manifest_path, i, plan.shard_count());
    const std::size_t done =
        complete_line_count(shard_results_path(manifest_path, i,
                                               plan.shard_count()));
    status.cells_done += std::min(done, range.size());
    if (done >= range.size()) {
      ++status.shards_complete;
      // Every cell is checkpointed; a leftover claim (worker killed between
      // its last cell and its own release) no longer guards anything.
      release_claim(claim_path);
      continue;
    }
    if (!claim_exists(claim_path)) continue;  // unclaimed: worker-claimable
    bool stale;
    try {
      stale = load_claim(claim_path).stale(now, options_.lease_seconds);
    } catch (const std::runtime_error&) {
      // A torn/corrupt claim holds the shard but identifies no worker:
      // treat as abandoned.
      stale = true;
    }
    if (stale) {
      release_claim(claim_path);
      ++status.shards_reassigned;
    } else {
      ++status.shards_claimed;
    }
  }

  const std::string merged = merged_results_path(manifest_path);
  if (status.shards_complete == status.shard_count && !fs::exists(merged))
    Merger::merge(manifest_path, merged);
  status.merged = fs::exists(merged);
  return status;
}

}  // namespace econcast::fabric
