#include "fabric/cost_plan.h"

#include <optional>
#include <vector>

#include "runner/cell_cache.h"
#include "runner/cost_model.h"
#include "runner/sweep_session.h"

namespace econcast::fabric {

ShardPlan cost_balanced_plan(const runner::SweepManifest& manifest,
                             std::size_t shard_count,
                             const std::string& cache_dir) {
  const std::vector<runner::Scenario> cells =
      runner::expand_with_overrides(manifest);
  const std::size_t n = cells.size();

  runner::CostModel model;
  std::optional<runner::CellCache> cache;
  if (!cache_dir.empty()) {
    cache.emplace(cache_dir);
    model.calibrate_from_cache(cache_dir);
  }

  std::vector<double> cost(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // contains() is the existence-only probe: the worker's session
    // re-validates any entry it actually uses, so a bad entry costs that
    // shard one recompute — the plan does not need to read result bytes.
    const bool cached =
        cache && cache->contains(cells[i],
                                 manifest_cell_seed(manifest, cells[i], i));
    cost[i] = cached ? 0.0 : model.estimate_ms(cells[i]);
    total += cost[i];
  }
  if (!(total > 0.0)) return ShardPlan(n, shard_count);

  // Interior cut j goes where the prefix sum first reaches j/k of the
  // total: the cell straddling a target lands in the left shard. Bounds are
  // non-decreasing by construction; empty shards are fine.
  std::vector<std::size_t> bounds(shard_count + 1, n);
  bounds[0] = 0;
  double prefix = 0.0;
  std::size_t j = 1;
  for (std::size_t i = 0; i < n && j < shard_count; ++i) {
    prefix += cost[i];
    while (j < shard_count &&
           prefix >= total * static_cast<double>(j) /
                         static_cast<double>(shard_count))
      bounds[j++] = i + 1;
  }
  return ShardPlan(n, std::move(bounds));
}

}  // namespace econcast::fabric
