// Cache-aware, cost-balanced shard planning.
//
// The equal-split ShardPlan balances *cell counts*, which balances wall
// clock only when cells cost roughly the same. Real sweeps are wildly
// skewed — an N=200 EconCast cell costs orders of magnitude more than an
// N=25 analytic bound — and a shared result cache skews them further: a
// cached cell costs ~nothing no matter its size. cost_balanced_plan
// partitions the expansion so every shard carries (approximately) the same
// *estimated remaining* cost instead: per-cell estimates come from the
// runner::CostModel (calibrated from the cache's observed wall clocks when
// a cache directory is given) and cells already present in the cache count
// as zero.
//
// The partition is still contiguous-by-index — that is what keeps the
// byte-identical merge trivial (shard files concatenate in order) — so the
// planner picks the k-1 interior cut points where the cost prefix sum
// crosses the j/k fractions of the total. Determinism: the plan is a pure
// function of (manifest, cache contents at planning time, shard count);
// pin_plan then freezes it in plan.json so later cache churn cannot split
// one sweep two ways.
#ifndef ECONCAST_FABRIC_COST_PLAN_H
#define ECONCAST_FABRIC_COST_PLAN_H

#include <cstddef>
#include <string>

#include "fabric/shard_plan.h"
#include "runner/manifest.h"

namespace econcast::fabric {

/// The cost-balanced plan for `manifest` split `shard_count` ways.
/// `cache_dir` may be empty (no cache: estimates only, nothing counts as
/// zero). Falls back to the equal split when every cell estimates to zero
/// remaining cost (e.g. a fully cached sweep). Throws what ShardPlan /
/// manifest expansion throw.
ShardPlan cost_balanced_plan(const runner::SweepManifest& manifest,
                             std::size_t shard_count,
                             const std::string& cache_dir);

}  // namespace econcast::fabric

#endif  // ECONCAST_FABRIC_COST_PLAN_H
