#include "fabric/shard_plan.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.h"

namespace econcast::fabric {

namespace fs = std::filesystem;
namespace json = util::json;

ShardPlan::ShardPlan(std::size_t total_cells, std::size_t shard_count)
    : total_cells_(total_cells) {
  if (shard_count == 0)
    throw std::invalid_argument("shard plan needs at least one shard");
  bounds_.resize(shard_count + 1);
  for (std::size_t i = 0; i <= shard_count; ++i)
    bounds_[i] = total_cells * i / shard_count;
}

ShardPlan::ShardPlan(std::size_t total_cells, std::vector<std::size_t> bounds)
    : total_cells_(total_cells), bounds_(std::move(bounds)) {
  if (bounds_.size() < 2)
    throw std::invalid_argument("shard plan needs at least one shard");
  if (bounds_.front() != 0 || bounds_.back() != total_cells_)
    throw std::invalid_argument(
        "shard bounds must run from 0 to the total of " +
        std::to_string(total_cells_) + " cells");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (bounds_[i] < bounds_[i - 1])
      throw std::invalid_argument("shard bounds must be non-decreasing");
}

bool ShardPlan::equal_split() const noexcept {
  const std::size_t k = shard_count();
  for (std::size_t i = 0; i <= k; ++i)
    if (bounds_[i] != total_cells_ * i / k) return false;
  return true;
}

ShardRange ShardPlan::shard(std::size_t i) const {
  if (i >= shard_count())
    throw std::out_of_range("shard " + std::to_string(i) +
                            " out of range for a " +
                            std::to_string(shard_count()) + "-shard plan");
  ShardRange range;
  range.index = i;
  range.count = shard_count();
  range.begin = bounds_[i];
  range.end = bounds_[i + 1];
  return range;
}

namespace {

std::string strip_json_suffix(const std::string& path) {
  static constexpr std::string_view kJson = ".json";
  std::string base = path;
  if (base.size() > kJson.size() &&
      base.compare(base.size() - kJson.size(), kJson.size(), kJson) == 0)
    base.resize(base.size() - kJson.size());
  return base;
}

std::string shard_stem(std::size_t shard, std::size_t shard_count) {
  return "shard-" + std::to_string(shard) + "-of-" +
         std::to_string(shard_count);
}

}  // namespace

std::string fabric_dir(const std::string& manifest_path) {
  return strip_json_suffix(manifest_path) + ".fabric";
}

std::string shard_results_path(const std::string& manifest_path,
                               std::size_t shard, std::size_t shard_count) {
  return fabric_dir(manifest_path) + "/" + shard_stem(shard, shard_count) +
         ".jsonl";
}

std::string shard_claim_path(const std::string& manifest_path,
                             std::size_t shard, std::size_t shard_count) {
  return fabric_dir(manifest_path) + "/" + shard_stem(shard, shard_count) +
         ".claim.json";
}

std::string plan_path(const std::string& manifest_path) {
  return fabric_dir(manifest_path) + "/plan.json";
}

std::string merged_results_path(const std::string& manifest_path) {
  return strip_json_suffix(manifest_path) + ".results.jsonl";
}

ShardPlan pin_plan(const std::string& manifest_path, const ShardPlan& plan) {
  const std::string path = plan_path(manifest_path);
  if (fs::exists(path)) {
    const ShardPlan pinned = load_plan(manifest_path);
    if (pinned.total_cells() != plan.total_cells() ||
        pinned.shard_count() != plan.shard_count())
      throw std::runtime_error(
          "shard plan '" + path + "' pins " +
          std::to_string(pinned.total_cells()) + " cells / " +
          std::to_string(pinned.shard_count()) + " shards, but " +
          std::to_string(plan.total_cells()) + " cells / " +
          std::to_string(plan.shard_count()) +
          " shards were requested; one manifest can only be sharded one "
          "way at a time (remove the fabric directory to replan)");
    // Same totals but different cut points (e.g. an equal-split worker
    // joining a cost-balanced plan): the pinned bounds win.
    return pinned;
  }

  fs::create_directories(fabric_dir(manifest_path));
  json::Object o;
  o.set("format", "econcast-shard-plan")
      .set("total_cells", static_cast<double>(plan.total_cells()))
      .set("shards", static_cast<double>(plan.shard_count()));
  if (!plan.equal_split()) {
    // Only non-default partitions carry explicit bounds; an absent array
    // means the equal split, keeping plan.json bytes (and older plans on
    // disk) unchanged for the common case.
    json::Array bounds;
    for (const std::size_t b : plan.bounds())
      bounds.push_back(static_cast<double>(b));
    o.set("bounds", json::Value(std::move(bounds)));
  }
  // Temp file + rename: a reader never sees a half-written plan. The name
  // is unique per (pid-free) writer attempt only in that concurrent pinners
  // write identical bytes, so whichever rename lands last is equivalent.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out || !(out << json::dump(json::Value(std::move(o)), 2) << "\n"))
      throw std::runtime_error("cannot write shard plan '" + tmp + "'");
  }
  fs::rename(tmp, path);
  return plan;
}

ShardPlan pin_plan(const std::string& manifest_path, std::size_t total_cells,
                   std::size_t shard_count) {
  return pin_plan(manifest_path, ShardPlan(total_cells, shard_count));
}

ShardPlan load_plan(const std::string& manifest_path) {
  const std::string path = plan_path(manifest_path);
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("cannot read shard plan '" + path +
                             "': has a coordinator or worker pinned it?");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const json::Value v = json::parse(buffer.str());
    if (v.at("format").as_string() != "econcast-shard-plan")
      throw json::Error("unexpected format '" + v.at("format").as_string() +
                        "'");
    const double total = v.at("total_cells").as_number();
    const double shards = v.at("shards").as_number();
    if (total < 0 || shards < 1 ||
        total != static_cast<double>(static_cast<std::size_t>(total)) ||
        shards != static_cast<double>(static_cast<std::size_t>(shards)))
      throw json::Error("total_cells/shards must be non-negative integers");
    const auto total_cells = static_cast<std::size_t>(total);
    const auto shard_count = static_cast<std::size_t>(shards);
    if (const json::Value* bounds_value = v.find("bounds")) {
      const json::Array& array = bounds_value->as_array();
      if (array.size() != shard_count + 1)
        throw json::Error("bounds must have shards+1 entries");
      std::vector<std::size_t> bounds;
      bounds.reserve(array.size());
      for (const json::Value& b : array) {
        const double d = b.as_number();
        if (d < 0 || d != static_cast<double>(static_cast<std::size_t>(d)))
          throw json::Error("bounds must be non-negative integers");
        bounds.push_back(static_cast<std::size_t>(d));
      }
      try {
        return ShardPlan(total_cells, std::move(bounds));
      } catch (const std::invalid_argument& e) {
        throw json::Error(e.what());
      }
    }
    return ShardPlan(total_cells, shard_count);
  } catch (const json::Error& e) {
    throw std::runtime_error("shard plan '" + path + "' is corrupt: " +
                             e.what());
  }
}

bool plan_exists(const std::string& manifest_path) {
  return fs::exists(plan_path(manifest_path));
}

std::size_t complete_line_count(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::size_t lines = 0;
  char buffer[1 << 16];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0) {
    const std::streamsize got = in.gcount();
    for (std::streamsize i = 0; i < got; ++i)
      if (buffer[i] == '\n') ++lines;
  }
  return lines;
}

}  // namespace econcast::fabric
