#include "fabric/worker.h"

#include <unistd.h>

#include <memory>
#include <stdexcept>
#include <utility>

#include "fabric/claim.h"
#include "runner/manifest.h"
#include "runner/sweep_session.h"

namespace econcast::fabric {

Worker::Worker(std::string manifest_path, std::size_t shard,
               std::size_t shard_count, Options options)
    : manifest_path_(std::move(manifest_path)), options_(std::move(options)) {
  if (options_.worker_id.empty())
    options_.worker_id = "pid-" + std::to_string(::getpid());
  const runner::SweepManifest manifest = runner::load_manifest(manifest_path_);
  const ShardPlan plan =
      pin_plan(manifest_path_, manifest.spec.cell_count(), shard_count);
  range_ = plan.shard(shard);  // throws for shard >= shard_count
}

Worker::Worker(std::string manifest_path, std::size_t shard,
               std::size_t shard_count)
    : Worker(std::move(manifest_path), shard, shard_count, Options{}) {}

Worker::Outcome Worker::run() {
  Outcome out;
  out.shard_cells = range_.size();
  out.results_path =
      shard_results_path(manifest_path_, range_.index, range_.count);

  const std::size_t checkpointed = complete_line_count(out.results_path);
  if (range_.size() == 0 || checkpointed == range_.size()) {
    // Nothing to do (an empty shard of an over-sharded plan, or a previous
    // worker finished the range). No claim is taken for a no-op.
    out.status = Outcome::Status::kAlreadyComplete;
    out.resumed = checkpointed;
    out.shard_complete = true;
    return out;
  }

  const std::string claim_path =
      shard_claim_path(manifest_path_, range_.index, range_.count);
  ShardClaim claim;
  claim.shard = range_.index;
  claim.shard_count = range_.count;
  claim.worker = options_.worker_id;
  claim.claimed_at = claim.heartbeat_at = wall_clock_seconds();
  if (!try_acquire_claim(claim_path, claim)) {
    out.status = Outcome::Status::kShardBusy;
    out.resumed = checkpointed;
    return out;
  }

  // Only drop the claim if it is still ours: a touch_claim failure means
  // the coordinator reassigned the shard, and deleting the *new* owner's
  // claim here would let a third worker pile onto the same shard file.
  const auto release_if_owned = [&] {
    try {
      if (load_claim(claim_path).worker == options_.worker_id)
        release_claim(claim_path);
    } catch (const std::runtime_error&) {
      // Missing or torn claim: nothing of ours to release.
    }
  };

  try {
    // The session truncates a partial trailing record on open — a mutation
    // of the shard file, which is why it happens only under the claim.
    runner::SweepSession::Options session_options;
    session_options.num_threads = options_.num_threads;
    session_options.cell_begin = range_.begin;
    session_options.cell_end = range_.end;
    if (!options_.cache_dir.empty()) {
      session_options.cache =
          std::make_shared<runner::CellCache>(options_.cache_dir);
      session_options.order = runner::SweepSession::SubmitOrder::kCost;
    }
    session_options.on_cell_done = [&](const runner::ScenarioProgress& p) {
      // Heartbeat after every checkpointed cell; throws (aborting the
      // sweep) if the shard was reassigned out from under us.
      touch_claim(claim_path, claim, p.done);
      if (options_.on_cell_done) options_.on_cell_done(p);
    };
    runner::SweepManifest manifest = runner::load_manifest(manifest_path_);
    if (!options_.queue_engine.empty())
      manifest.queue_engine = options_.queue_engine;
    if (!options_.hotpath_engine.empty())
      manifest.hotpath_engine = options_.hotpath_engine;
    runner::SweepSession session(std::move(manifest), out.results_path,
                                 session_options);
    out.resumed = session.completed_cells();
    out.ran = session.run(options_.limit);
    out.shard_complete = session.complete();
  } catch (...) {
    release_if_owned();
    throw;
  }
  release_if_owned();
  return out;
}

}  // namespace econcast::fabric
