// Linear program description: maximize c·x subject to row constraints and
// x >= 0. This is the substrate for the oracle throughput computations
// (P2), (P3) and the non-clique bounds of §IV — all of which are LPs with a
// linear number of variables (the paper's reduction of (P1)).
#ifndef ECONCAST_LP_PROBLEM_H
#define ECONCAST_LP_PROBLEM_H

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace econcast::lp {

enum class Relation { kLessEq, kEq, kGreaterEq };

/// One linear constraint: sum_i coeffs[i] * x_i  (rel)  rhs.
struct Constraint {
  std::vector<std::pair<std::size_t, double>> terms;  // sparse (index, coeff)
  Relation rel = Relation::kLessEq;
  double rhs = 0.0;
};

/// LP in "maximize" orientation over non-negative variables.
class Problem {
 public:
  explicit Problem(std::size_t num_vars);

  std::size_t num_vars() const noexcept { return num_vars_; }
  std::size_t num_constraints() const noexcept { return constraints_.size(); }

  /// Sets the objective coefficient of variable `var`.
  void set_objective(std::size_t var, double coeff);

  /// Adds a constraint from sparse terms. Repeated indices are summed.
  void add_constraint(std::vector<std::pair<std::size_t, double>> terms,
                      Relation rel, double rhs);

  /// Adds a dense-coefficient constraint (size must equal num_vars()).
  void add_constraint_dense(const std::vector<double>& coeffs, Relation rel,
                            double rhs);

  const std::vector<double>& objective() const noexcept { return objective_; }
  const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }

 private:
  std::size_t num_vars_;
  std::vector<double> objective_;
  std::vector<Constraint> constraints_;
};

}  // namespace econcast::lp

#endif  // ECONCAST_LP_PROBLEM_H
