// Dense two-phase primal simplex. Sized for this project's oracle LPs
// (hundreds of variables/constraints); uses Dantzig pricing with a Bland's
// rule fallback for anti-cycling.
#ifndef ECONCAST_LP_SIMPLEX_H
#define ECONCAST_LP_SIMPLEX_H

#include <cstddef>
#include <vector>

#include "lp/problem.h"

namespace econcast::lp {

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;  // primal values (size = num_vars) when optimal
};

struct SimplexOptions {
  double eps = 1e-9;              // pivot / feasibility tolerance
  std::size_t max_iterations = 0;  // 0 = automatic (50 * (m + n))
};

/// Solves the LP; `Solution.x` is meaningful only when status == kOptimal.
Solution solve(const Problem& problem, const SimplexOptions& options = {});

const char* to_string(SolveStatus status) noexcept;

}  // namespace econcast::lp

#endif  // ECONCAST_LP_SIMPLEX_H
