#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace econcast::lp {
namespace {

// Tableau layout: m rows (constraints) over columns
// [structural (n) | slack/surplus (s) | artificial (a) | rhs].
// Row operations keep rhs >= 0; basis_[r] is the basic column of row r.
class Tableau {
 public:
  Tableau(const Problem& p, const SimplexOptions& opt) : opt_(opt) {
    n_ = p.num_vars();
    m_ = p.num_constraints();

    // Count auxiliary columns.
    std::size_t slack = 0, artificial = 0;
    for (const auto& c : p.constraints()) {
      const double rhs_sign = c.rhs < 0.0 ? -1.0 : 1.0;
      Relation rel = c.rel;
      if (rhs_sign < 0.0) {  // normalize to rhs >= 0 by negating the row
        if (rel == Relation::kLessEq)
          rel = Relation::kGreaterEq;
        else if (rel == Relation::kGreaterEq)
          rel = Relation::kLessEq;
      }
      switch (rel) {
        case Relation::kLessEq:
          ++slack;
          break;
        case Relation::kGreaterEq:
          ++slack;  // surplus
          ++artificial;
          break;
        case Relation::kEq:
          ++artificial;
          break;
      }
    }
    slack_begin_ = n_;
    art_begin_ = n_ + slack;
    cols_ = n_ + slack + artificial;
    rhs_col_ = cols_;

    a_.assign(m_ * (cols_ + 1), 0.0);
    basis_.assign(m_, 0);

    std::size_t next_slack = slack_begin_;
    std::size_t next_art = art_begin_;
    for (std::size_t r = 0; r < m_; ++r) {
      const auto& c = p.constraints()[r];
      const double sign = c.rhs < 0.0 ? -1.0 : 1.0;
      Relation rel = c.rel;
      if (sign < 0.0) {
        if (rel == Relation::kLessEq)
          rel = Relation::kGreaterEq;
        else if (rel == Relation::kGreaterEq)
          rel = Relation::kLessEq;
      }
      for (const auto& [idx, coeff] : c.terms) at(r, idx) += sign * coeff;
      at(r, rhs_col_) = sign * c.rhs;
      switch (rel) {
        case Relation::kLessEq:
          at(r, next_slack) = 1.0;
          basis_[r] = next_slack++;
          break;
        case Relation::kGreaterEq:
          at(r, next_slack) = -1.0;
          ++next_slack;
          at(r, next_art) = 1.0;
          basis_[r] = next_art++;
          break;
        case Relation::kEq:
          at(r, next_art) = 1.0;
          basis_[r] = next_art++;
          break;
      }
    }
  }

  SolveStatus run(const std::vector<double>& objective, Solution& out) {
    const std::size_t max_iter =
        opt_.max_iterations ? opt_.max_iterations : 50 * (m_ + cols_ + 1);

    // ---- Phase 1: minimize sum of artificials (as maximize the negation).
    if (art_begin_ < cols_) {
      std::vector<double> cost(cols_, 0.0);
      for (std::size_t j = art_begin_; j < cols_; ++j) cost[j] = -1.0;
      build_objective_row(cost);
      const SolveStatus st = iterate(max_iter, /*allow_art=*/true);
      if (st != SolveStatus::kOptimal) return st;
      if (obj_value() < -opt_.eps * 100) return SolveStatus::kInfeasible;
      drive_artificials_out();
    }

    // ---- Phase 2: maximize the true objective over structural columns.
    std::vector<double> cost(cols_, 0.0);
    for (std::size_t j = 0; j < n_; ++j) cost[j] = objective[j];
    build_objective_row(cost);
    const SolveStatus st = iterate(max_iter, /*allow_art=*/false);
    if (st != SolveStatus::kOptimal) return st;

    out.x.assign(n_, 0.0);
    for (std::size_t r = 0; r < m_; ++r)
      if (basis_[r] < n_) out.x[basis_[r]] = at(r, rhs_col_);
    out.objective = obj_value();
    return SolveStatus::kOptimal;
  }

 private:
  double& at(std::size_t r, std::size_t c) noexcept {
    return a_[r * (cols_ + 1) + c];
  }
  double at(std::size_t r, std::size_t c) const noexcept {
    return a_[r * (cols_ + 1) + c];
  }

  // Reduced-cost row z_ (length cols_+1): z_[j] = c_B B^-1 A_j - c_j, stored
  // so that a column with z_[j] < -eps improves the (maximization) objective.
  void build_objective_row(const std::vector<double>& cost) {
    cost_ = cost;
    z_.assign(cols_ + 1, 0.0);
    for (std::size_t j = 0; j <= cols_; ++j) {
      double v = j < cols_ ? -cost[j] : 0.0;
      for (std::size_t r = 0; r < m_; ++r) v += cost_[basis_[r]] * at(r, j);
      z_[j] = v;
    }
  }

  double obj_value() const noexcept { return z_[rhs_col_]; }

  SolveStatus iterate(std::size_t max_iter, bool allow_art) {
    bool bland = false;
    std::size_t stall = 0;
    for (std::size_t iter = 0; iter < max_iter; ++iter) {
      // Entering column: most negative reduced cost (Dantzig) or first
      // negative (Bland, once stalling is detected).
      const std::size_t limit = allow_art ? cols_ : art_begin_;
      std::size_t enter = cols_;
      double best = -opt_.eps;
      for (std::size_t j = 0; j < limit; ++j) {
        if (z_[j] < best) {
          best = z_[j];
          enter = j;
          if (bland) break;
        }
      }
      if (enter == cols_) return SolveStatus::kOptimal;

      // Leaving row: minimum ratio test (Bland tie-break on basis index).
      std::size_t leave = m_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < m_; ++r) {
        const double col = at(r, enter);
        if (col > opt_.eps) {
          const double ratio = at(r, rhs_col_) / col;
          if (ratio < best_ratio - opt_.eps ||
              (ratio < best_ratio + opt_.eps &&
               (leave == m_ || basis_[r] < basis_[leave]))) {
            best_ratio = ratio;
            leave = r;
          }
        }
      }
      if (leave == m_) return SolveStatus::kUnbounded;

      if (best_ratio < opt_.eps) {
        if (++stall > m_ + cols_) bland = true;  // degenerate: anti-cycle
      } else {
        stall = 0;
        bland = false;
      }
      pivot(leave, enter);
    }
    return SolveStatus::kIterationLimit;
  }

  void pivot(std::size_t row, std::size_t col) {
    const double p = at(row, col);
    for (std::size_t j = 0; j <= cols_; ++j) at(row, j) /= p;
    at(row, col) = 1.0;  // exact
    for (std::size_t r = 0; r < m_; ++r) {
      if (r == row) continue;
      const double f = at(r, col);
      if (f == 0.0) continue;
      for (std::size_t j = 0; j <= cols_; ++j) at(r, j) -= f * at(row, j);
      at(r, col) = 0.0;  // exact
    }
    const double fz = z_[col];
    if (fz != 0.0) {
      for (std::size_t j = 0; j <= cols_; ++j) z_[j] -= fz * at(row, j);
      z_[col] = 0.0;
    }
    basis_[row] = col;
  }

  // After phase 1, pivot any artificial still in the basis (at value ~0) out
  // on a structural/slack column, so phase 2 never re-enters artificials.
  void drive_artificials_out() {
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] < art_begin_) continue;
      std::size_t col = cols_;
      for (std::size_t j = 0; j < art_begin_; ++j) {
        if (std::abs(at(r, j)) > opt_.eps) {
          col = j;
          break;
        }
      }
      if (col != cols_) pivot(r, col);
      // If no eligible column exists the row is redundant (all-zero over
      // structurals with zero rhs); the artificial stays basic at zero,
      // which is harmless because phase 2 never prices artificial columns.
    }
  }

  SimplexOptions opt_;
  std::size_t n_ = 0, m_ = 0, cols_ = 0;
  std::size_t slack_begin_ = 0, art_begin_ = 0, rhs_col_ = 0;
  std::vector<double> a_;       // m x (cols_+1) row-major tableau
  std::vector<double> z_;       // reduced-cost row
  std::vector<double> cost_;    // current cost vector (over all columns)
  std::vector<std::size_t> basis_;
};

}  // namespace

Solution solve(const Problem& problem, const SimplexOptions& options) {
  Solution out;
  if (problem.num_constraints() == 0) {
    // Unconstrained over x >= 0: bounded only if all objective coeffs <= 0.
    const auto& c = problem.objective();
    const bool unbounded =
        std::any_of(c.begin(), c.end(), [&](double v) { return v > options.eps; });
    out.status = unbounded ? SolveStatus::kUnbounded : SolveStatus::kOptimal;
    out.objective = 0.0;
    out.x.assign(problem.num_vars(), 0.0);
    return out;
  }
  Tableau tableau(problem, options);
  out.status = tableau.run(problem.objective(), out);
  return out;
}

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "unknown";
}

}  // namespace econcast::lp
