#include "lp/problem.h"

#include <stdexcept>

namespace econcast::lp {

Problem::Problem(std::size_t num_vars)
    : num_vars_(num_vars), objective_(num_vars, 0.0) {
  if (num_vars == 0) throw std::invalid_argument("LP with zero variables");
}

void Problem::set_objective(std::size_t var, double coeff) {
  if (var >= num_vars_) throw std::out_of_range("objective variable index");
  objective_[var] = coeff;
}

void Problem::add_constraint(
    std::vector<std::pair<std::size_t, double>> terms, Relation rel,
    double rhs) {
  for (const auto& [idx, coeff] : terms) {
    (void)coeff;
    if (idx >= num_vars_) throw std::out_of_range("constraint variable index");
  }
  constraints_.push_back(Constraint{std::move(terms), rel, rhs});
}

void Problem::add_constraint_dense(const std::vector<double>& coeffs,
                                   Relation rel, double rhs) {
  if (coeffs.size() != num_vars_)
    throw std::invalid_argument("dense constraint width mismatch");
  std::vector<std::pair<std::size_t, double>> terms;
  for (std::size_t i = 0; i < coeffs.size(); ++i)
    if (coeffs[i] != 0.0) terms.emplace_back(i, coeffs[i]);
  constraints_.push_back(Constraint{std::move(terms), rel, rhs});
}

}  // namespace econcast::lp
