// Lazy-evaluated energy storage: level(t) = level(t0) + (harvest - draw)·(t-t0)
// between change points. Models the paper's b_i(t) (battery/capacitor charge)
// and, with `min_level = 0`, a storage that cannot go negative (testbed).
#ifndef ECONCAST_SIM_ENERGY_H
#define ECONCAST_SIM_ENERGY_H

#include <cstddef>
#include <limits>

#include "sim/arena.h"

namespace econcast::sim {

class EnergyStore {
 public:
  /// harvest_rate: the node's power budget ρ (inflow). initial_level: b(0).
  EnergyStore(double harvest_rate, double initial_level = 0.0) noexcept
      : harvest_(harvest_rate), level_(initial_level) {}

  /// Changes the instantaneous draw (state change). Settles the balance
  /// first; `now` must be non-decreasing across calls.
  void set_draw(double draw, double now) noexcept;

  /// Storage level at `now` (>= last settle point), with clamping applied.
  double level(double now) const noexcept;

  /// Total energy consumed (integral of draw) up to `now`.
  double consumed(double now) const noexcept;

  /// Optional clamping bounds (default: unbounded, the paper's idealized
  /// virtual battery). With a lower bound, deficit beyond the bound is lost
  /// (the node browns out); with an upper bound, surplus harvest is wasted
  /// (capacitor full). Clamping is applied at settle points, so set bounds
  /// before the first set_draw.
  void set_bounds(double min_level, double max_level) noexcept;

  double harvest_rate() const noexcept { return harvest_; }
  double draw() const noexcept { return draw_; }

 private:
  void settle(double now) noexcept;

  double harvest_;
  double draw_ = 0.0;
  double level_;
  double consumed_ = 0.0;
  double last_ = 0.0;
  double min_ = -std::numeric_limits<double>::infinity();
  double max_ = std::numeric_limits<double>::infinity();
};

/// Struct-of-arrays EnergyStore for a whole node population: the per-node
/// balances live in parallel (optionally arena-backed) arrays, so the
/// simulation inner loops touch one dense double per node instead of a
/// scattered 7-field struct. The arithmetic is field-for-field identical to
/// EnergyStore — same settle/clamp expressions in the same order — so a
/// ledger slot and a store fed the same call sequence stay bit-equal (the
/// unit tests assert this).
class EnergyLedger {
 public:
  explicit EnergyLedger(Arena* arena = nullptr);

  void reserve(std::size_t n);
  /// Appends a node; returns its index.
  std::size_t add(double harvest_rate, double initial_level);
  std::size_t size() const noexcept { return harvest_.size(); }

  /// Changes the instantaneous draw (state change). Settles the balance
  /// first; `now` must be non-decreasing across calls on the same slot.
  void set_draw(std::size_t i, double draw, double now) noexcept;

  /// Storage level at `now` (>= last settle point), with clamping applied.
  double level(std::size_t i, double now) const noexcept;

  /// Total energy consumed (integral of draw) up to `now`.
  double consumed(std::size_t i, double now) const noexcept;

  /// See EnergyStore::set_bounds.
  void set_bounds(std::size_t i, double min_level, double max_level) noexcept;

  double harvest_rate(std::size_t i) const noexcept { return harvest_[i]; }
  double draw(std::size_t i) const noexcept { return draw_[i]; }

 private:
  ArenaVector<double> harvest_;
  ArenaVector<double> draw_;
  ArenaVector<double> level_;
  ArenaVector<double> consumed_;
  ArenaVector<double> last_;
  ArenaVector<double> min_;
  ArenaVector<double> max_;
};

}  // namespace econcast::sim

#endif  // ECONCAST_SIM_ENERGY_H
