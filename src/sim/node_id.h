// The one node-id type of the simulation substrate. model::Topology is
// addressed with std::size_t; the event queue and the channel narrow once at
// that boundary and stay on a 32-bit id thereafter — 4 bytes per slot is
// what keeps the hot per-node arrays (listener locks, event slots) dense.
#ifndef ECONCAST_SIM_NODE_ID_H
#define ECONCAST_SIM_NODE_ID_H

#include <cstdint>

namespace econcast::sim {

using NodeId = std::uint32_t;

/// Sentinel "no node" (e.g. a listener locked onto no transmitter).
inline constexpr NodeId kNoNode = ~NodeId{0};

}  // namespace econcast::sim

#endif  // ECONCAST_SIM_NODE_ID_H
