// Future-event list for the continuous-time simulator. Events are typed and
// carry a validity stamp so holders can invalidate scheduled transitions in
// O(1) (lazy deletion) when exponential rates change — re-sampling is valid
// because of memorylessness.
#ifndef ECONCAST_SIM_EVENT_QUEUE_H
#define ECONCAST_SIM_EVENT_QUEUE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace econcast::sim {

enum class EventKind : std::uint8_t {
  kTransition,      // a node's next sleep/listen/transmit state change
  kPacketEnd,       // end of the packet currently on the air
  kIntervalEnd,     // end of a node's multiplier-update interval τ_k
  kPingSlot,        // testbed: a scheduled ping inside the ping interval
  kEnergyDepleted,  // energy guard: storage hit the floor / refill reached
  kCustom,          // protocol-specific
};

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  // FIFO tie-break for identical times
  EventKind kind = EventKind::kCustom;
  std::uint32_t node = 0;
  std::uint64_t stamp = 0;  // validity token (kTransition, kPingSlot)
};

/// Min-heap on (time, seq). seq is assigned by push order, making the
/// simulation fully deterministic for a fixed seed.
///
/// Backed by a plain std::vector + std::push_heap/pop_heap rather than
/// std::priority_queue so callers can `reserve` capacity up front: the live
/// event count is bounded by a few events per node, but without a reserve
/// the vector reallocates several times during ramp-up of every run — churn
/// that is measurable in the N >= 64 regime (bench_micro's
/// BM_EventQueuePushPop quantifies it). Pop order is a strict total order on
/// (time, seq), so the heap implementation cannot affect simulation results.
class EventQueue {
 public:
  void push(double time, EventKind kind, std::uint32_t node,
            std::uint64_t stamp = 0);
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  const Event& top() const { return heap_.front(); }
  Event pop();
  void clear();
  /// Pre-allocates capacity for `n` simultaneously pending events.
  void reserve(std::size_t n) { heap_.reserve(n); }
  std::size_t capacity() const noexcept { return heap_.capacity(); }
  std::uint64_t pushed() const noexcept { return next_seq_; }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace econcast::sim

#endif  // ECONCAST_SIM_EVENT_QUEUE_H
