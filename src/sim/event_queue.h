// Future-event list for the continuous-time simulators — a pluggable kernel.
//
// `EventQueue` is a thin facade over two interchangeable backends:
//
//   * kBinaryHeap — std::push_heap/pop_heap over a reservable vector; the
//     reference implementation (the seed's behavior, kept as the oracle the
//     calendar backend is differentially tested against).
//   * kCalendar — a calendar queue: direct-mapped time buckets plus an
//     overflow ladder for events beyond the current "year". Tuned for this
//     codebase's workload (a few live events per node, bounded horizon),
//     where push and pop are O(1) amortized instead of O(log n); the year is
//     re-laid over the overflow ladder when it drains, with the bucket width
//     re-estimated from the live population each time.
//
// Both backends guarantee the same strict total pop order on (time, seq) —
// seq is assigned by push order — so the backend choice can never change
// simulation results; it only changes how fast they are computed.
//
// Cancellation is owned by the queue: `schedule()` enters a *cancellable*
// event bound to the current generation of its (node, kind) slot and bumps
// that generation (so at most one scheduled event per slot is ever live),
// `cancel()` bumps the generation without entering anything, and stale
// events are pruned lazily when they surface at the head — the classic
// lazy-deletion scheme that used to be hand-rolled with validity stamps in
// proto::Simulation and testbed::run_testbed. Re-sampling on cancel is
// statistically valid because the sojourn times are exponential
// (memorylessness). `push()` enters a durable event that no cancellation
// affects. All staleness bookkeeping lives in the facade, so the
// instrumentation counters (pushes, pops, stale drops, peak live events)
// are backend-independent by construction.
//
// Lazy deletion alone lets cancelled far-future events pile up: a sleeping
// node's wake-up can sit orders of magnitude past the horizon, get
// superseded thousands of times, and every stale copy stays stored because
// it never surfaces at the head. The facade therefore tracks the exact live
// count (at most one scheduled event per (node, kind) slot plus the durable
// events) and, when stale entries outnumber live ones, compacts the backend
// in place — filtering the stale events out and restoring the backend's
// invariants. The trigger depends only on the operation sequence, never on
// wall time, so compaction is deterministic, identical across backends, and
// invisible in the pop order (it only removes events that could never be
// delivered); the pruned events count into stale_drops exactly as if they
// had surfaced.
#ifndef ECONCAST_SIM_EVENT_QUEUE_H
#define ECONCAST_SIM_EVENT_QUEUE_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "sim/arena.h"
#include "sim/node_id.h"

namespace econcast::sim {

enum class EventKind : std::uint8_t {
  kTransition,      // a node's next sleep/listen/transmit state change
  kPacketEnd,       // end of the packet currently on the air
  kIntervalEnd,     // end of a node's multiplier-update interval τ_k
  kPingSlot,        // testbed: a scheduled ping inside the ping interval
  kEnergyDepleted,  // energy guard: storage hit the floor / refill reached
  kCustom,          // protocol-specific
};

/// Number of EventKind values; sizes the per-(node, kind) generation table.
inline constexpr std::size_t kEventKindCount = 6;

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  // FIFO tie-break for identical times
  EventKind kind = EventKind::kCustom;
  bool cancellable = false;  // entered via schedule() rather than push()
  NodeId node = 0;
  std::uint64_t stamp = 0;  // queue generation (cancellable events only)
};

/// The strict total order both backends pop in: earliest time first, push
/// order (seq) breaking ties. `operator()(a, b)` is "a pops later than b".
struct EventLater {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Backend selection. kBinaryHeap is the reference; kCalendar is the
/// O(1)-amortized bucket queue for the N >= 64 regime.
enum class QueueEngine : std::uint8_t { kBinaryHeap, kCalendar };

/// "binary-heap" / "calendar" — the wire/CLI token of an engine.
const char* to_token(QueueEngine engine) noexcept;

/// Inverse of to_token. Throws std::invalid_argument (with the offending
/// token named) for anything else.
QueueEngine queue_engine_from_token(const std::string& token);

/// Instrumentation counters, identical across backends for identical call
/// sequences (staleness is resolved in the facade, in pop order).
struct QueueStats {
  std::uint64_t pushes = 0;       // push() + schedule() calls that entered
  std::uint64_t pops = 0;         // live events handed to the caller
  std::uint64_t stale_drops = 0;  // cancelled events pruned (head or compact)
  std::size_t peak_live = 0;      // high-water mark of stored events
};

class EventQueueBackend;  // internal; defined in event_queue.cpp

class EventQueue {
 public:
  /// With an arena, event storage and the generation table are arena-backed
  /// (the arena must outlive the queue and any queue moved-from it).
  explicit EventQueue(QueueEngine engine = QueueEngine::kBinaryHeap,
                      Arena* arena = nullptr);
  ~EventQueue();
  EventQueue(EventQueue&&) noexcept;
  EventQueue& operator=(EventQueue&&) noexcept;

  QueueEngine engine() const noexcept { return engine_; }

  /// The shared capacity policy for simulators whose live event count is
  /// bounded by a few events per node (pending transition, interval end,
  /// the packet on the air, energy-guard wakeups, a warmup snapshot).
  static constexpr std::size_t capacity_for_nodes(std::size_t n) noexcept {
    return 4 * n + 8;
  }

  /// Pre-sizes the queue for an `n`-node simulation: event storage per
  /// capacity_for_nodes plus the (node, kind) generation table. Both
  /// proto::Simulation and testbed::run_testbed call this instead of
  /// hand-picking constants.
  void reserve_for_nodes(std::size_t n);

  /// Enters a durable event: it stays live until popped.
  void push(double time, EventKind kind, NodeId node);

  /// Enters a cancellable event, implicitly cancelling any live event
  /// previously scheduled for the same (node, kind) — at most one scheduled
  /// event per slot is live at any time.
  void schedule(double time, EventKind kind, NodeId node);

  /// Invalidates the live scheduled event for (node, kind), if any. O(1):
  /// the event itself is pruned lazily when it reaches the head.
  void cancel(NodeId node, EventKind kind);

  /// Prunes cancelled events off the head; true when no live event remains.
  bool empty();
  /// The earliest live event. Throws std::logic_error when empty().
  const Event& top();
  /// Removes and returns the earliest live event. Throws std::logic_error
  /// when empty().
  Event pop();

  void clear();
  /// Pre-allocates storage for `n` simultaneously pending events.
  void reserve(std::size_t n);
  std::size_t capacity() const noexcept;
  /// Stored events, including cancelled ones not yet pruned.
  std::size_t size() const noexcept;

  const QueueStats& stats() const noexcept { return stats_; }

 private:
  /// Below this stored-event count compaction is never attempted; keeps the
  /// unit-test-scale call sequences (and their exact counter expectations)
  /// on the pure lazy-deletion path.
  static constexpr std::size_t kCompactionFloor = 64;

  std::size_t slot(NodeId node, EventKind kind);
  std::uint64_t& generation(NodeId node, EventKind kind);
  bool stale(const Event& e) const noexcept;
  /// Prunes stale events at the head; nullptr when no live event remains.
  const Event* peek_live();
  /// Compacts the backend when stale entries outnumber live ones.
  void maybe_compact();

  QueueEngine engine_;
  std::unique_ptr<EventQueueBackend> backend_;
  ArenaVector<std::uint64_t> generations_;  // node-major, kEventKindCount wide
  ArenaVector<std::uint8_t> slot_live_;     // 1 iff the slot's scheduled
                                            // event is stored and live
  std::size_t live_ = 0;                    // live stored events, exact
  std::uint64_t next_seq_ = 0;
  QueueStats stats_;
};

}  // namespace econcast::sim

#endif  // ECONCAST_SIM_EVENT_QUEUE_H
