// Future-event list for the continuous-time simulator. Events are typed and
// carry a validity stamp so holders can invalidate scheduled transitions in
// O(1) (lazy deletion) when exponential rates change — re-sampling is valid
// because of memorylessness.
#ifndef ECONCAST_SIM_EVENT_QUEUE_H
#define ECONCAST_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <queue>
#include <vector>

namespace econcast::sim {

enum class EventKind : std::uint8_t {
  kTransition,      // a node's next sleep/listen/transmit state change
  kPacketEnd,       // end of the packet currently on the air
  kIntervalEnd,     // end of a node's multiplier-update interval τ_k
  kPingSlot,        // testbed: a scheduled ping inside the ping interval
  kEnergyDepleted,  // energy guard: storage hit the floor / refill reached
  kCustom,          // protocol-specific
};

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  // FIFO tie-break for identical times
  EventKind kind = EventKind::kCustom;
  std::uint32_t node = 0;
  std::uint64_t stamp = 0;  // validity token (kTransition, kPingSlot)
};

/// Min-heap on (time, seq). seq is assigned by push order, making the
/// simulation fully deterministic for a fixed seed.
class EventQueue {
 public:
  void push(double time, EventKind kind, std::uint32_t node,
            std::uint64_t stamp = 0);
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  const Event& top() const { return heap_.top(); }
  Event pop();
  void clear();
  std::uint64_t pushed() const noexcept { return next_seq_; }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace econcast::sim

#endif  // ECONCAST_SIM_EVENT_QUEUE_H
