// AVX2 tier of the event-queue kernels. Compiled with -mavx2 for this
// translation unit only; reached only through the runtime dispatch in
// event_kernels.cpp after a cpuid check. Events are 32 bytes — exactly four
// qwords — so the scans gather lane-strided qwords: q0 = time, q1 = seq,
// q2 = kind | cancellable << 8 | node << 32, q3 = stamp (layout pinned by
// the static_asserts in event_kernels.h).
#if ECONCAST_HAVE_AVX2

#include <immintrin.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "sim/event_kernels.h"

namespace econcast::sim::event_kernels::detail {

namespace {
/// Gather byte offsets {0, 32, 64, 96} in units of the scale-8 index.
inline __m256i stride4() noexcept { return _mm256_setr_epi64x(0, 4, 8, 12); }
}  // namespace

MinScanResult min_scan_avx2(const Event* events, std::size_t n) noexcept {
  // Tiny buckets do not amortize the gathers; NaN in element 0 pins the
  // scalar result there (a NaN never loses its best slot) — both cases go
  // to the reference loop, which the tiers must agree with anyway.
  if (n < 8 || std::isnan(events[0].time))
    return min_scan_scalar(events, n);

  const __m256i qoff = stride4();
  const __m256i four = _mm256_set1_epi64x(4);
  __m256d bt = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  __m256i bs = _mm256_set1_epi64x(std::numeric_limits<std::int64_t>::max());
  __m256i bidx = _mm256_set1_epi64x(-1);
  __m256i lane = _mm256_setr_epi64x(0, 1, 2, 3);
  __m256d lo = _mm256_set1_pd(events[0].time);
  __m256d hi = lo;

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const auto* p = reinterpret_cast<const long long*>(events + i);
    const __m256d t =
        _mm256_i64gather_pd(reinterpret_cast<const double*>(p), qoff, 8);
    const __m256i seq = _mm256_i64gather_epi64(p + 1, qoff, 8);
    // Strictly earlier in (time, seq) displaces the lane best — the exact
    // EventLater predicate. seq < 2^63 (a push counter), so the signed
    // compare orders it correctly; NaN times fail both compares and never
    // win a lane.
    const __m256d lt = _mm256_cmp_pd(t, bt, _CMP_LT_OQ);
    const __m256d eq = _mm256_cmp_pd(t, bt, _CMP_EQ_OQ);
    const __m256d slt = _mm256_castsi256_pd(_mm256_cmpgt_epi64(bs, seq));
    const __m256d win = _mm256_or_pd(lt, _mm256_and_pd(eq, slt));
    const __m256i wini = _mm256_castpd_si256(win);
    bt = _mm256_blendv_pd(bt, t, win);
    bs = _mm256_blendv_epi8(bs, seq, wini);
    bidx = _mm256_blendv_epi8(bidx, lane, wini);
    lane = _mm256_add_epi64(lane, four);
    lo = _mm256_blendv_pd(lo, t, _mm256_cmp_pd(t, lo, _CMP_LT_OQ));
    hi = _mm256_blendv_pd(hi, t, _mm256_cmp_pd(t, hi, _CMP_GT_OQ));
  }

  alignas(32) double bt_a[4], lo_a[4], hi_a[4];
  alignas(32) std::int64_t bs_a[4], bi_a[4];
  _mm256_store_pd(bt_a, bt);
  _mm256_store_pd(lo_a, lo);
  _mm256_store_pd(hi_a, hi);
  _mm256_store_si256(reinterpret_cast<__m256i*>(bs_a), bs);
  _mm256_store_si256(reinterpret_cast<__m256i*>(bi_a), bidx);

  // Horizontal fold with the same predicate, then the scalar tail. The
  // (time, seq) order is strict and total over the non-NaN events, so the
  // unique minimum survives any fold order.
  MinScanResult r;
  r.lo = lo_a[0];
  r.hi = hi_a[0];
  double best_t = std::numeric_limits<double>::infinity();
  std::uint64_t best_s = std::numeric_limits<std::int64_t>::max();
  std::size_t best = 0;
  bool have_best = false;
  for (int j = 0; j < 4; ++j) {
    if (lo_a[j] < r.lo) r.lo = lo_a[j];
    if (hi_a[j] > r.hi) r.hi = hi_a[j];
    if (bi_a[j] < 0) continue;  // lane never won (NaN-saturated)
    const auto s = static_cast<std::uint64_t>(bs_a[j]);
    if (bt_a[j] < best_t || (bt_a[j] == best_t && s < best_s)) {
      best_t = bt_a[j];
      best_s = s;
      best = static_cast<std::size_t>(bi_a[j]);
      have_best = true;
    }
  }
  if (!have_best) return min_scan_scalar(events, n);  // all-NaN block run
  for (; i < n; ++i) {
    const double t = events[i].time;
    if (t < best_t || (t == best_t && events[i].seq < best_s)) {
      best_t = t;
      best_s = events[i].seq;
      best = i;
    }
    if (t < r.lo) r.lo = t;
    if (t > r.hi) r.hi = t;
  }
  r.best = best;
  return r;
}

void time_bounds_avx2(const Event* events, std::size_t n, double& lo,
                      double& hi) noexcept {
  if (n < 8) return time_bounds_scalar(events, n, lo, hi);
  const __m256i qoff = stride4();
  __m256d vlo = _mm256_set1_pd(events[0].time);
  __m256d vhi = vlo;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d t = _mm256_i64gather_pd(
        reinterpret_cast<const double*>(events + i), qoff, 8);
    vlo = _mm256_blendv_pd(vlo, t, _mm256_cmp_pd(t, vlo, _CMP_LT_OQ));
    vhi = _mm256_blendv_pd(vhi, t, _mm256_cmp_pd(t, vhi, _CMP_GT_OQ));
  }
  alignas(32) double lo_a[4], hi_a[4];
  _mm256_store_pd(lo_a, vlo);
  _mm256_store_pd(hi_a, vhi);
  double t_min = lo_a[0], t_max = hi_a[0];
  for (int j = 1; j < 4; ++j) {
    if (lo_a[j] < t_min) t_min = lo_a[j];
    if (hi_a[j] > t_max) t_max = hi_a[j];
  }
  for (; i < n; ++i) {
    if (events[i].time < t_min) t_min = events[i].time;
    if (events[i].time > t_max) t_max = events[i].time;
  }
  lo = t_min;
  hi = t_max;
}

std::size_t partition_stale_avx2(Event* events, std::size_t n,
                                 const std::uint64_t* generations,
                                 std::size_t slot_count) noexcept {
  (void)slot_count;
  static_assert(kEventKindCount == 6,
                "slot arithmetic below hardcodes node * 6 + kind");
  const __m256i qoff = stride4();
  const __m256i ff = _mm256_set1_epi64x(0xFF);
  std::size_t w = 0;
  std::size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const auto* p = reinterpret_cast<const long long*>(events + r);
    const __m256i q2 = _mm256_i64gather_epi64(p + 2, qoff, 8);
    const __m256i stamp = _mm256_i64gather_epi64(p + 3, qoff, 8);
    const __m256i canc = _mm256_and_si256(_mm256_srli_epi64(q2, 8), ff);
    const __m256i cm = _mm256_cmpgt_epi64(canc, _mm256_setzero_si256());
    const __m256i node = _mm256_srli_epi64(q2, 32);
    const __m256i kind = _mm256_and_si256(q2, ff);
    const __m256i slot = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_slli_epi64(node, 2),
                         _mm256_slli_epi64(node, 1)),
        kind);
    // Masked gather: the generation is only defined (and only in bounds)
    // for cancellable events; other lanes read nothing.
    const __m256i gens = _mm256_mask_i64gather_epi64(
        _mm256_setzero_si256(),
        reinterpret_cast<const long long*>(generations), slot, cm, 8);
    const __m256i fresh = _mm256_cmpeq_epi64(stamp, gens);
    const __m256i stale = _mm256_andnot_si256(fresh, cm);
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(stale));
    if (mask == 0) {  // common case: keep all four, order preserved
      if (w != r)
        for (int j = 0; j < 4; ++j) events[w + j] = events[r + j];
      w += 4;
    } else {
      for (int j = 0; j < 4; ++j) {
        if (mask & (1 << j)) continue;
        if (w != r + static_cast<std::size_t>(j))
          events[w] = events[r + static_cast<std::size_t>(j)];
        ++w;
      }
    }
  }
  for (; r < n; ++r) {
    const Event& e = events[r];
    if (e.cancellable) {
      const std::size_t slot =
          static_cast<std::size_t>(e.node) * kEventKindCount +
          static_cast<std::size_t>(e.kind);
      if (e.stamp != generations[slot]) continue;
    }
    if (w != r) events[w] = e;
    ++w;
  }
  return n - w;
}

}  // namespace econcast::sim::event_kernels::detail

#endif  // ECONCAST_HAVE_AVX2
