// Measurement side of the simulator: throughput integrators (Definitions
// 1-2), burst-length statistics (§VII-D / Appendix E) and the inter-burst
// latency tracker (§VII-D). A warmup boundary lets callers discard the
// adaptation transient.
#ifndef ECONCAST_SIM_METRICS_H
#define ECONCAST_SIM_METRICS_H

#include <cstdint>
#include <vector>

#include "util/stats.h"

namespace econcast::sim {

class MetricsCollector {
 public:
  explicit MetricsCollector(std::size_t num_nodes);

  /// Measurement starts at `time` (metrics before it are discarded).
  void start_measurement(double time) noexcept { start_time_ = time; }
  double start_time() const noexcept { return start_time_; }

  // --- packet / burst accounting -----------------------------------------
  /// One unit packet ended at `now` with `clean_receivers` receivers.
  void record_packet(double now, double duration,
                     std::uint32_t clean_receivers, std::uint32_t corrupted);

  /// A burst (back-to-back packets from one transmitter) ended at `now`.
  /// `received` is true when at least one packet had >= 1 clean receiver.
  void record_burst(double now, std::uint64_t packets, bool received);

  // --- per-receiver latency (gap between received bursts incl. sleep) ----
  /// Node started receiving a burst (locked its first clean packet).
  void receiver_burst_started(std::size_t node, double packet_start_time);
  /// Node finished a burst it had received packets of.
  void receiver_burst_ended(std::size_t node, double now);
  /// Node entered sleep state.
  void node_slept(std::size_t node) noexcept;

  // --- results -------------------------------------------------------------
  /// Groupput over [start, now]: received packet-time summed per receiver.
  double groupput(double now) const;
  /// Anyput over [start, now].
  double anyput(double now) const;

  const util::RunningStats& burst_lengths() const noexcept { return bursts_; }
  util::SampleSet& latencies() noexcept { return latencies_; }
  const util::SampleSet& latencies() const noexcept { return latencies_; }

  std::uint64_t packets_sent() const noexcept { return packets_sent_; }
  std::uint64_t packets_received() const noexcept { return packets_received_; }
  std::uint64_t corrupted_receptions() const noexcept { return corrupted_; }
  std::uint64_t burst_count() const noexcept { return burst_count_; }

 private:
  double start_time_ = 0.0;
  double group_credit_ = 0.0;
  double any_credit_ = 0.0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_received_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t burst_count_ = 0;
  util::RunningStats bursts_;
  util::SampleSet latencies_;

  struct ReceiverState {
    double last_burst_end = -1.0;  // <0: nothing received yet
    double current_burst_rx_start = -1.0;
    bool slept_since_last = false;
  };
  std::vector<ReceiverState> receivers_;
};

}  // namespace econcast::sim

#endif  // ECONCAST_SIM_METRICS_H
