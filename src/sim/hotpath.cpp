#include "sim/hotpath.h"

#include <stdexcept>

namespace econcast::sim {

std::string to_token(HotpathEngine engine) {
  switch (engine) {
    case HotpathEngine::kReference:
      return "reference";
    case HotpathEngine::kOptimized:
      return "optimized";
  }
  throw std::invalid_argument("unknown HotpathEngine value");
}

HotpathEngine hotpath_engine_from_token(const std::string& token) {
  if (token == "reference") return HotpathEngine::kReference;
  if (token == "optimized") return HotpathEngine::kOptimized;
  throw std::invalid_argument("unknown hot-path engine '" + token +
                              "' (expected 'reference' or 'optimized')");
}

}  // namespace econcast::sim
