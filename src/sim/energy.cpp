#include "sim/energy.h"

#include <algorithm>

namespace econcast::sim {

void EnergyStore::settle(double now) noexcept {
  const double dt = now - last_;
  if (dt > 0.0) {
    level_ = std::clamp(level_ + (harvest_ - draw_) * dt, min_, max_);
    consumed_ += draw_ * dt;
    last_ = now;
  }
}

void EnergyStore::set_draw(double draw, double now) noexcept {
  settle(now);
  draw_ = draw;
}

double EnergyStore::level(double now) const noexcept {
  const double dt = now - last_;
  return std::clamp(level_ + (harvest_ - draw_) * dt, min_, max_);
}

double EnergyStore::consumed(double now) const noexcept {
  const double dt = now - last_;
  return consumed_ + (dt > 0.0 ? draw_ * dt : 0.0);
}

void EnergyStore::set_bounds(double min_level, double max_level) noexcept {
  min_ = min_level;
  max_ = max_level;
}

}  // namespace econcast::sim
