#include "sim/energy.h"

#include <algorithm>

namespace econcast::sim {

void EnergyStore::settle(double now) noexcept {
  const double dt = now - last_;
  if (dt > 0.0) {
    level_ = std::clamp(level_ + (harvest_ - draw_) * dt, min_, max_);
    consumed_ += draw_ * dt;
    last_ = now;
  }
}

void EnergyStore::set_draw(double draw, double now) noexcept {
  settle(now);
  draw_ = draw;
}

double EnergyStore::level(double now) const noexcept {
  const double dt = now - last_;
  return std::clamp(level_ + (harvest_ - draw_) * dt, min_, max_);
}

double EnergyStore::consumed(double now) const noexcept {
  const double dt = now - last_;
  return consumed_ + (dt > 0.0 ? draw_ * dt : 0.0);
}

void EnergyStore::set_bounds(double min_level, double max_level) noexcept {
  min_ = min_level;
  max_ = max_level;
}

EnergyLedger::EnergyLedger(Arena* arena)
    : harvest_(ArenaAllocator<double>(arena)),
      draw_(ArenaAllocator<double>(arena)),
      level_(ArenaAllocator<double>(arena)),
      consumed_(ArenaAllocator<double>(arena)),
      last_(ArenaAllocator<double>(arena)),
      min_(ArenaAllocator<double>(arena)),
      max_(ArenaAllocator<double>(arena)) {}

void EnergyLedger::reserve(std::size_t n) {
  harvest_.reserve(n);
  draw_.reserve(n);
  level_.reserve(n);
  consumed_.reserve(n);
  last_.reserve(n);
  min_.reserve(n);
  max_.reserve(n);
}

std::size_t EnergyLedger::add(double harvest_rate, double initial_level) {
  const std::size_t i = harvest_.size();
  harvest_.push_back(harvest_rate);
  draw_.push_back(0.0);
  level_.push_back(initial_level);
  consumed_.push_back(0.0);
  last_.push_back(0.0);
  min_.push_back(-std::numeric_limits<double>::infinity());
  max_.push_back(std::numeric_limits<double>::infinity());
  return i;
}

void EnergyLedger::set_draw(std::size_t i, double draw, double now) noexcept {
  const double dt = now - last_[i];
  if (dt > 0.0) {
    level_[i] =
        std::clamp(level_[i] + (harvest_[i] - draw_[i]) * dt, min_[i], max_[i]);
    consumed_[i] += draw_[i] * dt;
    last_[i] = now;
  }
  draw_[i] = draw;
}

double EnergyLedger::level(std::size_t i, double now) const noexcept {
  const double dt = now - last_[i];
  return std::clamp(level_[i] + (harvest_[i] - draw_[i]) * dt, min_[i],
                    max_[i]);
}

double EnergyLedger::consumed(std::size_t i, double now) const noexcept {
  const double dt = now - last_[i];
  return consumed_[i] + (dt > 0.0 ? draw_[i] * dt : 0.0);
}

void EnergyLedger::set_bounds(std::size_t i, double min_level,
                              double max_level) noexcept {
  min_[i] = min_level;
  max_[i] = max_level;
}

}  // namespace econcast::sim
