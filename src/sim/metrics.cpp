#include "sim/metrics.h"

namespace econcast::sim {

MetricsCollector::MetricsCollector(std::size_t num_nodes)
    : receivers_(num_nodes) {}

void MetricsCollector::record_packet(double now, double duration,
                                     std::uint32_t clean_receivers,
                                     std::uint32_t corrupted) {
  if (now < start_time_) return;
  ++packets_sent_;
  packets_received_ += clean_receivers;
  corrupted_ += corrupted;
  group_credit_ += duration * static_cast<double>(clean_receivers);
  if (clean_receivers > 0) any_credit_ += duration;
}

void MetricsCollector::record_burst(double now, std::uint64_t packets,
                                    bool received) {
  if (now < start_time_) return;
  if (received) {
    ++burst_count_;
    bursts_.add(static_cast<double>(packets));
  }
}

void MetricsCollector::receiver_burst_started(std::size_t node,
                                              double packet_start_time) {
  auto& r = receivers_[node];
  if (r.current_burst_rx_start < 0.0)
    r.current_burst_rx_start = packet_start_time;
}

void MetricsCollector::receiver_burst_ended(std::size_t node, double now) {
  auto& r = receivers_[node];
  if (r.current_burst_rx_start >= 0.0) {
    // Latency = gap from the end of the previous received burst to the start
    // of this one, counted only when the node slept in between (§VII-D).
    if (r.last_burst_end >= 0.0 && r.slept_since_last &&
        now >= start_time_) {
      latencies_.add(r.current_burst_rx_start - r.last_burst_end);
    }
    r.last_burst_end = now;
    r.slept_since_last = false;
    r.current_burst_rx_start = -1.0;
  }
}

void MetricsCollector::node_slept(std::size_t node) noexcept {
  receivers_[node].slept_since_last = true;
}

double MetricsCollector::groupput(double now) const {
  const double window = now - start_time_;
  return window > 0.0 ? group_credit_ / window : 0.0;
}

double MetricsCollector::anyput(double now) const {
  const double window = now - start_time_;
  return window > 0.0 ? any_credit_ / window : 0.0;
}

}  // namespace econcast::sim
