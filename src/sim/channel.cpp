#include "sim/channel.h"

#include <stdexcept>

namespace econcast::sim {

Channel::Channel(const model::Topology& topology)
    : topo_(topology),
      listening_(topology.size(), 0),
      transmitting_(topology.size(), 0),
      busy_count_(topology.size(), 0),
      lock_tx_(topology.size(), -1),
      corrupt_(topology.size(), 0),
      toggled_flag_(topology.size(), 0) {}

void Channel::mark_toggled(std::size_t node) {
  if (!toggled_flag_[node]) {
    toggled_flag_[node] = 1;
    toggled_.push_back(node);
  }
}

void Channel::set_listening(std::size_t node, bool listening) {
  if (listening && transmitting_[node])
    throw std::logic_error("transmitting node cannot listen");
  listening_[node] = listening ? 1 : 0;
  if (!listening) {
    lock_tx_[node] = -1;
    corrupt_[node] = 0;
  }
}

bool Channel::is_listening(std::size_t node) const {
  return listening_[node] != 0;
}

void Channel::begin_burst(std::size_t tx) {
  if (transmitting_[tx]) throw std::logic_error("already transmitting");
  if (busy_count_[tx] > 0)
    throw std::logic_error("carrier sense violated: medium busy at tx");
  if (listening_[tx]) listening_[tx] = 0;  // leaves listen to transmit
  transmitting_[tx] = 1;
  ++active_tx_;
  for (const std::size_t j : topo_.neighbors(tx)) {
    if (++busy_count_[j] == 1) mark_toggled(j);
    // A second carrier corrupts any reception in progress at j.
    if (busy_count_[j] >= 2 && lock_tx_[j] != -1) corrupt_[j] = 1;
  }
}

void Channel::begin_packet(std::size_t tx) {
  if (!transmitting_[tx]) throw std::logic_error("begin_packet without burst");
  for (const std::size_t j : topo_.neighbors(tx)) {
    if (listening_[j] && busy_count_[j] == 1 && lock_tx_[j] == -1) {
      lock_tx_[j] = static_cast<int>(tx);
      corrupt_[j] = 0;
    }
  }
}

Channel::PacketOutcome Channel::end_packet(std::size_t tx) {
  if (!transmitting_[tx]) throw std::logic_error("end_packet without burst");
  PacketOutcome out;
  for (const std::size_t j : topo_.neighbors(tx)) {
    if (lock_tx_[j] == static_cast<int>(tx)) {
      if (corrupt_[j]) {
        ++out.corrupted;
      } else {
        out.clean_receivers.push_back(j);
      }
      lock_tx_[j] = -1;
      corrupt_[j] = 0;
    }
  }
  return out;
}

void Channel::end_burst(std::size_t tx) {
  if (!transmitting_[tx]) throw std::logic_error("end_burst without burst");
  transmitting_[tx] = 0;
  --active_tx_;
  for (const std::size_t j : topo_.neighbors(tx)) {
    if (--busy_count_[j] == 0) mark_toggled(j);
  }
}

bool Channel::busy_at(std::size_t node) const {
  return busy_count_[node] > 0;
}

bool Channel::is_transmitting(std::size_t node) const {
  return transmitting_[node] != 0;
}

int Channel::listening_neighbors(std::size_t node) const {
  int count = 0;
  for (const std::size_t j : topo_.neighbors(node)) count += listening_[j];
  return count;
}

std::vector<std::size_t> Channel::drain_toggled() {
  for (const std::size_t n : toggled_) toggled_flag_[n] = 0;
  std::vector<std::size_t> out;
  out.swap(toggled_);
  return out;
}

}  // namespace econcast::sim
