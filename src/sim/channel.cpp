#include "sim/channel.h"

#include <algorithm>
#include <stdexcept>

namespace econcast::sim {

Channel::Channel(const model::Topology& topology, Arena* arena,
                 HotpathEngine engine)
    : topo_(topology),
      engine_(engine),
      listening_(topology.size(), 0, ArenaAllocator<std::uint8_t>(arena)),
      transmitting_(topology.size(), 0, ArenaAllocator<std::uint8_t>(arena)),
      busy_count_(topology.size(), 0, ArenaAllocator<std::uint32_t>(arena)),
      listen_count_(topology.size(), 0, ArenaAllocator<std::uint32_t>(arena)),
      lock_tx_(topology.size(), kNoNode, ArenaAllocator<NodeId>(arena)),
      corrupt_(topology.size(), 0, ArenaAllocator<std::uint8_t>(arena)),
      toggled_flag_(topology.size(), 0, ArenaAllocator<std::uint8_t>(arena)),
      toggled_(ArenaAllocator<NodeId>(arena)),
      drained_(ArenaAllocator<NodeId>(arena)),
      outcome_(arena) {
  // The toggle set and the packet outcome are bounded by the node count and
  // the max degree; sizing them up front keeps the hot loop allocation-free.
  toggled_.reserve(topology.size());
  drained_.reserve(topology.size());
  std::size_t max_degree = 0;
  for (std::size_t i = 0; i < topology.size(); ++i)
    max_degree = std::max(max_degree, topology.neighbors(i).size());
  outcome_.clean_receivers.reserve(max_degree);
}

void Channel::mark_toggled(NodeId node) {
  if (!toggled_flag_[node]) {
    toggled_flag_[node] = 1;
    toggled_.push_back(node);
  }
}

void Channel::apply_listen_change(NodeId node, bool listening) {
  listening_[node] = listening ? 1 : 0;
  ++stats_.listen_toggles;
  if (engine_ == HotpathEngine::kOptimized) {
    if (listening) {
      for (const std::size_t j : topo_.neighbors(node)) ++listen_count_[j];
    } else {
      for (const std::size_t j : topo_.neighbors(node)) --listen_count_[j];
    }
  }
}

void Channel::set_listening(NodeId node, bool listening) {
  if (listening && transmitting_[node])
    throw std::logic_error("transmitting node cannot listen");
  if (static_cast<bool>(listening_[node]) != listening)
    apply_listen_change(node, listening);
  if (!listening) {
    lock_tx_[node] = kNoNode;
    corrupt_[node] = 0;
  }
}

bool Channel::is_listening(NodeId node) const {
  return listening_[node] != 0;
}

void Channel::begin_burst(NodeId tx) {
  if (transmitting_[tx]) throw std::logic_error("already transmitting");
  if (busy_count_[tx] > 0)
    throw std::logic_error("carrier sense violated: medium busy at tx");
  // Leaves listen to transmit. The lock is untouched: a locked listener is
  // necessarily busy, and busy nodes cannot reach here.
  if (listening_[tx]) apply_listen_change(tx, false);
  transmitting_[tx] = 1;
  ++active_tx_;
  for (const std::size_t j : topo_.neighbors(tx)) {
    if (++busy_count_[j] == 1) mark_toggled(static_cast<NodeId>(j));
    // A second carrier corrupts any reception in progress at j.
    if (busy_count_[j] >= 2 && lock_tx_[j] != kNoNode) corrupt_[j] = 1;
  }
}

void Channel::begin_packet(NodeId tx) {
  if (!transmitting_[tx]) throw std::logic_error("begin_packet without burst");
  for (const std::size_t j : topo_.neighbors(tx)) {
    if (listening_[j] && busy_count_[j] == 1 && lock_tx_[j] == kNoNode) {
      lock_tx_[j] = tx;
      corrupt_[j] = 0;
    }
  }
}

const Channel::PacketOutcome& Channel::end_packet(NodeId tx) {
  if (!transmitting_[tx]) throw std::logic_error("end_packet without burst");
  outcome_.clean_receivers.clear();
  outcome_.corrupted = 0;
  for (const std::size_t j : topo_.neighbors(tx)) {
    if (lock_tx_[j] == tx) {
      if (corrupt_[j]) {
        ++outcome_.corrupted;
      } else {
        outcome_.clean_receivers.push_back(static_cast<NodeId>(j));
      }
      lock_tx_[j] = kNoNode;
      corrupt_[j] = 0;
    }
  }
  return outcome_;
}

void Channel::end_burst(NodeId tx) {
  if (!transmitting_[tx]) throw std::logic_error("end_burst without burst");
  transmitting_[tx] = 0;
  --active_tx_;
  for (const std::size_t j : topo_.neighbors(tx)) {
    if (--busy_count_[j] == 0) mark_toggled(static_cast<NodeId>(j));
  }
}

bool Channel::busy_at(NodeId node) const {
  return busy_count_[node] > 0;
}

bool Channel::is_transmitting(NodeId node) const {
  return transmitting_[node] != 0;
}

int Channel::listening_neighbors(NodeId node) const {
  ++stats_.listener_queries;
  if (engine_ == HotpathEngine::kOptimized)
    return static_cast<int>(listen_count_[node]);
  return listening_neighbors_scan(node);
}

int Channel::listening_neighbors_scan(NodeId node) const {
  ++stats_.listener_scans;
  int count = 0;
  for (const std::size_t j : topo_.neighbors(node)) count += listening_[j];
  return count;
}

const ArenaVector<NodeId>& Channel::drain_toggled() {
  ++stats_.toggle_drains;
  for (const NodeId n : toggled_) toggled_flag_[n] = 0;
  drained_.swap(toggled_);
  toggled_.clear();
  return drained_;
}

}  // namespace econcast::sim
