// Per-scenario bump allocator. One Arena is owned by each simulation
// instance and backs its channel/queue/runtime vectors, so a sweep's worker
// threads allocate from thread-private chunks instead of contending on the
// global allocator — the layout changes nothing about what is computed, only
// where the bytes live.
//
// The arena is monotonic: allocate() bumps a pointer inside the current
// chunk and starts a new, geometrically larger chunk when it runs out;
// deallocation is a no-op (all memory is reclaimed at once when the Arena is
// destroyed, i.e. when the simulation ends). That is exactly the lifetime of
// a scenario's working set, and it is what makes the allocator safe to use
// behind std::vector: a vector that grows abandons its old block inside the
// arena, which wastes at most the geometric-growth constant.
//
// Not thread-safe by design — each simulation runs on one worker thread and
// owns its arena outright. Not movable: containers hold raw Arena pointers
// through their ArenaAllocator, so the arena must stay put for its lifetime
// (declare it before every arena-backed member so it is destroyed last).
#ifndef ECONCAST_SIM_ARENA_H
#define ECONCAST_SIM_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace econcast::sim {

class Arena {
 public:
  static constexpr std::size_t kDefaultFirstChunk = std::size_t{1} << 16;

  explicit Arena(std::size_t first_chunk_bytes = kDefaultFirstChunk) noexcept
      : next_chunk_bytes_(first_chunk_bytes ? first_chunk_bytes
                                            : kDefaultFirstChunk) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = delete;
  Arena& operator=(Arena&&) = delete;

  /// Returns `bytes` of storage aligned to `alignment` (a power of two).
  /// Never returns nullptr; throws std::bad_alloc when the chunk allocation
  /// itself fails.
  void* allocate(std::size_t bytes, std::size_t alignment);

  /// Cumulative accounting, surfaced through the hotpath_* counters.
  struct Stats {
    std::uint64_t bytes_allocated = 0;  // sum of all allocate() requests
    std::uint64_t bytes_reserved = 0;   // sum of chunk sizes
    std::uint64_t chunks = 0;           // chunk count
  };
  const Stats& stats() const noexcept { return stats_; }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
  };

  std::vector<Chunk> chunks_;
  std::size_t used_ = 0;  // bytes consumed in the current (last) chunk
  std::size_t next_chunk_bytes_;
  Stats stats_;
};

/// std::allocator-compatible handle onto an Arena. Default-constructed (or
/// null-arena) allocators fall back to the global heap, so arena-backed
/// container types stay usable in contexts that have no arena (tests,
/// copies that escape a simulation). Allocators propagate on move/swap, so
/// a container always deallocates with the allocator that allocated it.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    if (n > ~std::size_t{0} / sizeof(T)) throw std::bad_alloc{};
    if (arena_ != nullptr)
      return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
    // Arena memory is reclaimed en bloc when the Arena dies.
  }

  Arena* arena() const noexcept { return arena_; }

 private:
  Arena* arena_ = nullptr;
};

template <typename T, typename U>
bool operator==(const ArenaAllocator<T>& a, const ArenaAllocator<U>& b) noexcept {
  return a.arena() == b.arena();
}

template <typename T, typename U>
bool operator!=(const ArenaAllocator<T>& a, const ArenaAllocator<U>& b) noexcept {
  return a.arena() != b.arena();
}

/// The container type the substrate's per-node arrays use.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace econcast::sim

#endif  // ECONCAST_SIM_ARENA_H
