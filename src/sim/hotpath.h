// Hot-path engine selection for the simulation substrate, mirroring the
// pluggable event-queue kernel: the optimized path (incremental listener
// counts, SoA node state, arena-backed storage) is the default, and the
// pre-overhaul reference path (O(degree) listener scans) stays selectable so
// any run can be replayed under both and byte-diffed. The two engines are
// RNG-stream-neutral by construction — they differ only in how the listener
// count is obtained and where memory lives — so results never depend on the
// choice; only wall clock does.
#ifndef ECONCAST_SIM_HOTPATH_H
#define ECONCAST_SIM_HOTPATH_H

#include <cstdint>
#include <string>

namespace econcast::sim {

enum class HotpathEngine {
  kReference,  // pre-overhaul semantics: listener counts by O(degree) scan
  kOptimized,  // incremental counts maintained in set_listening/begin_burst
};

/// Stable spellings for CLI flags, JSON manifests, and bench labels.
std::string to_token(HotpathEngine engine);
HotpathEngine hotpath_engine_from_token(const std::string& token);

/// Counters the substrate accumulates while a scenario runs, surfaced as
/// `hotpath_*` extras when SimConfig::report_hotpath_stats is set.
struct HotpathStats {
  std::uint64_t listener_queries = 0;  // listening_neighbors() calls
  std::uint64_t listener_scans = 0;    // of which answered by O(degree) scan
  std::uint64_t listen_toggles = 0;    // listener-set changes applied
  std::uint64_t toggle_drains = 0;     // drain_toggled() calls
  std::uint64_t arena_bytes = 0;       // bytes the scenario arena handed out
  std::uint64_t arena_chunks = 0;      // chunks the scenario arena reserved
};

}  // namespace econcast::sim

#endif  // ECONCAST_SIM_HOTPATH_H
