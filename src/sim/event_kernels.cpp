#include "sim/event_kernels.h"

#include <cassert>

#include "util/kernels.h"

namespace econcast::sim::event_kernels {

namespace detail {

MinScanResult min_scan_scalar(const Event* events, std::size_t n) noexcept {
  // Bit-for-bit the loop CalendarQueue::find_min ran before the kernel
  // tier existed: best replaced only when strictly earlier in (time, seq),
  // bounds folded with strict compares (so a NaN never displaces them).
  MinScanResult r;
  r.lo = events[0].time;
  r.hi = r.lo;
  for (std::size_t i = 1; i < n; ++i) {
    if (EventLater{}(events[r.best], events[i])) r.best = i;
    if (events[i].time < r.lo) r.lo = events[i].time;
    if (events[i].time > r.hi) r.hi = events[i].time;
  }
  return r;
}

void time_bounds_scalar(const Event* events, std::size_t n, double& lo,
                        double& hi) noexcept {
  double t_min = events[0].time;
  double t_max = t_min;
  for (std::size_t i = 1; i < n; ++i) {
    if (events[i].time < t_min) t_min = events[i].time;
    if (events[i].time > t_max) t_max = events[i].time;
  }
  lo = t_min;
  hi = t_max;
}

std::size_t partition_stale_scalar(Event* events, std::size_t n,
                                   const std::uint64_t* generations,
                                   std::size_t slot_count) noexcept {
  (void)slot_count;
  std::size_t w = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const Event& e = events[r];
    if (e.cancellable) {
      const std::size_t slot =
          static_cast<std::size_t>(e.node) * kEventKindCount +
          static_cast<std::size_t>(e.kind);
      assert(slot < slot_count);
      if (e.stamp != generations[slot]) continue;  // stale: drop
    }
    if (w != r) events[w] = e;
    ++w;
  }
  return n - w;
}

}  // namespace detail

MinScanResult min_scan(const Event* events, std::size_t n) {
#if ECONCAST_HAVE_AVX2
  if (util::active_kernel_tier() == util::KernelTier::kAvx2)
    return detail::min_scan_avx2(events, n);
#endif
  return detail::min_scan_scalar(events, n);
}

void time_bounds(const Event* events, std::size_t n, double& lo, double& hi) {
#if ECONCAST_HAVE_AVX2
  if (util::active_kernel_tier() == util::KernelTier::kAvx2)
    return detail::time_bounds_avx2(events, n, lo, hi);
#endif
  detail::time_bounds_scalar(events, n, lo, hi);
}

std::size_t partition_stale(Event* events, std::size_t n,
                            const std::uint64_t* generations,
                            std::size_t slot_count) {
#if ECONCAST_HAVE_AVX2
  if (util::active_kernel_tier() == util::KernelTier::kAvx2)
    return detail::partition_stale_avx2(events, n, generations, slot_count);
#endif
  return detail::partition_stale_scalar(events, n, generations, slot_count);
}

}  // namespace econcast::sim::event_kernels
