// SIMD micro-kernels for the event-queue inner loops, dispatched on the
// process-wide kernel tier (util/kernels.h).
//
// The calendar backend's hot loops are linear scans over small Event
// arrays: the (time, seq)-min scan of the bucket being drained, the
// [min, max] time bounds of the overflow top when a new year is laid, and
// the stale-event partition that compaction runs over every bucket. Each
// exists here as a scalar reference and an AVX2 implementation; both
// produce identical results for every input:
//
//   * (time, seq) is a strict total order (seq is unique), so the minimum
//     is unique and any reduction order — sequential, lane-parallel — finds
//     the same element. The SIMD compares are the exact IEEE/integer
//     compares of the scalar loop.
//   * The time bounds are pure compare-and-keep folds; lanes only ever hold
//     values from the input, so min/max come out value-identical. (The one
//     representational caveat: when a bucket mixes -0.0 and +0.0 the fold
//     order decides which zero is reported — the values compare equal and
//     every downstream use is arithmetic, so placement and pop order are
//     unaffected.)
//   * The stale partition is a stable keep-order compaction: the SIMD tier
//     vectorizes the predicate (slot arithmetic + generation compare, a
//     gather), the relocation is order-preserving either way.
//
// NaN times: the simulators never produce them, but the scalar loops have
// defined behavior for them (a NaN never displaces the running best/bounds,
// and a NaN in element 0 pins the result there); the AVX2 tier detects the
// element-0 case and falls back to the scalar loop so the two tiers agree
// on every input. seq values must stay below 2^63 (they are push counters,
// so they always do); the AVX2 tier compares them with signed instructions.
#ifndef ECONCAST_SIM_EVENT_KERNELS_H
#define ECONCAST_SIM_EVENT_KERNELS_H

#include <cstddef>
#include <cstdint>

#include "sim/event_queue.h"

namespace econcast::sim::event_kernels {

// The AVX2 tier walks events as four qwords per element (gathers with a
// stride-4 qword index): q0 = time, q1 = seq, q2 packs kind | cancellable
// << 8 | node << 32, q3 = stamp. Pin that layout here so a reordered field
// fails the build instead of silently desyncing the tiers.
static_assert(sizeof(Event) == 32, "event kernels assume 4-qword events");
static_assert(offsetof(Event, time) == 0, "event kernels assume time @ q0");
static_assert(offsetof(Event, seq) == 8, "event kernels assume seq @ q1");
static_assert(offsetof(Event, kind) == 16, "event kernels assume kind @ q2");
static_assert(offsetof(Event, cancellable) == 17,
              "event kernels assume cancellable @ q2 byte 1");
static_assert(offsetof(Event, node) == 20,
              "event kernels assume node @ q2 dword 1");
static_assert(offsetof(Event, stamp) == 24, "event kernels assume stamp @ q3");

struct MinScanResult {
  std::size_t best = 0;  // index of the (time, seq)-minimal event
  double lo = 0.0;       // min / max time seen, for the spawn decision
  double hi = 0.0;
};

/// One pass over a bucket: the (time, seq)-min index plus the time bounds,
/// exactly what CalendarQueue::find_min needs. Requires n >= 1.
MinScanResult min_scan(const Event* events, std::size_t n);

/// [min, max] of events[0..n).time — the overflow-top span scan that sizes
/// a newly laid year. Requires n >= 1.
void time_bounds(const Event* events, std::size_t n, double& lo, double& hi);

/// Stable in-place compaction removing every stale event: cancellable and
/// stamp != generations[node * kEventKindCount + kind]. Every cancellable
/// event's slot index must be < slot_count (the queue facade guarantees it:
/// schedule() sizes the table before entering the event). Returns the
/// number of events removed; the surviving events keep their order.
std::size_t partition_stale(Event* events, std::size_t n,
                            const std::uint64_t* generations,
                            std::size_t slot_count);

namespace detail {
MinScanResult min_scan_scalar(const Event* events, std::size_t n) noexcept;
void time_bounds_scalar(const Event* events, std::size_t n, double& lo,
                        double& hi) noexcept;
std::size_t partition_stale_scalar(Event* events, std::size_t n,
                                   const std::uint64_t* generations,
                                   std::size_t slot_count) noexcept;
#if ECONCAST_HAVE_AVX2
MinScanResult min_scan_avx2(const Event* events, std::size_t n) noexcept;
void time_bounds_avx2(const Event* events, std::size_t n, double& lo,
                      double& hi) noexcept;
std::size_t partition_stale_avx2(Event* events, std::size_t n,
                                 const std::uint64_t* generations,
                                 std::size_t slot_count) noexcept;
#endif
}  // namespace detail

}  // namespace econcast::sim::event_kernels

#endif  // ECONCAST_SIM_EVENT_KERNELS_H
