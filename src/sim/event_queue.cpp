#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>

namespace econcast::sim {

void EventQueue::push(double time, EventKind kind, std::uint32_t node,
                      std::uint64_t stamp) {
  heap_.push_back(Event{time, next_seq_++, kind, node, stamp});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

Event EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("pop from empty EventQueue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event e = heap_.back();
  heap_.pop_back();
  return e;
}

void EventQueue::clear() { heap_.clear(); }

}  // namespace econcast::sim
