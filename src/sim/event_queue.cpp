#include "sim/event_queue.h"

#include <stdexcept>

namespace econcast::sim {

void EventQueue::push(double time, EventKind kind, std::uint32_t node,
                      std::uint64_t stamp) {
  heap_.push(Event{time, next_seq_++, kind, node, stamp});
}

Event EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("pop from empty EventQueue");
  Event e = heap_.top();
  heap_.pop();
  return e;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
}

}  // namespace econcast::sim
