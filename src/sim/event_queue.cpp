#include "sim/event_queue.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "sim/event_kernels.h"

namespace econcast::sim {

const char* to_token(QueueEngine engine) noexcept {
  return engine == QueueEngine::kCalendar ? "calendar" : "binary-heap";
}

QueueEngine queue_engine_from_token(const std::string& token) {
  if (token == "binary-heap") return QueueEngine::kBinaryHeap;
  if (token == "calendar") return QueueEngine::kCalendar;
  throw std::invalid_argument("unknown queue engine '" + token +
                              "' (expected 'binary-heap' or 'calendar')");
}

// ---------------------------------------------------------------------------
// Backends: pure priority queues on (time, seq). No staleness logic here —
// the facade prunes cancelled events, so both backends stay oblivious to
// cancellation and trivially agree on the pop order.
// ---------------------------------------------------------------------------

class EventQueueBackend {
 public:
  virtual ~EventQueueBackend() = default;
  virtual void push(const Event& event) = 0;
  /// The (time, seq)-minimal stored event. Only called when size() > 0; may
  /// reorganize internal storage (the calendar lays a new year).
  virtual const Event& peek() = 0;
  /// Removes and returns the (time, seq)-minimal stored event.
  virtual Event pop() = 0;
  /// Removes every stale event — cancellable with stamp !=
  /// generations[node * kEventKindCount + kind] — and restores the
  /// backend's ordering invariants. Returns the removed count. Every
  /// cancellable stored event's slot must be < slot_count (the facade
  /// guarantees it: schedule() sizes the table before entering the event).
  virtual std::size_t prune_stale(const std::uint64_t* generations,
                                  std::size_t slot_count) = 0;
  virtual void clear() = 0;
  virtual void reserve(std::size_t n) = 0;
  virtual std::size_t size() const noexcept = 0;
  virtual std::size_t capacity() const noexcept = 0;
};

namespace {

/// The seed's implementation: a reservable vector heap.
class BinaryHeapQueue final : public EventQueueBackend {
 public:
  explicit BinaryHeapQueue(Arena* arena)
      : heap_(ArenaAllocator<Event>(arena)) {}

  void push(const Event& event) override {
    heap_.push_back(event);
    std::push_heap(heap_.begin(), heap_.end(), EventLater{});
  }

  const Event& peek() override { return heap_.front(); }

  Event pop() override {
    std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
    const Event event = heap_.back();
    heap_.pop_back();
    return event;
  }

  std::size_t prune_stale(const std::uint64_t* generations,
                          std::size_t slot_count) override {
    // partition_stale is a stable compaction — the same keep order
    // std::remove_if produced — so the rebuilt heap layout is unchanged.
    const std::size_t removed = event_kernels::partition_stale(
        heap_.data(), heap_.size(), generations, slot_count);
    heap_.resize(heap_.size() - removed);
    std::make_heap(heap_.begin(), heap_.end(), EventLater{});
    return removed;
  }

  void clear() override { heap_.clear(); }
  void reserve(std::size_t n) override { heap_.reserve(n); }
  std::size_t size() const noexcept override { return heap_.size(); }
  std::size_t capacity() const noexcept override { return heap_.capacity(); }

 private:
  ArenaVector<Event> heap_;
};

/// Calendar queue with an overflow ladder (a ladder queue in the sense of
/// Tang et al.): a stack of progressively finer bucket "rungs" under an
/// unsorted far-future top.
///
/// The top collects every event at or beyond top_start_. When no rung holds
/// events, the whole top is laid out as the coarsest rung — direct-mapped
/// buckets spanning [min, max] of its population. Pops drain the finest
/// rung's current bucket by linear (time, seq)-min scan; a bucket whose
/// population is large and not all-simultaneous is first *spawned* into a
/// finer rung (its own sub-buckets over the bucket's span), so scan cost
/// stays bounded while each event is redistributed only O(active depth)
/// times along its way down — this is what keeps heavily skewed populations
/// cheap (the simulators mix packet-scale events with wake-ups orders of
/// magnitude out; single-year calendars re-touch that far tail on every
/// rebuild, which measures *slower* than the heap on fig. 6).
///
/// Ordering correctness rests on three invariants: (a) top events are no
/// earlier than any rung event while rungs exist (top_start_ is the
/// coarsest rung's end), (b) within a rung, day assignment is monotone in
/// time and buckets before `cur` stay empty (placements clamp into `cur` —
/// which also absorbs out-of-order pushes the simulators never issue), and
/// (c) a child rung spans exactly its parent's spawned bucket, whose `cur`
/// has already moved past it. The facade's differential tests drive this
/// backend against the binary heap with identical operation sequences.
class CalendarQueue final : public EventQueueBackend {
 public:
  explicit CalendarQueue(Arena* arena) : top_(ArenaAllocator<Event>(arena)) {}

  void push(const Event& event) override {
    ++count_;
    if (depth_ == 0 || event.time >= top_start_) {
      top_.push_back(event);
      return;
    }
    // Finest rung whose span still covers the event; ends grow toward the
    // coarser rungs, and everything at or past the coarsest end went to the
    // top above, so the loop always places (i == 0 absorbs float dust).
    for (std::size_t i = depth_; i-- > 0;) {
      if (event.time < rungs_[i].end() || i == 0) {
        place(rungs_[i], event, /*active=*/i + 1 == depth_);
        return;
      }
    }
  }

  const Event& peek() override {
    find_min();
    Rung& rung = rungs_[depth_ - 1];
    return rung.buckets[rung.cur][cached_min_];
  }

  Event pop() override {
    find_min();
    Rung& rung = rungs_[depth_ - 1];
    std::vector<Event>& bucket = rung.buckets[rung.cur];
    const Event event = bucket[cached_min_];
    bucket[cached_min_] = bucket.back();
    bucket.pop_back();
    cached_min_ = kNoCache;
    --count_;
    return event;
  }

  std::size_t prune_stale(const std::uint64_t* generations,
                          std::size_t slot_count) override {
    std::size_t removed = 0;
    const auto filter = [&](auto& events) {
      const std::size_t dropped = event_kernels::partition_stale(
          events.data(), events.size(), generations, slot_count);
      removed += dropped;
      events.resize(events.size() - dropped);
    };
    // Removing events changes no placement, so every structural invariant
    // (rung spans, cur positions, top_start_) survives; find_min already
    // copes with buckets and rungs emptied under it.
    for (std::size_t i = 0; i < depth_; ++i)
      for (std::size_t b = rungs_[i].cur; b < rungs_[i].nbuckets; ++b)
        filter(rungs_[i].buckets[b]);
    filter(top_);
    count_ -= removed;
    cached_min_ = kNoCache;
    return removed;
  }

  void clear() override {
    for (Rung& rung : rungs_)
      for (std::vector<Event>& bucket : rung.buckets) bucket.clear();
    top_.clear();
    top_start_ = kAlwaysTop;
    depth_ = 0;
    count_ = 0;
    cached_min_ = kNoCache;
  }

  void reserve(std::size_t n) override {
    top_.reserve(n);
    reserved_ = std::max(reserved_, n);
  }

  std::size_t size() const noexcept override { return count_; }
  std::size_t capacity() const noexcept override {
    return std::max(reserved_, top_.capacity());
  }

 private:
  static constexpr std::size_t kNoCache = ~std::size_t{0};
  static constexpr double kAlwaysTop = -1e308;  // "everything to the top"
  /// Buckets bigger than this (with distinct times) spawn a finer rung
  /// instead of being min-scanned.
  static constexpr std::size_t kSpawnThreshold = 16;
  /// Recursion guard for adversarial clusters; beyond it, buckets are
  /// scanned no matter their size (still correct, just linear).
  static constexpr std::size_t kMaxRungs = 48;

  struct Rung {
    double start = 0.0;  // time at bucket 0's left edge
    double width = 1.0;
    std::size_t nbuckets = 0;  // active prefix of `buckets`
    std::size_t cur = 0;       // bucket currently being drained
    std::vector<std::vector<Event>> buckets;  // capacity persists in the pool

    double end() const noexcept {
      return start + width * static_cast<double>(nbuckets);
    }
  };

  void place(Rung& rung, const Event& event, bool active) {
    const double d = (event.time - rung.start) / rung.width;
    std::size_t day;
    if (!(d > static_cast<double>(rung.cur)))
      day = rung.cur;  // past/current edge (or NaN): the bucket being drained
    else if (d >= static_cast<double>(rung.nbuckets))
      day = rung.nbuckets - 1;  // float dust at the right edge
    else
      day = static_cast<std::size_t>(d);
    if (active && day == rung.cur) cached_min_ = kNoCache;
    rung.buckets[day].push_back(event);
  }

  /// Re-initializes the pooled rung at `index` (bucket capacities persist).
  Rung& acquire(std::size_t index, double start, double width,
                std::size_t nbuckets) {
    if (index == rungs_.size()) rungs_.emplace_back();
    Rung& rung = rungs_[index];
    if (rung.buckets.size() < nbuckets) rung.buckets.resize(nbuckets);
    rung.start = start;
    rung.width = width;
    rung.nbuckets = nbuckets;
    rung.cur = 0;
    return rung;
  }

  static std::size_t bucket_count_for(std::size_t population) {
    std::size_t want = 8;
    while (want < population) want <<= 1;
    return want;
  }

  /// Lays the whole top out as the coarsest rung. Precondition: depth_ == 0
  /// and top_ non-empty. The span covers [min, max], so the top empties
  /// completely and top_start_ becomes the rung's end.
  void spawn_from_top() {
    double t_min, t_max;
    event_kernels::time_bounds(top_.data(), top_.size(), t_min, t_max);
    const std::size_t nbuckets = bucket_count_for(top_.size());
    const double span = t_max - t_min;
    const double width =
        span > 0.0 && std::isfinite(span)
            ? span * (1.0 + 1e-12) / static_cast<double>(nbuckets)
            : 1.0;
    Rung& rung = acquire(0, t_min, width, nbuckets);
    depth_ = 1;
    for (const Event& event : top_) place(rung, event, /*active=*/false);
    top_.clear();
    top_start_ = rung.end();
  }

  /// Spawns rungs_[parent].buckets[cur] into a finer rung and advances the
  /// parent past it. Returns false (no structural change) when the child
  /// width would degenerate.
  bool spawn_from_bucket(std::size_t parent) {
    std::vector<Event>& bucket =
        rungs_[parent].buckets[rungs_[parent].cur];
    const std::size_t nbuckets = bucket_count_for(bucket.size());
    const double width =
        rungs_[parent].width / static_cast<double>(nbuckets);
    if (!(width > 0.0) || !std::isfinite(width)) return false;
    const double start = rungs_[parent].start +
                         rungs_[parent].width *
                             static_cast<double>(rungs_[parent].cur);
    Rung& child = acquire(depth_, start, width, nbuckets);  // may realloc
    std::vector<Event>& spawned =
        rungs_[parent].buckets[rungs_[parent].cur];
    ++depth_;
    for (const Event& event : spawned) place(child, event, /*active=*/false);
    spawned.clear();
    ++rungs_[parent].cur;  // nothing may land in the spawned bucket again
    return true;
  }

  /// Establishes cached_min_ inside the finest rung's current bucket.
  /// Precondition: count_ > 0.
  void find_min() {
    if (cached_min_ != kNoCache) return;
    while (true) {
      if (depth_ == 0) {
        spawn_from_top();
        continue;
      }
      Rung& rung = rungs_[depth_ - 1];
      while (rung.cur < rung.nbuckets && rung.buckets[rung.cur].empty())
        ++rung.cur;
      if (rung.cur == rung.nbuckets) {
        --depth_;  // rung drained; resume the parent after its spawned bucket
        continue;
      }
      const std::vector<Event>& bucket = rung.buckets[rung.cur];
      const event_kernels::MinScanResult scan =
          event_kernels::min_scan(bucket.data(), bucket.size());
      if (bucket.size() > kSpawnThreshold && scan.hi > scan.lo &&
          depth_ < kMaxRungs && spawn_from_bucket(depth_ - 1))
        continue;
      cached_min_ = scan.best;
      return;
    }
  }

  std::vector<Rung> rungs_;  // pool; [0, depth_) active, coarse -> fine
                             // (bucket capacities persist, so the pooled
                             //  rungs stay on the heap rather than leaking
                             //  abandoned blocks into the arena)
  ArenaVector<Event> top_;   // unsorted events at/beyond top_start_
  double top_start_ = kAlwaysTop;
  std::size_t depth_ = 0;
  std::size_t count_ = 0;
  std::size_t cached_min_ = kNoCache;
  std::size_t reserved_ = 0;
};

std::unique_ptr<EventQueueBackend> make_backend(QueueEngine engine,
                                                Arena* arena) {
  if (engine == QueueEngine::kCalendar)
    return std::make_unique<CalendarQueue>(arena);
  return std::make_unique<BinaryHeapQueue>(arena);
}

}  // namespace

// ------------------------------------------------------------------ facade --

EventQueue::EventQueue(QueueEngine engine, Arena* arena)
    : engine_(engine),
      backend_(make_backend(engine, arena)),
      generations_(ArenaAllocator<std::uint64_t>(arena)),
      slot_live_(ArenaAllocator<std::uint8_t>(arena)) {}

EventQueue::~EventQueue() = default;
EventQueue::EventQueue(EventQueue&&) noexcept = default;
EventQueue& EventQueue::operator=(EventQueue&&) noexcept = default;

void EventQueue::reserve_for_nodes(std::size_t n) {
  reserve(capacity_for_nodes(n));
  if (generations_.size() < n * kEventKindCount) {
    generations_.resize(n * kEventKindCount, 0);
    slot_live_.resize(n * kEventKindCount, 0);
  }
}

std::size_t EventQueue::slot(NodeId node, EventKind kind) {
  const std::size_t index =
      static_cast<std::size_t>(node) * kEventKindCount +
      static_cast<std::size_t>(kind);
  if (index >= generations_.size()) {
    const std::size_t want =
        (static_cast<std::size_t>(node) + 1) * kEventKindCount;
    generations_.resize(want, 0);
    slot_live_.resize(want, 0);
  }
  return index;
}

std::uint64_t& EventQueue::generation(NodeId node, EventKind kind) {
  return generations_[slot(node, kind)];
}

bool EventQueue::stale(const Event& e) const noexcept {
  if (!e.cancellable) return false;
  const std::size_t slot =
      static_cast<std::size_t>(e.node) * kEventKindCount +
      static_cast<std::size_t>(e.kind);
  return e.stamp != generations_[slot];
}

void EventQueue::push(double time, EventKind kind, NodeId node) {
  backend_->push(Event{time, next_seq_++, kind, false, node, 0});
  ++live_;  // durable events stay live until popped
  ++stats_.pushes;
  stats_.peak_live = std::max(stats_.peak_live, backend_->size());
  maybe_compact();
}

void EventQueue::schedule(double time, EventKind kind, NodeId node) {
  const std::size_t s = slot(node, kind);
  const std::uint64_t gen = ++generations_[s];
  backend_->push(Event{time, next_seq_++, kind, true, node, gen});
  if (!slot_live_[s]) {
    slot_live_[s] = 1;
    ++live_;
  }  // else the superseded event went stale: net live count unchanged
  ++stats_.pushes;
  stats_.peak_live = std::max(stats_.peak_live, backend_->size());
  maybe_compact();
}

void EventQueue::cancel(NodeId node, EventKind kind) {
  const std::size_t s = slot(node, kind);
  ++generations_[s];
  if (slot_live_[s]) {
    slot_live_[s] = 0;
    --live_;
  }
}

const Event* EventQueue::peek_live() {
  while (backend_->size() > 0) {
    const Event& head = backend_->peek();
    if (!stale(head)) return &head;
    backend_->pop();
    ++stats_.stale_drops;
  }
  return nullptr;
}

bool EventQueue::empty() { return peek_live() == nullptr; }

const Event& EventQueue::top() {
  const Event* head = peek_live();
  if (head == nullptr) throw std::logic_error("top of empty EventQueue");
  return *head;
}

Event EventQueue::pop() {
  if (peek_live() == nullptr)
    throw std::logic_error("pop from empty EventQueue");
  ++stats_.pops;
  const Event event = backend_->pop();
  if (event.cancellable) slot_live_[slot(event.node, event.kind)] = 0;
  --live_;
  return event;
}

void EventQueue::maybe_compact() {
  const std::size_t stored = backend_->size();
  if (stored < kCompactionFloor || stored - live_ <= live_) return;
  stats_.stale_drops +=
      backend_->prune_stale(generations_.data(), generations_.size());
}

void EventQueue::clear() {
  backend_->clear();
  std::fill(slot_live_.begin(), slot_live_.end(), 0);
  live_ = 0;
  // Generations survive clear(): a cleared queue holds no events, so every
  // slot is trivially consistent either way.
}

void EventQueue::reserve(std::size_t n) { backend_->reserve(n); }

std::size_t EventQueue::capacity() const noexcept {
  return backend_->capacity();
}

std::size_t EventQueue::size() const noexcept { return backend_->size(); }

}  // namespace econcast::sim
