// Shared-medium bookkeeping on an arbitrary topology: per-node carrier sense
// (A_i(t) of §V-E), reception locking, and the non-clique corruption rule of
// §VII-E (a reception overlapped by a second in-range transmission is voided).
//
// The channel tracks who transmits and who listens; the protocol layer asks
// for packet outcomes and drains busy-toggle notifications to re-sample
// exponential transitions.
//
// Hot-path engines: under HotpathEngine::kOptimized the channel maintains a
// per-node count of listening neighbors, updated in O(degree) on each
// listener-set change, so `listening_neighbors()` answers in O(1); under
// kReference it answers with the pre-overhaul O(degree) scan. Both engines
// produce identical answers (the randomized differential test drives them
// against each other), so the knob trades only wall clock. The scan is also
// exposed directly as `listening_neighbors_scan()` for cross-checks.
//
// All per-node storage can be placed in a caller-owned Arena; the channel
// then allocates nothing after construction (the toggle drain and the packet
// outcome refill reusable buffers).
#ifndef ECONCAST_SIM_CHANNEL_H
#define ECONCAST_SIM_CHANNEL_H

#include <cstdint>

#include "model/network.h"
#include "sim/arena.h"
#include "sim/hotpath.h"
#include "sim/node_id.h"

namespace econcast::sim {

class Channel {
 public:
  explicit Channel(const model::Topology& topology, Arena* arena = nullptr,
                   HotpathEngine engine = HotpathEngine::kOptimized);

  HotpathEngine engine() const noexcept { return engine_; }

  // --- listen-state notifications (from the protocol layer) -------------
  /// Must only be called while the node senses an idle medium (the protocol
  /// gates wake-ups on A_i(t)); entering listen mid-packet is a logic error
  /// for neighbors of an active transmitter.
  void set_listening(NodeId node, bool listening);
  bool is_listening(NodeId node) const;

  // --- transmissions -----------------------------------------------------
  /// Starts a burst: raises carrier for all neighbors. The transmitter must
  /// currently sense an idle medium and not be listening.
  void begin_burst(NodeId tx);

  /// Starts one packet inside an ongoing burst: locks every neighbor that is
  /// listening, hears only this transmitter, and is not already mid-packet.
  void begin_packet(NodeId tx);

  struct PacketOutcome {
    ArenaVector<NodeId> clean_receivers;  // got the whole packet, no overlap
    std::uint32_t corrupted = 0;          // receptions voided by overlap

    PacketOutcome() = default;
    explicit PacketOutcome(Arena* arena)
        : clean_receivers(ArenaAllocator<NodeId>(arena)) {}
  };

  /// Ends the current packet of `tx`, returning who received it cleanly.
  /// The returned outcome is a reusable buffer: it stays valid until the
  /// next end_packet call (copy it to keep it longer).
  const PacketOutcome& end_packet(NodeId tx);

  /// Ends the burst: drops carrier for all neighbors.
  void end_burst(NodeId tx);

  // --- queries -------------------------------------------------------------
  /// True when node i senses the medium busy (>= 1 transmitting neighbor),
  /// i.e. A_i(t) = 0.
  bool busy_at(NodeId node) const;
  bool is_transmitting(NodeId node) const;
  /// c(t) as seen by `node`: its listening neighbors (perfect estimate).
  /// O(1) under kOptimized, O(degree) under kReference.
  int listening_neighbors(NodeId node) const;
  /// The reference computation (always a scan), engine-independent. The
  /// differential tests assert listening_neighbors() == this at every step.
  int listening_neighbors_scan(NodeId node) const;
  int transmitting_count() const noexcept { return active_tx_; }

  /// Nodes whose carrier-sense state toggled since the last drain (each at
  /// most once). The protocol re-samples these nodes' transitions. The
  /// returned buffer is reused: it stays valid until the next drain.
  const ArenaVector<NodeId>& drain_toggled();

  const HotpathStats& hotpath_stats() const noexcept { return stats_; }

 private:
  void mark_toggled(NodeId node);
  /// Flips the listen bit and maintains the incremental neighbor counts.
  /// Does NOT touch the reception lock — begin_burst's implicit listen-drop
  /// keeps the (necessarily empty) lock state untouched, exactly like the
  /// reference semantics.
  void apply_listen_change(NodeId node, bool listening);

  const model::Topology& topo_;
  HotpathEngine engine_;
  ArenaVector<std::uint8_t> listening_;
  ArenaVector<std::uint8_t> transmitting_;
  ArenaVector<std::uint32_t> busy_count_;    // transmitting neighbors
  ArenaVector<std::uint32_t> listen_count_;  // listening neighbors (optimized)
  ArenaVector<NodeId> lock_tx_;  // which tx this listener decodes (kNoNode none)
  ArenaVector<std::uint8_t> corrupt_;  // current reception overlapped
  ArenaVector<std::uint8_t> toggled_flag_;
  ArenaVector<NodeId> toggled_;
  ArenaVector<NodeId> drained_;  // scratch handed out by drain_toggled()
  PacketOutcome outcome_;        // scratch handed out by end_packet()
  int active_tx_ = 0;
  mutable HotpathStats stats_;
};

}  // namespace econcast::sim

#endif  // ECONCAST_SIM_CHANNEL_H
