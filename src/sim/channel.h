// Shared-medium bookkeeping on an arbitrary topology: per-node carrier sense
// (A_i(t) of §V-E), reception locking, and the non-clique corruption rule of
// §VII-E (a reception overlapped by a second in-range transmission is voided).
//
// The channel tracks who transmits and who listens; the protocol layer asks
// for packet outcomes and drains busy-toggle notifications to re-sample
// exponential transitions.
#ifndef ECONCAST_SIM_CHANNEL_H
#define ECONCAST_SIM_CHANNEL_H

#include <cstdint>
#include <vector>

#include "model/network.h"

namespace econcast::sim {

class Channel {
 public:
  explicit Channel(const model::Topology& topology);

  // --- listen-state notifications (from the protocol layer) -------------
  /// Must only be called while the node senses an idle medium (the protocol
  /// gates wake-ups on A_i(t)); entering listen mid-packet is a logic error
  /// for neighbors of an active transmitter.
  void set_listening(std::size_t node, bool listening);
  bool is_listening(std::size_t node) const;

  // --- transmissions -----------------------------------------------------
  /// Starts a burst: raises carrier for all neighbors. The transmitter must
  /// currently sense an idle medium and not be listening.
  void begin_burst(std::size_t tx);

  /// Starts one packet inside an ongoing burst: locks every neighbor that is
  /// listening, hears only this transmitter, and is not already mid-packet.
  void begin_packet(std::size_t tx);

  struct PacketOutcome {
    std::vector<std::size_t> clean_receivers;  // got the whole packet, no overlap
    std::uint32_t corrupted = 0;               // receptions voided by overlap
  };

  /// Ends the current packet of `tx`, returning who received it cleanly.
  PacketOutcome end_packet(std::size_t tx);

  /// Ends the burst: drops carrier for all neighbors.
  void end_burst(std::size_t tx);

  // --- queries -------------------------------------------------------------
  /// True when node i senses the medium busy (>= 1 transmitting neighbor),
  /// i.e. A_i(t) = 0.
  bool busy_at(std::size_t node) const;
  bool is_transmitting(std::size_t node) const;
  /// c(t) as seen by `node`: its listening neighbors (perfect estimate).
  int listening_neighbors(std::size_t node) const;
  int transmitting_count() const noexcept { return active_tx_; }

  /// Nodes whose carrier-sense state toggled since the last drain (each at
  /// most once). The protocol re-samples these nodes' transitions.
  std::vector<std::size_t> drain_toggled();

 private:
  void mark_toggled(std::size_t node);

  const model::Topology& topo_;
  std::vector<std::uint8_t> listening_;
  std::vector<std::uint8_t> transmitting_;
  std::vector<std::uint32_t> busy_count_;  // transmitting neighbors
  std::vector<int> lock_tx_;               // which tx this listener decodes (-1 none)
  std::vector<std::uint8_t> corrupt_;      // current reception overlapped
  std::vector<std::uint8_t> toggled_flag_;
  std::vector<std::size_t> toggled_;
  int active_tx_ = 0;
};

}  // namespace econcast::sim

#endif  // ECONCAST_SIM_CHANNEL_H
