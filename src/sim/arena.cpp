#include "sim/arena.h"

#include <algorithm>

namespace econcast::sim {

void* Arena::allocate(std::size_t bytes, std::size_t alignment) {
  if (bytes == 0) bytes = 1;
  if (alignment == 0) alignment = 1;

  if (!chunks_.empty()) {
    Chunk& current = chunks_.back();
    const auto base = reinterpret_cast<std::uintptr_t>(current.data.get());
    const std::uintptr_t cursor = base + used_;
    const std::uintptr_t aligned = (cursor + (alignment - 1)) & ~static_cast<std::uintptr_t>(alignment - 1);
    const std::size_t needed = (aligned - base) + bytes;
    if (needed <= current.size) {
      used_ = needed;
      stats_.bytes_allocated += bytes;
      return reinterpret_cast<void*>(aligned);
    }
  }

  // Start a new chunk big enough for this request (plus worst-case alignment
  // slack) and keep doubling so the chunk count stays logarithmic in the
  // total footprint.
  std::size_t chunk_size = std::max(next_chunk_bytes_, bytes + alignment);
  next_chunk_bytes_ = chunk_size * 2;

  Chunk chunk;
  chunk.data = std::make_unique<unsigned char[]>(chunk_size);
  chunk.size = chunk_size;
  chunks_.push_back(std::move(chunk));
  stats_.bytes_reserved += chunk_size;
  stats_.chunks += 1;

  const auto base = reinterpret_cast<std::uintptr_t>(chunks_.back().data.get());
  const std::uintptr_t aligned = (base + (alignment - 1)) & ~static_cast<std::uintptr_t>(alignment - 1);
  used_ = (aligned - base) + bytes;
  stats_.bytes_allocated += bytes;
  return reinterpret_cast<void*>(aligned);
}

}  // namespace econcast::sim
