#include "runner/cost_model.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <variant>

#include "util/json.h"

namespace econcast::runner {

namespace fs = std::filesystem;

namespace {

/// Fallback ms-per-unit when nothing is calibrated, sized so an N=100,
/// 1e6-packet-time EconCast cell lands in the seconds range — the right
/// order of magnitude for a Release build on one core.
constexpr double kDefaultMsPerUnit = 2e-7;

struct UnitVisitor {
  double n;  // node count of the cell

  double operator()(const protocol::EconCastParams& p) const {
    // Events scale with N × duration; per-event work carries an extra
    // N-dependent component (rate-memo row refills, toggle resampling over
    // neighborhoods), so the aggregate is superlinear. N^1.5 tracks the
    // measured N=25..256 profile well enough for ordering and balancing.
    return n * std::sqrt(n) * p.config.duration;
  }
  double operator()(const protocol::TestbedParams& p) const {
    // The firmware loop is ~clique EconCast in real milliseconds.
    return n * std::sqrt(n) * p.duration_ms;
  }
  double operator()(const protocol::PandaParams& p) const {
    return p.simulate ? n * p.duration : 1.0 + n;
  }
  double operator()(const protocol::BirthdayParams& p) const {
    return p.simulate ? n * static_cast<double>(p.slots) : 1.0 + n;
  }
  double operator()(const protocol::P4Params&) const {
    // The (P4) solver iterates over the N-node state space.
    return 1.0 + n * n;
  }
  double operator()(const protocol::OracleParams&) const {
    return 1.0 + n * n;
  }
  double operator()(const protocol::SearchlightParams&) const {
    return 1.0 + n;
  }
};

}  // namespace

double CostModel::estimate_units(const Scenario& cell) {
  const double n = static_cast<double>(cell.nodes.size());
  return std::visit(UnitVisitor{n}, cell.protocol.params);
}

double CostModel::estimate_ms(const Scenario& cell) const {
  const double units = estimate_units(cell);
  const auto it = scales_.find(cell.protocol.name);
  if (it != scales_.end()) return units * it->second;
  if (!scales_.empty()) {
    // Unobserved protocol: borrow the mean observed scale rather than the
    // compile-time default — same machine, same build.
    double sum = 0.0;
    for (const auto& [name, scale] : scales_) sum += scale;
    return units * (sum / static_cast<double>(scales_.size()));
  }
  return units * kDefaultMsPerUnit;
}

void CostModel::calibrate_from_cache(const std::string& cache_dir) {
  std::error_code ec;
  if (!fs::is_directory(cache_dir, ec)) return;

  // Accumulate (predicted units, observed ms) per protocol from the "cost"
  // metadata each cache entry carries; the ratio of the sums is the scale.
  // A broken entry calibrates nothing — the cache itself re-validates
  // entries on probe, calibration just skips them.
  std::map<std::string, std::pair<double, double>> sums;  // units, ms
  for (fs::recursive_directory_iterator it(cache_dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file() || it->path().extension() != ".jsonl")
      continue;
    std::ifstream in(it->path(), std::ios::binary);
    std::string line;
    if (!in || !std::getline(in, line)) continue;
    try {
      const util::json::Value entry = util::json::parse(line);
      const util::json::Value& cost = entry.at("cost");
      const std::string& name = cost.at("protocol").as_string();
      const double units = cost.at("units").as_number();
      const double ms = entry.at("wall_ms").as_number();
      if (units > 0.0 && ms >= 0.0 && std::isfinite(units) &&
          std::isfinite(ms)) {
        sums[name].first += units;
        sums[name].second += ms;
      }
    } catch (const std::exception&) {
      // Foreign or torn file: not a calibration sample.
    }
  }
  for (const auto& [name, pair] : sums)
    if (pair.first > 0.0 && pair.second > 0.0)
      scales_[name] = pair.second / pair.first;
}

std::vector<std::size_t> cost_submit_order(const std::vector<Scenario>& batch,
                                           const CostModel& model,
                                           std::size_t participants) {
  const std::size_t n = batch.size();
  std::vector<double> cost(n);
  for (std::size_t i = 0; i < n; ++i) cost[i] = model.estimate_ms(batch[i]);

  // Descending cost, ascending index on ties: deterministic for a given
  // batch regardless of how the model was calibrated.
  std::vector<std::size_t> by_cost(n);
  std::iota(by_cost.begin(), by_cost.end(), 0);
  std::stable_sort(by_cost.begin(), by_cost.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (cost[a] != cost[b]) return cost[a] > cost[b];
                     return a < b;
                   });

  std::size_t p = participants == 0 ? 1 : std::min(participants, n);
  if (p <= 1 || n == 0) return by_cost;

  // Round-robin deal into p lists, then concatenate. The executor seeds
  // participant c with the contiguous chunk of submit indices whose sizes
  // are n/p (+1 for the first n%p participants) and pops it in ascending
  // order — exactly the chunk sizes the deal produces — so participant c's
  // first task is the c-th heaviest cell and its queue descends from there.
  std::vector<std::vector<std::size_t>> chunks(p);
  for (std::size_t k = 0; k < n; ++k) chunks[k % p].push_back(by_cost[k]);
  std::vector<std::size_t> order;
  order.reserve(n);
  for (const std::vector<std::size_t>& chunk : chunks)
    order.insert(order.end(), chunk.begin(), chunk.end());
  return order;
}

}  // namespace econcast::runner
