#include "runner/sweep_spec.h"

#include <cstdio>
#include <stdexcept>
#include <utility>

namespace econcast::runner {

namespace {

/// Shortest exact-enough rendering for axis values in scenario names (%g
/// gives "0.5", "10", "1.5e+06" — stable across platforms for these scales).
std::string format_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

template <typename T>
void require_nonempty(const std::vector<T>& axis, const char* what) {
  if (axis.empty())
    throw std::invalid_argument(std::string("sweep axis '") + what +
                                "' must not be empty");
}

}  // namespace

std::vector<PowerPoint> power_ratio_axis(const std::vector<double>& ratios,
                                         double budget, double total) {
  std::vector<PowerPoint> points;
  points.reserve(ratios.size());
  for (const double r : ratios) {
    if (!(r > 0.0))
      throw std::invalid_argument("power_ratio_axis: X/L ratios must be > 0");
    const double x = total * r / (1.0 + r);
    points.push_back({budget, total - x, x});
  }
  return points;
}

SweepSpec::SweepSpec(std::string name) : name_(std::move(name)) {
  protocols_.push_back(protocol::econcast_spec(proto::SimConfig{}));
}

SweepSpec& SweepSpec::protocols(std::vector<protocol::ProtocolSpec> specs) {
  require_nonempty(specs, "protocols");
  protocols_ = std::move(specs);
  return *this;
}

SweepSpec& SweepSpec::modes(std::vector<model::Mode> modes) {
  require_nonempty(modes, "modes");
  modes_ = std::move(modes);
  return *this;
}

SweepSpec& SweepSpec::node_counts(std::vector<std::size_t> counts) {
  require_nonempty(counts, "node_counts");
  node_counts_ = std::move(counts);
  return *this;
}

SweepSpec& SweepSpec::powers(std::vector<PowerPoint> points) {
  require_nonempty(points, "powers");
  powers_ = std::move(points);
  return *this;
}

SweepSpec& SweepSpec::sigmas(std::vector<double> sigmas) {
  require_nonempty(sigmas, "sigmas");
  sigmas_ = std::move(sigmas);
  return *this;
}

SweepSpec& SweepSpec::replicates(std::size_t count) {
  if (count == 0)
    throw std::invalid_argument("sweep replicates must be >= 1");
  replicates_ = count;
  return *this;
}

SweepSpec& SweepSpec::topology(
    std::function<model::Topology(std::size_t)> make) {
  topology_ = std::move(make);
  topology_kind_.clear();  // custom: not expressible in a manifest
  return *this;
}

SweepSpec& SweepSpec::topology(const std::string& kind) {
  if (kind == "clique") {
    topology_ = nullptr;  // the expansion default
  } else if (kind == "line") {
    topology_ = [](std::size_t n) { return model::Topology::line(n); };
  } else if (kind == "ring") {
    topology_ = [](std::size_t n) { return model::Topology::ring(n); };
  } else if (kind == "grid") {
    topology_ = [](std::size_t n) {
      std::size_t k = 0;
      while ((k + 1) * (k + 1) <= n) ++k;
      if (k * k != n)
        throw std::invalid_argument(
            "grid topology requires a square node count, got " +
            std::to_string(n));
      return model::Topology::grid(k, k);
    };
  } else {
    throw std::invalid_argument("unknown topology kind '" + kind + "'");
  }
  topology_kind_ = kind;
  return *this;
}

SweepSpec& SweepSpec::node_set(
    std::function<model::NodeSet(std::size_t, const PowerPoint&)> make) {
  node_set_ = std::move(make);
  node_set_kind_.clear();  // custom: not expressible in a manifest
  return *this;
}

std::size_t SweepSpec::cell_count() const noexcept {
  return protocols_.size() * modes_.size() * node_counts_.size() *
         powers_.size() * sigmas_.size() * replicates_;
}

std::size_t SweepSpec::cell_index(std::size_t protocol_i, std::size_t mode_i,
                                  std::size_t node_i, std::size_t power_i,
                                  std::size_t sigma_i,
                                  std::size_t replicate) const {
  if (protocol_i >= protocols_.size() || mode_i >= modes_.size() ||
      node_i >= node_counts_.size() || power_i >= powers_.size() ||
      sigma_i >= sigmas_.size() || replicate >= replicates_)
    throw std::out_of_range("SweepSpec::cell_index: axis index out of range");
  return ((((protocol_i * modes_.size() + mode_i) * node_counts_.size() +
            node_i) *
               powers_.size() +
           power_i) *
              sigmas_.size() +
          sigma_i) *
             replicates_ +
         replicate;
}

std::vector<Scenario> SweepSpec::expand() const {
  std::vector<Scenario> batch;
  batch.reserve(cell_count());
  for (const protocol::ProtocolSpec& spec : protocols_) {
    for (const model::Mode mode : modes_) {
      for (const std::size_t n : node_counts_) {
        for (const PowerPoint& power : powers_) {
          const model::NodeSet nodes =
              node_set_ ? node_set_(n, power)
                        : model::homogeneous(n, power.budget,
                                             power.listen_power,
                                             power.transmit_power);
          const model::Topology topology =
              topology_ ? topology_(n) : model::Topology::clique(n);
          for (const double sigma : sigmas_) {
            const protocol::ProtocolSpec cell_spec =
                protocol::specialized(spec, mode, sigma);
            std::string cell_name = name_ + "/" + spec.name + "/" +
                                    model::to_string(mode) + "/N" +
                                    std::to_string(n) + "/rho" +
                                    format_value(power.budget) + "_L" +
                                    format_value(power.listen_power) + "_X" +
                                    format_value(power.transmit_power) +
                                    "/s" + format_value(sigma);
            for (std::size_t rep = 0; rep < replicates_; ++rep) {
              std::string scenario_name = cell_name;
              if (replicates_ > 1)
                scenario_name += "/r" + std::to_string(rep);
              batch.push_back(Scenario{std::move(scenario_name), nodes,
                                       topology, cell_spec});
            }
          }
        }
      }
    }
  }
  return batch;
}

}  // namespace econcast::runner
