#include "runner/sweep_spec.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "model/node_params.h"
#include "util/random.h"

namespace econcast::runner {

namespace {

/// Shortest exact-enough rendering for axis values in scenario names (%g
/// gives "0.5", "10", "1.5e+06" — stable across platforms for these scales).
std::string format_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

template <typename T>
void require_nonempty(const std::vector<T>& axis, const char* what) {
  if (axis.empty())
    throw std::invalid_argument(std::string("sweep axis '") + what +
                                "' must not be empty");
}

/// Side length of a square grid with n nodes, or 0 when n is not a perfect
/// square.
std::size_t grid_side(std::size_t n) {
  std::size_t k = 0;
  while ((k + 1) * (k + 1) <= n) ++k;
  return k * k == n ? k : 0;
}

}  // namespace

std::vector<PowerPoint> power_ratio_axis(const std::vector<double>& ratios,
                                         double budget, double total) {
  std::vector<PowerPoint> points;
  points.reserve(ratios.size());
  for (const double r : ratios) {
    if (!(r > 0.0))
      throw std::invalid_argument("power_ratio_axis: X/L ratios must be > 0");
    const double x = total * r / (1.0 + r);
    points.push_back({budget, total - x, x});
  }
  return points;
}

SweepSpec::SweepSpec(std::string name) : name_(std::move(name)) {
  protocols_.push_back(protocol::econcast_spec(proto::SimConfig{}));
}

SweepSpec& SweepSpec::protocols(std::vector<protocol::ProtocolSpec> specs) {
  require_nonempty(specs, "protocols");
  protocols_ = std::move(specs);
  return *this;
}

SweepSpec& SweepSpec::modes(std::vector<model::Mode> modes) {
  require_nonempty(modes, "modes");
  modes_ = std::move(modes);
  return *this;
}

SweepSpec& SweepSpec::node_counts(std::vector<std::size_t> counts) {
  require_nonempty(counts, "node_counts");
  node_counts_ = std::move(counts);
  return *this;
}

SweepSpec& SweepSpec::powers(std::vector<PowerPoint> points) {
  require_nonempty(points, "powers");
  powers_ = std::move(points);
  return *this;
}

SweepSpec& SweepSpec::sigmas(std::vector<double> sigmas) {
  require_nonempty(sigmas, "sigmas");
  sigmas_ = std::move(sigmas);
  return *this;
}

SweepSpec& SweepSpec::replicates(std::size_t count) {
  if (count == 0)
    throw std::invalid_argument("sweep replicates must be >= 1");
  replicates_ = count;
  return *this;
}

SweepSpec& SweepSpec::topology(
    std::function<model::Topology(std::size_t)> make) {
  topology_ = std::move(make);
  topology_kind_.clear();  // custom: not expressible in a manifest
  edge_list_nodes_ = 0;
  edge_list_.clear();
  return *this;
}

SweepSpec& SweepSpec::topology(const std::string& kind) {
  if (kind == "clique") {
    topology_ = nullptr;  // the expansion default
  } else if (kind == "line") {
    topology_ = [](std::size_t n) { return model::Topology::line(n); };
  } else if (kind == "ring") {
    topology_ = [](std::size_t n) { return model::Topology::ring(n); };
  } else if (kind == "grid") {
    topology_ = [](std::size_t n) {
      const std::size_t k = grid_side(n);
      if (k == 0)
        throw std::invalid_argument(
            "grid topology requires a square node count, got " +
            std::to_string(n));
      return model::Topology::grid(k, k);
    };
  } else if (kind == "edge_list") {
    throw std::invalid_argument(
        "topology kind 'edge_list' needs the explicit graph — use "
        "topology(n, edges)");
  } else {
    throw std::invalid_argument("unknown topology kind '" + kind + "'");
  }
  topology_kind_ = kind;
  edge_list_nodes_ = 0;
  edge_list_.clear();
  return *this;
}

SweepSpec& SweepSpec::topology(std::size_t n, EdgeList edges) {
  // Build eagerly so bad edges surface at set time, not at expand time.
  model::Topology graph = model::Topology::from_edges(n, edges);
  topology_ = [graph = std::move(graph), n](std::size_t count) {
    if (count != n)
      throw std::invalid_argument(
          "edge_list topology has " + std::to_string(n) +
          " nodes but the sweep asks for " + std::to_string(count));
    return graph;
  };
  topology_kind_ = "edge_list";
  edge_list_nodes_ = n;
  edge_list_ = std::move(edges);
  return *this;
}

SweepSpec& SweepSpec::node_set(
    std::function<model::NodeSet(std::size_t, const PowerPoint&)> make) {
  node_set_ = std::move(make);
  node_set_kind_.clear();  // custom: not expressible in a manifest
  heterogeneity_ = {10.0};
  return *this;
}

SweepSpec& SweepSpec::node_set(const std::string& kind) {
  if (kind == "homogeneous") {
    node_set_ = nullptr;  // the expansion default
  } else if (kind == "sampled") {
    throw std::invalid_argument(
        "node_set kind 'sampled' needs its h axis and seed — use "
        "sampled_node_set(h_values, sample_seed)");
  } else {
    throw std::invalid_argument("unknown node_set kind '" + kind + "'");
  }
  node_set_kind_ = kind;
  heterogeneity_ = {10.0};
  return *this;
}

SweepSpec& SweepSpec::sampled_node_set(std::vector<double> h_values,
                                       std::uint64_t sample_seed) {
  require_nonempty(h_values, "heterogeneity");
  node_set_ = nullptr;
  node_set_kind_ = "sampled";
  heterogeneity_ = std::move(h_values);
  sample_seed_ = sample_seed;
  return *this;
}

void SweepSpec::validate() const {
  // Non-finite axis values would serialize as null (see util::json::dump)
  // and only fail at reload, far from the cause — reject them here, which
  // the manifest codec runs at write time as well as parse time.
  for (const double s : sigmas_)
    if (!std::isfinite(s))
      throw std::invalid_argument(
          "sweep '" + name_ + "': sigma axis contains a non-finite value");
  for (const PowerPoint& p : powers_)
    if (!std::isfinite(p.budget) || !std::isfinite(p.listen_power) ||
        !std::isfinite(p.transmit_power))
      throw std::invalid_argument(
          "sweep '" + name_ + "': power axis contains a non-finite value");
  if (topology_kind_ == "grid") {
    for (const std::size_t n : node_counts_)
      if (grid_side(n) == 0)
        throw std::invalid_argument(
            "sweep '" + name_ + "': grid topology requires perfect-square "
            "node counts, but the node_counts axis contains " +
            std::to_string(n));
  }
  if (topology_kind_ == "edge_list") {
    for (const std::size_t n : node_counts_)
      if (n != edge_list_nodes_)
        throw std::invalid_argument(
            "sweep '" + name_ + "': edge_list topology has " +
            std::to_string(edge_list_nodes_) +
            " nodes, but the node_counts axis contains " + std::to_string(n));
  }
  if (node_set_kind_ == "sampled") {
    for (const double h : heterogeneity_)
      if (!(h >= 10.0 && h <= 250.0))  // also rejects NaN
        throw std::invalid_argument(
            "sweep '" + name_ + "': sampled node sets require h in "
            "[10, 250], but the heterogeneity axis contains " +
            format_value(h));
    // Sampled networks take every node parameter from the §VII-B draw and
    // ignore the power point entirely, so a multi-power sampled sweep would
    // run bitwise-duplicate cells under names claiming distinct ρ/L/X.
    if (powers_.size() > 1)
      throw std::invalid_argument(
          "sweep '" + name_ + "': sampled node sets ignore the power point, "
          "so the power axis must hold a single entry (got " +
          std::to_string(powers_.size()) + ")");
  }
}

std::size_t SweepSpec::cell_count() const noexcept {
  return protocols_.size() * modes_.size() * node_counts_.size() *
         powers_.size() * heterogeneity_.size() * sigmas_.size() *
         replicates_;
}

std::size_t SweepSpec::cell_index(std::size_t protocol_i, std::size_t mode_i,
                                  std::size_t node_i, std::size_t power_i,
                                  std::size_t h_i, std::size_t sigma_i,
                                  std::size_t replicate) const {
  if (protocol_i >= protocols_.size() || mode_i >= modes_.size() ||
      node_i >= node_counts_.size() || power_i >= powers_.size() ||
      h_i >= heterogeneity_.size() || sigma_i >= sigmas_.size() ||
      replicate >= replicates_)
    throw std::out_of_range("SweepSpec::cell_index: axis index out of range");
  return (((((protocol_i * modes_.size() + mode_i) * node_counts_.size() +
             node_i) *
                powers_.size() +
            power_i) *
               heterogeneity_.size() +
           h_i) *
              sigmas_.size() +
          sigma_i) *
             replicates_ +
         replicate;
}

std::vector<Scenario> SweepSpec::expand() const {
  validate();
  const bool sampled = node_set_kind_ == "sampled";
  // The sampled streams depend only on (n, h) — one network per replicate,
  // keyed on h alone so every (protocol, mode, power, σ) cell at
  // (h, replicate) sees the identical network. Drawn once, outside the
  // protocol/mode/power loops.
  std::vector<std::vector<std::vector<model::NodeSet>>> sampled_nodes;
  if (sampled) {
    sampled_nodes.resize(node_counts_.size());
    for (std::size_t n_i = 0; n_i < node_counts_.size(); ++n_i) {
      sampled_nodes[n_i].reserve(heterogeneity_.size());
      for (const double h : heterogeneity_) {
        util::Rng rng(derive_seed(sample_seed_,
                                  static_cast<std::uint64_t>(h)));
        sampled_nodes[n_i].push_back(model::sample_heterogeneous_batch(
            node_counts_[n_i], h, replicates_, rng));
      }
    }
  }
  std::vector<Scenario> batch;
  batch.reserve(cell_count());
  for (const protocol::ProtocolSpec& spec : protocols_) {
    for (const model::Mode mode : modes_) {
      for (std::size_t n_i = 0; n_i < node_counts_.size(); ++n_i) {
        const std::size_t n = node_counts_[n_i];
        const model::Topology topology =
            topology_ ? topology_(n) : model::Topology::clique(n);
        for (const PowerPoint& power : powers_) {
          for (std::size_t h_i = 0; h_i < heterogeneity_.size(); ++h_i) {
            const double h = heterogeneity_[h_i];
            model::NodeSet shared_nodes;
            if (!sampled) {
              shared_nodes =
                  node_set_ ? node_set_(n, power)
                            : model::homogeneous(n, power.budget,
                                                 power.listen_power,
                                                 power.transmit_power);
            }
            for (const double sigma : sigmas_) {
              const protocol::ProtocolSpec cell_spec =
                  protocol::specialized(spec, mode, sigma);
              std::string cell_name = name_ + "/" + spec.name + "/" +
                                      model::to_string(mode) + "/N" +
                                      std::to_string(n) + "/rho" +
                                      format_value(power.budget) + "_L" +
                                      format_value(power.listen_power) + "_X" +
                                      format_value(power.transmit_power);
              if (sampled) cell_name += "/h" + format_value(h);
              cell_name += "/s" + format_value(sigma);
              for (std::size_t rep = 0; rep < replicates_; ++rep) {
                std::string scenario_name = cell_name;
                if (replicates_ > 1)
                  scenario_name += "/r" + std::to_string(rep);
                batch.push_back(Scenario{
                    std::move(scenario_name),
                    sampled ? sampled_nodes[n_i][h_i][rep] : shared_nodes,
                    topology, cell_spec});
              }
            }
          }
        }
      }
    }
  }
  return batch;
}

}  // namespace econcast::runner
