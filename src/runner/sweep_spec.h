// Declarative sweep descriptions for ScenarioRunner.
//
// The paper's figures are cross-products: (N, σ, X/L, mode) cells, each
// evaluated for several protocols. SweepSpec captures that shape directly —
// set the axes, call expand(), and get a deterministically ordered,
// deterministically named scenario batch that one ScenarioRunner::run call
// executes across all cores under the derive_seed contract. Because each
// cell carries a protocol::ProtocolSpec, one sweep can mix EconCast, the
// analytic baselines and custom protocols in a single batch.
//
// Expansion order (fixed, documented, and relied on by cell_index):
//   protocol (outermost) → mode → node count → power point → heterogeneity h
//   → σ → replicate.
// Axes left unset contribute their single default value, so the expansion —
// and therefore every scenario's derived seed — depends only on the spec.
// The heterogeneity axis exists only for the "sampled" node-set kind (the
// paper's Fig. 2 x-axis); for every other node-set kind it stays at its
// single default value and contributes nothing to cell names.
#ifndef ECONCAST_RUNNER_SWEEP_SPEC_H
#define ECONCAST_RUNNER_SWEEP_SPEC_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "model/network.h"
#include "model/state_space.h"
#include "protocol/protocol.h"
#include "runner/scenario_runner.h"

namespace econcast::runner {

/// One (ρ, L, X) power setting; the default is the paper's §VII operating
/// point (ρ = 10 µW, L = X = 500 µW).
struct PowerPoint {
  double budget = 10.0;
  double listen_power = 500.0;
  double transmit_power = 500.0;
};

/// The paper's Fig. 3 x-axis: X/L ratios at constant L + X. Returns power
/// points with listen + transmit = `total` and the given X/L ratios.
std::vector<PowerPoint> power_ratio_axis(const std::vector<double>& ratios,
                                         double budget, double total);

/// An undirected graph as data: node count + edge list. The serializable
/// topology form for graphs that no named kind covers.
using EdgeList = std::vector<std::pair<std::size_t, std::size_t>>;

class SweepSpec {
 public:
  explicit SweepSpec(std::string name);

  // Axis setters (builder style). Each replaces the axis wholesale; empty
  // vectors are rejected (an axis always has at least one value).
  SweepSpec& protocols(std::vector<protocol::ProtocolSpec> specs);
  SweepSpec& modes(std::vector<model::Mode> modes);
  SweepSpec& node_counts(std::vector<std::size_t> counts);
  SweepSpec& powers(std::vector<PowerPoint> points);
  SweepSpec& sigmas(std::vector<double> sigmas);
  SweepSpec& replicates(std::size_t count);

  /// Topology as a function of the node count (default: clique). A custom
  /// function makes the spec non-serializable (see topology_kind).
  SweepSpec& topology(std::function<model::Topology(std::size_t)> make);

  /// Topology by name — the serializable form used by sweep manifests:
  /// "clique", "line", "ring", or "grid" (square grids; node counts must be
  /// perfect squares — validate() checks). Throws std::invalid_argument for
  /// unknown kinds.
  SweepSpec& topology(const std::string& kind);

  /// Explicit graph topology ("edge_list" kind): every cell runs on exactly
  /// this graph, so the node-count axis must be the single value `n`
  /// (validate() checks). Throws std::invalid_argument on bad edges.
  SweepSpec& topology(std::size_t n, EdgeList edges);

  /// Node sets as a function of (node count, power point); the default is
  /// model::homogeneous. Lets sweeps use heterogeneous populations while
  /// keeping the N and power axes meaningful. A custom function makes the
  /// spec non-serializable and resets the heterogeneity axis.
  SweepSpec& node_set(
      std::function<model::NodeSet(std::size_t, const PowerPoint&)> make);

  /// Node-set generator by name — the serializable form: "homogeneous"
  /// (which also resets the heterogeneity axis). The "sampled" kind needs
  /// its h axis and seed, so it is set via sampled_node_set. Throws
  /// std::invalid_argument for unknown kinds.
  SweepSpec& node_set(const std::string& kind);

  /// The §VII-B heterogeneous sampling process as a node-set generator
  /// (kind "sampled") with `h_values` as a sweep axis (each in [10, 250])
  /// and `sample_seed` as the sampling seed. For every (node count, power,
  /// h) the networks of all replicates are drawn from one Rng stream seeded
  /// with derive_seed(sample_seed, (uint64_t)h), replicate r taking the r-th
  /// draw. Every (protocol, mode, σ) cell therefore sees the identical
  /// network at a given (h, replicate) — the paired-sampling design of the
  /// paper's Fig. 2, which keeps σ comparisons free of sampling noise. The
  /// stream key truncates h to an integer, so non-integral h values closer
  /// than 1 apart would share a stream; the paper's h grid is integral.
  /// Sampled networks take every node parameter from the draw, so the power
  /// axis must stay at its single entry (validate() rejects more).
  SweepSpec& sampled_node_set(std::vector<double> h_values,
                              std::uint64_t sample_seed);

  // Accessors for the serialization layer (runner/manifest.h).
  const std::string& name() const noexcept { return name_; }
  const std::vector<protocol::ProtocolSpec>& protocol_axis() const noexcept {
    return protocols_;
  }
  const std::vector<model::Mode>& mode_axis() const noexcept { return modes_; }
  const std::vector<std::size_t>& node_count_axis() const noexcept {
    return node_counts_;
  }
  const std::vector<PowerPoint>& power_axis() const noexcept {
    return powers_;
  }
  const std::vector<double>& sigma_axis() const noexcept { return sigmas_; }
  /// The heterogeneity axis; the single degenerate value {10} unless the
  /// node-set kind is "sampled".
  const std::vector<double>& heterogeneity_axis() const noexcept {
    return heterogeneity_;
  }
  /// Seed of the "sampled" node-set generator (meaningless otherwise).
  std::uint64_t sample_seed() const noexcept { return sample_seed_; }
  std::size_t replicate_count() const noexcept { return replicates_; }
  /// The named topology kind ("clique" when defaulted, "edge_list" for an
  /// explicit graph), or "" when a custom topology function was installed —
  /// such specs cannot be serialized.
  const std::string& topology_kind() const noexcept { return topology_kind_; }
  /// Node count and edges of an "edge_list" topology (empty otherwise).
  std::size_t edge_list_nodes() const noexcept { return edge_list_nodes_; }
  const EdgeList& edge_list() const noexcept { return edge_list_; }
  /// "homogeneous" (the default) or "sampled"; "" for a custom node-set
  /// function — such specs cannot be serialized.
  const std::string& node_set_kind() const noexcept { return node_set_kind_; }

  /// Cross-axis consistency checks that individual setters cannot make
  /// (setter order is free): "grid" requires perfect-square node counts,
  /// "edge_list" requires the single node count it was built for, "sampled"
  /// requires h ∈ [10, 250]. Throws std::invalid_argument naming the
  /// offending value; called by expand() and the manifest codec.
  void validate() const;

  std::size_t cell_count() const noexcept;

  /// Flat batch index of a cell, mirroring the expansion order. Arguments
  /// index into the respective axes; out-of-range indices throw.
  std::size_t cell_index(std::size_t protocol_i, std::size_t mode_i = 0,
                         std::size_t node_i = 0, std::size_t power_i = 0,
                         std::size_t h_i = 0, std::size_t sigma_i = 0,
                         std::size_t replicate = 0) const;

  /// Expands the cross-product into scenarios. Mode and σ axes are applied
  /// to each protocol's parameters via protocol::specialized (protocols
  /// without those knobs, e.g. Panda, run identically across those axes).
  /// Scenario names encode every axis value:
  ///   <sweep>/<protocol>/<mode>/N<n>/rho<ρ>_L<L>_X<X>[/h<h>]/s<σ>[/r<k>]
  /// (the /h component appears only for the "sampled" node-set kind).
  std::vector<Scenario> expand() const;

 private:
  std::string name_;
  std::vector<protocol::ProtocolSpec> protocols_;
  std::vector<model::Mode> modes_{model::Mode::kGroupput};
  std::vector<std::size_t> node_counts_{5};
  std::vector<PowerPoint> powers_{PowerPoint{}};
  std::vector<double> sigmas_{0.5};
  std::size_t replicates_ = 1;
  std::function<model::Topology(std::size_t)> topology_;
  std::function<model::NodeSet(std::size_t, const PowerPoint&)> node_set_;
  std::string topology_kind_ = "clique";
  std::string node_set_kind_ = "homogeneous";
  /// Degenerate single-h axis unless node_set_kind_ == "sampled". 10 is the
  /// paper's "no heterogeneity" point (§VII-B: h = 10 is homogeneous).
  std::vector<double> heterogeneity_{10.0};
  std::uint64_t sample_seed_ = 1;
  std::size_t edge_list_nodes_ = 0;
  EdgeList edge_list_;
};

}  // namespace econcast::runner

#endif  // ECONCAST_RUNNER_SWEEP_SPEC_H
