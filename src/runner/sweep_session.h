// Checkpointed execution of a sweep manifest.
//
// A SweepSession pairs a SweepManifest with a results file (JSON Lines, one
// completed cell per line, written strictly in cell-index order and flushed
// line by line). Because the on-disk order is the expansion order and every
// cell's seed derives from its global index, a session killed at any point —
// even mid-write — resumes by truncating the partial trailing line, skipping
// the completed prefix, and running the remaining cells with exactly the
// seeds the uninterrupted run would have used. The resumed results file is
// byte-identical to an uninterrupted one (covered by
// tests/test_sweep_session.cpp).
//
// Results stream through ScenarioRunner's on_scenario_done hook: cells
// complete on executor threads in any order, the hook (serialized) buffers
// out-of-order completions and appends the ready prefix, so a crash never
// loses more than the cells still in flight.
#ifndef ECONCAST_RUNNER_SWEEP_SESSION_H
#define ECONCAST_RUNNER_SWEEP_SESSION_H

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runner/manifest.h"
#include "runner/scenario_runner.h"

namespace econcast::runner {

class SweepSession {
 public:
  struct Options {
    /// Thread cap for the cell batches; 0 = hardware_concurrency.
    std::size_t num_threads = 0;
    /// Executor to submit to; null = exec::Executor::shared().
    std::shared_ptr<exec::Executor> executor;
    /// Per-cell completion hook: `index` is the cell's global manifest index
    /// and `done`/`total` count the session's completed cells including
    /// those loaded from a previous run. Serialized; invoked after the
    /// cell's line has been appended to the results file.
    std::function<void(const ScenarioProgress&)> on_cell_done;
    /// Restrict the session to the contiguous expansion range
    /// [cell_begin, cell_end) — the primitive behind sharded sweeps
    /// (src/fabric). cell_end == 0 means "through the last cell". The
    /// results file then holds exactly that range, with every record still
    /// keyed by *global* cell index/name/seed, so concatenating the files
    /// of a partition of [0, cell_count) in order reproduces the
    /// whole-sweep results file byte for byte. The constructor throws
    /// std::invalid_argument on inverted or out-of-range bounds.
    std::size_t cell_begin = 0;
    std::size_t cell_end = 0;
  };

  /// Opens a session: expands the manifest, loads the completed prefix from
  /// `results_path` (creating the file lazily on first run), truncates any
  /// partial trailing line a kill left behind, and validates that the
  /// recorded cells match the manifest expansion (index, name and seed per
  /// line). Throws std::runtime_error on a manifest/results mismatch and
  /// util::json::Error on corrupt (complete but unparsable) lines.
  SweepSession(SweepManifest manifest, std::string results_path,
               Options options);
  SweepSession(SweepManifest manifest, std::string results_path);

  /// Convenience: load the manifest file and pair it with
  /// default_results_path(manifest_path).
  static SweepSession open(const std::string& manifest_path, Options options);
  static SweepSession open(const std::string& manifest_path);

  /// "<path minus trailing .json>.results.jsonl".
  static std::string default_results_path(const std::string& manifest_path);

  /// Number of cells this session owns — the whole expansion unless Options
  /// restricted it to a range.
  std::size_t cell_count() const noexcept { return end_ - begin_; }
  std::size_t completed_cells() const noexcept { return completed_.size(); }
  bool complete() const noexcept { return completed_.size() == cell_count(); }
  /// Global index of the first / one-past-last cell this session owns.
  std::size_t cell_begin() const noexcept { return begin_; }
  std::size_t cell_end() const noexcept { return end_; }
  /// The *full* expansion, indexed by global cell index (not range-local).
  const std::vector<Scenario>& cells() const noexcept { return batch_; }
  const std::string& results_path() const noexcept { return results_path_; }
  const SweepManifest& manifest() const noexcept { return manifest_; }

  /// Runs up to `limit` of the remaining cells (0 = all remaining),
  /// appending each completed cell to the results file. Returns the number
  /// of newly completed cells. Safe to call repeatedly; a no-op when the
  /// session is already complete. If a cell throws, every cell completed
  /// before the failure is already checkpointed and the exception is
  /// rethrown.
  std::size_t run(std::size_t limit = 0);

  /// Index-ordered results and summary over this session's cell range.
  /// Requires complete() (throws std::logic_error otherwise).
  BatchResult results() const;

 private:
  void load_existing();
  std::string record_line(std::size_t global_index,
                          const protocol::SimResult& result) const;
  std::uint64_t cell_seed(std::size_t global_index) const noexcept;

  SweepManifest manifest_;
  std::string results_path_;
  Options options_;
  std::vector<Scenario> batch_;  // full expansion
  std::size_t begin_ = 0;        // session range [begin_, end_)
  std::size_t end_ = 0;
  /// Completed prefix of the session range, mirroring the file: completed_
  /// holds cells [begin_, begin_ + completed_.size()).
  std::vector<protocol::SimResult> completed_;
};

}  // namespace econcast::runner

#endif  // ECONCAST_RUNNER_SWEEP_SESSION_H
