// Checkpointed execution of a sweep manifest.
//
// A SweepSession pairs a SweepManifest with a results file (JSON Lines, one
// completed cell per line, written strictly in cell-index order and flushed
// line by line). Because the on-disk order is the expansion order and every
// cell's seed derives from its global index, a session killed at any point —
// even mid-write — resumes by truncating the partial trailing line, skipping
// the completed prefix, and running the remaining cells with exactly the
// seeds the uninterrupted run would have used. The resumed results file is
// byte-identical to an uninterrupted one (covered by
// tests/test_sweep_session.cpp).
//
// Results stream through ScenarioRunner's on_scenario_done hook: cells
// complete on executor threads in any order, the hook (serialized) buffers
// out-of-order completions and appends the ready prefix, so a crash never
// loses more than the cells still in flight.
//
// Two throughput layers sit on top (both output-invisible by construction):
//  - A content-addressed CellCache (cell_cache.h). Before submitting the
//    pending range, the session probes every cell; hits are fed straight
//    into the reorder buffer and only misses run. Completed misses are
//    published back. A warm rerun therefore executes zero cells while
//    producing byte-identical results files.
//  - Cost-model submission order (cost_model.h). With SubmitOrder::kCost the
//    pending misses are submitted longest-expected-first (LPT), shrinking
//    the makespan tail where one heavy cell lands last on a busy pool. The
//    reorder buffer already writes the file in index order no matter what
//    order cells complete in, which is what makes reordering legal.
#ifndef ECONCAST_RUNNER_SWEEP_SESSION_H
#define ECONCAST_RUNNER_SWEEP_SESSION_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runner/cell_cache.h"
#include "runner/manifest.h"
#include "runner/scenario_runner.h"

namespace econcast::runner {

/// The manifest's expansion with its queue/hot-path engine overrides applied
/// to every cell — exactly the cells a SweepSession over this manifest runs,
/// and therefore exactly the specs its cache keys hash. Fabric planners use
/// this to derive the same keys a worker's session will.
std::vector<Scenario> expand_with_overrides(const SweepManifest& manifest);

/// The seed cell `global_index` of the expansion runs with (the cell itself
/// is needed for the reseed=false case, where its own spec seed applies).
std::uint64_t manifest_cell_seed(const SweepManifest& manifest,
                                 const Scenario& cell,
                                 std::size_t global_index) noexcept;

class SweepSession {
 public:
  /// Order the pending cells are handed to the executor in. Either way the
  /// results file is written in cell-index order — this is a makespan knob.
  enum class SubmitOrder {
    kExpansion,  // manifest expansion order (index order)
    kCost,       // longest-expected-first per the calibrated cost model
  };

  struct Options {
    /// Thread cap for the cell batches; 0 = hardware_concurrency.
    std::size_t num_threads = 0;
    /// Executor to submit to; null = exec::Executor::shared().
    std::shared_ptr<exec::Executor> executor;
    /// Per-cell completion hook: `index` is the cell's global manifest index
    /// and `done`/`total` count the session's completed cells including
    /// those loaded from a previous run. Serialized; invoked after the
    /// cell's line has been appended to the results file.
    std::function<void(const ScenarioProgress&)> on_cell_done;
    /// Restrict the session to the contiguous expansion range
    /// [cell_begin, cell_end) — the primitive behind sharded sweeps
    /// (src/fabric). cell_end == 0 means "through the last cell". The
    /// results file then holds exactly that range, with every record still
    /// keyed by *global* cell index/name/seed, so concatenating the files
    /// of a partition of [0, cell_count) in order reproduces the
    /// whole-sweep results file byte for byte. The constructor throws
    /// std::invalid_argument on inverted or out-of-range bounds.
    std::size_t cell_begin = 0;
    std::size_t cell_end = 0;
    /// Result cache shared with other sessions/processes; null disables
    /// caching. run() probes it before submitting (hits skip execution
    /// entirely) and publishes every newly computed cell. The same pointer
    /// may back many sessions — CellCache keeps per-instance stats, and the
    /// on-disk directory is multi-process safe.
    std::shared_ptr<CellCache> cache;
    /// See SubmitOrder. kCost calibrates a CostModel from the cache
    /// directory (when a cache is attached) so the ordering improves as
    /// observed wall clocks accumulate.
    SubmitOrder order = SubmitOrder::kExpansion;
  };

  /// Opens a session: expands the manifest, loads the completed prefix from
  /// `results_path` (creating the file lazily on first run), truncates any
  /// partial trailing line a kill left behind, and validates that the
  /// recorded cells match the manifest expansion (index, name and seed per
  /// line). Throws std::runtime_error on a manifest/results mismatch and
  /// util::json::Error on corrupt (complete but unparsable) lines.
  SweepSession(SweepManifest manifest, std::string results_path,
               Options options);
  SweepSession(SweepManifest manifest, std::string results_path);

  /// Convenience: load the manifest file and pair it with
  /// default_results_path(manifest_path).
  static SweepSession open(const std::string& manifest_path, Options options);
  static SweepSession open(const std::string& manifest_path);

  /// "<path minus trailing .json>.results.jsonl".
  static std::string default_results_path(const std::string& manifest_path);

  /// Number of cells this session owns — the whole expansion unless Options
  /// restricted it to a range.
  std::size_t cell_count() const noexcept { return end_ - begin_; }
  std::size_t completed_cells() const noexcept { return completed_.size(); }
  bool complete() const noexcept { return completed_.size() == cell_count(); }
  /// Global index of the first / one-past-last cell this session owns.
  std::size_t cell_begin() const noexcept { return begin_; }
  std::size_t cell_end() const noexcept { return end_; }
  /// The *full* expansion, indexed by global cell index (not range-local).
  const std::vector<Scenario>& cells() const noexcept { return batch_; }
  const std::string& results_path() const noexcept { return results_path_; }
  const SweepManifest& manifest() const noexcept { return manifest_; }
  /// The attached result cache (null when caching is off) — exposed so
  /// callers can report its hit/miss/publish stats after run().
  CellCache* cache() const noexcept { return options_.cache.get(); }

  /// Runs up to `limit` of the remaining cells (0 = all remaining),
  /// appending each completed cell to the results file. Returns the number
  /// of newly completed cells. Safe to call repeatedly; a no-op when the
  /// session is already complete. If a cell throws, every cell completed
  /// before the failure is already checkpointed and the exception is
  /// rethrown.
  std::size_t run(std::size_t limit = 0);

  /// Index-ordered results and summary over this session's cell range.
  /// Requires complete() (throws std::logic_error otherwise).
  BatchResult results() const;

 private:
  void load_existing();
  std::string record_line(std::size_t global_index,
                          const protocol::SimResult& result) const;
  std::uint64_t cell_seed(std::size_t global_index) const noexcept;

  SweepManifest manifest_;
  std::string results_path_;
  Options options_;
  std::vector<Scenario> batch_;  // full expansion
  std::size_t begin_ = 0;        // session range [begin_, end_)
  std::size_t end_ = 0;
  /// Completed prefix of the session range, mirroring the file: completed_
  /// holds cells [begin_, begin_ + completed_.size()).
  std::vector<protocol::SimResult> completed_;
};

}  // namespace econcast::runner

#endif  // ECONCAST_RUNNER_SWEEP_SESSION_H
