#include "runner/scenario_runner.h"

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/random.h"

namespace econcast::runner {

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index) noexcept {
  // Two splitmix64 steps over a base/index mix: adjacent indices land in
  // unrelated regions of the 2^64 stream space, and index 0 is not the
  // identity on base_seed.
  std::uint64_t state = base_seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  util::splitmix64_next(state);
  return util::splitmix64_next(state);
}

ScenarioRunner::ScenarioRunner(RunnerOptions options)
    : options_(std::move(options)) {}

std::size_t ScenarioRunner::effective_threads() const noexcept {
  if (options_.num_threads > 0) return options_.num_threads;
  // NOLINT-DETERMINISM(raw-thread): reads the core count; results are
  // bit-identical for any thread count by the executor contract.
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ScenarioRunner::for_each(std::size_t n,
                              const std::function<void(std::size_t)>& fn) const {
  exec::Executor& executor =
      options_.executor ? *options_.executor : exec::Executor::shared();
  executor.parallel_for(n, fn, effective_threads());
}

Scenario econcast_scenario(std::string name, model::NodeSet nodes,
                           model::Topology topology, proto::SimConfig config) {
  return Scenario{std::move(name), std::move(nodes), std::move(topology),
                  protocol::econcast_spec(std::move(config))};
}

BatchResult ScenarioRunner::run(const std::vector<Scenario>& batch) const {
  return run(batch, 0);
}

BatchResult ScenarioRunner::run(const std::vector<Scenario>& batch,
                                std::uint64_t seed_offset) const {
  std::vector<std::uint64_t> seeds(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    seeds[i] = options_.reseed
                   ? derive_seed(options_.base_seed, seed_offset + i)
                   : protocol::effective_seed(batch[i].protocol);
  return run_with_seeds(batch, seeds);
}

BatchResult ScenarioRunner::run_with_seeds(
    const std::vector<Scenario>& batch,
    const std::vector<std::uint64_t>& seeds,
    const std::vector<std::size_t>& submit_order) const {
  if (seeds.size() != batch.size())
    throw std::invalid_argument(
        "run_with_seeds: " + std::to_string(seeds.size()) + " seeds for a " +
        std::to_string(batch.size()) + "-scenario batch");
  if (!submit_order.empty()) {
    if (submit_order.size() != batch.size())
      throw std::invalid_argument(
          "run_with_seeds: submit order of size " +
          std::to_string(submit_order.size()) + " for a " +
          std::to_string(batch.size()) + "-scenario batch");
    std::vector<bool> seen(batch.size(), false);
    for (const std::size_t i : submit_order) {
      if (i >= batch.size() || seen[i])
        throw std::invalid_argument(
            "run_with_seeds: submit order is not a permutation of the batch");
      seen[i] = true;
    }
  }

  // Validate the whole batch up front so a misconfigured scenario fails with
  // a deterministic, index-attributed error before any work is spawned:
  // topology/node-count mismatches, and protocol resolution (unknown name or
  // wrong parameter type). The resolved protocols are reused by the workers.
  const protocol::ProtocolRegistry& registry =
      protocol::ProtocolRegistry::global();
  std::vector<std::shared_ptr<const protocol::Protocol>> protocols(
      batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Scenario& s = batch[i];
    if (s.nodes.size() != s.topology.size())
      throw std::invalid_argument(
          "scenario '" + s.name + "' (index " + std::to_string(i) + "): " +
          std::to_string(s.nodes.size()) + " nodes but topology of size " +
          std::to_string(s.topology.size()));
    try {
      protocols[i] = registry.create(s.protocol);
    } catch (const std::exception& e) {
      throw std::invalid_argument("scenario '" + s.name + "' (index " +
                                  std::to_string(i) + "): " + e.what());
    }
  }

  BatchResult out;
  out.results.resize(batch.size());
  std::vector<double> wall_ms(batch.size(), 0.0);

  // `k` is the submission index; the scenario it runs is submit_order[k]
  // (or k itself when no permutation was given). Every write below is
  // confined to the *original* index i, so the permutation touches only
  // which worker picks what up when — never any output.
  const auto task = [&](std::size_t k) {
    const std::size_t i = submit_order.empty() ? k : submit_order[k];
    const Scenario& s = batch[i];
    // NOLINT-DETERMINISM(wall-clock): telemetry only — the measured wall
    // clock feeds cost-model calibration and progress ETAs, never results.
    const auto started = std::chrono::steady_clock::now();
    try {
      out.results[i] = protocols[i]->make_sim(s.nodes, s.topology,
                                              seeds[i])->run();
    } catch (const std::invalid_argument& e) {
      // Protocol network-requirement failures (e.g. Panda on a non-clique)
      // surface only at make_sim time; attribute them to the scenario so a
      // bad cell in a large expanded sweep is locatable.
      throw std::invalid_argument("scenario '" + s.name + "' (index " +
                                  std::to_string(i) + "): " + e.what());
    }
    // NOLINT-DETERMINISM(wall-clock): telemetry only, as above.
    const auto finished = std::chrono::steady_clock::now();
    wall_ms[i] =
        std::chrono::duration<double, std::milli>(finished - started).count();
  };

  exec::Executor::ProgressFn progress;
  if (options_.on_scenario_done) {
    progress = [&](const exec::TaskProgress& p) {
      const std::size_t i =
          submit_order.empty() ? p.index : submit_order[p.index];
      options_.on_scenario_done(ScenarioProgress{
          i, p.done, p.total, &batch[i], &out.results[i], wall_ms[i]});
    };
  }

  exec::Executor& executor =
      options_.executor ? *options_.executor : exec::Executor::shared();
  executor.parallel_for(batch.size(), task, effective_threads(), progress);

  out.summary = summarize(out.results);
  return out;
}

BatchSummary summarize(const std::vector<protocol::SimResult>& results) {
  BatchSummary summary;
  for (const protocol::SimResult& r : results) {
    summary.groupput.add(r.groupput);
    summary.anyput.add(r.anyput);
    // A run that completed no bursts has no burst-length sample — adding its
    // 0.0 placeholder mean would bias the batch toward 0 exactly when bursts
    // are too long to finish.
    if (r.burst_lengths.count() > 0) {
      summary.burst_length.add(r.burst_lengths.mean());
    }
    util::RunningStats power;
    for (const double p : r.avg_power) power.add(p);
    summary.node_power.add(power.mean());
    summary.packets_received.add(static_cast<double>(r.packets_received));
  }
  return summary;
}

}  // namespace econcast::runner
